//go:build race

package sonet

// raceEnabled reports whether this binary was built with the race
// detector. Under race, sync.Pool randomly drops a fraction of Puts to
// shake out races, so allocation budgets that flow through wire.BufPool
// are not measurable there.
const raceEnabled = true

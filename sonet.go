// Package sonet is a structured overlay network framework: a clean-room
// Go implementation of the architecture described in "Structured Overlay
// Networks for a New Generation of Internet Services" (Babay et al.,
// ICDCS 2017) — the Spines-style overlay of a few tens of well-situated
// nodes that provides services the Internet does not natively support.
//
// The framework realizes the paper's three principles:
//
//   - A resilient network architecture: overlay nodes in data centers,
//     multihomed across ISP backbones, joined by short overlay links with
//     sub-second failure detection and rerouting (§II-A).
//   - An overlay node software architecture with shared global state: a
//     session interface over a routing level (link-state and source-based
//     bitmask routing, connectivity-graph and group-state maintenance)
//     over pluggable link-level protocols — Best Effort, hop-by-hop
//     Reliable Data Link, real-time NM-Strikes, and intrusion-tolerant
//     Priority/Reliable fair forwarding (§II-B, Fig. 2).
//   - Flow-based processing: clients open flows that select the routing
//     service × link protocol × delivery semantics combination that suits
//     each application (§II-C).
//
// The same protocol code runs in two modes: deterministically in virtual
// time over an emulated multi-ISP underlay (Network, used by every
// benchmark and example), and over real UDP sockets via the daemon in
// cmd/sonetd.
package sonet

import (
	"time"

	"sonet/internal/topology"
	"sonet/internal/wire"
)

// NodeID identifies an overlay node (nonzero).
type NodeID = wire.NodeID

// Port is a virtual port; NodeID + Port addresses a client, mimicking the
// Internet's IP-plus-port scheme.
type Port = wire.Port

// GroupID is a multicast/anycast group address.
type GroupID = wire.GroupID

// LinkService selects the link-level protocol applied on every overlay
// hop of a flow (the Fig. 2 link level).
type LinkService = wire.LinkProtoID

// Link services.
const (
	// BestEffort transmits once per hop with no recovery.
	BestEffort LinkService = wire.LPBestEffort
	// Reliable is the hop-by-hop Reliable Data Link: ARQ recovery on
	// every overlay link with out-of-order forwarding (§III-A).
	Reliable LinkService = wire.LPReliable
	// RealTime is the NM-Strikes protocol: timeliness guaranteed, N
	// spaced requests × M spaced retransmissions per loss (§IV-A).
	RealTime LinkService = wire.LPRealTime
	// SingleStrike is the VoIP-era one-request/one-retransmission
	// recovery protocol (§V-A).
	SingleStrike LinkService = wire.LPSingleStrike
	// ITPriority is intrusion-tolerant priority messaging: per-source
	// fair buffers with priority eviction (§IV-B).
	ITPriority LinkService = wire.LPITPriority
	// ITReliable is intrusion-tolerant reliable messaging: per-flow fair
	// buffers with backpressure (§IV-B).
	ITReliable LinkService = wire.LPITReliable
)

// ProblemArea steers dissemination-graph construction (§V-A).
type ProblemArea = topology.ProblemArea

// Problem areas for dissemination graphs.
const (
	// ProblemNone selects the static two-node-disjoint-paths graph.
	ProblemNone ProblemArea = topology.ProblemNone
	// ProblemSource adds targeted redundancy around the source.
	ProblemSource ProblemArea = topology.ProblemSource
	// ProblemDest adds targeted redundancy around the destination.
	ProblemDest ProblemArea = topology.ProblemDest
	// ProblemBoth adds redundancy around both endpoints.
	ProblemBoth ProblemArea = topology.ProblemBoth
)

// FlowSpec selects the overlay services for one application flow: its
// destination (a node or a group), routing service, link service, and
// delivery semantics.
type FlowSpec struct {
	// To and ToPort address a unicast destination client.
	To NodeID
	// ToPort is the destination virtual port (group members listen on it
	// for group flows).
	ToPort Port
	// Group addresses a multicast or anycast group instead of a node.
	Group GroupID
	// Anycast delivers each message to exactly one group member — the
	// nearest under the routing metric.
	Anycast bool
	// Service is the link-level protocol for every hop (default
	// BestEffort).
	Service LinkService
	// DisjointPaths, when positive, sends every message over that many
	// node-disjoint paths, tolerating DisjointPaths−1 compromised nodes
	// (§IV-B).
	DisjointPaths int
	// DissemGraph, when set, routes over a dissemination graph tailored
	// to the given problem area; overrides DisjointPaths (§V-A).
	DissemGraph ProblemArea
	// Flood sends every message by constrained flooding: delivery is
	// guaranteed while any path of correct nodes exists (§IV-B).
	Flood bool
	// Ordered delivers in sequence at the destination. Combined with a
	// zero Deadline this selects the completely reliable transport
	// service (end-to-end recovery); with a Deadline it selects the
	// real-time reorder buffer that discards late packets (§IV-A).
	Ordered bool
	// Deadline is the one-way latency budget; late packets are discarded
	// at the destination.
	Deadline time.Duration
	// Priority orders messages within intrusion-tolerant priority flows
	// (higher first).
	Priority uint8
}

// Delivery is one message handed to a client.
type Delivery struct {
	// From identifies the source node.
	From NodeID
	// FromPort is the source client's virtual port.
	FromPort Port
	// Seq is the flow sequence number.
	Seq uint32
	// Group is set for multicast deliveries.
	Group GroupID
	// Latency is the one-way delay from origination, including any
	// recovery.
	Latency time.Duration
	// Recovered marks messages whose delivered copy was retransmitted
	// somewhere along the way.
	Recovered bool
	// Payload is the application data.
	Payload []byte
}

# sonet — build, test, and reproduction targets.

GO ?= go

.PHONY: all check build vet test test-race race cover bench bench-all bench-guard bench-compare bench-baseline experiments examples fuzz chaos-smoke chaos-soak clean

all: check

# The default gate: compile, static checks, unit tests, the race detector
# (the buffer-pool ownership rules make -race a required check), the
# fast-path allocation budgets, and the pinned-seed chaos campaigns.
check: build vet test test-race bench-guard chaos-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race gate runs the full suite once, then re-runs the daemon suite
# pinned at four protocol shards: the auto shard count collapses to one
# on single-core CI runners, and the sharded protocol plane (per-shard
# link sessions, COW snapshot readers, cross-shard clones) must be
# race-checked even there.
test-race:
	$(GO) test -race ./...
	SONET_DAEMON_SHARDS=4 $(GO) test -race -count=1 -run 'TestDaemon' ./internal/transport/

race: test-race

cover:
	$(GO) test -cover ./...

# Regenerate every table/figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/benchrun

# Hot-path microbenchmarks: overlay forwarding, underlay send, scheduler
# timer churn, the fair-scheduler DRR core at 1k/10k/100k flows, the
# pooled wire round trip, the control-plane SPF / reconvergence pair, and
# the batched UDP data plane over loopback.
BENCH_PATTERN = Forwarding|MarshalAlloc|NetemuSend|Sched|Packet|DisjointPaths|SPF|ConvergenceScale|UDP

bench:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem .

# Every benchmark, including the full experiment reproductions.
bench-all:
	$(GO) test -run xxx -bench . -benchmem .

# Allocation-budget regression guards for the fast paths: fails if a
# warmed netemu.Send allocates (route cache + pooled buffers/events must
# keep it at 0 allocs/op on a stable topology), if a warmed dense SPF
# recompute allocates, if a warmed incremental single-link SPT repair
# does, if a warmed whole-engine reconvergence does, if the real UDP
# data plane exceeds one amortized allocation per datagram, or if the
# fair-scheduler DRR core allocates on a steady-state decision at up to
# 100k concurrent flows, or if transit forwarding through the whole
# sharded daemon stack exceeds one amortized allocation per packet, or if
# a steady-state membership detector/corrector sweep allocates.
bench-guard:
	$(GO) test -run 'TestNetemuSendAllocBudget|TestSPFAllocBudget|TestIncrementalSPFAllocBudget|TestConvergenceAllocBudget|TestUDPTransportAllocBudget|TestSchedAllocBudget|TestDaemonForwardingAllocBudget' -count=1 .
	$(GO) test -run TestMembershipSweepAllocBudget -count=1 ./internal/membership/

# Diff current hot-path benchmark numbers against the checked-in baseline:
# ns/op may drift within the baseline's tolerance, allocs/op may not grow.
bench-compare:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchcompare -baseline BENCH_baseline.json

# Regenerate the baseline (run on the reference machine, then commit).
bench-baseline:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchcompare -write BENCH_baseline.json

# Pinned-seed fault-campaign suite (internal/chaos): twelve campaigns
# spanning link flaps, partitions, crash-restarts, ISP outages,
# brown-outs, latency spikes, and — on the membership-enabled churn
# worlds — graceful leaves, re-admissions, and corrupted-view injections
# under the stabilization-bound invariant. Every invariant checked, zero
# violations tolerated. Deterministic — a failure here replays
# bit-for-bit with `go run ./cmd/sonet-chaos run -campaign <name>`.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaosSmoke|TestCampaignDeterminism|TestReplayFromArtifact' ./internal/chaos/

# Long-haul randomized campaigns across every topology and fault mix.
chaos-soak:
	CHAOS_SOAK=1 $(GO) test -race -count=1 -run TestChaosSoak -v ./internal/chaos/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/videotransport
	$(GO) run ./examples/cloudmonitor
	$(GO) run ./examples/intrusiontolerant
	$(GO) run ./examples/remotemanip
	$(GO) run ./examples/compoundflow

fuzz:
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalPacket -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalFrame -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzFramePooledRoundTrip -fuzztime 30s

clean:
	$(GO) clean ./...

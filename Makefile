# sonet — build, test, and reproduction targets.

GO ?= go

.PHONY: all build test race cover bench experiments examples fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every table/figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/benchrun

# The same experiments as testing.B benchmarks, plus micro-benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchmem .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/videotransport
	$(GO) run ./examples/cloudmonitor
	$(GO) run ./examples/intrusiontolerant
	$(GO) run ./examples/remotemanip
	$(GO) run ./examples/compoundflow

fuzz:
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalPacket -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalFrame -fuzztime 30s

clean:
	$(GO) clean ./...

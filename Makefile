# sonet — build, test, and reproduction targets.

GO ?= go

.PHONY: all check build vet test test-race race cover bench experiments examples fuzz clean

all: check

# The default gate: compile, static checks, unit tests, and the race
# detector (the buffer-pool ownership rules make -race a required check).
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

race: test-race

cover:
	$(GO) test -cover ./...

# Regenerate every table/figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/benchrun

# The same experiments as testing.B benchmarks, plus micro-benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchmem .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/videotransport
	$(GO) run ./examples/cloudmonitor
	$(GO) run ./examples/intrusiontolerant
	$(GO) run ./examples/remotemanip
	$(GO) run ./examples/compoundflow

fuzz:
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalPacket -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalFrame -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzFramePooledRoundTrip -fuzztime 30s

clean:
	$(GO) clean ./...

package sonet

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/itmsg"
	"sonet/internal/link"
	"sonet/internal/membership"
	"sonet/internal/metrics"
	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
)

// ErrBackpressure is returned by Flow.Send when every egress scheduler
// queue refused the packet: the flow's fair-share buffer at the first hop
// is saturated. Back off and retry; the flow itself stays usable.
var ErrBackpressure = link.ErrBackpressure

// Link describes one overlay link of an emulated network: two nodes, a
// designed one-way latency, and the link's loss behaviour.
type Link struct {
	// A and B are the endpoints (nonzero node IDs).
	A, B NodeID
	// Latency is the one-way latency (the paper favors ~10 ms links).
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) per-packet delay.
	Jitter time.Duration
	// LossRate drops packets independently with this probability.
	LossRate float64
	// BurstLoss, when set, replaces LossRate with a Gilbert–Elliott
	// bursty loss channel.
	BurstLoss *BurstLoss
}

// BurstLoss parameterizes correlated (bursty) loss: the channel flips
// between Good and Bad states in 1 ms steps.
type BurstLoss struct {
	// PGoodBad is the per-step probability of entering a burst.
	PGoodBad float64
	// PBadGood is the per-step probability of leaving a burst.
	PBadGood float64
	// LossGood is the drop rate outside bursts.
	LossGood float64
	// LossBad is the drop rate inside bursts.
	LossBad float64
}

// options collects network construction options.
type options struct {
	helloInterval time.Duration
	helloMiss     int
	strikes       link.StrikesConfig
	itSched       itmsg.SchedConfig
	authSeed      []byte
	compromised   map[NodeID]node.Compromise
	membership    bool
}

// Option adjusts network construction.
type Option func(*options)

// WithHelloInterval sets the neighbor probe period, which controls
// failure-detection (and hence rerouting) latency.
func WithHelloInterval(d time.Duration) Option {
	return func(o *options) { o.helloInterval = d }
}

// WithHelloMiss sets how many consecutive unanswered probes fail a path.
func WithHelloMiss(n int) Option {
	return func(o *options) { o.helloMiss = n }
}

// WithStrikes configures the NM-Strikes real-time service: N requests, M
// retransmissions, and the recovery budget.
func WithStrikes(n, m int, budget time.Duration) Option {
	return func(o *options) {
		o.strikes = link.StrikesConfig{N: n, M: m, Budget: budget}
	}
}

// WithITCapacity configures the intrusion-tolerant schedulers: the paced
// link rate (packets/second) and the per-source/per-flow buffer size.
func WithITCapacity(rate float64, buffer int) Option {
	return func(o *options) {
		o.itSched = itmsg.SchedConfig{Rate: rate, BufferPerSource: buffer}
	}
}

// WithAuthentication enables Ed25519 source signatures and per-link HMACs
// derived from the deployment seed (§IV-B).
func WithAuthentication(seed []byte) Option {
	return func(o *options) { o.authSeed = append([]byte(nil), seed...) }
}

// WithMembership enables the dynamic membership subsystem on every node:
// a replicated member directory with epoch-versioned records, join
// admission through any contact node, graceful leave announcements, and
// the periodic self-stabilizing detector/corrector that repairs stale
// topology state. Required for JoinNode/LeaveNode.
func WithMembership() Option {
	return func(o *options) { o.membership = true }
}

// WithCompromisedNode makes one node Byzantine: it keeps its credentials
// and participates in routing but blackholes data packets (§IV-B).
func WithCompromisedNode(id NodeID) Option {
	return compromiseOption(id, node.Compromise{DropData: true})
}

// WithCorruptingNode makes one node tamper with forwarded payloads; under
// WithAuthentication the tampered copies fail signature verification
// downstream.
func WithCorruptingNode(id NodeID) Option {
	return compromiseOption(id, node.Compromise{CorruptData: true})
}

// WithDelayingNode makes one node hold forwarded data for d before
// passing it on (a stealthy performance attacker).
func WithDelayingNode(id NodeID, d time.Duration) Option {
	return compromiseOption(id, node.Compromise{DelayData: d})
}

func compromiseOption(id NodeID, c node.Compromise) Option {
	return func(o *options) {
		if o.compromised == nil {
			o.compromised = make(map[NodeID]node.Compromise)
		}
		o.compromised[id] = c
	}
}

// Network is an emulated structured overlay running in deterministic
// virtual time: the world every example and benchmark drives.
type Network struct {
	sim *core.Simple
}

// New builds (and starts) an emulated overlay with the given links. The
// seed fixes every random choice, making runs bit-for-bit reproducible.
func New(seed uint64, links []Link, opts ...Option) (*Network, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("sonet: topology needs at least one link")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	sls := make([]core.SimpleLink, 0, len(links))
	for _, l := range links {
		sl := core.SimpleLink{A: l.A, B: l.B, Latency: l.Latency, Jitter: l.Jitter}
		switch {
		case l.BurstLoss != nil:
			b := l.BurstLoss
			sl.Loss = netemu.NewGilbertElliott(b.PGoodBad, b.PBadGood, b.LossGood, b.LossBad)
		case l.LossRate > 0:
			sl.Loss = netemu.Bernoulli{P: l.LossRate}
		}
		sls = append(sls, sl)
	}
	s, err := core.BuildSimple(seed, sls)
	if err != nil {
		return nil, fmt.Errorf("sonet: %w", err)
	}
	all := s.Graph.Nodes()
	s.SetNodeTemplate(func(cfg *node.Config) {
		if o.helloInterval > 0 {
			cfg.LinkState.HelloInterval = o.helloInterval
		}
		if o.helloMiss > 0 {
			cfg.LinkState.HelloMiss = o.helloMiss
		}
		if o.strikes.N > 0 {
			cfg.Strikes = o.strikes
		}
		if o.itSched.Rate > 0 {
			cfg.ITSched = o.itSched
		}
		if o.authSeed != nil {
			cfg.Keyring = itmsg.NewDeterministicKeyring(cfg.ID, all, o.authSeed)
		}
		if c, ok := o.compromised[cfg.ID]; ok {
			cfg.Compromised = c
		}
		if o.membership {
			mc := membership.DefaultConfig()
			mc.Seed = all
			cfg.Membership = &mc
		}
	})
	if err := s.Start(); err != nil {
		return nil, fmt.Errorf("sonet: %w", err)
	}
	n := &Network{sim: s}
	n.Settle()
	return n, nil
}

// Close quiesces the overlay.
func (n *Network) Close() { n.sim.Stop() }

// Run advances virtual time by d, executing all protocol activity due in
// that span.
func (n *Network) Run(d time.Duration) { n.sim.RunFor(d) }

// RunAt schedules fn to run at virtual-time offset d from now (failure
// injection, traffic scripting).
func (n *Network) RunAt(d time.Duration, fn func()) { n.sim.Sched.After(d, fn) }

// Settle runs long enough for hellos, link-state, and group floods to
// converge.
func (n *Network) Settle() { n.sim.Settle() }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.sim.Now() }

// Connect attaches a client to an overlay node on the given virtual port
// (zero allocates an ephemeral port).
func (n *Network) Connect(at NodeID, port Port) (*Client, error) {
	mgr := n.sim.Session(at)
	if mgr == nil {
		return nil, fmt.Errorf("sonet: no node %v", at)
	}
	c, err := mgr.Connect(port)
	if err != nil {
		return nil, err
	}
	return &Client{inner: c, net: n}, nil
}

// CutLink severs the underlay fiber beneath an overlay link; the overlay
// detects and reroutes via its hello protocol.
func (n *Network) CutLink(a, b NodeID) error { return n.sim.CutLink(a, b) }

// RestoreLink repairs a previously cut link.
func (n *Network) RestoreLink(a, b NodeID) error { return n.sim.RestoreLink(a, b) }

// SetLinkLoss applies an added drop probability to one overlay link's
// underlay (a degradation episode knob).
func (n *Network) SetLinkLoss(a, b NodeID, p float64) error {
	return n.sim.SetLinkExtraLoss(a, b, p)
}

// FailNode takes a node's entire data center offline.
func (n *Network) FailNode(id NodeID) {
	if st, ok := n.sim.Net.NodeSite(id); ok {
		n.sim.Net.SetSiteUp(st, false)
	}
}

// RestoreNode brings a failed node's data center back.
func (n *Network) RestoreNode(id NodeID) {
	if st, ok := n.sim.Net.NodeSite(id); ok {
		n.sim.Net.SetSiteUp(st, true)
	}
}

// JoinNode admits a new node into the running overlay at runtime: the
// topology gains the node and its links (each served by a dedicated
// emulated provider, like the designed links), every running node
// absorbs the growth, the joiner starts, and — with WithMembership — it
// runs the in-band admission handshake through contact, which must be at
// the far end of one of its links. Run or Settle afterwards to let the
// admission and link-state floods converge.
func (n *Network) JoinNode(id NodeID, contact NodeID, links ...Link) error {
	sls := make([]core.SimpleLink, 0, len(links))
	for _, l := range links {
		sl := core.SimpleLink{A: l.A, B: l.B, Latency: l.Latency, Jitter: l.Jitter}
		switch {
		case l.BurstLoss != nil:
			b := l.BurstLoss
			sl.Loss = netemu.NewGilbertElliott(b.PGoodBad, b.PBadGood, b.LossGood, b.LossBad)
		case l.LossRate > 0:
			sl.Loss = netemu.Bernoulli{P: l.LossRate}
		}
		sls = append(sls, sl)
	}
	return n.sim.Join(id, contact, sls, nil)
}

// LeaveNode departs a node gracefully: it floods its departure record
// and withdraws every adjacent link, then stops. Survivors converge
// without it; RejoinNode brings it back.
func (n *Network) LeaveNode(id NodeID) error { return n.sim.Leave(id) }

// RejoinNode restarts a departed (or crashed) node as a fresh
// incarnation over its designed links and — with WithMembership — runs
// the admission handshake through contact, healing its deliberately
// stale seeded directory via anti-entropy.
func (n *Network) RejoinNode(id NodeID, contact NodeID) error {
	if err := n.sim.RestartNode(id); err != nil {
		return err
	}
	if m := n.sim.Node(id).Membership(); m != nil && contact != 0 {
		m.Join(contact)
	}
	return nil
}

// Members returns the member list in one node's directory view (sorted
// ascending), or nil when membership is disabled or the node is unknown.
func (n *Network) Members(at NodeID) []NodeID {
	nd := n.sim.Node(at)
	if nd == nil {
		return nil
	}
	m := nd.Membership()
	if m == nil {
		return nil
	}
	return m.Directory().Members(nil)
}

// PathBetween returns the current overlay route between two nodes under
// the shared view (diagnostics).
func (n *Network) PathBetween(a, b NodeID) []NodeID {
	nd := n.sim.Node(a)
	if nd == nil {
		return nil
	}
	return nd.Engine().PathTo(b)
}

// NodeStats reports a node's packet accounting.
func (n *Network) NodeStats(id NodeID) (NodeStats, bool) {
	nd := n.sim.Node(id)
	if nd == nil {
		return NodeStats{}, false
	}
	st := nd.Stats()
	return NodeStats{
		Originated:     st.Originated,
		Forwarded:      st.Forwarded,
		DeliveredLocal: st.DeliveredLocal,
		Duplicates:     st.Duplicates,
		Blackholed:     st.Blackholed,
	}, true
}

// SchedStats reports a node's fair-scheduler accounting (§IV-B QoS
// plane), aggregated across its intrusion-tolerant link disciplines.
func (n *Network) SchedStats(id NodeID) (SchedStats, bool) {
	nd := n.sim.Node(id)
	if nd == nil {
		return SchedStats{}, false
	}
	return fromSchedSnapshot(nd.SchedStats()), true
}

// SchedStats summarizes one node's fair-scheduler activity: queue
// throughput, drops by cause, backpressure refusals, and flow-table
// occupancy.
type SchedStats struct {
	// Enqueued counts packets accepted into scheduler queues.
	Enqueued uint64
	// Transmitted counts packets dequeued for transmission.
	Transmitted uint64
	// DropEvicted counts packets evicted by the priority buffer policy.
	DropEvicted uint64
	// DropRefusedLow counts packets refused as lowest-priority newcomers
	// to a full flow.
	DropRefusedLow uint64
	// DropFIFOOverflow counts unfair-baseline FIFO overflow drops.
	DropFIFOOverflow uint64
	// DropClosed counts queued packets discarded when links closed.
	DropClosed uint64
	// Backpressure counts refusals signalled upstream as ErrBackpressure.
	Backpressure uint64
	// FlowsRetired counts drained flows whose scheduler state was
	// recycled.
	FlowsRetired uint64
	// Queued is the number of packets currently stored.
	Queued int64
	// ActiveFlows is the number of flows currently holding state.
	ActiveFlows int64
	// FlowsPeak is the ActiveFlows high-water mark.
	FlowsPeak int64
}

func fromSchedSnapshot(s metrics.SchedSnapshot) SchedStats {
	return SchedStats{
		Enqueued:         s.Enqueued,
		Transmitted:      s.Transmitted,
		DropEvicted:      s.DropEvicted,
		DropRefusedLow:   s.DropRefusedLow,
		DropFIFOOverflow: s.DropFIFOOverflow,
		DropClosed:       s.DropClosed,
		Backpressure:     s.Backpressure,
		FlowsRetired:     s.FlowsRetired,
		Queued:           s.Queued,
		ActiveFlows:      s.ActiveFlows,
		FlowsPeak:        s.FlowsPeak,
	}
}

// NodeStats summarizes one overlay node's packet handling.
type NodeStats struct {
	// Originated counts packets injected by local clients.
	Originated uint64
	// Forwarded counts transmissions toward neighbors.
	Forwarded uint64
	// DeliveredLocal counts packets handed to local clients.
	DeliveredLocal uint64
	// Duplicates counts redundant copies suppressed in the middle of the
	// network.
	Duplicates uint64
	// Blackholed counts packets absorbed by compromised behaviour.
	Blackholed uint64
}

// Client is an application endpoint attached to an overlay node.
type Client struct {
	inner *session.Client
	net   *Network
}

// Port returns the client's virtual port.
func (c *Client) Port() Port { return c.inner.Port() }

// OnDeliver installs a synchronous delivery callback.
func (c *Client) OnDeliver(fn func(Delivery)) {
	c.inner.OnDeliver(func(d session.Delivery) { fn(fromSessionDelivery(d)) })
}

// Deliveries drains queued deliveries (when no callback is installed).
func (c *Client) Deliveries() []Delivery {
	in := c.inner.Deliveries()
	out := make([]Delivery, len(in))
	for i, d := range in {
		out[i] = fromSessionDelivery(d)
	}
	return out
}

// Join subscribes this client's node to a multicast group.
func (c *Client) Join(g GroupID) { c.inner.Join(g) }

// Leave unsubscribes from a multicast group.
func (c *Client) Leave(g GroupID) { c.inner.Leave(g) }

// Close releases the client's port.
func (c *Client) Close() { c.inner.Close() }

// Stats summarizes the client's receive side.
func (c *Client) Stats() ClientStats {
	st := c.inner.Stats()
	return ClientStats{
		Received:    st.Received,
		Late:        st.Late,
		Duplicates:  st.Duplicates,
		MeanLatency: st.Latency.Mean(),
		P99Latency:  st.Latency.Percentile(99),
	}
}

// ClientStats summarizes deliveries to one client.
type ClientStats struct {
	// Received counts delivered messages.
	Received uint64
	// Late counts messages discarded for missing their deadline.
	Late uint64
	// Duplicates counts suppressed duplicate deliveries.
	Duplicates uint64
	// MeanLatency and P99Latency summarize one-way delivery latency.
	MeanLatency, P99Latency time.Duration
}

// OpenFlow creates a flow with the given service selection.
func (c *Client) OpenFlow(spec FlowSpec) (*Flow, error) {
	f, err := c.inner.OpenFlow(session.FlowSpec{
		DstNode:   spec.To,
		DstPort:   spec.ToPort,
		Group:     spec.Group,
		Anycast:   spec.Anycast,
		LinkProto: spec.Service,
		DisjointK: spec.DisjointPaths,
		Dissem:    spec.DissemGraph,
		Flood:     spec.Flood,
		Ordered:   spec.Ordered,
		Deadline:  spec.Deadline,
		Priority:  spec.Priority,
	})
	if err != nil {
		return nil, err
	}
	return &Flow{inner: f}, nil
}

// Flow is an application data flow with fixed service selection.
type Flow struct {
	inner *session.Flow
}

// Send transmits one message on the flow.
func (f *Flow) Send(payload []byte) error { return f.inner.Send(payload) }

// Sent returns the number of messages sent on the flow.
func (f *Flow) Sent() uint64 { return f.inner.Stats().Sent }

func fromSessionDelivery(d session.Delivery) Delivery {
	return Delivery{
		From:      d.From,
		FromPort:  d.SrcPort,
		Seq:       d.Seq,
		Group:     d.Group,
		Latency:   d.Latency,
		Recovered: d.Retransmitted,
		Payload:   d.Payload,
	}
}

// Package session implements the session interface of the overlay node
// software architecture (Fig. 2): client connections on virtual ports,
// per-flow service selection (routing service × link protocol × delivery
// semantics), flow origination, and destination-side delivery — including
// the in-order hold-back buffering and deadline-based late discard that
// the paper assigns to the final destination (§III-A, §IV-A).
package session

import (
	"fmt"
	"time"

	"sonet/internal/link"
	"sonet/internal/metrics"
	"sonet/internal/node"
	"sonet/internal/sim"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// FlowSpec selects the overlay services for one application flow (§II-C:
// a flow consists of a source, one or more destinations, and the overlay
// services selected for that flow).
type FlowSpec struct {
	// DstNode and DstPort address a unicast destination client.
	DstNode wire.NodeID
	// DstPort is the destination virtual port (also used for group
	// flows: members listen on this port).
	DstPort wire.Port
	// Group addresses a multicast or anycast group instead of a node.
	Group wire.GroupID
	// Anycast delivers to exactly one member of Group.
	Anycast bool
	// LinkProto selects the link-level protocol on every hop; zero means
	// Best Effort.
	LinkProto wire.LinkProtoID
	// DisjointK, when positive, routes over K node-disjoint paths via the
	// source-based bitmask mechanism (§IV-B).
	DisjointK int
	// Dissem, when set, routes over a dissemination graph tailored to the
	// given problem area (§V-A). Takes precedence over DisjointK.
	Dissem topology.ProblemArea
	// Flood routes by constrained flooding over the whole topology.
	Flood bool
	// Ordered asks the destination to deliver in sequence order.
	Ordered bool
	// Deadline is the one-way latency budget; late packets are discarded
	// at the destination and ordered flows flush their hold-back buffer
	// when it expires.
	Deadline time.Duration
	// Priority orders messages within intrusion-tolerant priority flows.
	Priority uint8
}

// Delivery is one packet handed to a client.
type Delivery struct {
	// From identifies the source client.
	From wire.NodeID
	// SrcPort is the source client's virtual port.
	SrcPort wire.Port
	// Seq is the flow sequence number.
	Seq uint32
	// Group is set for multicast deliveries.
	Group wire.GroupID
	// Latency is the one-way delay from origination.
	Latency time.Duration
	// Retransmitted marks packets whose delivered copy was recovered by a
	// link-level retransmission somewhere along the path.
	Retransmitted bool
	// Payload is the application data.
	Payload []byte
}

// Manager is the session level of one overlay node.
type Manager struct {
	// NackInterval is the destination's gap-recovery request period for
	// reliable (ordered, no-deadline) flows.
	NackInterval time.Duration
	// NackMaxTries bounds gap-recovery attempts before flushing past the
	// gap.
	NackMaxTries int
	// HistoryLimit bounds per-flow sent-packet history retained for
	// end-to-end recovery.
	HistoryLimit int
	// TailFlushInterval is the idle period after which a reliable flow's
	// source re-sends its last packet: trailing losses are invisible to
	// the destination's gap detection (nothing later reveals them), so
	// the tail is protected from the sending side.
	TailFlushInterval time.Duration
	// TailFlushTries bounds tail re-sends per quiet period.
	TailFlushTries int

	n             *node.Node
	clock         sim.Clock
	clients       map[wire.Port]*Client
	flowPorts     map[wire.Port]*Flow
	nextEphemeral wire.Port
	// noClient counts packets for ports nobody listens on.
	noClient uint64
}

// NewManager attaches a session manager to a node, installing itself as
// the node's delivery sink.
func NewManager(n *node.Node) *Manager {
	m := &Manager{
		NackInterval:      100 * time.Millisecond,
		NackMaxTries:      100,
		HistoryLimit:      8192,
		TailFlushInterval: 250 * time.Millisecond,
		TailFlushTries:    8,
		n:                 n,
		clock:             n.Clock(),
		clients:           make(map[wire.Port]*Client),
		flowPorts:         make(map[wire.Port]*Flow),
		nextEphemeral:     49152,
	}
	n.SetDeliver(m.handleDelivery)
	return m
}

// Node returns the underlying overlay node.
func (m *Manager) Node() *node.Node { return m.n }

// Connect registers a client on a virtual port. Port zero allocates an
// ephemeral port. Clients are identified overlay-wide by the node's ID
// plus this port, mimicking IP address + port addressing (§II-B).
func (m *Manager) Connect(port wire.Port) (*Client, error) {
	if port == 0 {
		port = m.allocEphemeral()
	}
	if m.portInUse(port) {
		return nil, fmt.Errorf("session: port %d in use on node %v", port, m.n.ID())
	}
	c := &Client{
		mgr:     m,
		port:    port,
		reorder: make(map[flowID]*reorderState),
	}
	m.clients[port] = c
	return c, nil
}

// portInUse reports whether a virtual port is taken by a client or flow.
func (m *Manager) portInUse(port wire.Port) bool {
	if _, ok := m.clients[port]; ok {
		return true
	}
	_, ok := m.flowPorts[port]
	return ok
}

// allocEphemeral returns a fresh ephemeral virtual port.
func (m *Manager) allocEphemeral() wire.Port {
	for m.portInUse(m.nextEphemeral) || m.nextEphemeral == 0 {
		m.nextEphemeral++
		if m.nextEphemeral == 0 {
			m.nextEphemeral = 49152
		}
	}
	port := m.nextEphemeral
	m.nextEphemeral++
	return port
}

// NoClientDrops returns packets that arrived for ports without clients.
func (m *Manager) NoClientDrops() uint64 { return m.noClient }

// Close closes every client, releasing their ports and cancelling all
// pending timers. A crash-restarting node must Close its manager so no
// reorder, NACK, or tail-flush timer of the dead incarnation fires into
// the reborn one.
func (m *Manager) Close() {
	ports := make([]wire.Port, 0, len(m.clients))
	for port := range m.clients {
		ports = append(ports, port)
	}
	for _, port := range ports {
		if c, ok := m.clients[port]; ok {
			c.Close()
		}
	}
}

// handleDelivery dispatches a packet delivered by the node to the client
// on its destination port.
func (m *Manager) handleDelivery(p *wire.Packet) {
	if p.Type == wire.PTSessionCtl {
		m.handleNack(p)
		return
	}
	c, ok := m.clients[p.DstPort]
	if !ok {
		m.noClient++
		return
	}
	c.receive(p)
}

// flowID keys destination-side per-flow state.
type flowID struct {
	src     wire.NodeID
	srcPort wire.Port
}

// Client is one application endpoint attached to an overlay node.
type Client struct {
	mgr  *Manager
	port wire.Port
	// onDeliver, when set, receives deliveries synchronously; otherwise
	// they are queued for Deliveries().
	onDeliver func(Delivery)
	queue     []Delivery
	closed    bool

	flows   []*Flow
	reorder map[flowID]*reorderState
	stats   metrics.FlowStats
}

// reorderState is the destination hold-back buffer for one ordered flow.
type reorderState struct {
	next    uint32
	maxSeen uint32
	pending map[uint32]*heldPacket

	// Gap-recovery state for reliable flows.
	nackTimer sim.Timer
	nackTries int
}

type heldPacket struct {
	p     *wire.Packet
	timer sim.Timer
}

// Port returns the client's virtual port.
func (c *Client) Port() wire.Port { return c.port }

// OnDeliver installs a synchronous delivery callback; once set, the
// internal queue is bypassed.
func (c *Client) OnDeliver(fn func(Delivery)) { c.onDeliver = fn }

// Deliveries drains and returns queued deliveries.
func (c *Client) Deliveries() []Delivery {
	out := c.queue
	c.queue = nil
	return out
}

// Stats returns the client's receive-side accounting.
func (c *Client) Stats() *metrics.FlowStats { return &c.stats }

// Join subscribes the client's node to a multicast group.
func (c *Client) Join(g wire.GroupID) { c.mgr.n.Groups().Join(g) }

// Leave unsubscribes from a multicast group.
func (c *Client) Leave(g wire.GroupID) { c.mgr.n.Groups().Leave(g) }

// Close releases the client's port and cancels pending reorder timers.
func (c *Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, st := range c.reorder {
		for _, held := range st.pending {
			if held.timer != nil {
				held.timer.Stop()
			}
		}
	}
	c.stopNackTimers()
	c.stopTailTimers()
	for _, f := range c.flows {
		delete(c.mgr.flowPorts, f.srcPort)
	}
	delete(c.mgr.clients, c.port)
}

// OpenFlow creates a flow with the given service selection.
func (c *Client) OpenFlow(spec FlowSpec) (*Flow, error) {
	if spec.Group == 0 && spec.DstNode == 0 {
		return nil, fmt.Errorf("session: flow needs a destination node or group")
	}
	if spec.Group == 0 && spec.Anycast {
		return nil, fmt.Errorf("session: anycast flow needs a group")
	}
	f := &Flow{client: c, spec: spec, srcPort: c.mgr.allocEphemeral()}
	c.mgr.flowPorts[f.srcPort] = f
	c.flows = append(c.flows, f)
	return f, nil
}

// receive applies the flow's delivery semantics.
func (c *Client) receive(p *wire.Packet) {
	now := c.mgr.clock.Now()
	lat := now - p.Origin
	if !p.Flags.Has(wire.FOrdered) {
		if p.Deadline > 0 && lat > p.Deadline {
			c.stats.Late++
			return
		}
		c.deliverUp(p, lat)
		return
	}
	c.receiveOrdered(p, lat)
}

// receiveOrdered implements the destination hold-back buffer: deliver in
// sequence, flushing past gaps when a held packet's deadline expires, and
// discarding packets that arrive after later packets were delivered
// (§IV-A).
func (c *Client) receiveOrdered(p *wire.Packet, lat time.Duration) {
	id := flowID{src: p.Src, srcPort: p.SrcPort}
	st, ok := c.reorder[id]
	if !ok {
		st = &reorderState{next: 1, pending: make(map[uint32]*heldPacket)}
		c.reorder[id] = st
	}
	if p.FlowSeq > st.maxSeen {
		st.maxSeen = p.FlowSeq
	}
	if p.FlowSeq < st.next {
		if p.Flags.Has(wire.FRetrans) {
			// A redundant tail or recovery copy of something already
			// delivered.
			c.stats.Duplicates++
		} else {
			// Recovered too late: later packets were already delivered.
			c.stats.Late++
		}
		return
	}
	if _, dup := st.pending[p.FlowSeq]; dup {
		c.stats.Duplicates++
		return
	}
	held := &heldPacket{p: p}
	st.pending[p.FlowSeq] = held
	if p.Deadline > 0 {
		// Flush the buffer when this packet's delivery deadline passes.
		wait := p.Origin + p.Deadline - c.mgr.clock.Now()
		held.timer = c.mgr.clock.After(wait, func() { c.flushTo(id, p.FlowSeq) })
	}
	c.drain(id, st)
	// Reliable flows recover remaining gaps end to end.
	if packetWantsE2E(p) && len(st.missing(1)) > 0 {
		c.armNack(id, st)
	}
}

// drain delivers consecutively sequenced held packets.
func (c *Client) drain(id flowID, st *reorderState) {
	for {
		held, ok := st.pending[st.next]
		if !ok {
			return
		}
		delete(st.pending, st.next)
		if held.timer != nil {
			held.timer.Stop()
		}
		st.next++
		c.deliverUp(held.p, c.mgr.clock.Now()-held.p.Origin)
	}
}

// flushTo advances the flow past any gaps up to and including seq, then
// drains: the deadline has passed, so waiting longer only hurts.
func (c *Client) flushTo(id flowID, seq uint32) {
	if c.closed {
		return
	}
	st, ok := c.reorder[id]
	if !ok || seq < st.next {
		return
	}
	// Deliver everything held at or below seq in order, skipping gaps.
	for s := st.next; s <= seq; s++ {
		if held, ok := st.pending[s]; ok {
			delete(st.pending, s)
			if held.timer != nil {
				held.timer.Stop()
			}
			c.deliverUp(held.p, c.mgr.clock.Now()-held.p.Origin)
		}
	}
	st.next = seq + 1
	c.drain(id, st)
}

func (c *Client) deliverUp(p *wire.Packet, lat time.Duration) {
	if c.closed {
		return
	}
	c.stats.Received++
	c.stats.Latency.Add(lat)
	d := Delivery{
		From:          p.Src,
		SrcPort:       p.SrcPort,
		Seq:           p.FlowSeq,
		Group:         p.Group,
		Latency:       lat,
		Retransmitted: p.Flags.Has(wire.FRetrans),
		Payload:       p.Payload,
	}
	if c.onDeliver != nil {
		c.onDeliver(d)
		return
	}
	c.queue = append(c.queue, d)
}

// Flow is one application data flow with fixed service selection.
type Flow struct {
	client *Client
	spec   FlowSpec
	// srcPort uniquely identifies this flow overlay-wide (Src node +
	// SrcPort), keeping dedup keys and destination reorder state disjoint
	// across flows.
	srcPort wire.Port
	seq     uint32
	// mask caching across sends.
	mask        wire.Bitmask
	maskVersion uint64
	maskValid   bool
	// history retains sent packets for end-to-end recovery on reliable
	// flows.
	history   map[uint32]*wire.Packet
	histOrder []uint32
	tailTimer sim.Timer
	tailTries int
	closed    bool
	stats     metrics.FlowStats
}

// Spec returns the flow's service selection.
func (f *Flow) Spec() FlowSpec { return f.spec }

// Close releases the flow's source port, retained history, and timers.
// The client stays usable; sends on a closed flow fail.
func (f *Flow) Close() {
	if f.closed {
		return
	}
	f.closed = true
	if f.tailTimer != nil {
		f.tailTimer.Stop()
		f.tailTimer = nil
	}
	f.history = nil
	f.histOrder = nil
	delete(f.client.mgr.flowPorts, f.srcPort)
}

// Stats returns the flow's send-side accounting.
func (f *Flow) Stats() *metrics.FlowStats { return &f.stats }

// ErrBackpressure is returned by Send when every egress scheduler queue
// refused the packet (the flow's fair-share buffer at the first hop is
// saturated). The message was not queued anywhere: the application should
// back off and retry rather than treat the flow as failed.
var ErrBackpressure = link.ErrBackpressure

// Send transmits one application message on the flow. A send refused by
// first-hop admission control returns an error satisfying
// errors.Is(err, ErrBackpressure).
func (f *Flow) Send(payload []byte) error {
	if f.client.closed {
		return fmt.Errorf("session: send on closed client")
	}
	if f.closed {
		return fmt.Errorf("session: send on closed flow")
	}
	f.seq++
	p := &wire.Packet{
		Type:      wire.PTData,
		Route:     wire.RouteLinkState,
		LinkProto: f.spec.LinkProto,
		Priority:  f.spec.Priority,
		SrcPort:   f.srcPort,
		Dst:       f.spec.DstNode,
		DstPort:   f.spec.DstPort,
		Group:     f.spec.Group,
		FlowSeq:   f.seq,
		Deadline:  f.spec.Deadline,
		Payload:   payload,
	}
	if p.LinkProto == 0 {
		p.LinkProto = wire.LPBestEffort
	}
	if f.spec.Ordered {
		p.Flags |= wire.FOrdered
	}
	switch {
	case f.spec.Flood:
		p.Route = wire.RouteFlood
	case f.spec.Dissem != 0 || f.spec.DisjointK > 0:
		mask, err := f.sourceMask()
		if err != nil {
			return err
		}
		p.Route = wire.RouteSourceMask
		p.Mask = mask
	case f.spec.Group != 0 && f.spec.Anycast:
		p.Flags |= wire.FAnycast
	case f.spec.Group != 0:
		p.Route = wire.RouteMulticast
		p.Dst = 0
	}
	f.stats.Sent++
	if err := f.client.mgr.n.Originate(p); err != nil {
		return err
	}
	if wantsE2ERecovery(f.spec) {
		f.remember(p)
		f.armTailFlush()
	}
	return nil
}

// sourceMask computes (and caches per view version) the flow's
// source-route bitmask: a dissemination graph or K node-disjoint paths.
func (f *Flow) sourceMask() (wire.Bitmask, error) {
	n := f.client.mgr.n
	ver := n.LinkStateManager().Version()
	if f.maskValid && f.maskVersion == ver {
		return f.mask, nil
	}
	view := n.View()
	var mask wire.Bitmask
	var err error
	if f.spec.Dissem != 0 {
		mask, err = topology.DissemGraph(view, n.ID(), f.spec.DstNode, f.spec.Dissem, topology.LatencyMetric)
	} else {
		var paths [][]wire.NodeID
		paths, err = topology.KDisjointPaths(view, n.ID(), f.spec.DstNode, f.spec.DisjointK, topology.LatencyMetric)
		if err == nil {
			if len(paths) == 0 {
				return mask, fmt.Errorf("session: no path to %v", f.spec.DstNode)
			}
			mask, err = topology.DisjointMask(view, paths)
		}
	}
	if err != nil {
		return mask, fmt.Errorf("session: source mask: %w", err)
	}
	f.mask = mask
	f.maskVersion = ver
	f.maskValid = true
	return mask, nil
}

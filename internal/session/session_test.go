package session

import (
	"math/rand/v2"
	"testing"
	"time"

	"sonet/internal/node"
	"sonet/internal/sim"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// testWorld is a two-node overlay (10 ms link) over a direct in-test
// fabric with optional Bernoulli loss, avoiding the core package (which
// imports session).
type testWorld struct {
	sched *sim.Scheduler
	graph *topology.Graph
	nodes map[wire.NodeID]*node.Node
	loss  float64
	rng   *rand.Rand
	// burst, when set, drops every frame at instants where it returns
	// true — a deterministic time-windowed burst-loss model.
	burst func(time.Duration) bool
}

type testPort struct {
	w    *testWorld
	self wire.NodeID
}

func (p *testPort) Send(neighbor wire.NodeID, _ uint8, data []byte) {
	if p.w.loss > 0 && p.w.rng.Float64() < p.w.loss {
		return
	}
	if p.w.burst != nil && p.w.burst(p.w.sched.Now()) {
		return
	}
	buf := append([]byte(nil), data...)
	from := p.self
	p.w.sched.After(10*time.Millisecond, func() {
		if dst, ok := p.w.nodes[neighbor]; ok {
			dst.HandleUnderlay(from, buf)
		}
	})
}

func (p *testPort) PathCount(wire.NodeID) int { return 1 }

// RunFor advances virtual time.
func (w *testWorld) RunFor(d time.Duration) { w.sched.RunFor(d) }

// Sched exposes the scheduler for timed sends.
func (w *testWorld) Sched() *sim.Scheduler { return w.sched }

func world(t *testing.T, loss float64) (*testWorld, *Manager, *Manager) {
	t.Helper()
	g := topology.NewGraph()
	if _, err := g.AddLink(1, 2, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler(99)
	w := &testWorld{
		sched: sched,
		graph: g,
		nodes: make(map[wire.NodeID]*node.Node),
		loss:  loss,
		rng:   rand.New(rand.NewPCG(7, 7)),
	}
	mgrs := make(map[wire.NodeID]*Manager, 2)
	for _, id := range []wire.NodeID{1, 2} {
		n, err := node.New(node.Config{
			ID:       id,
			Clock:    sched,
			Underlay: &testPort{w: w, self: id},
			Graph:    g,
		})
		if err != nil {
			t.Fatalf("node.New: %v", err)
		}
		w.nodes[id] = n
		mgrs[id] = NewManager(n)
	}
	for _, n := range w.nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range w.nodes {
			n.Stop()
		}
	})
	w.RunFor(time.Second)
	return w, mgrs[1], mgrs[2]
}

func TestFlowsGetDistinctSourcePorts(t *testing.T) {
	_, m1, _ := world(t, 0)
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	f1, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	f2, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	if f1.srcPort == f2.srcPort {
		t.Fatalf("flows share source port %d", f1.srcPort)
	}
	if f1.srcPort == c.Port() || f2.srcPort == c.Port() {
		t.Fatal("flow port collides with client port")
	}
}

func TestTwoFlowsSameDestinationDoNotCollide(t *testing.T) {
	// Redundant routing dedups by (src, srcPort, …, seq): two flows with
	// identical destinations and overlapping sequence numbers must both
	// deliver.
	s, m1, m2 := world(t, 0)
	dst, err := m2.Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	fa, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100, Flood: true})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	fb, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100, Flood: true})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := fa.Send([]byte("a")); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if err := fb.Send([]byte("b")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	s.RunFor(time.Second)
	if got := len(dst.Deliveries()); got != 10 {
		t.Fatalf("delivered %d, want 10 (flows collided in dedup)", got)
	}
}

func TestEndToEndRecoveryRepairsDroppedPacket(t *testing.T) {
	// A reliable (ordered, no deadline) flow must survive packets that
	// vanish wholesale — here the first transmission window crosses a
	// 30% lossy link with best-effort hops, so recovery is purely the
	// session layer's NACK machinery.
	s, m1, m2 := world(t, 0.3)
	dst, err := m2.Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// Best-effort link protocol: the hop does not recover; end-to-end
	// NACKs must.
	flow, err := c.OpenFlow(FlowSpec{
		DstNode: 2, DstPort: 100,
		LinkProto: wire.LPBestEffort, Ordered: true,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		i := i
		s.Sched().After(time.Duration(i)*10*time.Millisecond, func() {
			if err := flow.Send([]byte{byte(i)}); err != nil {
				t.Errorf("Send: %v", err)
			}
		})
	}
	s.RunFor(30 * time.Second)
	got := dst.Deliveries()
	if len(got) != n {
		t.Fatalf("delivered %d/%d over 30%% loss with e2e recovery", len(got), n)
	}
	for i, d := range got {
		if d.Seq != uint32(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, d.Seq)
		}
	}
	// Recovery happened: some deliveries carry the retransmission mark.
	recovered := 0
	for _, d := range got {
		if d.Retransmitted {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no packet was recovered end to end")
	}
}

func TestEndToEndRecoveryGivesUpAfterMaxTries(t *testing.T) {
	s, m1, m2 := world(t, 0)
	m2.NackMaxTries = 3
	dst, err := m2.Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100, Ordered: true})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	// Send seq 1..3, then wipe the source history so NACKs cannot be
	// answered, then send 4: the gap never fills and must be flushed.
	for i := 0; i < 3; i++ {
		if err := flow.Send([]byte("x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	s.RunFor(100 * time.Millisecond)
	// Simulate total loss of seq 4 by forging the flow sequence forward:
	// the destination sees 5 after 3 and waits for 4 forever.
	flow.seq++ // 4 is never sent
	flow.history = nil
	flow.histOrder = nil
	if err := flow.Send([]byte("y")); err != nil { // seq 5
		t.Fatalf("Send: %v", err)
	}
	s.RunFor(10 * time.Second)
	got := dst.Deliveries()
	if len(got) != 4 {
		t.Fatalf("delivered %d, want 4 (gap flushed after give-up)", len(got))
	}
	last := got[len(got)-1]
	if last.Seq != 5 {
		t.Fatalf("last delivered seq %d, want 5", last.Seq)
	}
}

func TestOrderedDeadlineLateDiscard(t *testing.T) {
	s, m1, m2 := world(t, 0)
	dst, err := m2.Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// Deadline shorter than the 10 ms link: everything is late.
	flow, err := c.OpenFlow(FlowSpec{
		DstNode: 2, DstPort: 100,
		Ordered: true, Deadline: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := flow.Send(nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	s.RunFor(time.Second)
	// Held packets flush at their (already passed) deadline on arrival;
	// they deliver immediately rather than stall.
	if got := len(dst.Deliveries()); got != 3 {
		t.Fatalf("delivered %d, want 3 immediate flushes", got)
	}
}

func TestClientCloseReleasesFlowPorts(t *testing.T) {
	_, m1, _ := world(t, 0)
	c, err := m1.Connect(500)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	f, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	port := f.srcPort
	if _, ok := m1.flowPorts[port]; !ok {
		t.Fatal("flow port not registered")
	}
	c.Close()
	if _, ok := m1.flowPorts[port]; ok {
		t.Fatal("flow port leaked after client close")
	}
	if _, err := m1.Connect(500); err != nil {
		t.Fatalf("port 500 not released: %v", err)
	}
}

func TestSendOnClosedClient(t *testing.T) {
	_, m1, _ := world(t, 0)
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	f, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	c.Close()
	if err := f.Send(nil); err == nil {
		t.Fatal("send on closed client succeeded")
	}
}

func TestNackEncodingRoundTrip(t *testing.T) {
	k := &nack{origin: 7, port: 900, seqs: []uint32{3, 5, 1 << 30}}
	got, err := unmarshalNack(k.marshal())
	if err != nil {
		t.Fatalf("unmarshalNack: %v", err)
	}
	if got.origin != k.origin || got.port != k.port || len(got.seqs) != 3 {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range k.seqs {
		if got.seqs[i] != k.seqs[i] {
			t.Fatalf("seqs[%d] = %d, want %d", i, got.seqs[i], k.seqs[i])
		}
	}
	if _, err := unmarshalNack([]byte{1, 2}); err == nil {
		t.Fatal("truncated nack accepted")
	}
	if _, err := unmarshalNack([]byte{0, 7, 3, 132, 0, 9}); err == nil {
		t.Fatal("nack with missing seqs accepted")
	}
}

func TestEphemeralPortWrapAround(t *testing.T) {
	_, m1, _ := world(t, 0)
	m1.nextEphemeral = 65534
	a, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	b, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if a.Port() == 0 || b.Port() == 0 || c.Port() == 0 {
		t.Fatal("allocated port zero")
	}
	if a.Port() == c.Port() || b.Port() == c.Port() {
		t.Fatal("wrapped allocation collided")
	}
}

func TestFlowSpecVariantsInPackage(t *testing.T) {
	s, m1, m2 := world(t, 0)
	dst, err := m2.Connect(100)
	if err != nil {
		t.Fatal(err)
	}
	var got []Delivery
	dst.OnDeliver(func(d Delivery) { got = append(got, d) })
	dst.Join(77)
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	// Multicast, anycast, and disjoint-path flows in one world.
	mc, err := c.OpenFlow(FlowSpec{Group: 77, DstPort: 100})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := c.OpenFlow(FlowSpec{Group: 77, Anycast: true, DstPort: 100})
	if err != nil {
		t.Fatal(err)
	}
	dj, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100, DisjointK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Send([]byte("m")); err != nil {
		t.Fatalf("multicast send: %v", err)
	}
	if err := ac.Send([]byte("a")); err != nil {
		t.Fatalf("anycast send: %v", err)
	}
	if err := dj.Send([]byte("d")); err != nil {
		t.Fatalf("disjoint send: %v", err)
	}
	s.RunFor(time.Second)
	if len(got) != 3 {
		t.Fatalf("delivered %d, want 3", len(got))
	}
	if dj.Spec().DisjointK != 1 || dj.Stats().Sent != 1 {
		t.Fatalf("flow accessors: %+v %+v", dj.Spec(), dj.Stats())
	}
	dst.Leave(77)
	s.RunFor(time.Second)
	if err := mc.Send([]byte("m2")); err != nil {
		t.Fatalf("send after leave: %v", err)
	}
	s.RunFor(time.Second)
	if len(got) != 3 {
		t.Fatalf("delivered to departed member: %d", len(got))
	}
	if m1.Node() == nil || m1.NoClientDrops() != 0 {
		t.Fatalf("manager accessors: drops=%d", m1.NoClientDrops())
	}
}

func TestHistoryEviction(t *testing.T) {
	s, m1, m2 := world(t, 0)
	m1.HistoryLimit = 8
	if _, err := m2.Connect(100); err != nil {
		t.Fatal(err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	flow, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100, Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := flow.Send(nil); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(time.Second)
	if len(flow.history) != 8 {
		t.Fatalf("history holds %d entries, want 8", len(flow.history))
	}
	if _, ok := flow.history[20]; !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := flow.history[1]; ok {
		t.Fatal("oldest entry retained")
	}
	// A NACK for an evicted sequence is silently unanswerable.
	flow.resend(1)
	flow.resend(20) // answerable
	s.RunFor(time.Second)
}

func TestDissemFlowInPackage(t *testing.T) {
	s, m1, m2 := world(t, 0)
	dst, err := m2.Connect(100)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	flow, err := c.OpenFlow(FlowSpec{
		DstNode: 2, DstPort: 100,
		Dissem: topology.ProblemSource,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := flow.Send([]byte("x")); err != nil {
		t.Fatalf("dissem send: %v", err)
	}
	s.RunFor(time.Second)
	if got := len(dst.Deliveries()); got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	// The mask is cached across sends while the view is unchanged.
	if !flow.maskValid {
		t.Fatal("mask not cached")
	}
	if err := flow.Send([]byte("y")); err != nil {
		t.Fatalf("second send: %v", err)
	}
}

func TestFlowClose(t *testing.T) {
	s, m1, m2 := world(t, 0)
	if _, err := m2.Connect(100); err != nil {
		t.Fatal(err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100, Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	port := f.srcPort
	f.Close()
	f.Close() // idempotent
	if err := f.Send(nil); err == nil {
		t.Fatal("send on closed flow succeeded")
	}
	if _, ok := m1.flowPorts[port]; ok {
		t.Fatal("flow port retained after Close")
	}
	if f.history != nil {
		t.Fatal("history retained after Close")
	}
	// The client itself stays usable.
	f2, err := c.OpenFlow(FlowSpec{DstNode: 2, DstPort: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Send(nil); err != nil {
		t.Fatal(err)
	}
}

func TestReliableStreamSurvivesSustainedBurstLoss(t *testing.T) {
	// Deterministic burst storms: every 500 ms the link goes totally dark
	// for 200 ms, for the whole 5 s send window. Bursts swallow data,
	// NACKs, and retransmissions alike; the reliable stream must still
	// deliver everything, in order, without duplicates.
	s, m1, m2 := world(t, 0)
	s.burst = func(now time.Duration) bool {
		if now > 6*time.Second {
			return false // storms end; recovery may finish
		}
		return now%(500*time.Millisecond) < 200*time.Millisecond
	}
	dst, err := m2.Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := c.OpenFlow(FlowSpec{
		DstNode: 2, DstPort: 100,
		LinkProto: wire.LPBestEffort, Ordered: true,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		s.Sched().After(time.Duration(i)*25*time.Millisecond, func() {
			if err := flow.Send([]byte{byte(i)}); err != nil {
				t.Errorf("Send: %v", err)
			}
		})
	}
	s.RunFor(60 * time.Second)
	got := dst.Deliveries()
	if len(got) != n {
		t.Fatalf("delivered %d/%d through burst storms", len(got), n)
	}
	for i, d := range got {
		if d.Seq != uint32(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, d.Seq)
		}
	}
	recovered := 0
	for _, d := range got {
		if d.Retransmitted {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("bursts swallowed nothing? no packet was recovered")
	}
}

func TestReliableStreamSurvivesDestinationRestart(t *testing.T) {
	// Mid-stream the destination node crashes with total state loss and a
	// fresh incarnation (new node, new session manager, new client) takes
	// its place. The reborn destination has no reorder state, so its first
	// arrival opens a gap back to seq 1; end-to-end NACK recovery against
	// the source's retained history must replay the entire stream to the
	// new client, in order.
	s, m1, m2 := world(t, 0)
	if _, err := m2.Connect(100); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c, err := m1.Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := c.OpenFlow(FlowSpec{
		DstNode: 2, DstPort: 100,
		LinkProto: wire.LPBestEffort, Ordered: true,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	const n = 150
	send := func(i int) {
		if err := flow.Send([]byte{byte(i)}); err != nil {
			t.Errorf("Send: %v", err)
		}
	}
	// Phase 1: seq 1..50 delivered to the first incarnation.
	for i := 0; i < 50; i++ {
		i := i
		s.Sched().After(time.Duration(i)*10*time.Millisecond, func() { send(i) })
	}
	s.RunFor(time.Second)

	// Crash: the node vanishes from the underlay, its manager closes.
	s.nodes[2].Stop()
	delete(s.nodes, 2)
	m2.Close()

	// Phase 2: seq 51..100 sent into the void while the node is down.
	for i := 50; i < 100; i++ {
		i := i
		s.Sched().After(time.Duration(i-50)*10*time.Millisecond, func() { send(i) })
	}
	s.RunFor(time.Second)

	// Restart: a brand-new incarnation with zero session state.
	n2, err := node.New(node.Config{
		ID: 2, Clock: s.Sched(),
		Underlay: &testPort{w: s, self: 2},
		Graph:    s.graph,
	})
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	s.nodes[2] = n2
	m2b := NewManager(n2)
	n2.Start()
	dst2, err := m2b.Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}

	// Phase 3: seq 101..150 reach the new incarnation and expose the gap.
	for i := 100; i < n; i++ {
		i := i
		s.Sched().After(time.Duration(i-100)*10*time.Millisecond, func() { send(i) })
	}
	s.RunFor(60 * time.Second)

	got := dst2.Deliveries()
	if len(got) != n {
		t.Fatalf("new incarnation delivered %d/%d (gap not repaired from history)", len(got), n)
	}
	for i, d := range got {
		if d.Seq != uint32(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, d.Seq)
		}
	}
	if !got[0].Retransmitted {
		t.Fatal("seq 1 reached the new incarnation without retransmission?")
	}
}

package session

import (
	"encoding/binary"
	"fmt"

	"sonet/internal/wire"
)

// End-to-end recovery gives ordered unicast flows without a deadline the
// "completely reliable" service the paper's control traffic needs
// (§III-B, §IV-B Reliable messaging): hop-by-hop ARQ recovers link loss,
// but packets in flight on a link that dies are gone and must be recovered
// end to end. The destination session detects flow-sequence gaps and
// NACKs them to the source, which retains a bounded history and reinjects
// the missing packets (with their original origin timestamps, so measured
// latency stays honest).

// nackHeaderLen is origin(2) port(2) count(2).
const nackHeaderLen = 6

// maxNackSeqs bounds sequences per NACK packet.
const maxNackSeqs = 64

// nack identifies missing flow sequences back to the source flow.
type nack struct {
	// origin is the destination node sending the NACK.
	origin wire.NodeID
	// port is the destination client's port (the flow's DstPort).
	port wire.Port
	// seqs lists the missing flow sequences.
	seqs []uint32
}

func (k *nack) marshal() []byte {
	buf := make([]byte, nackHeaderLen, nackHeaderLen+4*len(k.seqs))
	binary.BigEndian.PutUint16(buf[0:], uint16(k.origin))
	binary.BigEndian.PutUint16(buf[2:], uint16(k.port))
	binary.BigEndian.PutUint16(buf[4:], uint16(len(k.seqs)))
	var s [4]byte
	for _, seq := range k.seqs {
		binary.BigEndian.PutUint32(s[:], seq)
		buf = append(buf, s[:]...)
	}
	return buf
}

func unmarshalNack(src []byte) (*nack, error) {
	if len(src) < nackHeaderLen {
		return nil, fmt.Errorf("session: nack header %d bytes", len(src))
	}
	k := &nack{
		origin: wire.NodeID(binary.BigEndian.Uint16(src[0:])),
		port:   wire.Port(binary.BigEndian.Uint16(src[2:])),
	}
	count := int(binary.BigEndian.Uint16(src[4:]))
	src = src[nackHeaderLen:]
	if len(src) < 4*count {
		return nil, fmt.Errorf("session: nack with %d seqs in %d bytes", count, len(src))
	}
	k.seqs = make([]uint32, count)
	for i := range k.seqs {
		k.seqs[i] = binary.BigEndian.Uint32(src[4*i:])
	}
	return k, nil
}

// wantsE2ERecovery reports whether a flow uses the reliable transport
// service: ordered unicast with no deadline.
func wantsE2ERecovery(spec FlowSpec) bool {
	return spec.Ordered && spec.Deadline == 0 && spec.DstNode != 0 && spec.Group == 0
}

// packetWantsE2E mirrors wantsE2ERecovery on the receive side.
func packetWantsE2E(p *wire.Packet) bool {
	return p.Flags.Has(wire.FOrdered) && p.Deadline == 0 && p.Group == 0
}

// armNack schedules (or reschedules) the gap-recovery timer for one flow's
// reorder state.
func (c *Client) armNack(id flowID, st *reorderState) {
	if st.nackTimer != nil || c.closed {
		return
	}
	st.nackTimer = c.mgr.clock.After(c.mgr.NackInterval, func() {
		st.nackTimer = nil
		c.nackTick(id, st)
	})
}

// nackTick requests the flow's missing sequences from the source, giving
// up (and flushing past the gap) after NackMaxTries attempts.
func (c *Client) nackTick(id flowID, st *reorderState) {
	if c.closed {
		return
	}
	missing := st.missing(maxNackSeqs)
	if len(missing) == 0 {
		st.nackTries = 0
		return
	}
	st.nackTries++
	if st.nackTries > c.mgr.NackMaxTries {
		// The source is gone or its history no longer covers the gap;
		// deliver what we have rather than stalling forever.
		st.nackTries = 0
		c.flushTo(id, st.maxSeen)
		return
	}
	k := nack{origin: c.mgr.n.ID(), port: c.port, seqs: missing}
	p := &wire.Packet{
		Type:      wire.PTSessionCtl,
		Route:     wire.RouteLinkState,
		LinkProto: wire.LPReliable,
		Dst:       id.src,
		DstPort:   id.srcPort,
		SrcPort:   c.port,
		Payload:   k.marshal(),
	}
	_ = c.mgr.n.Originate(p)
	c.armNack(id, st)
}

// missing returns up to max sequences in (next-1, maxSeen] absent from the
// hold-back buffer.
func (st *reorderState) missing(max int) []uint32 {
	var out []uint32
	for seq := st.next; seq <= st.maxSeen && len(out) < max; seq++ {
		if _, ok := st.pending[seq]; !ok {
			out = append(out, seq)
		}
	}
	return out
}

// handleNack retransmits the requested sequences of the flow addressed by
// the NACK's destination port.
func (m *Manager) handleNack(p *wire.Packet) {
	f, ok := m.flowPorts[p.DstPort]
	if !ok {
		m.noClient++
		return
	}
	k, err := unmarshalNack(p.Payload)
	if err != nil {
		return
	}
	if f.spec.DstNode != k.origin || f.spec.DstPort != k.port {
		return
	}
	for _, seq := range k.seqs {
		f.resend(seq)
	}
}

// resend reinjects one sequence from the flow's history.
func (f *Flow) resend(seq uint32) {
	p, ok := f.history[seq]
	if !ok {
		return
	}
	cp := p.Clone()
	cp.Flags |= wire.FRetrans
	f.stats.Duplicates++
	_ = f.client.mgr.n.Resend(cp)
}

// remember retains a sent packet for end-to-end recovery, evicting the
// oldest beyond the history limit.
func (f *Flow) remember(p *wire.Packet) {
	if f.history == nil {
		f.history = make(map[uint32]*wire.Packet)
	}
	f.history[p.FlowSeq] = p
	f.histOrder = append(f.histOrder, p.FlowSeq)
	for len(f.histOrder) > f.client.mgr.HistoryLimit {
		old := f.histOrder[0]
		f.histOrder = f.histOrder[1:]
		delete(f.history, old)
	}
}

// armTailFlush (re)schedules the tail-protection timer: if the flow goes
// quiet, the last packet is re-sent a bounded number of times so the
// destination learns about (and can NACK) any trailing losses.
func (f *Flow) armTailFlush() {
	if f.tailTimer != nil {
		f.tailTimer.Stop()
	}
	f.tailTries = 0
	f.scheduleTail()
}

func (f *Flow) scheduleTail() {
	interval := f.client.mgr.TailFlushInterval << f.tailTries
	f.tailTimer = f.client.mgr.clock.After(interval, func() {
		f.tailTimer = nil
		if f.client.closed || f.tailTries >= f.client.mgr.TailFlushTries {
			return
		}
		f.tailTries++
		f.resend(f.seq)
		f.scheduleTail()
	})
}

// stopTailTimers cancels tail-protection timers on client close.
func (c *Client) stopTailTimers() {
	for _, f := range c.flows {
		if f.tailTimer != nil {
			f.tailTimer.Stop()
			f.tailTimer = nil
		}
	}
}

// stopNackTimers cancels gap-recovery timers on client close.
func (c *Client) stopNackTimers() {
	for _, st := range c.reorder {
		if st.nackTimer != nil {
			st.nackTimer.Stop()
			st.nackTimer = nil
		}
	}
}

package netemu

import (
	"fmt"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// SiteID identifies a data center hosting overlay nodes.
type SiteID uint16

// ISPID identifies an Internet service provider backbone.
type ISPID uint8

// FiberID identifies one fiber span (a direct site-to-site physical path
// within one ISP's backbone).
type FiberID int

// Handler receives packets delivered to an overlay node's address.
type Handler func(from wire.NodeID, data []byte)

// Config parameterizes the emulated underlay.
type Config struct {
	// ConvergenceDelay is how long native IP routing takes to route
	// around a failure — the BGP convergence the paper contrasts against
	// ("the 40 seconds to minutes that BGP may take to converge during
	// some network faults", §II-A).
	ConvergenceDelay time.Duration
	// RestoreDelay is how long routing takes to reuse a repaired fiber;
	// route re-announcement is much faster than withdrawal convergence.
	RestoreDelay time.Duration
}

// DefaultConfig matches the paper's stated BGP behaviour.
func DefaultConfig() Config {
	return Config{ConvergenceDelay: 40 * time.Second, RestoreDelay: 5 * time.Second}
}

// Stats counts packet fates across the underlay. Every sent packet ends in
// exactly one of the other counters:
// Sent == Delivered + DroppedLoss + DroppedDown + DroppedNoRoute.
type Stats struct {
	// Sent counts Send calls.
	Sent uint64
	// Delivered counts packets handed to destination handlers.
	Delivered uint64
	// DroppedLoss counts packets lost to the stochastic loss models.
	DroppedLoss uint64
	// DroppedDown counts packets that hit a cut fiber or dead site before
	// routing converged around it.
	DroppedDown uint64
	// DroppedNoRoute counts packets with no usable converged route or no
	// registered destination.
	DroppedNoRoute uint64
}

type site struct {
	name string
	up   bool
}

type fiber struct {
	id      FiberID
	isp     ISPID
	a, b    SiteID
	latency time.Duration
	jitter  time.Duration
	loss    LossModel
	cut     bool
	// convergedUp is the up/down state routing currently believes for this
	// fiber; it lags reality (cut) by the provider's convergence delay.
	convergedUp bool
}

// halfFiber is one directed half of a fiber in a provider's adjacency
// list: the far endpoint and the fiber that reaches it.
type halfFiber struct {
	to    SiteID
	fiber FiberID
}

// isp holds one provider's backbone graph and its converged routing state.
type isp struct {
	name string
	// extraLoss models provider-wide degradation (brown-out) as an added
	// independent drop probability on every fiber of this ISP.
	extraLoss float64
	// fibers of this provider.
	fibers []FiberID
	// adj is the provider's adjacency list indexed by SiteID, maintained
	// incrementally by AddFiber so the SPF never scans unrelated fibers.
	adj [][]halfFiber
	// epoch is the provider's topology epoch: bumped whenever the
	// converged view changes (fiber laid, convergence event applied, site
	// liveness change). Cached routes record the epoch they were computed
	// under and are recomputed lazily on mismatch.
	epoch uint64
}

// Network is the emulated underlay. All methods must be called from the
// simulation goroutine (the scheduler's event context); the emulator is
// intentionally single-threaded for determinism.
type Network struct {
	sched *sim.Scheduler
	cfg   Config

	sites  []site
	isps   []isp
	fibers []fiber

	// Node tables indexed densely by wire.NodeID so the per-packet path
	// does no map lookups. attached distinguishes "never attached" from
	// the zero SiteID.
	attach   []SiteID
	attached []bool
	handlers []Handler

	routes routeCache

	// freeDeliveries pools in-flight delivery records so a steady packet
	// stream schedules deliveries without allocating.
	freeDeliveries []*delivery

	stats Stats
}

// New returns an empty underlay driven by sched.
func New(sched *sim.Scheduler, cfg Config) *Network {
	if cfg.ConvergenceDelay <= 0 {
		cfg.ConvergenceDelay = DefaultConfig().ConvergenceDelay
	}
	if cfg.RestoreDelay <= 0 {
		cfg.RestoreDelay = DefaultConfig().RestoreDelay
	}
	return &Network{sched: sched, cfg: cfg}
}

// AddSite registers a data center and returns its ID.
func (n *Network) AddSite(name string) SiteID {
	n.sites = append(n.sites, site{name: name, up: true})
	return SiteID(len(n.sites) - 1)
}

// AddISP registers a provider backbone and returns its ID.
func (n *Network) AddISP(name string) ISPID {
	n.isps = append(n.isps, isp{name: name})
	n.routes.addProvider()
	return ISPID(len(n.isps) - 1)
}

// AddFiber lays a fiber span between two sites within one ISP's backbone.
// Jitter adds a uniform [0, jitter) delay per packet.
func (n *Network) AddFiber(provider ISPID, a, b SiteID, latency, jitter time.Duration, loss LossModel) (FiberID, error) {
	if int(provider) >= len(n.isps) {
		return 0, fmt.Errorf("netemu: unknown ISP %d", provider)
	}
	if int(a) >= len(n.sites) || int(b) >= len(n.sites) || a == b {
		return 0, fmt.Errorf("netemu: bad fiber endpoints %d-%d", a, b)
	}
	if loss == nil {
		loss = NoLoss{}
	}
	id := FiberID(len(n.fibers))
	n.fibers = append(n.fibers, fiber{
		id: id, isp: provider, a: a, b: b,
		latency: latency, jitter: jitter, loss: loss,
		convergedUp: true,
	})
	prov := &n.isps[provider]
	prov.fibers = append(prov.fibers, id)
	if need := int(max16(a, b)) + 1; need > len(prov.adj) {
		adj := make([][]halfFiber, need)
		copy(adj, prov.adj)
		prov.adj = adj
	}
	prov.adj[a] = append(prov.adj[a], halfFiber{to: b, fiber: id})
	prov.adj[b] = append(prov.adj[b], halfFiber{to: a, fiber: id})
	n.bumpEpoch(provider)
	return id, nil
}

func max16(a, b SiteID) SiteID {
	if a > b {
		return a
	}
	return b
}

// AttachNode places an overlay node in a site and registers its packet
// handler.
func (n *Network) AttachNode(node wire.NodeID, at SiteID, h Handler) error {
	if int(at) >= len(n.sites) {
		return fmt.Errorf("netemu: unknown site %d", at)
	}
	if need := int(node) + 1; need > len(n.attach) {
		// Grow all three tables in lockstep, doubling to amortize
		// ascending-ID attachment.
		size := need
		if s := 2 * len(n.attach); s > size {
			size = s
		}
		attach := make([]SiteID, size)
		copy(attach, n.attach)
		attached := make([]bool, size)
		copy(attached, n.attached)
		handlers := make([]Handler, size)
		copy(handlers, n.handlers)
		n.attach, n.attached, n.handlers = attach, attached, handlers
	}
	n.attach[node] = at
	n.attached[node] = true
	n.handlers[node] = h
	return nil
}

// NodeSite returns the site a node is attached to.
func (n *Network) NodeSite(node wire.NodeID) (SiteID, bool) {
	if int(node) >= len(n.attached) || !n.attached[node] {
		return 0, false
	}
	return n.attach[node], true
}

// Stats returns a snapshot of underlay counters.
func (n *Network) Stats() Stats { return n.stats }

// RouteCacheStats returns a snapshot of the underlay route-cache counters.
func (n *Network) RouteCacheStats() metrics.RouteCacheSnapshot {
	return n.routes.stats.Snapshot()
}

// delivery is one in-flight packet: a pooled sim.Runner that performs the
// destination-side checks and hands the payload to the handler.
type delivery struct {
	net      *Network
	from, to wire.NodeID
	buf      *wire.Buf
}

// Run implements sim.Runner at the packet's arrival instant.
func (d *delivery) Run() {
	n, from, to, buf := d.net, d.from, d.to, d.buf
	d.buf = nil
	n.freeDeliveries = append(n.freeDeliveries, d)
	defer buf.Release()
	st, ok := n.NodeSite(to)
	if !ok || !n.sites[st].up {
		n.stats.DroppedDown++
		return
	}
	h := n.handlers[to]
	if h == nil {
		// The destination detached (or attached with no handler) while the
		// packet was in flight: the address no longer routes anywhere.
		n.stats.DroppedNoRoute++
		return
	}
	n.stats.Delivered++
	h(from, buf.B)
}

// Send transmits data from one overlay node to another over the given
// provider's backbone. Like IP, it never reports delivery failure to the
// sender: packets are silently dropped on loss, on fibers that are cut but
// not yet routed around, or when no route exists.
//
// On a stable topology the path is amortized allocation-free: the route
// comes from the epoch-checked cache, the payload copy from the shared
// buffer pool, and the delivery event from pooled scheduler state.
func (n *Network) Send(from, to wire.NodeID, provider ISPID, data []byte) {
	n.stats.Sent++
	srcSite, ok := n.NodeSite(from)
	if !ok {
		n.stats.DroppedNoRoute++
		return
	}
	dstSite, ok := n.NodeSite(to)
	if !ok {
		n.stats.DroppedNoRoute++
		return
	}
	if !n.sites[srcSite].up || !n.sites[dstSite].up {
		n.stats.DroppedDown++
		return
	}
	if int(provider) >= len(n.isps) {
		n.stats.DroppedNoRoute++
		return
	}

	path, _, ok := n.convergedPath(provider, srcSite, dstSite)
	if !ok {
		n.stats.DroppedNoRoute++
		return
	}

	var latency time.Duration
	prov := &n.isps[provider]
	for _, fid := range path {
		f := &n.fibers[fid]
		// Reality check: routing may still believe in a fiber that has
		// just been cut, or traverse a site that has just died.
		if f.cut || !n.sites[f.a].up || !n.sites[f.b].up {
			n.stats.DroppedDown++
			return
		}
		if f.loss.Drop(n.sched.Now(), n.sched.Rand()) {
			n.stats.DroppedLoss++
			return
		}
		if prov.extraLoss > 0 && n.sched.Rand().Float64() < prov.extraLoss {
			n.stats.DroppedLoss++
			return
		}
		latency += f.latency
		if f.jitter > 0 {
			latency += time.Duration(n.sched.Rand().Int64N(int64(f.jitter)))
		}
	}

	// The sender borrows data, so the in-flight copy lives in a pooled
	// buffer released once the destination handler returns (handlers borrow
	// the bytes too).
	buf := wire.DefaultBufPool.Get(len(data))
	buf.B = append(buf.B, data...)
	var d *delivery
	if l := len(n.freeDeliveries); l > 0 {
		d = n.freeDeliveries[l-1]
		n.freeDeliveries[l-1] = nil
		n.freeDeliveries = n.freeDeliveries[:l-1]
	} else {
		d = &delivery{net: n}
	}
	d.from, d.to, d.buf = from, to, buf
	n.sched.AfterRunner(latency, d)
}

// PathLatency returns the current converged route's nominal latency
// between two nodes on one provider, for planning and tests.
func (n *Network) PathLatency(from, to wire.NodeID, provider ISPID) (time.Duration, bool) {
	srcSite, ok := n.NodeSite(from)
	if !ok {
		return 0, false
	}
	dstSite, ok := n.NodeSite(to)
	if !ok {
		return 0, false
	}
	if int(provider) >= len(n.isps) {
		return 0, false
	}
	_, latency, ok := n.convergedPath(provider, srcSite, dstSite)
	return latency, ok
}

// CutFiber severs a fiber immediately; native routing notices after the
// convergence delay.
func (n *Network) CutFiber(id FiberID) {
	if int(id) >= len(n.fibers) || n.fibers[id].cut {
		return
	}
	n.fibers[id].cut = true
	n.scheduleConvergence(n.fibers[id].isp, id)
}

// RestoreFiber repairs a fiber; routing reuses it after the convergence
// delay.
func (n *Network) RestoreFiber(id FiberID) {
	if int(id) >= len(n.fibers) || !n.fibers[id].cut {
		return
	}
	n.fibers[id].cut = false
	n.scheduleConvergence(n.fibers[id].isp, id)
}

// FiberCut reports whether a fiber is currently severed.
func (n *Network) FiberCut(id FiberID) bool {
	return int(id) < len(n.fibers) && n.fibers[id].cut
}

// SetFiberLatency overrides a fiber's propagation latency and jitter — the
// per-fiber fault hook behind latency/jitter spike injection. Latency
// participates in converged route choice, so the provider's cached routes
// are invalidated when the value actually changes. It reports whether the
// fiber exists and the latency is valid.
func (n *Network) SetFiberLatency(id FiberID, latency, jitter time.Duration) bool {
	if int(id) >= len(n.fibers) || id < 0 || latency < 0 || jitter < 0 {
		return false
	}
	f := &n.fibers[id]
	if f.latency == latency && f.jitter == jitter {
		return true
	}
	f.latency, f.jitter = latency, jitter
	n.bumpEpoch(f.isp)
	return true
}

// FiberLatency returns a fiber's current nominal latency and jitter, so
// fault injectors can save values before spiking and restore them after.
func (n *Network) FiberLatency(id FiberID) (latency, jitter time.Duration, ok bool) {
	if int(id) >= len(n.fibers) || id < 0 {
		return 0, 0, false
	}
	f := &n.fibers[id]
	return f.latency, f.jitter, true
}

// Partition cuts every currently intact fiber crossing the bipartition
// (sites in groupA versus all other sites) across all providers, and
// returns the fibers it cut so Heal can undo exactly this partition.
// Fibers that were already cut are left alone and not returned: healing a
// partition must not resurrect independently injected faults.
func (n *Network) Partition(groupA []SiteID) []FiberID {
	inA := make([]bool, len(n.sites))
	for _, s := range groupA {
		if int(s) < len(inA) {
			inA[s] = true
		}
	}
	var cut []FiberID
	for i := range n.fibers {
		f := &n.fibers[i]
		if f.cut || inA[f.a] == inA[f.b] {
			continue
		}
		cut = append(cut, f.id)
		n.CutFiber(f.id)
	}
	return cut
}

// Heal restores a set of fibers (typically the return value of Partition).
// Fibers already restored by other means are left alone.
func (n *Network) Heal(ids []FiberID) {
	for _, id := range ids {
		n.RestoreFiber(id)
	}
}

// SetSiteUp marks a whole data center up or down. Traffic to, from, or
// through a dead site is dropped.
func (n *Network) SetSiteUp(id SiteID, up bool) {
	if int(id) >= len(n.sites) || n.sites[id].up == up {
		return
	}
	n.sites[id].up = up
	// Converged routes ignore site liveness (Send's reality check drops at
	// dead sites, matching IP's lack of host-level routing), so cached
	// routes would stay correct — but invalidating keeps the rule simple:
	// every topology-affecting mutation bumps epochs.
	n.bumpAllEpochs()
}

// SetISPExtraLoss models a provider-wide degradation: an added independent
// drop probability applied on every fiber of the provider. Loss does not
// affect route choice, so cached routes stay valid.
func (n *Network) SetISPExtraLoss(provider ISPID, p float64) {
	if int(provider) < len(n.isps) {
		n.isps[provider].extraLoss = p
	}
}

func (n *Network) scheduleConvergence(provider ISPID, id FiberID) {
	delay := n.cfg.ConvergenceDelay
	if !n.fibers[id].cut {
		delay = n.cfg.RestoreDelay
	}
	n.sched.After(delay, func() {
		// Converge to the fiber's state *now*, not the state at scheduling
		// time, so rapid flap sequences settle on reality. The epoch moves
		// only when the converged view actually changes; a flap that
		// settles back before its convergence event fires keeps every
		// cached route valid.
		if up := !n.fibers[id].cut; n.fibers[id].convergedUp != up {
			n.fibers[id].convergedUp = up
			n.bumpEpoch(provider)
		}
	})
}

package netemu

import (
	"fmt"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// SiteID identifies a data center hosting overlay nodes.
type SiteID uint16

// ISPID identifies an Internet service provider backbone.
type ISPID uint8

// FiberID identifies one fiber span (a direct site-to-site physical path
// within one ISP's backbone).
type FiberID int

// Handler receives packets delivered to an overlay node's address.
type Handler func(from wire.NodeID, data []byte)

// Config parameterizes the emulated underlay.
type Config struct {
	// ConvergenceDelay is how long native IP routing takes to route
	// around a failure — the BGP convergence the paper contrasts against
	// ("the 40 seconds to minutes that BGP may take to converge during
	// some network faults", §II-A).
	ConvergenceDelay time.Duration
	// RestoreDelay is how long routing takes to reuse a repaired fiber;
	// route re-announcement is much faster than withdrawal convergence.
	RestoreDelay time.Duration
}

// DefaultConfig matches the paper's stated BGP behaviour.
func DefaultConfig() Config {
	return Config{ConvergenceDelay: 40 * time.Second, RestoreDelay: 5 * time.Second}
}

// Stats counts packet fates across the underlay.
type Stats struct {
	// Sent counts Send calls.
	Sent uint64
	// Delivered counts packets handed to destination handlers.
	Delivered uint64
	// DroppedLoss counts packets lost to the stochastic loss models.
	DroppedLoss uint64
	// DroppedDown counts packets that hit a cut fiber or dead site before
	// routing converged around it.
	DroppedDown uint64
	// DroppedNoRoute counts packets with no usable converged route.
	DroppedNoRoute uint64
}

type site struct {
	name string
	up   bool
}

type fiber struct {
	id      FiberID
	isp     ISPID
	a, b    SiteID
	latency time.Duration
	jitter  time.Duration
	loss    LossModel
	cut     bool
}

// isp holds one provider's backbone graph and its converged routing state.
type isp struct {
	name string
	// extraLoss models provider-wide degradation (brown-out) as an added
	// independent drop probability on every fiber of this ISP.
	extraLoss float64
	// fibers of this provider.
	fibers []FiberID
	// converged holds the fiber up/down state routing currently believes;
	// it lags reality by ConvergenceDelay.
	converged map[FiberID]bool
}

// Network is the emulated underlay. All methods must be called from the
// simulation goroutine (the scheduler's event context); the emulator is
// intentionally single-threaded for determinism.
type Network struct {
	sched *sim.Scheduler
	cfg   Config

	sites  []site
	isps   []isp
	fibers []fiber

	attach   map[wire.NodeID]SiteID
	handlers map[wire.NodeID]Handler

	stats Stats
}

// New returns an empty underlay driven by sched.
func New(sched *sim.Scheduler, cfg Config) *Network {
	if cfg.ConvergenceDelay <= 0 {
		cfg.ConvergenceDelay = DefaultConfig().ConvergenceDelay
	}
	if cfg.RestoreDelay <= 0 {
		cfg.RestoreDelay = DefaultConfig().RestoreDelay
	}
	return &Network{
		sched:    sched,
		cfg:      cfg,
		attach:   make(map[wire.NodeID]SiteID),
		handlers: make(map[wire.NodeID]Handler),
	}
}

// AddSite registers a data center and returns its ID.
func (n *Network) AddSite(name string) SiteID {
	n.sites = append(n.sites, site{name: name, up: true})
	return SiteID(len(n.sites) - 1)
}

// AddISP registers a provider backbone and returns its ID.
func (n *Network) AddISP(name string) ISPID {
	n.isps = append(n.isps, isp{name: name, converged: make(map[FiberID]bool)})
	return ISPID(len(n.isps) - 1)
}

// AddFiber lays a fiber span between two sites within one ISP's backbone.
// Jitter adds a uniform [0, jitter) delay per packet.
func (n *Network) AddFiber(provider ISPID, a, b SiteID, latency, jitter time.Duration, loss LossModel) (FiberID, error) {
	if int(provider) >= len(n.isps) {
		return 0, fmt.Errorf("netemu: unknown ISP %d", provider)
	}
	if int(a) >= len(n.sites) || int(b) >= len(n.sites) || a == b {
		return 0, fmt.Errorf("netemu: bad fiber endpoints %d-%d", a, b)
	}
	if loss == nil {
		loss = NoLoss{}
	}
	id := FiberID(len(n.fibers))
	n.fibers = append(n.fibers, fiber{
		id: id, isp: provider, a: a, b: b,
		latency: latency, jitter: jitter, loss: loss,
	})
	n.isps[provider].fibers = append(n.isps[provider].fibers, id)
	n.isps[provider].converged[id] = true
	return id, nil
}

// AttachNode places an overlay node in a site and registers its packet
// handler.
func (n *Network) AttachNode(node wire.NodeID, at SiteID, h Handler) error {
	if int(at) >= len(n.sites) {
		return fmt.Errorf("netemu: unknown site %d", at)
	}
	n.attach[node] = at
	n.handlers[node] = h
	return nil
}

// NodeSite returns the site a node is attached to.
func (n *Network) NodeSite(node wire.NodeID) (SiteID, bool) {
	s, ok := n.attach[node]
	return s, ok
}

// Stats returns a snapshot of underlay counters.
func (n *Network) Stats() Stats { return n.stats }

// Send transmits data from one overlay node to another over the given
// provider's backbone. Like IP, it never reports delivery failure to the
// sender: packets are silently dropped on loss, on fibers that are cut but
// not yet routed around, or when no route exists.
func (n *Network) Send(from, to wire.NodeID, provider ISPID, data []byte) {
	n.stats.Sent++
	srcSite, ok := n.attach[from]
	if !ok {
		n.stats.DroppedNoRoute++
		return
	}
	dstSite, ok := n.attach[to]
	if !ok {
		n.stats.DroppedNoRoute++
		return
	}
	if !n.sites[srcSite].up || !n.sites[dstSite].up {
		n.stats.DroppedDown++
		return
	}
	if int(provider) >= len(n.isps) {
		n.stats.DroppedNoRoute++
		return
	}

	path, ok := n.convergedPath(provider, srcSite, dstSite)
	if !ok {
		n.stats.DroppedNoRoute++
		return
	}

	var latency time.Duration
	prov := &n.isps[provider]
	for _, fid := range path {
		f := &n.fibers[fid]
		// Reality check: routing may still believe in a fiber that has
		// just been cut, or traverse a site that has just died.
		if f.cut || !n.sites[f.a].up || !n.sites[f.b].up {
			n.stats.DroppedDown++
			return
		}
		if f.loss.Drop(n.sched.Now(), n.sched.Rand()) {
			n.stats.DroppedLoss++
			return
		}
		if prov.extraLoss > 0 && n.sched.Rand().Float64() < prov.extraLoss {
			n.stats.DroppedLoss++
			return
		}
		latency += f.latency
		if f.jitter > 0 {
			latency += time.Duration(n.sched.Rand().Int64N(int64(f.jitter)))
		}
	}

	// The sender borrows data, so the in-flight copy lives in a pooled
	// buffer released once the destination handler returns (handlers borrow
	// the bytes too).
	buf := wire.DefaultBufPool.Get(len(data))
	buf.B = append(buf.B, data...)
	n.sched.After(latency, func() {
		defer buf.Release()
		h, ok := n.handlers[to]
		if !ok {
			return
		}
		st, ok := n.attach[to]
		if !ok || !n.sites[st].up {
			n.stats.DroppedDown++
			return
		}
		n.stats.Delivered++
		h(from, buf.B)
	})
}

// PathLatency returns the current converged route's nominal latency
// between two nodes on one provider, for planning and tests.
func (n *Network) PathLatency(from, to wire.NodeID, provider ISPID) (time.Duration, bool) {
	srcSite, ok := n.attach[from]
	if !ok {
		return 0, false
	}
	dstSite, ok := n.attach[to]
	if !ok {
		return 0, false
	}
	path, ok := n.convergedPath(provider, srcSite, dstSite)
	if !ok {
		return 0, false
	}
	var latency time.Duration
	for _, fid := range path {
		latency += n.fibers[fid].latency
	}
	return latency, true
}

// CutFiber severs a fiber immediately; native routing notices after the
// convergence delay.
func (n *Network) CutFiber(id FiberID) {
	if int(id) >= len(n.fibers) || n.fibers[id].cut {
		return
	}
	n.fibers[id].cut = true
	n.scheduleConvergence(n.fibers[id].isp, id)
}

// RestoreFiber repairs a fiber; routing reuses it after the convergence
// delay.
func (n *Network) RestoreFiber(id FiberID) {
	if int(id) >= len(n.fibers) || !n.fibers[id].cut {
		return
	}
	n.fibers[id].cut = false
	n.scheduleConvergence(n.fibers[id].isp, id)
}

// FiberCut reports whether a fiber is currently severed.
func (n *Network) FiberCut(id FiberID) bool {
	return int(id) < len(n.fibers) && n.fibers[id].cut
}

// SetSiteUp marks a whole data center up or down. Traffic to, from, or
// through a dead site is dropped.
func (n *Network) SetSiteUp(id SiteID, up bool) {
	if int(id) < len(n.sites) {
		n.sites[id].up = up
	}
}

// SetISPExtraLoss models a provider-wide degradation: an added independent
// drop probability applied on every fiber of the provider.
func (n *Network) SetISPExtraLoss(provider ISPID, p float64) {
	if int(provider) < len(n.isps) {
		n.isps[provider].extraLoss = p
	}
}

func (n *Network) scheduleConvergence(provider ISPID, id FiberID) {
	delay := n.cfg.ConvergenceDelay
	if !n.fibers[id].cut {
		delay = n.cfg.RestoreDelay
	}
	n.sched.After(delay, func() {
		// Converge to the fiber's state *now*, not the state at scheduling
		// time, so rapid flap sequences settle on reality.
		n.isps[provider].converged[id] = !n.fibers[id].cut
	})
}

// convergedPath computes the shortest (by latency) fiber path between two
// sites using the provider's converged view of its topology.
func (n *Network) convergedPath(provider ISPID, src, dst SiteID) ([]FiberID, bool) {
	if src == dst {
		return nil, true
	}
	prov := &n.isps[provider]
	const inf = time.Duration(1<<63 - 1)
	dist := make(map[SiteID]time.Duration, len(n.sites))
	prevFiber := make(map[SiteID]FiberID, len(n.sites))
	visited := make(map[SiteID]bool, len(n.sites))
	dist[src] = 0
	for {
		// Small site counts: linear extraction is fine and allocation-free.
		best := SiteID(0)
		bestDist := inf
		found := false
		for s, d := range dist {
			if visited[s] {
				continue
			}
			if d < bestDist || (d == bestDist && found && s < best) {
				best, bestDist, found = s, d, true
			}
		}
		if !found {
			break
		}
		if best == dst {
			break
		}
		visited[best] = true
		for _, fid := range prov.fibers {
			if !prov.converged[fid] {
				continue
			}
			f := &n.fibers[fid]
			var next SiteID
			switch best {
			case f.a:
				next = f.b
			case f.b:
				next = f.a
			default:
				continue
			}
			nd := bestDist + f.latency
			if cur, ok := dist[next]; !ok || nd < cur {
				dist[next] = nd
				prevFiber[next] = fid
			}
		}
	}
	if _, ok := dist[dst]; !ok {
		return nil, false
	}
	var rev []FiberID
	for s := dst; s != src; {
		fid := prevFiber[s]
		rev = append(rev, fid)
		f := &n.fibers[fid]
		if s == f.a {
			s = f.b
		} else {
			s = f.a
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

package netemu

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// TestGilbertElliottNonMonotonicTimestamps is the regression test for the
// chain-state hardening: replayed and equal-time observations (now at or
// before the last observation) must neither corrupt the chain nor move its
// observation clock backwards.
func TestGilbertElliottNonMonotonicTimestamps(t *testing.T) {
	g := NewGilbertElliott(0.05, 0.3, 0, 1)
	rng := rand.New(rand.NewPCG(1, 2))

	// Establish the chain at t = 100 ms.
	g.Drop(100*time.Millisecond, rng)
	if g.last != 100*time.Millisecond {
		t.Fatalf("last = %v after first observation, want 100ms", g.last)
	}
	badAt100 := g.bad

	// An out-of-order observation must not advance the chain or rewind
	// its clock.
	g.Drop(40*time.Millisecond, rng)
	if g.last != 100*time.Millisecond {
		t.Fatalf("rewound observation moved last to %v", g.last)
	}
	if g.bad != badAt100 {
		t.Fatal("rewound observation advanced the chain state")
	}

	// Equal-time observations (several packets in one scheduler instant)
	// must behave the same way.
	for i := 0; i < 5; i++ {
		g.Drop(100*time.Millisecond, rng)
		if g.last != 100*time.Millisecond || g.bad != badAt100 {
			t.Fatalf("equal-time observation %d mutated chain: last=%v bad=%v",
				i, g.last, g.bad)
		}
	}

	// Once time moves forward again the interval is counted exactly once,
	// from the high-water mark, not from the rewound timestamp.
	g.Drop(150*time.Millisecond, rng)
	if g.last != 150*time.Millisecond {
		t.Fatalf("forward observation left last at %v, want 150ms", g.last)
	}
}

// TestGilbertElliottReplayDeterminism drives two identical chains through
// the same non-monotonic observation sequence with identical random
// streams and requires bit-identical decisions — the property campaign
// replay depends on.
func TestGilbertElliottReplayDeterminism(t *testing.T) {
	times := []time.Duration{
		5 * time.Millisecond, 9 * time.Millisecond, 9 * time.Millisecond,
		3 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond,
		11 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond,
	}
	run := func() []bool {
		g := NewGilbertElliott(0.2, 0.2, 0.01, 0.9)
		rng := rand.New(rand.NewPCG(7, 7))
		out := make([]bool, 0, len(times))
		for _, at := range times {
			out = append(out, g.Drop(at, rng))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at observation %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestGilbertElliottFastMixingChainHasNoNaN covers PGoodBad+PBadGood > 1:
// the closed-form λ^k has a negative base there and a fractional exponent
// used to produce NaN, silently pinning the chain in the Good state.
func TestGilbertElliottFastMixingChainHasNoNaN(t *testing.T) {
	g := NewGilbertElliott(0.9, 0.9, 0, 1)
	rng := rand.New(rand.NewPCG(3, 4))
	drops := 0
	// Fractional step multiples (now − last not a multiple of Step) force
	// fractional k.
	at := time.Duration(0)
	for i := 0; i < 4000; i++ {
		at += 1500 * time.Microsecond
		if g.Drop(at, rng) {
			drops++
		}
	}
	if got := g.AverageLoss(); math.IsNaN(got) {
		t.Fatal("AverageLoss is NaN")
	}
	// Stationary bad fraction is 0.5 with LossBad=1, so the measured rate
	// must be near one half, not pinned at the Good state's zero.
	rate := float64(drops) / 4000
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("fast-mixing chain drop rate = %.3f, want ≈ 0.5", rate)
	}
}

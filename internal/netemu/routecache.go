package netemu

import (
	"time"

	"sonet/internal/metrics"
)

// The underlay's per-packet routing cost is the dominant simulation cost:
// every EXP-* scenario funnels through Network.Send, and each packet needs
// the provider's converged shortest path. Topology changes are rare (fiber
// cuts, convergence events, site failures) while packets are constant, so
// routes are memoized per provider and invalidated lazily by a topology
// epoch: every mutation of a provider's converged view bumps its epoch,
// and a cached route is trusted only while its recorded epoch matches.
// Rapid flap sequences therefore stay correct without eager cache walks —
// a stale entry is simply recomputed on its next use.

// routeKey packs a (src, dst) site pair into one map key.
func routeKey(src, dst SiteID) uint32 {
	return uint32(src)<<16 | uint32(dst)
}

// routeEntry is one memoized converged route.
type routeEntry struct {
	// epoch is the provider topology epoch the route was computed under.
	epoch uint64
	// ok records whether a route existed (negative results are cached too).
	ok bool
	// latency is the nominal (jitter-free) latency along path.
	latency time.Duration
	// path is the fiber sequence from src to dst; its backing array is
	// reused across recomputations.
	path []FiberID
}

// routeCache memoizes converged routes for every provider and owns the
// dense scratch state of the slice-indexed SPF.
type routeCache struct {
	// byProvider maps routeKey(src, dst) to the cached route, one map per
	// ISPID. Lookups on the Send fast path allocate nothing.
	byProvider []map[uint32]*routeEntry

	// SPF scratch, sized to the site count and reused across runs: the
	// emulator is single-threaded (see Network), so one set suffices.
	dist      []time.Duration
	visited   []bool
	prevFiber []FiberID

	stats metrics.RouteCacheStats
}

// addProvider appends an empty cache for a newly registered ISP.
func (c *routeCache) addProvider() {
	c.byProvider = append(c.byProvider, make(map[uint32]*routeEntry))
}

// grow ensures the SPF scratch covers sites [0, n).
func (c *routeCache) grow(n int) {
	if n <= len(c.dist) {
		return
	}
	c.dist = make([]time.Duration, n)
	c.visited = make([]bool, n)
	c.prevFiber = make([]FiberID, n)
}

// bumpEpoch invalidates every cached route of one provider by advancing
// its topology epoch. Entries are reconciled lazily on their next lookup.
func (n *Network) bumpEpoch(provider ISPID) {
	n.isps[provider].epoch++
	n.routes.stats.Invalidations.Add(1)
}

// bumpAllEpochs invalidates every provider's cached routes (site liveness
// changes are not provider-scoped).
func (n *Network) bumpAllEpochs() {
	for i := range n.isps {
		n.bumpEpoch(ISPID(i))
	}
}

// convergedPath returns the shortest (by nominal latency) fiber path
// between two sites in the provider's converged view of its topology,
// memoized under the provider's topology epoch. The returned slice is
// owned by the cache: callers must not retain or modify it across calls.
func (n *Network) convergedPath(provider ISPID, src, dst SiteID) ([]FiberID, time.Duration, bool) {
	prov := &n.isps[provider]
	key := routeKey(src, dst)
	cache := n.routes.byProvider[provider]
	if e, ok := cache[key]; ok {
		if e.epoch == prov.epoch {
			n.routes.stats.Hits.Add(1)
			return e.path, e.latency, e.ok
		}
		n.routes.stats.Misses.Add(1)
		e.path, e.latency, e.ok = n.spf(prov, src, dst, e.path[:0])
		e.epoch = prov.epoch
		return e.path, e.latency, e.ok
	}
	n.routes.stats.Misses.Add(1)
	e := &routeEntry{epoch: prov.epoch}
	e.path, e.latency, e.ok = n.spf(prov, src, dst, nil)
	cache[key] = e
	return e.path, e.latency, e.ok
}

// spf runs Dijkstra over the provider's converged adjacency using dense
// slice-indexed state (no per-run allocation once scratch is grown). Site
// counts are small, so linear minimum extraction beats a priority queue.
// Ties break toward the lowest site ID and the earliest-laid fiber, which
// keeps route choice deterministic and independent of cache state.
func (n *Network) spf(prov *isp, src, dst SiteID, path []FiberID) ([]FiberID, time.Duration, bool) {
	path = path[:0]
	if src == dst {
		return path, 0, true
	}
	const inf = time.Duration(1<<63 - 1)
	ns := len(n.sites)
	n.routes.grow(ns)
	dist := n.routes.dist[:ns]
	visited := n.routes.visited[:ns]
	prev := n.routes.prevFiber[:ns]
	for i := range dist {
		dist[i] = inf
		visited[i] = false
	}
	dist[src] = 0
	for {
		best, bestDist := -1, inf
		for i, d := range dist {
			if !visited[i] && d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 || SiteID(best) == dst {
			break
		}
		visited[best] = true
		if best >= len(prov.adj) {
			// Site added after this provider's last fiber: no adjacency.
			continue
		}
		for _, hf := range prov.adj[best] {
			if !n.fibers[hf.fiber].convergedUp {
				continue
			}
			if nd := bestDist + n.fibers[hf.fiber].latency; nd < dist[hf.to] {
				dist[hf.to] = nd
				prev[hf.to] = hf.fiber
			}
		}
	}
	if dist[dst] == inf {
		return path, 0, false
	}
	for s := dst; s != src; {
		fid := prev[s]
		path = append(path, fid)
		f := &n.fibers[fid]
		if s == f.a {
			s = f.b
		} else {
			s = f.a
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst], true
}

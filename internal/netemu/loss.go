// Package netemu emulates the underlay the structured overlay runs over:
// data-center sites joined by per-ISP fiber graphs, with per-fiber latency,
// jitter, and loss (including bursty Gilbert–Elliott loss), scheduled
// failures, and BGP-like convergence delays after topology changes.
//
// This substitutes for the paper's commercial multi-ISP Internet substrate
// (see DESIGN.md §2): overlay code sees the same abstraction it would see
// in deployment — lossy, delaying, multihomed paths between overlay node
// sites, where a single fiber cut can affect several overlay links at once
// and native IP rerouting takes tens of seconds.
package netemu

import (
	"math"
	"math/rand/v2"
	"time"
)

// LossModel decides per-packet drops on one fiber. Implementations may be
// stateful (burst models); each fiber owns its model instance. Models are
// driven by the simulation's deterministic random stream and the current
// virtual time, so burst durations are durations of wall time rather than
// packet counts.
type LossModel interface {
	// Drop reports whether a packet crossing the fiber at time now is
	// lost.
	Drop(now time.Duration, rng *rand.Rand) bool
}

// NoLoss never drops packets.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(time.Duration, *rand.Rand) bool { return false }

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct {
	// P is the drop probability in [0, 1].
	P float64
}

// Drop implements LossModel.
func (b Bernoulli) Drop(_ time.Duration, rng *rand.Rand) bool {
	return rng.Float64() < b.P
}

// GilbertElliott is the classic two-state burst-loss chain: the channel
// alternates between a Good and a Bad state, dropping packets at
// state-dependent rates. The chain advances in fixed time steps (Step,
// default 1 ms), so a Bad period is a burst in *time* — every packet
// crossing the fiber during the burst tends to die together, which is the
// correlated loss window the NM-Strikes protocol (§IV-A) is designed to
// bypass with spaced retransmissions.
type GilbertElliott struct {
	// PGoodBad is the per-step probability of entering the Bad state.
	PGoodBad float64
	// PBadGood is the per-step probability of leaving the Bad state.
	PBadGood float64
	// LossGood is the drop probability while Good (often 0 or tiny).
	LossGood float64
	// LossBad is the drop probability while Bad (often near 1).
	LossBad float64
	// Step is the chain's time step.
	Step time.Duration

	bad  bool
	last time.Duration
	init bool
}

// NewGilbertElliott returns a burst-loss model with the given parameters,
// starting in the Good state with a 1 ms chain step.
func NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad float64) *GilbertElliott {
	return &GilbertElliott{
		PGoodBad: pGoodBad,
		PBadGood: pBadGood,
		LossGood: lossGood,
		LossBad:  lossBad,
		Step:     time.Millisecond,
	}
}

// AverageLoss returns the steady-state packet loss rate of the chain.
func (g *GilbertElliott) AverageLoss() float64 {
	denom := g.PGoodBad + g.PBadGood
	if denom == 0 {
		if g.bad {
			return g.LossBad
		}
		return g.LossGood
	}
	fracBad := g.PGoodBad / denom
	return fracBad*g.LossBad + (1-fracBad)*g.LossGood
}

// Drop implements LossModel, advancing the chain to the current time.
func (g *GilbertElliott) Drop(now time.Duration, rng *rand.Rand) bool {
	g.advance(now, rng)
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return rng.Float64() < p
}

// advance steps the chain from its last observation to now using the
// closed-form k-step transition of the two-state chain: the stationary bad
// probability is π = PGoodBad/(PGoodBad+PBadGood) and the state relaxes
// toward it geometrically with rate λ = 1−PGoodBad−PBadGood per step.
//
// Timestamps need not be monotonic: replay tooling and same-instant events
// may observe the chain at or before its last observation time. Such calls
// must neither advance the chain nor move its observation clock backwards —
// the chain state stays exactly as it was, so the per-call random draw in
// Drop remains the only randomness consumed and replays stay bit-exact.
func (g *GilbertElliott) advance(now time.Duration, rng *rand.Rand) {
	step := g.Step
	if step <= 0 {
		step = time.Millisecond
	}
	if !g.init {
		g.init = true
		g.last = now
		return
	}
	if now <= g.last {
		// Equal-time or out-of-order observation: no time has passed from
		// the chain's point of view. g.last is deliberately left alone so a
		// rewound clock cannot drag the chain backwards and double-count
		// the interval when time catches up again.
		return
	}
	k := float64(now-g.last) / float64(step)
	g.last = now
	denom := g.PGoodBad + g.PBadGood
	if denom <= 0 {
		return
	}
	pi := g.PGoodBad / denom
	// λ^k with λ = 1−denom. For denom > 1 the base is negative and a
	// fractional k would produce NaN (and an integer k an oscillating
	// sign); such chains mix essentially instantly, so clamp the memory
	// term to zero instead of corrupting the state with NaN comparisons.
	lam := math.Pow(1-denom, k)
	if math.IsNaN(lam) || lam < 0 {
		lam = 0
	}
	var pBad float64
	if g.bad {
		pBad = pi + (1-pi)*lam
	} else {
		pBad = pi * (1 - lam)
	}
	g.bad = rng.Float64() < pBad
}

package netemu

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// twoSiteWorld wires nodes 1 and 2 into sites A and B joined by one fiber
// on one ISP, returning the received payload log for node 2.
func twoSiteWorld(t *testing.T, loss LossModel) (*sim.Scheduler, *Network, FiberID, *[]string) {
	t.Helper()
	sched := sim.NewScheduler(11)
	net := New(sched, DefaultConfig())
	a := net.AddSite("A")
	b := net.AddSite("B")
	isp := net.AddISP("isp1")
	fid, err := net.AddFiber(isp, a, b, 10*time.Millisecond, 0, loss)
	if err != nil {
		t.Fatalf("AddFiber: %v", err)
	}
	var got []string
	if err := net.AttachNode(1, a, func(wire.NodeID, []byte) {}); err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	err = net.AttachNode(2, b, func(from wire.NodeID, data []byte) {
		got = append(got, string(data))
	})
	if err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	return sched, net, fid, &got
}

// assertStatsIdentity checks the Stats accounting invariant: every sent
// packet ends in exactly one outcome counter.
func assertStatsIdentity(t *testing.T, net *Network) {
	t.Helper()
	st := net.Stats()
	if st.Sent != st.Delivered+st.DroppedLoss+st.DroppedDown+st.DroppedNoRoute {
		t.Fatalf("stats identity violated: %+v", st)
	}
}

func TestSendDeliversWithLatency(t *testing.T) {
	sched, net, _, got := twoSiteWorld(t, NoLoss{})
	var deliveredAt time.Duration
	net.handlers[2] = func(from wire.NodeID, data []byte) {
		deliveredAt = sched.Now()
		*got = append(*got, string(data))
	}
	net.Send(1, 2, 0, []byte("hello"))
	sched.Run()
	if len(*got) != 1 || (*got)[0] != "hello" {
		t.Fatalf("received %v, want [hello]", *got)
	}
	if deliveredAt != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", deliveredAt)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	sched, net, _, got := twoSiteWorld(t, NoLoss{})
	buf := []byte("abc")
	net.Send(1, 2, 0, buf)
	buf[0] = 'X'
	sched.Run()
	if (*got)[0] != "abc" {
		t.Fatalf("payload mutated in flight: %q", (*got)[0])
	}
}

func TestBernoulliLossRate(t *testing.T) {
	sched, net, _, got := twoSiteWorld(t, Bernoulli{P: 0.3})
	const n = 20000
	for i := 0; i < n; i++ {
		net.Send(1, 2, 0, []byte("x"))
	}
	sched.Run()
	rate := 1 - float64(len(*got))/n
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("observed loss %.3f, want ~0.30", rate)
	}
}

func TestCutFiberDropsUntilConvergence(t *testing.T) {
	sched, net, fid, got := twoSiteWorld(t, NoLoss{})
	net.CutFiber(fid)
	net.Send(1, 2, 0, []byte("during"))
	sched.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatalf("packet crossed a cut fiber: %v", *got)
	}
	if net.Stats().DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d, want 1", net.Stats().DroppedDown)
	}
	// After convergence there is no alternate route: drops become NoRoute.
	sched.RunFor(45 * time.Second)
	net.Send(1, 2, 0, []byte("after"))
	sched.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatalf("packet delivered with no route: %v", *got)
	}
	if net.Stats().DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", net.Stats().DroppedNoRoute)
	}
}

func TestRerouteAfterConvergence(t *testing.T) {
	// Triangle: A-B direct (10ms) plus A-C-B detour (15+15ms).
	sched := sim.NewScheduler(5)
	net := New(sched, Config{ConvergenceDelay: 40 * time.Second})
	a := net.AddSite("A")
	b := net.AddSite("B")
	c := net.AddSite("C")
	isp := net.AddISP("isp1")
	direct, err := net.AddFiber(isp, a, b, 10*time.Millisecond, 0, NoLoss{})
	if err != nil {
		t.Fatalf("AddFiber: %v", err)
	}
	if _, err := net.AddFiber(isp, a, c, 15*time.Millisecond, 0, NoLoss{}); err != nil {
		t.Fatalf("AddFiber: %v", err)
	}
	if _, err := net.AddFiber(isp, c, b, 15*time.Millisecond, 0, NoLoss{}); err != nil {
		t.Fatalf("AddFiber: %v", err)
	}
	var deliveries []time.Duration
	var sentAt []time.Duration
	if err := net.AttachNode(1, a, func(wire.NodeID, []byte) {}); err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	err = net.AttachNode(2, b, func(wire.NodeID, []byte) {
		deliveries = append(deliveries, sched.Now())
	})
	if err != nil {
		t.Fatalf("AttachNode: %v", err)
	}

	if lat, ok := net.PathLatency(1, 2, isp); !ok || lat != 10*time.Millisecond {
		t.Fatalf("PathLatency = %v,%v, want 10ms", lat, ok)
	}

	net.CutFiber(direct)
	// During convergence the old route is used and dies at the cut.
	net.Send(1, 2, isp, []byte("x"))
	sentAt = append(sentAt, sched.Now())
	sched.RunFor(41 * time.Second)
	if len(deliveries) != 0 {
		t.Fatal("delivered across cut fiber during convergence")
	}
	// After convergence the detour carries traffic at 30ms.
	if lat, ok := net.PathLatency(1, 2, isp); !ok || lat != 30*time.Millisecond {
		t.Fatalf("post-convergence PathLatency = %v,%v, want 30ms", lat, ok)
	}
	start := sched.Now()
	net.Send(1, 2, isp, []byte("y"))
	sched.RunFor(time.Second)
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(deliveries))
	}
	if d := deliveries[0] - start; d != 30*time.Millisecond {
		t.Fatalf("detour latency = %v, want 30ms", d)
	}
	// Restoration also takes convergence time.
	net.RestoreFiber(direct)
	sched.RunFor(41 * time.Second)
	if lat, ok := net.PathLatency(1, 2, isp); !ok || lat != 10*time.Millisecond {
		t.Fatalf("post-restore PathLatency = %v,%v, want 10ms", lat, ok)
	}
	_ = sentAt
}

func TestMultipleISPsAreIndependent(t *testing.T) {
	sched := sim.NewScheduler(5)
	net := New(sched, DefaultConfig())
	a := net.AddSite("A")
	b := net.AddSite("B")
	isp1 := net.AddISP("isp1")
	isp2 := net.AddISP("isp2")
	f1, err := net.AddFiber(isp1, a, b, 10*time.Millisecond, 0, NoLoss{})
	if err != nil {
		t.Fatalf("AddFiber: %v", err)
	}
	if _, err = net.AddFiber(isp2, a, b, 12*time.Millisecond, 0, NoLoss{}); err != nil {
		t.Fatalf("AddFiber: %v", err)
	}
	var got int
	if err := net.AttachNode(1, a, func(wire.NodeID, []byte) {}); err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	if err := net.AttachNode(2, b, func(wire.NodeID, []byte) { got++ }); err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	net.CutFiber(f1)
	net.Send(1, 2, isp1, []byte("dead"))
	net.Send(1, 2, isp2, []byte("alive"))
	sched.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("delivered %d, want 1 (only via isp2)", got)
	}
}

func TestISPExtraLossBrownOut(t *testing.T) {
	sched, net, _, got := twoSiteWorld(t, NoLoss{})
	net.SetISPExtraLoss(0, 0.5)
	const n = 10000
	for i := 0; i < n; i++ {
		net.Send(1, 2, 0, []byte("x"))
	}
	sched.Run()
	rate := 1 - float64(len(*got))/n
	if math.Abs(rate-0.5) > 0.03 {
		t.Fatalf("brown-out loss %.3f, want ~0.5", rate)
	}
}

func TestSiteFailureKillsTraffic(t *testing.T) {
	sched, net, _, got := twoSiteWorld(t, NoLoss{})
	net.SetSiteUp(1, false) // site B
	net.Send(1, 2, 0, []byte("x"))
	sched.Run()
	if len(*got) != 0 {
		t.Fatal("delivered to a dead site")
	}
}

func TestSiteFailureMidFlight(t *testing.T) {
	sched, net, _, got := twoSiteWorld(t, NoLoss{})
	net.Send(1, 2, 0, []byte("x"))
	sched.After(5*time.Millisecond, func() { net.SetSiteUp(1, false) })
	sched.Run()
	if len(*got) != 0 {
		t.Fatal("delivered to a site that died mid-flight")
	}
}

func TestJitterWithinBounds(t *testing.T) {
	sched := sim.NewScheduler(9)
	net := New(sched, DefaultConfig())
	a := net.AddSite("A")
	b := net.AddSite("B")
	isp := net.AddISP("isp1")
	if _, err := net.AddFiber(isp, a, b, 10*time.Millisecond, 5*time.Millisecond, NoLoss{}); err != nil {
		t.Fatalf("AddFiber: %v", err)
	}
	var lats []time.Duration
	if err := net.AttachNode(1, a, func(wire.NodeID, []byte) {}); err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	var sendTime time.Duration
	err := net.AttachNode(2, b, func(wire.NodeID, []byte) {
		lats = append(lats, sched.Now()-sendTime)
	})
	if err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	for i := 0; i < 200; i++ {
		sendTime = sched.Now()
		net.Send(1, 2, isp, []byte("x"))
		sched.Run()
	}
	varied := false
	for _, l := range lats {
		if l < 10*time.Millisecond || l >= 15*time.Millisecond {
			t.Fatalf("latency %v outside [10ms,15ms)", l)
		}
		if l != lats[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced identical latencies")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	ge := NewGilbertElliott(0.01, 0.25, 0, 1)
	const n = 200000
	losses := make([]bool, n)
	lost := 0
	for i := range losses {
		// One packet per chain step: per-packet and per-time behaviour
		// coincide.
		losses[i] = ge.Drop(time.Duration(i)*time.Millisecond, rng)
		if losses[i] {
			lost++
		}
	}
	rate := float64(lost) / n
	want := ge.AverageLoss()
	if math.Abs(rate-want) > 0.01 {
		t.Fatalf("observed loss %.4f, steady-state %.4f", rate, want)
	}
	// Burstiness: P(loss | previous loss) must far exceed the base rate.
	both, prev := 0, 0
	for i := 1; i < n; i++ {
		if losses[i-1] {
			prev++
			if losses[i] {
				both++
			}
		}
	}
	condLoss := float64(both) / float64(prev)
	if condLoss < 3*rate {
		t.Fatalf("conditional loss %.3f not bursty vs base %.3f", condLoss, rate)
	}
}

func TestGilbertElliottDegenerate(t *testing.T) {
	ge := NewGilbertElliott(0, 0, 0.1, 1)
	_ = ge.Drop(0, rand.New(rand.NewPCG(1, 1)))
	if got := ge.AverageLoss(); got != 0.1 {
		t.Fatalf("AverageLoss = %v, want 0.1 (stuck good)", got)
	}
	ge.bad = true
	if got := ge.AverageLoss(); got != 1.0 {
		t.Fatalf("AverageLoss = %v, want 1.0 (stuck bad)", got)
	}
}

func TestAddFiberValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	net := New(sched, DefaultConfig())
	a := net.AddSite("A")
	if _, err := net.AddFiber(9, a, a, time.Millisecond, 0, nil); err == nil {
		t.Fatal("AddFiber accepted unknown ISP")
	}
	isp := net.AddISP("isp1")
	if _, err := net.AddFiber(isp, a, a, time.Millisecond, 0, nil); err == nil {
		t.Fatal("AddFiber accepted self-loop")
	}
}

func TestSendToUnknownNodeCountsNoRoute(t *testing.T) {
	sched, net, _, _ := twoSiteWorld(t, NoLoss{})
	net.Send(1, 99, 0, []byte("x"))
	sched.Run()
	if net.Stats().DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", net.Stats().DroppedNoRoute)
	}
	assertStatsIdentity(t, net)
}

func TestHandlerUnregisteredAtDeliveryCountsNoRoute(t *testing.T) {
	sched, net, _, got := twoSiteWorld(t, NoLoss{})
	net.Send(1, 2, 0, []byte("x"))
	// The destination detaches while the packet is in flight.
	sched.After(5*time.Millisecond, func() { net.handlers[2] = nil })
	sched.Run()
	if len(*got) != 0 {
		t.Fatalf("delivered to an unregistered handler: %v", *got)
	}
	st := net.Stats()
	if st.DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1 (stats %+v)", st.DroppedNoRoute, st)
	}
	assertStatsIdentity(t, net)
}

func TestStatsIdentityAcrossOutcomes(t *testing.T) {
	// Mix every drop class with deliveries and check Sent is conserved.
	sched, net, fid, _ := twoSiteWorld(t, Bernoulli{P: 0.3})
	for i := 0; i < 500; i++ {
		net.Send(1, 2, 0, []byte("x")) // loss or delivered
	}
	net.Send(1, 99, 0, []byte("x")) // no route (unknown node)
	net.CutFiber(fid)
	net.Send(1, 2, 0, []byte("x")) // down (cut, pre-convergence)
	sched.RunFor(time.Minute)
	net.Send(1, 2, 0, []byte("x")) // no route (post-convergence)
	sched.Run()
	st := net.Stats()
	if st.Sent != 503 {
		t.Fatalf("Sent = %d, want 503", st.Sent)
	}
	if st.Delivered == 0 || st.DroppedLoss == 0 || st.DroppedDown != 1 || st.DroppedNoRoute != 2 {
		t.Fatalf("outcome mix missing a class: %+v", st)
	}
	assertStatsIdentity(t, net)
}

func TestRouteCacheCountersAndInvalidation(t *testing.T) {
	sched, net, fid, got := twoSiteWorld(t, NoLoss{})
	net.Send(1, 2, 0, []byte("a"))
	net.Send(1, 2, 0, []byte("b"))
	sched.Run()
	rc := net.RouteCacheStats()
	if rc.Misses != 1 || rc.Hits != 1 {
		t.Fatalf("after two sends: hits=%d misses=%d, want 1/1", rc.Hits, rc.Misses)
	}
	// A cut fires a convergence event; once applied the epoch moves and
	// the next send recomputes.
	net.CutFiber(fid)
	sched.RunFor(time.Minute)
	inv := net.RouteCacheStats().Invalidations
	if inv == rc.Invalidations {
		t.Fatal("convergence event did not bump the topology epoch")
	}
	net.Send(1, 2, 0, []byte("c"))
	sched.Run()
	rc2 := net.RouteCacheStats()
	if rc2.Misses != 2 {
		t.Fatalf("post-invalidation send did not recompute: %+v", rc2)
	}
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
	assertStatsIdentity(t, net)
}

func TestRouteCacheFlapFasterThanConvergence(t *testing.T) {
	// A fiber that flaps down and back up before its convergence delay
	// expires must leave routing (and the cache) believing the fiber is up
	// the whole time, and traffic after the flap settles must flow.
	sched, net, fid, got := twoSiteWorld(t, NoLoss{})
	net.Send(1, 2, 0, []byte("before"))
	sched.Run()
	net.CutFiber(fid)
	sched.RunFor(time.Second) // well under the 40 s convergence delay
	net.RestoreFiber(fid)
	sched.RunFor(2 * time.Minute) // both convergence events fire
	if lat, ok := net.PathLatency(1, 2, 0); !ok || lat != 10*time.Millisecond {
		t.Fatalf("post-flap PathLatency = %v,%v, want 10ms", lat, ok)
	}
	net.Send(1, 2, 0, []byte("after"))
	sched.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2 (flap must settle up)", len(*got))
	}
	assertStatsIdentity(t, net)
}

// squareWorld wires four sites into a square: A-B and C-D inside the
// halves {A,B} and {C,D}, with A-C and B-D crossing between them. Nodes
// 1..4 sit on A..D.
func squareWorld(t *testing.T) (*sim.Scheduler, *Network, map[string]FiberID, *[]string) {
	t.Helper()
	sched := sim.NewScheduler(23)
	net := New(sched, Config{ConvergenceDelay: time.Second, RestoreDelay: time.Second})
	a := net.AddSite("A")
	b := net.AddSite("B")
	c := net.AddSite("C")
	d := net.AddSite("D")
	isp := net.AddISP("isp1")
	fibers := make(map[string]FiberID)
	add := func(name string, x, y SiteID) {
		fid, err := net.AddFiber(isp, x, y, 10*time.Millisecond, 0, NoLoss{})
		if err != nil {
			t.Fatalf("AddFiber %s: %v", name, err)
		}
		fibers[name] = fid
	}
	add("ab", a, b)
	add("cd", c, d)
	add("ac", a, c)
	add("bd", b, d)
	var got []string
	for id, site := range map[wire.NodeID]SiteID{1: a, 2: b, 3: c, 4: d} {
		if err := net.AttachNode(id, site, func(from wire.NodeID, data []byte) {
			got = append(got, string(data))
		}); err != nil {
			t.Fatalf("AttachNode %d: %v", id, err)
		}
	}
	return sched, net, fibers, &got
}

func TestPartitionCutsExactlyCrossingFibers(t *testing.T) {
	sched, net, fibers, got := squareWorld(t)
	// Pre-cut one crossing fiber: Partition must not report it again.
	net.CutFiber(fibers["ac"])
	cut := net.Partition([]SiteID{0, 1}) // {A, B} vs {C, D}
	if len(cut) != 1 || cut[0] != fibers["bd"] {
		t.Fatalf("Partition cut %v, want only bd=%v", cut, fibers["bd"])
	}
	for _, name := range []string{"ab", "cd"} {
		if net.FiberCut(fibers[name]) {
			t.Fatalf("Partition cut intra-group fiber %s", name)
		}
	}
	sched.RunFor(5 * time.Second) // let convergence apply
	net.Send(1, 3, 0, []byte("cross"))
	net.Send(1, 2, 0, []byte("intra"))
	sched.RunFor(time.Second)
	if len(*got) != 1 || (*got)[0] != "intra" {
		t.Fatalf("during partition got %v, want [intra]", *got)
	}
	// Heal only what Partition cut; ac stays down (cut independently).
	net.Heal(cut)
	sched.RunFor(5 * time.Second)
	if net.FiberCut(fibers["bd"]) {
		t.Fatal("Heal left bd cut")
	}
	if !net.FiberCut(fibers["ac"]) {
		t.Fatal("Heal restored ac, which Partition did not cut")
	}
	net.Send(1, 3, 0, []byte("healed"))
	sched.RunFor(time.Second)
	if len(*got) != 2 || (*got)[1] != "healed" {
		t.Fatalf("after heal got %v, want [... healed]", *got)
	}
	assertStatsIdentity(t, net)
}

func TestSetFiberLatencyReroutesAndInvalidatesCache(t *testing.T) {
	sched, net, fibers, got := squareWorld(t)
	sched.Run()
	// Warm the route cache on the direct A-C path.
	if lat, ok := net.PathLatency(1, 3, 0); !ok || lat != 10*time.Millisecond {
		t.Fatalf("initial PathLatency = %v,%v, want 10ms", lat, ok)
	}
	// Spike the direct fiber: the A-B-D-C detour (30ms) now wins.
	if !net.SetFiberLatency(fibers["ac"], 100*time.Millisecond, time.Millisecond) {
		t.Fatal("SetFiberLatency rejected a valid fiber")
	}
	if lat, jit, ok := net.FiberLatency(fibers["ac"]); !ok || lat != 100*time.Millisecond || jit != time.Millisecond {
		t.Fatalf("FiberLatency = %v,%v,%v, want 100ms,1ms,true", lat, jit, ok)
	}
	if lat, ok := net.PathLatency(1, 3, 0); !ok || lat != 30*time.Millisecond {
		t.Fatalf("post-spike PathLatency = %v,%v, want 30ms detour", lat, ok)
	}
	var deliveredAt time.Duration
	net.handlers[3] = func(from wire.NodeID, data []byte) {
		deliveredAt = sched.Now()
		*got = append(*got, string(data))
	}
	start := sched.Now()
	net.Send(1, 3, 0, []byte("detour"))
	sched.Run()
	if len(*got) != 1 || deliveredAt-start != 30*time.Millisecond {
		t.Fatalf("got %v at +%v, want [detour] at +30ms", *got, deliveredAt-start)
	}
	// Restoring the latency must also take effect (epoch bump both ways).
	if !net.SetFiberLatency(fibers["ac"], 10*time.Millisecond, 0) {
		t.Fatal("SetFiberLatency restore rejected")
	}
	if lat, ok := net.PathLatency(1, 3, 0); !ok || lat != 10*time.Millisecond {
		t.Fatalf("restored PathLatency = %v,%v, want 10ms", lat, ok)
	}
	assertStatsIdentity(t, net)
}

func TestSetFiberLatencyRejectsInvalid(t *testing.T) {
	_, net, fibers, _ := squareWorld(t)
	if net.SetFiberLatency(FiberID(len(net.fibers)), time.Millisecond, 0) {
		t.Fatal("accepted out-of-range fiber id")
	}
	if net.SetFiberLatency(-1, time.Millisecond, 0) {
		t.Fatal("accepted negative fiber id")
	}
	if net.SetFiberLatency(fibers["ab"], -time.Millisecond, 0) {
		t.Fatal("accepted negative latency")
	}
	if net.SetFiberLatency(fibers["ab"], time.Millisecond, -time.Second) {
		t.Fatal("accepted negative jitter")
	}
	if _, _, ok := net.FiberLatency(-1); ok {
		t.Fatal("FiberLatency resolved a negative id")
	}
}

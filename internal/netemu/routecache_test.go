package netemu

import (
	"math/rand/v2"
	"testing"
	"time"

	"sonet/internal/sim"
)

// referencePath is the pre-cache map-based Dijkstra, kept verbatim as a
// test oracle: it recomputes the converged route from scratch on every
// call, with the same deterministic tie-breaks as the production SPF
// (lowest site ID among equal distances, earliest-laid fiber wins a tied
// relaxation).
func referencePath(n *Network, provider ISPID, src, dst SiteID) ([]FiberID, time.Duration, bool) {
	if src == dst {
		return nil, 0, true
	}
	prov := &n.isps[provider]
	const inf = time.Duration(1<<63 - 1)
	dist := make(map[SiteID]time.Duration, len(n.sites))
	prevFiber := make(map[SiteID]FiberID, len(n.sites))
	visited := make(map[SiteID]bool, len(n.sites))
	dist[src] = 0
	for {
		best := SiteID(0)
		bestDist := inf
		found := false
		for s, d := range dist {
			if visited[s] {
				continue
			}
			if d < bestDist || (d == bestDist && found && s < best) {
				best, bestDist, found = s, d, true
			}
		}
		if !found || best == dst {
			break
		}
		visited[best] = true
		for _, fid := range prov.fibers {
			if !n.fibers[fid].convergedUp {
				continue
			}
			f := &n.fibers[fid]
			var next SiteID
			switch best {
			case f.a:
				next = f.b
			case f.b:
				next = f.a
			default:
				continue
			}
			nd := bestDist + f.latency
			if cur, ok := dist[next]; !ok || nd < cur {
				dist[next] = nd
				prevFiber[next] = fid
			}
		}
	}
	d, ok := dist[dst]
	if !ok {
		return nil, 0, false
	}
	var rev []FiberID
	for s := dst; s != src; {
		fid := prevFiber[s]
		rev = append(rev, fid)
		f := &n.fibers[fid]
		if s == f.a {
			s = f.b
		} else {
			s = f.a
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, d, true
}

// checkAllRoutesAgainstReference compares the cached route for every
// (provider, src, dst) triple against a fresh reference Dijkstra.
func checkAllRoutesAgainstReference(t *testing.T, net *Network, step int) {
	t.Helper()
	for p := range net.isps {
		for src := 0; src < len(net.sites); src++ {
			for dst := 0; dst < len(net.sites); dst++ {
				gotPath, gotLat, gotOK := net.convergedPath(ISPID(p), SiteID(src), SiteID(dst))
				wantPath, wantLat, wantOK := referencePath(net, ISPID(p), SiteID(src), SiteID(dst))
				if gotOK != wantOK || gotLat != wantLat {
					t.Fatalf("step %d: route %d:%d->%d = (lat %v, ok %v), reference (lat %v, ok %v)",
						step, p, src, dst, gotLat, gotOK, wantLat, wantOK)
				}
				if len(gotPath) != len(wantPath) {
					t.Fatalf("step %d: route %d:%d->%d path %v, reference %v",
						step, p, src, dst, gotPath, wantPath)
				}
				for i := range gotPath {
					if gotPath[i] != wantPath[i] {
						t.Fatalf("step %d: route %d:%d->%d path %v, reference %v",
							step, p, src, dst, gotPath, wantPath)
					}
				}
			}
		}
	}
}

// TestRouteCacheMatchesReferenceProperty drives randomized sequences of
// fiber cuts/restores and site failures — including flaps faster than the
// convergence delay — interleaved with virtual-time advances that fire an
// arbitrary subset of the pending convergence events, and checks after
// every step that each cached route equals a fresh reference Dijkstra.
func TestRouteCacheMatchesReferenceProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*977))
		sched := sim.NewScheduler(seed)
		net := New(sched, Config{ConvergenceDelay: 40 * time.Second, RestoreDelay: 5 * time.Second})

		const nSites = 6
		for i := 0; i < nSites; i++ {
			net.AddSite("s")
		}
		var fibers []FiberID
		for p := 0; p < 2; p++ {
			isp := net.AddISP("isp")
			for i := 0; i < 10; i++ {
				a := SiteID(rng.IntN(nSites))
				b := SiteID(rng.IntN(nSites))
				if a == b {
					continue
				}
				// Latencies from a tiny set force plenty of equal-cost
				// ties, exercising the deterministic tie-breaks.
				lat := time.Duration(1+rng.IntN(4)) * time.Millisecond
				fid, err := net.AddFiber(isp, a, b, lat, 0, nil)
				if err != nil {
					t.Fatalf("AddFiber: %v", err)
				}
				fibers = append(fibers, fid)
			}
		}

		for step := 0; step < 120; step++ {
			switch rng.IntN(6) {
			case 0:
				net.CutFiber(fibers[rng.IntN(len(fibers))])
			case 1:
				net.RestoreFiber(fibers[rng.IntN(len(fibers))])
			case 2:
				net.SetSiteUp(SiteID(rng.IntN(nSites)), rng.IntN(2) == 0)
			case 3:
				// Flap faster than convergence: cut and restore (or the
				// reverse) with under a second between them.
				f := fibers[rng.IntN(len(fibers))]
				if net.FiberCut(f) {
					net.RestoreFiber(f)
					sched.RunFor(time.Duration(rng.IntN(900)) * time.Millisecond)
					net.CutFiber(f)
				} else {
					net.CutFiber(f)
					sched.RunFor(time.Duration(rng.IntN(900)) * time.Millisecond)
					net.RestoreFiber(f)
				}
			case 4:
				// Advance past some but not necessarily all pending
				// convergence delays.
				sched.RunFor(time.Duration(rng.IntN(30)) * time.Second)
			case 5:
				// Advance far enough that everything pending converges.
				sched.RunFor(2 * time.Minute)
			}
			checkAllRoutesAgainstReference(t, net, step)
		}
	}
}

package link

import (
	"math/rand"
	"testing"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

func strikesPair(sched *sim.Scheduler, latency time.Duration, cfg StrikesConfig) *pipe {
	p := newPipe(sched, latency)
	p.a.proto = NewStrikes(p.a, cfg)
	p.b.proto = NewStrikes(p.b, cfg)
	return p
}

// continentalStrikes returns the paper's live-TV setting: a 40 ms path
// with a 160 ms recovery budget (§IV-A).
func continentalStrikes() StrikesConfig {
	return StrikesConfig{N: 3, M: 2, Budget: 160 * time.Millisecond, RTT: 80 * time.Millisecond}
}

func TestStrikesLosslessDelivery(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := strikesPair(sched, 10*time.Millisecond, StrikesConfig{})
	for i := uint32(1); i <= 50; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.RunFor(time.Second)
	if len(p.b.delivered) != 50 {
		t.Fatalf("delivered %d, want 50", len(p.b.delivered))
	}
	st := p.a.proto.Stats()
	if st.Retransmissions != 0 || p.b.proto.Stats().Requests != 0 {
		t.Fatalf("lossless run recovered: %+v", st)
	}
}

func TestStrikesRecoversSingleLoss(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := strikesPair(sched, 20*time.Millisecond, continentalStrikes())
	dropped := false
	p.a.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FData && f.Seq == 2 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	var recoveredAt time.Duration
	sendAt := make(map[uint32]time.Duration)
	base := p.b.proto
	p.b.proto = &deliverHook{Protocol: base, hook: func(pk *wire.Packet) {
		if pk.FlowSeq == 2 && recoveredAt == 0 {
			recoveredAt = sched.Now()
		}
	}}
	for i := uint32(1); i <= 5; i++ {
		i := i
		sched.After(time.Duration(i-1)*10*time.Millisecond, func() {
			sendAt[i] = sched.Now()
			p.a.proto.Send(dataPacket(i))
		})
	}
	sched.RunFor(2 * time.Second)
	if len(p.b.delivered) != 5 {
		t.Fatalf("delivered %d, want 5", len(p.b.delivered))
	}
	if recoveredAt == 0 {
		t.Fatal("seq 2 never recovered")
	}
	// Loss revealed at 40ms (seq 3 arrival at 20+20); first request
	// immediately, sender replies at 60ms, recovery lands at 80ms. One-way
	// extra delay = 80 - (10 + 20) = 50ms ≈ one RTT + detection gap.
	if recoveredAt != 80*time.Millisecond {
		t.Fatalf("recovered at %v, want 80ms", recoveredAt)
	}
}

func TestStrikesSurvivesRequestLoss(t *testing.T) {
	// The first request dies; the second spaced strike recovers the
	// packet — the core burst-dodging behaviour of Fig. 4.
	sched := sim.NewScheduler(1)
	cfg := StrikesConfig{N: 3, M: 1, Budget: 150 * time.Millisecond, RTT: 20 * time.Millisecond}
	p := strikesPair(sched, 10*time.Millisecond, cfg)
	dropData := true
	p.a.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FData && f.Seq == 1 && dropData {
			dropData = false
			return true
		}
		return false
	}
	reqsDropped := 0
	p.b.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FReq && reqsDropped == 0 {
			reqsDropped++
			return true
		}
		return false
	}
	p.a.proto.Send(dataPacket(1))
	sched.After(10*time.Millisecond, func() { p.a.proto.Send(dataPacket(2)) })
	sched.RunFor(time.Second)
	if len(p.b.delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(p.b.delivered))
	}
	if got := p.b.proto.Stats().Requests; got < 2 {
		t.Fatalf("requests = %d, want >= 2 (first was dropped)", got)
	}
}

func TestStrikesCancelsRemainingRequestsOnRecovery(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := StrikesConfig{N: 5, M: 1, Budget: 500 * time.Millisecond, RTT: 20 * time.Millisecond}
	p := strikesPair(sched, 10*time.Millisecond, cfg)
	dropData := true
	p.a.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FData && f.Seq == 1 && dropData {
			dropData = false
			return true
		}
		return false
	}
	p.a.proto.Send(dataPacket(1))
	sched.After(10*time.Millisecond, func() { p.a.proto.Send(dataPacket(2)) })
	sched.RunFor(5 * time.Second)
	if len(p.b.delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(p.b.delivered))
	}
	// Recovery arrives ~20ms after the first request; the remaining 4
	// scheduled strikes (spaced 96ms apart) must be cancelled.
	if got := p.b.proto.Stats().Requests; got != 1 {
		t.Fatalf("requests = %d, want 1 (rest cancelled)", got)
	}
}

func TestStrikesGivesUpAfterBudget(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := StrikesConfig{N: 2, M: 2, Budget: 100 * time.Millisecond, RTT: 20 * time.Millisecond}
	p := strikesPair(sched, 10*time.Millisecond, cfg)
	p.a.drop = func(f *wire.Frame) bool { return f.Kind == wire.FData && f.Seq == 1 }
	p.b.drop = func(f *wire.Frame) bool { return false }
	p.a.proto.Send(dataPacket(1))
	sched.After(10*time.Millisecond, func() { p.a.proto.Send(dataPacket(2)) })
	sched.RunFor(5 * time.Second)
	if len(p.b.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (seq 1 unrecoverable)", len(p.b.delivered))
	}
	// Requests bounded by N; afterwards the pending state must be gone.
	st := p.b.proto.Stats()
	if st.Requests > 2 {
		t.Fatalf("requests = %d, want <= N=2", st.Requests)
	}
	strikes, ok := p.b.proto.(*Strikes)
	if !ok {
		t.Fatal("not a Strikes")
	}
	if len(strikes.pending) != 0 {
		t.Fatalf("pending strikes not cleaned: %d", len(strikes.pending))
	}
}

func TestStrikesSenderSchedulesMRetransmissions(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := StrikesConfig{N: 1, M: 3, Budget: 200 * time.Millisecond, RTT: 20 * time.Millisecond}
	p := strikesPair(sched, 10*time.Millisecond, cfg)
	// Drop the original and all retransmissions so all M copies go out.
	p.a.drop = func(f *wire.Frame) bool { return f.Kind == wire.FData && f.Seq == 1 }
	p.a.proto.Send(dataPacket(1))
	sched.After(10*time.Millisecond, func() { p.a.proto.Send(dataPacket(2)) })
	sched.RunFor(5 * time.Second)
	if got := p.a.proto.Stats().Retransmissions; got != 3 {
		t.Fatalf("retransmissions = %d, want M=3", got)
	}
}

func TestStrikesDuplicateRetransmissionsSuppressed(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := StrikesConfig{N: 1, M: 3, Budget: 200 * time.Millisecond, RTT: 20 * time.Millisecond}
	p := strikesPair(sched, 10*time.Millisecond, cfg)
	dropOnce := true
	p.a.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FData && f.Seq == 1 && dropOnce {
			dropOnce = false
			return true
		}
		return false
	}
	p.a.proto.Send(dataPacket(1))
	sched.After(10*time.Millisecond, func() { p.a.proto.Send(dataPacket(2)) })
	sched.RunFor(5 * time.Second)
	if len(p.b.delivered) != 2 {
		t.Fatalf("delivered %d, want 2 distinct", len(p.b.delivered))
	}
	// M=3 copies answered one request; two arrive as duplicates.
	if got := p.b.proto.Stats().DuplicatesDropped; got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}
}

func TestStrikesSingleStrikeConfig(t *testing.T) {
	cfg := SingleStrikeConfig(60*time.Millisecond, 20*time.Millisecond)
	if cfg.N != 1 || cfg.M != 1 {
		t.Fatalf("SingleStrikeConfig N=%d M=%d, want 1/1", cfg.N, cfg.M)
	}
	sched := sim.NewScheduler(1)
	p := strikesPair(sched, 10*time.Millisecond, cfg)
	p.a.drop = func(f *wire.Frame) bool { return f.Kind == wire.FData && f.Seq == 1 }
	p.a.proto.Send(dataPacket(1))
	sched.After(10*time.Millisecond, func() { p.a.proto.Send(dataPacket(2)) })
	sched.RunFor(time.Second)
	st := p.b.proto.Stats()
	if st.Requests != 1 {
		t.Fatalf("requests = %d, want exactly 1", st.Requests)
	}
	if got := p.a.proto.Stats().Retransmissions; got != 1 {
		t.Fatalf("retransmissions = %d, want exactly 1", got)
	}
}

func TestStrikesOverheadMatchesAnalytic(t *testing.T) {
	// §IV-A: sender-side cost is 1 + M·p. With p = 0.1 and M = 2 the
	// transmission overhead must be ≈ 1.2.
	sched := sim.NewScheduler(99)
	cfg := StrikesConfig{N: 3, M: 2, Budget: 160 * time.Millisecond, RTT: 20 * time.Millisecond}
	p := strikesPair(sched, 10*time.Millisecond, cfg)
	r := rand.New(rand.NewSource(5))
	const lossP = 0.10
	p.a.drop = func(f *wire.Frame) bool {
		return f.Kind == wire.FData && r.Float64() < lossP
	}
	const n = 5000
	for i := uint32(1); i <= n; i++ {
		i := i
		sched.After(time.Duration(i-1)*time.Millisecond, func() {
			p.a.proto.Send(dataPacket(i))
		})
	}
	sched.RunFor(time.Minute)
	st := p.a.proto.Stats()
	overhead := float64(st.DataSent+st.Retransmissions) / float64(n)
	want := 1 + float64(cfg.M)*lossP
	if overhead < 1.02 || overhead > want+0.08 {
		t.Fatalf("overhead = %.3f, want in (1.02, %.3f]", overhead, want+0.08)
	}
	// Nearly everything must be delivered despite pure timeliness goals.
	if got := float64(p.b.proto.Stats().Delivered) / n; got < 0.995 {
		t.Fatalf("delivery ratio %.4f, want >= 0.995", got)
	}
}

func TestStrikesHistoryEviction(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := StrikesConfig{N: 1, M: 1, Budget: 100 * time.Millisecond, RTT: 20 * time.Millisecond, HistoryLimit: 10}
	p := strikesPair(sched, 10*time.Millisecond, cfg)
	for i := uint32(1); i <= 50; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	s, ok := p.a.proto.(*Strikes)
	if !ok {
		t.Fatal("not a Strikes")
	}
	if len(s.history) != 10 {
		t.Fatalf("history = %d entries, want 10", len(s.history))
	}
	// A request for an evicted sequence is ignored.
	s.HandleFrame(&wire.Frame{Proto: wire.LPRealTime, Kind: wire.FReq, Seq: 1})
	sched.RunFor(time.Second)
	if got := p.a.proto.Stats().Retransmissions; got != 0 {
		t.Fatalf("retransmitted evicted seq: %d", got)
	}
}

func TestStrikesCloseCancelsTimers(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := StrikesConfig{N: 5, M: 3, Budget: time.Second, RTT: 20 * time.Millisecond}
	p := strikesPair(sched, 10*time.Millisecond, cfg)
	p.a.drop = func(f *wire.Frame) bool { return f.Kind == wire.FData && f.Seq == 1 }
	p.a.proto.Send(dataPacket(1))
	sched.After(10*time.Millisecond, func() { p.a.proto.Send(dataPacket(2)) })
	sched.After(40*time.Millisecond, func() {
		p.a.proto.Close()
		p.b.proto.Close()
	})
	reqsAtClose := uint64(0)
	sched.After(41*time.Millisecond, func() { reqsAtClose = p.b.proto.Stats().Requests })
	sched.RunFor(5 * time.Second)
	if got := p.b.proto.Stats().Requests; got != reqsAtClose {
		t.Fatalf("requests kept firing after Close: %d → %d", reqsAtClose, got)
	}
}

// TestStrikesGapScanClamped pins the event-loop DoS fix on the strikes
// receiver: a data frame whose sequence jumps wildly ahead (corruption, or
// a peer restarting its sequence space) schedules strike requests for at
// most maxGapScan sequences instead of spinning for billions, and the
// clamp is counted.
func TestStrikesGapScanClamped(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := strikesPair(sched, time.Millisecond, continentalStrikes())
	s := p.b.proto.(*Strikes)
	before := WindowStatsSnapshot()
	s.HandleFrame(&wire.Frame{
		Proto:  wire.LPRealTime,
		Kind:   wire.FData,
		Seq:    0x40000000,
		Packet: dataPacket(1),
	})
	after := WindowStatsSnapshot()
	if after.GapScanClamps != before.GapScanClamps+1 {
		t.Fatalf("GapScanClamps %d -> %d, want +1", before.GapScanClamps, after.GapScanClamps)
	}
	if len(s.pending) > maxGapScan {
		t.Fatalf("%d pending strike states after wild jump, want <= %d", len(s.pending), maxGapScan)
	}
	// A small genuine gap on a sane sequence is not counted.
	sane := strikesPair(sched, time.Millisecond, continentalStrikes())
	sb := sane.b.proto.(*Strikes)
	mid := WindowStatsSnapshot()
	sb.HandleFrame(&wire.Frame{Proto: wire.LPRealTime, Kind: wire.FData, Seq: 3, Packet: dataPacket(3)})
	if WindowStatsSnapshot().GapScanClamps != mid.GapScanClamps {
		t.Fatal("sane gap counted a clamp")
	}
	if len(sb.pending) != 2 {
		t.Fatalf("%d pending strike states for gap {1,2}, want 2", len(sb.pending))
	}
}

// TestStrikesSurvivesSequenceWraparound pushes the real-time protocol
// across the 2^32 boundary under loss: the high-water mark and gap
// detection must keep working in serial arithmetic.
func TestStrikesSurvivesSequenceWraparound(t *testing.T) {
	sched := sim.NewScheduler(9)
	p := strikesPair(sched, 20*time.Millisecond, continentalStrikes())
	edge := ^uint32(0) - 29
	sa := p.a.proto.(*Strikes)
	sb := p.b.proto.(*Strikes)
	sa.nextSeq = edge
	sb.high = edge
	sb.recvWin.cum = edge
	dropped := 0
	p.a.drop = func(f *wire.Frame) bool {
		// Lose two data frames straddling the wrap exactly once each.
		if f.Kind == wire.FData && (f.Seq == 0xffffffff || f.Seq == 1) && dropped < 2 {
			dropped++
			return true
		}
		return false
	}
	const n = 60
	for i := uint32(1); i <= n; i++ {
		p.a.proto.Send(dataPacket(i))
		sched.RunFor(5 * time.Millisecond)
	}
	sched.RunFor(2 * time.Second)
	if len(p.b.delivered) != n {
		t.Fatalf("delivered %d of %d across wraparound", len(p.b.delivered), n)
	}
	if sb.recvWin.Cum() != edge+n {
		t.Fatalf("receiver cum = %#x, want %#x", sb.recvWin.Cum(), edge+n)
	}
}

package link

import (
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// ReliableConfig parameterizes the hop-by-hop Reliable Data Link.
type ReliableConfig struct {
	// Window is the maximum number of unacknowledged data frames in
	// flight.
	Window int
	// QueueLimit bounds packets waiting for window space; beyond it new
	// packets are dropped (and counted in Stats.SendDropped).
	QueueLimit int
	// RTOInit is the initial retransmission timeout; it adapts to the
	// measured RTT afterwards.
	RTOInit time.Duration
	// RTOMin floors the adaptive retransmission timeout.
	RTOMin time.Duration
	// DisableNack turns off the receiver's immediate retransmission
	// requests on gap detection, leaving recovery to the sender's timeout
	// alone (ablation: NACK vs RTO-only). The zero value keeps fast NACK
	// recovery on, which is the production behaviour.
	DisableNack bool
	// ReqInterval is the receiver's re-request period for a still-missing
	// sequence.
	ReqInterval time.Duration
	// MaxRetries bounds sender retransmissions per frame before giving up.
	MaxRetries int
	// MaxReqs bounds receiver requests per missing sequence before the
	// gap is abandoned and the window advances past it.
	MaxReqs int
	// InOrderForwarding holds received packets until they are in sequence
	// before delivering upward. The paper's design forwards out of order
	// at intermediate hops (§III-A); enabling this is the ablation that
	// shows why.
	InOrderForwarding bool
}

// DefaultReliableConfig returns the production defaults, tuned for the
// short (~10 ms) overlay links of the resilient architecture.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{
		Window:      2048,
		QueueLimit:  8192,
		RTOInit:     50 * time.Millisecond,
		RTOMin:      2 * time.Millisecond,
		ReqInterval: 25 * time.Millisecond,
		MaxRetries:  100,
		MaxReqs:     50,
	}
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	d := DefaultReliableConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = d.QueueLimit
	}
	if c.RTOInit <= 0 {
		c.RTOInit = d.RTOInit
	}
	if c.RTOMin <= 0 {
		c.RTOMin = d.RTOMin
	}
	if c.ReqInterval <= 0 {
		c.ReqInterval = d.ReqInterval
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.MaxReqs <= 0 {
		c.MaxReqs = d.MaxReqs
	}
	return c
}

// Reliable is the Reliable Data Link endpoint (§III-A, citing Amir &
// Danilov DSN 2003): a sliding-window ARQ protocol on one overlay link.
// Losses are detected by the receiver (sequence gaps trigger NACKs) and by
// the sender (retransmission timeout), and recovered locally on the link.
// Received packets are forwarded out of order by default, leaving in-order
// delivery to the final destination, which is what lets a chain of short
// reliable links beat an end-to-end protocol on both latency and
// smoothness (Fig. 3).
type Reliable struct {
	env Env
	cfg ReliableConfig

	// Sender state. Retransmission slots hold the packet header inline
	// and its bytes in a refcounted pooled buffer; drained slots recycle
	// through a freelist so the steady-state send path allocates nothing.
	nextSeq  uint32
	unacked  map[uint32]*sentFrame
	// queue is a bounded ring of slots waiting for window space (the
	// seed's queue[1:] slice retained its consumed prefix; a ring cannot).
	qbuf     []*sentFrame
	qhead    int
	qlen     int
	freeSlot *sentFrame
	rtoTimer sim.Timer
	srtt     time.Duration
	rto      time.Duration

	// Receiver state.
	recvWin   *seqWindow
	pendReqs  map[uint32]*pendingReq
	inOrder   map[uint32]*wire.Packet
	nextDeliv uint32

	stats  Stats
	closed bool
	// tx is the reusable frame for synchronous transmits.
	tx wire.Frame
}

type sentFrame struct {
	pkt     wire.Packet
	buf     *wire.Buf
	retries int
	// free links drained slots in the owner's freelist.
	free *sentFrame
}

type pendingReq struct {
	timer sim.Timer
	tries int
}

var _ Protocol = (*Reliable)(nil)

// NewReliable returns a Reliable Data Link endpoint.
func NewReliable(env Env, cfg ReliableConfig) *Reliable {
	cfg = cfg.withDefaults()
	return &Reliable{
		env:      env,
		cfg:      cfg,
		unacked:  make(map[uint32]*sentFrame),
		recvWin:  newSeqWindow(cfg.Window * 2),
		pendReqs: make(map[uint32]*pendingReq),
		inOrder:  make(map[uint32]*wire.Packet),
		rto:      cfg.RTOInit,
	}
}

// newSlot returns a retransmission slot from the freelist (or fresh).
func (r *Reliable) newSlot() *sentFrame {
	if sf := r.freeSlot; sf != nil {
		r.freeSlot = sf.free
		sf.free = nil
		return sf
	}
	return &sentFrame{}
}

// releaseSlot releases the slot's captured buffer and recycles it.
func (r *Reliable) releaseSlot(sf *sentFrame) {
	if sf.buf != nil {
		sf.buf.Release()
		sf.buf = nil
	}
	sf.pkt = wire.Packet{}
	sf.retries = 0
	sf.free = r.freeSlot
	r.freeSlot = sf
}

// Send implements Protocol. The packet is borrowed; the link captures it
// into a retransmission slot backed by a pooled refcounted buffer.
func (r *Reliable) Send(p *wire.Packet) {
	if r.closed {
		return
	}
	sf := r.newSlot()
	sf.buf = wire.CapturePacket(&sf.pkt, p, wire.DefaultBufPool)
	r.enqueueSlot(sf)
}

// SendOwned is Send for a packet whose ownership transfers to the link
// (its byte fields must be heap-owned, not pooled scratch), skipping the
// defensive capture copy.
func (r *Reliable) SendOwned(p *wire.Packet) {
	if r.closed {
		return
	}
	sf := r.newSlot()
	sf.pkt = *p
	r.enqueueSlot(sf)
}

// SendStored is Send for a packet whose byte fields are backed by buf, a
// refcounted buffer whose ownership transfers to the link (a pacing queue
// handing over its captured entry). The link releases buf once the frame
// is acknowledged, abandoned, or closed; buf may be nil for a byteless
// packet.
func (r *Reliable) SendStored(p *wire.Packet, buf *wire.Buf) {
	if r.closed {
		if buf != nil {
			buf.Release()
		}
		return
	}
	sf := r.newSlot()
	sf.pkt = *p
	sf.buf = buf
	r.enqueueSlot(sf)
}

func (r *Reliable) enqueueSlot(sf *sentFrame) {
	if len(r.unacked) >= r.cfg.Window {
		if r.qlen >= r.cfg.QueueLimit {
			r.stats.SendDropped++
			r.releaseSlot(sf)
			return
		}
		r.pushQueue(sf)
		return
	}
	r.transmitNew(sf)
}

func (r *Reliable) pushQueue(sf *sentFrame) {
	if r.qlen == len(r.qbuf) {
		n := len(r.qbuf) * 2
		if n == 0 {
			n = 16
		}
		nb := make([]*sentFrame, n)
		for i := 0; i < r.qlen; i++ {
			nb[i] = r.qbuf[(r.qhead+i)%len(r.qbuf)]
		}
		r.qbuf, r.qhead = nb, 0
	}
	r.qbuf[(r.qhead+r.qlen)%len(r.qbuf)] = sf
	r.qlen++
}

func (r *Reliable) popQueue() *sentFrame {
	sf := r.qbuf[r.qhead]
	r.qbuf[r.qhead] = nil
	r.qhead = (r.qhead + 1) % len(r.qbuf)
	r.qlen--
	return sf
}

func (r *Reliable) transmitNew(sf *sentFrame) {
	r.nextSeq++
	seq := r.nextSeq
	r.unacked[seq] = sf
	r.stats.DataSent++
	r.tx = wire.Frame{
		Proto:    wire.LPReliable,
		Kind:     wire.FData,
		Seq:      seq,
		SendTime: r.env.Clock().Now(),
		Packet:   &sf.pkt,
	}
	r.env.Transmit(&r.tx)
	r.armRTO()
}

// HandleFrame implements Protocol.
func (r *Reliable) HandleFrame(f *wire.Frame) {
	if r.closed {
		return
	}
	switch f.Kind {
	case wire.FData:
		r.onData(f)
	case wire.FAck:
		r.onAck(f)
	case wire.FReq:
		r.onReq(f)
	}
}

func (r *Reliable) onData(f *wire.Frame) {
	if f.Packet == nil {
		return
	}
	if r.recvWin.Record(f.Seq) {
		if req, ok := r.pendReqs[f.Seq]; ok {
			stopTimer(req.timer)
			delete(r.pendReqs, f.Seq)
		}
		r.deliverUp(f.Seq, f.Packet)
	} else {
		r.stats.DuplicatesDropped++
	}
	r.sendAck(f.SendTime)
	if !r.cfg.DisableNack {
		for _, seq := range r.recvWin.Missing(f.Seq, 64) {
			if _, ok := r.pendReqs[seq]; ok {
				continue
			}
			r.requestSeq(seq)
		}
	}
}

func (r *Reliable) deliverUp(seq uint32, p *wire.Packet) {
	if !r.cfg.InOrderForwarding {
		r.stats.Delivered++
		r.env.Deliver(p)
		return
	}
	// Buffering retains the packet past HandleFrame, so take ownership of a
	// copy (the original aliases the receive buffer).
	r.inOrder[seq] = p.Clone()
	r.flushInOrder()
}

// flushInOrder delivers consecutively sequenced buffered packets.
func (r *Reliable) flushInOrder() {
	for {
		next, ok := r.inOrder[r.nextDeliv+1]
		if !ok {
			break
		}
		delete(r.inOrder, r.nextDeliv+1)
		r.nextDeliv++
		r.stats.Delivered++
		r.env.Deliver(next)
	}
}

func (r *Reliable) sendAck(echo time.Duration) {
	r.stats.Acks++
	r.tx = wire.Frame{
		Proto:    wire.LPReliable,
		Kind:     wire.FAck,
		Ack:      r.recvWin.Cum(),
		AckBits:  r.recvWin.AckBits(),
		SendTime: echo,
	}
	r.env.Transmit(&r.tx)
}

func (r *Reliable) requestSeq(seq uint32) {
	req := &pendingReq{}
	r.pendReqs[seq] = req
	var fire func()
	fire = func() {
		if r.closed || r.recvWin.Seen(seq) {
			delete(r.pendReqs, seq)
			return
		}
		req.tries++
		if req.tries > r.cfg.MaxReqs {
			// Abandon the gap so the window can advance; the sender has
			// long since given up too (dead peer or severed link).
			delete(r.pendReqs, seq)
			r.recvWin.Record(seq)
			if r.cfg.InOrderForwarding && seq == r.nextDeliv+1 {
				r.nextDeliv++
				r.flushInOrder()
			}
			return
		}
		r.stats.Requests++
		r.tx = wire.Frame{
			Proto:    wire.LPReliable,
			Kind:     wire.FReq,
			Seq:      seq,
			SendTime: r.env.Clock().Now(),
		}
		r.env.Transmit(&r.tx)
		req.timer = r.env.Clock().After(r.cfg.ReqInterval, fire)
	}
	fire()
}

func (r *Reliable) onAck(f *wire.Frame) {
	if f.SendTime > 0 {
		rtt := r.env.Clock().Now() - f.SendTime
		if rtt > 0 {
			if r.srtt == 0 {
				r.srtt = rtt
			} else {
				r.srtt = (7*r.srtt + rtt) / 8
			}
			r.rto = clampDur(3*r.srtt, r.cfg.RTOMin)
		}
	}
	for seq, sf := range r.unacked {
		// Serial-number compares so the cumulative ack keeps clearing the
		// window after the sequence space wraps past 2^32.
		acked := seqLE(seq, f.Ack)
		if !acked {
			if d := seq - f.Ack; d <= 64 {
				acked = f.AckBits&(1<<(d-1)) != 0
			}
		}
		if acked {
			delete(r.unacked, seq)
			r.releaseSlot(sf)
		}
	}
	for r.qlen > 0 && len(r.unacked) < r.cfg.Window {
		r.transmitNew(r.popQueue())
	}
	r.armRTO()
}

func (r *Reliable) onReq(f *wire.Frame) {
	entry, ok := r.unacked[f.Seq]
	if !ok {
		return
	}
	r.retransmit(f.Seq, entry)
}

func (r *Reliable) retransmit(seq uint32, entry *sentFrame) {
	entry.retries++
	if entry.retries > r.cfg.MaxRetries {
		delete(r.unacked, seq)
		r.releaseSlot(entry)
		r.stats.SendDropped++
		return
	}
	r.stats.Retransmissions++
	// The retained packet is link-owned, so the retransmission flag can be
	// set in place; Transmit marshals synchronously and the flag is sticky
	// for the remaining retries anyway.
	entry.pkt.Flags |= wire.FRetrans
	r.tx = wire.Frame{
		Proto:    wire.LPReliable,
		Kind:     wire.FData,
		Seq:      seq,
		SendTime: r.env.Clock().Now(),
		Packet:   &entry.pkt,
	}
	r.env.Transmit(&r.tx)
}

// armRTO (re)arms the sender retransmission timer when frames are in
// flight.
func (r *Reliable) armRTO() {
	stopTimer(r.rtoTimer)
	r.rtoTimer = nil
	if len(r.unacked) == 0 {
		return
	}
	r.rtoTimer = r.env.Clock().After(r.rto, func() {
		r.rtoTimer = nil
		if r.closed || len(r.unacked) == 0 {
			return
		}
		// Retransmit the serially oldest outstanding frame and back off.
		// (0 is not usable as an "unset" sentinel: it is a legitimate
		// sequence once the space wraps.)
		var oldest uint32
		first := true
		for seq := range r.unacked {
			if first || seqLT(seq, oldest) {
				oldest = seq
				first = false
			}
		}
		if entry, ok := r.unacked[oldest]; ok {
			r.retransmit(oldest, entry)
		}
		r.rto = clampDur(2*r.rto, r.cfg.RTOMin)
		r.armRTO()
	})
}

// Stats implements Protocol.
func (r *Reliable) Stats() Stats { return r.stats }

// OutstandingFrames returns the number of unacknowledged data frames —
// used by tests and by backpressure-sensitive callers.
func (r *Reliable) OutstandingFrames() int { return len(r.unacked) + r.qlen }

// Close implements Protocol.
func (r *Reliable) Close() {
	r.closed = true
	stopTimer(r.rtoTimer)
	r.rtoTimer = nil
	for seq, req := range r.pendReqs {
		stopTimer(req.timer)
		delete(r.pendReqs, seq)
	}
	// Release retransmission and reordering buffers so a torn-down link
	// holds no packet memory (and returns no pooled bytes late).
	for seq, sf := range r.unacked {
		delete(r.unacked, seq)
		r.releaseSlot(sf)
	}
	for r.qlen > 0 {
		r.releaseSlot(r.popQueue())
	}
	r.qbuf = nil
	for seq := range r.inOrder {
		delete(r.inOrder, seq)
	}
}

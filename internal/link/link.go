// Package link implements the link-level protocols of the overlay node
// software architecture (Fig. 2): Best Effort, the hop-by-hop Reliable Data
// Link with ARQ and out-of-order forwarding (§III-A), and the NM-Strikes
// real-time recovery protocol with its single-strike VoIP predecessor
// (§IV-A, Fig. 4).
//
// A Protocol instance runs on one endpoint of one overlay link. The node
// hosting it supplies an Env: a clock, a way to transmit frames to the
// peer, and a way to deliver received packets up to the routing level.
// Protocols are single-threaded: all calls into a Protocol are serialized
// by the owning node's executor.
package link

import (
	"errors"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// ErrBackpressure reports that a bounded scheduler queue refused a packet
// because the flow (or the shared buffer) is saturated. It is the typed
// signal the fair disciplines raise through TrySend so originating
// callers — sessions, applications — can slow down instead of silently
// losing traffic; transit forwarding keeps the paper's drop semantics.
var ErrBackpressure = errors.New("link: flow queue saturated (backpressure)")

// TrySender is implemented by protocols whose admission policy can refuse
// a packet (bounded per-flow queues). TrySend behaves exactly like Send
// but reports the refusal with ErrBackpressure instead of dropping
// silently. Protocols without admission control simply don't implement
// it, and callers fall back to Send.
type TrySender interface {
	// TrySend transmits like Protocol.Send; it returns ErrBackpressure if
	// the packet was refused by the admission policy. The packet is
	// borrowed, as with Send.
	TrySend(p *wire.Packet) error
}

// Env is what a link protocol instance needs from its host overlay node.
//
// Buffer ownership: Transmit and Deliver both borrow their argument — the
// callee uses it synchronously (marshal, route, deliver) and must not keep
// a reference past the call, because frames may be protocol scratch space
// and packets may alias pooled receive buffers (see DESIGN.md §6).
type Env interface {
	// Clock returns the node's clock.
	Clock() sim.Clock
	// Transmit sends a frame to the link's peer over the underlay. The
	// frame is borrowed: it is marshaled before Transmit returns and may
	// be reused by the caller immediately after.
	Transmit(f *wire.Frame)
	// Deliver hands a packet received on this link up to the node's
	// forwarding plane. The packet is borrowed; the forwarding plane
	// clones it if anything retains it past the call.
	Deliver(p *wire.Packet)
}

// Protocol is one endpoint of a link-level protocol instance.
type Protocol interface {
	// Send transmits a routing-level packet to the peer, applying the
	// protocol's recovery discipline. The packet is borrowed: protocols
	// that retain packets (retransmission history, pacing queues) clone
	// internally, which keeps the common fan-out path allocation-free.
	Send(p *wire.Packet)
	// HandleFrame processes a frame received from the peer. The frame and
	// its packet are borrowed for the duration of the call.
	HandleFrame(f *wire.Frame)
	// Stats returns a snapshot of the instance's counters.
	Stats() Stats
	// Close cancels all pending timers and releases retransmission
	// buffers; a closed protocol ignores Send and HandleFrame, and none of
	// its timers fire afterwards.
	Close()
}

// Stats counts link-protocol activity on one link endpoint. The overhead
// analyses (e.g. NM-Strikes' 1 + M·p cost, §IV-A) are computed from these.
type Stats struct {
	// DataSent counts first transmissions of data frames.
	DataSent uint64
	// Retransmissions counts repeated transmissions of data frames.
	Retransmissions uint64
	// Requests counts retransmission requests sent to the peer.
	Requests uint64
	// Acks counts acknowledgment frames sent to the peer.
	Acks uint64
	// Delivered counts distinct packets delivered upward.
	Delivered uint64
	// DuplicatesDropped counts received data frames whose sequence was
	// already delivered.
	DuplicatesDropped uint64
	// SendDropped counts packets dropped at the sender (window or buffer
	// overflow).
	SendDropped uint64
}

// seqLE reports a <= b in RFC 1982 serial-number arithmetic over the full
// uint32 space: b is "at or after" a when the forward distance from a to b
// is shorter than the wrap distance. Link sessions are long-lived, so
// sequence numbers genuinely pass 2^32; raw comparisons would then treat
// every fresh frame as ancient and black-hole the link.
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

// seqLT reports a < b in serial-number arithmetic.
func seqLT(a, b uint32) bool { return int32(b-a) > 0 }

// seqWindow tracks which link sequence numbers have been seen, supporting
// cumulative-plus-bitmap acknowledgment and duplicate suppression. It
// handles the sequences 1,2,3,… used by the link protocols, compared in
// serial-number arithmetic so sessions survive the sequence space wrapping
// past 2^32. The window is a ring buffer, so recording and advancing are
// O(1) amortized.
//
// The zero value tracks nothing; use newSeqWindow.
type seqWindow struct {
	// cum is the highest sequence (serially) such that all sequences at or
	// before it were seen.
	cum uint32
	// bits marks sequences cum+1+i as seen at ring position (start+i).
	bits  []bool
	start int
}

func newSeqWindow(capacity int) *seqWindow {
	return &seqWindow{bits: make([]bool, capacity)}
}

func (w *seqWindow) at(i int) bool {
	return w.bits[(w.start+i)%len(w.bits)]
}

// Seen reports whether seq was recorded.
func (w *seqWindow) Seen(seq uint32) bool {
	if seqLE(seq, w.cum) {
		return true
	}
	// seq is serially after cum, so the unsigned difference is the true
	// forward distance even across a wrap.
	idx := seq - w.cum - 1
	return idx < uint32(len(w.bits)) && w.at(int(idx))
}

// Record marks seq as seen and advances the cumulative edge. It reports
// whether the sequence was newly recorded (false for duplicates and for
// sequences too far ahead of the window, which are dropped).
func (w *seqWindow) Record(seq uint32) bool {
	if seqLE(seq, w.cum) {
		return false
	}
	idx := seq - w.cum - 1
	if idx >= uint32(len(w.bits)) {
		return false
	}
	pos := (w.start + int(idx)) % len(w.bits)
	if w.bits[pos] {
		return false
	}
	w.bits[pos] = true
	for w.bits[w.start] {
		w.bits[w.start] = false
		w.start = (w.start + 1) % len(w.bits)
		w.cum++
	}
	return true
}

// Cum returns the cumulative edge: every sequence serially at or before
// Cum has been seen.
func (w *seqWindow) Cum() uint32 { return w.cum }

// AckBits encodes the out-of-order sequences above the cumulative edge as
// the selective-ack bitmap used in FAck frames.
func (w *seqWindow) AckBits() uint64 {
	var bits uint64
	n := len(w.bits)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		if w.at(i) {
			bits |= 1 << i
		}
	}
	return bits
}

// Missing returns the sequences in (cum, upTo] not yet seen, capped at max
// entries — the gaps a receiver should request. upTo comes off the wire,
// so the scan is clamped to the window capacity: anything past the window
// could not have been recorded anyway, and an absurd (corrupt or hostile)
// upTo must not spin the event loop for up to 2^32 iterations.
func (w *seqWindow) Missing(upTo uint32, max int) []uint32 {
	if seqLE(upTo, w.cum) {
		return nil
	}
	span := upTo - w.cum
	if span > uint32(len(w.bits)) {
		span = uint32(len(w.bits))
		windowStats.MissingClamps.Add(1)
	}
	var out []uint32
	for i := uint32(1); i <= span && len(out) < max; i++ {
		seq := w.cum + i
		if !w.Seen(seq) {
			out = append(out, seq)
		}
	}
	return out
}

// windowStats counts defensive clamps in sequence-window scans across the
// process; exposed via WindowStatsSnapshot for monitoring.
var windowStats metrics.SeqWindowStats

// WindowStatsSnapshot returns the process-wide sequence-window counters.
func WindowStatsSnapshot() metrics.SeqWindowSnapshot { return windowStats.Snapshot() }

// stopTimer stops t if non-nil.
func stopTimer(t sim.Timer) {
	if t != nil {
		t.Stop()
	}
}

// clampDur returns d clamped to at least lo.
func clampDur(d, lo time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	return d
}

package link

import (
	"testing"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// TestReliableTeardownMidRecovery arms every Reliable timer class —
// the sender's RTO over unacked frames and the receiver's spaced
// retransmission requests over a detected gap — then tears the link down
// and asserts that no frame is transmitted, nothing is delivered, and the
// retransmission buffers are released.
func TestReliableTeardownMidRecovery(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := ReliableConfig{RTOInit: 50 * time.Millisecond, ReqInterval: 25 * time.Millisecond}
	p := reliablePair(sched, 10*time.Millisecond, cfg)
	// Drop the first data frame: the sender keeps seq 1 unacked (RTO
	// armed), and the receiver sees seq 2 arrive past the gap (request
	// timer armed).
	p.a.drop = func(f *wire.Frame) bool { return f.Kind == wire.FData && f.Seq == 1 }
	p.a.proto.Send(dataPacket(1))
	p.a.proto.Send(dataPacket(2))
	sched.RunFor(15 * time.Millisecond)
	rel := p.a.proto.(*Reliable)
	if rel.OutstandingFrames() == 0 {
		t.Fatal("setup failed: no unacked frames before teardown")
	}

	p.a.proto.Close()
	p.b.proto.Close()
	sentA, sentB := p.a.sentWire, p.b.sentWire
	deliveredB := len(p.b.delivered)

	sched.RunFor(time.Minute)
	if p.a.sentWire != sentA || p.b.sentWire != sentB {
		t.Fatalf("torn-down link transmitted: a %d->%d, b %d->%d",
			sentA, p.a.sentWire, sentB, p.b.sentWire)
	}
	if len(p.b.delivered) != deliveredB {
		t.Fatalf("torn-down link delivered %d more packets", len(p.b.delivered)-deliveredB)
	}
	if rel.OutstandingFrames() != 0 {
		t.Fatalf("close left %d frames in retransmission buffers", rel.OutstandingFrames())
	}
	if n := sched.Pending(); n != 0 {
		t.Fatalf("%d scheduler events still pending after teardown drained", n)
	}

	// A closed endpoint must also ignore late sends and frames.
	p.a.proto.Send(dataPacket(3))
	sched.RunFor(time.Second)
	if p.a.sentWire != sentA {
		t.Fatal("closed protocol transmitted on Send")
	}
}

// TestStrikesTeardownMidRecovery arms both NM-Strikes timer classes — the
// receiver's N spaced requests for a missing packet and the sender's M
// spaced retransmissions of a requested packet — then tears the link down
// and asserts no further frames or deliveries occur.
func TestStrikesTeardownMidRecovery(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := StrikesConfig{N: 3, M: 2, Budget: 160 * time.Millisecond, RTT: 20 * time.Millisecond}
	p := newPipe(sched, 10*time.Millisecond)
	p.a.proto = NewStrikes(p.a, cfg)
	p.b.proto = NewStrikes(p.b, cfg)
	// Drop seq 2 so the receiver detects the gap at seq 3 and schedules
	// its strikes; the first request reaches the sender and arms the
	// M-retransmission epoch before teardown.
	p.a.drop = func(f *wire.Frame) bool { return f.Kind == wire.FData && f.Seq == 2 && f.Packet != nil && !f.Packet.Flags.Has(wire.FRetrans) }
	for i := uint32(1); i <= 3; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	// Long enough for gap detection and the first request round-trip to
	// start the sender's retransmission epoch, short enough that later
	// strikes and the Mth copies are still pending.
	sched.RunFor(21 * time.Millisecond)
	if p.a.proto.Stats().Requests+p.b.proto.Stats().Requests == 0 {
		t.Fatal("setup failed: no retransmission request in flight before teardown")
	}

	p.a.proto.Close()
	p.b.proto.Close()
	sentA, sentB := p.a.sentWire, p.b.sentWire
	deliveredB := len(p.b.delivered)

	sched.RunFor(time.Minute)
	if p.a.sentWire != sentA || p.b.sentWire != sentB {
		t.Fatalf("torn-down link transmitted: a %d->%d, b %d->%d",
			sentA, p.a.sentWire, sentB, p.b.sentWire)
	}
	if len(p.b.delivered) != deliveredB {
		t.Fatalf("torn-down link delivered %d more packets", len(p.b.delivered)-deliveredB)
	}
	if n := sched.Pending(); n != 0 {
		t.Fatalf("%d scheduler events still pending after teardown drained", n)
	}
}

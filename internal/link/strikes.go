package link

import (
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// StrikesConfig parameterizes the NM-Strikes real-time protocol (Fig. 4).
type StrikesConfig struct {
	// N is the number of spaced retransmission requests the receiver
	// schedules per missing packet.
	N int
	// M is the number of spaced retransmissions the sender schedules per
	// received request.
	M int
	// Budget is the recovery window: the time after loss detection within
	// which a recovered packet is still useful. For live TV on a
	// continental path, the paper's 200 ms one-way bound leaves about
	// 160 ms of budget (§IV-A); for remote manipulation only 20-25 ms
	// (§V-A).
	Budget time.Duration
	// RTT is the link round-trip estimate used to space requests so that
	// even the response to the last request can arrive within budget.
	RTT time.Duration
	// HistoryLimit bounds the sender's retransmission buffer (packets).
	HistoryLimit int
}

// DefaultStrikesConfig returns NM-Strikes defaults for a 10 ms overlay
// link with a 160 ms recovery budget.
func DefaultStrikesConfig() StrikesConfig {
	return StrikesConfig{
		N:            3,
		M:            2,
		Budget:       160 * time.Millisecond,
		RTT:          20 * time.Millisecond,
		HistoryLimit: 4096,
	}
}

func (c StrikesConfig) withDefaults() StrikesConfig {
	d := DefaultStrikesConfig()
	if c.N <= 0 {
		c.N = d.N
	}
	if c.M <= 0 {
		c.M = d.M
	}
	if c.Budget <= 0 {
		c.Budget = d.Budget
	}
	if c.RTT <= 0 {
		c.RTT = d.RTT
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = d.HistoryLimit
	}
	return c
}

// SingleStrikeConfig returns the configuration of the NM-Strikes
// predecessor used for VoIP (§V-A, citing 1-800-OVERLAYS): one request and
// one retransmission per lost packet.
func SingleStrikeConfig(budget, rtt time.Duration) StrikesConfig {
	return StrikesConfig{N: 1, M: 1, Budget: budget, RTT: rtt, HistoryLimit: 4096}
}

// requestSpacing returns the interval between the receiver's N requests:
// the requests are spread as much as possible over the budget while
// leaving one RTT for the final response to arrive (§IV-A: "requests
// should be spaced out as much as possible, but not so much that the
// deadline is not met").
func (c StrikesConfig) requestSpacing() time.Duration {
	usable := c.Budget - c.RTT
	if usable <= 0 {
		return 0
	}
	return usable / time.Duration(c.N)
}

// retransSpacing returns the interval between the sender's M
// retransmissions given the receiver's remaining recovery budget: the
// copies are spread as widely as the deadline allows ("also spaced to
// avoid correlated loss", §IV-A), leaving half an RTT for the last copy
// to arrive.
func (c StrikesConfig) retransSpacing(remaining time.Duration) time.Duration {
	usable := remaining - c.RTT/2
	spacing := usable / time.Duration(c.M)
	if spacing < time.Millisecond {
		spacing = time.Millisecond
	}
	return spacing
}

// Strikes is the NM-Strikes real-time link protocol (§IV-A, Fig. 4): it
// guarantees timeliness rather than complete reliability. The receiver
// schedules N retransmission requests per missing packet, spaced to dodge
// the window of correlated loss; the sender answers each arriving request
// with M spaced retransmissions. A receiver that recovers a packet cancels
// that packet's remaining requests. Worst-case sender-side cost is
// 1 + M·p per packet at loss rate p.
type Strikes struct {
	env Env
	cfg StrikesConfig

	// Sender state: a bounded history of sent packets for retransmission.
	nextSeq   uint32
	history   map[uint32]*wire.Packet
	histOrder []uint32
	// retransEpoch tracks sequences with retransmissions currently
	// scheduled, so duplicate requests within one epoch don't multiply.
	retransEpoch map[uint32][]sim.Timer

	// Receiver state.
	recvWin *seqWindow
	// high is the highest sequence ever received; new arrivals above
	// high+1 reveal gaps.
	high uint32
	// pending tracks scheduled request timers per missing sequence.
	pending map[uint32]*strikeState

	stats  Stats
	closed bool
	// tx is the reusable frame for transmits (all calls are serialized by
	// the node's executor, timers included).
	tx wire.Frame
}

type strikeState struct {
	timers []sim.Timer
	sent   int
}

var _ Protocol = (*Strikes)(nil)

// NewStrikes returns an NM-Strikes endpoint.
func NewStrikes(env Env, cfg StrikesConfig) *Strikes {
	cfg = cfg.withDefaults()
	return &Strikes{
		env:          env,
		cfg:          cfg,
		history:      make(map[uint32]*wire.Packet),
		retransEpoch: make(map[uint32][]sim.Timer),
		recvWin:      newSeqWindow(1 << 16),
		pending:      make(map[uint32]*strikeState),
	}
}

// Send implements Protocol. The packet is borrowed; the retransmission
// history keeps a clone.
func (s *Strikes) Send(p *wire.Packet) {
	if s.closed {
		return
	}
	s.nextSeq++
	seq := s.nextSeq
	s.history[seq] = p.Clone()
	s.histOrder = append(s.histOrder, seq)
	for len(s.histOrder) > s.cfg.HistoryLimit {
		old := s.histOrder[0]
		s.histOrder = s.histOrder[1:]
		delete(s.history, old)
		if timers, ok := s.retransEpoch[old]; ok {
			for _, t := range timers {
				stopTimer(t)
			}
			delete(s.retransEpoch, old)
		}
	}
	s.stats.DataSent++
	s.tx = wire.Frame{
		Proto:    wire.LPRealTime,
		Kind:     wire.FData,
		Seq:      seq,
		SendTime: s.env.Clock().Now(),
		Packet:   p,
	}
	s.env.Transmit(&s.tx)
}

// HandleFrame implements Protocol.
func (s *Strikes) HandleFrame(f *wire.Frame) {
	if s.closed {
		return
	}
	switch f.Kind {
	case wire.FData:
		s.onData(f)
	case wire.FReq:
		s.onReq(f)
	}
}

func (s *Strikes) onData(f *wire.Frame) {
	if f.Packet == nil {
		return
	}
	prevHigh := s.high
	if seqLT(s.high, f.Seq) {
		s.high = f.Seq
	}
	if s.recvWin.Record(f.Seq) {
		// A recovered packet cancels its remaining scheduled requests.
		if st, ok := s.pending[f.Seq]; ok {
			for _, t := range st.timers {
				stopTimer(t)
			}
			delete(s.pending, f.Seq)
		}
		s.stats.Delivered++
		s.env.Deliver(f.Packet)
	} else {
		s.stats.DuplicatesDropped++
	}
	// Out-of-order arrival reveals gaps: schedule the N strikes for every
	// newly missing sequence between the previous edge and this frame. The
	// sequence comes off the wire, so the scan is clamped — a wild jump
	// (corruption, or a peer restarting its space) must not spin the event
	// loop scheduling billions of strike timers.
	if seqLT(prevHigh, f.Seq) {
		span := f.Seq - prevHigh - 1
		if span > maxGapScan {
			span = maxGapScan
			windowStats.GapScanClamps.Add(1)
		}
		for i := uint32(1); i <= span; i++ {
			seq := prevHigh + i
			if s.recvWin.Seen(seq) {
				continue
			}
			if _, ok := s.pending[seq]; ok {
				continue
			}
			s.scheduleRequests(seq)
		}
	}
}

// maxGapScan bounds how many sequences one data frame can newly mark as
// missing. Genuine reordering gaps are tiny (a few packets); anything
// larger is lost for good from a real-time protocol's perspective anyway.
const maxGapScan = 1024

// scheduleRequests arms the N spaced retransmission requests for one
// missing sequence (the receiver side of Fig. 4).
func (s *Strikes) scheduleRequests(seq uint32) {
	st := &strikeState{}
	s.pending[seq] = st
	spacing := s.cfg.requestSpacing()
	for i := 0; i < s.cfg.N; i++ {
		delay := time.Duration(i) * spacing
		remaining := s.cfg.Budget - delay
		timer := s.env.Clock().After(delay, func() {
			if s.closed || s.recvWin.Seen(seq) {
				return
			}
			st.sent++
			s.stats.Requests++
			// The request carries the remaining recovery budget (in
			// microseconds, via the Ack field) so the sender can spread
			// its M copies over exactly the useful window.
			s.tx = wire.Frame{
				Proto:    wire.LPRealTime,
				Kind:     wire.FReq,
				Seq:      seq,
				Ack:      uint32(remaining / time.Microsecond),
				SendTime: s.env.Clock().Now(),
			}
			s.env.Transmit(&s.tx)
		})
		st.timers = append(st.timers, timer)
	}
	// After the budget expires the packet is no longer useful; forget it.
	expiry := s.env.Clock().After(s.cfg.Budget, func() {
		if st2, ok := s.pending[seq]; ok {
			for _, t := range st2.timers {
				stopTimer(t)
			}
			delete(s.pending, seq)
		}
	})
	st.timers = append(st.timers, expiry)
}

// onReq answers the first received retransmission request with M spaced
// retransmissions (the sender side of Fig. 4): the copies are spread over
// the remaining recovery budget the request reports, so even the Mth
// response to the Nth request can still arrive on time. Requests arriving
// while the retransmission epoch is active are ignored, bounding the
// worst-case sender cost at 1 + M·p.
func (s *Strikes) onReq(f *wire.Frame) {
	seq := f.Seq
	if _, ok := s.history[seq]; !ok {
		return
	}
	if _, active := s.retransEpoch[seq]; active {
		return
	}
	remaining := time.Duration(f.Ack) * time.Microsecond
	if remaining <= 0 || remaining > s.cfg.Budget {
		remaining = s.cfg.Budget
	}
	// In transit the request consumed half an RTT of the budget.
	remaining -= s.cfg.RTT / 2
	spacing := s.cfg.retransSpacing(remaining)
	timers := make([]sim.Timer, 0, s.cfg.M+1)
	for j := 0; j < s.cfg.M; j++ {
		delay := time.Duration(j) * spacing
		timers = append(timers, s.env.Clock().After(delay, func() {
			if s.closed {
				return
			}
			pkt, still := s.history[seq]
			if !still {
				return
			}
			// The history entry is link-owned, so the retransmission flag
			// can be set in place.
			pkt.Flags |= wire.FRetrans
			s.stats.Retransmissions++
			s.tx = wire.Frame{
				Proto:    wire.LPRealTime,
				Kind:     wire.FData,
				Seq:      seq,
				SendTime: s.env.Clock().Now(),
				Packet:   pkt,
			}
			s.env.Transmit(&s.tx)
		}))
	}
	// The epoch spans the rest of the budget: later strikes for this
	// sequence are redundant with the copies already scheduled.
	epochEnd := remaining
	if epochEnd < time.Duration(s.cfg.M)*spacing {
		epochEnd = time.Duration(s.cfg.M) * spacing
	}
	timers = append(timers, s.env.Clock().After(epochEnd, func() {
		delete(s.retransEpoch, seq)
	}))
	s.retransEpoch[seq] = timers
}

// Stats implements Protocol.
func (s *Strikes) Stats() Stats { return s.stats }

// Close implements Protocol.
func (s *Strikes) Close() {
	s.closed = true
	for seq, st := range s.pending {
		for _, t := range st.timers {
			stopTimer(t)
		}
		delete(s.pending, seq)
	}
	for seq, timers := range s.retransEpoch {
		for _, t := range timers {
			stopTimer(t)
		}
		delete(s.retransEpoch, seq)
	}
	// Drop the retransmission history so a torn-down link holds no packet
	// memory.
	for seq := range s.history {
		delete(s.history, seq)
	}
	s.histOrder = nil
}

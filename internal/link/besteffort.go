package link

import "sonet/internal/wire"

// BestEffort transmits each packet exactly once with no recovery — the
// overlay analogue of plain IP forwarding, and the base link service for
// traffic whose own protocol handles (or tolerates) loss. It retains
// nothing, so it never clones: a borrowed packet goes straight into a
// scratch frame that Transmit marshals synchronously.
type BestEffort struct {
	env   Env
	stats Stats
	// tx is the reusable frame for the allocation-free send path; Transmit
	// borrows it, so reusing it across Sends is safe.
	tx wire.Frame
}

var _ Protocol = (*BestEffort)(nil)

// NewBestEffort returns a best-effort link endpoint.
func NewBestEffort(env Env) *BestEffort {
	return &BestEffort{env: env}
}

// Send implements Protocol.
func (b *BestEffort) Send(p *wire.Packet) {
	b.stats.DataSent++
	b.tx = wire.Frame{
		Proto:    wire.LPBestEffort,
		Kind:     wire.FData,
		SendTime: b.env.Clock().Now(),
		Packet:   p,
	}
	b.env.Transmit(&b.tx)
}

// HandleFrame implements Protocol.
func (b *BestEffort) HandleFrame(f *wire.Frame) {
	if f.Kind != wire.FData || f.Packet == nil {
		return
	}
	b.stats.Delivered++
	b.env.Deliver(f.Packet)
}

// Stats implements Protocol.
func (b *BestEffort) Stats() Stats { return b.stats }

// Close implements Protocol.
func (b *BestEffort) Close() {}

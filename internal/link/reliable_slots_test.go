package link

import (
	"testing"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// storedPacket captures a data packet into a private pool so the tests can
// observe the buffer's lifecycle through the pool's Recycled counter.
func storedPacket(pool *wire.BufPool, seq uint32) (*wire.Packet, *wire.Buf) {
	var p wire.Packet
	buf := wire.CapturePacket(&p, dataPacket(seq), pool)
	return &p, buf
}

// TestReliableSendStoredReleasesOnAck checks the zero-copy handoff: a
// refcounted buffer given to SendStored must be released (recycled to its
// pool) once the frame is acknowledged — and not before.
func TestReliableSendStoredReleasesOnAck(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{})
	pool := wire.NewBufPool(nil)
	pkt, buf := storedPacket(pool, 1)
	p.a.proto.(*Reliable).SendStored(pkt, buf)
	if got := pool.Stats().Recycled.Load(); got != 0 {
		t.Fatalf("buffer recycled before ack (%d bytes)", got)
	}
	sched.RunFor(time.Second)
	if len(p.b.delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(p.b.delivered))
	}
	if got := pool.Stats().Recycled.Load(); got == 0 {
		t.Fatal("ack did not release the stored buffer")
	}
}

// TestReliableSendStoredReleasesOnRetryExhaustion checks the give-up path:
// a frame that never gets acked must still release its buffer when the
// sender abandons it after MaxRetries.
func TestReliableSendStoredReleasesOnRetryExhaustion(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{MaxRetries: 3})
	p.a.drop = func(f *wire.Frame) bool { return true } // black hole
	pool := wire.NewBufPool(nil)
	pkt, buf := storedPacket(pool, 1)
	p.a.proto.(*Reliable).SendStored(pkt, buf)
	sched.RunFor(time.Minute)
	if got := p.a.proto.(*Reliable).OutstandingFrames(); got != 0 {
		t.Fatalf("%d frames still outstanding after give-up", got)
	}
	if got := pool.Stats().Recycled.Load(); got == 0 {
		t.Fatal("retry exhaustion did not release the stored buffer")
	}
}

// TestReliableSendStoredReleasesOnClose checks teardown: buffers held by
// unacked slots and the wait queue are all released on Close.
func TestReliableSendStoredReleasesOnClose(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{Window: 4})
	p.a.drop = func(f *wire.Frame) bool { return true }
	pool := wire.NewBufPool(nil)
	var want uint64
	for i := uint32(1); i <= 12; i++ { // 4 in flight + 8 queued
		pkt, buf := storedPacket(pool, i)
		want += uint64(cap(buf.B))
		p.a.proto.(*Reliable).SendStored(pkt, buf)
	}
	p.a.proto.Close()
	if got := pool.Stats().Recycled.Load(); got != want {
		t.Fatalf("close recycled %d bytes, want %d", got, want)
	}
}

// TestReliableQueueRingRecyclesSlots checks the wait-queue ring and slot
// freelist under sustained window pressure: a long send burst must not
// leave slots or queue capacity behind once everything is acked.
func TestReliableQueueRingRecyclesSlots(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{Window: 8})
	for i := uint32(1); i <= 500; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.RunFor(time.Minute)
	if len(p.b.delivered) != 500 {
		t.Fatalf("delivered %d, want 500", len(p.b.delivered))
	}
	r := p.a.proto.(*Reliable)
	if got := r.OutstandingFrames(); got != 0 {
		t.Fatalf("%d frames outstanding after full ack", got)
	}
	for i, seq := range deliveredSeqs(p.b) {
		if seq != uint32(i+1) {
			t.Fatalf("delivery order broken at %d: %d", i, seq)
		}
	}
}

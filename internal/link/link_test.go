package link

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// pipe wires two protocol endpoints through a latency/loss channel,
// marshaling every frame through the wire encoding.
type pipe struct {
	sched *sim.Scheduler
	a, b  *pipeEnd
}

type pipeEnd struct {
	sched     *sim.Scheduler
	peer      *pipeEnd
	latency   time.Duration
	drop      func(f *wire.Frame) bool
	proto     Protocol
	delivered []*wire.Packet
	sentWire  int
}

func newPipe(sched *sim.Scheduler, latency time.Duration) *pipe {
	p := &pipe{sched: sched}
	p.a = &pipeEnd{sched: sched, latency: latency}
	p.b = &pipeEnd{sched: sched, latency: latency}
	p.a.peer = p.b
	p.b.peer = p.a
	return p
}

func (e *pipeEnd) Clock() sim.Clock { return e.sched }

func (e *pipeEnd) Transmit(f *wire.Frame) {
	e.sentWire++
	buf, err := f.Marshal()
	if err != nil {
		panic(err)
	}
	if e.drop != nil && e.drop(f) {
		return
	}
	e.sched.After(e.latency, func() {
		g, _, err := wire.UnmarshalFrame(buf)
		if err != nil {
			panic(err)
		}
		if e.peer.proto != nil {
			e.peer.proto.HandleFrame(g)
		}
	})
}

func (e *pipeEnd) Deliver(p *wire.Packet) {
	e.delivered = append(e.delivered, p)
}

func dataPacket(seq uint32) *wire.Packet {
	return &wire.Packet{
		Type:    wire.PTData,
		Route:   wire.RouteLinkState,
		Src:     1,
		Dst:     2,
		FlowSeq: seq,
		Payload: []byte{byte(seq), byte(seq >> 8)},
	}
}

func deliveredSeqs(end *pipeEnd) []uint32 {
	out := make([]uint32, 0, len(end.delivered))
	for _, p := range end.delivered {
		out = append(out, p.FlowSeq)
	}
	return out
}

// --- seqWindow ---

func TestSeqWindowBasic(t *testing.T) {
	w := newSeqWindow(64)
	if w.Seen(1) {
		t.Fatal("fresh window saw seq 1")
	}
	if !w.Record(1) || !w.Record(2) {
		t.Fatal("Record of fresh seqs = false")
	}
	if w.Cum() != 2 {
		t.Fatalf("Cum = %d, want 2", w.Cum())
	}
	if w.Record(1) {
		t.Fatal("Record duplicate = true")
	}
	if !w.Record(4) {
		t.Fatal("Record(4) = false")
	}
	if w.Cum() != 2 {
		t.Fatalf("Cum = %d, want 2 (gap at 3)", w.Cum())
	}
	if w.AckBits() != 0b10 {
		t.Fatalf("AckBits = %b, want 10", w.AckBits())
	}
	miss := w.Missing(4, 10)
	if len(miss) != 1 || miss[0] != 3 {
		t.Fatalf("Missing = %v, want [3]", miss)
	}
	if !w.Record(3) {
		t.Fatal("Record(3) = false")
	}
	if w.Cum() != 4 {
		t.Fatalf("Cum = %d, want 4", w.Cum())
	}
}

func TestSeqWindowFarAheadDropped(t *testing.T) {
	w := newSeqWindow(8)
	if w.Record(100) {
		t.Fatal("Record far beyond window = true")
	}
}

// TestSeqWindowMatchesReference compares the ring implementation against a
// map-based reference over random in-window insertion orders.
func TestSeqWindowMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := newSeqWindow(32)
		ref := make(map[uint32]bool)
		refCum := uint32(0)
		for i := 0; i < 500; i++ {
			// Bias toward the valid window around the reference cum.
			seq := refCum + uint32(r.Intn(40)) + 1
			if r.Intn(4) == 0 && refCum > 0 {
				seq = uint32(r.Intn(int(refCum))) + 1
			}
			inWindow := seq > refCum && seq <= refCum+32
			wantNew := inWindow && !ref[seq] && seq > refCum
			got := w.Record(seq)
			if inWindow && !ref[seq] {
				ref[seq] = true
				for ref[refCum+1] {
					delete(ref, refCum+1)
					refCum++
				}
			}
			if got != wantNew {
				return false
			}
			if w.Cum() != refCum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- BestEffort ---

func TestBestEffortDelivers(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := newPipe(sched, 10*time.Millisecond)
	p.a.proto = NewBestEffort(p.a)
	p.b.proto = NewBestEffort(p.b)
	for i := uint32(1); i <= 10; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.Run()
	if len(p.b.delivered) != 10 {
		t.Fatalf("delivered %d, want 10", len(p.b.delivered))
	}
	st := p.a.proto.Stats()
	if st.DataSent != 10 || st.Retransmissions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBestEffortNoRecovery(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := newPipe(sched, 10*time.Millisecond)
	n := 0
	p.a.drop = func(f *wire.Frame) bool {
		n++
		return n%5 == 0 // drop every 5th frame
	}
	p.a.proto = NewBestEffort(p.a)
	p.b.proto = NewBestEffort(p.b)
	for i := uint32(1); i <= 100; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.Run()
	if len(p.b.delivered) != 80 {
		t.Fatalf("delivered %d, want 80 (no recovery)", len(p.b.delivered))
	}
}

// TestSeqWindowWraparound drives the window across the 2^32 sequence
// boundary: a long-lived link session genuinely gets there, and before the
// switch to serial-number arithmetic every post-wrap frame compared as
// "ancient", permanently black-holing the link.
func TestSeqWindowWraparound(t *testing.T) {
	w := newSeqWindow(64)
	w.cum = 0xffffffff - 5
	start := w.cum
	for i := uint32(1); i <= 20; i++ {
		seq := start + i // crosses 0xffffffff -> 0 -> 1 ...
		if w.Seen(seq) {
			t.Fatalf("fresh seq %#x already seen", seq)
		}
		if !w.Record(seq) {
			t.Fatalf("Record(%#x) = false across wrap", seq)
		}
		if w.Cum() != seq {
			t.Fatalf("Cum = %#x after recording %#x", w.Cum(), seq)
		}
	}
	// Everything at or before the edge is seen, including pre-wrap seqs.
	for _, seq := range []uint32{start, 0xffffffff, 0, 1, w.Cum()} {
		if !w.Seen(seq) {
			t.Fatalf("Seen(%#x) = false after wrap", seq)
		}
	}
	// Out-of-order across the boundary: gap at the wrap itself.
	w2 := newSeqWindow(64)
	w2.cum = 0xfffffffe
	if !w2.Record(1) { // leaves 0xffffffff and 0 missing
		t.Fatal("Record(1) across wrap = false")
	}
	if w2.Cum() != 0xfffffffe {
		t.Fatalf("Cum = %#x, want unchanged before gap fill", w2.Cum())
	}
	miss := w2.Missing(1, 10)
	if len(miss) != 2 || miss[0] != 0xffffffff || miss[1] != 0 {
		t.Fatalf("Missing across wrap = %#x, want [0xffffffff 0x0]", miss)
	}
	if !w2.Record(0xffffffff) || !w2.Record(0) {
		t.Fatal("Record of wrap-straddling gaps = false")
	}
	if w2.Cum() != 1 {
		t.Fatalf("Cum = %#x after filling wrap gap, want 1", w2.Cum())
	}
}

// TestSeqWindowWraparoundMatchesReference re-runs the map-based reference
// property test from several bases, including ones that straddle 2^32 and
// the int32 sign boundary, so serial arithmetic is exercised everywhere
// raw compares used to be.
func TestSeqWindowWraparoundMatchesReference(t *testing.T) {
	bases := []uint32{0, 0x7fffffff - 20, 0xffffff00, 0xffffffff - 15}
	for _, base := range bases {
		r := rand.New(rand.NewSource(int64(base) + 9))
		w := newSeqWindow(32)
		w.cum = base
		ref := make(map[uint64]bool)
		refCum := uint64(0) // relative to base
		for i := 0; i < 500; i++ {
			rel := refCum + uint64(r.Intn(40)) + 1
			if r.Intn(4) == 0 && refCum > 0 {
				rel = uint64(r.Intn(int(refCum))) + 1
			}
			seq := base + uint32(rel)
			inWindow := rel > refCum && rel <= refCum+32
			wantNew := inWindow && !ref[rel]
			if got := w.Record(seq); got != wantNew {
				t.Fatalf("base %#x: Record(%#x) = %v, want %v", base, seq, got, wantNew)
			}
			if inWindow && !ref[rel] {
				ref[rel] = true
				for ref[refCum+1] {
					delete(ref, refCum+1)
					refCum++
				}
			}
			if w.Cum() != base+uint32(refCum) {
				t.Fatalf("base %#x: Cum = %#x, want %#x", base, w.Cum(), base+uint32(refCum))
			}
			if seen := w.Seen(seq); seen != (rel <= refCum || ref[rel]) {
				t.Fatalf("base %#x: Seen(%#x) = %v, want %v", base, seq, seen, !seen)
			}
		}
	}
}

// TestSeqWindowMissingClampsAbsurdUpTo pins the event-loop DoS fix: a
// corrupt or hostile FAck carrying a huge upTo must scan at most the
// window capacity (anything beyond it could never have been recorded), and
// the defensive clamp is counted.
func TestSeqWindowMissingClampsAbsurdUpTo(t *testing.T) {
	w := newSeqWindow(64)
	if !w.Record(2) { // gap at 1
		t.Fatal("Record(2) = false")
	}
	before := WindowStatsSnapshot()
	miss := w.Missing(0x80000000, 1<<30)
	after := WindowStatsSnapshot()
	if after.MissingClamps != before.MissingClamps+1 {
		t.Fatalf("MissingClamps %d -> %d, want +1", before.MissingClamps, after.MissingClamps)
	}
	// Sequences 1..64 scanned, of which only 2 was seen.
	if len(miss) != 63 || miss[0] != 1 || miss[1] != 3 {
		t.Fatalf("Missing clamped scan = %d entries starting %v, want 63 starting [1 3]", len(miss), miss[:2])
	}
	// An upTo serially at or before cum yields nothing.
	if got := w.Missing(0, 10); got != nil {
		t.Fatalf("Missing(0) = %v, want nil", got)
	}
	// A sane upTo is unaffected and uncounted.
	mid := WindowStatsSnapshot()
	if got := w.Missing(4, 10); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Missing(4) = %v, want [1 3 4]", got)
	}
	if WindowStatsSnapshot().MissingClamps != mid.MissingClamps {
		t.Fatal("sane Missing counted a clamp")
	}
}

package link

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// pipe wires two protocol endpoints through a latency/loss channel,
// marshaling every frame through the wire encoding.
type pipe struct {
	sched *sim.Scheduler
	a, b  *pipeEnd
}

type pipeEnd struct {
	sched     *sim.Scheduler
	peer      *pipeEnd
	latency   time.Duration
	drop      func(f *wire.Frame) bool
	proto     Protocol
	delivered []*wire.Packet
	sentWire  int
}

func newPipe(sched *sim.Scheduler, latency time.Duration) *pipe {
	p := &pipe{sched: sched}
	p.a = &pipeEnd{sched: sched, latency: latency}
	p.b = &pipeEnd{sched: sched, latency: latency}
	p.a.peer = p.b
	p.b.peer = p.a
	return p
}

func (e *pipeEnd) Clock() sim.Clock { return e.sched }

func (e *pipeEnd) Transmit(f *wire.Frame) {
	e.sentWire++
	buf, err := f.Marshal()
	if err != nil {
		panic(err)
	}
	if e.drop != nil && e.drop(f) {
		return
	}
	e.sched.After(e.latency, func() {
		g, _, err := wire.UnmarshalFrame(buf)
		if err != nil {
			panic(err)
		}
		if e.peer.proto != nil {
			e.peer.proto.HandleFrame(g)
		}
	})
}

func (e *pipeEnd) Deliver(p *wire.Packet) {
	e.delivered = append(e.delivered, p)
}

func dataPacket(seq uint32) *wire.Packet {
	return &wire.Packet{
		Type:    wire.PTData,
		Route:   wire.RouteLinkState,
		Src:     1,
		Dst:     2,
		FlowSeq: seq,
		Payload: []byte{byte(seq), byte(seq >> 8)},
	}
}

func deliveredSeqs(end *pipeEnd) []uint32 {
	out := make([]uint32, 0, len(end.delivered))
	for _, p := range end.delivered {
		out = append(out, p.FlowSeq)
	}
	return out
}

// --- seqWindow ---

func TestSeqWindowBasic(t *testing.T) {
	w := newSeqWindow(64)
	if w.Seen(1) {
		t.Fatal("fresh window saw seq 1")
	}
	if !w.Record(1) || !w.Record(2) {
		t.Fatal("Record of fresh seqs = false")
	}
	if w.Cum() != 2 {
		t.Fatalf("Cum = %d, want 2", w.Cum())
	}
	if w.Record(1) {
		t.Fatal("Record duplicate = true")
	}
	if !w.Record(4) {
		t.Fatal("Record(4) = false")
	}
	if w.Cum() != 2 {
		t.Fatalf("Cum = %d, want 2 (gap at 3)", w.Cum())
	}
	if w.AckBits() != 0b10 {
		t.Fatalf("AckBits = %b, want 10", w.AckBits())
	}
	miss := w.Missing(4, 10)
	if len(miss) != 1 || miss[0] != 3 {
		t.Fatalf("Missing = %v, want [3]", miss)
	}
	if !w.Record(3) {
		t.Fatal("Record(3) = false")
	}
	if w.Cum() != 4 {
		t.Fatalf("Cum = %d, want 4", w.Cum())
	}
}

func TestSeqWindowFarAheadDropped(t *testing.T) {
	w := newSeqWindow(8)
	if w.Record(100) {
		t.Fatal("Record far beyond window = true")
	}
}

// TestSeqWindowMatchesReference compares the ring implementation against a
// map-based reference over random in-window insertion orders.
func TestSeqWindowMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := newSeqWindow(32)
		ref := make(map[uint32]bool)
		refCum := uint32(0)
		for i := 0; i < 500; i++ {
			// Bias toward the valid window around the reference cum.
			seq := refCum + uint32(r.Intn(40)) + 1
			if r.Intn(4) == 0 && refCum > 0 {
				seq = uint32(r.Intn(int(refCum))) + 1
			}
			inWindow := seq > refCum && seq <= refCum+32
			wantNew := inWindow && !ref[seq] && seq > refCum
			got := w.Record(seq)
			if inWindow && !ref[seq] {
				ref[seq] = true
				for ref[refCum+1] {
					delete(ref, refCum+1)
					refCum++
				}
			}
			if got != wantNew {
				return false
			}
			if w.Cum() != refCum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- BestEffort ---

func TestBestEffortDelivers(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := newPipe(sched, 10*time.Millisecond)
	p.a.proto = NewBestEffort(p.a)
	p.b.proto = NewBestEffort(p.b)
	for i := uint32(1); i <= 10; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.Run()
	if len(p.b.delivered) != 10 {
		t.Fatalf("delivered %d, want 10", len(p.b.delivered))
	}
	st := p.a.proto.Stats()
	if st.DataSent != 10 || st.Retransmissions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBestEffortNoRecovery(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := newPipe(sched, 10*time.Millisecond)
	n := 0
	p.a.drop = func(f *wire.Frame) bool {
		n++
		return n%5 == 0 // drop every 5th frame
	}
	p.a.proto = NewBestEffort(p.a)
	p.b.proto = NewBestEffort(p.b)
	for i := uint32(1); i <= 100; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.Run()
	if len(p.b.delivered) != 80 {
		t.Fatalf("delivered %d, want 80 (no recovery)", len(p.b.delivered))
	}
}

package link

import (
	"math/rand"
	"testing"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

func reliablePair(sched *sim.Scheduler, latency time.Duration, cfg ReliableConfig) *pipe {
	p := newPipe(sched, latency)
	p.a.proto = NewReliable(p.a, cfg)
	p.b.proto = NewReliable(p.b, cfg)
	return p
}

func TestReliableLosslessDelivery(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{})
	for i := uint32(1); i <= 100; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.RunFor(5 * time.Second)
	if len(p.b.delivered) != 100 {
		t.Fatalf("delivered %d, want 100", len(p.b.delivered))
	}
	st := p.a.proto.Stats()
	if st.Retransmissions != 0 {
		t.Fatalf("lossless run retransmitted %d frames", st.Retransmissions)
	}
	for i, seq := range deliveredSeqs(p.b) {
		if seq != uint32(i+1) {
			t.Fatalf("out-of-order delivery without loss at %d", i)
		}
	}
}

func TestReliableRecoversFromRandomLoss(t *testing.T) {
	sched := sim.NewScheduler(42)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{})
	r := rand.New(rand.NewSource(7))
	p.a.drop = func(*wire.Frame) bool { return r.Float64() < 0.10 }
	p.b.drop = func(*wire.Frame) bool { return r.Float64() < 0.10 }
	const n = 1000
	for i := uint32(1); i <= n; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.RunFor(60 * time.Second)
	if len(p.b.delivered) != n {
		t.Fatalf("delivered %d, want %d", len(p.b.delivered), n)
	}
	seen := make(map[uint32]bool)
	for _, seq := range deliveredSeqs(p.b) {
		if seen[seq] {
			t.Fatalf("seq %d delivered twice", seq)
		}
		seen[seq] = true
	}
	if p.a.proto.Stats().Retransmissions == 0 {
		t.Fatal("10% loss produced zero retransmissions")
	}
}

func TestReliableOutOfOrderForwarding(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{})
	dropped := false
	p.a.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FData && f.Seq == 3 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	for i := uint32(1); i <= 5; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.RunFor(2 * time.Second)
	seqs := deliveredSeqs(p.b)
	if len(seqs) != 5 {
		t.Fatalf("delivered %v, want 5 packets", seqs)
	}
	// Default config forwards out of order: 4 and 5 precede recovered 3.
	want := []uint32{1, 2, 4, 5, 3}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("delivery order = %v, want %v", seqs, want)
		}
	}
}

func TestReliableInOrderAblation(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := ReliableConfig{InOrderForwarding: true}
	p := reliablePair(sched, 10*time.Millisecond, cfg)
	dropped := false
	p.a.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FData && f.Seq == 3 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	for i := uint32(1); i <= 5; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.RunFor(2 * time.Second)
	seqs := deliveredSeqs(p.b)
	want := []uint32{1, 2, 3, 4, 5}
	if len(seqs) != 5 {
		t.Fatalf("delivered %v, want 5 packets", seqs)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("in-order ablation delivery = %v, want %v", seqs, want)
		}
	}
}

func TestReliableNackRecoveryLatency(t *testing.T) {
	// Fig. 3 mechanics on one 10 ms link: loss detected by the next
	// packet, one request (10 ms) plus one retransmission (10 ms) puts
	// recovery roughly one RTT after detection, far below the RTO.
	sched := sim.NewScheduler(1)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{})
	dropped := false
	p.a.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FData && f.Seq == 2 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	var recoveredAt time.Duration
	base := p.b.proto
	p.b.proto = &deliverHook{Protocol: base, hook: func(pk *wire.Packet) {
		if pk.FlowSeq == 2 {
			recoveredAt = sched.Now()
		}
	}}
	// Send packet 1 and 2 now, packet 3 at 20ms (revealing the gap).
	p.a.proto.Send(dataPacket(1))
	p.a.proto.Send(dataPacket(2))
	sched.After(20*time.Millisecond, func() { p.a.proto.Send(dataPacket(3)) })
	sched.RunFor(2 * time.Second)
	if recoveredAt == 0 {
		t.Fatal("packet 2 never recovered")
	}
	// Gap revealed at 30ms (packet 3 arrival); request at 30ms reaches
	// sender at 40ms; retransmission arrives at 50ms.
	if recoveredAt != 50*time.Millisecond {
		t.Fatalf("recovered at %v, want 50ms", recoveredAt)
	}
}

// deliverHook wraps a Protocol to observe deliveries.
type deliverHook struct {
	Protocol
	hook func(*wire.Packet)
}

func (d *deliverHook) HandleFrame(f *wire.Frame) {
	d.Protocol.HandleFrame(f)
	if f.Kind == wire.FData && f.Packet != nil && d.hook != nil {
		d.hook(f.Packet)
	}
}

func TestReliableRTOOnlyRecovery(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := ReliableConfig{DisableNack: true, RTOInit: 40 * time.Millisecond}
	p := reliablePair(sched, 10*time.Millisecond, cfg)
	dropped := false
	p.a.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FData && f.Seq == 1 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	p.a.proto.Send(dataPacket(1))
	sched.RunFor(5 * time.Second)
	if len(p.b.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 via RTO", len(p.b.delivered))
	}
	st := p.a.proto.Stats()
	if st.Retransmissions == 0 {
		t.Fatal("no retransmissions despite drop")
	}
	if p.b.proto.Stats().Requests != 0 {
		t.Fatal("receiver sent requests with NACK disabled")
	}
}

func TestReliableWindowBackpressureQueues(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := ReliableConfig{Window: 4, QueueLimit: 8}
	p := reliablePair(sched, 10*time.Millisecond, cfg)
	for i := uint32(1); i <= 20; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	// 4 in flight + 8 queued; 8 dropped.
	rel, ok := p.a.proto.(*Reliable)
	if !ok {
		t.Fatal("not a Reliable")
	}
	if got := rel.OutstandingFrames(); got != 12 {
		t.Fatalf("outstanding = %d, want 12", got)
	}
	if st := p.a.proto.Stats(); st.SendDropped != 8 {
		t.Fatalf("SendDropped = %d, want 8", st.SendDropped)
	}
	sched.RunFor(5 * time.Second)
	if len(p.b.delivered) != 12 {
		t.Fatalf("delivered %d, want 12", len(p.b.delivered))
	}
}

func TestReliableDuplicateSuppression(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := ReliableConfig{RTOInit: 30 * time.Millisecond}
	p := reliablePair(sched, 10*time.Millisecond, cfg)
	// Drop the first ACK so the sender RTO-retransmits a frame the
	// receiver already has.
	ackDropped := false
	p.b.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FAck && !ackDropped {
			ackDropped = true
			return true
		}
		return false
	}
	p.a.proto.Send(dataPacket(1))
	sched.RunFor(2 * time.Second)
	if len(p.b.delivered) != 1 {
		t.Fatalf("delivered %d, want exactly 1", len(p.b.delivered))
	}
	if st := p.b.proto.Stats(); st.DuplicatesDropped == 0 {
		t.Fatal("duplicate retransmission not counted")
	}
}

func TestReliableGivesUpAfterMaxRetries(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := ReliableConfig{RTOInit: 5 * time.Millisecond, MaxRetries: 3, MaxReqs: 3, ReqInterval: 5 * time.Millisecond}
	p := reliablePair(sched, 10*time.Millisecond, cfg)
	p.a.drop = func(f *wire.Frame) bool { return f.Kind == wire.FData } // sever data direction
	p.a.proto.Send(dataPacket(1))
	sched.RunFor(10 * time.Second)
	if len(p.b.delivered) != 0 {
		t.Fatal("delivered across severed link")
	}
	st := p.a.proto.Stats()
	if st.SendDropped != 1 {
		t.Fatalf("SendDropped = %d, want 1 after giving up", st.SendDropped)
	}
	if st.Retransmissions > uint64(cfg.MaxRetries) {
		t.Fatalf("retransmissions %d exceed MaxRetries %d", st.Retransmissions, cfg.MaxRetries)
	}
	if sched.Pending() != 0 {
		t.Fatalf("%d timers still pending after give-up", sched.Pending())
	}
}

func TestReliableCloseStopsTimers(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{})
	p.a.drop = func(*wire.Frame) bool { return true }
	for i := uint32(1); i <= 5; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	p.a.proto.Close()
	p.b.proto.Close()
	sched.RunFor(time.Minute)
	if got := p.a.proto.Stats().Retransmissions; got != 0 {
		t.Fatalf("closed protocol retransmitted %d frames", got)
	}
}

func TestReliableBidirectional(t *testing.T) {
	sched := sim.NewScheduler(3)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{})
	r := rand.New(rand.NewSource(9))
	p.a.drop = func(*wire.Frame) bool { return r.Float64() < 0.05 }
	p.b.drop = func(*wire.Frame) bool { return r.Float64() < 0.05 }
	for i := uint32(1); i <= 200; i++ {
		p.a.proto.Send(dataPacket(i))
		p.b.proto.Send(dataPacket(1000 + i))
	}
	sched.RunFor(30 * time.Second)
	if len(p.a.delivered) != 200 || len(p.b.delivered) != 200 {
		t.Fatalf("delivered a=%d b=%d, want 200 each", len(p.a.delivered), len(p.b.delivered))
	}
}

// TestReliableSurvivesSequenceWraparound fast-forwards a session to just
// before 2^32 and pushes traffic (with loss) across the boundary. Before
// the serial-arithmetic fix, every post-wrap data frame compared as a
// duplicate and every post-wrap ack as ancient, black-holing the link for
// good — the regression this pins.
func TestReliableSurvivesSequenceWraparound(t *testing.T) {
	sched := sim.NewScheduler(3)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{})
	const preWrap = 50
	edge := ^uint32(0) - preWrap // 2^32 - 51
	ra := p.a.proto.(*Reliable)
	rb := p.b.proto.(*Reliable)
	ra.nextSeq = edge
	rb.recvWin.cum = edge
	rb.nextDeliv = edge
	r := rand.New(rand.NewSource(11))
	p.a.drop = func(*wire.Frame) bool { return r.Float64() < 0.10 }
	p.b.drop = func(*wire.Frame) bool { return r.Float64() < 0.10 }
	const n = 200 // crosses the wrap at packet 51
	for i := uint32(1); i <= n; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.RunFor(60 * time.Second)
	if len(p.b.delivered) != n {
		t.Fatalf("delivered %d of %d across wraparound", len(p.b.delivered), n)
	}
	seen := make(map[uint32]bool)
	for _, seq := range deliveredSeqs(p.b) {
		if seen[seq] {
			t.Fatalf("flow seq %d delivered twice across wraparound", seq)
		}
		seen[seq] = true
	}
	if got := rb.recvWin.Cum(); got != edge+n {
		t.Fatalf("receiver cum = %#x, want %#x past the wrap", got, edge+n)
	}
}

// TestReliableInOrderAcrossWraparound runs the in-order forwarding mode
// across the boundary: the delivery cursor itself wraps.
func TestReliableInOrderAcrossWraparound(t *testing.T) {
	sched := sim.NewScheduler(5)
	p := reliablePair(sched, 10*time.Millisecond, ReliableConfig{InOrderForwarding: true})
	edge := ^uint32(0) - 9
	ra := p.a.proto.(*Reliable)
	rb := p.b.proto.(*Reliable)
	ra.nextSeq = edge
	rb.recvWin.cum = edge
	rb.nextDeliv = edge
	dropped := false
	p.a.drop = func(f *wire.Frame) bool {
		// Lose the first frame after the wrap once; later arrivals must be
		// held and flushed in order once it is recovered.
		if f.Kind == wire.FData && f.Seq == 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	const n = 40
	for i := uint32(1); i <= n; i++ {
		p.a.proto.Send(dataPacket(i))
	}
	sched.RunFor(30 * time.Second)
	if len(p.b.delivered) != n {
		t.Fatalf("delivered %d of %d across wraparound", len(p.b.delivered), n)
	}
	for i, seq := range deliveredSeqs(p.b) {
		if seq != uint32(i+1) {
			t.Fatalf("in-order mode delivered out of order at %d: flow seq %d", i, seq)
		}
	}
}

package link

import (
	"sync"
	"testing"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// rtPipe connects two protocol endpoints over real wall-clock time: the
// same state machines the simulator drives, on a sim.Loop executor with a
// RealtimeClock — the configuration deployed daemons run.
type rtPipe struct {
	loop    *sim.Loop
	clock   *sim.RealtimeClock
	latency time.Duration

	mu   sync.Mutex
	a, b Protocol
	drop func(*wire.Frame) bool

	deliveredB []*wire.Packet
}

func (p *rtPipe) Clock() sim.Clock { return p.clock }

// endA and endB adapt each direction to Env.
type rtEnd struct {
	p    *rtPipe
	isA  bool
	name string
}

func (e *rtEnd) Clock() sim.Clock { return e.p.clock }

func (e *rtEnd) Transmit(f *wire.Frame) {
	buf, err := f.Marshal()
	if err != nil {
		panic(err)
	}
	e.p.mu.Lock()
	drop := e.p.drop != nil && e.p.drop(f)
	e.p.mu.Unlock()
	if drop {
		return
	}
	isA := e.isA
	e.p.clock.After(e.p.latency, func() {
		g, _, err := wire.UnmarshalFrame(buf)
		if err != nil {
			panic(err)
		}
		e.p.mu.Lock()
		var peer Protocol
		if isA {
			peer = e.p.b
		} else {
			peer = e.p.a
		}
		e.p.mu.Unlock()
		if peer != nil {
			peer.HandleFrame(g)
		}
	})
}

func (e *rtEnd) Deliver(pk *wire.Packet) {
	if !e.isA {
		e.p.mu.Lock()
		e.p.deliveredB = append(e.p.deliveredB, pk)
		e.p.mu.Unlock()
	}
}

// TestStrikesOverRealtimeClock drives NM-Strikes on the wall clock: a
// dropped packet must be recovered by a real timer-driven strike, proving
// the protocol code is clock-implementation agnostic.
func TestStrikesOverRealtimeClock(t *testing.T) {
	loop := sim.NewLoop()
	defer loop.Close()
	p := &rtPipe{
		loop:    loop,
		clock:   sim.NewRealtimeClock(loop),
		latency: 2 * time.Millisecond,
	}
	cfg := StrikesConfig{N: 3, M: 2, Budget: 150 * time.Millisecond, RTT: 4 * time.Millisecond}
	endA := &rtEnd{p: p, isA: true}
	endB := &rtEnd{p: p, isA: false}
	p.a = NewStrikes(endA, cfg)
	p.b = NewStrikes(endB, cfg)
	dropped := false
	p.drop = func(f *wire.Frame) bool {
		if f.Kind == wire.FData && f.Seq == 2 && !dropped {
			dropped = true
			return true
		}
		return false
	}

	send := func(seq uint32) {
		done := make(chan struct{})
		loop.Post(func() {
			p.a.Send(dataPacket(seq))
			close(done)
		})
		<-done
	}
	send(1)
	send(2) // dropped in flight
	time.Sleep(10 * time.Millisecond)
	send(3) // reveals the gap; strikes recover seq 2

	deadline := time.Now().Add(3 * time.Second)
	for {
		p.mu.Lock()
		n := len(p.deliveredB)
		p.mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/3 over realtime clock", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	sync := make(chan Stats, 1)
	loop.Post(func() { sync <- p.b.Stats() })
	st := <-sync
	if st.Requests == 0 {
		t.Fatal("no strike requests fired on the realtime clock")
	}
}

// TestReliableOverRealtimeClock drives the Reliable Data Link on the wall
// clock through a lossy period.
func TestReliableOverRealtimeClock(t *testing.T) {
	loop := sim.NewLoop()
	defer loop.Close()
	p := &rtPipe{
		loop:    loop,
		clock:   sim.NewRealtimeClock(loop),
		latency: time.Millisecond,
	}
	cfg := ReliableConfig{RTOInit: 20 * time.Millisecond, ReqInterval: 10 * time.Millisecond}
	p.a = NewReliable(&rtEnd{p: p, isA: true}, cfg)
	p.b = NewReliable(&rtEnd{p: p, isA: false}, cfg)
	n := 0
	p.drop = func(f *wire.Frame) bool {
		if f.Kind != wire.FData {
			return false
		}
		n++
		return n%4 == 0 // drop every 4th data frame
	}
	const total = 40
	for i := uint32(1); i <= total; i++ {
		i := i
		loop.Post(func() { p.a.Send(dataPacket(i)) })
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		got := len(p.deliveredB)
		p.mu.Unlock()
		if got == total {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d over realtime clock", got, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

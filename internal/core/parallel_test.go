package core

import (
	"testing"
	"time"

	"sonet/internal/link"
	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// TestParallelOverlaysShareUnderlay runs two independent overlays — one
// tuned for reliable delivery, one for real-time video — over the same
// emulated Internet (§II-B: multiple overlays in parallel, each with its
// own variant of the overlay software).
func TestParallelOverlaysShareUnderlay(t *testing.T) {
	sched := sim.NewScheduler(808)
	net := netemu.New(sched, netemu.DefaultConfig())
	a := net.AddSite("A")
	b := net.AddSite("B")
	c := net.AddSite("C")
	isp := net.AddISP("shared-isp")
	for _, f := range [][2]netemu.SiteID{{a, b}, {b, c}, {a, c}} {
		if _, err := net.AddFiber(isp, f[0], f[1], 10*time.Millisecond, 0, netemu.Bernoulli{P: 0.02}); err != nil {
			t.Fatalf("AddFiber: %v", err)
		}
	}

	// Overlay 1: nodes 1-2-3, reliable messaging variant.
	o1 := NewOnNetwork(sched, net)
	o1.AddNode(1, a)
	o1.AddNode(2, b)
	o1.AddNode(3, c)
	if _, err := o1.AddLink(1, 2, 10*time.Millisecond, isp); err != nil {
		t.Fatal(err)
	}
	if _, err := o1.AddLink(2, 3, 10*time.Millisecond, isp); err != nil {
		t.Fatal(err)
	}
	if err := o1.Start(); err != nil {
		t.Fatalf("o1.Start: %v", err)
	}
	defer o1.Stop()

	// Overlay 2: nodes 11-12-13 in the same data centers, real-time
	// variant with aggressive strikes.
	o2 := NewOnNetwork(sched, net)
	o2.SetNodeTemplate(func(cfg *node.Config) {
		cfg.Strikes = link.StrikesConfig{N: 3, M: 2, Budget: 80 * time.Millisecond}
	})
	o2.AddNode(11, a)
	o2.AddNode(12, b)
	o2.AddNode(13, c)
	if _, err := o2.AddLink(11, 12, 10*time.Millisecond, isp); err != nil {
		t.Fatal(err)
	}
	if _, err := o2.AddLink(12, 13, 10*time.Millisecond, isp); err != nil {
		t.Fatal(err)
	}
	if err := o2.Start(); err != nil {
		t.Fatalf("o2.Start: %v", err)
	}
	defer o2.Stop()
	sched.RunFor(time.Second)

	// Reliable flow on overlay 1.
	d1, err := o1.Session(3).Connect(100)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := o1.Session(1).Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := s1.OpenFlow(session.FlowSpec{
		DstNode: 3, DstPort: 100, LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Real-time flow on overlay 2.
	d2, err := o2.Session(13).Connect(100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := o2.Session(11).Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s2.OpenFlow(session.FlowSpec{
		DstNode: 13, DstPort: 100, LinkProto: wire.LPRealTime,
		Ordered: true, Deadline: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		i := i
		sched.After(time.Duration(i)*5*time.Millisecond, func() {
			_ = f1.Send(nil)
			_ = f2.Send(nil)
		})
	}
	sched.RunFor(20 * time.Second)

	if got := d1.Stats().Received; got != n {
		t.Fatalf("overlay 1 delivered %d/%d", got, n)
	}
	if got := float64(d2.Stats().Received) / n; got < 0.99 {
		t.Fatalf("overlay 2 delivered %.3f, want >= 0.99", got)
	}
	// Isolation: nothing crossed between overlays.
	if o1.Session(3).NoClientDrops() != 0 || o2.Session(13).NoClientDrops() != 0 {
		t.Fatal("cross-overlay packets arrived at clients")
	}
	if o1.Node(2).Stats().DroppedAuth+o2.Node(12).Stats().DroppedAuth != 0 {
		t.Fatal("unexpected auth drops")
	}
}

package core

import (
	"fmt"
	"time"

	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/wire"
)

// SimpleLink describes one overlay link in a single-ISP world: the two
// overlay nodes, the designed latency, and the link's loss behaviour.
type SimpleLink struct {
	// A and B are the endpoints.
	A, B wire.NodeID
	// Latency is the link's one-way latency.
	Latency time.Duration
	// Jitter adds uniform [0, Jitter) per-packet delay.
	Jitter time.Duration
	// Loss is the link's loss model (nil for lossless).
	Loss netemu.LossModel
}

// Simple is an overlay where every node occupies its own data center and
// every overlay link rides a dedicated fiber on a dedicated provider — the
// minimal world for protocol experiments where ISP-level redundancy is not
// under study. Dedicating a provider per link pins each overlay link to
// exactly its own fiber: otherwise the emulated IP layer would route some
// overlay links over other links' shorter fiber paths, and the measured
// link latencies would diverge from the designed topology.
type Simple struct {
	*Overlay
	// ISP is the provider of the first link (kept for provider-wide
	// degradation in single-bottleneck scenarios; Simple worlds with
	// several links have one provider per link, see ISPs).
	ISP netemu.ISPID
	// ISPs maps each overlay link to its dedicated provider.
	ISPs map[wire.LinkID]netemu.ISPID
	// Fibers maps each overlay link to its underlying fiber, for failure
	// injection.
	Fibers map[wire.LinkID]netemu.FiberID
}

// BuildSimple constructs (but does not start) a Simple world. Node
// configuration can be adjusted via SetNodeTemplate or AddNodeWithConfig
// before Start.
func BuildSimple(seed uint64, links []SimpleLink) (*Simple, error) {
	o := New(seed, netemu.DefaultConfig())
	s := &Simple{
		Overlay: o,
		ISPs:    make(map[wire.LinkID]netemu.ISPID, len(links)),
		Fibers:  make(map[wire.LinkID]netemu.FiberID, len(links)),
	}
	sites := make(map[wire.NodeID]netemu.SiteID)
	siteFor := func(n wire.NodeID) netemu.SiteID {
		if st, ok := sites[n]; ok {
			return st
		}
		st := o.AddSite(fmt.Sprintf("site-%d", n))
		sites[n] = st
		o.AddNode(n, st)
		return st
	}
	for i, l := range links {
		sa, sb := siteFor(l.A), siteFor(l.B)
		isp := o.AddISP(fmt.Sprintf("isp-%d", i+1))
		if i == 0 {
			s.ISP = isp
		}
		fid, err := o.AddFiber(isp, sa, sb, l.Latency, l.Jitter, l.Loss)
		if err != nil {
			return nil, fmt.Errorf("core: simple fiber %v-%v: %w", l.A, l.B, err)
		}
		lid, err := o.AddLink(l.A, l.B, l.Latency, isp)
		if err != nil {
			return nil, fmt.Errorf("core: simple link %v-%v: %w", l.A, l.B, err)
		}
		s.ISPs[lid] = isp
		s.Fibers[lid] = fid
	}
	return s, nil
}

// Join admits a runtime joiner into a running Simple world. Each new
// link gets its own dedicated provider and fiber exactly like the
// designed links (one endpoint of every SimpleLink must be id), then the
// overlay-level Join runs the growth absorption and — when dynamic
// membership is enabled — the in-band admission handshake through
// contact.
func (s *Simple) Join(id, contact wire.NodeID, links []SimpleLink, mutate func(*node.Config)) error {
	if len(links) == 0 {
		return fmt.Errorf("core: joining node %v needs at least one link", id)
	}
	site := s.AddSite(fmt.Sprintf("site-%d", id))
	type plumbing struct {
		peer  wire.NodeID
		isp   netemu.ISPID
		fiber netemu.FiberID
	}
	jls := make([]JoinLink, 0, len(links))
	plumb := make([]plumbing, 0, len(links))
	for _, l := range links {
		peer := l.B
		if peer == id {
			peer = l.A
		} else if l.A != id {
			return fmt.Errorf("core: join link %v-%v does not involve joiner %v", l.A, l.B, id)
		}
		peerSite, ok := s.SiteOf(peer)
		if !ok {
			return fmt.Errorf("core: join peer %v has no site", peer)
		}
		isp := s.AddISP(fmt.Sprintf("isp-j%d-%d", id, peer))
		fid, err := s.AddFiber(isp, site, peerSite, l.Latency, l.Jitter, l.Loss)
		if err != nil {
			return fmt.Errorf("core: join fiber %v-%v: %w", id, peer, err)
		}
		jls = append(jls, JoinLink{To: peer, Latency: l.Latency, ISPs: []netemu.ISPID{isp}})
		plumb = append(plumb, plumbing{peer: peer, isp: isp, fiber: fid})
	}
	if err := s.Overlay.Join(id, site, contact, jls, mutate); err != nil {
		return err
	}
	// Record each new link's dedicated provider and fiber so
	// CutLink/SetLinkExtraLoss work on joined links too.
	for _, p := range plumb {
		if l, ok := s.Graph.LinkBetween(id, p.peer); ok {
			s.ISPs[l.ID] = p.isp
			s.Fibers[l.ID] = p.fiber
		}
	}
	return nil
}

// SetAllISPExtraLoss applies a provider-wide degradation to every provider
// in the Simple world (each link has its own).
func (s *Simple) SetAllISPExtraLoss(p float64) {
	for _, isp := range s.ISPs {
		s.Net.SetISPExtraLoss(isp, p)
	}
}

// SetLinkExtraLoss applies an added drop probability to the provider
// carrying one overlay link (a regional degradation knob).
func (s *Simple) SetLinkExtraLoss(a, b wire.NodeID, p float64) error {
	l, ok := s.Graph.LinkBetween(a, b)
	if !ok {
		return fmt.Errorf("core: no link %v-%v", a, b)
	}
	s.Net.SetISPExtraLoss(s.ISPs[l.ID], p)
	return nil
}

// CutLink severs the fiber under an overlay link.
func (s *Simple) CutLink(a, b wire.NodeID) error {
	l, ok := s.Graph.LinkBetween(a, b)
	if !ok {
		return fmt.Errorf("core: no link %v-%v", a, b)
	}
	s.Net.CutFiber(s.Fibers[l.ID])
	return nil
}

// RestoreLink repairs the fiber under an overlay link.
func (s *Simple) RestoreLink(a, b wire.NodeID) error {
	l, ok := s.Graph.LinkBetween(a, b)
	if !ok {
		return fmt.Errorf("core: no link %v-%v", a, b)
	}
	s.Net.RestoreFiber(s.Fibers[l.ID])
	return nil
}

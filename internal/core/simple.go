package core

import (
	"fmt"
	"time"

	"sonet/internal/netemu"
	"sonet/internal/wire"
)

// SimpleLink describes one overlay link in a single-ISP world: the two
// overlay nodes, the designed latency, and the link's loss behaviour.
type SimpleLink struct {
	// A and B are the endpoints.
	A, B wire.NodeID
	// Latency is the link's one-way latency.
	Latency time.Duration
	// Jitter adds uniform [0, Jitter) per-packet delay.
	Jitter time.Duration
	// Loss is the link's loss model (nil for lossless).
	Loss netemu.LossModel
}

// Simple is an overlay where every node occupies its own data center and
// every overlay link rides a dedicated fiber on a dedicated provider — the
// minimal world for protocol experiments where ISP-level redundancy is not
// under study. Dedicating a provider per link pins each overlay link to
// exactly its own fiber: otherwise the emulated IP layer would route some
// overlay links over other links' shorter fiber paths, and the measured
// link latencies would diverge from the designed topology.
type Simple struct {
	*Overlay
	// ISP is the provider of the first link (kept for provider-wide
	// degradation in single-bottleneck scenarios; Simple worlds with
	// several links have one provider per link, see ISPs).
	ISP netemu.ISPID
	// ISPs maps each overlay link to its dedicated provider.
	ISPs map[wire.LinkID]netemu.ISPID
	// Fibers maps each overlay link to its underlying fiber, for failure
	// injection.
	Fibers map[wire.LinkID]netemu.FiberID
}

// BuildSimple constructs (but does not start) a Simple world. Node
// configuration can be adjusted via SetNodeTemplate or AddNodeWithConfig
// before Start.
func BuildSimple(seed uint64, links []SimpleLink) (*Simple, error) {
	o := New(seed, netemu.DefaultConfig())
	s := &Simple{
		Overlay: o,
		ISPs:    make(map[wire.LinkID]netemu.ISPID, len(links)),
		Fibers:  make(map[wire.LinkID]netemu.FiberID, len(links)),
	}
	sites := make(map[wire.NodeID]netemu.SiteID)
	siteFor := func(n wire.NodeID) netemu.SiteID {
		if st, ok := sites[n]; ok {
			return st
		}
		st := o.AddSite(fmt.Sprintf("site-%d", n))
		sites[n] = st
		o.AddNode(n, st)
		return st
	}
	for i, l := range links {
		sa, sb := siteFor(l.A), siteFor(l.B)
		isp := o.AddISP(fmt.Sprintf("isp-%d", i+1))
		if i == 0 {
			s.ISP = isp
		}
		fid, err := o.AddFiber(isp, sa, sb, l.Latency, l.Jitter, l.Loss)
		if err != nil {
			return nil, fmt.Errorf("core: simple fiber %v-%v: %w", l.A, l.B, err)
		}
		lid, err := o.AddLink(l.A, l.B, l.Latency, isp)
		if err != nil {
			return nil, fmt.Errorf("core: simple link %v-%v: %w", l.A, l.B, err)
		}
		s.ISPs[lid] = isp
		s.Fibers[lid] = fid
	}
	return s, nil
}

// SetAllISPExtraLoss applies a provider-wide degradation to every provider
// in the Simple world (each link has its own).
func (s *Simple) SetAllISPExtraLoss(p float64) {
	for _, isp := range s.ISPs {
		s.Net.SetISPExtraLoss(isp, p)
	}
}

// SetLinkExtraLoss applies an added drop probability to the provider
// carrying one overlay link (a regional degradation knob).
func (s *Simple) SetLinkExtraLoss(a, b wire.NodeID, p float64) error {
	l, ok := s.Graph.LinkBetween(a, b)
	if !ok {
		return fmt.Errorf("core: no link %v-%v", a, b)
	}
	s.Net.SetISPExtraLoss(s.ISPs[l.ID], p)
	return nil
}

// CutLink severs the fiber under an overlay link.
func (s *Simple) CutLink(a, b wire.NodeID) error {
	l, ok := s.Graph.LinkBetween(a, b)
	if !ok {
		return fmt.Errorf("core: no link %v-%v", a, b)
	}
	s.Net.CutFiber(s.Fibers[l.ID])
	return nil
}

// RestoreLink repairs the fiber under an overlay link.
func (s *Simple) RestoreLink(a, b wire.NodeID) error {
	l, ok := s.Graph.LinkBetween(a, b)
	if !ok {
		return fmt.Errorf("core: no link %v-%v", a, b)
	}
	s.Net.RestoreFiber(s.Fibers[l.ID])
	return nil
}

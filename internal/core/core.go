// Package core assembles complete structured overlay networks over the
// emulated multi-ISP underlay: the paper's primary contribution as a
// running system (Fig. 1 resilient network architecture + Fig. 2 node
// software architecture), driven deterministically in virtual time.
//
// A typical experiment builds sites, ISP fiber graphs, overlay nodes, and
// multihomed overlay links; starts the overlay; connects clients through
// each node's session manager; and injects failures while measuring
// delivery.
package core

import (
	"fmt"
	"time"

	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/sim"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// Overlay is a structured overlay network running over an emulated
// underlay in deterministic virtual time.
type Overlay struct {
	// Sched is the discrete-event scheduler driving the world.
	Sched *sim.Scheduler
	// Net is the emulated underlay.
	Net *netemu.Network
	// Graph is the designed overlay topology.
	Graph *topology.Graph

	nodeTemplate func(*node.Config)
	nodes        map[wire.NodeID]*node.Node
	sessions     map[wire.NodeID]*session.Manager
	sites        map[wire.NodeID]netemu.SiteID
	linkISPs     map[wire.LinkID][]netemu.ISPID
	pendingCfg   map[wire.NodeID]func(*node.Config)
	started      bool
}

// New returns an empty overlay world with the given determinism seed.
func New(seed uint64, cfg netemu.Config) *Overlay {
	sched := sim.NewScheduler(seed)
	return NewOnNetwork(sched, netemu.New(sched, cfg))
}

// NewOnNetwork returns an overlay sharing an existing scheduler and
// underlay. Several overlays can run in parallel over the same emulated
// Internet (§II-B: "multiple overlays can even be run in parallel, with
// each overlay potentially using a different variant of the overlay
// software"), provided their node IDs are disjoint — overlay nodes are
// addressed by ID on the shared underlay.
func NewOnNetwork(sched *sim.Scheduler, net *netemu.Network) *Overlay {
	return &Overlay{
		Sched:      sched,
		Net:        net,
		Graph:      topology.NewGraph(),
		nodes:      make(map[wire.NodeID]*node.Node),
		sessions:   make(map[wire.NodeID]*session.Manager),
		sites:      make(map[wire.NodeID]netemu.SiteID),
		linkISPs:   make(map[wire.LinkID][]netemu.ISPID),
		pendingCfg: make(map[wire.NodeID]func(*node.Config)),
	}
}

// SetNodeTemplate installs a configuration hook applied to every node
// created afterwards (protocol defaults, keyrings, …).
func (o *Overlay) SetNodeTemplate(fn func(*node.Config)) { o.nodeTemplate = fn }

// AddSite registers a data center.
func (o *Overlay) AddSite(name string) netemu.SiteID { return o.Net.AddSite(name) }

// AddISP registers a provider backbone.
func (o *Overlay) AddISP(name string) netemu.ISPID { return o.Net.AddISP(name) }

// AddFiber lays a fiber span within one provider's backbone.
func (o *Overlay) AddFiber(isp netemu.ISPID, a, b netemu.SiteID, latency, jitter time.Duration, loss netemu.LossModel) (netemu.FiberID, error) {
	return o.Net.AddFiber(isp, a, b, latency, jitter, loss)
}

// AddNode places an overlay node in a site.
func (o *Overlay) AddNode(id wire.NodeID, at netemu.SiteID) {
	o.AddNodeWithConfig(id, at, nil)
}

// AddNodeWithConfig places an overlay node in a site with a per-node
// configuration hook (compromise behaviour, protocol overrides).
func (o *Overlay) AddNodeWithConfig(id wire.NodeID, at netemu.SiteID, mutate func(*node.Config)) {
	o.Graph.AddNode(id)
	o.sites[id] = at
	if mutate != nil {
		o.pendingCfg[id] = mutate
	}
}

// AddLink creates an overlay link between two nodes with the given
// designed latency, served by the listed providers in failover order
// (§II-A: each overlay link can use any combination of the available
// providers).
func (o *Overlay) AddLink(a, b wire.NodeID, latency time.Duration, isps ...netemu.ISPID) (wire.LinkID, error) {
	if len(isps) == 0 {
		return 0, fmt.Errorf("core: link %v-%v needs at least one ISP", a, b)
	}
	id, err := o.Graph.AddLink(a, b, latency)
	if err != nil {
		return 0, err
	}
	o.linkISPs[id] = append([]netemu.ISPID(nil), isps...)
	return id, nil
}

// Start instantiates and starts every overlay node. The topology is
// frozen afterwards.
func (o *Overlay) Start() error {
	if o.started {
		return fmt.Errorf("core: already started")
	}
	o.started = true
	for _, id := range o.Graph.Nodes() {
		if err := o.buildNode(id); err != nil {
			return err
		}
	}
	for _, id := range o.Graph.Nodes() {
		o.nodes[id].Start()
	}
	return nil
}

// buildNode instantiates one node plus its session manager and attaches it
// to the underlay (without starting it).
func (o *Overlay) buildNode(id wire.NodeID) error {
	cfg := node.Config{
		ID:       id,
		Clock:    o.Sched,
		Underlay: &underlayPort{o: o, self: id},
		Graph:    o.Graph,
	}
	if o.nodeTemplate != nil {
		o.nodeTemplate(&cfg)
	}
	if mutate, ok := o.pendingCfg[id]; ok {
		mutate(&cfg)
	}
	n, err := node.New(cfg)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	o.nodes[id] = n
	o.sessions[id] = session.NewManager(n)
	site, ok := o.sites[id]
	if !ok {
		return fmt.Errorf("core: node %v has no site", id)
	}
	if err := o.Net.AttachNode(id, site, n.HandleUnderlay); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// JoinLink declares one overlay link a runtime joiner establishes to an
// existing member.
type JoinLink struct {
	// To is the existing member at the far end.
	To wire.NodeID
	// Latency is the designed one-way latency of the link.
	Latency time.Duration
	// ISPs lists the providers serving the link in failover order.
	ISPs []netemu.ISPID
}

// Join admits a new node into the running overlay: the designed topology
// gains the node and its links, every running node absorbs the growth
// (views grow with journaled entries; nodes incident to new links begin
// hello probing and re-announce their link states), and the joiner is
// built, attached to the underlay at its site, and started. When dynamic
// membership is enabled and contact is nonzero, the joiner then runs the
// in-band admission handshake through the contact node — which must be at
// the far end of one of its links — retrying until admitted.
//
// The site and the fibers serving the links' ISPs must already exist; the
// configuration hook (optional) adjusts the joiner's node config the same
// way AddNodeWithConfig would have.
func (o *Overlay) Join(id wire.NodeID, at netemu.SiteID, contact wire.NodeID, links []JoinLink, mutate func(*node.Config)) error {
	if !o.started {
		return fmt.Errorf("core: not started")
	}
	if _, ok := o.nodes[id]; ok {
		return fmt.Errorf("core: node %v already running", id)
	}
	if len(links) == 0 {
		return fmt.Errorf("core: joining node %v needs at least one link", id)
	}
	o.Graph.AddNode(id)
	o.sites[id] = at
	if mutate != nil {
		o.pendingCfg[id] = mutate
	}
	for _, jl := range links {
		if _, err := o.AddLink(id, jl.To, jl.Latency, jl.ISPs...); err != nil {
			return err
		}
	}
	// Running nodes absorb the graph growth in deterministic (insertion)
	// order — the incident peers flood re-announcements, so ordering by
	// map iteration would break seeded reproducibility.
	for _, nid := range o.Graph.Nodes() {
		if n, ok := o.nodes[nid]; ok {
			n.SyncTopology()
		}
	}
	if err := o.buildNode(id); err != nil {
		return err
	}
	o.nodes[id].Start()
	if m := o.nodes[id].Membership(); m != nil && contact != 0 {
		m.Join(contact)
	}
	return nil
}

// Leave departs a running node gracefully: it announces its departure
// (directory record + full LSA withdrawal), then stops and closes its
// session manager. The announcement floods are already in flight when the
// node stops, so survivors converge without it. The node's slot remains:
// RestartNode (plus a membership re-join) brings it back.
func (o *Overlay) Leave(id wire.NodeID) error {
	n, ok := o.nodes[id]
	if !ok {
		return fmt.Errorf("core: no node %v", id)
	}
	n.Leave()
	n.Stop()
	if s := o.sessions[id]; s != nil {
		s.Close()
	}
	return nil
}

// RestartNode crash-restarts a node with total state loss: the old node
// and its session manager are stopped and discarded, and a brand-new
// incarnation (fresh link-state database, sequence counters, group
// membership, flow state) is built and started in its place. Node and
// Session return the new incarnation afterwards; clients of the old one
// are closed and must reconnect.
func (o *Overlay) RestartNode(id wire.NodeID) error {
	if !o.started {
		return fmt.Errorf("core: not started")
	}
	old, ok := o.nodes[id]
	if !ok {
		return fmt.Errorf("core: no node %v", id)
	}
	old.Stop()
	if s := o.sessions[id]; s != nil {
		s.Close()
	}
	if err := o.buildNode(id); err != nil {
		return err
	}
	o.nodes[id].Start()
	return nil
}

// SiteOf returns the site a node was placed in.
func (o *Overlay) SiteOf(id wire.NodeID) (netemu.SiteID, bool) {
	site, ok := o.sites[id]
	return site, ok
}

// Stop quiesces every node.
func (o *Overlay) Stop() {
	for _, n := range o.nodes {
		n.Stop()
	}
}

// Node returns an overlay node by ID.
func (o *Overlay) Node(id wire.NodeID) *node.Node { return o.nodes[id] }

// Session returns a node's session manager.
func (o *Overlay) Session(id wire.NodeID) *session.Manager { return o.sessions[id] }

// RunFor advances virtual time.
func (o *Overlay) RunFor(d time.Duration) { o.Sched.RunFor(d) }

// Now returns the current virtual time.
func (o *Overlay) Now() time.Duration { return o.Sched.Now() }

// Settle runs the overlay long enough for hellos, link-state floods, and
// group floods to converge (a convenience for tests and experiments).
func (o *Overlay) Settle() { o.RunFor(time.Second) }

// underlayPort adapts the emulated network to node.Underlay for one node,
// translating (neighbor, path) to the link's ISP choice.
type underlayPort struct {
	o    *Overlay
	self wire.NodeID
}

func (p *underlayPort) Send(neighbor wire.NodeID, path uint8, data []byte) {
	l, ok := p.o.Graph.LinkBetween(p.self, neighbor)
	if !ok {
		return
	}
	isps := p.o.linkISPs[l.ID]
	if len(isps) == 0 {
		return
	}
	isp := isps[int(path)%len(isps)]
	p.o.Net.Send(p.self, neighbor, isp, data)
}

func (p *underlayPort) PathCount(neighbor wire.NodeID) int {
	l, ok := p.o.Graph.LinkBetween(p.self, neighbor)
	if !ok {
		return 1
	}
	if n := len(p.o.linkISPs[l.ID]); n > 0 {
		return n
	}
	return 1
}

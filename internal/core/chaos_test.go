package core

import (
	"math/rand/v2"
	"testing"
	"time"

	"sonet/internal/netemu"
	"sonet/internal/session"
	"sonet/internal/wire"
)

// TestChaosRandomOverlayUnderChurn stress-tests the whole stack: a random
// 20-node overlay with lossy links carries reliable, real-time, multicast,
// and flooded flows while links are cut and restored at random. Invariants
// checked: no panics or stalls, reliable flows deliver everything in order
// whenever the destination stayed reachable, real-time flows never deliver
// late, and duplicate suppression holds for redundant routing.
func TestChaosRandomOverlayUnderChurn(t *testing.T) {
	const nodes = 20
	r := rand.New(rand.NewPCG(404, 2017))

	// Random connected graph: spanning tree + extra chords.
	var links []SimpleLink
	addLink := func(a, b wire.NodeID) {
		links = append(links, SimpleLink{
			A: a, B: b,
			Latency: time.Duration(4+r.IntN(12)) * time.Millisecond,
			Loss:    netemu.Bernoulli{P: 0.02},
		})
	}
	for i := 2; i <= nodes; i++ {
		addLink(wire.NodeID(1+r.IntN(i-1)), wire.NodeID(i))
	}
	have := make(map[[2]wire.NodeID]bool, len(links))
	for _, l := range links {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		have[[2]wire.NodeID{a, b}] = true
	}
	for extra := 0; extra < nodes; {
		a := wire.NodeID(1 + r.IntN(nodes))
		b := wire.NodeID(1 + r.IntN(nodes))
		if a == b {
			continue
		}
		key := [2]wire.NodeID{min(a, b), max(a, b)}
		if have[key] {
			extra++
			continue
		}
		have[key] = true
		addLink(a, b)
		extra++
	}

	s, err := BuildSimple(505, links)
	if err != nil {
		t.Fatalf("BuildSimple: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	s.Settle()

	// Reliable flow 1→20.
	relDst, err := s.Session(20).Connect(100)
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := uint32(0)
	relDst.OnDeliver(func(d session.Delivery) {
		if d.Seq != lastSeq+1 {
			t.Errorf("reliable flow out of order: %d after %d", d.Seq, lastSeq)
		}
		lastSeq = d.Seq
	})
	relSrc, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	relFlow, err := relSrc.OpenFlow(session.FlowSpec{
		DstNode: 20, DstPort: 100,
		LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Real-time flow 2→19 with a 150 ms deadline.
	rtDst, err := s.Session(19).Connect(100)
	if err != nil {
		t.Fatal(err)
	}
	rtDst.OnDeliver(func(d session.Delivery) {
		if d.Latency > 150*time.Millisecond {
			t.Errorf("real-time delivery %v past deadline", d.Latency)
		}
	})
	rtSrc, err := s.Session(2).Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	rtFlow, err := rtSrc.OpenFlow(session.FlowSpec{
		DstNode: 19, DstPort: 100,
		LinkProto: wire.LPRealTime, Deadline: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Multicast group with four members; flooded control flow 3→18.
	const grp wire.GroupID = 7000
	mcTotal := 0
	for _, m := range []wire.NodeID{5, 10, 15, 18} {
		c, err := s.Session(m).Connect(200)
		if err != nil {
			t.Fatal(err)
		}
		c.Join(grp)
		c.OnDeliver(func(session.Delivery) { mcTotal++ })
	}
	mcSrc, err := s.Session(3).Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	// Per-link real-time recovery keeps the multicast stream healthy over
	// the 2% lossy links.
	mcFlow, err := mcSrc.OpenFlow(session.FlowSpec{
		Group: grp, DstPort: 200, LinkProto: wire.LPRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	floodDst, err := s.Session(18).Connect(300)
	if err != nil {
		t.Fatal(err)
	}
	floodGot := 0
	floodDst.OnDeliver(func(session.Delivery) { floodGot++ })
	floodSrc, err := s.Session(3).Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	floodFlow, err := floodSrc.OpenFlow(session.FlowSpec{
		DstNode: 18, DstPort: 300, Flood: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Settle()

	// Traffic: 100 pkt/s on each flow for 30 s.
	relSent, rtSent, mcSent, floodSent := 0, 0, 0, 0
	stop := false
	var tick func()
	tick = func() {
		if stop {
			return
		}
		if err := relFlow.Send(nil); err == nil {
			relSent++
		}
		if err := rtFlow.Send(nil); err == nil {
			rtSent++
		}
		if err := mcFlow.Send(nil); err == nil {
			mcSent++
		}
		if err := floodFlow.Send(nil); err == nil {
			floodSent++
		}
		s.Sched.After(10*time.Millisecond, tick)
	}
	s.Sched.After(0, tick)

	// Churn: every 2 s cut a random chord and restore a previously cut
	// one. Never cut a link whose loss would partition (we only cut
	// chords beyond the spanning tree, so connectivity survives).
	chords := links[nodes-1:]
	var cut []SimpleLink
	churn := 0
	var churnTick func()
	churnTick = func() {
		if stop {
			return
		}
		churn++
		if len(cut) > 0 && r.IntN(2) == 0 {
			l := cut[0]
			cut = cut[1:]
			_ = s.RestoreLink(l.A, l.B)
		} else if len(chords) > 0 {
			i := r.IntN(len(chords))
			l := chords[i]
			chords = append(chords[:i], chords[i+1:]...)
			cut = append(cut, l)
			_ = s.CutLink(l.A, l.B)
		}
		s.Sched.After(2*time.Second, churnTick)
	}
	s.Sched.After(time.Second, churnTick)

	s.RunFor(30 * time.Second)
	stop = true
	s.RunFor(20 * time.Second) // drain recoveries

	if churn < 10 {
		t.Fatalf("churn events = %d, want >= 10", churn)
	}
	// Reliable flow: complete in-order delivery (spanning tree survived).
	if int(lastSeq) != relSent {
		t.Fatalf("reliable flow delivered %d/%d", lastSeq, relSent)
	}
	// Real-time: high on-time delivery; late deliveries already failed
	// the per-delivery assertion.
	st := rtDst.Stats()
	if ratio := float64(st.Received) / float64(rtSent); ratio < 0.95 {
		t.Fatalf("real-time delivered %.3f, want >= 0.95", ratio)
	}
	// Multicast: most deliveries arrive despite churn. Each fiber cut
	// blinds the tree for one hello-detection window (~300 ms) before the
	// overlay reroutes, and packets already committed to a removed tree
	// edge are gone — with ~15 cuts against 4 members, 80%+ is the
	// structural expectation, not a bug threshold.
	if ratio := float64(mcTotal) / float64(4*mcSent); ratio < 0.80 {
		t.Fatalf("multicast delivered %.3f of expected", ratio)
	}
	// Flooding: exactly-once semantics via dedup; near-complete delivery.
	if floodGot > floodSent {
		t.Fatalf("flood delivered %d > sent %d (dedup broken)", floodGot, floodSent)
	}
	if ratio := float64(floodGot) / float64(floodSent); ratio < 0.95 {
		t.Fatalf("flood delivered %.3f, want >= 0.95", ratio)
	}
}

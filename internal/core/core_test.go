package core

import (
	"testing"
	"time"

	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// diamondLinks is the canonical 4-node diamond with a slow chord.
func diamondLinks(loss netemu.LossModel) []SimpleLink {
	return []SimpleLink{
		{A: 1, B: 2, Latency: 10 * time.Millisecond, Loss: loss},
		{A: 2, B: 4, Latency: 10 * time.Millisecond, Loss: loss},
		{A: 1, B: 3, Latency: 12 * time.Millisecond, Loss: loss},
		{A: 3, B: 4, Latency: 12 * time.Millisecond, Loss: loss},
		{A: 1, B: 4, Latency: 50 * time.Millisecond, Loss: loss},
	}
}

func startSimple(t *testing.T, seed uint64, links []SimpleLink, mutate func(*node.Config)) *Simple {
	t.Helper()
	s, err := BuildSimple(seed, links)
	if err != nil {
		t.Fatalf("BuildSimple: %v", err)
	}
	if mutate != nil {
		s.SetNodeTemplate(mutate)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.Settle()
	return s
}

func TestUnicastReliableOrderedOverLossyPath(t *testing.T) {
	s := startSimple(t, 1, diamondLinks(netemu.Bernoulli{P: 0.05}), nil)
	defer s.Stop()
	dst, err := s.Session(4).Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: 4, DstPort: 100,
		LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		i := i
		s.Sched.After(time.Duration(i)*5*time.Millisecond, func() {
			if err := flow.Send([]byte{byte(i)}); err != nil {
				t.Errorf("Send: %v", err)
			}
		})
	}
	s.RunFor(30 * time.Second)
	got := dst.Deliveries()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d (reliable links over 5%% loss)", len(got), n)
	}
	for i, d := range got {
		if d.Seq != uint32(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, d.Seq)
		}
	}
	if dst.Stats().Received != n {
		t.Fatalf("stats.Received = %d", dst.Stats().Received)
	}
}

func TestSubSecondRerouteOnFiberCut(t *testing.T) {
	s := startSimple(t, 2, diamondLinks(nil), nil)
	defer s.Stop()
	dst, err := s.Session(4).Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	var deliveredAt []time.Duration
	dst.OnDeliver(func(d session.Delivery) {
		deliveredAt = append(deliveredAt, s.Now())
	})
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{DstNode: 4, DstPort: 100, LinkProto: wire.LPBestEffort})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	// 100 pkt/s for 10 s; fiber under link 1-2 cut at t=3s.
	stop := false
	var tick func()
	tick = func() {
		if stop {
			return
		}
		if err := flow.Send([]byte("v")); err != nil {
			t.Errorf("Send: %v", err)
		}
		s.Sched.After(10*time.Millisecond, tick)
	}
	s.Sched.After(0, tick)
	var cutAt time.Duration
	s.Sched.After(3*time.Second, func() {
		cutAt = s.Now()
		if err := s.CutLink(1, 2); err != nil {
			t.Errorf("CutLink: %v", err)
		}
	})
	s.RunFor(10 * time.Second)
	stop = true
	// Find the outage: largest delivery gap after the cut.
	var worst time.Duration
	for i := 1; i < len(deliveredAt); i++ {
		if deliveredAt[i] <= cutAt || deliveredAt[i-1] <= cutAt {
			continue
		}
		if gap := deliveredAt[i] - deliveredAt[i-1]; gap > worst {
			worst = gap
		}
	}
	if worst == 0 {
		t.Fatal("no deliveries after cut")
	}
	// Sub-second rerouting (§II-A): hello detection ≈300 ms plus LSA
	// propagation, far below netemu's 40 s BGP convergence.
	if worst > time.Second {
		t.Fatalf("outage %v, want sub-second reroute", worst)
	}
	// Traffic keeps flowing on the detour for the rest of the run.
	last := deliveredAt[len(deliveredAt)-1]
	if last < 9*time.Second {
		t.Fatalf("stream died at %v", last)
	}
}

func TestMulticastFlowDeliversToMembers(t *testing.T) {
	s := startSimple(t, 3, diamondLinks(nil), nil)
	defer s.Stop()
	const g wire.GroupID = 77
	c2, err := s.Session(2).Connect(500)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c2.Join(g)
	c4, err := s.Session(4).Connect(500)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c4.Join(g)
	c3, err := s.Session(3).Connect(500)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	s.Settle()
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{Group: g, DstPort: 500, LinkProto: wire.LPBestEffort})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := flow.Send([]byte("m")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	s.RunFor(time.Second)
	if got := len(c2.Deliveries()); got != 10 {
		t.Fatalf("member 2 got %d/10", got)
	}
	if got := len(c4.Deliveries()); got != 10 {
		t.Fatalf("member 4 got %d/10", got)
	}
	if got := len(c3.Deliveries()); got != 0 {
		t.Fatalf("non-member 3 got %d", got)
	}
	// Leaving stops delivery.
	c4.Leave(g)
	s.Settle()
	if err := flow.Send([]byte("m")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunFor(time.Second)
	if got := len(c4.Deliveries()); got != 0 {
		t.Fatalf("left member still got %d", got)
	}
	if got := len(c2.Deliveries()); got != 1 {
		t.Fatalf("remaining member got %d/1", got)
	}
}

func TestAnycastFlowPicksNearest(t *testing.T) {
	s := startSimple(t, 4, diamondLinks(nil), nil)
	defer s.Stop()
	const g wire.GroupID = 88
	c2, err := s.Session(2).Connect(600)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c2.Join(g)
	c3, err := s.Session(3).Connect(600)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	c3.Join(g)
	s.Settle()
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{Group: g, Anycast: true, DstPort: 600})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	if err := flow.Send([]byte("a")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunFor(time.Second)
	if got := len(c2.Deliveries()); got != 1 {
		t.Fatalf("nearest member got %d/1", got)
	}
	if got := len(c3.Deliveries()); got != 0 {
		t.Fatalf("farther member got %d/0", got)
	}
}

func TestDisjointPathsSurviveCompromise(t *testing.T) {
	s, err := BuildSimple(5, diamondLinks(nil))
	if err != nil {
		t.Fatalf("BuildSimple: %v", err)
	}
	// Node 2 is compromised and blackholes data.
	s.pendingCfg[2] = func(cfg *node.Config) {
		cfg.Compromised = node.Compromise{DropData: true}
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	s.Settle()
	dst, err := s.Session(4).Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// Single shortest path dies in the blackhole.
	single, err := src.OpenFlow(session.FlowSpec{DstNode: 4, DstPort: 100})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	if err := single.Send([]byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunFor(time.Second)
	if got := len(dst.Deliveries()); got != 0 {
		t.Fatalf("single-path delivery through blackhole: %d", got)
	}
	// Two node-disjoint paths tolerate one compromised node (§IV-B).
	disjoint, err := src.OpenFlow(session.FlowSpec{DstNode: 4, DstPort: 100, DisjointK: 2})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	if err := disjoint.Send([]byte("y")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunFor(time.Second)
	if got := len(dst.Deliveries()); got != 1 {
		t.Fatalf("disjoint-path delivery = %d, want 1", got)
	}
}

func TestDissemGraphFlow(t *testing.T) {
	s := startSimple(t, 6, diamondLinks(nil), nil)
	defer s.Stop()
	dst, err := s.Session(4).Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: 4, DstPort: 100,
		Dissem: topology.ProblemSource,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	if err := flow.Send([]byte("d")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunFor(time.Second)
	if got := len(dst.Deliveries()); got != 1 {
		t.Fatalf("delivered %d, want 1 (dedup of dissemination copies)", got)
	}
	if s.Node(4).Stats().Duplicates == 0 {
		t.Fatal("dissemination graph produced no redundant copies")
	}
}

func TestUnorderedDeadlineDiscardsLate(t *testing.T) {
	// Path latency 20 ms but deadline 15 ms: every packet is late.
	s := startSimple(t, 7, diamondLinks(nil), nil)
	defer s.Stop()
	dst, err := s.Session(4).Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: 4, DstPort: 100, Deadline: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := flow.Send([]byte("late")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	s.RunFor(time.Second)
	if got := len(dst.Deliveries()); got != 0 {
		t.Fatalf("late packets delivered: %d", got)
	}
	if dst.Stats().Late != 5 {
		t.Fatalf("Late = %d, want 5", dst.Stats().Late)
	}
}

func TestOrderedDeadlineFlushesGaps(t *testing.T) {
	// Best-effort ordered flow over a lossy link: gaps never fill, so the
	// hold-back buffer must flush at each packet's deadline and delivered
	// sequences stay monotonic.
	links := []SimpleLink{{A: 1, B: 2, Latency: 10 * time.Millisecond, Loss: netemu.Bernoulli{P: 0.25}}}
	s := startSimple(t, 8, links, nil)
	defer s.Stop()
	dst, err := s.Session(2).Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: 2, DstPort: 100,
		Ordered: true, Deadline: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		i := i
		s.Sched.After(time.Duration(i)*5*time.Millisecond, func() {
			if err := flow.Send([]byte("v")); err != nil {
				t.Errorf("Send: %v", err)
			}
		})
	}
	s.RunFor(30 * time.Second)
	got := dst.Deliveries()
	if len(got) < n/2 || len(got) >= n {
		t.Fatalf("delivered %d of %d, want lossy subset", len(got), n)
	}
	last := uint32(0)
	for _, d := range got {
		if d.Seq <= last {
			t.Fatalf("non-monotonic delivery: %d after %d", d.Seq, last)
		}
		last = d.Seq
		if d.Latency > 101*time.Millisecond {
			t.Fatalf("held packet delivered %v after origin, deadline 100ms", d.Latency)
		}
	}
}

func TestMultihomedLinkSurvivesISPBrownOut(t *testing.T) {
	// Two ISPs serve the single overlay link; ISP 1 dies completely.
	o := New(9, netemu.DefaultConfig())
	siteA := o.AddSite("A")
	siteB := o.AddSite("B")
	isp1 := o.AddISP("isp-1")
	isp2 := o.AddISP("isp-2")
	if _, err := o.AddFiber(isp1, siteA, siteB, 10*time.Millisecond, 0, nil); err != nil {
		t.Fatalf("AddFiber: %v", err)
	}
	if _, err := o.AddFiber(isp2, siteA, siteB, 11*time.Millisecond, 0, nil); err != nil {
		t.Fatalf("AddFiber: %v", err)
	}
	o.AddNode(1, siteA)
	o.AddNode(2, siteB)
	if _, err := o.AddLink(1, 2, 10*time.Millisecond, isp1, isp2); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if err := o.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer o.Stop()
	o.Settle()
	// Total ISP-1 outage: all its traffic dies.
	o.Net.SetISPExtraLoss(isp1, 1.0)
	o.RunFor(3 * time.Second)
	// The link must stay up via ISP 2 (hello failover), no down event.
	if !o.Node(1).LinkStateManager().NeighborUp(2) {
		t.Fatal("multihomed link declared down despite healthy second ISP")
	}
	if o.Node(1).LinkStateManager().Stats().Failovers == 0 {
		t.Fatal("no ISP failover recorded")
	}
	// Traffic still flows.
	dst, err := o.Session(2).Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src, err := o.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{DstNode: 2, DstPort: 100})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	if err := flow.Send([]byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	o.RunFor(time.Second)
	if got := len(dst.Deliveries()); got != 1 {
		t.Fatalf("delivered %d over failover ISP, want 1", got)
	}
}

func TestPortAllocationAndConflicts(t *testing.T) {
	s := startSimple(t, 10, diamondLinks(nil), nil)
	defer s.Stop()
	if _, err := s.Session(1).Connect(100); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := s.Session(1).Connect(100); err == nil {
		t.Fatal("duplicate port accepted")
	}
	e1, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	e2, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if e1.Port() == e2.Port() {
		t.Fatal("ephemeral ports collide")
	}
	e1.Close()
	if _, err := s.Session(1).Connect(e1.Port()); err != nil {
		t.Fatalf("Connect to released port: %v", err)
	}
}

func TestFlowSpecValidation(t *testing.T) {
	s := startSimple(t, 11, diamondLinks(nil), nil)
	defer s.Stop()
	c, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := c.OpenFlow(session.FlowSpec{}); err == nil {
		t.Fatal("flow without destination accepted")
	}
	if _, err := c.OpenFlow(session.FlowSpec{DstNode: 2, Anycast: true}); err == nil {
		t.Fatal("anycast flow without group accepted")
	}
}

func TestGroupStateResyncAfterPartition(t *testing.T) {
	s, err := BuildSimple(77, []SimpleLink{
		{A: 1, B: 2, Latency: 10 * time.Millisecond},
		{A: 2, B: 3, Latency: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("BuildSimple: %v", err)
	}
	// Group refresh effectively off: only link-recovery resync can carry
	// membership across a healed partition.
	s.SetNodeTemplate(func(cfg *node.Config) {
		cfg.GroupRefresh = 10 * time.Minute
	})
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	s.Settle()

	// Partition node 1, then have node 3 join a group.
	if err := s.CutLink(1, 2); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * time.Second)
	c3, err := s.Session(3).Connect(100)
	if err != nil {
		t.Fatal(err)
	}
	c3.Join(555)
	s.RunFor(2 * time.Second)
	if got := s.Node(1).Groups().Members(555); len(got) != 0 {
		t.Fatalf("premise: partitioned node 1 sees members %v", got)
	}

	// Heal: membership must arrive via resync, not refresh.
	if err := s.RestoreLink(1, 2); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second) // restore convergence (5s) + detection
	got := s.Node(1).Groups().Members(555)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("node 1 sees members %v after heal, want [3]", got)
	}
	// And traffic flows: multicast from 1 reaches 3.
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{Group: 555, DstPort: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := flow.Send([]byte("post-heal")); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	if got := len(c3.Deliveries()); got != 1 {
		t.Fatalf("delivered %d post-heal, want 1", got)
	}
}

func TestOverlayBuildErrors(t *testing.T) {
	o := New(1, netemu.Config{})
	if _, err := o.AddLink(1, 2, time.Millisecond); err == nil {
		t.Fatal("link with no ISPs accepted")
	}
	isp := o.AddISP("x")
	a := o.AddSite("A")
	o.AddNode(1, a)
	o.AddNode(2, a)
	if _, err := o.AddLink(1, 1, time.Millisecond, isp); err == nil {
		t.Fatal("self link accepted")
	}
	if _, err := o.AddLink(1, 2, time.Millisecond, isp); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if err := o.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer o.Stop()
	if err := o.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestSimpleLinkHelpersErrors(t *testing.T) {
	s, err := BuildSimple(1, []SimpleLink{{A: 1, B: 2, Latency: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CutLink(1, 9); err == nil {
		t.Fatal("cut of unknown link accepted")
	}
	if err := s.RestoreLink(1, 9); err == nil {
		t.Fatal("restore of unknown link accepted")
	}
	if err := s.SetLinkExtraLoss(1, 9, 0.5); err == nil {
		t.Fatal("loss on unknown link accepted")
	}
}

func TestRestartNodeRejoinsOverlay(t *testing.T) {
	s := startSimple(t, 9, diamondLinks(nil), nil)
	defer s.Stop()
	oldNode, oldSess := s.Node(2), s.Session(2)

	// Pre-crash traffic through node 2 (the 1-2-4 path is shortest).
	dst, err := s.Session(4).Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{DstNode: 4, DstPort: 100})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	if err := flow.Send([]byte("pre")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunFor(time.Second)
	if got := len(dst.Deliveries()); got != 1 {
		t.Fatalf("pre-crash delivery count %d, want 1", got)
	}

	// Crash: the site goes dark long enough for neighbors to declare node
	// 2's links down (and reset their link sessions), then a fresh
	// incarnation with zero protocol state boots and the site recovers.
	site, ok := s.SiteOf(2)
	if !ok {
		t.Fatal("SiteOf(2) unknown")
	}
	s.Net.SetSiteUp(site, false)
	s.RunFor(2 * time.Second)
	if err := s.RestartNode(2); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if s.Node(2) == oldNode || s.Session(2) == oldSess {
		t.Fatal("RestartNode did not build a fresh incarnation")
	}
	s.Net.SetSiteUp(site, true)
	// The reborn node must rejoin flooding (sequence fast-forward past its
	// pre-crash advertisements) and carry transit traffic again.
	s.RunFor(5 * time.Second)
	if err := flow.Send([]byte("post")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunFor(time.Second)
	if got := len(dst.Deliveries()); got != 1 {
		t.Fatalf("post-restart delivery count %d, want 1", got)
	}

	// The new incarnation's own session layer works: a client on the
	// reborn node receives unicast.
	dst2, err := s.Session(2).Connect(200)
	if err != nil {
		t.Fatalf("Connect on reborn node: %v", err)
	}
	flow2, err := src.OpenFlow(session.FlowSpec{DstNode: 2, DstPort: 200})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	if err := flow2.Send([]byte("hi")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.RunFor(time.Second)
	if got := len(dst2.Deliveries()); got != 1 {
		t.Fatalf("reborn node delivered %d, want 1", got)
	}

	if err := s.RestartNode(99); err == nil {
		t.Fatal("RestartNode of unknown node succeeded")
	}
}

package core

import (
	"fmt"
	"testing"
	"time"

	"sonet/internal/netemu"
	"sonet/internal/session"
	"sonet/internal/wire"
)

// runScenarioTrace drives a fixed lossy scenario and returns a trace of
// every delivery (sequence and latency) plus final counters.
func runScenarioTrace(t *testing.T, seed uint64) string {
	t.Helper()
	s, err := BuildSimple(seed, diamondLinks(netemu.Bernoulli{P: 0.08}))
	if err != nil {
		t.Fatalf("BuildSimple: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Stop()
	s.Settle()
	dst, err := s.Session(4).Connect(100)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	trace := ""
	dst.OnDeliver(func(d session.Delivery) {
		trace += fmt.Sprintf("%d@%d;", d.Seq, d.Latency)
	})
	src, err := s.Session(1).Connect(0)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: 4, DstPort: 100,
		LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	for i := 0; i < 200; i++ {
		i := i
		s.Sched.After(time.Duration(i)*7*time.Millisecond, func() {
			_ = flow.Send([]byte{byte(i)})
		})
	}
	s.Sched.After(700*time.Millisecond, func() { _ = s.CutLink(1, 2) })
	s.RunFor(10 * time.Second)
	st := s.Node(4).Stats()
	trace += fmt.Sprintf("|fwd=%d dup=%d events=%d", st.Forwarded, st.Duplicates, s.Sched.EventsRun())
	return trace
}

// TestWorldIsDeterministic asserts the reproduction's foundation: the
// same seed yields a bit-for-bit identical run — every delivery, every
// latency, every counter — while a different seed diverges.
func TestWorldIsDeterministic(t *testing.T) {
	a := runScenarioTrace(t, 2024)
	b := runScenarioTrace(t, 2024)
	if a != b {
		t.Fatalf("same seed diverged:\n a: %.120s\n b: %.120s", a, b)
	}
	c := runScenarioTrace(t, 2025)
	if a == c {
		t.Fatal("different seeds produced identical traces")
	}
}

package routing

import (
	"sync"
	"sync/atomic"
	"testing"

	"sonet/internal/wire"
)

// LocalGroups makes fakeGroups a LocalGroupLister, like groups.Manager.
func (f *fakeGroups) LocalGroups() []wire.GroupID {
	out := make([]wire.GroupID, 0, len(f.local))
	for g, on := range f.local {
		if on {
			out = append(out, g)
		}
	}
	return out
}

func TestSnapshotPublishContent(t *testing.T) {
	g, views, grp, engines := diamondWorld(t)
	grp.local[9] = true
	grp.members[9] = []wire.NodeID{1}
	e := engines[1]
	var cell atomic.Pointer[Snapshot]
	e.SetPublishTarget(&cell)
	if cell.Load() != nil {
		t.Fatal("snapshot published before Publish")
	}
	e.Publish()
	snap := cell.Load()
	if snap == nil {
		t.Fatal("Publish stored nothing")
	}
	if snap.Torn() {
		t.Fatalf("fresh snapshot torn: version %d check %d", snap.Version, snap.Check)
	}
	if len(snap.NextHop) != g.NumNodes() {
		t.Fatalf("next-hop table %d entries, want %d", len(snap.NextHop), g.NumNodes())
	}
	hop, ok := snap.NextHopFor(4)
	if !ok || hop.Neighbor != 2 || hop.Link != linkID(t, g, 1, 2) {
		t.Fatalf("NextHopFor(4) = %+v ok=%v, want via neighbor 2", hop, ok)
	}
	if len(snap.Incident) != len(g.Incident(1)) {
		t.Fatalf("incident table %d entries, want %d", len(snap.Incident), len(g.Incident(1)))
	}
	if !snap.LocalGroup(9) || snap.LocalGroup(10) {
		t.Fatal("local group set not frozen correctly")
	}
	if !snap.ShouldDeliver(&wire.Packet{Dst: 0, Group: 9}) {
		t.Fatal("group packet for a local group should deliver")
	}
	if snap.ShouldDeliver(&wire.Packet{Dst: 2}) {
		t.Fatal("packet for another node should not deliver")
	}

	// A view change reroutes; the republished snapshot must agree.
	views.view.SetUp(linkID(t, g, 1, 2), false)
	views.version++
	e.Invalidate()
	e.Publish()
	snap2 := cell.Load()
	if snap2.Version <= snap.Version {
		t.Fatalf("republication did not advance version: %d then %d", snap.Version, snap2.Version)
	}
	hop, ok = snap2.NextHopFor(4)
	if !ok || hop.Neighbor != 3 {
		t.Fatalf("after flap NextHopFor(4) = %+v ok=%v, want via neighbor 3", hop, ok)
	}
	// The old snapshot is immutable: readers that loaded it still see the
	// pre-flap route.
	if hop, _ := snap.NextHopFor(4); hop.Neighbor != 2 {
		t.Fatal("earlier snapshot mutated by republication")
	}
}

func TestSnapshotTreeMissThenDirtyRepublish(t *testing.T) {
	g, _, grp, engines := diamondWorld(t)
	grp.local[7] = true
	grp.members[7] = []wire.NodeID{1, 4}
	e := engines[2]
	var cell atomic.Pointer[Snapshot]
	e.SetPublishTarget(&cell)
	e.Publish()
	if _, ok := cell.Load().Tree(1, 7); ok {
		t.Fatal("tree present before any multicast packet")
	}
	// Routing a multicast packet computes the tree on demand and marks the
	// publication dirty; PublishIfDirty freezes the warmed cache.
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: 1, Group: 7, TTL: 8}
	e.Decide(p, linkID(t, g, 1, 2), true)
	e.PublishIfDirty()
	snap := cell.Load()
	if _, ok := snap.Tree(1, 7); !ok {
		t.Fatal("republished snapshot missing the tree routing just computed")
	}
	v := snap.Version
	e.PublishIfDirty()
	if cell.Load().Version != v {
		t.Fatal("PublishIfDirty republished with nothing dirty")
	}
}

// TestSnapshotRepublishRace flaps a route while readers consume published
// snapshots, asserting under the race detector that a reader never
// observes a torn snapshot: the version stamps at both ends must agree,
// and a usable next hop must be consistent with the same snapshot's
// incident-link usability column (a pairing that could only break if two
// publications interleaved).
func TestSnapshotRepublishRace(t *testing.T) {
	g, views, _, engines := diamondWorld(t)
	e := engines[1]
	var cell atomic.Pointer[Snapshot]
	e.SetPublishTarget(&cell)
	e.Publish()

	flapLink := linkID(t, g, 1, 2)
	const (
		readers = 4
		flaps   = 400
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for !stop.Load() {
				snap := cell.Load()
				if snap.Torn() {
					errs <- "torn snapshot observed"
					return
				}
				if snap.Version < lastVersion {
					errs <- "snapshot version went backward"
					return
				}
				lastVersion = snap.Version
				if len(snap.NextHop) != g.NumNodes() {
					errs <- "next-hop table with wrong length"
					return
				}
				usable := make(map[wire.LinkID]bool, len(snap.Incident))
				for _, inc := range snap.Incident {
					usable[inc.Link] = inc.Usable
				}
				for _, hop := range snap.NextHop {
					if hop.OK && !usable[hop.Link] {
						errs <- "next hop over a link the same snapshot marks unusable"
						return
					}
				}
			}
		}()
	}
	// The publisher is the single-threaded control shard: it owns the view
	// and the engine, and readers touch only published snapshots.
	for i := 0; i < flaps; i++ {
		views.view.SetUp(flapLink, i%2 == 0)
		views.version++
		e.Invalidate()
		e.Publish()
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

package routing

import (
	"sync/atomic"

	"sonet/internal/topology"
	"sonet/internal/wire"
)

// Snapshot is an immutable, atomically-published copy of one node's
// forwarding state: the next-hop table, the constrained-flooding mask,
// the node's incident links with their usability, the multicast trees
// computed so far, and local group membership. The control shard's
// routing engine republishes a fresh snapshot after every SPF and every
// membership change (Engine.Publish); data shards load the current
// pointer once per packet and read it without locks. Because the whole
// snapshot swaps as one pointer, a reader can never observe a next hop
// from one SPF paired with a tree or usability column from another —
// Version and Check stamp both ends of the struct so tests can assert
// exactly that.
type Snapshot struct {
	// Version numbers the publication; it increments on every Publish.
	Version uint64
	// Self is the node the snapshot belongs to.
	Self wire.NodeID
	// Graph is the designed topology (immutable after configuration); it
	// provides the dense node index NextHopFor resolves through.
	Graph *topology.Graph
	// NextHop maps dense node index → unicast next hop. A hop with OK
	// false means the destination was unreachable at publication.
	NextHop []SnapHop
	// Flood is the constrained-flooding link mask at publication.
	Flood wire.Bitmask
	// Incident lists the node's incident links with the neighbor behind
	// each and whether the shared view considered the link usable.
	Incident []SnapIncident
	// Trees carries the multicast trees the engine had computed under the
	// current view and group versions. A missing (source, group) pair is
	// a snapshot miss: the packet is handed to the control shard, which
	// computes the tree and republishes.
	Trees map[TreeKey]wire.Bitmask
	// Local is the set of groups with local members at publication.
	Local map[wire.GroupID]struct{}
	// Check repeats Version as the last field written before publication;
	// Torn() compares them. With publication by atomic pointer swap the
	// two can never differ — the field exists so the property is testable
	// rather than assumed.
	Check uint64
}

// SnapHop is one unicast next-hop entry.
type SnapHop struct {
	// Neighbor is the next-hop node.
	Neighbor wire.NodeID
	// NeighborIdx is Neighbor's dense index in the graph (for per-node
	// side tables like shard homing).
	NeighborIdx int32
	// Link is the incident link to Neighbor.
	Link wire.LinkID
	// OK reports reachability; a false entry means drop (no route).
	OK bool
}

// SnapIncident is one incident-link entry for mask and flood fan-out.
type SnapIncident struct {
	// Link is the incident link id (the bit tested against masks).
	Link wire.LinkID
	// Neighbor is the node on the other end.
	Neighbor wire.NodeID
	// NeighborIdx is Neighbor's dense graph index.
	NeighborIdx int32
	// Usable reports the shared view's verdict at publication.
	Usable bool
}

// TreeKey identifies one source-rooted multicast tree.
type TreeKey struct {
	Src   wire.NodeID
	Group wire.GroupID
}

// NextHopFor returns the unicast next hop toward dst.
func (s *Snapshot) NextHopFor(dst wire.NodeID) (SnapHop, bool) {
	i, ok := s.Graph.NodeIndex(dst)
	if !ok || i >= len(s.NextHop) || !s.NextHop[i].OK {
		return SnapHop{}, false
	}
	return s.NextHop[i], true
}

// Tree returns the multicast-tree mask for (src, group), reporting a miss
// when the engine had not computed that tree at publication.
func (s *Snapshot) Tree(src wire.NodeID, group wire.GroupID) (wire.Bitmask, bool) {
	m, ok := s.Trees[TreeKey{Src: src, Group: group}]
	return m, ok
}

// LocalGroup reports whether the node had local members of g at
// publication.
func (s *Snapshot) LocalGroup(g wire.GroupID) bool {
	_, ok := s.Local[g]
	return ok
}

// ShouldDeliver mirrors Engine.shouldDeliver over the snapshot: a
// mask/flood packet is for this node when addressed to it explicitly or
// to a group with local members.
func (s *Snapshot) ShouldDeliver(p *wire.Packet) bool {
	if p.Dst == s.Self {
		return true
	}
	return p.Dst == 0 && p.Group != 0 && s.LocalGroup(p.Group)
}

// Torn reports whether the version stamps at the two ends of the snapshot
// disagree — which atomic-pointer publication makes impossible, and the
// snapshot race tests assert stays impossible.
func (s *Snapshot) Torn() bool { return s.Version != s.Check }

// LocalGroupLister is the optional GroupSource extension the publisher
// uses to freeze local membership into a snapshot. groups.Manager
// implements it; test fakes without it publish an empty local set.
type LocalGroupLister interface {
	LocalGroups() []wire.GroupID
}

// SetPublishTarget installs the pointer cell snapshots are published
// into. The node's data plane owns the cell; a nil target (the default,
// and every single-shard or emulated node) disables publication
// entirely, keeping Publish free on the sim fast paths.
func (e *Engine) SetPublishTarget(p *atomic.Pointer[Snapshot]) { e.pub = p }

// Publish freezes the engine's current forwarding state into a fresh
// Snapshot and stores it in the publish target. It runs on the control
// shard after reconvergence, membership changes, and on-demand multicast
// tree computation; it allocates (one snapshot per control-plane event),
// which is the price of lock-free reads on every data shard.
func (e *Engine) Publish() {
	if e.pub == nil {
		return
	}
	e.selfSPT()
	v := e.viewNow()
	g := v.G
	n := g.NumNodes()
	e.pubVersion++
	snap := &Snapshot{
		Version: e.pubVersion,
		Self:    e.self,
		Graph:   g,
		NextHop: make([]SnapHop, n),
		Flood:   v.FloodMask(),
	}
	for i := 0; i < n; i++ {
		dst := g.NodeAt(i)
		if dst == e.self {
			continue
		}
		lid, ok := e.nextHop(dst)
		if !ok {
			continue
		}
		l, lok := g.Link(lid)
		if !lok {
			continue
		}
		nb, _ := l.Other(e.self)
		nbIdx, _ := g.NodeIndex(nb)
		snap.NextHop[i] = SnapHop{Neighbor: nb, NeighborIdx: int32(nbIdx), Link: lid, OK: true}
	}
	inc := g.Incident(e.self)
	snap.Incident = make([]SnapIncident, 0, len(inc))
	for _, lid := range inc {
		l, lok := g.Link(lid)
		if !lok {
			continue
		}
		nb, _ := l.Other(e.self)
		nbIdx, _ := g.NodeIndex(nb)
		snap.Incident = append(snap.Incident, SnapIncident{
			Link: lid, Neighbor: nb, NeighborIdx: int32(nbIdx), Usable: v.Usable(lid),
		})
	}
	vv, gv := e.views.Version(), e.groups.Version()
	if len(e.trees) > 0 {
		snap.Trees = make(map[TreeKey]wire.Bitmask, len(e.trees))
		for k, c := range e.trees {
			if c.viewVersion == vv && c.groupVersion == gv {
				snap.Trees[TreeKey{Src: k.src, Group: k.group}] = c.mask
			}
		}
	}
	if lg, ok := e.groups.(LocalGroupLister); ok {
		if locals := lg.LocalGroups(); len(locals) > 0 {
			snap.Local = make(map[wire.GroupID]struct{}, len(locals))
			for _, gid := range locals {
				snap.Local[gid] = struct{}{}
			}
		}
	}
	snap.Check = snap.Version
	e.pubDirty = false
	e.pub.Store(snap)
}

// PublishIfDirty republishes when forwarding state changed since the last
// publication through a path that does not signal the node (today: a
// multicast tree computed on demand during packet routing). The node
// calls it after routing control-shard packets that may have warmed the
// tree cache.
func (e *Engine) PublishIfDirty() {
	if e.pub != nil && e.pubDirty {
		e.Publish()
	}
}

// Package routing implements the routing level of the overlay node
// software architecture (Fig. 2): it decides, for each packet, whether to
// deliver it to local clients and on which overlay links to forward it,
// according to the packet's routing service — Link State, Source Based
// (bitmask), Multicast tree, or Constrained Flooding (§II-B).
//
// The engine is a pure decision component: it inspects the shared
// connectivity view and group state but performs no I/O, which makes every
// routing behaviour unit-testable in isolation.
package routing

import (
	"sync/atomic"

	"sonet/internal/metrics"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// NoLink is the arrival-link sentinel for locally originated packets.
const NoLink wire.LinkID = 0xffff

// maxCachedTrees caps the per-engine (source, group) multicast-tree cache.
// Beyond the cap the oldest entry is evicted; under churn superseded
// entries are pruned as soon as a version change is observed, so the cache
// cannot grow without bound either way.
const maxCachedTrees = 64

// GroupSource provides the shared group state (Fig. 2 Group State
// component).
type GroupSource interface {
	// Members returns the overlay nodes holding members of g.
	Members(g wire.GroupID) []wire.NodeID
	// LocalMember reports whether this node has local members of g.
	LocalMember(g wire.GroupID) bool
	// Version increments on membership changes.
	Version() uint64
}

// ViewSource provides the shared connectivity state (Fig. 2 Connectivity
// Graph Maintenance component).
type ViewSource interface {
	// View returns the current shared view.
	View() *topology.View
	// Version increments on connectivity changes.
	Version() uint64
}

// Decision is the routing outcome for one packet at one node.
type Decision struct {
	// DeliverLocal indicates the packet must be handed to the session
	// level for local client delivery.
	DeliverLocal bool
	// Forward lists the overlay links to transmit the packet on. The slice
	// is scratch space owned by the engine and is valid only until the next
	// Decide call; callers that need it longer must copy it.
	Forward []wire.LinkID
}

// Engine computes routing decisions for one overlay node.
type Engine struct {
	self   wire.NodeID
	views  ViewSource
	groups GroupSource
	metric topology.Metric

	// Shortest-path tree rooted at self for link-state unicast. The tree is
	// engine-owned scratch: reconvergence repairs it in place with
	// SPTRepair when the view's change journal shows a single changed link,
	// and recomputes into it with SPTInto otherwise; either way a warmed
	// reconvergence allocates nothing. lastView/lastViewVersion remember
	// which view object and version the tree reflects so the journal can be
	// consulted, and chgBuf is the allocation-free ChangesSince buffer.
	spt             topology.SPT
	sptVersion      uint64
	sptValid        bool
	lastView        *topology.View
	lastViewVersion uint64
	chgBuf          [16]wire.LinkID

	// nh memoizes per-destination next hops by dense node index. Entries
	// are stamped with the SPT generation that produced them; nhStamp is
	// bumped on every recompute, so stale entries miss without any clearing
	// pass (a zero-valued entry never matches because nhStamp starts at 1).
	nh      []nextHopEntry
	nhStamp uint64

	// Cached multicast trees keyed by (source, group), bounded by
	// maxCachedTrees. treeOrder tracks insertion order for FIFO capacity
	// eviction; treeVV/treeGV are the last versions observed, so superseded
	// entries are pruned the moment a version change is seen.
	trees     map[treeKey]*cachedTree
	treeOrder []treeKey
	treeVV    uint64
	treeGV    uint64
	treeStats metrics.TreeCacheStats

	// fwd is the reusable backing array for Decision.Forward, so the
	// per-packet decision allocates nothing on the forwarding fast path.
	fwd []wire.LinkID

	// pub, when set, is the cell forwarding snapshots are published into
	// for lock-free readers on data shards (snapshot.go). pubVersion
	// numbers publications; pubDirty marks forwarding-state changes that
	// happened without a publish (an on-demand tree computation).
	pub        *atomic.Pointer[Snapshot]
	pubVersion uint64
	pubDirty   bool
}

type nextHopEntry struct {
	link  wire.LinkID
	ok    bool
	stamp uint64
}

type treeKey struct {
	src   wire.NodeID
	group wire.GroupID
}

type cachedTree struct {
	mask         wire.Bitmask
	viewVersion  uint64
	groupVersion uint64
}

// NewEngine returns a routing engine for node self. metric defaults to
// the loss-penalized expected-latency metric used by Spines-style
// overlays.
func NewEngine(self wire.NodeID, views ViewSource, groups GroupSource, metric topology.Metric) *Engine {
	if metric == nil {
		metric = topology.ExpectedLatencyMetric
	}
	return &Engine{
		self:   self,
		views:  views,
		groups: groups,
		metric: metric,
		trees:  make(map[treeKey]*cachedTree),
	}
}

// Invalidate drops cached multicast trees; the node calls it on view or
// group changes (cache keys would catch staleness anyway, but eager
// invalidation keeps memory tidy when topology churns). The unicast SPT is
// not dropped: selfSPT tracks both the source version and the view's own
// change journal, so any actual change — including direct State mutation
// followed by View.Invalidate — still forces a repair or recompute.
func (e *Engine) Invalidate() {
	for k := range e.trees {
		delete(e.trees, k)
		e.treeStats.Evictions.Add(1)
	}
	e.treeOrder = e.treeOrder[:0]
}

// TreeCacheStats returns the engine's multicast-tree cache counters.
func (e *Engine) TreeCacheStats() metrics.TreeCacheSnapshot {
	return e.treeStats.Snapshot()
}

// Decide computes the routing decision for p arriving on link arrived
// (NoLink when locally originated). firstSeen reports whether the node's
// duplicate-suppression table saw this packet for the first time; flood,
// mask, and multicast forwarding only fan out on first sight.
func (e *Engine) Decide(p *wire.Packet, arrived wire.LinkID, firstSeen bool) Decision {
	switch p.Route {
	case wire.RouteLinkState:
		return e.decideUnicast(p)
	case wire.RouteSourceMask:
		return e.decideMask(p, p.Mask, arrived, firstSeen)
	case wire.RouteFlood:
		return e.decideMask(p, e.viewNow().FloodMask(), arrived, firstSeen)
	case wire.RouteMulticast:
		return e.decideMulticast(p, arrived, firstSeen)
	default:
		return Decision{}
	}
}

func (e *Engine) viewNow() *topology.View { return e.views.View() }

func (e *Engine) decideUnicast(p *wire.Packet) Decision {
	if p.Dst == e.self {
		return Decision{DeliverLocal: true}
	}
	next, ok := e.nextHop(p.Dst)
	if !ok {
		return Decision{}
	}
	e.fwd = append(e.fwd[:0], next)
	return Decision{Forward: e.fwd}
}

// nextHop returns the first link toward dst, memoized per destination for
// the lifetime of the current SPT: the tree-walk in SPT.NextHop runs once
// per (destination, reconvergence) instead of once per packet.
func (e *Engine) nextHop(dst wire.NodeID) (wire.LinkID, bool) {
	e.selfSPT()
	i, ok := e.viewNow().G.NodeIndex(dst)
	if !ok {
		return 0, false
	}
	if i < len(e.nh) && e.nh[i].stamp == e.nhStamp {
		return e.nh[i].link, e.nh[i].ok
	}
	link, ok := e.spt.NextHop(dst)
	if i < len(e.nh) {
		e.nh[i] = nextHopEntry{link: link, ok: ok, stamp: e.nhStamp}
	}
	return link, ok
}

// decideMask forwards over the subgraph given by mask: on every usable
// masked link incident to this node except the arrival link. Duplicate
// copies deliver locally at most once and never fan out again.
func (e *Engine) decideMask(p *wire.Packet, mask wire.Bitmask, arrived wire.LinkID, firstSeen bool) Decision {
	var d Decision
	if firstSeen {
		d.DeliverLocal = e.shouldDeliver(p)
	}
	if !firstSeen {
		return d
	}
	v := e.viewNow()
	e.fwd = e.fwd[:0]
	for _, lid := range v.G.Incident(e.self) {
		if lid == arrived || !mask.Has(lid) || !v.Usable(lid) {
			continue
		}
		e.fwd = append(e.fwd, lid)
	}
	if len(e.fwd) > 0 {
		d.Forward = e.fwd
	}
	return d
}

func (e *Engine) decideMulticast(p *wire.Packet, arrived wire.LinkID, firstSeen bool) Decision {
	if !firstSeen {
		return Decision{}
	}
	d := Decision{DeliverLocal: e.groups.LocalMember(p.Group)}
	mask := e.multicastMask(p.Src, p.Group)
	v := e.viewNow()
	e.fwd = e.fwd[:0]
	for _, lid := range v.G.Incident(e.self) {
		if lid == arrived || !mask.Has(lid) || !v.Usable(lid) {
			continue
		}
		e.fwd = append(e.fwd, lid)
	}
	if len(e.fwd) > 0 {
		d.Forward = e.fwd
	}
	return d
}

// shouldDeliver reports whether a mask/flood-routed packet is addressed to
// this node: explicitly, or via a group with local members.
func (e *Engine) shouldDeliver(p *wire.Packet) bool {
	if p.Dst == e.self {
		return true
	}
	return p.Dst == 0 && p.Group != 0 && e.groups.LocalMember(p.Group)
}

// selfSPT returns the shortest-path tree rooted at this node, bringing the
// engine-owned scratch up to date when the shared view changed. When the
// view's change journal shows exactly one link changed (possibly several
// times — a flap) the tree is repaired in place with SPTRepair; multi-link
// batches, journal overflow, and untracked mutations (View.Invalidate
// after direct State writes) fall back to a full SPTInto. Both paths
// advance the next-hop memo stamp, invalidating every memoized next hop at
// once.
func (e *Engine) selfSPT() *topology.SPT {
	cur := e.views.Version()
	v := e.viewNow()
	vv := v.Version()
	if e.sptValid && e.sptVersion == cur && e.lastView == v && e.lastViewVersion == vv {
		return &e.spt
	}
	full := true
	if e.sptValid && e.lastView == v {
		if links, ok := v.ChangesSince(e.lastViewVersion, e.chgBuf[:0]); ok && len(links) > 0 {
			single := true
			for _, l := range links[1:] {
				if l != links[0] {
					single = false
					break
				}
			}
			// A zero-entry span means the source version moved without a
			// journaled view change (direct State mutation); stay on the
			// conservative full path for that.
			if single && topology.SPTRepair(&e.spt, v, links[0], e.metric) {
				full = false
			}
		}
	}
	if full {
		topology.SPTInto(&e.spt, v, e.self, e.metric)
	}
	e.sptVersion = cur
	e.lastView = v
	e.lastViewVersion = vv
	e.sptValid = true
	e.nhStamp++
	if n := v.G.NumNodes(); cap(e.nh) < n {
		e.nh = make([]nextHopEntry, n)
	} else {
		e.nh = e.nh[:n]
	}
	return &e.spt
}

// multicastMask returns the cached source-rooted tree for (src, group).
// Every node computes the identical tree from identical shared state, so
// tree forwarding is consistent without per-packet coordination.
func (e *Engine) multicastMask(src wire.NodeID, group wire.GroupID) wire.Bitmask {
	key := treeKey{src: src, group: group}
	vv, gv := e.views.Version(), e.groups.Version()
	e.pruneTrees(vv, gv)
	if c, ok := e.trees[key]; ok && c.viewVersion == vv && c.groupVersion == gv {
		e.treeStats.Hits.Add(1)
		return c.mask
	}
	e.treeStats.Misses.Add(1)
	// A freshly computed tree is forwarding state the published snapshot
	// does not carry yet; mark it so the control shard republishes.
	e.pubDirty = true
	mask, _ := topology.MulticastTree(e.viewNow(), src, e.groups.Members(group), e.metric)
	if c, ok := e.trees[key]; ok {
		*c = cachedTree{mask: mask, viewVersion: vv, groupVersion: gv}
		return mask
	}
	if len(e.trees) >= maxCachedTrees {
		e.evictOldestTree()
	}
	e.trees[key] = &cachedTree{mask: mask, viewVersion: vv, groupVersion: gv}
	e.treeOrder = append(e.treeOrder, key)
	return mask
}

// pruneTrees discards every cached tree superseded by a view or group
// version change. Versions only move forward, so anything not computed
// under the current pair is stale for good.
func (e *Engine) pruneTrees(vv, gv uint64) {
	if vv == e.treeVV && gv == e.treeGV {
		return
	}
	e.treeVV, e.treeGV = vv, gv
	if len(e.trees) == 0 {
		return
	}
	kept := e.treeOrder[:0]
	for _, k := range e.treeOrder {
		c := e.trees[k]
		if c != nil && c.viewVersion == vv && c.groupVersion == gv {
			kept = append(kept, k)
			continue
		}
		delete(e.trees, k)
		e.treeStats.Evictions.Add(1)
	}
	e.treeOrder = kept
}

// evictOldestTree removes the oldest cache entry (FIFO) to stay under
// maxCachedTrees.
func (e *Engine) evictOldestTree() {
	if len(e.treeOrder) == 0 {
		return
	}
	k := e.treeOrder[0]
	e.treeOrder = e.treeOrder[1:]
	delete(e.trees, k)
	e.treeStats.Evictions.Add(1)
}

// AnycastResolve selects the destination node for an anycast packet: the
// nearest group member under the engine's metric.
func (e *Engine) AnycastResolve(group wire.GroupID) (wire.NodeID, bool) {
	return topology.AnycastTarget(e.viewNow(), e.self, e.groups.Members(group), e.metric)
}

// PathTo returns the current link-state path from this node to dst (for
// diagnostics and planning).
func (e *Engine) PathTo(dst wire.NodeID) []wire.NodeID {
	return e.selfSPT().Path(dst)
}

// Reachable reports whether dst is currently reachable.
func (e *Engine) Reachable(dst wire.NodeID) bool {
	return e.selfSPT().Reachable(dst)
}

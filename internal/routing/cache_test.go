package routing

import (
	"testing"

	"sonet/internal/wire"
)

// fillTrees decides one multicast packet per group, populating the tree
// cache through the public API.
func fillTrees(e *Engine, grp *fakeGroups, groups int) {
	for i := 0; i < groups; i++ {
		gid := wire.GroupID(100 + i)
		grp.members[gid] = []wire.NodeID{4}
		p := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: 1, Group: gid}
		e.Decide(p, NoLink, true)
	}
}

func TestTreeCacheBounded(t *testing.T) {
	_, _, grp, engines := diamondWorld(t)
	e := engines[1]
	n := maxCachedTrees + 40
	fillTrees(e, grp, n)
	if len(e.trees) != maxCachedTrees {
		t.Fatalf("cache holds %d trees, want cap %d", len(e.trees), maxCachedTrees)
	}
	if len(e.treeOrder) != len(e.trees) {
		t.Fatalf("treeOrder %d entries vs %d cached", len(e.treeOrder), len(e.trees))
	}
	st := e.TreeCacheStats()
	if st.Misses != uint64(n) {
		t.Fatalf("misses = %d, want %d", st.Misses, n)
	}
	if st.Evictions != uint64(n-maxCachedTrees) {
		t.Fatalf("evictions = %d, want %d", st.Evictions, n-maxCachedTrees)
	}
	// FIFO: the oldest groups were evicted, the newest survive.
	if _, ok := e.trees[treeKey{src: 1, group: 100}]; ok {
		t.Fatal("oldest entry survived capacity eviction")
	}
	if _, ok := e.trees[treeKey{src: 1, group: wire.GroupID(100 + n - 1)}]; !ok {
		t.Fatal("newest entry missing")
	}
}

func TestTreeCacheHitsServedFromCache(t *testing.T) {
	_, _, grp, engines := diamondWorld(t)
	e := engines[1]
	grp.members[50] = []wire.NodeID{2, 4}
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: 1, Group: 50}
	e.Decide(p, NoLink, true)
	for i := 0; i < 10; i++ {
		e.Decide(p, NoLink, true)
	}
	st := e.TreeCacheStats()
	if st.Misses != 1 || st.Hits != 10 {
		t.Fatalf("hits/misses = %d/%d, want 10/1", st.Hits, st.Misses)
	}
}

func TestTreeCachePrunesSupersededOnVersionChange(t *testing.T) {
	_, views, grp, engines := diamondWorld(t)
	e := engines[1]
	fillTrees(e, grp, 20)
	if len(e.trees) != 20 {
		t.Fatalf("cache holds %d trees before churn, want 20", len(e.trees))
	}
	before := e.TreeCacheStats()
	// A connectivity change supersedes every cached tree; the next lookup
	// prunes them all and caches only the fresh recompute.
	views.version++
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: 1, Group: 100}
	e.Decide(p, NoLink, true)
	if len(e.trees) != 1 {
		t.Fatalf("cache holds %d trees after version change, want 1", len(e.trees))
	}
	if len(e.treeOrder) != 1 {
		t.Fatalf("treeOrder %d entries after prune, want 1", len(e.treeOrder))
	}
	st := e.TreeCacheStats()
	if got := st.Evictions - before.Evictions; got != 20 {
		t.Fatalf("version change evicted %d entries, want 20", got)
	}
	// Entries refreshed under the current versions are kept by the prune.
	grp.members[777] = []wire.NodeID{4}
	e.Decide(&wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: 1, Group: 777}, NoLink, true)
	views.version++
	e.Decide(p, NoLink, true)
	e.Decide(&wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: 1, Group: 777}, NoLink, true)
	if len(e.trees) != 2 {
		t.Fatalf("cache holds %d trees after refresh, want 2", len(e.trees))
	}
}

func TestInvalidateDropsTreesAndCounts(t *testing.T) {
	_, _, grp, engines := diamondWorld(t)
	e := engines[1]
	fillTrees(e, grp, 8)
	before := e.TreeCacheStats()
	e.Invalidate()
	if len(e.trees) != 0 || len(e.treeOrder) != 0 {
		t.Fatalf("cache not empty after Invalidate: %d trees, %d order", len(e.trees), len(e.treeOrder))
	}
	st := e.TreeCacheStats()
	if got := st.Evictions - before.Evictions; got != 8 {
		t.Fatalf("Invalidate evicted %d entries, want 8", got)
	}
}

// TestNextHopMemoStampInvalidation drives the per-destination memo across
// reconvergences: hits between recomputes, correct fresh answers after.
func TestNextHopMemoStampInvalidation(t *testing.T) {
	g, views, _, engines := diamondWorld(t)
	e := engines[1]
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteLinkState, Src: 1, Dst: 4}
	for i := 0; i < 5; i++ {
		d := e.Decide(p, NoLink, true)
		if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 1, 2) {
			t.Fatalf("iteration %d forward = %v, want via 1-2", i, d.Forward)
		}
	}
	views.view.SetUp(linkID(t, g, 1, 2), false)
	views.version++
	for i := 0; i < 5; i++ {
		d := e.Decide(p, NoLink, true)
		if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 1, 3) {
			t.Fatalf("post-churn iteration %d forward = %v, want via 1-3", i, d.Forward)
		}
	}
}

// TestUnicastDecideWarmAllocFree pins the unicast fast path: with the SPT
// warm and the destination memoized, a Decide performs no allocation.
func TestUnicastDecideWarmAllocFree(t *testing.T) {
	_, _, _, engines := diamondWorld(t)
	e := engines[1]
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteLinkState, Src: 1, Dst: 4}
	e.Decide(p, NoLink, true)
	allocs := testing.AllocsPerRun(200, func() {
		e.Decide(p, NoLink, true)
	})
	if allocs != 0 {
		t.Fatalf("warmed unicast Decide allocates %.1f/op, want 0", allocs)
	}
}

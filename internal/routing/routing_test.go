package routing

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"sonet/internal/topology"
	"sonet/internal/wire"
)

type fakeViews struct {
	view    *topology.View
	version uint64
}

func (f *fakeViews) View() *topology.View { return f.view }
func (f *fakeViews) Version() uint64      { return f.version }

type fakeGroups struct {
	members map[wire.GroupID][]wire.NodeID
	local   map[wire.GroupID]bool
	version uint64
}

func (f *fakeGroups) Members(g wire.GroupID) []wire.NodeID { return f.members[g] }
func (f *fakeGroups) LocalMember(g wire.GroupID) bool      { return f.local[g] }
func (f *fakeGroups) Version() uint64                      { return f.version }

// diamondWorld builds the 4-node diamond and an engine at each node.
//
//	1 --a-- 2 --b-- 4,  1 --c-- 3 --d-- 4, 1 --e-- 4 (slow chord)
func diamondWorld(t *testing.T) (*topology.Graph, *fakeViews, *fakeGroups, map[wire.NodeID]*Engine) {
	t.Helper()
	g := topology.NewGraph()
	mustLink := func(a, b wire.NodeID, lat time.Duration) {
		if _, err := g.AddLink(a, b, lat); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(1, 2, 10*time.Millisecond)
	mustLink(2, 4, 10*time.Millisecond)
	mustLink(1, 3, 12*time.Millisecond)
	mustLink(3, 4, 12*time.Millisecond)
	mustLink(1, 4, 50*time.Millisecond)
	views := &fakeViews{view: topology.NewView(g)}
	grp := &fakeGroups{members: make(map[wire.GroupID][]wire.NodeID), local: make(map[wire.GroupID]bool)}
	engines := make(map[wire.NodeID]*Engine, 4)
	for _, n := range g.Nodes() {
		engines[n] = NewEngine(n, views, grp, topology.LatencyMetric)
	}
	return g, views, grp, engines
}

func linkID(t *testing.T, g *topology.Graph, a, b wire.NodeID) wire.LinkID {
	t.Helper()
	l, ok := g.LinkBetween(a, b)
	if !ok {
		t.Fatalf("no link %v-%v", a, b)
	}
	return l.ID
}

func TestUnicastForwardAndDeliver(t *testing.T) {
	g, _, _, engines := diamondWorld(t)
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteLinkState, Src: 1, Dst: 4}
	d := engines[1].Decide(p, NoLink, true)
	if d.DeliverLocal {
		t.Fatal("delivered locally at source")
	}
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 1, 2) {
		t.Fatalf("forward = %v, want via 1-2", d.Forward)
	}
	d = engines[2].Decide(p, linkID(t, g, 1, 2), true)
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 2, 4) {
		t.Fatalf("node 2 forward = %v, want via 2-4", d.Forward)
	}
	d = engines[4].Decide(p, linkID(t, g, 2, 4), true)
	if !d.DeliverLocal || len(d.Forward) != 0 {
		t.Fatalf("destination decision = %+v, want local delivery only", d)
	}
}

func TestUnicastReroutesOnViewChange(t *testing.T) {
	g, views, _, engines := diamondWorld(t)
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteLinkState, Src: 1, Dst: 4}
	d := engines[1].Decide(p, NoLink, true)
	if d.Forward[0] != linkID(t, g, 1, 2) {
		t.Fatalf("initial route %v", d.Forward)
	}
	views.view.SetUp(linkID(t, g, 1, 2), false)
	views.version++
	d = engines[1].Decide(p, NoLink, true)
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 1, 3) {
		t.Fatalf("rerouted forward = %v, want via 1-3", d.Forward)
	}
}

func TestUnicastUnreachableDrops(t *testing.T) {
	g, views, _, engines := diamondWorld(t)
	for _, lid := range g.Incident(4) {
		views.view.SetUp(lid, false)
	}
	views.version++
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteLinkState, Src: 1, Dst: 4}
	d := engines[1].Decide(p, NoLink, true)
	if d.DeliverLocal || len(d.Forward) != 0 {
		t.Fatalf("decision for unreachable dst = %+v, want drop", d)
	}
}

func TestSourceMaskForwardsOnlyMaskedLinks(t *testing.T) {
	g, _, _, engines := diamondWorld(t)
	var mask wire.Bitmask
	mask.Set(linkID(t, g, 1, 2))
	mask.Set(linkID(t, g, 2, 4))
	mask.Set(linkID(t, g, 1, 3))
	mask.Set(linkID(t, g, 3, 4))
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteSourceMask, Src: 1, Dst: 4, Mask: mask}
	d := engines[1].Decide(p, NoLink, true)
	got := append([]wire.LinkID(nil), d.Forward...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []wire.LinkID{linkID(t, g, 1, 2), linkID(t, g, 1, 3)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("forward = %v, want %v", got, want)
	}
	// Intermediate node forwards onward but not back.
	d = engines[2].Decide(p, linkID(t, g, 1, 2), true)
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 2, 4) {
		t.Fatalf("node 2 forward = %v", d.Forward)
	}
	// Destination delivers and (per mask) forwards nowhere new.
	d = engines[4].Decide(p, linkID(t, g, 2, 4), true)
	if !d.DeliverLocal {
		t.Fatal("destination did not deliver")
	}
	for _, lid := range d.Forward {
		if lid == linkID(t, g, 2, 4) {
			t.Fatal("forwarded back onto arrival link")
		}
	}
}

func TestSourceMaskDuplicateNoFanOut(t *testing.T) {
	g, _, _, engines := diamondWorld(t)
	var mask wire.Bitmask
	for _, l := range g.Links() {
		mask.Set(l.ID)
	}
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteSourceMask, Src: 1, Dst: 4, Mask: mask}
	d := engines[2].Decide(p, linkID(t, g, 1, 2), false)
	if d.DeliverLocal || len(d.Forward) != 0 {
		t.Fatalf("duplicate fanned out: %+v", d)
	}
}

func TestFloodUsesAllUpLinks(t *testing.T) {
	g, views, _, engines := diamondWorld(t)
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteFlood, Src: 2, Dst: 4}
	d := engines[1].Decide(p, linkID(t, g, 1, 2), true)
	got := append([]wire.LinkID(nil), d.Forward...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []wire.LinkID{linkID(t, g, 1, 3), linkID(t, g, 1, 4)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flood forward = %v, want %v", got, want)
	}
	// A down link is excluded from the flood.
	views.view.SetUp(linkID(t, g, 1, 3), false)
	views.version++
	d = engines[1].Decide(p, linkID(t, g, 1, 2), true)
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 1, 4) {
		t.Fatalf("flood with down link = %v", d.Forward)
	}
}

func TestMulticastTreeForwarding(t *testing.T) {
	g, _, grp, engines := diamondWorld(t)
	grp.members[50] = []wire.NodeID{2, 4}
	grp.version++
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: 1, Group: 50}
	// Tree from 1 covering {2,4}: links 1-2 and 2-4.
	d := engines[1].Decide(p, NoLink, true)
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 1, 2) {
		t.Fatalf("source forward = %v, want [1-2]", d.Forward)
	}
	if d.DeliverLocal {
		t.Fatal("source delivered without local membership")
	}
	grpLocal2 := &fakeGroups{members: grp.members, local: map[wire.GroupID]bool{50: true}, version: grp.version}
	eng2 := NewEngine(2, engines[2].views, grpLocal2, topology.LatencyMetric)
	d = eng2.Decide(p, linkID(t, g, 1, 2), true)
	if !d.DeliverLocal {
		t.Fatal("member node did not deliver")
	}
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 2, 4) {
		t.Fatalf("node 2 forward = %v, want [2-4]", d.Forward)
	}
}

func TestMulticastCacheInvalidation(t *testing.T) {
	g, views, grp, engines := diamondWorld(t)
	grp.members[50] = []wire.NodeID{4}
	grp.version++
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: 1, Group: 50}
	d := engines[1].Decide(p, NoLink, true)
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 1, 2) {
		t.Fatalf("initial tree forward = %v", d.Forward)
	}
	// Fail 1-2: the tree must recompute through 3.
	views.view.SetUp(linkID(t, g, 1, 2), false)
	views.version++
	d = engines[1].Decide(p, NoLink, true)
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 1, 3) {
		t.Fatalf("post-failure tree forward = %v, want via 3", d.Forward)
	}
	// Membership change invalidates too.
	grp.members[50] = nil
	grp.version++
	d = engines[1].Decide(p, NoLink, true)
	if len(d.Forward) != 0 {
		t.Fatalf("tree for empty group still forwards: %v", d.Forward)
	}
}

func TestMulticastDuplicateDropped(t *testing.T) {
	g, _, grp, engines := diamondWorld(t)
	grp.members[50] = []wire.NodeID{4}
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: 1, Group: 50}
	d := engines[2].Decide(p, linkID(t, g, 1, 2), false)
	if d.DeliverLocal || len(d.Forward) != 0 {
		t.Fatalf("duplicate multicast decision = %+v", d)
	}
}

func TestAnycastResolveNearest(t *testing.T) {
	_, _, grp, engines := diamondWorld(t)
	grp.members[9] = []wire.NodeID{3, 4}
	target, ok := engines[1].AnycastResolve(9)
	if !ok || target != 3 {
		t.Fatalf("AnycastResolve = %v,%v, want 3", target, ok)
	}
	if _, ok := engines[1].AnycastResolve(10); ok {
		t.Fatal("resolved empty group")
	}
}

func TestPathToAndReachable(t *testing.T) {
	_, views, _, engines := diamondWorld(t)
	path := engines[1].PathTo(4)
	want := []wire.NodeID{1, 2, 4}
	if !reflect.DeepEqual(path, want) {
		t.Fatalf("PathTo(4) = %v, want %v", path, want)
	}
	if !engines[1].Reachable(4) {
		t.Fatal("4 unreachable")
	}
	for i := range views.view.State {
		views.view.State[i].Up = false
	}
	views.version++
	if engines[1].Reachable(4) {
		t.Fatal("4 reachable with all links down")
	}
}

func TestInvalidateForcesRecompute(t *testing.T) {
	g, views, _, engines := diamondWorld(t)
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteLinkState, Src: 1, Dst: 4}
	_ = engines[1].Decide(p, NoLink, true)
	// Mutate the view without bumping the version: stale cache would keep
	// the old route; Invalidate must force recomputation.
	views.view.SetUp(linkID(t, g, 1, 2), false)
	engines[1].Invalidate()
	d := engines[1].Decide(p, NoLink, true)
	if len(d.Forward) != 1 || d.Forward[0] != linkID(t, g, 1, 3) {
		t.Fatalf("post-Invalidate forward = %v, want via 1-3", d.Forward)
	}
}

// Package groups implements the Group State component of the overlay node
// software architecture (Fig. 2): every overlay node tracks which groups
// its own connected clients belong to and shares a node-level membership
// summary with all other overlay nodes, enabling multicast and anycast
// services that the Internet does not natively provide (§II-B).
//
// The two-level client–daemon hierarchy keeps this state small: a node
// advertises only "I have members of group G", never per-client detail, so
// global group state scales with nodes × groups rather than clients.
package groups

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"sonet/internal/wire"
)

// ErrBadAnnouncement reports a malformed group-state payload.
var ErrBadAnnouncement = errors.New("malformed group-state announcement")

// Env is what the manager needs from its host overlay node.
type Env interface {
	// FloodGroupState sends a group-state packet to every current
	// neighbor except the one it came from (zero to send to all).
	FloodGroupState(payload []byte, except wire.NodeID)
	// SendGroupState sends a group-state packet to one neighbor
	// (database resync on link recovery).
	SendGroupState(neighbor wire.NodeID, payload []byte)
	// GroupsChanged notifies the node that membership changed and cached
	// multicast trees must be recomputed.
	GroupsChanged()
}

// Announcement is one node's sequence-numbered full membership summary:
// the set of groups for which the origin currently has local members.
// Announcements are idempotent full state, so a lost flood is repaired by
// the next refresh.
type Announcement struct {
	// Origin is the announcing node.
	Origin wire.NodeID
	// Seq orders announcements from one origin.
	Seq uint32
	// Groups is the origin's current locally-joined group set, sorted.
	Groups []wire.GroupID
}

// Marshal encodes the announcement.
func (a *Announcement) Marshal() []byte {
	buf := make([]byte, 8, 8+4*len(a.Groups))
	binary.BigEndian.PutUint16(buf[0:], uint16(a.Origin))
	binary.BigEndian.PutUint32(buf[2:], a.Seq)
	binary.BigEndian.PutUint16(buf[6:], uint16(len(a.Groups)))
	var g [4]byte
	for _, id := range a.Groups {
		binary.BigEndian.PutUint32(g[:], uint32(id))
		buf = append(buf, g[:]...)
	}
	return buf
}

// UnmarshalAnnouncement decodes a group-state payload.
func UnmarshalAnnouncement(src []byte) (*Announcement, error) {
	if len(src) < 8 {
		return nil, fmt.Errorf("groups: header %d bytes: %w", len(src), ErrBadAnnouncement)
	}
	a := &Announcement{
		Origin: wire.NodeID(binary.BigEndian.Uint16(src[0:])),
		Seq:    binary.BigEndian.Uint32(src[2:]),
	}
	count := int(binary.BigEndian.Uint16(src[6:]))
	src = src[8:]
	if len(src) < 4*count {
		return nil, fmt.Errorf("groups: %d groups in %d bytes: %w", count, len(src), ErrBadAnnouncement)
	}
	a.Groups = make([]wire.GroupID, count)
	for i := 0; i < count; i++ {
		a.Groups[i] = wire.GroupID(binary.BigEndian.Uint32(src[4*i:]))
	}
	return a, nil
}

// Manager is the Group State component for one node. All methods must be
// called from the node's executor.
type Manager struct {
	env  Env
	self wire.NodeID

	// local holds reference counts of local client joins per group.
	local map[wire.GroupID]int
	// members maps each group to the sorted slice of overlay nodes with
	// members, maintained by binary-search insertion so Members can return
	// it without allocating.
	members map[wire.GroupID][]wire.NodeID
	// seen tracks the highest announcement sequence per origin.
	seen map[wire.NodeID]uint32
	// lastAnn retains the latest announcement payload per origin for
	// link-recovery resync.
	lastAnn map[wire.NodeID][]byte
	// remote holds the last applied group set per origin, to diff.
	remote map[wire.NodeID][]wire.GroupID

	mySeq   uint32
	version uint64
}

// NewManager returns a group-state manager for node self.
func NewManager(env Env, self wire.NodeID) *Manager {
	return &Manager{
		env:     env,
		self:    self,
		local:   make(map[wire.GroupID]int),
		members: make(map[wire.GroupID][]wire.NodeID),
		seen:    make(map[wire.NodeID]uint32),
		lastAnn: make(map[wire.NodeID][]byte),
		remote:  make(map[wire.NodeID][]wire.GroupID),
	}
}

// Version returns a counter incremented on every membership change, for
// multicast tree cache invalidation.
func (m *Manager) Version() uint64 { return m.version }

// Join registers a local client's membership in a group. The first local
// member triggers an announcement flood; only receivers need to join
// (§III-B: any client can send to the group).
func (m *Manager) Join(g wire.GroupID) {
	m.local[g]++
	if m.local[g] == 1 {
		m.setMember(g, m.self, true)
		m.announce()
	}
}

// Leave unregisters a local client's membership. The last local member
// leaving triggers an announcement flood.
func (m *Manager) Leave(g wire.GroupID) {
	n, ok := m.local[g]
	if !ok {
		return
	}
	if n <= 1 {
		delete(m.local, g)
		m.setMember(g, m.self, false)
		m.announce()
		return
	}
	m.local[g] = n - 1
}

// LocalMember reports whether this node has local members of g.
func (m *Manager) LocalMember(g wire.GroupID) bool { return m.local[g] > 0 }

// LocalGroups returns the groups with local members, in no particular
// order (a fresh slice; the caller may keep it). The routing engine's
// forwarding-snapshot publisher uses it to freeze local membership for
// lock-free readers on other shards.
func (m *Manager) LocalGroups() []wire.GroupID {
	out := make([]wire.GroupID, 0, len(m.local))
	for g, n := range m.local {
		if n > 0 {
			out = append(out, g)
		}
	}
	return out
}

// Members returns the overlay nodes currently holding members of g,
// sorted by node ID. The returned slice is the manager's internal state:
// the caller must not modify it, and it is valid only until the next
// membership change.
func (m *Manager) Members(g wire.GroupID) []wire.NodeID {
	return m.members[g]
}

// Refresh refloods the node's current membership; the node calls this
// periodically to repair lost announcements.
func (m *Manager) Refresh() { m.announce() }

// HandleAnnouncement processes a group-state packet received from a
// neighbor, applying newer information and reflooding it.
func (m *Manager) HandleAnnouncement(from wire.NodeID, p *wire.Packet) error {
	a, err := UnmarshalAnnouncement(p.Payload)
	if err != nil {
		return err
	}
	if a.Origin == m.self {
		// Our own announcement echoed back. A crash-restarted node's
		// counter starts over while pre-crash announcements with higher
		// sequence numbers still circulate; fast-forward past them and
		// re-announce so the fresh membership supersedes the stale one.
		// Strictly-greater keeps the steady-state echo from re-announcing.
		if a.Seq > m.mySeq {
			m.mySeq = a.Seq
			m.announce()
		}
		return nil
	}
	if last, ok := m.seen[a.Origin]; ok && a.Seq <= last {
		return nil
	}
	m.seen[a.Origin] = a.Seq
	m.lastAnn[a.Origin] = append([]byte(nil), p.Payload...)

	changed := m.applyRemote(a.Origin, a.Groups)
	if changed {
		m.version++
		m.env.GroupsChanged()
	}
	m.env.FloodGroupState(p.Payload, from)
	return nil
}

// applyRemote reconciles an origin's full group set against the previous
// one, returning whether membership changed.
func (m *Manager) applyRemote(origin wire.NodeID, groups []wire.GroupID) bool {
	prev := m.remote[origin]
	next := make(map[wire.GroupID]bool, len(groups))
	for _, g := range groups {
		next[g] = true
	}
	changed := false
	for _, g := range prev {
		if !next[g] {
			m.setMemberRaw(g, origin, false)
			changed = true
		}
	}
	prevSet := make(map[wire.GroupID]bool, len(prev))
	for _, g := range prev {
		prevSet[g] = true
	}
	for _, g := range groups {
		if !prevSet[g] {
			m.setMemberRaw(g, origin, true)
			changed = true
		}
	}
	m.remote[origin] = append([]wire.GroupID(nil), groups...)
	return changed
}

func (m *Manager) setMember(g wire.GroupID, n wire.NodeID, member bool) {
	m.setMemberRaw(g, n, member)
	m.version++
	m.env.GroupsChanged()
}

func (m *Manager) setMemberRaw(g wire.GroupID, n wire.NodeID, member bool) {
	set := m.members[g]
	i := sort.Search(len(set), func(i int) bool { return set[i] >= n })
	present := i < len(set) && set[i] == n
	if member {
		if present {
			return
		}
		set = append(set, 0)
		copy(set[i+1:], set[i:])
		set[i] = n
		m.members[g] = set
		return
	}
	if !present {
		return
	}
	set = append(set[:i], set[i+1:]...)
	if len(set) == 0 {
		delete(m.members, g)
		return
	}
	m.members[g] = set
}

// Resync pushes the latest known announcement of every origin, plus this
// node's own membership, to one neighbor whose link just recovered.
func (m *Manager) Resync(n wire.NodeID) {
	origins := make([]wire.NodeID, 0, len(m.lastAnn))
	for o := range m.lastAnn {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		m.env.SendGroupState(n, m.lastAnn[o])
	}
	m.announce()
}

// announce floods this node's full current membership.
func (m *Manager) announce() {
	m.mySeq++
	groups := make([]wire.GroupID, 0, len(m.local))
	for g := range m.local {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	a := Announcement{Origin: m.self, Seq: m.mySeq, Groups: groups}
	m.env.FloodGroupState(a.Marshal(), 0)
}

package groups

import (
	"math/rand"
	"reflect"
	"testing"

	"sonet/internal/wire"
)

// fabric connects managers with immediate synchronous flooding over a
// clique, which suffices for membership logic tests (ordering and timing
// are exercised at the node level).
type fabric struct {
	envs map[wire.NodeID]*fenv
}

type fenv struct {
	f       *fabric
	self    wire.NodeID
	mgr     *Manager
	changes int
}

func newFabric(nodes ...wire.NodeID) *fabric {
	f := &fabric{envs: make(map[wire.NodeID]*fenv)}
	for _, n := range nodes {
		env := &fenv{f: f, self: n}
		env.mgr = NewManager(env, n)
		f.envs[n] = env
	}
	return f
}

func (e *fenv) FloodGroupState(payload []byte, except wire.NodeID) {
	for peer, env := range e.f.envs {
		if peer == e.self || peer == except {
			continue
		}
		p := &wire.Packet{Type: wire.PTGroupState, Src: e.self, Payload: append([]byte(nil), payload...)}
		if err := env.mgr.HandleAnnouncement(e.self, p); err != nil {
			panic(err)
		}
	}
}

func (e *fenv) SendGroupState(peer wire.NodeID, payload []byte) {
	p := &wire.Packet{Type: wire.PTGroupState, Src: e.self, Payload: append([]byte(nil), payload...)}
	if env, ok := e.f.envs[peer]; ok {
		if err := env.mgr.HandleAnnouncement(e.self, p); err != nil {
			panic(err)
		}
	}
}

func (e *fenv) GroupsChanged() { e.changes++ }

func TestJoinPropagatesToAllNodes(t *testing.T) {
	f := newFabric(1, 2, 3)
	f.envs[2].mgr.Join(100)
	for n, env := range f.envs {
		members := env.mgr.Members(100)
		if len(members) != 1 || members[0] != 2 {
			t.Fatalf("node %v sees members %v, want [2]", n, members)
		}
	}
}

func TestJoinRefcounting(t *testing.T) {
	f := newFabric(1, 2)
	m := f.envs[1].mgr
	m.Join(5)
	m.Join(5)
	m.Leave(5)
	if !m.LocalMember(5) {
		t.Fatal("lost membership with one client remaining")
	}
	if got := f.envs[2].mgr.Members(5); len(got) != 1 {
		t.Fatalf("peer sees %v, want [1]", got)
	}
	m.Leave(5)
	if m.LocalMember(5) {
		t.Fatal("membership survives last leave")
	}
	if got := f.envs[2].mgr.Members(5); len(got) != 0 {
		t.Fatalf("peer sees %v after leave, want []", got)
	}
}

func TestLeaveUnknownGroupIsNoop(t *testing.T) {
	f := newFabric(1)
	f.envs[1].mgr.Leave(42)
	if f.envs[1].changes != 0 {
		t.Fatal("leave of unknown group changed state")
	}
}

func TestMembersSorted(t *testing.T) {
	f := newFabric(1, 2, 3, 4)
	f.envs[3].mgr.Join(7)
	f.envs[1].mgr.Join(7)
	f.envs[4].mgr.Join(7)
	got := f.envs[2].mgr.Members(7)
	want := []wire.NodeID{1, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
}

func TestStaleAnnouncementIgnored(t *testing.T) {
	f := newFabric(1, 2)
	f.envs[1].mgr.Join(9) // seq 1 from origin 1
	f.envs[1].mgr.Join(8) // seq 2
	// Replay an old empty announcement with seq 1.
	old := Announcement{Origin: 1, Seq: 1}
	p := &wire.Packet{Type: wire.PTGroupState, Payload: old.Marshal()}
	if err := f.envs[2].mgr.HandleAnnouncement(1, p); err != nil {
		t.Fatalf("HandleAnnouncement: %v", err)
	}
	if got := f.envs[2].mgr.Members(9); len(got) != 1 {
		t.Fatalf("stale announcement wiped membership: %v", got)
	}
}

func TestFullStateReconciliation(t *testing.T) {
	f := newFabric(1, 2)
	m1 := f.envs[1].mgr
	m1.Join(1)
	m1.Join(2)
	m1.Leave(1)
	m2 := f.envs[2].mgr
	if got := m2.Members(1); len(got) != 0 {
		t.Fatalf("group 1 members = %v, want []", got)
	}
	if got := m2.Members(2); len(got) != 1 {
		t.Fatalf("group 2 members = %v, want [1]", got)
	}
}

func TestVersionAdvances(t *testing.T) {
	f := newFabric(1, 2)
	v0 := f.envs[2].mgr.Version()
	f.envs[1].mgr.Join(3)
	if f.envs[2].mgr.Version() == v0 {
		t.Fatal("version unchanged after remote join")
	}
}

func TestRefreshRepairsLostState(t *testing.T) {
	f := newFabric(1, 2)
	// Simulate a lost announcement by applying state directly to a fresh
	// manager pair: node 2 missed node 1's join.
	lonely := newFabric(1, 2)
	lonely.envs[1].mgr.local[77] = 1
	lonely.envs[1].mgr.setMemberRaw(77, 1, true)
	if got := lonely.envs[2].mgr.Members(77); len(got) != 0 {
		t.Fatalf("premise broken: %v", got)
	}
	lonely.envs[1].mgr.Refresh()
	if got := lonely.envs[2].mgr.Members(77); len(got) != 1 {
		t.Fatalf("refresh did not repair: %v", got)
	}
	_ = f
}

func TestAnnouncementRoundTrip(t *testing.T) {
	a := &Announcement{Origin: 3, Seq: 99, Groups: []wire.GroupID{1, 5, 0xffffffff}}
	got, err := UnmarshalAnnouncement(a.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalAnnouncement: %v", err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", a, got)
	}
	empty := &Announcement{Origin: 1, Seq: 1, Groups: []wire.GroupID{}}
	got, err = UnmarshalAnnouncement(empty.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalAnnouncement(empty): %v", err)
	}
	if got.Origin != 1 || len(got.Groups) != 0 {
		t.Fatalf("empty round trip = %+v", got)
	}
}

func TestAnnouncementTruncatedAndFuzz(t *testing.T) {
	a := &Announcement{Origin: 3, Seq: 99, Groups: []wire.GroupID{1, 2}}
	buf := a.Marshal()
	for n := 0; n < len(buf); n++ {
		if _, err := UnmarshalAnnouncement(buf[:n]); err == nil {
			t.Fatalf("accepted %d/%d-byte prefix", n, len(buf))
		}
	}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		junk := make([]byte, r.Intn(64))
		r.Read(junk)
		_, _ = UnmarshalAnnouncement(junk)
	}
}

func TestOwnAnnouncementIgnored(t *testing.T) {
	f := newFabric(1, 2)
	a := Announcement{Origin: 1, Seq: 100, Groups: []wire.GroupID{4}}
	p := &wire.Packet{Type: wire.PTGroupState, Payload: a.Marshal()}
	if err := f.envs[1].mgr.HandleAnnouncement(2, p); err != nil {
		t.Fatalf("HandleAnnouncement: %v", err)
	}
	if f.envs[1].mgr.LocalMember(4) {
		t.Fatal("own reflected announcement created local membership")
	}
	if got := f.envs[1].mgr.Members(4); len(got) != 0 {
		t.Fatalf("reflected announcement applied: %v", got)
	}
}

func TestRestartFastForwardsAnnouncementSeq(t *testing.T) {
	f := newFabric(1, 2, 3)
	f.envs[2].mgr.Join(7)
	for i := 0; i < 5; i++ {
		f.envs[2].mgr.Refresh() // push node 2's sequence number up
	}
	oldSeq := f.envs[2].mgr.mySeq

	// Crash-restart node 2 with state loss: fresh manager, counter reset,
	// and a re-join of its group.
	fresh := NewManager(f.envs[2], 2)
	f.envs[2].mgr = fresh
	fresh.Join(7)
	if fresh.mySeq >= oldSeq {
		t.Fatalf("fresh manager started with mySeq = %d", fresh.mySeq)
	}
	// Peers ignore the reborn node's low-seq announcements: they still see
	// the pre-crash membership under the old high sequence number... until
	// a stale self-origin echo reaches node 2 and fast-forwards it.
	stale := Announcement{Origin: 2, Seq: oldSeq, Groups: []wire.GroupID{7, 9}}
	p := &wire.Packet{Type: wire.PTGroupState, Src: 1, Payload: stale.Marshal()}
	if err := fresh.HandleAnnouncement(1, p); err != nil {
		t.Fatalf("HandleAnnouncement: %v", err)
	}
	if fresh.mySeq <= oldSeq {
		t.Fatalf("mySeq = %d after stale echo, want > %d", fresh.mySeq, oldSeq)
	}
	// The fast-forwarded re-announcement must have superseded the stale
	// state everywhere: group 9 (pre-crash only) gone, group 7 present.
	for n, env := range f.envs {
		if got := env.mgr.Members(9); len(got) != 0 {
			t.Fatalf("node %v still sees stale group 9 members %v", n, got)
		}
		if got := env.mgr.Members(7); len(got) != 1 || got[0] != 2 {
			t.Fatalf("node %v sees group 7 members %v, want [2]", n, got)
		}
	}
	// The steady-state echo (Seq == mySeq) must not re-announce.
	cur := fresh.mySeq
	echo := Announcement{Origin: 2, Seq: cur, Groups: []wire.GroupID{7}}
	p = &wire.Packet{Type: wire.PTGroupState, Src: 1, Payload: echo.Marshal()}
	if err := fresh.HandleAnnouncement(1, p); err != nil {
		t.Fatalf("HandleAnnouncement echo: %v", err)
	}
	if fresh.mySeq != cur {
		t.Fatalf("steady-state echo advanced mySeq %d -> %d", cur, fresh.mySeq)
	}
}

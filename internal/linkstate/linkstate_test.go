package linkstate

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"sonet/internal/sim"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// world wires Managers together through an in-test control fabric with
// per-link latency, link kill switches, and per-path kill switches for
// multihoming tests.
type world struct {
	t       *testing.T
	sched   *sim.Scheduler
	graph   *topology.Graph
	envs    map[wire.NodeID]*nodeEnv
	latency time.Duration
	// deadLinks drops every frame and LSA crossing the link.
	deadLinks map[wire.LinkID]bool
	// deadLSALinks drops only LSA traffic crossing the link (flood and
	// resync); hellos keep flowing. Models the brown-out where control
	// liveness survives but a specific flood is lost.
	deadLSALinks map[wire.LinkID]bool
	// deadPaths drops frames sent on a specific (link, path) pair.
	deadPaths map[pathKey]bool
	// pathCount is the number of underlay paths per link (default 1).
	pathCount int
}

type pathKey struct {
	link wire.LinkID
	path uint8
}

type nodeEnv struct {
	w           *world
	self        wire.NodeID
	mgr         *Manager
	curPath     map[wire.NodeID]uint8
	viewChanges int
}

func newWorld(t *testing.T, g *topology.Graph, cfg Config, pathCount int) *world {
	t.Helper()
	w := newQuietWorld(t, g, cfg, pathCount)
	for _, env := range w.envs {
		env.mgr.Start()
	}
	return w
}

// newQuietWorld builds the fabric without starting any manager: large-scale
// tests start only the managers whose active probing they need, while every
// other node still answers hellos and refloods LSAs passively.
func newQuietWorld(t *testing.T, g *topology.Graph, cfg Config, pathCount int) *world {
	t.Helper()
	w := &world{
		t:            t,
		sched:        sim.NewScheduler(77),
		graph:        g,
		envs:         make(map[wire.NodeID]*nodeEnv),
		latency:      10 * time.Millisecond,
		deadLinks:    make(map[wire.LinkID]bool),
		deadLSALinks: make(map[wire.LinkID]bool),
		deadPaths:    make(map[pathKey]bool),
		pathCount:    pathCount,
	}
	for _, n := range g.Nodes() {
		env := &nodeEnv{w: w, self: n, curPath: make(map[wire.NodeID]uint8)}
		env.mgr = NewManager(env, n, topology.NewView(g), cfg)
		w.envs[n] = env
		for _, lid := range g.Incident(n) {
			l, _ := g.Link(lid)
			peer, _ := l.Other(n)
			env.mgr.AddNeighbor(peer, lid)
		}
	}
	return w
}

func (w *world) linkBetween(a, b wire.NodeID) wire.LinkID {
	l, ok := w.graph.LinkBetween(a, b)
	if !ok {
		w.t.Fatalf("no link %v-%v", a, b)
	}
	return l.ID
}

func (e *nodeEnv) Clock() sim.Clock { return e.w.sched }

func (e *nodeEnv) SendControl(neighbor wire.NodeID, f *wire.Frame) {
	lid := e.w.linkBetween(e.self, neighbor)
	if e.w.deadLinks[lid] {
		return
	}
	if e.w.deadPaths[pathKey{link: lid, path: e.curPath[neighbor]}] {
		return
	}
	cp := *f
	e.w.sched.After(e.w.latency, func() {
		peer := e.w.envs[neighbor]
		peer.mgr.HandleControl(e.self, &cp)
	})
}

func (e *nodeEnv) FloodLSA(payload []byte, except wire.NodeID) {
	for _, lid := range e.w.graph.Incident(e.self) {
		l, _ := e.w.graph.Link(lid)
		peer, _ := l.Other(e.self)
		if peer == except {
			continue
		}
		if e.w.deadLinks[lid] || e.w.deadLSALinks[lid] {
			continue
		}
		if e.w.deadPaths[pathKey{link: lid, path: e.curPath[peer]}] {
			continue
		}
		data := append([]byte(nil), payload...)
		from := e.self
		e.w.sched.After(e.w.latency, func() {
			p := &wire.Packet{Type: wire.PTLinkState, Src: from, Payload: data}
			if err := e.w.envs[peer].mgr.HandleLSA(from, p); err != nil {
				e.w.t.Errorf("HandleLSA: %v", err)
			}
		})
	}
}

func (e *nodeEnv) SendLSA(neighbor wire.NodeID, payload []byte) {
	lid := e.w.linkBetween(e.self, neighbor)
	if e.w.deadLinks[lid] || e.w.deadLSALinks[lid] || e.w.deadPaths[pathKey{link: lid, path: e.curPath[neighbor]}] {
		return
	}
	data := append([]byte(nil), payload...)
	from := e.self
	e.w.sched.After(e.w.latency, func() {
		p := &wire.Packet{Type: wire.PTLinkState, Src: from, Payload: data}
		if err := e.w.envs[neighbor].mgr.HandleLSA(from, p); err != nil {
			e.w.t.Errorf("HandleLSA: %v", err)
		}
	})
}

func (e *nodeEnv) PathCount(wire.NodeID) int { return e.w.pathCount }

func (e *nodeEnv) SetPath(neighbor wire.NodeID, path uint8) {
	e.curPath[neighbor] = path
}

func (e *nodeEnv) ViewChanged() { e.viewChanges++ }

func chain3(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	if _, err := g.AddLink(1, 2, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(2, 3, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHelloKeepsLinksUp(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	w.sched.RunFor(3 * time.Second)
	for n, env := range w.envs {
		for _, lid := range w.graph.Incident(n) {
			if !env.mgr.View().Usable(lid) {
				t.Fatalf("node %v sees link %d down on healthy network", n, lid)
			}
		}
	}
	rtt, ok := w.envs[1].mgr.NeighborRTT(2)
	if !ok {
		t.Fatal("no RTT for neighbor")
	}
	if rtt != 20*time.Millisecond {
		t.Fatalf("RTT = %v, want 20ms", rtt)
	}
	if w.envs[1].mgr.Stats().DownDetections != 0 {
		t.Fatal("down detection on healthy network")
	}
}

func TestLinkFailureDetectedSubSecond(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	w.sched.RunFor(time.Second)
	lid := w.linkBetween(1, 2)
	failAt := w.sched.Now()
	w.deadLinks[lid] = true

	// Detection within HelloMiss × HelloInterval plus one interval slack.
	var detectedAt time.Duration
	for w.sched.Now() < failAt+2*time.Second {
		w.sched.RunFor(10 * time.Millisecond)
		if !w.envs[2].mgr.View().Usable(lid) {
			detectedAt = w.sched.Now()
			break
		}
	}
	if detectedAt == 0 {
		t.Fatal("failure never detected")
	}
	if d := detectedAt - failAt; d > 600*time.Millisecond {
		t.Fatalf("detection took %v, want sub-second (≈300ms)", d)
	}
	// The third node learns via flooding.
	w.sched.RunFor(time.Second)
	if w.envs[3].mgr.View().Usable(lid) {
		t.Fatal("node 3 never learned of remote link failure")
	}
	if w.envs[2].mgr.Stats().DownDetections != 1 {
		t.Fatalf("DownDetections = %d, want 1", w.envs[2].mgr.Stats().DownDetections)
	}
}

func TestLinkRecoveryDetected(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	lid := w.linkBetween(1, 2)
	w.sched.RunFor(time.Second)
	w.deadLinks[lid] = true
	w.sched.RunFor(2 * time.Second)
	if w.envs[3].mgr.View().Usable(lid) {
		t.Fatal("failure not propagated")
	}
	w.deadLinks[lid] = false
	w.sched.RunFor(4 * time.Second)
	for n := wire.NodeID(1); n <= 3; n++ {
		if !w.envs[n].mgr.View().Usable(lid) {
			t.Fatalf("node %v did not learn of recovery", n)
		}
	}
	if w.envs[2].mgr.Stats().UpDetections == 0 {
		t.Fatal("no up detection recorded")
	}
}

func TestMultihomingFailoverKeepsLinkUp(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 2)
	lid := w.linkBetween(1, 2)
	w.sched.RunFor(time.Second)
	// Kill path 0 in both directions; path 1 stays healthy.
	w.deadPaths[pathKey{link: lid, path: 0}] = true
	w.sched.RunFor(3 * time.Second)
	if !w.envs[1].mgr.View().Usable(lid) || !w.envs[2].mgr.View().Usable(lid) {
		t.Fatal("dual-homed link declared down despite healthy second path")
	}
	if w.envs[1].mgr.Stats().Failovers == 0 && w.envs[2].mgr.Stats().Failovers == 0 {
		t.Fatal("no failover recorded")
	}
	if w.envs[1].mgr.Stats().DownDetections+w.envs[2].mgr.Stats().DownDetections != 0 {
		t.Fatal("down detection despite multihoming")
	}
}

func TestAllPathsDeadDeclaresDown(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 2)
	lid := w.linkBetween(1, 2)
	w.sched.RunFor(time.Second)
	w.deadPaths[pathKey{link: lid, path: 0}] = true
	w.deadPaths[pathKey{link: lid, path: 1}] = true
	w.sched.RunFor(3 * time.Second)
	if w.envs[1].mgr.View().Usable(lid) {
		t.Fatal("link with all paths dead still up")
	}
}

func TestStaleLSAIgnored(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	w.sched.RunFor(time.Second)
	mgr3 := w.envs[3].mgr
	lid := w.linkBetween(1, 2)
	// Deliver a forged "down" advertisement with an old sequence.
	adv := Advertisement{Origin: 1, Seq: 1, Entries: []Entry{{Link: lid, Up: false}}}
	p := &wire.Packet{Type: wire.PTLinkState, Src: 1, Payload: adv.Marshal()}
	if err := mgr3.HandleLSA(2, p); err != nil {
		t.Fatalf("HandleLSA: %v", err)
	}
	if !mgr3.View().Usable(lid) {
		t.Fatal("stale sequence advertisement was applied")
	}
}

func TestNonEndpointLSARejected(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	lid12 := w.linkBetween(1, 2)
	// Node 3 advertises a link it is not an endpoint of: must be ignored.
	adv := Advertisement{Origin: 3, Seq: 1 << 30, Entries: []Entry{{Link: lid12, Up: false}}}
	p := &wire.Packet{Type: wire.PTLinkState, Src: 3, Payload: adv.Marshal()}
	if err := w.envs[1].mgr.HandleLSA(2, p); err != nil {
		t.Fatalf("HandleLSA: %v", err)
	}
	if !w.envs[1].mgr.View().Usable(lid12) {
		t.Fatal("non-endpoint advertisement was applied")
	}
}

func TestVersionAdvancesOnChange(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	w.sched.RunFor(500 * time.Millisecond)
	v0 := w.envs[2].mgr.Version()
	w.deadLinks[w.linkBetween(1, 2)] = true
	w.sched.RunFor(2 * time.Second)
	if w.envs[2].mgr.Version() == v0 {
		t.Fatal("version did not advance on link failure")
	}
}

func TestLossEstimation(t *testing.T) {
	cfg := Config{LossWindow: 40}
	w := newWorld(t, chain3(t), cfg, 1)
	// Drop ~30% of hello probes from 1→2 only.
	lid := w.linkBetween(1, 2)
	env1 := w.envs[1]
	origSend := 0
	_ = origSend
	r := rand.New(rand.NewSource(4))
	// Wrap by replacing deadPaths per frame is not possible; instead use
	// a stochastic kill on the path by toggling deadPaths each event.
	// Simpler: interpose on the scheduler via a custom env method is not
	// available, so simulate loss by toggling the dead flag around each
	// hello tick.
	stop := false
	var toggle func()
	toggle = func() {
		if stop {
			return
		}
		w.deadPaths[pathKey{link: lid, path: 0}] = r.Float64() < 0.30
		w.sched.After(env1.mgr.cfg.HelloInterval, toggle)
	}
	w.sched.After(0, toggle)
	w.sched.RunFor(30 * time.Second)
	stop = true
	st := env1.mgr.neighbors[2]
	if st.loss < 0.05 || st.loss > 0.30 {
		t.Fatalf("loss estimate %.3f, want around 0.15 (half of 30%% round-trip miss)", st.loss)
	}
}

func TestAdvertisementRoundTrip(t *testing.T) {
	adv := &Advertisement{
		Origin: 7,
		Seq:    123456,
		Entries: []Entry{
			{Link: 3, Up: true, Latency: 12345 * time.Microsecond, Loss: 0.0123},
			{Link: 250, Up: false, Latency: 50 * time.Millisecond, Loss: 1},
		},
	}
	got, err := UnmarshalAdvertisement(adv.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalAdvertisement: %v", err)
	}
	if !reflect.DeepEqual(adv, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", adv, got)
	}
}

func TestAdvertisementTruncated(t *testing.T) {
	adv := &Advertisement{Origin: 1, Seq: 2, Entries: []Entry{{Link: 1, Up: true}}}
	buf := adv.Marshal()
	for n := 0; n < len(buf); n++ {
		if _, err := UnmarshalAdvertisement(buf[:n]); err == nil {
			t.Fatalf("accepted %d/%d-byte prefix", n, len(buf))
		}
	}
}

func TestAdvertisementFuzzNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 1000; i++ {
		buf := make([]byte, r.Intn(100))
		r.Read(buf)
		_, _ = UnmarshalAdvertisement(buf)
	}
}

func TestStopCancelsTimers(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	w.sched.RunFor(time.Second)
	for _, env := range w.envs {
		env.mgr.Stop()
	}
	sent := w.envs[1].mgr.Stats().HellosSent
	w.sched.RunFor(5 * time.Second)
	if got := w.envs[1].mgr.Stats().HellosSent; got != sent {
		t.Fatalf("hellos kept flowing after Stop: %d → %d", sent, got)
	}
}

func TestLossFailoverRehomesDegradedLink(t *testing.T) {
	cfg := Config{LossWindow: 30, LossFailover: 0.15}
	w := newWorld(t, chain3(t), cfg, 2)
	lid := w.linkBetween(1, 2)
	w.sched.RunFor(time.Second)
	// Path 0 becomes a 40% brown-out; path 1 stays clean. Hellos mostly
	// survive, so only loss-threshold re-homing can move the link.
	r := rand.New(rand.NewSource(6))
	stop := false
	var toggle func()
	toggle = func() {
		if stop {
			return
		}
		w.deadPaths[pathKey{link: lid, path: 0}] = r.Float64() < 0.40
		w.sched.After(50*time.Millisecond, toggle)
	}
	w.sched.After(0, toggle)
	w.sched.RunFor(15 * time.Second)
	stop = true
	env1 := w.envs[1]
	if env1.mgr.Stats().Failovers == 0 && w.envs[2].mgr.Stats().Failovers == 0 {
		t.Fatal("no loss-driven failover despite 40% brown-out")
	}
	if !env1.mgr.NeighborUp(2) {
		t.Fatal("link declared down instead of re-homed")
	}
	// At least one endpoint moved off the degraded path.
	if env1.curPath[2] == 0 && w.envs[2].curPath[1] == 0 {
		t.Fatal("both endpoints still on the degraded path")
	}
}

func TestLossFailoverDisabledWithSinglePath(t *testing.T) {
	cfg := Config{LossWindow: 20, LossFailover: 0.15}
	w := newWorld(t, chain3(t), cfg, 1)
	lid := w.linkBetween(1, 2)
	r := rand.New(rand.NewSource(6))
	stop := false
	var toggle func()
	toggle = func() {
		if stop {
			return
		}
		w.deadPaths[pathKey{link: lid, path: 0}] = r.Float64() < 0.40
		w.sched.After(50*time.Millisecond, toggle)
	}
	w.sched.After(0, toggle)
	w.sched.RunFor(10 * time.Second)
	stop = true
	if w.envs[1].mgr.Stats().Failovers != 0 {
		t.Fatal("failover recorded on a single-path link")
	}
}

func TestResyncOnLinkRecovery(t *testing.T) {
	// Refresh is effectively off: only the recovery resync can repair a
	// partition-era divergence.
	cfg := Config{RefreshInterval: 10 * time.Minute}
	w := newWorld(t, chain3(t), cfg, 1)
	lid12 := w.linkBetween(1, 2)
	lid23 := w.linkBetween(2, 3)
	w.sched.RunFor(time.Second)

	// Partition node 1, then lose link 2-3 behind its back.
	w.deadLinks[lid12] = true
	w.sched.RunFor(time.Second)
	w.deadLinks[lid23] = true
	w.sched.RunFor(2 * time.Second)
	if w.envs[1].mgr.View().Usable(lid23) != true {
		t.Fatal("premise: partitioned node 1 must still believe 2-3 is up")
	}
	if w.envs[2].mgr.View().Usable(lid23) {
		t.Fatal("premise: node 2 must have detected 2-3 down")
	}

	// Heal the partition: node 2's recovery resync must teach node 1
	// about 2-3 without waiting for any refresh.
	w.deadLinks[lid12] = false
	w.sched.RunFor(3 * time.Second)
	if w.envs[1].mgr.View().Usable(lid23) {
		t.Fatal("node 1 never learned of 2-3 failure after partition healed")
	}
}

func TestHealthCountersTrackAdversity(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	w.sched.RunFor(2 * time.Second)
	h := w.envs[1].mgr.Health()
	if h.HellosSent == 0 {
		t.Fatal("no hellos counted on a live link")
	}
	if h.LSAFloods == 0 {
		t.Fatal("no LSA floods counted despite refresh cycles")
	}
	if h.HellosMissed != 0 || h.Reconvergences != 0 {
		t.Fatalf("quiet world shows distress: %+v", h)
	}
	// Kill the 1-2 link: node 1 must miss hellos, declare the link down,
	// and reconverge its view.
	w.deadLinks[w.linkBetween(1, 2)] = true
	w.sched.RunFor(2 * time.Second)
	h = w.envs[1].mgr.Health()
	if h.HellosMissed == 0 {
		t.Fatal("dead link produced no missed hellos")
	}
	if h.Reconvergences == 0 {
		t.Fatal("down detection did not count a reconvergence")
	}
	if h.MissRatio() <= 0 {
		t.Fatalf("MissRatio = %v, want > 0", h.MissRatio())
	}
}

func TestRestartFastForwardsOwnSeq(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	w.sched.RunFor(3 * time.Second) // refresh cycles push sequence numbers up
	env2 := w.envs[2]
	oldSeq := env2.mgr.mySeq
	if oldSeq < 2 {
		t.Fatalf("precondition: mySeq = %d, want refresh-driven growth", oldSeq)
	}

	// Crash-restart node 2 with total state loss: a fresh manager whose
	// sequence counter starts over while peers still hold the old one.
	env2.mgr.Stop()
	fresh := NewManager(env2, 2, topology.NewView(w.graph), Config{})
	for _, lid := range w.graph.Incident(wire.NodeID(2)) {
		l, _ := w.graph.Link(lid)
		peer, _ := l.Other(2)
		fresh.AddNeighbor(peer, lid)
	}
	env2.mgr = fresh
	fresh.Start()
	if fresh.mySeq >= oldSeq {
		t.Fatalf("fresh manager started with mySeq = %d", fresh.mySeq)
	}

	// A peer resyncs the reborn node with its own stale advertisement (a
	// pre-crash flood still circulating): the node must fast-forward past
	// it and re-originate, so peers accept its fresh state again.
	stale := Advertisement{Origin: 2, Seq: oldSeq}
	p := &wire.Packet{Type: wire.PTLinkState, Src: 1, Payload: stale.Marshal()}
	if err := fresh.HandleLSA(1, p); err != nil {
		t.Fatalf("HandleLSA: %v", err)
	}
	if fresh.mySeq <= oldSeq {
		t.Fatalf("mySeq = %d after stale echo, want > %d", fresh.mySeq, oldSeq)
	}
	w.sched.RunFor(time.Second)
	if got := w.envs[1].mgr.seen[2]; got <= oldSeq {
		t.Fatalf("peer still holds pre-crash seq %d, re-origination not accepted (seen=%d)", oldSeq, got)
	}
}

func TestSteadyStateEchoDoesNotRefloodStorm(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 1)
	w.sched.RunFor(time.Second)
	m := w.envs[2].mgr
	before := m.stats.LSAsSent
	// An echo of the node's CURRENT advertisement (Seq == mySeq) is the
	// common case in a flood with cycles; it must not trigger another
	// origination, or every flood would feed the next.
	echo := Advertisement{Origin: 2, Seq: m.mySeq}
	p := &wire.Packet{Type: wire.PTLinkState, Src: 1, Payload: echo.Marshal()}
	if err := m.HandleLSA(1, p); err != nil {
		t.Fatalf("HandleLSA: %v", err)
	}
	if m.stats.LSAsSent != before {
		t.Fatal("steady-state echo triggered a re-origination")
	}
}

// TestHelloCarriesSessionEpoch is the regression test for the asymmetric
// link-session reset black hole: hellos must transport the sender's
// link-session epoch in the Seq upper bits so a peer that never saw a
// hello transition still learns the other side reset its endpoints —
// without disturbing the path index carried in the low byte.
func TestHelloCarriesSessionEpoch(t *testing.T) {
	w := newWorld(t, chain3(t), Config{}, 2)
	epoch1 := uint32(0)
	w.envs[1].mgr.SetSessionEpoch(func(wire.NodeID) uint32 { return epoch1 })
	var got []uint32
	w.envs[2].mgr.SetOnPeerEpoch(func(n wire.NodeID, e uint32) {
		if n == 1 {
			got = append(got, e)
		}
	})
	w.sched.RunFor(time.Second)
	if len(got) == 0 {
		t.Fatal("peer epoch callback never fired")
	}
	for _, e := range got {
		if e != 0 {
			t.Fatalf("epoch %d before any reset, want 0", e)
		}
	}
	// Simulate a one-sided reset on node 1: only its advertised epoch
	// changes; no hello transition happens anywhere. Drain hellos already
	// in flight with the old epoch before asserting.
	epoch1 = 7
	w.sched.RunFor(100 * time.Millisecond)
	got = got[:0]
	w.sched.RunFor(time.Second)
	if len(got) == 0 {
		t.Fatal("peer epoch callback stopped firing")
	}
	for _, e := range got {
		if e != 7 {
			t.Fatalf("peer saw epoch %d after reset, want 7", e)
		}
	}
	// The path index in the low byte must survive epoch stamping: node 1
	// owns link 1-2 (lower ID) and node 2 must still adopt its path.
	lid := w.linkBetween(1, 2)
	w.deadPaths[pathKey{link: lid, path: 0}] = true
	w.sched.RunFor(2 * time.Second)
	if !w.envs[2].mgr.View().Usable(lid) {
		t.Fatal("multihoming failover broken with epoch-stamped hellos")
	}
	if w.envs[2].curPath[1] != 1 {
		t.Fatalf("node 2 on path %d, want 1 (owner's choice via hello low byte)", w.envs[2].curPath[1])
	}
}

func TestAdvertisementDeltaRoundTrip(t *testing.T) {
	adv := &Advertisement{
		Origin: 9,
		Seq:    0xfffffff0,
		Delta:  true,
		Entries: []Entry{
			{Link: 42, Up: false, Latency: 7 * time.Millisecond, Loss: 0.5},
		},
	}
	got, err := UnmarshalAdvertisement(adv.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalAdvertisement: %v", err)
	}
	if !reflect.DeepEqual(adv, got) {
		t.Fatalf("delta round trip mismatch:\n in: %+v\nout: %+v", adv, got)
	}
}

// TestDownDetectionFloodsDeltaApplied disables the periodic refresh so the
// only way a remote node can learn of a failure is the delta flood the
// detecting endpoint originates.
func TestDownDetectionFloodsDeltaApplied(t *testing.T) {
	cfg := Config{RefreshInterval: 10 * time.Minute}
	w := newWorld(t, chain3(t), cfg, 1)
	lid12 := w.linkBetween(1, 2)
	w.sched.RunFor(time.Second)
	w.deadLinks[lid12] = true
	w.sched.RunFor(2 * time.Second)
	if w.envs[3].mgr.View().Usable(lid12) {
		t.Fatal("node 3 never learned of the failure (refresh disabled: only the delta could tell it)")
	}
	if got := w.envs[2].mgr.Stats().DeltaLSAsSent; got == 0 {
		t.Fatal("down detection did not originate a delta advertisement")
	}
	if w.envs[3].mgr.Health().DeltaLSAFloods == 0 {
		t.Fatal("node 3 applied the change but counted no delta flood")
	}
}

// TestDeltaDropFullRefreshFallback loses a delta in a brown-out — LSA
// traffic toward node 3 is dropped while hellos keep the 2-3 link alive —
// and asserts the periodic full refresh repairs the divergence once the
// flood path heals.
func TestDeltaDropFullRefreshFallback(t *testing.T) {
	cfg := Config{RefreshInterval: time.Second}
	w := newWorld(t, chain3(t), cfg, 1)
	lid12 := w.linkBetween(1, 2)
	lid23 := w.linkBetween(2, 3)
	w.sched.RunFor(time.Second)

	w.deadLSALinks[lid23] = true
	w.deadLinks[lid12] = true
	w.sched.RunFor(1500 * time.Millisecond)
	if w.envs[2].mgr.Stats().DeltaLSAsSent == 0 {
		t.Fatal("down detection did not originate a delta advertisement")
	}
	if !w.envs[3].mgr.View().Usable(lid12) {
		t.Fatal("premise: node 3 must still believe 1-2 is up — its delta was dropped")
	}

	// The flood path heals. Nothing re-floods the lost delta; only the
	// anti-entropy full refresh can repair node 3, within one refresh
	// interval plus propagation slack.
	w.deadLSALinks[lid23] = false
	w.sched.RunFor(2 * time.Second)
	if w.envs[3].mgr.View().Usable(lid12) {
		t.Fatal("full-refresh fallback never repaired the dropped delta")
	}
}

// ringGraph builds an n-node ring: the sparsest connected topology, so a
// single link failure forces every node to reroute the long way around.
func ringGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	for i := 1; i < n; i++ {
		if _, err := g.AddLink(wire.NodeID(i), wire.NodeID(i+1), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddLink(wire.NodeID(n), 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRingReconvergesAt1kNodes drives a single-link failure and recovery
// through a 1000-node ring. Only the two endpoints of the churned link run
// active hello probing; the other 998 managers participate passively,
// answering hellos and reflooding LSAs — which is exactly the work the
// flood imposes on bystanders. With the refresh disabled, agreement across
// all 1000 views within the convergence bound can only come from the delta
// floods (failure) and the recovery full flood.
func TestRingReconvergesAt1kNodes(t *testing.T) {
	const n = 1000
	cfg := Config{RefreshInterval: 10 * time.Minute}
	w := newQuietWorld(t, ringGraph(t, n), cfg, 1)
	w.latency = 100 * time.Microsecond
	lid := w.linkBetween(1, 2)
	w.envs[1].mgr.Start()
	w.envs[2].mgr.Start()
	w.sched.RunFor(time.Second)

	w.deadLinks[lid] = true
	w.sched.RunFor(3500 * time.Millisecond)
	for id := wire.NodeID(1); id <= n; id++ {
		if w.envs[id].mgr.View().Usable(lid) {
			t.Fatalf("node %d still believes link 1-2 is up 3.5s after failure", id)
		}
	}
	if w.envs[1].mgr.Stats().DeltaLSAsSent == 0 && w.envs[2].mgr.Stats().DeltaLSAsSent == 0 {
		t.Fatal("no delta advertisement originated for the single-link failure")
	}
	if w.envs[n/2].mgr.Health().DeltaLSAFloods == 0 {
		t.Fatal("antipodal node never reflooded a delta")
	}

	w.deadLinks[lid] = false
	w.sched.RunFor(3500 * time.Millisecond)
	for id := wire.NodeID(1); id <= n; id++ {
		if !w.envs[id].mgr.View().Usable(lid) {
			t.Fatalf("node %d never learned of the recovery", id)
		}
	}
}

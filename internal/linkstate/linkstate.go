// Package linkstate implements the Connectivity Graph Maintenance
// component of the overlay node software architecture (Fig. 2): hello
// probing of neighbors, failure detection, multihomed path failover,
// measurement of per-link latency and loss, and sequence-numbered flooding
// of link-state advertisements so that every overlay node maintains the
// same global view of the overlay's condition (§II-B).
//
// Because a structured overlay has only a few tens of nodes, the full
// global state is small and can be updated in a timely manner, giving the
// overlay its sub-second rerouting (§II-A) in contrast to BGP's tens of
// seconds.
package linkstate

import (
	"fmt"
	"sort"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/sim"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// epochMask bounds the link-session epoch carried in hello Seq values:
// the low byte holds the underlay path index, the upper 24 bits the
// sender's epoch (wrap-around after 16M resets is harmless — equality
// and adoption only need the epochs of the two live endpoints to agree).
const epochMask = 0xffffff

// Env is what the manager needs from its host overlay node.
type Env interface {
	// Clock returns the node's clock.
	Clock() sim.Clock
	// SendControl transmits a control frame (hello or hello-ack) to a
	// neighbor over the link's current path.
	SendControl(neighbor wire.NodeID, f *wire.Frame)
	// FloodLSA sends a link-state packet to every current neighbor except
	// the one it came from (zero to send to all).
	FloodLSA(payload []byte, except wire.NodeID)
	// SendLSA sends a link-state packet to one neighbor (database resync
	// on link recovery).
	SendLSA(neighbor wire.NodeID, payload []byte)
	// PathCount returns how many distinct underlay paths (ISP choices)
	// exist for the link to a neighbor (§II-A multihoming).
	PathCount(neighbor wire.NodeID) int
	// SetPath switches the link to a neighbor onto underlay path index
	// path.
	SetPath(neighbor wire.NodeID, path uint8)
	// ViewChanged notifies the node that the shared view changed and
	// routes must be recomputed.
	ViewChanged()
}

// Config parameterizes connectivity maintenance.
type Config struct {
	// HelloInterval is the neighbor probe period. Detection latency is
	// roughly HelloInterval × HelloMiss per path, so the defaults detect
	// single-homed link failures in ~300 ms.
	HelloInterval time.Duration
	// HelloMiss is how many consecutive unanswered hellos trigger
	// failover to the next path, or a down declaration when no paths
	// remain.
	HelloMiss int
	// DownProbeInterval is the probe period for links declared down.
	DownProbeInterval time.Duration
	// RefreshInterval is the period of full link-state refloods, which
	// repair any lost advertisements.
	RefreshInterval time.Duration
	// LossWindow is the number of hellos over which loss is estimated.
	LossWindow int
	// LatencyChangeFrac is the relative latency change that triggers an
	// advertisement outside the refresh cycle.
	LatencyChangeFrac float64
	// LossChangeAbs is the absolute loss-rate change that triggers an
	// advertisement outside the refresh cycle.
	LossChangeAbs float64
	// LossFailover is the measured one-way loss rate at which a
	// multihomed link re-homes onto its next underlay path (§II-A:
	// "choosing a different combination of ISPs to use for a given
	// overlay link"). Zero disables loss-driven failover; hard outages
	// still fail over via missed hellos.
	LossFailover float64
}

// DefaultConfig returns production defaults (sub-second detection).
func DefaultConfig() Config {
	return Config{
		HelloInterval:     100 * time.Millisecond,
		HelloMiss:         3,
		DownProbeInterval: time.Second,
		RefreshInterval:   2 * time.Second,
		LossWindow:        50,
		LatencyChangeFrac: 0.25,
		LossChangeAbs:     0.02,
		LossFailover:      0.15,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HelloInterval <= 0 {
		c.HelloInterval = d.HelloInterval
	}
	if c.HelloMiss <= 0 {
		c.HelloMiss = d.HelloMiss
	}
	if c.DownProbeInterval <= 0 {
		c.DownProbeInterval = d.DownProbeInterval
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = d.RefreshInterval
	}
	if c.LossWindow <= 0 {
		c.LossWindow = d.LossWindow
	}
	if c.LatencyChangeFrac <= 0 {
		c.LatencyChangeFrac = d.LatencyChangeFrac
	}
	if c.LossChangeAbs <= 0 {
		c.LossChangeAbs = d.LossChangeAbs
	}
	if c.LossFailover == 0 {
		c.LossFailover = d.LossFailover
	}
	return c
}

// Stats counts connectivity-maintenance activity.
type Stats struct {
	// HellosSent counts hello probes transmitted.
	HellosSent uint64
	// LSAsSent counts link-state advertisements originated (full and
	// delta).
	LSAsSent uint64
	// DeltaLSAsSent counts the subset of originated advertisements that
	// were single-link deltas.
	DeltaLSAsSent uint64
	// LSAsForwarded counts advertisements reflooded for other origins.
	LSAsForwarded uint64
	// Failovers counts multihoming path switches.
	Failovers uint64
	// DownDetections counts links declared down.
	DownDetections uint64
	// UpDetections counts links declared back up.
	UpDetections uint64
	// NonMemberLSAsRejected counts advertisements dropped because their
	// origin is not a current overlay member (dynamic membership).
	NonMemberLSAsRejected uint64
}

// neighborState tracks hello liveness for one adjacent overlay link.
type neighborState struct {
	linkID wire.LinkID
	// owner is true when this node is the link's lower-ID endpoint: the
	// owner is the single source of truth for the link's advertised
	// latency and loss, so every node routes on identical values and
	// equal-cost decisions cannot disagree (divergent per-endpoint
	// measurements caused transient forwarding loops).
	owner   bool
	up      bool
	curPath uint8
	missed  int
	// disabled suspends hello probing entirely: the neighbor has left the
	// overlay (membership), so the link is administratively down rather
	// than failure-detected down, and down-probing would be wasted.
	disabled bool
	// pendingAck marks a hello in flight awaiting its ack.
	pendingAck bool
	// rtt is the smoothed round-trip estimate.
	rtt time.Duration
	// window loss accounting.
	helloCount int
	ackCount   int
	loss       float64
	// advertised values, to rate-limit LSA floods.
	advLatency time.Duration
	advLoss    float64
	advUp      bool
	timer      sim.Timer
}

// Manager is the Connectivity Graph Maintenance component for one node.
// All methods must be called from the node's executor.
type Manager struct {
	env  Env
	self wire.NodeID
	view *topology.View
	cfg  Config

	neighbors map[wire.NodeID]*neighborState
	// order lists neighbors in ascending ID order for deterministic
	// iteration.
	order []wire.NodeID
	// seen tracks the highest advertisement sequence per origin.
	seen map[wire.NodeID]uint32
	// lastAdv retains the latest advertisement payload per origin, so a
	// recovering link can be brought up to date immediately instead of
	// waiting for every origin's next refresh.
	lastAdv map[wire.NodeID][]byte
	mySeq   uint32
	stats   Stats
	health  metrics.LinkHealthStats
	closed  bool
	// sessionEpoch, when set, supplies the link-session epoch advertised
	// in hellos; onPeerEpoch, when set, receives the epoch carried by
	// each hello from a neighbor.
	sessionEpoch func(wire.NodeID) uint32
	onPeerEpoch  func(wire.NodeID, uint32)
	// onNeighborState, when set, is invoked after an adjacent link is
	// declared down or back up.
	onNeighborState func(wire.NodeID, bool)
	// memberCheck, when set, gates advertisement acceptance on overlay
	// membership: advertisements from origins the check rejects are
	// dropped without being applied or reflooded.
	memberCheck func(wire.NodeID) bool
	// started records that Start ran, so neighbors registered afterwards
	// (runtime joins) begin probing immediately.
	started bool
	// version increments on every view change; routing caches key on it.
	version uint64

	refreshTimer sim.Timer
}

// NewManager returns a manager for node self sharing view. The view must
// already contain the designed topology; neighbors are registered with
// AddNeighbor before Start.
func NewManager(env Env, self wire.NodeID, view *topology.View, cfg Config) *Manager {
	return &Manager{
		env:       env,
		self:      self,
		view:      view,
		cfg:       cfg.withDefaults(),
		neighbors: make(map[wire.NodeID]*neighborState),
		seen:      make(map[wire.NodeID]uint32),
		lastAdv:   make(map[wire.NodeID][]byte),
	}
}

// AddNeighbor registers the adjacent link to a neighbor.
func (m *Manager) AddNeighbor(n wire.NodeID, link wire.LinkID) {
	st := m.view.State[link]
	m.neighbors[n] = &neighborState{
		linkID:     link,
		owner:      m.self < n,
		up:         true,
		advUp:      true,
		advLatency: st.Latency,
		rtt:        2 * st.Latency,
	}
	m.order = append(m.order, n)
	sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })
}

// Start begins hello probing and periodic refresh flooding, announcing the
// node's initial link states immediately.
func (m *Manager) Start() {
	m.started = true
	for _, n := range m.order {
		m.scheduleHello(n, m.cfg.HelloInterval)
	}
	m.originateLSA()
	m.scheduleRefresh()
}

// AddNeighborLive registers the adjacent link to a neighbor on a running
// manager (a runtime join): probing starts immediately and the node's full
// link states — now including the new link — are re-announced.
func (m *Manager) AddNeighborLive(n wire.NodeID, link wire.LinkID) {
	if _, ok := m.neighbors[n]; ok {
		return
	}
	m.AddNeighbor(n, link)
	if m.started && !m.closed {
		m.scheduleHello(n, m.cfg.HelloInterval)
		m.originateLSA()
	}
}

// SetMemberCheck installs the overlay-membership gate for advertisement
// acceptance. A nil check (the default) admits every origin, preserving
// static-topology behavior; with a check installed, advertisements whose
// origin is rejected are dropped without being applied or reflooded, so a
// departed (or never-admitted) node cannot pollute the fleet's view.
func (m *Manager) SetMemberCheck(fn func(wire.NodeID) bool) { m.memberCheck = fn }

// DisableNeighbor administratively downs the link to a neighbor that left
// the overlay: hello probing stops (no down-probe waste on a gone peer),
// the local view marks the link down, and a withdrawal delta floods so the
// fleet routes around it. A later EnableNeighbor (rejoin) resumes probing.
func (m *Manager) DisableNeighbor(n wire.NodeID) {
	st, ok := m.neighbors[n]
	if !ok || st.disabled {
		return
	}
	st.disabled = true
	st.pendingAck = false
	st.missed = 0
	stopTimer(st.timer)
	st.timer = nil
	if st.up {
		st.up = false
		m.stats.DownDetections++
		m.applyLocal(st, false)
		m.originateDelta(st)
		if m.onNeighborState != nil {
			m.onNeighborState(n, false)
		}
	}
}

// EnableNeighbor resumes hello probing of a previously disabled neighbor
// (a rejoin). The link comes back up through the ordinary ack-recovery
// path, which re-announces it and resyncs the peer's database.
func (m *Manager) EnableNeighbor(n wire.NodeID) {
	st, ok := m.neighbors[n]
	if !ok || !st.disabled {
		return
	}
	st.disabled = false
	if m.started && !m.closed {
		m.scheduleHello(n, m.cfg.HelloInterval)
	}
}

// NeighborDisabled reports whether the link to n is administratively down.
func (m *Manager) NeighborDisabled(n wire.NodeID) bool {
	st, ok := m.neighbors[n]
	return ok && st.disabled
}

// WithdrawAll marks every adjacent link down and floods one full
// advertisement saying so — the graceful-leave withdrawal. The manager
// keeps running (the caller stops it when departure completes) but probing
// is suspended so no link flaps back up mid-departure.
func (m *Manager) WithdrawAll() {
	for _, n := range m.order {
		st := m.neighbors[n]
		st.disabled = true
		st.pendingAck = false
		stopTimer(st.timer)
		st.timer = nil
		if st.up {
			st.up = false
			m.view.SetUp(st.linkID, false)
		}
	}
	m.version++
	m.env.ViewChanged()
	m.originateLSA()
}

// ApplyCorrection marks a link's availability from outside the hello and
// LSA machinery — the membership corrector repairing a stale route — with
// the same version bump and view-change notification as any protocol
// update, so routing caches and the flood mask track it.
func (m *Manager) ApplyCorrection(id wire.LinkID, up bool) {
	if m.view.Usable(id) == up {
		return
	}
	m.view.SetUp(id, up)
	m.version++
	m.health.Reconvergences.Add(1)
	m.env.ViewChanged()
}

// ReconcileAdjacent re-derives the view state of every adjacent link from
// live hello state and returns how many entries it repaired. Remote LSAs
// deliberately never touch a node's own adjacent links (local hello state
// governs them), so a corrupted view entry for an adjacent link has no
// protocol path back to truth: hellos keep succeeding without a
// transition and floods are ignored. The membership corrector calls this
// each sweep; at a legitimate fixed point it repairs nothing and
// allocates nothing.
func (m *Manager) ReconcileAdjacent() int {
	fixed := 0
	for _, st := range m.neighbors {
		effective := st.up && !st.disabled
		if m.view.Usable(st.linkID) != effective {
			m.view.SetUp(st.linkID, effective)
			fixed++
		}
	}
	if fixed > 0 {
		m.version++
		m.health.Reconvergences.Add(1)
		m.env.ViewChanged()
	}
	return fixed
}

// PurgeOrigin forgets the advertisement history of a departed origin: its
// highest-seen sequence and retained resync payload. A rejoining node
// restarts its sequence space from scratch; without the purge its fresh
// advertisements would lose the highest-seq race against its own pre-leave
// history (the crash-echo fast-forward also repairs this, but purging
// makes rejoin immediate rather than echo-dependent).
func (m *Manager) PurgeOrigin(n wire.NodeID) {
	delete(m.seen, n)
	delete(m.lastAdv, n)
}

// Stop cancels all timers.
func (m *Manager) Stop() {
	m.closed = true
	for _, st := range m.neighbors {
		stopTimer(st.timer)
	}
	stopTimer(m.refreshTimer)
}

// View returns the shared connectivity view.
func (m *Manager) View() *topology.View { return m.view }

// Version returns a counter incremented on every view change, for route
// cache invalidation.
func (m *Manager) Version() uint64 { return m.version }

// Stats returns a snapshot of counters.
func (m *Manager) Stats() Stats { return m.stats }

// Health returns the exported link-health counters (hello activity, flood
// volume, reconvergence count) that chaos invariants assert on.
func (m *Manager) Health() metrics.LinkHealthSnapshot { return m.health.Snapshot() }

// SetOnNeighborState installs a callback invoked after an adjacent link is
// declared down (up=false) or recovers (up=true). The host node uses it to
// reset per-neighbor link-protocol sessions: across a down window frames
// were lost wholesale — or the peer crashed and restarted with fresh
// sequence state — so the old windows would misclassify the peer's next
// frames as duplicates or wild jumps. Both endpoints observe the
// transition through their own hello machinery, so both reset.
func (m *Manager) SetOnNeighborState(fn func(neighbor wire.NodeID, up bool)) {
	m.onNeighborState = fn
}

// SetSessionEpoch installs the provider of the node's link-session epoch
// for a neighbor, advertised in every hello. The epoch increments each
// time the node resets its link-protocol endpoints, letting the peer
// detect resets it cannot observe through its own hello machinery — a
// one-sided hello-loss streak resets only the lossy side, and without the
// epoch the peer's stale receive windows would silently swallow (and
// acknowledge) the fresh endpoint's restarted sequence numbers.
func (m *Manager) SetSessionEpoch(fn func(neighbor wire.NodeID) uint32) {
	m.sessionEpoch = fn
}

// SetOnPeerEpoch installs a callback invoked with the neighbor's
// link-session epoch carried by each received hello; the host node uses
// it to resynchronize its own endpoints with peer resets (see
// SetSessionEpoch).
func (m *Manager) SetOnPeerEpoch(fn func(neighbor wire.NodeID, epoch uint32)) {
	m.onPeerEpoch = fn
}

// NeighborUp reports whether the link to a neighbor is considered up.
func (m *Manager) NeighborUp(n wire.NodeID) bool {
	st, ok := m.neighbors[n]
	return ok && st.up
}

// NeighborRTT returns the smoothed hello RTT for a neighbor.
func (m *Manager) NeighborRTT(n wire.NodeID) (time.Duration, bool) {
	st, ok := m.neighbors[n]
	if !ok {
		return 0, false
	}
	return st.rtt, true
}

func (m *Manager) scheduleHello(n wire.NodeID, after time.Duration) {
	st := m.neighbors[n]
	stopTimer(st.timer)
	st.timer = m.env.Clock().After(after, func() { m.helloTick(n) })
}

// helloTick sends one probe and accounts for the previous one.
func (m *Manager) helloTick(n wire.NodeID) {
	if m.closed {
		return
	}
	st := m.neighbors[n]
	if st.disabled {
		return
	}
	if st.pendingAck {
		// Previous hello went unanswered; it was already counted in the
		// loss window when sent.
		st.missed++
		m.health.HellosMissed.Add(1)
		m.noteHelloWindow(n, st)
		if st.missed >= m.cfg.HelloMiss {
			m.helloTimeout(n, st)
		}
	}
	st.pendingAck = true
	st.helloCount++
	m.stats.HellosSent++
	m.health.HellosSent.Add(1)
	// Hellos carry the sender's current path index (low byte) so the two
	// endpoints converge on the same provider (§II-A on-net links): the
	// lower node ID owns the choice and the peer adopts it. The upper
	// bits carry the sender's link-session epoch so the peer can detect
	// endpoint resets it did not itself observe.
	seq := uint32(st.curPath)
	if m.sessionEpoch != nil {
		seq |= (m.sessionEpoch(n) & epochMask) << 8
	}
	m.env.SendControl(n, &wire.Frame{
		Proto:    wire.LPBestEffort,
		Kind:     wire.FHello,
		Seq:      seq,
		SendTime: m.env.Clock().Now(),
	})
	interval := m.cfg.HelloInterval
	if !st.up {
		interval = m.cfg.DownProbeInterval
	}
	m.scheduleHello(n, interval)
}

// helloTimeout handles HelloMiss consecutive losses: fail over to the next
// underlay path if one remains, otherwise declare the link down.
func (m *Manager) helloTimeout(n wire.NodeID, st *neighborState) {
	st.missed = 0
	paths := m.env.PathCount(n)
	if int(st.curPath)+1 < paths && st.up {
		st.curPath++
		m.stats.Failovers++
		m.env.SetPath(n, st.curPath)
		return
	}
	// Cycle back to the first path for down-probing.
	if st.curPath != 0 {
		st.curPath = 0
		m.env.SetPath(n, 0)
	}
	if st.up {
		st.up = false
		m.stats.DownDetections++
		m.applyLocal(st, false)
		// A single link changed: flood a delta so reconvergence traffic
		// scales with the change, not with this node's degree.
		m.originateDelta(st)
		if m.onNeighborState != nil {
			m.onNeighborState(n, false)
		}
	}
}

// HandleControl processes hello traffic arriving from a neighbor.
func (m *Manager) HandleControl(n wire.NodeID, f *wire.Frame) {
	if m.closed {
		return
	}
	switch f.Kind {
	case wire.FHello:
		if m.onPeerEpoch != nil {
			m.onPeerEpoch(n, f.Seq>>8)
		}
		// The link owner (lower node ID) dictates the underlay path; the
		// other endpoint adopts the path carried in the owner's hellos so
		// the link stays on-net (same provider both ways).
		if m.self > n {
			if st, ok := m.neighbors[n]; ok {
				if p := uint8(f.Seq); p != st.curPath && int(p) < m.env.PathCount(n) {
					st.curPath = p
					m.env.SetPath(n, p)
				}
			}
		}
		m.env.SendControl(n, &wire.Frame{
			Proto:    wire.LPBestEffort,
			Kind:     wire.FHelloAck,
			SendTime: f.SendTime,
		})
	case wire.FHelloAck:
		m.onHelloAck(n, f)
	}
}

func (m *Manager) onHelloAck(n wire.NodeID, f *wire.Frame) {
	st, ok := m.neighbors[n]
	if !ok || st.disabled {
		return
	}
	st.pendingAck = false
	st.missed = 0
	st.ackCount++
	m.noteHelloWindow(n, st)
	rtt := m.env.Clock().Now() - f.SendTime
	if rtt > 0 {
		if st.rtt == 0 {
			st.rtt = rtt
		} else {
			st.rtt = (7*st.rtt + rtt) / 8
		}
	}
	if !st.up {
		st.up = true
		st.missed = 0
		m.stats.UpDetections++
		m.applyLocal(st, true)
		m.originateLSA()
		if m.onNeighborState != nil {
			m.onNeighborState(n, true)
		}
		// Database resync: the peer may have missed arbitrary updates
		// while the link was down; push every origin's latest known
		// advertisement instead of waiting for their refresh cycles.
		m.resync(n)
		return
	}
	// The owner publishes the link's measured latency; the other
	// endpoint receives it via the owner's advertisements. Routed through
	// SetQuality so the view version and change journal track it — the
	// routing engine repairs its cached SPT incrementally off the journal.
	if st.owner {
		m.view.SetQuality(st.linkID, st.rtt/2, m.view.State[st.linkID].Loss)
		m.maybeAdvertise(st)
	}
}

// noteHelloWindow closes a measurement window when enough hellos have been
// counted, deriving the link loss estimate and re-homing a degraded
// multihomed link onto its next underlay path.
func (m *Manager) noteHelloWindow(n wire.NodeID, st *neighborState) {
	if st.helloCount < m.cfg.LossWindow {
		return
	}
	missRate := 1 - float64(st.ackCount)/float64(st.helloCount)
	// A hello round trip crosses the link twice; halve to estimate
	// one-way loss.
	st.loss = missRate / 2
	st.helloCount, st.ackCount = 0, 0
	// Loss-driven re-homing is the owner's decision; the peer follows via
	// the path index in the owner's hellos.
	if m.cfg.LossFailover > 0 && st.up && m.self < n && st.loss >= m.cfg.LossFailover {
		if paths := m.env.PathCount(n); paths > 1 {
			st.curPath = uint8((int(st.curPath) + 1) % paths)
			m.stats.Failovers++
			m.env.SetPath(n, st.curPath)
			// The closed window measured the old path; start clean so the
			// new path gets a fair measurement.
			st.loss = 0
		}
	}
	if st.up && st.owner {
		m.view.SetQuality(st.linkID, m.view.State[st.linkID].Latency, st.loss)
		m.maybeAdvertise(st)
	}
}

// applyLocal updates the local view for an adjacent link state change.
func (m *Manager) applyLocal(st *neighborState, up bool) {
	m.view.SetUp(st.linkID, up)
	m.version++
	m.health.Reconvergences.Add(1)
	m.env.ViewChanged()
}

// maybeAdvertise floods an update when measurements drifted materially
// from the last advertised values.
func (m *Manager) maybeAdvertise(st *neighborState) {
	cur := m.view.State[st.linkID]
	latDrift := float64(cur.Latency-st.advLatency) / float64(max(int64(st.advLatency), 1))
	if latDrift < 0 {
		latDrift = -latDrift
	}
	lossDrift := cur.Loss - st.advLoss
	if lossDrift < 0 {
		lossDrift = -lossDrift
	}
	if latDrift >= m.cfg.LatencyChangeFrac || lossDrift >= m.cfg.LossChangeAbs || st.advUp != st.up {
		m.version++
		m.health.Reconvergences.Add(1)
		m.env.ViewChanged()
		// Quality drift concerns this one link only; the periodic full
		// refresh remains the anti-entropy backstop for lost deltas.
		m.originateDelta(st)
	}
}

func (m *Manager) scheduleRefresh() {
	m.refreshTimer = m.env.Clock().After(m.cfg.RefreshInterval, func() {
		if m.closed {
			return
		}
		m.originateLSA()
		m.scheduleRefresh()
	})
}

// originateLSA floods this node's current adjacent link states in full.
// Full advertisements are the authoritative anti-entropy mechanism: the
// startup announcement, the periodic refresh, and the crash-echo
// fast-forward all use them, so any delta a receiver missed is repaired
// within one refresh interval.
func (m *Manager) originateLSA() {
	m.mySeq++
	entries := make([]Entry, 0, len(m.neighbors))
	for _, n := range m.order {
		st := m.neighbors[n]
		cur := m.view.State[st.linkID]
		entries = append(entries, Entry{
			Link:    st.linkID,
			Up:      st.up,
			Latency: cur.Latency,
			Loss:    cur.Loss,
		})
		st.advUp = st.up
		st.advLatency = cur.Latency
		st.advLoss = cur.Loss
	}
	adv := Advertisement{Origin: m.self, Seq: m.mySeq, Entries: entries}
	m.stats.LSAsSent++
	m.health.LSAFloods.Add(1)
	m.env.FloodLSA(adv.Marshal(), 0)
}

// originateDelta floods an advertisement carrying only the one changed
// adjacent link, sharing the origin's sequence space with full
// advertisements so receivers apply the ordinary highest-seq rule. Delta
// floods keep per-change traffic O(1) in node degree — the flooding-side
// half of logarithmic-cost maintenance at 10k nodes.
func (m *Manager) originateDelta(st *neighborState) {
	m.mySeq++
	cur := m.view.State[st.linkID]
	adv := Advertisement{
		Origin: m.self,
		Seq:    m.mySeq,
		Delta:  true,
		Entries: []Entry{{
			Link:    st.linkID,
			Up:      st.up,
			Latency: cur.Latency,
			Loss:    cur.Loss,
		}},
	}
	st.advUp = st.up
	st.advLatency = cur.Latency
	st.advLoss = cur.Loss
	m.stats.LSAsSent++
	m.stats.DeltaLSAsSent++
	m.health.LSAFloods.Add(1)
	m.health.DeltaLSAFloods.Add(1)
	m.env.FloodLSA(adv.Marshal(), 0)
}

// resync pushes the latest known advertisement of every origin to one
// neighbor.
func (m *Manager) resync(n wire.NodeID) {
	for _, origin := range sortedOrigins(m.lastAdv) {
		m.env.SendLSA(n, m.lastAdv[origin])
	}
}

// sortedOrigins returns map keys in ascending order for deterministic
// iteration.
func sortedOrigins(m map[wire.NodeID][]byte) []wire.NodeID {
	out := make([]wire.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HandleLSA processes a link-state packet received from a neighbor,
// applying newer information and reflooding it.
func (m *Manager) HandleLSA(from wire.NodeID, p *wire.Packet) error {
	adv, err := UnmarshalAdvertisement(p.Payload)
	if err != nil {
		return fmt.Errorf("linkstate: bad advertisement from %v: %w", from, err)
	}
	if adv.Origin == m.self {
		// Our own advertisement echoed back. After a crash-restart the
		// node's sequence counter starts over while its pre-crash
		// advertisements still circulate with higher numbers, so peers
		// would discard everything the reborn node floods until its counter
		// caught up. Fast-forward past the stale sequence and re-originate
		// so the fresh state supersedes it. Strictly-greater keeps the
		// steady-state echo (Seq == mySeq) from triggering a reflood storm.
		if adv.Seq > m.mySeq {
			m.mySeq = adv.Seq
			m.originateLSA()
		}
		return nil
	}
	if m.memberCheck != nil && !m.memberCheck(adv.Origin) {
		m.stats.NonMemberLSAsRejected++
		return nil
	}
	if last, ok := m.seen[adv.Origin]; ok && adv.Seq <= last {
		return nil
	}
	m.seen[adv.Origin] = adv.Seq
	if !adv.Delta {
		// Only full advertisements are retained for recovery resync: a
		// delta is meaningless without the state it amends. A resync may
		// therefore replay a sequence number older than deltas already
		// seen — harmlessly discarded — and the origin's next refresh
		// remains the authoritative repair.
		m.lastAdv[adv.Origin] = append([]byte(nil), p.Payload...)
	}
	changed := false
	for _, e := range adv.Entries {
		l, ok := m.view.G.Link(e.Link)
		if !ok {
			continue
		}
		// Only an endpoint of a link may advertise it.
		if l.A != adv.Origin && l.B != adv.Origin {
			continue
		}
		cur := &m.view.State[e.Link]
		if l.A == adv.Origin {
			// The owner's entry is authoritative for quality — including
			// at the link's other endpoint, so both ends route on the
			// same values. Routed through SetQuality so the view version
			// and change journal track it.
			if m.view.SetQuality(e.Link, e.Latency, e.Loss) {
				changed = true
			}
		}
		// Availability is sensed at both ends: either endpoint's report
		// changes it, except for our own adjacent links, where local
		// hello state governs. Routed through SetUp so the view version
		// (and with it the cached flood mask) tracks the change.
		if l.A != m.self && l.B != m.self && cur.Up != e.Up {
			m.view.SetUp(e.Link, e.Up)
			changed = true
		}
	}
	if changed {
		m.version++
		m.health.Reconvergences.Add(1)
		m.env.ViewChanged()
	}
	m.stats.LSAsForwarded++
	m.health.LSAFloods.Add(1)
	if adv.Delta {
		m.health.DeltaLSAFloods.Add(1)
	}
	m.env.FloodLSA(p.Payload, from)
	return nil
}

func stopTimer(t sim.Timer) {
	if t != nil {
		t.Stop()
	}
}

package linkstate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"sonet/internal/wire"
)

// ErrBadAdvertisement reports a malformed link-state payload.
var ErrBadAdvertisement = errors.New("malformed link-state advertisement")

// Entry is one link's advertised condition.
type Entry struct {
	// Link identifies the advertised overlay link.
	Link wire.LinkID
	// Up is the link's availability.
	Up bool
	// Latency is the measured one-way latency.
	Latency time.Duration
	// Loss is the measured one-way loss fraction.
	Loss float64
}

// Advertisement is one node's sequence-numbered report of the condition of
// its adjacent overlay links — the unit of Connectivity Graph Maintenance
// flooding.
type Advertisement struct {
	// Origin is the advertising node.
	Origin wire.NodeID
	// Seq orders advertisements from one origin; receivers keep the
	// highest. Delta and full advertisements share one sequence space per
	// origin, so the highest-seq rule needs no special cases.
	Seq uint32
	// Delta marks a partial advertisement carrying only the origin's
	// changed links, so flood cost scales with the change, not the degree.
	// A full advertisement (Delta false) remains authoritative for every
	// adjacent link and serves as the anti-entropy fallback: the periodic
	// refresh repairs any receiver that missed a delta.
	Delta bool
	// Entries lists the origin's adjacent links (all of them when full,
	// only the changed ones when Delta).
	Entries []Entry
}

// advEntryLen is the encoded size of one entry: link(2) up(1) latency
// µs(4) loss ‱(2).
const advEntryLen = 9

// advHeaderLen is origin(2) seq(4) flags(1) count(1).
const advHeaderLen = 8

// advFlagDelta marks a delta advertisement in the header flags byte.
const advFlagDelta = 0x01

// Marshal encodes the advertisement.
func (a *Advertisement) Marshal() []byte {
	buf := make([]byte, advHeaderLen, advHeaderLen+len(a.Entries)*advEntryLen)
	binary.BigEndian.PutUint16(buf[0:], uint16(a.Origin))
	binary.BigEndian.PutUint32(buf[2:], a.Seq)
	if a.Delta {
		buf[6] = advFlagDelta
	}
	buf[7] = byte(len(a.Entries))
	var e [advEntryLen]byte
	for _, entry := range a.Entries {
		binary.BigEndian.PutUint16(e[0:], uint16(entry.Link))
		if entry.Up {
			e[2] = 1
		} else {
			e[2] = 0
		}
		us := entry.Latency / time.Microsecond
		if us < 0 {
			us = 0
		}
		if us > 1<<32-1 {
			us = 1<<32 - 1
		}
		binary.BigEndian.PutUint32(e[3:], uint32(us))
		loss := entry.Loss
		if loss < 0 {
			loss = 0
		}
		if loss > 1 {
			loss = 1
		}
		binary.BigEndian.PutUint16(e[7:], uint16(loss*10000))
		buf = append(buf, e[:]...)
	}
	return buf
}

// UnmarshalAdvertisement decodes a link-state payload.
func UnmarshalAdvertisement(src []byte) (*Advertisement, error) {
	if len(src) < advHeaderLen {
		return nil, fmt.Errorf("linkstate: header %d bytes: %w", len(src), ErrBadAdvertisement)
	}
	a := &Advertisement{
		Origin: wire.NodeID(binary.BigEndian.Uint16(src[0:])),
		Seq:    binary.BigEndian.Uint32(src[2:]),
		Delta:  src[6]&advFlagDelta != 0,
	}
	count := int(src[7])
	src = src[advHeaderLen:]
	if len(src) < count*advEntryLen {
		return nil, fmt.Errorf("linkstate: %d entries in %d bytes: %w", count, len(src), ErrBadAdvertisement)
	}
	a.Entries = make([]Entry, count)
	for i := 0; i < count; i++ {
		e := src[i*advEntryLen:]
		a.Entries[i] = Entry{
			Link:    wire.LinkID(binary.BigEndian.Uint16(e[0:])),
			Up:      e[2] == 1,
			Latency: time.Duration(binary.BigEndian.Uint32(e[3:])) * time.Microsecond,
			Loss:    float64(binary.BigEndian.Uint16(e[7:])) / 10000,
		}
	}
	return a, nil
}

package transport

import (
	"testing"

	"sonet/internal/wire"
)

func validTopo() TopologyConfig {
	return TopologyConfig{
		Links: []LinkDef{
			{A: 1, B: 2, LatencyMs: 10},
			{A: 2, B: 3, LatencyMs: 12},
		},
		Nodes: map[wire.NodeID]NodeAddr{
			1: {UDP: []string{"10.0.0.1:7000"}, TCP: "10.0.0.1:8000"},
			2: {UDP: []string{"10.0.1.1:7000", "10.1.1.1:7000"}},
			3: {UDP: []string{"10.0.2.1:7000"}},
		},
		HelloIntervalMs: 50,
		Shards:          2,
	}
}

func TestGenerateConfigs(t *testing.T) {
	cfgs, err := GenerateConfigs(validTopo())
	if err != nil {
		t.Fatalf("GenerateConfigs: %v", err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("generated %d configs, want 3", len(cfgs))
	}
	c1 := cfgs[1]
	if c1.BindUDP != "10.0.0.1:7000" || c1.BindTCP != "10.0.0.1:8000" {
		t.Fatalf("node 1 binds = %q/%q", c1.BindUDP, c1.BindTCP)
	}
	if got := c1.Peers[2]; len(got) != 2 || got[1] != "10.1.1.1:7000" {
		t.Fatalf("node 1 sees node 2 at %v, want both multihomed addresses", got)
	}
	if len(c1.Links) != 2 || c1.HelloIntervalMs != 50 {
		t.Fatalf("links/hello not propagated: %+v", c1)
	}
	if c1.Shards != 2 {
		t.Fatalf("shard count not propagated: %d", c1.Shards)
	}
	if c3 := cfgs[3]; c3.BindTCP != "" {
		t.Fatalf("node 3 got a TCP listener: %q", c3.BindTCP)
	}
	// Per-config slices must be independent copies.
	c1.Links[0].LatencyMs = 999
	if cfgs[2].Links[0].LatencyMs == 999 {
		t.Fatal("configs share link slices")
	}
}

func TestGenerateConfigsValidation(t *testing.T) {
	cases := map[string]func(*TopologyConfig){
		"no links":            func(tc *TopologyConfig) { tc.Links = nil },
		"self link":           func(tc *TopologyConfig) { tc.Links[0].B = tc.Links[0].A },
		"zero latency":        func(tc *TopologyConfig) { tc.Links[0].LatencyMs = 0 },
		"missing node addr":   func(tc *TopologyConfig) { delete(tc.Nodes, 2) },
		"orphan node":         func(tc *TopologyConfig) { tc.Nodes[9] = NodeAddr{UDP: []string{"x:1"}} },
		"node with no UDP":    func(tc *TopologyConfig) { tc.Nodes[2] = NodeAddr{} },
		"zero-node in a link": func(tc *TopologyConfig) { tc.Links[0].A = 0 },
	}
	for name, mutate := range cases {
		tc := validTopo()
		mutate(&tc)
		if _, err := GenerateConfigs(tc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGeneratedConfigsBootDaemons(t *testing.T) {
	// Generate loopback configs and actually boot the deployment.
	tc := TopologyConfig{
		Links: []LinkDef{{A: 1, B: 2, LatencyMs: 1}},
		Nodes: map[wire.NodeID]NodeAddr{
			1: {UDP: []string{"127.0.0.1:17831"}},
			2: {UDP: []string{"127.0.0.1:17832"}},
		},
		HelloIntervalMs: 20,
	}
	cfgs, err := GenerateConfigs(tc)
	if err != nil {
		t.Fatalf("GenerateConfigs: %v", err)
	}
	for id, cfg := range cfgs {
		d, err := NewDaemon(cfg)
		if err != nil {
			t.Fatalf("NewDaemon(%v): %v", id, err)
		}
		t.Cleanup(d.Close)
	}
}

package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"sonet/internal/session"
	"sonet/internal/wire"
)

// startChain spins up a daemon chain 1-2-…-n over loopback UDP with fast
// hellos, wiring peer addresses after all sockets are bound.
func startChain(t *testing.T, n int, clientsOn ...wire.NodeID) map[wire.NodeID]*Daemon {
	t.Helper()
	links := make([]LinkDef, 0, n-1)
	for i := 1; i < n; i++ {
		links = append(links, LinkDef{A: wire.NodeID(i), B: wire.NodeID(i + 1), LatencyMs: 1})
	}
	wantTCP := make(map[wire.NodeID]bool, len(clientsOn))
	for _, id := range clientsOn {
		wantTCP[id] = true
	}
	// First pass: bind every daemon on an ephemeral UDP port with no
	// peers, collecting addresses.
	daemons := make(map[wire.NodeID]*Daemon, n)
	addrs := make(map[wire.NodeID][]string, n)
	for i := 1; i <= n; i++ {
		id := wire.NodeID(i)
		cfg := DaemonConfig{
			ID:              id,
			BindUDP:         "127.0.0.1:0",
			Links:           links,
			HelloIntervalMs: 20,
			Shards:          testShards(),
		}
		if wantTCP[id] {
			cfg.BindTCP = "127.0.0.1:0"
		}
		d, err := NewDaemon(cfg)
		if err != nil {
			t.Fatalf("NewDaemon(%d): %v", i, err)
		}
		daemons[id] = d
		addrs[id] = []string{d.UDPAddr()}
		t.Cleanup(d.Close)
	}
	// Second pass: register neighbor addresses.
	for id, d := range daemons {
		for peer, as := range addrs {
			if peer == id {
				continue
			}
			if err := d.AddPeer(peer, as...); err != nil {
				t.Fatalf("AddPeer: %v", err)
			}
		}
	}
	return daemons
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("hello")); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	if err := writeFrame(&buf, nil); err != nil {
		t.Fatalf("writeFrame(empty): %v", err)
	}
	got, err := readFrame(&buf)
	if err != nil || string(got) != "hello" {
		t.Fatalf("readFrame = %q, %v", got, err)
	}
	got, err = readFrame(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("readFrame(empty) = %q, %v", got, err)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, maxMessage+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// A forged oversized header must be rejected on read.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized header accepted")
	}
}

func TestUDPUnderlayDelivery(t *testing.T) {
	type rx struct {
		from wire.NodeID
		data []byte
	}
	got := make(chan rx, 10)
	exec := directExec{}
	a, err := NewUDPUnderlay("127.0.0.1:0", exec, func(from wire.NodeID, data []byte) {
		got <- rx{from: from, data: data}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewUDPUnderlay("127.0.0.1:0", exec, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	if err := a.AddPeer(2, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.Send(1, 0, []byte("frame"))
	select {
	case r := <-got:
		if r.from != 2 || string(r.data) != "frame" {
			t.Fatalf("received %v %q", r.from, r.data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frame never arrived")
	}
}

func TestUDPUnderlayIgnoresUnknownSenders(t *testing.T) {
	exec := directExec{}
	got := make(chan struct{}, 1)
	a, err := NewUDPUnderlay("127.0.0.1:0", exec, func(wire.NodeID, []byte) {
		got <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	stranger, err := NewUDPUnderlay("127.0.0.1:0", exec, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stranger.Close() }()
	if err := stranger.AddPeer(1, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	stranger.Send(1, 0, []byte("spoof"))
	select {
	case <-got:
		t.Fatal("frame from unregistered sender delivered")
	case <-time.After(200 * time.Millisecond):
	}
}

// directExec runs closures inline (test-only; production uses sim.Loop).
type directExec struct{}

func (directExec) Post(fn func()) { fn() }

func TestDaemonChainEndToEnd(t *testing.T) {
	daemons := startChain(t, 3, 1, 3)

	var mu sync.Mutex
	var got []session.Delivery
	recv, err := Dial(daemons[3].TCPAddr(), 700, func(d session.Delivery) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = recv.Close() }()
	send, err := Dial(daemons[1].TCPAddr(), 0, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = send.Close() }()
	if send.Port() == 0 {
		t.Fatal("ephemeral port not assigned")
	}
	flow, err := send.OpenFlow(session.FlowSpec{
		DstNode: 3, DstPort: 700,
		LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	// Give hellos a moment to converge, then stream.
	time.Sleep(200 * time.Millisecond)
	const n = 50
	for i := 0; i < n; i++ {
		if err := flow.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		count := len(got)
		mu.Unlock()
		if count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d", count, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, d := range got {
		if d.Seq != uint32(i+1) || d.From != 1 {
			t.Fatalf("delivery %d = %+v", i, d)
		}
	}
	if string(got[0].Payload) != "m0" {
		t.Fatalf("payload %q", got[0].Payload)
	}
}

func TestDaemonMulticastOverUDP(t *testing.T) {
	daemons := startChain(t, 3, 1, 2, 3)
	const grp wire.GroupID = 42

	recvAt := func(id wire.NodeID) (*Client, *sync.Mutex, *int) {
		var mu sync.Mutex
		count := 0
		c, err := Dial(daemons[id].TCPAddr(), 800, func(session.Delivery) {
			mu.Lock()
			count++
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("Dial(%d): %v", id, err)
		}
		t.Cleanup(func() { _ = c.Close() })
		if err := c.Join(grp); err != nil {
			t.Fatalf("Join: %v", err)
		}
		return c, &mu, &count
	}
	_, mu2, n2 := recvAt(2)
	_, mu3, n3 := recvAt(3)

	send, err := Dial(daemons[1].TCPAddr(), 0, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = send.Close() }()
	flow, err := send.OpenFlow(session.FlowSpec{Group: grp, DstPort: 800})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	time.Sleep(300 * time.Millisecond) // membership flood
	for i := 0; i < 10; i++ {
		if err := flow.Send([]byte("mc")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu2.Lock()
		a := *n2
		mu2.Unlock()
		mu3.Lock()
		b := *n3
		mu3.Unlock()
		if a == 10 && b == 10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("members received %d/%d of 10", a, b)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDaemonRejectsDuplicatePort(t *testing.T) {
	daemons := startChain(t, 2, 1)
	c1, err := Dial(daemons[1].TCPAddr(), 900, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = c1.Close() }()
	if _, err := Dial(daemons[1].TCPAddr(), 900, nil); err == nil {
		t.Fatal("duplicate port accepted")
	}
}

func TestDaemonCloseIsIdempotent(t *testing.T) {
	daemons := startChain(t, 2)
	daemons[1].Close()
	daemons[1].Close()
}

func TestDaemonFailureTriggersReroute(t *testing.T) {
	// Diamond over real UDP: 1-2-4 and 1-3-4. Daemon 2 dies mid-stream;
	// the overlay detects the dead neighbor via hellos and reroutes the
	// flow through daemon 3.
	links := []LinkDef{
		{A: 1, B: 2, LatencyMs: 1}, {A: 2, B: 4, LatencyMs: 1},
		{A: 1, B: 3, LatencyMs: 2}, {A: 3, B: 4, LatencyMs: 2},
	}
	daemons := make(map[wire.NodeID]*Daemon, 4)
	addrs := make(map[wire.NodeID][]string, 4)
	for i := 1; i <= 4; i++ {
		id := wire.NodeID(i)
		cfg := DaemonConfig{
			ID: id, BindUDP: "127.0.0.1:0",
			Links: links, HelloIntervalMs: 20,
			Shards: testShards(),
		}
		if id == 1 || id == 4 {
			cfg.BindTCP = "127.0.0.1:0"
		}
		d, err := NewDaemon(cfg)
		if err != nil {
			t.Fatalf("NewDaemon(%d): %v", i, err)
		}
		daemons[id] = d
		addrs[id] = []string{d.UDPAddr()}
		t.Cleanup(d.Close)
	}
	for id, d := range daemons {
		for peer, as := range addrs {
			if peer != id {
				if err := d.udp.AddPeer(peer, as...); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	var mu sync.Mutex
	received := 0
	recv, err := Dial(daemons[4].TCPAddr(), 700, func(session.Delivery) {
		mu.Lock()
		received++
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = recv.Close() }()
	send, err := Dial(daemons[1].TCPAddr(), 0, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = send.Close() }()
	flow, err := send.OpenFlow(session.FlowSpec{
		DstNode: 4, DstPort: 700,
		LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	time.Sleep(200 * time.Millisecond) // hello convergence

	// Stream 20 msg/s; kill daemon 2 a third of the way in.
	const n = 60
	for i := 0; i < n; i++ {
		if i == n/3 {
			daemons[2].Close()
		}
		if err := flow.Send([]byte("x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		count := received
		mu.Unlock()
		if count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d after daemon failure", count, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The surviving detour must have carried traffic.
	if fwd := daemons[3].NodeStats().Forwarded; fwd == 0 {
		t.Fatal("detour daemon forwarded nothing")
	}
}

// TestDaemonRuntimeAdmissionMultiHop is the regression test for the
// config-reload admission path: a node admitted at runtime on one edge
// of the overlay must become reachable from daemons that are NOT its
// neighbors. The far daemons learn the new remote link (LearnLink) so
// SPF can route through it — admitting only on the adjacent daemon used
// to leave the rest of the fleet with no route to the newcomer.
func TestDaemonRuntimeAdmissionMultiHop(t *testing.T) {
	daemons := startChain(t, 3, 1)

	// Bring up the newcomer with the grown topology (its config already
	// declares the 3-4 link), client listener enabled.
	links := []LinkDef{
		{A: 1, B: 2, LatencyMs: 1},
		{A: 2, B: 3, LatencyMs: 1},
		{A: 3, B: 4, LatencyMs: 1},
	}
	d4, err := NewDaemon(DaemonConfig{
		ID: 4, BindUDP: "127.0.0.1:0", BindTCP: "127.0.0.1:0",
		Links: links, HelloIntervalMs: 20, Shards: testShards(),
	})
	if err != nil {
		t.Fatalf("NewDaemon(4): %v", err)
	}
	t.Cleanup(d4.Close)
	if err := d4.AddPeer(3, daemons[3].UDPAddr()); err != nil {
		t.Fatalf("AddPeer(4→3): %v", err)
	}

	// Runtime admission on the running fleet: the adjacent daemon admits
	// the newcomer as a live neighbor, the far daemons learn the remote
	// link. (This is exactly what sonetd's SIGHUP reload applies.)
	if err := daemons[3].AdmitPeer(4, 1, d4.UDPAddr()); err != nil {
		t.Fatalf("AdmitPeer(3→4): %v", err)
	}
	for _, far := range []wire.NodeID{1, 2} {
		if err := daemons[far].LearnLink(3, 4, 1); err != nil {
			t.Fatalf("LearnLink(%d): %v", far, err)
		}
	}

	var mu sync.Mutex
	var got []session.Delivery
	recv, err := Dial(d4.TCPAddr(), 700, func(d session.Delivery) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Dial(4): %v", err)
	}
	defer func() { _ = recv.Close() }()
	send, err := Dial(daemons[1].TCPAddr(), 0, nil)
	if err != nil {
		t.Fatalf("Dial(1): %v", err)
	}
	defer func() { _ = send.Close() }()
	flow, err := send.OpenFlow(session.FlowSpec{
		DstNode: 4, DstPort: 700,
		LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		t.Fatalf("OpenFlow: %v", err)
	}
	time.Sleep(200 * time.Millisecond) // hellos on the new 3-4 link
	const n = 30
	for i := 0; i < n; i++ {
		if err := flow.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		count := len(got)
		mu.Unlock()
		if count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d at the admitted node", count, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, d := range got {
		if d.Seq != uint32(i+1) || d.From != 1 {
			t.Fatalf("delivery %d = %+v", i, d)
		}
	}
}

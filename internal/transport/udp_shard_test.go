package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// mustAddrPort parses an underlay's LocalAddr for flow-hash computations.
func mustAddrPort(t *testing.T, s string) netip.AddrPort {
	t.Helper()
	ap, err := netip.ParseAddrPort(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return canonAddrPort(ap)
}

// expectedShard predicts which shard u will deliver a flow on, or -1 when
// the plane makes it unpredictable (kernel 4-tuple hash without the
// steering program). Mirrors the readLoop steering decision.
func expectedShard(u *UDPUnderlay, id wire.NodeID, src netip.AddrPort, pin int) int {
	if pin >= 0 {
		return pin
	}
	if u.rxDispatch {
		return flowShard(id, src, len(u.shards))
	}
	if u.steered {
		return int(src.Port()) % len(u.shards)
	}
	return -1
}

// TestShardedCloseMidBatch extends the close-mid-batch teardown contract
// to N shards: a drain already doorbelled onto a shard's executor when
// Close runs must release its frames without invoking the handler, on
// every shard, and racing Closes must both return.
func TestShardedCloseMidBatch(t *testing.T) {
	const n = 4
	execs := make([]sim.Executor, n)
	caps := make([]*captureExec, n)
	for i := range execs {
		caps[i] = &captureExec{}
		execs[i] = caps[i]
	}
	var delivered atomic.Uint64
	rx, err := NewShardedUDPUnderlay("127.0.0.1:0", execs, func(int, wire.NodeID, []byte) {
		delivered.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tx.Close() }()
	if err := rx.AddPeer(2, tx.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// Pin the flow to the last shard: the doorbell must land on that
	// shard's executor whatever socket the frames arrive on.
	if err := rx.PinFlow(2, n-1); err != nil {
		t.Fatal(err)
	}
	if err := tx.AddPeer(1, rx.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tx.Send(1, 0, []byte("mid-batch"))
	}
	if !waitFor(t, 2*time.Second, func() bool { return caps[n-1].pending() > 0 }) {
		t.Fatal("drain never doorbelled onto the pinned shard")
	}
	for i := 0; i < n-1; i++ {
		if caps[i].pending() != 0 {
			t.Fatalf("shard %d received a post for a flow pinned to shard %d", i, n-1)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rx.Close()
		}()
	}
	wg.Wait()
	// The queued drains run after Close on every shard: buffers are
	// released, the handler is never invoked.
	for _, c := range caps {
		c.runAll()
	}
	if delivered.Load() != 0 {
		t.Fatalf("handler invoked %d times after Close", delivered.Load())
	}
	if err := rx.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
}

// TestShardedPerFlowOrdering is the flow-partition property test: under a
// randomized mix of pinned and hash-steered flows, every flow's frames
// must arrive in send order (a flow never spans two shards), the shard
// placement must match the deterministic steering decision wherever the
// plane makes one, and per-shard RecvDelivered must account for every
// frame.
func TestShardedPerFlowOrdering(t *testing.T) {
	for _, n := range []int{2, 4} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", n, seed), func(t *testing.T) {
				testPerFlowOrdering(t, n, seed)
			})
		}
	}
}

func testPerFlowOrdering(t *testing.T, nshards int, seed int64) {
	// The aggregate in-flight burst (flows × window datagrams) must stay
	// under the loopback socket receive buffer — UDP sheds the excess and
	// the credit loop would stall on the lost frames.
	const (
		flows    = 12
		perFlow  = 200
		window   = 16
		deadline = 10 * time.Second
	)
	loops := sim.NewShardedLoop(nshards)
	defer loops.Close()

	var counts [flows]atomic.Uint64
	var lastSeq [flows]uint64 // written only by the flow's shard loop
	var violations atomic.Uint64
	rx, err := NewShardedUDPUnderlay("127.0.0.1:0", loops.Executors(), func(_ int, from wire.NodeID, data []byte) {
		f := int(from) - 1
		seq := binary.LittleEndian.Uint64(data)
		if seq != lastSeq[f]+1 {
			violations.Add(1)
		}
		lastSeq[f] = seq
		counts[f].Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rx.Close() }()

	rng := rand.New(rand.NewSource(seed))
	txs := make([]*UDPUnderlay, flows)
	expect := make([]int, flows) // predicted delivery shard, -1 unknown
	for f := 0; f < flows; f++ {
		tx, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = tx.Close() }()
		txs[f] = tx
		id := wire.NodeID(f + 1)
		if err := rx.AddPeer(id, tx.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		pin := rng.Intn(nshards+1) - 1 // -1 leaves the flow hash-steered
		if pin >= 0 {
			if err := rx.PinFlow(id, pin); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.AddPeer(100, rx.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		expect[f] = expectedShard(rx, id, mustAddrPort(t, tx.LocalAddr()), pin)
	}

	// One producer per flow, pumping seq-stamped frames in credit windows
	// so the loopback receive buffer never overflows.
	errs := make(chan error, flows)
	var wg sync.WaitGroup
	for f := 0; f < flows; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			var payload [16]byte
			sent := 0
			for sent < perFlow {
				burst := window
				if burst > perFlow-sent {
					burst = perFlow - sent
				}
				for i := 0; i < burst; i++ {
					binary.LittleEndian.PutUint64(payload[:], uint64(sent+i+1))
					txs[f].Send(100, 0, payload[:])
				}
				sent += burst
				limit := time.Now().Add(deadline)
				for counts[f].Load() < uint64(sent) {
					if time.Now().After(limit) {
						errs <- fmt.Errorf("flow %d stalled: %d of %d delivered", f, counts[f].Load(), sent)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(f)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d per-flow ordering violations across %d flows", v, flows)
	}
	// The delivery ledger: aggregate and per-shard placement.
	total := uint64(flows * perFlow)
	if got := rx.Stats().RecvDelivered; got != total {
		t.Fatalf("aggregate RecvDelivered = %d, want %d", got, total)
	}
	known := make([]uint64, nshards)
	allKnown := true
	for f, s := range expect {
		if s < 0 {
			allKnown = false
			continue
		}
		known[s] += perFlow
		_ = f
	}
	var sum uint64
	for s := 0; s < nshards; s++ {
		got := rx.ShardStats(s).RecvDelivered
		sum += got
		if got < known[s] {
			t.Fatalf("shard %d delivered %d, want at least %d (predicted flows)", s, got, known[s])
		}
		if allKnown && got != known[s] {
			t.Fatalf("shard %d delivered %d, predicted exactly %d", s, got, known[s])
		}
	}
	if sum != total {
		t.Fatalf("per-shard RecvDelivered sums to %d, want %d", sum, total)
	}
}

// TestShardedLifecycleRace hammers Send, AddPeer, PinFlow, Stats, and
// ShardStats from many goroutines with live inbound traffic while the
// sharded underlay closes mid-flight; under -race this covers the
// copy-on-write steering column against the lock-free readers and the
// N-shard quiesce path.
func TestShardedLifecycleRace(t *testing.T) {
	const n = 4
	loops := sim.NewShardedLoop(n)
	defer loops.Close()
	rx, err := NewShardedUDPUnderlay("127.0.0.1:0", loops.Executors(), func(int, wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = peer.Close() }()
	if err := rx.AddPeer(2, peer.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := peer.AddPeer(1, rx.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	payload := []byte("race")
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 6 {
				case 0:
					rx.Send(2, uint8(i), payload)
				case 1:
					peer.Send(1, 0, payload) // inbound traffic across shards
				case 2:
					_ = rx.AddPeer(2, peer.LocalAddr())
				case 3:
					_ = rx.PinFlow(2, i%(n+1)-1) // rotates pins including unpin
				case 4:
					_ = rx.Stats()
				case 5:
					_ = rx.ShardStats(i % n)
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	if err := rx.Close(); err != nil {
		t.Fatalf("Close during traffic: %v", err)
	}
	close(stop)
	wg.Wait()
	// Post-close operations are harmless no-ops.
	rx.Send(2, 0, payload)
	if n := rx.PathCount(2); n < 1 {
		t.Fatalf("PathCount after close = %d", n)
	}
}

// TestShardSteeringPlacement checks the steering column end to end on
// whichever plane is compiled: a flow pinned to shard 2 must deliver every
// frame on shard 2's executor, arrival counters must accrue to the
// arrival socket's shard, and the handoff counter must equal the frames
// that crossed shards.
func TestShardSteeringPlacement(t *testing.T) {
	const n = 4
	const frames = 50
	var delivered atomic.Uint64
	execs := make([]sim.Executor, n)
	for i := range execs {
		execs[i] = directExec{}
	}
	rx, err := NewShardedUDPUnderlay("127.0.0.1:0", execs, func(int, wire.NodeID, []byte) {
		delivered.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rx.Close() }()
	tx, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tx.Close() }()
	if err := rx.AddPeer(2, tx.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	const pinned = 2
	if err := rx.PinFlow(2, pinned); err != nil {
		t.Fatal(err)
	}
	if err := tx.AddPeer(1, rx.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		tx.Send(1, 0, []byte("steer"))
		// Light pacing: loopback is lossless below socket-buffer bursts.
		if i%16 == 15 {
			waitFor(t, time.Second, func() bool { return delivered.Load() >= uint64(i) })
		}
	}
	if !waitFor(t, 5*time.Second, func() bool { return delivered.Load() == frames }) {
		t.Fatalf("delivered %d of %d", delivered.Load(), frames)
	}
	if got := rx.ShardStats(pinned).RecvDelivered; got != frames {
		t.Fatalf("pinned shard delivered %d of %d", got, frames)
	}
	// Arrival accounting: the dispatcher plane drains everything on shard
	// 0's socket; the steered Linux plane on the sport-mod-N socket.
	arrival := 0
	if !rx.rxDispatch {
		if !rx.steered {
			t.Skipf("kernel hash steering: arrival shard not predictable")
		}
		arrival = int(mustAddrPort(t, tx.LocalAddr()).Port()) % n
	}
	if got := rx.ShardStats(arrival).RecvPackets; got != frames {
		t.Fatalf("arrival shard %d counted %d of %d packets", arrival, got, frames)
	}
	wantHandoffs := uint64(frames)
	if arrival == pinned {
		wantHandoffs = 0
	}
	if got := rx.Stats().Handoffs; got != wantHandoffs {
		t.Fatalf("Handoffs = %d, want %d (arrival shard %d, pinned %d)", got, wantHandoffs, arrival, pinned)
	}
}

// TestReuseportSteeringBalance checks the Linux fast path's deterministic
// cBPF program: with steering attached, an unpinned flow's frames arrive
// on — and are delivered by — exactly the shard its source port hashes to,
// with zero cross-shard handoffs.
func TestReuseportSteeringBalance(t *testing.T) {
	if Plane != "linux-mmsg" {
		t.Skipf("reuseport steering is a Linux fast-path feature (plane %s)", Plane)
	}
	const n = 4
	const frames = 40
	var delivered atomic.Uint64
	execs := make([]sim.Executor, n)
	for i := range execs {
		execs[i] = directExec{}
	}
	rx, err := NewShardedUDPUnderlay("127.0.0.1:0", execs, func(int, wire.NodeID, []byte) {
		delivered.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rx.Close() }()
	if !rx.SteeredRx() {
		t.Skip("steering program not attachable in this environment")
	}
	const flows = 6
	want := make([]uint64, n)
	var sent uint64
	for f := 0; f < flows; f++ {
		tx, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = tx.Close() }()
		id := wire.NodeID(f + 1)
		if err := rx.AddPeer(id, tx.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		if err := tx.AddPeer(100, rx.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		shard := int(mustAddrPort(t, tx.LocalAddr()).Port()) % n
		want[shard] += frames
		for i := 0; i < frames; i++ {
			tx.Send(100, 0, []byte("balance"))
		}
		sent += frames
		if !waitFor(t, 5*time.Second, func() bool { return delivered.Load() == sent }) {
			t.Fatalf("flow %d: delivered %d of %d", f, delivered.Load(), sent)
		}
	}
	for s := 0; s < n; s++ {
		st := rx.ShardStats(s)
		if st.RecvPackets != want[s] || st.RecvDelivered != want[s] {
			t.Fatalf("shard %d: packets=%d delivered=%d, want %d (sport mod %d placement)",
				s, st.RecvPackets, st.RecvDelivered, want[s], n)
		}
	}
	if h := rx.Stats().Handoffs; h != 0 {
		t.Fatalf("steered unpinned flows crossed shards %d times", h)
	}
}

// TestPinFlowValidation covers the steering column's edge cases: pins on
// unknown peers and out-of-range shards are rejected, a pin survives peer
// re-registration, and -1 unpins.
func TestPinFlowValidation(t *testing.T) {
	loops := sim.NewShardedLoop(2)
	defer loops.Close()
	u, err := NewShardedUDPUnderlay("127.0.0.1:0", loops.Executors(), func(int, wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = u.Close() }()
	if err := u.PinFlow(7, 0); err == nil {
		t.Fatal("pin of unregistered peer succeeded")
	}
	if err := u.AddPeer(7, "127.0.0.1:9999"); err != nil {
		t.Fatal(err)
	}
	if err := u.PinFlow(7, 2); err == nil {
		t.Fatal("pin to out-of-range shard succeeded")
	}
	if err := u.PinFlow(7, -2); err == nil {
		t.Fatal("pin to shard -2 succeeded")
	}
	if err := u.PinFlow(7, 1); err != nil {
		t.Fatal(err)
	}
	// Re-registration must preserve the pin.
	if err := u.AddPeer(7, "127.0.0.1:9998"); err != nil {
		t.Fatal(err)
	}
	if home := u.table.Load().peers[7].home; home != 1 {
		t.Fatalf("pin lost across re-registration: home = %d", home)
	}
	if err := u.PinFlow(7, -1); err != nil {
		t.Fatal(err)
	}
	if home := u.table.Load().peers[7].home; home != -1 {
		t.Fatalf("unpin failed: home = %d", home)
	}
}

// Package transport runs the overlay over real networks: UDP datagrams
// carry link-level frames between overlay daemons, and a framed TCP
// protocol connects clients to their overlay node — the client–daemon
// two-level hierarchy of §II-B over actual sockets.
//
// The same protocol state machines that run in the emulator run here,
// driven by a real-time clock and a per-daemon event loop.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// maxMessage bounds a framed client message.
const maxMessage = 1 << 20

// writeFrame writes a length-prefixed message.
func writeFrame(w io.Writer, msg []byte) error {
	if len(msg) > maxMessage {
		return fmt.Errorf("transport: message %d bytes exceeds %d", len(msg), maxMessage)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write frame header: %w", err)
	}
	if _, err := w.Write(msg); err != nil {
		return fmt.Errorf("transport: write frame body: %w", err)
	}
	return nil
}

// readFrame reads a length-prefixed message.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMessage {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds %d", n, maxMessage)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// Client–daemon message kinds.
const (
	msgConnect byte = iota + 1
	msgJoin
	msgLeave
	msgOpenFlow
	msgSend
	msgDeliver
	msgError
	msgOK
)

package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sonet/internal/wire"
)

// captureExec queues posted closures without running them, so tests can
// control exactly when (and whether) dispatch happens.
type captureExec struct {
	mu    sync.Mutex
	tasks []func()
}

func (e *captureExec) Post(fn func()) {
	e.mu.Lock()
	e.tasks = append(e.tasks, fn)
	e.mu.Unlock()
}

func (e *captureExec) pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.tasks)
}

func (e *captureExec) runAll() {
	e.mu.Lock()
	tasks := e.tasks
	e.tasks = nil
	e.mu.Unlock()
	for _, fn := range tasks {
		fn()
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// TestAddPeerReRegistrationDropsStaleSenders covers the copy-on-write
// sender table: when a peer re-registers with new addresses, frames from
// its old address must be dropped as unknown.
func TestAddPeerReRegistrationDropsStaleSenders(t *testing.T) {
	var got atomic.Uint64
	a, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(from wire.NodeID, data []byte) {
		got.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	old, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = old.Close() }()
	if err := a.AddPeer(2, old.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := old.AddPeer(1, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	old.Send(1, 0, []byte("before"))
	if !waitFor(t, 2*time.Second, func() bool { return got.Load() == 1 }) {
		t.Fatalf("frame from registered address not delivered (got %d)", got.Load())
	}

	// Peer 2 moves: re-register with a different address. The old socket's
	// address must be unregistered by the same AddPeer call.
	renumbered, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = renumbered.Close() }()
	if err := renumbered.AddPeer(1, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer(2, renumbered.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	unknownBefore := a.Stats().RecvUnknown
	old.Send(1, 0, []byte("stale"))
	if !waitFor(t, 2*time.Second, func() bool { return a.Stats().RecvUnknown > unknownBefore }) {
		t.Fatal("frame from stale address was not counted unknown")
	}
	if got.Load() != 1 {
		t.Fatalf("frame from stale address was delivered (got %d)", got.Load())
	}
	// The new address works.
	renumbered.Send(1, 0, []byte("after"))
	if !waitFor(t, 2*time.Second, func() bool { return got.Load() == 2 }) {
		t.Fatalf("frame from re-registered address not delivered (got %d)", got.Load())
	}
}

// TestUDPUnderlayCloseMidBatch covers the teardown contract: a receive
// batch already posted to the executor when Close runs must not reach the
// handler, and done/Close stay idempotent even when racing.
func TestUDPUnderlayCloseMidBatch(t *testing.T) {
	exec := &captureExec{}
	var delivered atomic.Uint64
	a, err := NewUDPUnderlay("127.0.0.1:0", exec, func(wire.NodeID, []byte) {
		delivered.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	if err := a.AddPeer(2, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.Send(1, 0, []byte("mid-batch"))
	if !waitFor(t, 2*time.Second, func() bool { return exec.pending() > 0 }) {
		t.Fatal("receive batch never posted")
	}
	// Close while the batch sits queued; racing Closes must both return.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Close()
		}()
	}
	wg.Wait()
	// The queued batch runs after Close: buffers are released, the handler
	// is never invoked.
	exec.runAll()
	if delivered.Load() != 0 {
		t.Fatalf("handler invoked %d times after Close", delivered.Load())
	}
	if err := a.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
}

// TestUDPUnderlayLifecycleRace hammers Send, AddPeer, PathCount, and
// Stats from many goroutines while the underlay closes mid-traffic; run
// under -race this covers the lock-free snapshot reads against the
// copy-on-write updates and teardown.
func TestUDPUnderlayLifecycleRace(t *testing.T) {
	a, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	if err := a.AddPeer(2, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	payload := []byte("race")
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 4 {
				case 0:
					a.Send(2, uint8(i), payload)
				case 1:
					_ = a.AddPeer(2, b.LocalAddr())
				case 2:
					_ = a.PathCount(2)
				case 3:
					_ = a.Stats()
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatalf("Close during traffic: %v", err)
	}
	close(stop)
	wg.Wait()
	// Post-close operations are harmless no-ops.
	a.Send(2, 0, payload)
	if n := a.PathCount(2); n < 1 {
		t.Fatalf("PathCount after close = %d", n)
	}
}

// TestUDPUnderlayBatchDelivery floods frames (including an empty one)
// through the batched plane and checks the WireStats ledger: everything
// sent is counted, everything delivered matches, and the coalescing ring
// actually batches flushes when many frames share one turn.
func TestUDPUnderlayBatchDelivery(t *testing.T) {
	var delivered atomic.Uint64
	var emptySeen atomic.Uint64
	a, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(from wire.NodeID, data []byte) {
		delivered.Add(1)
		if len(data) == 0 {
			emptySeen.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	exec := &captureExec{}
	b, err := NewUDPUnderlay("127.0.0.1:0", exec, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	if err := a.AddPeer(2, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// With a capturing executor the flush does not run until released, so
	// every frame of the "turn" coalesces into one flush.
	const frames = 100
	for i := 0; i < frames-1; i++ {
		b.Send(1, 0, []byte(fmt.Sprintf("frame-%03d", i)))
	}
	b.Send(1, 0, nil) // empty datagrams are legal
	exec.runAll()     // one flush for the whole turn
	if !waitFor(t, 5*time.Second, func() bool { return delivered.Load() == frames }) {
		t.Fatalf("delivered %d of %d", delivered.Load(), frames)
	}
	if emptySeen.Load() != 1 {
		t.Fatalf("empty datagram delivered %d times", emptySeen.Load())
	}
	sent := b.Stats()
	if sent.SendPackets != frames || sent.SendDropped != 0 {
		t.Fatalf("sender stats = %+v", sent)
	}
	if sent.SendBatches != 1 {
		t.Fatalf("coalescing ring flushed %d times for one turn", sent.SendBatches)
	}
	recv := a.Stats()
	if recv.RecvPackets != frames {
		t.Fatalf("receiver counted %d of %d packets", recv.RecvPackets, frames)
	}
	if recv.RecvBatches == 0 || recv.RecvBatches > recv.RecvPackets {
		t.Fatalf("receiver batches = %d for %d packets", recv.RecvBatches, recv.RecvPackets)
	}
	if Plane == "linux-mmsg" && recv.RecvBatches == recv.RecvPackets {
		t.Logf("note: no multi-datagram wakeups observed (load too light to batch)")
	}
}

// TestUDPUnderlaySendRingOverflow checks the bounded coalescing ring:
// with the flush withheld, frames past the cap are dropped and counted
// rather than buffered without bound.
func TestUDPUnderlaySendRingOverflow(t *testing.T) {
	exec := &captureExec{}
	u, err := NewUDPUnderlay("127.0.0.1:0", exec, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = u.Close() }()
	sink, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sink.Close() }()
	if err := u.AddPeer(2, sink.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxPending+10; i++ {
		u.Send(2, 0, []byte("x"))
	}
	if d := u.Stats().SendDropped; d != 10 {
		t.Fatalf("dropped %d frames past the ring cap, want 10", d)
	}
	exec.runAll()
	if sp := u.Stats().SendPackets; sp != maxPending {
		t.Fatalf("flushed %d frames, want %d", sp, maxPending)
	}
}

package transport

import (
	"fmt"
	"sort"

	"sonet/internal/wire"
)

// TopologyConfig is the single shared description of a deployment from
// which every daemon's DaemonConfig is generated: the overlay links plus
// each node's addresses.
type TopologyConfig struct {
	// Links is the designed overlay topology.
	Links []LinkDef `json:"links"`
	// Nodes maps each overlay node to its deployment addresses.
	Nodes map[wire.NodeID]NodeAddr `json:"nodes"`
	// HelloIntervalMs optionally overrides failure detection everywhere.
	HelloIntervalMs int `json:"hello_interval_ms"`
	// Shards optionally sets every daemon's data-plane shard count
	// (0 means one shard per core, capped — see DaemonConfig.Shards).
	Shards int `json:"shards"`
}

// NodeAddr is one node's bind and advertised addresses.
type NodeAddr struct {
	// UDP is the node's frame address, both bound and advertised to
	// peers. Additional entries express multihoming (one per provider).
	UDP []string `json:"udp"`
	// TCP is the client listener bind address; empty disables clients.
	TCP string `json:"tcp"`
}

// GenerateConfigs expands a shared topology into one DaemonConfig per
// node, validating that every link endpoint has addresses and that every
// node appears in the topology.
func GenerateConfigs(tc TopologyConfig) (map[wire.NodeID]DaemonConfig, error) {
	if len(tc.Links) == 0 {
		return nil, fmt.Errorf("transport: topology has no links")
	}
	inTopo := make(map[wire.NodeID]bool)
	for _, l := range tc.Links {
		if l.A == l.B || l.A == 0 || l.B == 0 {
			return nil, fmt.Errorf("transport: bad link %v-%v", l.A, l.B)
		}
		if l.LatencyMs <= 0 {
			return nil, fmt.Errorf("transport: link %v-%v needs a positive latency", l.A, l.B)
		}
		inTopo[l.A] = true
		inTopo[l.B] = true
	}
	ids := make([]wire.NodeID, 0, len(inTopo))
	for id := range inTopo {
		if _, ok := tc.Nodes[id]; !ok {
			return nil, fmt.Errorf("transport: node %v has no addresses", id)
		}
		ids = append(ids, id)
	}
	for id := range tc.Nodes {
		if !inTopo[id] {
			return nil, fmt.Errorf("transport: node %v has addresses but no links", id)
		}
		if len(tc.Nodes[id].UDP) == 0 {
			return nil, fmt.Errorf("transport: node %v needs at least one UDP address", id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make(map[wire.NodeID]DaemonConfig, len(ids))
	for _, id := range ids {
		peers := make(map[wire.NodeID][]string, len(ids)-1)
		for _, peer := range ids {
			if peer == id {
				continue
			}
			peers[peer] = append([]string(nil), tc.Nodes[peer].UDP...)
		}
		out[id] = DaemonConfig{
			ID:              id,
			BindUDP:         tc.Nodes[id].UDP[0],
			BindTCP:         tc.Nodes[id].TCP,
			Peers:           peers,
			Links:           append([]LinkDef(nil), tc.Links...),
			HelloIntervalMs: tc.HelloIntervalMs,
			Shards:          tc.Shards,
		}
	}
	return out, nil
}

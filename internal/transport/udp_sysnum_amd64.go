//go:build linux && !sonet_portable

package transport

// recvmmsg/sendmmsg syscall numbers for linux/amd64. The syscall package
// predates sendmmsg and never regenerated its tables, so the numbers live
// here (see arch(2) syscall tables).
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)

//go:build linux && !sonet_portable

package transport

// recvmmsg/sendmmsg syscall numbers for linux/arm64 (the generic 64-bit
// syscall table).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)

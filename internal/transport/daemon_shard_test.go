package transport

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/session"
	"sonet/internal/wire"
)

// testShards returns the DaemonConfig.Shards value for suite-constructed
// daemons: 0 (auto) unless SONET_DAEMON_SHARDS overrides it — make
// test-race pins the suite at 4 so the sharded protocol path runs under
// the race detector.
func testShards() int {
	if v := os.Getenv("SONET_DAEMON_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

func TestDaemonHomesPeersByHash(t *testing.T) {
	const shards = 4
	links := []LinkDef{{A: 1, B: 2, LatencyMs: 1}, {A: 2, B: 3, LatencyMs: 1}}
	d, err := NewDaemon(DaemonConfig{
		ID: 2, BindUDP: "127.0.0.1:0", Links: links,
		HelloIntervalMs: 3600000, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if d.Shards() != shards {
		t.Fatalf("daemon runs %d shards, want %d", d.Shards(), shards)
	}
	if d.DataPlane() == nil {
		t.Fatal("sharded daemon has no protocol data plane")
	}
	if err := d.AddPeer(1, "127.0.0.1:9001"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPeer(3, "127.0.0.1:9003"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []wire.NodeID{1, 3} {
		want := int32(wire.HomeShard(id, shards))
		if got := d.udp.table.Load().peers[id].home; got != want {
			t.Errorf("peer %d pinned to shard %d, want home %d", id, got, want)
		}
	}
	// Re-registering addresses (address exchange repeats out of band) must
	// not move a live flow off its home.
	if err := d.udp.AddPeer(1, "127.0.0.1:9011"); err != nil {
		t.Fatal(err)
	}
	want := int32(wire.HomeShard(1, shards))
	if got := d.udp.table.Load().peers[1].home; got != want {
		t.Errorf("re-AddPeer moved peer 1 to shard %d, want home %d", got, want)
	}
}

// TestDaemonSteeredArrivalMatchesHome drives data frames at a sharded
// daemon from a sender whose UDP source port lands, under the reuseport
// steering program, on the sending peer's home shard — and asserts the
// whole protocol path ran there: deliveries accrue to the home shard's
// ledger and no frame crossed shards (Handoffs stays zero).
func TestDaemonSteeredArrivalMatchesHome(t *testing.T) {
	const shards = 4
	var src wire.NodeID
	for id := wire.NodeID(1); id < 100; id++ {
		if id != 2 && wire.HomeShard(id, shards) != 0 {
			src = id
			break
		}
	}
	home := wire.HomeShard(src, shards)
	links := []LinkDef{{A: src, B: 2, LatencyMs: 1}}
	d, err := NewDaemon(DaemonConfig{
		ID: 2, BindUDP: "127.0.0.1:0", Links: links,
		HelloIntervalMs: 3600000, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if !d.udp.SteeredRx() {
		t.Skip("reuseport steering program not attached; arrival shard is not deterministic")
	}

	// Hunt for a driver socket whose port residue equals the home shard,
	// parking mismatched binds so the allocator cannot hand them back.
	var drv *UDPUnderlay
	var parked []*UDPUnderlay
	defer func() {
		for _, p := range parked {
			_ = p.Close()
		}
	}()
	for i := 0; i < 1024 && drv == nil; i++ {
		u, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		_, portStr, err := net.SplitHostPort(u.LocalAddr())
		if err != nil {
			t.Fatal(err)
		}
		port, _ := strconv.Atoi(portStr)
		if port%shards == home {
			drv = u
		} else {
			parked = append(parked, u)
		}
	}
	if drv == nil {
		t.Skip("could not bind a residue-matching source port")
	}
	defer func() { _ = drv.Close() }()
	if err := drv.AddPeer(2, d.UDPAddr()); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPeer(src, drv.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	// Unicast data frames addressed to the daemon itself: the home shard
	// decodes, runs the link protocol, routes against the snapshot, and
	// clones the delivery to the control shard.
	const sent = 64
	f := &wire.Frame{Proto: wire.LPBestEffort, Kind: wire.FData, Packet: &wire.Packet{
		Type: wire.PTData, Route: wire.RouteLinkState, TTL: 4, Src: src, Dst: 2,
	}}
	for i := 0; i < sent; i++ {
		f.Packet.FlowSeq = uint32(i + 1)
		b, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		drv.Send(2, 0, b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.NodeStats().DeliveredLocal < sent {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d", d.NodeStats().DeliveredLocal, sent)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var handoffs uint64
	for i := 0; i < shards; i++ {
		st := d.ShardStats(i)
		handoffs += st.Handoffs
		if i != home && st.RecvDelivered > 0 {
			t.Errorf("shard %d delivered %d frames; all should land on home shard %d",
				i, st.RecvDelivered, home)
		}
	}
	if handoffs != 0 {
		t.Errorf("steered arrivals crossed shards %d times, want 0", handoffs)
	}
	if got := d.ShardStats(home).RecvDelivered; got < sent {
		t.Errorf("home shard delivered %d frames, want >= %d", got, sent)
	}
}

// TestDaemonShardLedgersSumAndBalance pushes intrusion-tolerant traffic
// through a 3-daemon chain running the sharded protocol plane and checks
// the accounting: per-shard wire ledgers sum to each daemon's aggregate,
// and the merged fair-scheduler ledger balances (every enqueued packet
// transmitted, dropped for an attributed cause, or still queued).
func TestDaemonShardLedgersSumAndBalance(t *testing.T) {
	links := []LinkDef{{A: 1, B: 2, LatencyMs: 1}, {A: 2, B: 3, LatencyMs: 1}}
	daemons := make(map[wire.NodeID]*Daemon, 3)
	addrs := make(map[wire.NodeID][]string, 3)
	for i := 1; i <= 3; i++ {
		id := wire.NodeID(i)
		cfg := DaemonConfig{
			ID: id, BindUDP: "127.0.0.1:0", Links: links,
			HelloIntervalMs: 3600000, Shards: 4,
		}
		if id != 2 {
			cfg.BindTCP = "127.0.0.1:0"
		}
		d, err := NewDaemon(cfg)
		if err != nil {
			t.Fatalf("NewDaemon(%d): %v", i, err)
		}
		daemons[id] = d
		addrs[id] = []string{d.UDPAddr()}
		t.Cleanup(d.Close)
	}
	for id, d := range daemons {
		for peer, as := range addrs {
			if peer == id {
				continue
			}
			if err := d.AddPeer(peer, as...); err != nil {
				t.Fatal(err)
			}
		}
	}
	var mu sync.Mutex
	received := 0
	recv, err := Dial(daemons[3].TCPAddr(), 700, func(session.Delivery) {
		mu.Lock()
		received++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = recv.Close() }()
	send, err := Dial(daemons[1].TCPAddr(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = send.Close() }()
	flow, err := send.OpenFlow(session.FlowSpec{
		DstNode: 3, DstPort: 700, LinkProto: wire.LPITPriority,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paced below the DRR drain rate: a tight-loop burst would (by
	// design) evict from the bounded fair queue, and this test wants full
	// delivery so the end-to-end count is exact.
	const n = 100
	for i := 0; i < n; i++ {
		if err := flow.Send([]byte(fmt.Sprintf("it%d", i))); err != nil {
			t.Fatalf("Send: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		count := received
		mu.Unlock()
		if count >= n {
			break
		}
		if time.Now().After(deadline) {
			for id, d := range daemons {
				t.Logf("daemon %d: node %+v sched %+v", id, d.NodeStats(), d.SchedStats())
			}
			t.Fatalf("received %d/%d", count, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Traffic has quiesced (hellos are hours apart); ledgers are stable.
	time.Sleep(100 * time.Millisecond)
	for id, d := range daemons {
		var sum metrics.WireSnapshot
		for i := 0; i < d.Shards(); i++ {
			sum = sum.Merge(d.ShardStats(i))
		}
		if agg := d.WireStats(); sum != agg {
			t.Errorf("daemon %d: shard wire ledgers sum %+v != aggregate %+v", id, sum, agg)
		}
		if sched := d.SchedStats(); !sched.Balanced() {
			t.Errorf("daemon %d: scheduler ledger unbalanced: %+v", id, sched)
		}
	}
	// The transit daemon's protocol work happened on its shards: the
	// merged node stats must show the forwarding.
	if fwd := daemons[2].NodeStats().Forwarded; fwd < n {
		t.Errorf("transit daemon forwarded %d, want >= %d", fwd, n)
	}
}

//go:build !linux || sonet_portable || !(amd64 || arm64)

// The portable data plane: one datagram per kernel crossing through the
// net package, sharing the slab buffer-ownership model and the coalescing
// ring with the Linux fast path — only the batch width differs. The
// sonet_portable build tag compiles this file in on Linux too, so the
// full transport test suite can exercise the fallback there.

package transport

import (
	"fmt"
	"net"
	"net/netip"

	"sonet/internal/wire"
)

// Plane identifies the compiled data plane for diagnostics and the
// EXP-WIRE report.
const Plane = "portable"

// openShardConns on the portable plane always binds exactly one socket,
// whatever the shard count: the single read loop becomes a dispatcher
// that steers each decoded datagram to its flow's shard by the
// deterministic flow hash (SO_REUSEPORT steering is a Linux fast-path
// feature). Shard tx rings all flush through this socket — the net
// package serializes concurrent writes safely.
func openShardConns(bind string, n int) ([]*net.UDPConn, bool, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, false, fmt.Errorf("transport: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, false, fmt.Errorf("transport: listen %q: %w", bind, err)
	}
	setShardSockBufs(conn)
	return []*net.UDPConn{conn}, false, nil
}

// batchReader reads one datagram per wakeup into slab segment 0.
type batchReader struct {
	conn *net.UDPConn
	slab *wire.Slab

	addrs []netip.AddrPort
	lens  []int
}

func newBatchReader(conn *net.UDPConn) (*batchReader, error) {
	return &batchReader{
		conn:  conn,
		slab:  wire.DefaultSlabs.Get(),
		addrs: make([]netip.AddrPort, 1),
		lens:  make([]int, 1),
	}, nil
}

// segment returns the slab landing area of datagram i from the last read.
func (br *batchReader) segment(i int) []byte { return br.slab.Segment(i) }

// release returns the slab to the shared pool.
func (br *batchReader) release() { wire.DefaultSlabs.Put(br.slab) }

// read blocks for one datagram. ReadFromUDPAddrPort keeps the path
// allocation-free: no *net.UDPAddr and no addr.String() per packet.
func (br *batchReader) read() (int, error) {
	n, ap, err := br.conn.ReadFromUDPAddrPort(br.slab.Segment(0))
	if err != nil {
		return 0, err
	}
	br.lens[0] = n
	br.addrs[0] = canonAddrPort(ap)
	return 1, nil
}

// batchWriter writes coalesced frames with one syscall each.
type batchWriter struct {
	conn *net.UDPConn
}

func newBatchWriter(conn *net.UDPConn) (*batchWriter, error) {
	return &batchWriter{conn: conn}, nil
}

// send hands frames to the kernel in order. Errors are indistinguishable
// from loss, like IP: the frame is counted dropped and the flush goes on.
func (bw *batchWriter) send(frames []outFrame) (sent, dropped int, bytes uint64) {
	for _, f := range frames {
		if _, err := bw.conn.WriteToUDPAddrPort(f.buf.B, f.to); err != nil {
			dropped++
			continue
		}
		sent++
		bytes += uint64(len(f.buf.B))
	}
	return sent, dropped, bytes
}

package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"sonet/internal/session"
	"sonet/internal/wire"
)

// Client speaks the framed TCP session protocol to an overlay daemon —
// the remote half of the client–daemon hierarchy (§II-B). It is safe for
// concurrent use.
type Client struct {
	conn net.Conn

	mu       sync.Mutex
	nextFlow uint16
	port     wire.Port
	onErr    func(error)

	deliver   func(session.Delivery)
	connected chan wire.Port
	closed    bool
	done      chan struct{}
}

// Dial connects to a daemon's client listener and binds the given virtual
// port (zero for ephemeral). deliver receives incoming messages.
func Dial(addr string, port wire.Port, deliver func(session.Delivery)) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", addr, err)
	}
	c := &Client{
		conn:      conn,
		deliver:   deliver,
		connected: make(chan wire.Port, 1),
		done:      make(chan struct{}),
	}
	go c.readLoop()
	req := make([]byte, 3)
	req[0] = msgConnect
	binary.BigEndian.PutUint16(req[1:], uint16(port))
	if err := c.write(req); err != nil {
		_ = conn.Close()
		return nil, err
	}
	select {
	case p, ok := <-c.connected:
		if !ok {
			_ = conn.Close()
			return nil, fmt.Errorf("transport: daemon refused connect")
		}
		c.mu.Lock()
		c.port = p
		c.mu.Unlock()
	case <-time.After(5 * time.Second):
		_ = conn.Close()
		return nil, fmt.Errorf("transport: connect timeout")
	}
	return c, nil
}

// Port returns the bound virtual port.
func (c *Client) Port() wire.Port {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.port
}

// OnError installs a callback for asynchronous daemon errors.
func (c *Client) OnError(fn func(error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onErr = fn
}

// Close terminates the session.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

// Join subscribes the client's node to a multicast group.
func (c *Client) Join(g wire.GroupID) error {
	msg := make([]byte, 5)
	msg[0] = msgJoin
	binary.BigEndian.PutUint32(msg[1:], uint32(g))
	return c.write(msg)
}

// Leave unsubscribes from a multicast group.
func (c *Client) Leave(g wire.GroupID) error {
	msg := make([]byte, 5)
	msg[0] = msgLeave
	binary.BigEndian.PutUint32(msg[1:], uint32(g))
	return c.write(msg)
}

// RemoteFlow is a flow opened over the client protocol.
type RemoteFlow struct {
	c  *Client
	id uint16
}

// OpenFlow opens a flow with the given service selection.
func (c *Client) OpenFlow(spec session.FlowSpec) (*RemoteFlow, error) {
	c.mu.Lock()
	c.nextFlow++
	id := c.nextFlow
	c.mu.Unlock()
	msg := make([]byte, 20)
	msg[0] = msgOpenFlow
	binary.BigEndian.PutUint16(msg[1:], id)
	binary.BigEndian.PutUint16(msg[3:], uint16(spec.DstNode))
	binary.BigEndian.PutUint16(msg[5:], uint16(spec.DstPort))
	binary.BigEndian.PutUint32(msg[7:], uint32(spec.Group))
	var flags byte
	if spec.Anycast {
		flags |= flowFlagAnycast
	}
	if spec.Ordered {
		flags |= flowFlagOrdered
	}
	if spec.Flood {
		flags |= flowFlagFlood
	}
	msg[11] = flags
	msg[12] = byte(spec.LinkProto)
	msg[13] = byte(spec.DisjointK)
	msg[14] = byte(spec.Dissem)
	binary.BigEndian.PutUint32(msg[15:], uint32(spec.Deadline/time.Microsecond))
	msg[19] = spec.Priority
	if err := c.write(msg); err != nil {
		return nil, err
	}
	return &RemoteFlow{c: c, id: id}, nil
}

// Send transmits one message on the flow.
func (f *RemoteFlow) Send(payload []byte) error {
	msg := make([]byte, 3, 3+len(payload))
	msg[0] = msgSend
	binary.BigEndian.PutUint16(msg[1:], f.id)
	msg = append(msg, payload...)
	return f.c.write(msg)
}

func (c *Client) write(msg []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("transport: client closed")
	}
	return writeFrame(c.conn, msg)
}

func (c *Client) readLoop() {
	defer close(c.done)
	first := true
	for {
		msg, err := readFrame(c.conn)
		if err != nil {
			if first {
				close(c.connected)
			}
			return
		}
		if len(msg) == 0 {
			continue
		}
		switch msg[0] {
		case msgOK:
			if first && len(msg) >= 3 {
				first = false
				c.connected <- wire.Port(binary.BigEndian.Uint16(msg[1:]))
			}
		case msgError:
			c.mu.Lock()
			fn := c.onErr
			c.mu.Unlock()
			if fn != nil {
				fn(fmt.Errorf("daemon: %s", msg[1:]))
			}
			if first {
				first = false
				close(c.connected)
				return
			}
		case msgDeliver:
			if len(msg) < 22 {
				continue
			}
			d := session.Delivery{
				From:          wire.NodeID(binary.BigEndian.Uint16(msg[1:])),
				SrcPort:       wire.Port(binary.BigEndian.Uint16(msg[3:])),
				Seq:           binary.BigEndian.Uint32(msg[5:]),
				Group:         wire.GroupID(binary.BigEndian.Uint32(msg[9:])),
				Latency:       time.Duration(binary.BigEndian.Uint64(msg[13:])),
				Retransmitted: msg[21] == 1,
				Payload:       append([]byte(nil), msg[22:]...),
			}
			if c.deliver != nil {
				c.deliver(d)
			}
		}
	}
}

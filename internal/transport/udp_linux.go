//go:build linux && (amd64 || arm64) && !sonet_portable

// The Linux batch data plane: recvmmsg drains up to wire.ReadBatch
// datagrams per readiness wakeup and sendmmsg flushes a whole coalescing
// ring in one kernel crossing. Both integrate with the runtime netpoller
// through syscall.RawConn — the raw calls are non-blocking and the
// callback contract parks the goroutine until the socket is ready, so
// batching never busy-waits and never blocks an OS thread.
//
// Build with -tags sonet_portable to compile this file out and exercise
// the portable per-datagram path on Linux (the transport test suite runs
// under both).

package transport

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"syscall"
	"unsafe"

	"sonet/internal/wire"
)

// Plane identifies the compiled data plane for diagnostics and the
// EXP-WIRE report.
const Plane = "linux-mmsg"

// Socket options the syscall package does not name on Linux.
const (
	soReusePort           = 0xf // SO_REUSEPORT
	soAttachReuseportCBPF = 51  // SO_ATTACH_REUSEPORT_CBPF
)

// skfNetOff is classic BPF's SKF_NET_OFF as the kernel sees it: loads at
// k >= this magic offset read relative to the network (IP) header even
// though the reuseport program's data pointer starts at the UDP payload.
const skfNetOff = 0xfff00000

// reuseportSteerProg builds the classic-BPF program attached to the
// shard socket group: return the datagram's UDP source port mod n, which
// reuseport interprets as the index of the socket (= shard) to deliver
// to. A remote endpoint keeps one source port for the life of its
// socket, so steering is per-flow stable AND deterministic — unlike the
// kernel's seeded 4-tuple hash, the shard of a flow is predictable from
// its port, which the scaling benchmarks and the steering tests rely on.
// The program handles IPv4 (honoring IHL) and IPv6 (fixed 40-byte
// header; datagrams with extension headers fall back to whatever port
// bytes sit at offset 40 — mis-steering only costs balance, never
// correctness, because a given flow's datagrams still all read the same
// bytes).
func reuseportSteerProg(n int) []syscall.SockFilter {
	// Opcodes: BPF_LD=0x00 BPF_ALU=0x04 BPF_JMP=0x05 BPF_RET=0x06
	// BPF_MISC=0x07 | size W=0x00 H=0x08 B=0x10 | mode ABS=0x20 IND=0x40
	// | BPF_AND=0x50 BPF_LSH=0x60 BPF_MOD=0x90 BPF_JEQ=0x10 BPF_TAX=0x00
	// | RET+A=0x10.
	k := uint32(n)
	return []syscall.SockFilter{
		{Code: 0x30, K: skfNetOff},             // ldb [net+0]       IP version/IHL
		{Code: 0x54, K: 0xf0},                  // and #0xf0
		{Code: 0x15, Jt: 0, Jf: 7, K: 0x40},    // jeq #0x40 ? v4 : v6
		{Code: 0x30, K: skfNetOff},             // ldb [net+0]
		{Code: 0x54, K: 0x0f},                  // and #0x0f         IHL in words
		{Code: 0x64, K: 2},                     // lsh #2            IHL in bytes
		{Code: 0x07},                           // tax
		{Code: 0x48, K: skfNetOff},             // ldh [x + net+0]   UDP source port
		{Code: 0x94, K: k},                     // mod #n
		{Code: 0x16},                           // ret A
		{Code: 0x28, K: skfNetOff + 40},        // v6: ldh [net+40]  UDP source port
		{Code: 0x94, K: k},                     // mod #n
		{Code: 0x16},                           // ret A
	}
}

// openShardConns binds the shard sockets. One shard binds a plain socket
// (bit-identical to the pre-shard plane). More than one binds an
// SO_REUSEPORT group — every socket on the same address and port — and
// attaches the steering program to the group; if the kernel refuses the
// program (old kernel, seccomp), the sockets still work under the
// kernel's own per-4-tuple hash and steered reports false.
func openShardConns(bind string, n int) ([]*net.UDPConn, bool, error) {
	if n == 1 {
		addr, err := net.ResolveUDPAddr("udp", bind)
		if err != nil {
			return nil, false, fmt.Errorf("transport: resolve %q: %w", bind, err)
		}
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			return nil, false, fmt.Errorf("transport: listen %q: %w", bind, err)
		}
		setShardSockBufs(conn)
		return []*net.UDPConn{conn}, false, nil
	}
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	conns := make([]*net.UDPConn, 0, n)
	fail := func(err error) ([]*net.UDPConn, bool, error) {
		for _, c := range conns {
			_ = c.Close()
		}
		return nil, false, err
	}
	target := bind
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", target)
		if err != nil {
			return fail(fmt.Errorf("transport: listen shard %d of %d on %q: %w", i, n, target, err))
		}
		conns = append(conns, pc.(*net.UDPConn))
		setShardSockBufs(conns[i])
		if i == 0 {
			// An ephemeral bind resolved to a concrete port; the remaining
			// group members must join it, not pick their own.
			target = conns[0].LocalAddr().String()
		}
	}
	steered := attachReuseportSteering(conns[0], n) == nil
	return conns, steered, nil
}

// attachReuseportSteering attaches the steering program to the group
// through any member socket.
func attachReuseportSteering(conn *net.UDPConn, n int) error {
	rc, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	prog := reuseportSteerProg(n)
	fprog := syscall.SockFprog{Len: uint16(len(prog)), Filter: &prog[0]}
	var serr error
	if err := rc.Control(func(fd uintptr) {
		// The syscall package has no SetsockoptSockFprog; raw setsockopt
		// with the fprog struct is the same call the stdlib would make.
		_, _, errno := syscall.Syscall6(syscall.SYS_SETSOCKOPT, fd,
			syscall.SOL_SOCKET, soAttachReuseportCBPF,
			uintptr(unsafe.Pointer(&fprog)), unsafe.Sizeof(fprog), 0)
		if errno != 0 {
			serr = errno
		}
	}); err != nil {
		return err
	}
	return serr
}

// mmsghdr mirrors struct mmsghdr: one msghdr plus the kernel-filled
// datagram length. Trailing padding matches C struct layout on every
// linux arch (the compiler rounds the struct to msghdr's alignment).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// zeroByte anchors the iovec of an empty datagram (an iov_base may not be
// nil alongside a non-empty msg control-free header on some kernels).
var zeroByte byte

// batchReader drains the socket with recvmmsg into a pooled slab.
type batchReader struct {
	rc   syscall.RawConn
	slab *wire.Slab
	hdrs []mmsghdr
	iovs []syscall.Iovec
	// names is the per-slot sockaddr storage; RawSockaddrInet6 is large
	// enough for both address families.
	names []syscall.RawSockaddrInet6

	// addrs and lens describe the datagrams of the last read.
	addrs []netip.AddrPort
	lens  []int
}

func newBatchReader(conn *net.UDPConn) (*batchReader, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	k := wire.ReadBatch
	br := &batchReader{
		rc:    rc,
		slab:  wire.DefaultSlabs.Get(),
		hdrs:  make([]mmsghdr, k),
		iovs:  make([]syscall.Iovec, k),
		names: make([]syscall.RawSockaddrInet6, k),
		addrs: make([]netip.AddrPort, k),
		lens:  make([]int, k),
	}
	for i := 0; i < k; i++ {
		seg := br.slab.Segment(i)
		br.iovs[i].Base = &seg[0]
		br.iovs[i].SetLen(len(seg))
		br.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&br.names[i]))
		br.hdrs[i].hdr.Iov = &br.iovs[i]
		br.hdrs[i].hdr.Iovlen = 1
	}
	return br, nil
}

// segment returns the slab landing area of datagram i from the last read.
func (br *batchReader) segment(i int) []byte { return br.slab.Segment(i) }

// release returns the slab to the shared pool.
func (br *batchReader) release() { wire.DefaultSlabs.Put(br.slab) }

// read blocks until the socket is readable, then drains up to
// wire.ReadBatch datagrams in one recvmmsg call. It returns the number of
// datagrams received; addrs and lens describe them. A non-nil error means
// the socket is closed.
func (br *batchReader) read() (int, error) {
	var n int
	var operr error
	err := br.rc.Read(func(fd uintptr) bool {
		for i := range br.hdrs {
			br.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
			br.hdrs[i].n = 0
		}
		for {
			r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&br.hdrs[0])), uintptr(len(br.hdrs)),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				n = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park until readable
			default:
				operr = errno
				return true
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if operr != nil {
		return 0, operr
	}
	for i := 0; i < n; i++ {
		br.lens[i] = int(br.hdrs[i].n)
		br.addrs[i] = rawToAddrPort(&br.names[i])
	}
	return n, nil
}

// batchWriter flushes coalesced frames with sendmmsg.
type batchWriter struct {
	rc    syscall.RawConn
	v6    bool
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
}

func newBatchWriter(conn *net.UDPConn) (*batchWriter, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	bw := &batchWriter{
		rc:    rc,
		hdrs:  make([]mmsghdr, wire.ReadBatch),
		iovs:  make([]syscall.Iovec, wire.ReadBatch),
		names: make([]syscall.RawSockaddrInet6, wire.ReadBatch),
	}
	// The sockaddr family must match the socket's, not the destination's:
	// an AF_INET6 socket wants v4 destinations mapped, an AF_INET socket
	// cannot reach v6 at all.
	cerr := rc.Control(func(fd uintptr) {
		sa, err := syscall.Getsockname(int(fd))
		if err == nil {
			_, bw.v6 = sa.(*syscall.SockaddrInet6)
		}
	})
	if cerr != nil {
		return nil, cerr
	}
	for i := range bw.hdrs {
		bw.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&bw.names[i]))
		bw.hdrs[i].hdr.Iov = &bw.iovs[i]
		bw.hdrs[i].hdr.Iovlen = 1
	}
	return bw, nil
}

// send hands frames to the kernel in sendmmsg batches, preserving order.
// Undeliverable frames (family mismatch, per-datagram socket errors) are
// dropped, like IP would. It returns datagrams sent, datagrams dropped,
// and payload bytes sent.
func (bw *batchWriter) send(frames []outFrame) (sent, dropped int, bytes uint64) {
	off := 0
	for off < len(frames) {
		// Build the next batch.
		k := 0
		for k < len(bw.hdrs) && off+k < len(frames) {
			f := frames[off+k]
			nl, ok := bw.encodeAddr(k, f.to)
			if !ok {
				if k == 0 {
					off++
					dropped++
					continue
				}
				break // flush what is built, then retry the bad one alone
			}
			bw.hdrs[k].hdr.Namelen = nl
			if len(f.buf.B) == 0 {
				bw.iovs[k].Base = &zeroByte
				bw.iovs[k].SetLen(0)
			} else {
				bw.iovs[k].Base = &f.buf.B[0]
				bw.iovs[k].SetLen(len(f.buf.B))
			}
			k++
		}
		if k == 0 {
			continue
		}
		n, errno := bw.sendBatch(k)
		if n > 0 {
			for i := 0; i < n; i++ {
				bytes += uint64(len(frames[off+i].buf.B))
			}
			sent += n
			off += n
			continue
		}
		if errno != 0 {
			// The head datagram failed (e.g. a routing error); drop it and
			// make progress on the rest.
			off++
			dropped++
			continue
		}
		// Closed connection: everything left is dropped.
		dropped += len(frames) - off
		return sent, dropped, bytes
	}
	return sent, dropped, bytes
}

// sendBatch performs one sendmmsg over the first k prepared headers,
// waiting for writability as needed. It returns datagrams accepted and
// the errno that stopped the batch (0 with n==0 means the socket closed).
func (bw *batchWriter) sendBatch(k int) (int, syscall.Errno) {
	var n int
	var operr syscall.Errno
	err := bw.rc.Write(func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&bw.hdrs[0])), uintptr(k),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				n = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park until writable
			default:
				operr = errno
				return true
			}
		}
	})
	if err != nil {
		return 0, 0
	}
	return n, operr
}

// encodeAddr writes ap into sockaddr slot i using the socket's family,
// reporting false when the destination is unrepresentable.
func (bw *batchWriter) encodeAddr(i int, ap netip.AddrPort) (uint32, bool) {
	addr := ap.Addr()
	if bw.v6 {
		rsa := &bw.names[i]
		*rsa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		// As16 yields the v4-mapped form for IPv4 addresses, which is what
		// a dual-stack socket expects.
		rsa.Addr = addr.As16()
		putSockaddrPort((*[2]byte)(unsafe.Pointer(&rsa.Port)), ap.Port())
		return syscall.SizeofSockaddrInet6, true
	}
	addr = addr.Unmap()
	if !addr.Is4() {
		return 0, false
	}
	r4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&bw.names[i]))
	*r4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
	r4.Addr = addr.As4()
	putSockaddrPort((*[2]byte)(unsafe.Pointer(&r4.Port)), ap.Port())
	return syscall.SizeofSockaddrInet4, true
}

// rawToAddrPort decodes a kernel-filled sockaddr into a canonical (4-in-6
// unmapped) AddrPort for the lock-free sender lookup.
func rawToAddrPort(rsa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch rsa.Family {
	case syscall.AF_INET:
		r4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom4(r4.Addr),
			sockaddrPort((*[2]byte)(unsafe.Pointer(&r4.Port))))
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(rsa.Addr).Unmap(),
			sockaddrPort((*[2]byte)(unsafe.Pointer(&rsa.Port))))
	}
	return netip.AddrPort{}
}

// sockaddrPort reads a network-byte-order sockaddr port.
func sockaddrPort(p *[2]byte) uint16 { return uint16(p[0])<<8 | uint16(p[1]) }

// putSockaddrPort writes a network-byte-order sockaddr port.
func putSockaddrPort(p *[2]byte, port uint16) {
	p[0] = byte(port >> 8)
	p[1] = byte(port)
}

//go:build linux && (amd64 || arm64) && !sonet_portable

// The Linux batch data plane: recvmmsg drains up to wire.ReadBatch
// datagrams per readiness wakeup and sendmmsg flushes a whole coalescing
// ring in one kernel crossing. Both integrate with the runtime netpoller
// through syscall.RawConn — the raw calls are non-blocking and the
// callback contract parks the goroutine until the socket is ready, so
// batching never busy-waits and never blocks an OS thread.
//
// Build with -tags sonet_portable to compile this file out and exercise
// the portable per-datagram path on Linux (the transport test suite runs
// under both).

package transport

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"

	"sonet/internal/wire"
)

// Plane identifies the compiled data plane for diagnostics and the
// EXP-WIRE report.
const Plane = "linux-mmsg"

// mmsghdr mirrors struct mmsghdr: one msghdr plus the kernel-filled
// datagram length. Trailing padding matches C struct layout on every
// linux arch (the compiler rounds the struct to msghdr's alignment).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// zeroByte anchors the iovec of an empty datagram (an iov_base may not be
// nil alongside a non-empty msg control-free header on some kernels).
var zeroByte byte

// batchReader drains the socket with recvmmsg into a pooled slab.
type batchReader struct {
	rc   syscall.RawConn
	slab *wire.Slab
	hdrs []mmsghdr
	iovs []syscall.Iovec
	// names is the per-slot sockaddr storage; RawSockaddrInet6 is large
	// enough for both address families.
	names []syscall.RawSockaddrInet6

	// addrs and lens describe the datagrams of the last read.
	addrs []netip.AddrPort
	lens  []int
}

func newBatchReader(conn *net.UDPConn) (*batchReader, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	k := wire.ReadBatch
	br := &batchReader{
		rc:    rc,
		slab:  wire.DefaultSlabs.Get(),
		hdrs:  make([]mmsghdr, k),
		iovs:  make([]syscall.Iovec, k),
		names: make([]syscall.RawSockaddrInet6, k),
		addrs: make([]netip.AddrPort, k),
		lens:  make([]int, k),
	}
	for i := 0; i < k; i++ {
		seg := br.slab.Segment(i)
		br.iovs[i].Base = &seg[0]
		br.iovs[i].SetLen(len(seg))
		br.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&br.names[i]))
		br.hdrs[i].hdr.Iov = &br.iovs[i]
		br.hdrs[i].hdr.Iovlen = 1
	}
	return br, nil
}

// segment returns the slab landing area of datagram i from the last read.
func (br *batchReader) segment(i int) []byte { return br.slab.Segment(i) }

// release returns the slab to the shared pool.
func (br *batchReader) release() { wire.DefaultSlabs.Put(br.slab) }

// read blocks until the socket is readable, then drains up to
// wire.ReadBatch datagrams in one recvmmsg call. It returns the number of
// datagrams received; addrs and lens describe them. A non-nil error means
// the socket is closed.
func (br *batchReader) read() (int, error) {
	var n int
	var operr error
	err := br.rc.Read(func(fd uintptr) bool {
		for i := range br.hdrs {
			br.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
			br.hdrs[i].n = 0
		}
		for {
			r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&br.hdrs[0])), uintptr(len(br.hdrs)),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				n = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park until readable
			default:
				operr = errno
				return true
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if operr != nil {
		return 0, operr
	}
	for i := 0; i < n; i++ {
		br.lens[i] = int(br.hdrs[i].n)
		br.addrs[i] = rawToAddrPort(&br.names[i])
	}
	return n, nil
}

// batchWriter flushes coalesced frames with sendmmsg.
type batchWriter struct {
	rc    syscall.RawConn
	v6    bool
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
}

func newBatchWriter(conn *net.UDPConn) (*batchWriter, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	bw := &batchWriter{
		rc:    rc,
		hdrs:  make([]mmsghdr, wire.ReadBatch),
		iovs:  make([]syscall.Iovec, wire.ReadBatch),
		names: make([]syscall.RawSockaddrInet6, wire.ReadBatch),
	}
	// The sockaddr family must match the socket's, not the destination's:
	// an AF_INET6 socket wants v4 destinations mapped, an AF_INET socket
	// cannot reach v6 at all.
	cerr := rc.Control(func(fd uintptr) {
		sa, err := syscall.Getsockname(int(fd))
		if err == nil {
			_, bw.v6 = sa.(*syscall.SockaddrInet6)
		}
	})
	if cerr != nil {
		return nil, cerr
	}
	for i := range bw.hdrs {
		bw.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&bw.names[i]))
		bw.hdrs[i].hdr.Iov = &bw.iovs[i]
		bw.hdrs[i].hdr.Iovlen = 1
	}
	return bw, nil
}

// send hands frames to the kernel in sendmmsg batches, preserving order.
// Undeliverable frames (family mismatch, per-datagram socket errors) are
// dropped, like IP would. It returns datagrams sent, datagrams dropped,
// and payload bytes sent.
func (bw *batchWriter) send(frames []outFrame) (sent, dropped int, bytes uint64) {
	off := 0
	for off < len(frames) {
		// Build the next batch.
		k := 0
		for k < len(bw.hdrs) && off+k < len(frames) {
			f := frames[off+k]
			nl, ok := bw.encodeAddr(k, f.to)
			if !ok {
				if k == 0 {
					off++
					dropped++
					continue
				}
				break // flush what is built, then retry the bad one alone
			}
			bw.hdrs[k].hdr.Namelen = nl
			if len(f.buf.B) == 0 {
				bw.iovs[k].Base = &zeroByte
				bw.iovs[k].SetLen(0)
			} else {
				bw.iovs[k].Base = &f.buf.B[0]
				bw.iovs[k].SetLen(len(f.buf.B))
			}
			k++
		}
		if k == 0 {
			continue
		}
		n, errno := bw.sendBatch(k)
		if n > 0 {
			for i := 0; i < n; i++ {
				bytes += uint64(len(frames[off+i].buf.B))
			}
			sent += n
			off += n
			continue
		}
		if errno != 0 {
			// The head datagram failed (e.g. a routing error); drop it and
			// make progress on the rest.
			off++
			dropped++
			continue
		}
		// Closed connection: everything left is dropped.
		dropped += len(frames) - off
		return sent, dropped, bytes
	}
	return sent, dropped, bytes
}

// sendBatch performs one sendmmsg over the first k prepared headers,
// waiting for writability as needed. It returns datagrams accepted and
// the errno that stopped the batch (0 with n==0 means the socket closed).
func (bw *batchWriter) sendBatch(k int) (int, syscall.Errno) {
	var n int
	var operr syscall.Errno
	err := bw.rc.Write(func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&bw.hdrs[0])), uintptr(k),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				n = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park until writable
			default:
				operr = errno
				return true
			}
		}
	})
	if err != nil {
		return 0, 0
	}
	return n, operr
}

// encodeAddr writes ap into sockaddr slot i using the socket's family,
// reporting false when the destination is unrepresentable.
func (bw *batchWriter) encodeAddr(i int, ap netip.AddrPort) (uint32, bool) {
	addr := ap.Addr()
	if bw.v6 {
		rsa := &bw.names[i]
		*rsa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		// As16 yields the v4-mapped form for IPv4 addresses, which is what
		// a dual-stack socket expects.
		rsa.Addr = addr.As16()
		putSockaddrPort((*[2]byte)(unsafe.Pointer(&rsa.Port)), ap.Port())
		return syscall.SizeofSockaddrInet6, true
	}
	addr = addr.Unmap()
	if !addr.Is4() {
		return 0, false
	}
	r4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&bw.names[i]))
	*r4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
	r4.Addr = addr.As4()
	putSockaddrPort((*[2]byte)(unsafe.Pointer(&r4.Port)), ap.Port())
	return syscall.SizeofSockaddrInet4, true
}

// rawToAddrPort decodes a kernel-filled sockaddr into a canonical (4-in-6
// unmapped) AddrPort for the lock-free sender lookup.
func rawToAddrPort(rsa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch rsa.Family {
	case syscall.AF_INET:
		r4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom4(r4.Addr),
			sockaddrPort((*[2]byte)(unsafe.Pointer(&r4.Port))))
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(rsa.Addr).Unmap(),
			sockaddrPort((*[2]byte)(unsafe.Pointer(&rsa.Port))))
	}
	return netip.AddrPort{}
}

// sockaddrPort reads a network-byte-order sockaddr port.
func sockaddrPort(p *[2]byte) uint16 { return uint16(p[0])<<8 | uint16(p[1]) }

// putSockaddrPort writes a network-byte-order sockaddr port.
func putSockaddrPort(p *[2]byte, port uint16) {
	p[0] = byte(port >> 8)
	p[1] = byte(port)
}

package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/sim"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// LinkDef declares one overlay link in a daemon's topology config.
type LinkDef struct {
	// A is one endpoint.
	A wire.NodeID `json:"a"`
	// B is the other endpoint.
	B wire.NodeID `json:"b"`
	// LatencyMs is the designed one-way latency in milliseconds.
	LatencyMs int `json:"latency_ms"`
}

// DaemonConfig describes one overlay daemon deployment.
type DaemonConfig struct {
	// ID is this daemon's overlay node identifier.
	ID wire.NodeID `json:"id"`
	// BindUDP is the daemon-to-daemon frame socket ("host:port").
	BindUDP string `json:"bind_udp"`
	// BindTCP is the client session listener; empty disables it.
	BindTCP string `json:"bind_tcp"`
	// Peers maps every overlay node to its UDP addresses (one per
	// underlay path; several addresses express multihoming).
	Peers map[wire.NodeID][]string `json:"peers"`
	// Links is the designed overlay topology (shared by all daemons).
	Links []LinkDef `json:"links"`
	// HelloIntervalMs optionally overrides failure-detection probing.
	HelloIntervalMs int `json:"hello_interval_ms"`
	// Shards is the data-plane shard count: event loops, UDP sockets
	// (SO_REUSEPORT on Linux), and tx rings. 0 means min(GOMAXPROCS, 8).
	// With more than one shard the overlay protocol itself shards: the
	// control plane (link state, routing, groups, sessions) stays
	// single-threaded on shard 0 while every peer is homed on one shard
	// by a stable hash of its node id, and that shard runs the peer's
	// link sessions, QoS schedulers, and transit forwarding end to end.
	Shards int `json:"shards"`
}

// Daemon is one deployed overlay node: the node software over a sharded
// UDP underlay, plus the TCP session listener for clients. The control
// plane is single-threaded on shard 0's loop; with Shards > 1 each peer
// is homed on one shard (wire.HomeShard of its node id), whose loop owns
// the peer's link sessions and forwards its transit data frames using
// the routing engine's atomically-published forwarding snapshot — a
// transit frame whose next hop shares its arrival shard never crosses a
// shard boundary. The underlay's decode classifier steers control frames
// (hellos, link-state, group-state) to shard 0.
type Daemon struct {
	cfg   DaemonConfig
	loops *sim.ShardedLoop
	// loop is the control shard's event loop: node, sessions, clients.
	loop *sim.Loop
	node *node.Node
	// plane is the sharded data plane (nil with one shard). Atomic because
	// shard loops consult it from the underlay handler while NewDaemon is
	// still wiring it up.
	plane atomic.Pointer[node.DataPlane]
	mgr   *session.Manager
	udp   *UDPUnderlay
	ln    net.Listener

	mu      sync.Mutex
	clients map[*clientConn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

// NewDaemon builds and starts a daemon from config.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	g := topology.NewGraph()
	for _, l := range cfg.Links {
		if _, err := g.AddLink(l.A, l.B, time.Duration(l.LatencyMs)*time.Millisecond); err != nil {
			return nil, fmt.Errorf("transport: link %v-%v: %w", l.A, l.B, err)
		}
	}
	d := &Daemon{
		cfg:     cfg,
		loops:   sim.NewShardedLoop(cfg.Shards),
		clients: make(map[*clientConn]struct{}),
	}
	d.loop = d.loops.Shard(0)
	var nodeRef *node.Node
	// Shard 0 deliveries run on d.loop, where nodeRef is assigned — the
	// single-threaded model node.HandleUnderlay requires. Other shards'
	// deliveries go to the data plane's per-shard engines; until the plane
	// pointer is published they drop (only possible for frames racing
	// daemon startup).
	udp, err := NewShardedUDPUnderlay(cfg.BindUDP, d.loops.Executors(), func(shard int, from wire.NodeID, data []byte) {
		if shard == 0 {
			if nodeRef != nil {
				nodeRef.HandleUnderlay(from, data)
			}
			return
		}
		if pl := d.plane.Load(); pl != nil {
			pl.HandleUnderlay(shard, from, data)
		}
	})
	if err != nil {
		d.loops.Close()
		return nil, err
	}
	d.udp = udp
	udp.SteerControl(true)
	for id, addrs := range cfg.Peers {
		if id == cfg.ID {
			continue
		}
		if err := d.AddPeer(id, addrs...); err != nil {
			d.shutdownEarly()
			return nil, err
		}
	}
	// Every shard clock shares one epoch so timestamps (frame send times,
	// packet origins) compare across shards.
	epoch := time.Now()
	ncfg := node.Config{
		ID:       cfg.ID,
		Clock:    sim.NewRealtimeClockAt(d.loop, epoch),
		Underlay: udp,
		Graph:    g,
	}
	if cfg.HelloIntervalMs > 0 {
		ncfg.LinkState.HelloInterval = time.Duration(cfg.HelloIntervalMs) * time.Millisecond
	}
	n, err := node.New(ncfg)
	if err != nil {
		d.shutdownEarly()
		return nil, err
	}
	d.node = n
	d.mgr = session.NewManager(n)
	var pl *node.DataPlane
	if nsh := d.loops.NumShards(); nsh > 1 {
		clocks := make([]sim.Clock, nsh)
		for i := 1; i < nsh; i++ {
			clocks[i] = sim.NewRealtimeClockAt(d.loops.Shard(i), epoch)
		}
		pl = node.NewDataPlane(n, d.loops, udp, clocks)
	}
	done := make(chan struct{})
	d.loop.Post(func() {
		// Assigning on the loop serializes with the UDP handler, which
		// also runs on the loop.
		nodeRef = n
		if pl != nil {
			n.AttachDataPlane(pl)
			d.plane.Store(pl)
		}
		n.Start()
		close(done)
	})
	<-done

	if cfg.BindTCP != "" {
		ln, err := net.Listen("tcp", cfg.BindTCP)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("transport: client listener: %w", err)
		}
		d.ln = ln
		d.wg.Add(1)
		go d.acceptLoop()
	}
	return d, nil
}

func (d *Daemon) shutdownEarly() {
	_ = d.udp.Close()
	d.loops.Close()
}

// UDPAddr returns the daemon's bound frame address.
func (d *Daemon) UDPAddr() string { return d.udp.LocalAddr() }

// Shards returns the running data-plane shard count.
func (d *Daemon) Shards() int { return d.udp.NumShards() }

// ShardStats returns shard i's own datagram counters; safe from any
// goroutine.
func (d *Daemon) ShardStats(i int) metrics.WireSnapshot { return d.udp.ShardStats(i) }

// SteeredRx reports whether the kernel steers arriving datagrams by flow
// (the Linux reuseport program), making the arrival shard a deterministic
// function of the sender's source port.
func (d *Daemon) SteeredRx() bool { return d.udp.SteeredRx() }

// AddPeer registers (or updates) a peer's UDP addresses after start —
// used when daemons bind ephemeral ports and exchange addresses out of
// band. The peer's flow is pinned to its home shard — a stable hash of
// its node id (wire.HomeShard), the shard whose loop owns the peer's
// link sessions — so re-registration never moves a live flow.
func (d *Daemon) AddPeer(id wire.NodeID, addrs ...string) error {
	if err := d.udp.AddPeer(id, addrs...); err != nil {
		return err
	}
	return d.udp.PinFlow(id, wire.HomeShard(id, d.udp.NumShards()))
}

// RemovePeer unregisters a departed peer from the underlay: its sender
// addresses and steering pin are dropped, so a node that left the overlay
// no longer occupies peer-table or shard-steering state. A later AddPeer
// (rejoin, possibly from new addresses) re-registers and re-pins from
// scratch.
func (d *Daemon) RemovePeer(id wire.NodeID) { d.udp.RemovePeer(id) }

// AdmitPeer admits a new overlay neighbor at runtime: the peer's UDP
// addresses register (pinned to its home shard), the shared topology
// gains the node and a direct link of the given designed latency, and
// the daemon's node begins hello probing and re-announces its link
// state, so the new member is discovered fleet-wide through normal LSA
// flooding. Idempotent: calling again just refreshes the addresses.
func (d *Daemon) AdmitPeer(id wire.NodeID, latencyMs int, addrs ...string) error {
	if id == d.cfg.ID {
		return fmt.Errorf("transport: cannot admit self")
	}
	if err := d.AddPeer(id, addrs...); err != nil {
		return err
	}
	ch := make(chan error, 1)
	d.loop.Post(func() {
		ch <- d.node.AdmitNeighbor(id, time.Duration(latencyMs)*time.Millisecond)
	})
	return <-ch
}

// LearnLink teaches the node a remote link it is not an endpoint of (a
// config reload on a non-adjacent daemon): the topology view grows so
// SPF can route through the new link, while hello probing and
// availability stay the endpoints' business. Links adjacent to this
// daemon are delegated to the full admission path.
func (d *Daemon) LearnLink(a, b wire.NodeID, latencyMs int) error {
	ch := make(chan error, 1)
	d.loop.Post(func() {
		ch <- d.node.LearnLink(a, b, time.Duration(latencyMs)*time.Millisecond)
	})
	return <-ch
}

// EvictPeer removes a departed overlay neighbor at runtime: the node
// withdraws the link (administrative down) and purges the peer's
// advertisement history on its loop, then the underlay drops the peer's
// addresses and steering pin.
func (d *Daemon) EvictPeer(id wire.NodeID) {
	done := make(chan struct{})
	d.loop.Post(func() {
		d.node.EvictNeighbor(id)
		close(done)
	})
	<-done
	d.udp.RemovePeer(id)
}

// TCPAddr returns the client listener address, if enabled.
func (d *Daemon) TCPAddr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Node returns the daemon's overlay node. The node is single-threaded on
// the daemon loop; cross-thread diagnostics should use NodeStats.
func (d *Daemon) Node() *node.Node { return d.node }

// WireStats returns the UDP underlay's datagram counters (batches,
// packets, bytes per direction); safe from any goroutine.
func (d *Daemon) WireStats() metrics.WireSnapshot { return d.udp.Stats() }

// SchedStats returns the node's fair-scheduler accounting — drops by
// cause, backpressure refusals, active-flow high-water mark — aggregated
// across every IT discipline instance. The counters are atomic; safe from
// any goroutine, no loop round-trip needed.
func (d *Daemon) SchedStats() metrics.SchedSnapshot { return d.node.SchedStats() }

// NodeStats reads the node's counters on the daemon loop — merged with
// every data shard's counters when the protocol plane is sharded —
// safely from any goroutine. It returns zeros after Close.
func (d *Daemon) NodeStats() node.Stats {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return node.Stats{}
	}
	ch := make(chan node.Stats, 1)
	d.loop.Post(func() { ch <- d.node.Stats() })
	agg := <-ch
	if pl := d.plane.Load(); pl != nil {
		agg = agg.Merge(pl.Stats())
	}
	return agg
}

// DataPlane returns the sharded protocol plane, nil when the daemon runs
// a single shard. Diagnostics only.
func (d *Daemon) DataPlane() *node.DataPlane { return d.plane.Load() }

// Close stops the daemon: listener, client connections, node timers,
// underlay socket, and the event loop.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	conns := make([]*clientConn, 0, len(d.clients))
	for c := range d.clients {
		conns = append(conns, c)
	}
	d.mu.Unlock()
	if d.ln != nil {
		_ = d.ln.Close()
	}
	for _, c := range conns {
		c.close()
	}
	done := make(chan struct{})
	d.loop.Post(func() {
		d.node.Stop()
		close(done)
	})
	<-done
	if pl := d.plane.Load(); pl != nil {
		// Shard engines close on their own loops (their queued traffic
		// accounts as closed drops) before the loops themselves stop.
		pl.Close()
	}
	_ = d.udp.Close()
	d.loops.Close()
	d.wg.Wait()
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		c := &clientConn{d: d, conn: conn, out: make(chan []byte, 256)}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			_ = conn.Close()
			return
		}
		d.clients[c] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// clientConn bridges one TCP client to the session manager.
type clientConn struct {
	d    *Daemon
	conn net.Conn
	out  chan []byte

	mu      sync.Mutex
	closed  bool
	session *session.Client
	flows   map[uint16]*session.Flow
}

func (c *clientConn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	_ = c.conn.Close()
	close(c.out)
	c.d.loop.Post(func() {
		if c.session != nil {
			c.session.Close()
		}
	})
	c.d.mu.Lock()
	delete(c.d.clients, c)
	c.d.mu.Unlock()
}

// send queues a message toward the client, dropping when the client
// cannot keep up (timely service beats unbounded buffering).
func (c *clientConn) send(msg []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	select {
	case c.out <- msg:
	default:
	}
}

func (c *clientConn) sendError(err error) {
	c.send(append([]byte{msgError}, []byte(err.Error())...))
}

func (c *clientConn) writeLoop() {
	defer c.d.wg.Done()
	for msg := range c.out {
		if err := writeFrame(c.conn, msg); err != nil {
			return
		}
	}
}

func (c *clientConn) readLoop() {
	defer c.d.wg.Done()
	defer c.close()
	for {
		msg, err := readFrame(c.conn)
		if err != nil {
			return
		}
		if len(msg) == 0 {
			continue
		}
		c.handle(msg[0], msg[1:])
	}
}

// handle posts one client request onto the daemon loop.
func (c *clientConn) handle(kind byte, body []byte) {
	c.d.loop.Post(func() {
		switch kind {
		case msgConnect:
			c.onConnect(body)
		case msgJoin, msgLeave:
			c.onJoinLeave(kind, body)
		case msgOpenFlow:
			c.onOpenFlow(body)
		case msgSend:
			c.onSend(body)
		}
	})
}

func (c *clientConn) onConnect(body []byte) {
	if len(body) < 2 || c.session != nil {
		c.sendError(fmt.Errorf("bad connect"))
		return
	}
	port := wire.Port(binary.BigEndian.Uint16(body))
	cl, err := c.d.mgr.Connect(port)
	if err != nil {
		c.sendError(err)
		return
	}
	c.session = cl
	c.flows = make(map[uint16]*session.Flow)
	cl.OnDeliver(func(dv session.Delivery) { c.deliver(dv) })
	ok := make([]byte, 3)
	ok[0] = msgOK
	binary.BigEndian.PutUint16(ok[1:], uint16(cl.Port()))
	c.send(ok)
}

func (c *clientConn) onJoinLeave(kind byte, body []byte) {
	if c.session == nil || len(body) < 4 {
		return
	}
	g := wire.GroupID(binary.BigEndian.Uint32(body))
	if kind == msgJoin {
		c.session.Join(g)
	} else {
		c.session.Leave(g)
	}
}

// Flow spec encoding: id(2) dst(2) dstport(2) group(4) flags(1)
// linkproto(1) disjointk(1) dissem(1) deadline µs(4) priority(1).
const (
	flowFlagAnycast = 1 << iota
	flowFlagOrdered
	flowFlagFlood
)

func (c *clientConn) onOpenFlow(body []byte) {
	if c.session == nil || len(body) < 19 {
		c.sendError(fmt.Errorf("bad openflow"))
		return
	}
	id := binary.BigEndian.Uint16(body[0:])
	spec := session.FlowSpec{
		DstNode:   wire.NodeID(binary.BigEndian.Uint16(body[2:])),
		DstPort:   wire.Port(binary.BigEndian.Uint16(body[4:])),
		Group:     wire.GroupID(binary.BigEndian.Uint32(body[6:])),
		LinkProto: wire.LinkProtoID(body[11]),
		DisjointK: int(body[12]),
		Dissem:    topology.ProblemArea(body[13]),
		Deadline:  time.Duration(binary.BigEndian.Uint32(body[14:])) * time.Microsecond,
		Priority:  body[18],
	}
	flags := body[10]
	spec.Anycast = flags&flowFlagAnycast != 0
	spec.Ordered = flags&flowFlagOrdered != 0
	spec.Flood = flags&flowFlagFlood != 0
	f, err := c.session.OpenFlow(spec)
	if err != nil {
		c.sendError(err)
		return
	}
	c.flows[id] = f
	c.send([]byte{msgOK})
}

func (c *clientConn) onSend(body []byte) {
	if c.session == nil || len(body) < 2 {
		return
	}
	id := binary.BigEndian.Uint16(body)
	f, ok := c.flows[id]
	if !ok {
		c.sendError(fmt.Errorf("unknown flow %d", id))
		return
	}
	if err := f.Send(append([]byte(nil), body[2:]...)); err != nil {
		c.sendError(err)
	}
}

// deliver encodes one delivery toward the client:
// from(2) srcport(2) seq(4) group(4) latency ns(8) recovered(1) payload.
func (c *clientConn) deliver(dv session.Delivery) {
	msg := make([]byte, 22, 22+len(dv.Payload))
	msg[0] = msgDeliver
	binary.BigEndian.PutUint16(msg[1:], uint16(dv.From))
	binary.BigEndian.PutUint16(msg[3:], uint16(dv.SrcPort))
	binary.BigEndian.PutUint32(msg[5:], dv.Seq)
	binary.BigEndian.PutUint32(msg[9:], uint32(dv.Group))
	binary.BigEndian.PutUint64(msg[13:], uint64(dv.Latency))
	if dv.Retransmitted {
		msg[21] = 1
	}
	msg = append(msg, dv.Payload...)
	c.send(msg)
}

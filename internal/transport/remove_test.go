package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sonet/internal/wire"
)

// TestRemovePeerUnregisters covers peer departure: after RemovePeer the
// departed peer's frames drop as unknown, Send toward it is a no-op, and
// a later AddPeer re-registers from a clean slate.
func TestRemovePeerUnregisters(t *testing.T) {
	var mu sync.Mutex
	var got []string
	a, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(from wire.NodeID, data []byte) {
		mu.Lock()
		got = append(got, string(data))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	if err := a.AddPeer(2, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(got)
	}
	b.Send(1, 0, []byte("hello"))
	if !waitFor(t, 2*time.Second, func() bool { return count() == 1 }) {
		t.Fatal("frame from registered peer not delivered")
	}

	a.RemovePeer(2)
	a.RemovePeer(2) // removing an unknown peer is a no-op

	// Frames from the removed peer drop as unknown.
	unknownBefore := a.Stats().RecvUnknown
	b.Send(1, 0, []byte("stale"))
	if !waitFor(t, 2*time.Second, func() bool { return a.Stats().RecvUnknown > unknownBefore }) {
		t.Fatal("frame from removed peer was not counted unknown")
	}
	if count() != 1 {
		t.Fatal("frame from removed peer was delivered")
	}
	// Send toward the removed peer is a silent no-op.
	a.Send(2, 0, []byte("into the void"))

	// Re-registration restores delivery both ways.
	if err := a.AddPeer(2, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.Send(1, 0, []byte("back"))
	if !waitFor(t, 2*time.Second, func() bool { return count() == 2 }) {
		t.Fatal("frame after re-registration not delivered")
	}
	// The discarded pin does not survive: re-pinning works from scratch.
	if err := a.PinFlow(2, 0); err != nil {
		t.Fatalf("pin after re-register: %v", err)
	}
}

// TestRemoveReRegisterRace hammers the copy-on-write peer table from
// three sides at once — removals, re-registrations, and a steady sender —
// so the race detector can see any snapshot torn between the sender
// column and the peer column. The final re-register must leave the peer
// fully functional.
func TestRemoveReRegisterRace(t *testing.T) {
	a, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewUDPUnderlay("127.0.0.1:0", directExec{}, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	if err := b.AddPeer(1, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	addr := b.LocalAddr()

	const iters = 300
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			a.RemovePeer(2)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := a.AddPeer(2, addr); err != nil {
				t.Errorf("re-register: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// Send reads the COW snapshot concurrently with the mutators;
			// toward a mid-removal peer it must degrade to a no-op, never
			// crash or send to a torn entry.
			a.Send(2, 0, []byte(fmt.Sprintf("m%d", i)))
			b.Send(1, 0, []byte("reply"))
		}
	}()
	wg.Wait()

	// Whatever interleaving won, a final re-register must fully restore
	// the peer: deliverable frames and a pinnable flow.
	if err := a.AddPeer(2, addr); err != nil {
		t.Fatal(err)
	}
	if err := a.PinFlow(2, 0); err != nil {
		t.Fatal(err)
	}
	sent := a.Stats().SendPackets
	a.Send(2, 0, []byte("final"))
	if !waitFor(t, 2*time.Second, func() bool { return a.Stats().SendPackets > sent }) {
		t.Fatal("send after final re-register did not transmit")
	}
}

package transport

import (
	"fmt"
	"math/bits"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"sonet/internal/metrics"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// UDPUnderlay carries link-level frames between overlay daemons as UDP
// datagrams. It implements node.Underlay: each neighbor has one or more
// remote addresses (one per underlay path, supporting multihoming across
// provider-specific addresses).
//
// The data plane is sharded, batched, and lock-light. A shard is one
// event loop plus one receive loop plus one coalescing tx ring; flows
// partition across shards by a deterministic hash of (peer NodeID,
// underlay address), so per-flow frame ordering is free — one flow never
// spans two shards.
//
//   - Receive (Linux fast path, shards > 1): every shard binds its own
//     SO_REUSEPORT socket on the underlay port, with a classic-BPF
//     program attached to the group steering datagrams by UDP source
//     port (shard = sport mod N). The kernel therefore delivers each
//     remote endpoint's 4-tuple to one fixed socket, each shard drains
//     its own socket with recvmmsg into its own pooled slab, and no two
//     shards ever touch the same flow. If the program cannot be attached
//     the kernel's seeded 4-tuple hash steers instead — still per-flow
//     stable, just not balance-predictable (SteeredRx reports which).
//   - Receive (portable path): one socket and one dispatcher read loop;
//     the dispatcher steers each decoded datagram to its flow's shard by
//     the same deterministic flow hash the tx side uses.
//   - Delivery and cross-shard handoff: decoded frames travel from a
//     receive loop to the owning shard's event loop over bounded SPSC
//     rings (sim.SPSC), one ring per (reader, shard) pair, with an
//     atomic doorbell that posts a pooled drain runner only on the
//     empty→non-empty transition — under sustained load frames flow
//     with no per-packet post and no lock on either side. A flow pinned
//     to another shard (PinFlow; the daemon pins every peer to the
//     control shard where the single-threaded node protocol lives) is
//     handed off the same way.
//   - Sender identification: source addresses resolve through an
//     immutable peer table keyed by netip.AddrPort, read via an atomic
//     pointer — no per-packet lock, no addr.String() allocation. The
//     table carries a per-peer steering column (the pinned home shard);
//     AddPeer/PinFlow copy the table on write under a mutex and swap
//     the pointer.
//   - Send: frames produced within one event-loop turn accumulate in
//     the flow's shard tx ring; a single flush posted on that shard's
//     executor hands the whole turn's frames to the kernel at once
//     (sendmmsg on Linux through the shard's own socket, a write loop
//     elsewhere), so tx kernel crossings run on shard cores instead of
//     stealing protocol time.
//
// All per-direction batch/packet/byte counters live in per-shard
// metrics.WireStats; Stats aggregates them race-free.
type UDPUnderlay struct {
	// conns are the bound sockets: one per shard on the Linux fast path
	// with shards > 1, exactly one otherwise.
	conns []*net.UDPConn
	// shards hold the per-shard executor, tx ring, writer, and counters.
	shards []*udpShard
	// rings[k][s] hands frames from reader k to shard s's loop. Reader k
	// is the only producer and shard s's loop the only consumer, so the
	// rings are true SPSC.
	rings [][]handoff
	// rxDispatch marks the single-socket dispatcher layout (fewer
	// sockets than shards): reader 0 steers by flow hash instead of
	// trusting kernel steering.
	rxDispatch bool
	// steered reports that the reuseport steering program is attached.
	steered bool
	// ctrlSteer, when set, reroutes control-plane datagrams (hellos,
	// link-state, group-state — wire.DatagramIsControl) to shard 0
	// regardless of the flow's home, so a sharded protocol stack keeps its
	// single-threaded control plane on the control shard.
	ctrlSteer atomic.Bool
	// handler receives frames on the owning shard's executor. Immutable
	// after New.
	handler ShardHandler

	// table is the immutable peer snapshot; readers load it without
	// locking. mu serializes copy-on-write updates and lifecycle.
	table  atomic.Pointer[peerTable]
	closed atomic.Bool
	mu     sync.Mutex
	// done has one channel per read loop (per socket).
	done []chan struct{}
}

// udpShard is one shard's share of the data plane: its executor, its
// coalescing tx ring, its batch writer, and its counters. Shards are
// separately allocated so their atomic counters do not share cache
// lines.
type udpShard struct {
	u    *UDPUnderlay
	idx  int
	conn *net.UDPConn
	exec sim.Executor
	// runnerExec is exec's RunnerExecutor view, nil when unsupported;
	// posting through it avoids a closure allocation per batch.
	runnerExec sim.RunnerExecutor

	// The send coalescing ring: Send appends under sendMu, the posted
	// flush swaps pending with the spare slice and writes the batch out.
	sendMu      sync.Mutex
	pending     []outFrame
	spare       []outFrame
	flushQueued bool
	flusher     flushRunner
	// writeMu serializes access to the writer's header arrays when an
	// inline executor lets flushes overlap; uncontended on the event loop.
	writeMu sync.Mutex
	writer  *batchWriter

	stats metrics.WireStats
}

// maxPending bounds each shard's coalescing ring; past it new frames are
// dropped (best-effort, like IP) rather than buffering without bound.
const maxPending = 4096

// handoffRingCap bounds each reader→shard SPSC ring: enough for many
// full recvmmsg batches of headroom before overload sheds.
const handoffRingCap = 1024

// rxDrainQuota bounds how many frames one drain runner delivers before
// re-posting itself, so a saturating flow cannot starve timers and
// control work sharing the shard's loop.
const rxDrainQuota = 4 * wire.ReadBatch

// maxShards bounds the shard count (the readers' pending-doorbell set is
// a 64-bit mask; far above any sane core count anyway).
const maxShards = 64

// shardSockBuf is the per-socket buffer request: batch reads amortize
// kernel crossings only if bursts survive in the socket queue until the
// shard's readLoop wakes, so every shard socket asks for a deep buffer.
// The kernel clamps the request to net.core.rmem_max/wmem_max without
// privilege, so failure is impossible and partial grants are fine.
const shardSockBuf = 4 << 20

// setShardSockBufs applies shardSockBuf to a freshly bound shard socket.
func setShardSockBufs(conn *net.UDPConn) {
	_ = conn.SetReadBuffer(shardSockBuf)
	_ = conn.SetWriteBuffer(shardSockBuf)
}

// peerTable is an immutable snapshot of the peer registrations. A new
// table replaces the old one wholesale on every AddPeer/PinFlow.
type peerTable struct {
	// peers maps a neighbor to its per-path addresses and its steering
	// column entry.
	peers map[wire.NodeID]peerEntry
	// senders maps a source address to the neighbor it belongs to.
	senders map[netip.AddrPort]senderEntry
}

// peerEntry is one neighbor's addresses plus its pinned home shard (the
// steering column; -1 means unpinned, flows hash to their shard).
type peerEntry struct {
	addrs []netip.AddrPort
	home  int32
}

// senderEntry resolves one source address to its peer and home shard.
type senderEntry struct {
	id   wire.NodeID
	home int32
}

var emptyPeerTable = &peerTable{
	peers:   map[wire.NodeID]peerEntry{},
	senders: map[netip.AddrPort]senderEntry{},
}

// outFrame is one coalesced datagram awaiting flush.
type outFrame struct {
	to  netip.AddrPort
	buf *wire.Buf
}

// rxFrame is one received datagram awaiting delivery on its shard.
type rxFrame struct {
	from wire.NodeID
	buf  *wire.Buf
}

// handoff is one reader→shard SPSC ring plus its doorbell and its
// pre-allocated drain runner.
type handoff struct {
	ring *sim.SPSC[rxFrame]
	bell atomic.Bool
	d    drainRunner
}

// drainRunner delivers one handoff ring's frames on the target shard's
// loop. It is posted at most once per empty→non-empty transition (the
// doorbell) and re-posts itself while frames remain.
type drainRunner struct {
	u      *UDPUnderlay
	h      *handoff
	target int
}

// post rings the doorbell: the first caller to observe it clear posts
// the drain; everyone else knows a drain is already queued or running.
func (d *drainRunner) post() {
	if d.h.bell.CompareAndSwap(false, true) {
		d.u.shards[d.target].post(d)
	}
}

// Run implements sim.Runner on the target shard's loop. After Close no
// frame reaches the handler; the buffers are still released.
func (d *drainRunner) Run() {
	h := d.h
	h.bell.Store(false)
	u := d.u
	s := u.shards[d.target]
	deliver := !u.closed.Load()
	for i := 0; i < rxDrainQuota; i++ {
		f, ok := h.ring.Pop()
		if !ok {
			break
		}
		if deliver {
			u.handler(d.target, f.from, f.buf.B)
			s.stats.RecvDelivered.Add(1)
		}
		f.buf.Release()
	}
	if !h.ring.Empty() {
		d.post()
	}
}

// flushRunner posts a shard's send-ring flush without allocating a
// closure.
type flushRunner struct{ s *udpShard }

// Run implements sim.Runner.
func (f *flushRunner) Run() { f.s.flush() }

// post enqueues r on the shard's executor, preferring the allocation-free
// RunnerExecutor path.
func (s *udpShard) post(r sim.Runner) {
	if s.runnerExec != nil {
		s.runnerExec.PostRunner(r)
	} else {
		s.exec.Post(r.Run)
	}
}

// canonAddrPort normalizes an address for table keys and lookups: IPv4
// and IPv4-in-IPv6 forms of the same endpoint must collide.
func canonAddrPort(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// flowShard is the deterministic flow partition: FNV-1a over the peer
// NodeID and the underlay address (the link-session identity), reduced
// mod the shard count. Both the tx ring choice and the portable rx
// dispatcher use it, so a flow's send and receive work land on one
// shard.
func flowShard(id wire.NodeID, ap netip.AddrPort, n int) int {
	if n <= 1 {
		return 0
	}
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(id)) * prime
	a := ap.Addr().As16()
	for _, b := range a {
		h = (h ^ uint64(b)) * prime
	}
	h = (h ^ uint64(ap.Port())) * prime
	return int(h % uint64(n))
}

// ShardHandler receives one decoded datagram's frame bytes on the
// executor of the shard that owns the flow; the shard index says which.
type ShardHandler func(shard int, from wire.NodeID, data []byte)

// NewUDPUnderlay binds a UDP socket and starts the receive loop; frames
// are handed to handler on exec (the daemon's event loop), preserving
// the single-threaded protocol model. It is the single-shard form of
// NewShardedUDPUnderlay.
func NewUDPUnderlay(bind string, exec sim.Executor, handler func(from wire.NodeID, data []byte)) (*UDPUnderlay, error) {
	return NewShardedUDPUnderlay(bind, []sim.Executor{exec},
		func(_ int, from wire.NodeID, data []byte) { handler(from, data) })
}

// NewShardedUDPUnderlay binds len(execs) data-plane shards on bind and
// starts their receive loops. Frames are handed to handler on the owning
// flow's shard executor: handler calls for different flows may run
// concurrently (one call per shard at a time), but one flow's frames are
// always delivered in order on one shard. Pass a sim.ShardedLoop's
// Executors() for a deployed daemon.
func NewShardedUDPUnderlay(bind string, execs []sim.Executor, handler ShardHandler) (*UDPUnderlay, error) {
	n := len(execs)
	if n == 0 {
		return nil, fmt.Errorf("transport: sharded underlay needs at least one executor")
	}
	if n > maxShards {
		return nil, fmt.Errorf("transport: %d shards exceeds the maximum of %d", n, maxShards)
	}
	conns, steered, err := openShardConns(bind, n)
	if err != nil {
		return nil, err
	}
	u := &UDPUnderlay{
		conns:      conns,
		rxDispatch: len(conns) < n,
		steered:    steered,
		handler:    handler,
	}
	u.table.Store(emptyPeerTable)
	u.shards = make([]*udpShard, n)
	for i := range u.shards {
		conn := conns[0]
		if len(conns) == n {
			conn = conns[i]
		}
		s := &udpShard{u: u, idx: i, conn: conn, exec: execs[i]}
		s.runnerExec, _ = execs[i].(sim.RunnerExecutor)
		s.flusher.s = s
		w, err := newBatchWriter(conn)
		if err != nil {
			u.closeConns()
			return nil, fmt.Errorf("transport: batch writer: %w", err)
		}
		s.writer = w
		u.shards[i] = s
	}
	u.rings = make([][]handoff, len(conns))
	for k := range u.rings {
		u.rings[k] = make([]handoff, n)
		for s := range u.rings[k] {
			h := &u.rings[k][s]
			h.ring = sim.NewSPSC[rxFrame](handoffRingCap)
			h.d = drainRunner{u: u, h: h, target: s}
		}
	}
	u.done = make([]chan struct{}, len(conns))
	for k := range u.done {
		u.done[k] = make(chan struct{})
		go u.readLoop(k)
	}
	return u, nil
}

func (u *UDPUnderlay) closeConns() {
	for _, c := range u.conns {
		_ = c.Close()
	}
}

// LocalAddr returns the bound address (shared by every shard socket:
// with shards > 1 on Linux they form one SO_REUSEPORT group).
func (u *UDPUnderlay) LocalAddr() string { return u.conns[0].LocalAddr().String() }

// NumShards returns the data-plane shard count.
func (u *UDPUnderlay) NumShards() int { return len(u.shards) }

// SteeredRx reports whether the deterministic reuseport steering program
// (shard = UDP source port mod shards) is attached; false means the
// kernel's own 4-tuple hash steers (still per-flow stable) or the plane
// is single-socket.
func (u *UDPUnderlay) SteeredRx() bool { return u.steered }

// SteerControl enables (or disables) control-plane steering: datagrams
// the decode classifier recognizes as control — hellos and best-effort
// link-state/group-state floods — deliver on shard 0 regardless of the
// flow's home shard. The redirects count in ControlSteers, not Handoffs,
// so the handoff counter keeps meaning "data frame missed its home
// shard". The sharded daemon turns this on; it is off by default.
func (u *UDPUnderlay) SteerControl(on bool) { u.ctrlSteer.Store(on) }

// Stats returns the aggregate of every shard's datagram counters.
func (u *UDPUnderlay) Stats() metrics.WireSnapshot {
	var agg metrics.WireSnapshot
	for _, s := range u.shards {
		agg = agg.Merge(s.stats.Snapshot())
	}
	return agg
}

// ShardStats returns shard i's own counters. Receive-side arrival
// counters accrue to the shard that drained the socket; RecvDelivered
// accrues to the shard whose loop ran the handler.
func (u *UDPUnderlay) ShardStats(i int) metrics.WireSnapshot {
	return u.shards[i].stats.Snapshot()
}

// AddPeer registers (or re-registers) a neighbor's addresses, one per
// underlay path. Re-registration replaces the previous addresses: frames
// from an address the peer no longer owns are dropped as unknown. A pin
// set with PinFlow survives re-registration.
func (u *UDPUnderlay) AddPeer(id wire.NodeID, addrs ...string) error {
	if len(addrs) == 0 {
		return fmt.Errorf("transport: peer %v needs at least one address", id)
	}
	resolved := make([]netip.AddrPort, 0, len(addrs))
	for _, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("transport: resolve peer %v addr %q: %w", id, a, err)
		}
		resolved = append(resolved, canonAddrPort(ua.AddrPort()))
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	old := u.table.Load()
	home := int32(-1)
	if ent, ok := old.peers[id]; ok {
		home = ent.home
	}
	u.table.Store(old.withPeer(id, peerEntry{addrs: resolved, home: home}))
	return nil
}

// PinFlow pins a registered peer's flows to one shard (the steering
// column): its frames are always delivered on that shard's executor
// regardless of which shard they arrive on, and its tx frames coalesce
// in that shard's ring. shard == -1 unpins (flows hash to their shard).
// The deployed daemon pins every peer to the control shard, where the
// single-threaded node protocol lives.
//
// Re-pinning a live flow moves it between loops: frames already queued
// toward the old shard still deliver there, so cross-shard ordering is
// only guaranteed for assignments that are stable while traffic flows.
func (u *UDPUnderlay) PinFlow(id wire.NodeID, shard int) error {
	if shard < -1 || shard >= len(u.shards) {
		return fmt.Errorf("transport: pin peer %v: shard %d out of range [0,%d)", id, shard, len(u.shards))
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	old := u.table.Load()
	ent, ok := old.peers[id]
	if !ok {
		return fmt.Errorf("transport: pin peer %v: not registered", id)
	}
	ent.home = int32(shard)
	u.table.Store(old.withPeer(id, ent))
	return nil
}

// RemovePeer unregisters a departed peer: its addresses leave the sender
// column (frames from them drop as unknown), its flow pin is discarded,
// and Send toward it becomes a no-op. Like every table mutation it
// replaces the COW snapshot, so concurrent readers always see a
// consistent table; a later AddPeer re-registers from a clean slate (no
// pin carried over). Removing an unknown peer is a no-op.
func (u *UDPUnderlay) RemovePeer(id wire.NodeID) {
	u.mu.Lock()
	defer u.mu.Unlock()
	old := u.table.Load()
	if _, ok := old.peers[id]; !ok {
		return
	}
	u.table.Store(old.withoutPeer(id))
}

// withoutPeer returns a copy of the table with id's peer entry and every
// sender-column address owned by it dropped.
func (t *peerTable) withoutPeer(id wire.NodeID) *peerTable {
	nt := &peerTable{
		peers:   make(map[wire.NodeID]peerEntry, len(t.peers)),
		senders: make(map[netip.AddrPort]senderEntry, len(t.senders)),
	}
	for k, v := range t.peers {
		if k != id {
			nt.peers[k] = v
		}
	}
	for k, v := range t.senders {
		if v.id != id {
			nt.senders[k] = v
		}
	}
	return nt
}

// withPeer returns a copy of the table with id's entry replaced and the
// sender column rebuilt for it (stale addresses unregistered).
func (t *peerTable) withPeer(id wire.NodeID, ent peerEntry) *peerTable {
	nt := &peerTable{
		peers:   make(map[wire.NodeID]peerEntry, len(t.peers)+1),
		senders: make(map[netip.AddrPort]senderEntry, len(t.senders)+len(ent.addrs)),
	}
	for k, v := range t.peers {
		if k != id {
			nt.peers[k] = v
		}
	}
	nt.peers[id] = ent
	for k, v := range t.senders {
		// Skipping the peer's old entries unregisters any address it no
		// longer owns.
		if v.id != id {
			nt.senders[k] = v
		}
	}
	for _, ap := range ent.addrs {
		nt.senders[ap] = senderEntry{id: id, home: ent.home}
	}
	return nt
}

// Send implements node.Underlay: the frame joins its flow's shard
// coalescing ring and reaches the kernel in the flush posted for that
// shard's current event-loop turn. The bytes are copied into a pooled
// buffer before Send returns, so the caller keeps ownership of data.
// Send is safe from any goroutine.
func (u *UDPUnderlay) Send(neighbor wire.NodeID, path uint8, data []byte) {
	u.sendVia(-1, neighbor, path, data)
}

// SendOn transmits like Send but coalesces on shard's own tx ring, so a
// data shard's egress shares its own flush batch and socket instead of
// the flow-hashed one. It implements node.ShardUnderlay.
func (u *UDPUnderlay) SendOn(shard int, neighbor wire.NodeID, path uint8, data []byte) {
	if shard < 0 || shard >= len(u.shards) {
		shard = -1
	}
	u.sendVia(shard, neighbor, path, data)
}

// sendVia coalesces one frame on a shard tx ring: the given shard, or
// (shard < 0) the flow's pinned home / hashed shard.
func (u *UDPUnderlay) sendVia(shard int, neighbor wire.NodeID, path uint8, data []byte) {
	if u.closed.Load() {
		return
	}
	tbl := u.table.Load()
	ent, ok := tbl.peers[neighbor]
	if !ok || len(ent.addrs) == 0 {
		return
	}
	addr := ent.addrs[int(path)%len(ent.addrs)]
	sh := shard
	if sh < 0 {
		sh = int(ent.home)
		if sh < 0 {
			sh = flowShard(neighbor, addr, len(u.shards))
		}
	}
	s := u.shards[sh]
	buf := wire.DefaultBufPool.Get(len(data))
	buf.B = append(buf.B, data...)
	s.sendMu.Lock()
	if len(s.pending) >= maxPending {
		s.sendMu.Unlock()
		buf.Release()
		s.stats.SendDropped.Add(1)
		return
	}
	s.pending = append(s.pending, outFrame{to: addr, buf: buf})
	queued := s.flushQueued
	s.flushQueued = true
	s.sendMu.Unlock()
	if !queued {
		s.post(&s.flusher)
	}
}

// flush writes every frame coalesced on this shard out in one batch. It
// runs on the shard's executor, so frames produced within one event-loop
// turn share a single kernel crossing.
func (s *udpShard) flush() {
	s.sendMu.Lock()
	frames := s.pending
	s.pending = s.spare[:0]
	// Detach spare until the scan below finishes: a concurrent flush (only
	// possible with an inline executor) must not adopt frames as its new
	// pending while this one is still releasing entries outside the lock.
	s.spare = nil
	s.flushQueued = false
	s.sendMu.Unlock()
	if len(frames) > 0 {
		if s.u.closed.Load() {
			s.stats.SendDropped.Add(uint64(len(frames)))
		} else {
			// The writer's header arrays are single-flush state; the shard
			// loop serializes flushes, so this is uncontended there.
			s.writeMu.Lock()
			sent, dropped, bytes := s.writer.send(frames)
			s.writeMu.Unlock()
			s.stats.SendBatches.Add(1)
			s.stats.SendPackets.Add(uint64(sent))
			s.stats.SendBytes.Add(bytes)
			if dropped > 0 {
				s.stats.SendDropped.Add(uint64(dropped))
			}
		}
		for i := range frames {
			frames[i].buf.Release()
			frames[i] = outFrame{}
		}
	}
	s.sendMu.Lock()
	s.spare = frames[:0]
	s.sendMu.Unlock()
}

// PathCount implements node.Underlay.
func (u *UDPUnderlay) PathCount(neighbor wire.NodeID) int {
	if n := len(u.table.Load().peers[neighbor].addrs); n > 0 {
		return n
	}
	return 1
}

// Close shuts the data plane down along its single quiesce path:
//
//  1. mark closed — new Sends and queued drains become no-op releases;
//  2. close every shard socket, which errors the readLoops out of their
//     batch reads;
//  3. wait for every readLoop to exit (their slabs return to the pool on
//     the way out), so no producer touches a handoff ring or a counter
//     afterward;
//  4. release every shard tx ring's still-coalesced frames (they never
//     reached the kernel; a queued flush observing closed would do the
//     same release).
//
// Frames already handed toward a shard loop (in an SPSC ring with a
// queued drain) are released without delivery when the drain runs —
// identical to the pre-shard contract for posted batches. Close is
// idempotent and safe to race.
func (u *UDPUnderlay) Close() error {
	u.mu.Lock()
	if u.closed.Load() {
		u.mu.Unlock()
		return nil
	}
	u.closed.Store(true)
	u.mu.Unlock()
	var err error
	for _, c := range u.conns {
		if e := c.Close(); e != nil && err == nil {
			err = e
		}
	}
	for _, d := range u.done {
		<-d
	}
	for _, s := range u.shards {
		s.sendMu.Lock()
		frames := s.pending
		s.pending = nil
		s.sendMu.Unlock()
		for i := range frames {
			frames[i].buf.Release()
		}
		if len(frames) > 0 {
			s.stats.SendDropped.Add(uint64(len(frames)))
		}
	}
	return err
}

// readLoop drains socket k in batches until the connection closes,
// pushing each decoded datagram onto its owning shard's handoff ring and
// ringing doorbells once per touched shard per wakeup.
func (u *UDPUnderlay) readLoop(k int) {
	defer close(u.done[k])
	br, err := newBatchReader(u.conns[k])
	if err != nil {
		// The socket cannot be read (platform refuses raw access); the
		// underlay stays up for sending only.
		return
	}
	defer br.release()
	nsh := len(u.shards)
	arrival := u.shards[k]
	for {
		n, err := br.read()
		if err != nil {
			return
		}
		if n == 0 {
			continue
		}
		tbl := u.table.Load()
		steer := nsh > 1 && u.ctrlSteer.Load()
		var bytes uint64
		var touched uint64
		for i := 0; i < n; i++ {
			ln := br.lens[i]
			bytes += uint64(ln)
			ent, ok := tbl.senders[br.addrs[i]]
			if !ok {
				// Unknown senders are dropped: only registered overlay
				// neighbors may inject frames.
				arrival.stats.RecvUnknown.Add(1)
				continue
			}
			target := int(ent.home)
			if target < 0 {
				if u.rxDispatch {
					target = flowShard(ent.id, br.addrs[i], nsh)
				} else {
					// Kernel steering already made the arrival socket this
					// flow's home.
					target = k
				}
			}
			ctrl := false
			if steer && target != 0 && wire.DatagramIsControl(br.segment(i)[:ln]) {
				// Control plane lives on shard 0; the redirect has its own
				// counter so Handoffs keeps meaning "data frame missed its
				// home shard".
				target = 0
				ctrl = true
				arrival.stats.ControlSteers.Add(1)
			}
			// Copy the datagram out of the slab into a pooled buffer; the
			// handler borrows it on the target shard's loop, and it is
			// recycled as soon as the handler returns. The pools are safe
			// across the readLoop/executor boundary.
			buf := wire.DefaultBufPool.Get(ln)
			buf.B = append(buf.B, br.segment(i)[:ln]...)
			touched |= 1 << uint(target)
			if !u.rings[k][target].ring.Push(rxFrame{from: ent.id, buf: buf}) {
				buf.Release()
				arrival.stats.HandoffDrops.Add(1)
				continue
			}
			if target != k && !ctrl {
				arrival.stats.Handoffs.Add(1)
			}
		}
		arrival.stats.RecvBatches.Add(1)
		arrival.stats.RecvPackets.Add(uint64(n))
		arrival.stats.RecvBytes.Add(bytes)
		for t := touched; t != 0; {
			s := bits.TrailingZeros64(t)
			t &^= 1 << uint(s)
			u.rings[k][s].d.post()
		}
		if u.closed.Load() {
			return
		}
	}
}

package transport

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"sonet/internal/metrics"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// UDPUnderlay carries link-level frames between overlay daemons as UDP
// datagrams. It implements node.Underlay: each neighbor has one or more
// remote addresses (one per underlay path, supporting multihoming across
// provider-specific addresses).
//
// The data plane is batched and lock-light:
//
//   - Receive: a batch reader (recvmmsg on Linux, per-datagram elsewhere)
//     drains up to wire.ReadBatch datagrams per wakeup into a pooled slab,
//     copies each into a pooled wire.Buf, and posts ONE pooled dispatch
//     record per batch onto the executor instead of one closure per packet.
//   - Sender identification: source addresses resolve through an immutable
//     peer table keyed by netip.AddrPort, read via an atomic pointer — no
//     per-packet lock, no addr.String() allocation. AddPeer copies the
//     table on write under a mutex and swaps the pointer.
//   - Send: frames produced within one event-loop turn accumulate in a
//     coalescing ring; a single flush posted on the executor hands the
//     whole turn's frames to the kernel at once (sendmmsg on Linux, a
//     write loop elsewhere).
//
// All per-direction batch/packet/byte counters live in metrics.WireStats.
type UDPUnderlay struct {
	conn *net.UDPConn
	exec sim.Executor
	// runnerExec is exec's RunnerExecutor view, nil when unsupported;
	// posting through it avoids a closure allocation per batch.
	runnerExec sim.RunnerExecutor
	// handler receives frames on the executor. Immutable after New.
	handler func(from wire.NodeID, data []byte)

	// table is the immutable peer snapshot; readers load it without
	// locking. mu serializes copy-on-write updates and lifecycle.
	table  atomic.Pointer[peerTable]
	closed atomic.Bool
	mu     sync.Mutex
	done   chan struct{}

	// The send coalescing ring: Send appends under sendMu, the posted
	// flush swaps pending with the spare slice and writes the batch out.
	sendMu      sync.Mutex
	pending     []outFrame
	spare       []outFrame
	flushQueued bool
	flusher     flushRunner
	// writeMu serializes access to the writer's header arrays when an
	// inline executor lets flushes overlap; uncontended on the event loop.
	writeMu sync.Mutex
	writer  *batchWriter

	// rxFree recycles batch dispatch records across the readLoop/executor
	// boundary.
	rxFree sync.Pool

	stats metrics.WireStats
}

// maxPending bounds the coalescing ring; past it new frames are dropped
// (best-effort, like IP) rather than buffering without bound.
const maxPending = 4096

// peerTable is an immutable snapshot of the peer registrations. A new
// table replaces the old one wholesale on every AddPeer.
type peerTable struct {
	// peers maps a neighbor to its per-path addresses.
	peers map[wire.NodeID][]netip.AddrPort
	// senders maps a source address to the neighbor it belongs to.
	senders map[netip.AddrPort]wire.NodeID
}

var emptyPeerTable = &peerTable{
	peers:   map[wire.NodeID][]netip.AddrPort{},
	senders: map[netip.AddrPort]wire.NodeID{},
}

// outFrame is one coalesced datagram awaiting flush.
type outFrame struct {
	to  netip.AddrPort
	buf *wire.Buf
}

// rxFrame is one received datagram awaiting dispatch.
type rxFrame struct {
	from wire.NodeID
	buf  *wire.Buf
}

// rxBatch carries one receive wakeup's datagrams to the executor as a
// single posted Runner.
type rxBatch struct {
	u      *UDPUnderlay
	frames []rxFrame
}

// Run dispatches the batch on the executor and recycles everything. After
// Close no frame reaches the handler; the buffers are still released.
func (b *rxBatch) Run() {
	u := b.u
	deliver := !u.closed.Load()
	for i := range b.frames {
		if deliver {
			u.handler(b.frames[i].from, b.frames[i].buf.B)
		}
		b.frames[i].buf.Release()
		b.frames[i] = rxFrame{}
	}
	b.frames = b.frames[:0]
	u.rxFree.Put(b)
}

// flushRunner posts the send-ring flush without allocating a closure.
type flushRunner struct{ u *UDPUnderlay }

// Run implements sim.Runner.
func (f *flushRunner) Run() { f.u.flush() }

// canonAddrPort normalizes an address for table keys and lookups: IPv4
// and IPv4-in-IPv6 forms of the same endpoint must collide.
func canonAddrPort(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// NewUDPUnderlay binds a UDP socket and starts the receive loop; frames
// are handed to handler on exec (the daemon's event loop), preserving the
// single-threaded protocol model.
func NewUDPUnderlay(bind string, exec sim.Executor, handler func(from wire.NodeID, data []byte)) (*UDPUnderlay, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", bind, err)
	}
	u := &UDPUnderlay{
		conn:    conn,
		exec:    exec,
		handler: handler,
		done:    make(chan struct{}),
	}
	u.runnerExec, _ = exec.(sim.RunnerExecutor)
	u.flusher.u = u
	u.table.Store(emptyPeerTable)
	w, err := newBatchWriter(conn)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: batch writer: %w", err)
	}
	u.writer = w
	go u.readLoop()
	return u, nil
}

// LocalAddr returns the bound address.
func (u *UDPUnderlay) LocalAddr() string { return u.conn.LocalAddr().String() }

// Stats returns a snapshot of the underlay's datagram counters.
func (u *UDPUnderlay) Stats() metrics.WireSnapshot { return u.stats.Snapshot() }

// AddPeer registers (or re-registers) a neighbor's addresses, one per
// underlay path. Re-registration replaces the previous addresses: frames
// from an address the peer no longer owns are dropped as unknown.
func (u *UDPUnderlay) AddPeer(id wire.NodeID, addrs ...string) error {
	if len(addrs) == 0 {
		return fmt.Errorf("transport: peer %v needs at least one address", id)
	}
	resolved := make([]netip.AddrPort, 0, len(addrs))
	for _, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("transport: resolve peer %v addr %q: %w", id, a, err)
		}
		resolved = append(resolved, canonAddrPort(ua.AddrPort()))
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	old := u.table.Load()
	nt := &peerTable{
		peers:   make(map[wire.NodeID][]netip.AddrPort, len(old.peers)+1),
		senders: make(map[netip.AddrPort]wire.NodeID, len(old.senders)+len(resolved)),
	}
	for k, v := range old.peers {
		if k != id {
			nt.peers[k] = v
		}
	}
	nt.peers[id] = resolved
	for k, v := range old.senders {
		// Skipping the peer's old entries unregisters any address it no
		// longer owns.
		if v != id {
			nt.senders[k] = v
		}
	}
	for _, ap := range resolved {
		nt.senders[ap] = id
	}
	u.table.Store(nt)
	return nil
}

// Send implements node.Underlay: the frame joins the coalescing ring and
// reaches the kernel in the flush posted for the current event-loop turn.
// The bytes are copied into a pooled buffer before Send returns, so the
// caller keeps ownership of data.
func (u *UDPUnderlay) Send(neighbor wire.NodeID, path uint8, data []byte) {
	if u.closed.Load() {
		return
	}
	tbl := u.table.Load()
	addrs := tbl.peers[neighbor]
	if len(addrs) == 0 {
		return
	}
	addr := addrs[int(path)%len(addrs)]
	buf := wire.DefaultBufPool.Get(len(data))
	buf.B = append(buf.B, data...)
	u.sendMu.Lock()
	if len(u.pending) >= maxPending {
		u.sendMu.Unlock()
		buf.Release()
		u.stats.SendDropped.Add(1)
		return
	}
	u.pending = append(u.pending, outFrame{to: addr, buf: buf})
	queued := u.flushQueued
	u.flushQueued = true
	u.sendMu.Unlock()
	if !queued {
		if u.runnerExec != nil {
			u.runnerExec.PostRunner(&u.flusher)
		} else {
			u.exec.Post(u.flush)
		}
	}
}

// flush writes every coalesced frame out in one batch. It runs on the
// executor, so frames produced within one event-loop turn share a single
// kernel crossing.
func (u *UDPUnderlay) flush() {
	u.sendMu.Lock()
	frames := u.pending
	u.pending = u.spare[:0]
	// Detach spare until the scan below finishes: a concurrent flush (only
	// possible with an inline executor) must not adopt frames as its new
	// pending while this one is still releasing entries outside the lock.
	u.spare = nil
	u.flushQueued = false
	u.sendMu.Unlock()
	if len(frames) > 0 {
		if u.closed.Load() {
			u.stats.SendDropped.Add(uint64(len(frames)))
		} else {
			// The writer's header arrays are single-flush state; the event
			// loop serializes flushes, so this is uncontended there.
			u.writeMu.Lock()
			sent, dropped, bytes := u.writer.send(frames)
			u.writeMu.Unlock()
			u.stats.SendBatches.Add(1)
			u.stats.SendPackets.Add(uint64(sent))
			u.stats.SendBytes.Add(bytes)
			if dropped > 0 {
				u.stats.SendDropped.Add(uint64(dropped))
			}
		}
		for i := range frames {
			frames[i].buf.Release()
			frames[i] = outFrame{}
		}
	}
	u.sendMu.Lock()
	u.spare = frames[:0]
	u.sendMu.Unlock()
}

// PathCount implements node.Underlay.
func (u *UDPUnderlay) PathCount(neighbor wire.NodeID) int {
	if n := len(u.table.Load().peers[neighbor]); n > 0 {
		return n
	}
	return 1
}

// Close shuts the socket and stops the receive loop. Frames already
// posted toward the handler are released without being delivered.
func (u *UDPUnderlay) Close() error {
	u.mu.Lock()
	if u.closed.Load() {
		u.mu.Unlock()
		return nil
	}
	u.closed.Store(true)
	u.mu.Unlock()
	err := u.conn.Close()
	<-u.done
	// Frames still coalesced were never handed to the kernel; a queued
	// flush observing closed would do the same release.
	u.sendMu.Lock()
	frames := u.pending
	u.pending = nil
	u.sendMu.Unlock()
	for i := range frames {
		frames[i].buf.Release()
	}
	if len(frames) > 0 {
		u.stats.SendDropped.Add(uint64(len(frames)))
	}
	return err
}

// getRxBatch returns a recycled (or new) dispatch record.
func (u *UDPUnderlay) getRxBatch() *rxBatch {
	if v := u.rxFree.Get(); v != nil {
		if b, ok := v.(*rxBatch); ok {
			return b
		}
	}
	return &rxBatch{u: u, frames: make([]rxFrame, 0, wire.ReadBatch)}
}

// readLoop drains the socket in batches until the connection closes. One
// executor post covers every datagram of a wakeup.
func (u *UDPUnderlay) readLoop() {
	defer close(u.done)
	br, err := newBatchReader(u.conn)
	if err != nil {
		// The socket cannot be read (platform refuses raw access); the
		// underlay stays up for sending only.
		return
	}
	defer br.release()
	for {
		n, err := br.read()
		if err != nil {
			return
		}
		if n == 0 {
			continue
		}
		tbl := u.table.Load()
		batch := u.getRxBatch()
		var bytes uint64
		for i := 0; i < n; i++ {
			ln := br.lens[i]
			bytes += uint64(ln)
			id, ok := tbl.senders[br.addrs[i]]
			if !ok {
				// Unknown senders are dropped: only registered overlay
				// neighbors may inject frames.
				u.stats.RecvUnknown.Add(1)
				continue
			}
			// Copy the datagram out of the slab into a pooled buffer; the
			// handler borrows it, so it is recycled as soon as the handler
			// returns. sync.Pool is safe across the readLoop/executor
			// boundary.
			data := wire.DefaultBufPool.Get(ln)
			data.B = append(data.B, br.segment(i)[:ln]...)
			batch.frames = append(batch.frames, rxFrame{from: id, buf: data})
		}
		u.stats.RecvBatches.Add(1)
		u.stats.RecvPackets.Add(uint64(n))
		u.stats.RecvBytes.Add(bytes)
		if len(batch.frames) == 0 {
			u.rxFree.Put(batch)
			continue
		}
		if u.closed.Load() {
			batch.Run() // releases without delivering
			return
		}
		if u.runnerExec != nil {
			u.runnerExec.PostRunner(batch)
		} else {
			u.exec.Post(batch.Run)
		}
	}
}

package transport

import (
	"fmt"
	"net"
	"sync"

	"sonet/internal/sim"
	"sonet/internal/wire"
)

// UDPUnderlay carries link-level frames between overlay daemons as UDP
// datagrams. It implements node.Underlay: each neighbor has one or more
// remote addresses (one per underlay path, supporting multihoming across
// provider-specific addresses).
type UDPUnderlay struct {
	conn *net.UDPConn
	exec sim.Executor

	mu sync.Mutex
	// peers maps a neighbor to its per-path addresses.
	peers map[wire.NodeID][]*net.UDPAddr
	// senders maps a source address to the neighbor it belongs to.
	senders map[string]wire.NodeID
	// handler receives frames on the executor.
	handler func(from wire.NodeID, data []byte)

	closed  bool
	done    chan struct{}
	dropped uint64
}

// NewUDPUnderlay binds a UDP socket and starts the receive loop; frames
// are handed to handler on exec (the daemon's event loop), preserving the
// single-threaded protocol model.
func NewUDPUnderlay(bind string, exec sim.Executor, handler func(from wire.NodeID, data []byte)) (*UDPUnderlay, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", bind, err)
	}
	u := &UDPUnderlay{
		conn:    conn,
		exec:    exec,
		peers:   make(map[wire.NodeID][]*net.UDPAddr),
		senders: make(map[string]wire.NodeID),
		handler: handler,
		done:    make(chan struct{}),
	}
	go u.readLoop()
	return u, nil
}

// LocalAddr returns the bound address.
func (u *UDPUnderlay) LocalAddr() string { return u.conn.LocalAddr().String() }

// AddPeer registers a neighbor's addresses, one per underlay path.
func (u *UDPUnderlay) AddPeer(id wire.NodeID, addrs ...string) error {
	if len(addrs) == 0 {
		return fmt.Errorf("transport: peer %v needs at least one address", id)
	}
	resolved := make([]*net.UDPAddr, 0, len(addrs))
	for _, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("transport: resolve peer %v addr %q: %w", id, a, err)
		}
		resolved = append(resolved, ua)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.peers[id] = resolved
	for _, ua := range resolved {
		u.senders[ua.String()] = id
	}
	return nil
}

// Send implements node.Underlay.
func (u *UDPUnderlay) Send(neighbor wire.NodeID, path uint8, data []byte) {
	u.mu.Lock()
	addrs := u.peers[neighbor]
	closed := u.closed
	u.mu.Unlock()
	if closed || len(addrs) == 0 {
		return
	}
	addr := addrs[int(path)%len(addrs)]
	// Best-effort, like IP: errors are indistinguishable from loss.
	if _, err := u.conn.WriteToUDP(data, addr); err != nil {
		u.mu.Lock()
		u.dropped++
		u.mu.Unlock()
	}
}

// PathCount implements node.Underlay.
func (u *UDPUnderlay) PathCount(neighbor wire.NodeID) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	if n := len(u.peers[neighbor]); n > 0 {
		return n
	}
	return 1
}

// Close shuts the socket and stops the receive loop.
func (u *UDPUnderlay) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	<-u.done
	return err
}

func (u *UDPUnderlay) readLoop() {
	defer close(u.done)
	buf := make([]byte, 1<<16)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		u.mu.Lock()
		id, ok := u.senders[from.String()]
		closed := u.closed
		u.mu.Unlock()
		if closed {
			return
		}
		if !ok {
			// Unknown senders are dropped: only registered overlay
			// neighbors may inject frames.
			continue
		}
		// Hand the datagram to the event loop in a pooled buffer; the
		// handler borrows it, so it can be recycled as soon as the handler
		// returns. sync.Pool is safe across the readLoop/executor boundary.
		data := wire.DefaultBufPool.Get(n)
		data.B = append(data.B, buf[:n]...)
		u.exec.Post(func() {
			u.handler(id, data.B)
			data.Release()
		})
	}
}

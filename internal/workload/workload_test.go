package workload

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"sonet/internal/sim"
)

func TestCBRRateAndCount(t *testing.T) {
	sched := sim.NewScheduler(1)
	var at []time.Duration
	c := &CBR{
		Clock:    sched,
		Interval: 10 * time.Millisecond,
		Count:    50,
		Send: func(seq uint32, payload []byte) error {
			at = append(at, sched.Now())
			if len(payload) != 1200 {
				t.Errorf("payload %d bytes, want default 1200", len(payload))
			}
			return nil
		},
	}
	c.Start()
	sched.RunFor(10 * time.Second)
	if len(at) != 50 {
		t.Fatalf("sent %d, want 50", len(at))
	}
	for i := 1; i < len(at); i++ {
		if at[i]-at[i-1] != 10*time.Millisecond {
			t.Fatalf("gap %v at %d", at[i]-at[i-1], i)
		}
	}
	if c.Sent() != 50 {
		t.Fatalf("Sent() = %d", c.Sent())
	}
}

func TestCBRStop(t *testing.T) {
	sched := sim.NewScheduler(1)
	sent := 0
	c := &CBR{
		Clock:    sched,
		Interval: 10 * time.Millisecond,
		Send:     func(uint32, []byte) error { sent++; return nil },
	}
	c.Start()
	sched.RunFor(95 * time.Millisecond)
	c.Stop()
	sched.RunFor(time.Second)
	if sent != 10 {
		t.Fatalf("sent %d after stop, want 10", sent)
	}
}

func TestCBRErrorHook(t *testing.T) {
	sched := sim.NewScheduler(1)
	errs := 0
	c := &CBR{
		Clock:    sched,
		Interval: time.Millisecond,
		Count:    5,
		Send:     func(uint32, []byte) error { return errors.New("down") },
		OnError:  func(error) { errs++ },
	}
	c.Start()
	sched.RunFor(time.Second)
	if errs != 5 {
		t.Fatalf("OnError fired %d times, want 5", errs)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	sched := sim.NewScheduler(1)
	sent := 0
	p := &Poisson{
		Clock:        sched,
		Rand:         rand.New(rand.NewPCG(1, 2)),
		MeanInterval: 10 * time.Millisecond,
		Send:         func(uint32, []byte) error { sent++; return nil },
	}
	p.Start()
	sched.RunFor(60 * time.Second)
	p.Stop()
	// 100 pkt/s over 60 s → ~6000, CV ~1.3%.
	if math.Abs(float64(sent)-6000) > 400 {
		t.Fatalf("sent %d, want ≈6000", sent)
	}
}

func TestBurstAttack(t *testing.T) {
	sched := sim.NewScheduler(1)
	sent := 0
	b := &Burst{
		Clock:    sched,
		Period:   100 * time.Millisecond,
		PerBurst: 100,
		Send:     func(uint32, []byte) error { sent++; return nil },
	}
	b.Start()
	sched.RunFor(950 * time.Millisecond)
	b.Stop()
	sched.RunFor(time.Second)
	if sent != 1000 {
		t.Fatalf("sent %d, want 1000 (10 bursts × 100)", sent)
	}
}

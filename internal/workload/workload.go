// Package workload generates the synthetic traffic the experiments drive
// through the overlay: constant-bit-rate video-like streams, Poisson
// monitoring streams, request/response control exchanges, and flooding
// attack traffic. These substitute for the paper's broadcast video and
// cloud-monitoring feeds (see DESIGN.md §2): the reproduced claims depend
// on packet rate, deadline, and loss pattern, all captured here.
package workload

import (
	"math/rand/v2"
	"time"

	"sonet/internal/sim"
)

// Sender emits one message; implementations wrap a session flow.
type Sender func(seq uint32, payload []byte) error

// CBR drives a constant-bit-rate stream: count packets of size bytes at
// the given rate. It returns a stop function.
//
// Broadcast-quality video is the canonical CBR workload (§III-A).
type CBR struct {
	// Clock schedules transmissions.
	Clock sim.Clock
	// Interval is the inter-packet gap (e.g. 1 ms for 1000 pkt/s).
	Interval time.Duration
	// Size is the payload size in bytes.
	Size int
	// Count bounds the number of packets; zero means run until stopped.
	Count int
	// Send emits each packet.
	Send Sender
	// OnError, when set, receives send errors (default: ignore — IP-like
	// sources keep streaming through outages).
	OnError func(error)

	seq     uint32
	stopped bool
	timer   sim.Timer
}

// Start begins the stream immediately.
func (c *CBR) Start() {
	if c.Size <= 0 {
		c.Size = 1200
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	c.tick()
}

// Stop halts the stream.
func (c *CBR) Stop() {
	c.stopped = true
	if c.timer != nil {
		c.timer.Stop()
	}
}

// Sent returns the number of packets emitted so far.
func (c *CBR) Sent() uint32 { return c.seq }

func (c *CBR) tick() {
	if c.stopped || (c.Count > 0 && int(c.seq) >= c.Count) {
		return
	}
	c.seq++
	if err := c.Send(c.seq, make([]byte, c.Size)); err != nil && c.OnError != nil {
		c.OnError(err)
	}
	c.timer = c.Clock.After(c.Interval, func() { c.tick() })
}

// Poisson drives a Poisson arrival process at the given mean rate —
// monitoring telemetry and control commands arrive this way (§III-B).
type Poisson struct {
	// Clock schedules transmissions.
	Clock sim.Clock
	// Rand draws inter-arrival times.
	Rand *rand.Rand
	// MeanInterval is the mean inter-arrival gap.
	MeanInterval time.Duration
	// Size is the payload size in bytes.
	Size int
	// Count bounds the number of packets; zero means run until stopped.
	Count int
	// Send emits each packet.
	Send Sender
	// OnError, when set, receives send errors.
	OnError func(error)

	seq     uint32
	stopped bool
	timer   sim.Timer
}

// Start begins the process.
func (p *Poisson) Start() {
	if p.Size <= 0 {
		p.Size = 200
	}
	if p.MeanInterval <= 0 {
		p.MeanInterval = 10 * time.Millisecond
	}
	p.schedule()
}

// Stop halts the process.
func (p *Poisson) Stop() {
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
	}
}

// Sent returns the number of packets emitted so far.
func (p *Poisson) Sent() uint32 { return p.seq }

func (p *Poisson) schedule() {
	if p.stopped || (p.Count > 0 && int(p.seq) >= p.Count) {
		return
	}
	gap := time.Duration(p.Rand.ExpFloat64() * float64(p.MeanInterval))
	p.timer = p.Clock.After(gap, func() {
		if p.stopped {
			return
		}
		p.seq++
		if err := p.Send(p.seq, make([]byte, p.Size)); err != nil && p.OnError != nil {
			p.OnError(err)
		}
		p.schedule()
	})
}

// Burst emits bursts of packets at a period — the resource-consumption
// attacker of §IV-B, flooding well above link capacity.
type Burst struct {
	// Clock schedules bursts.
	Clock sim.Clock
	// Period is the gap between bursts.
	Period time.Duration
	// PerBurst is the number of packets per burst.
	PerBurst int
	// Size is the payload size in bytes.
	Size int
	// Send emits each packet.
	Send Sender

	seq     uint32
	stopped bool
	timer   sim.Timer
}

// Start begins bursting immediately.
func (b *Burst) Start() {
	if b.Size <= 0 {
		b.Size = 1200
	}
	if b.PerBurst <= 0 {
		b.PerBurst = 100
	}
	if b.Period <= 0 {
		b.Period = 100 * time.Millisecond
	}
	b.tick()
}

// Stop halts the attack.
func (b *Burst) Stop() {
	b.stopped = true
	if b.timer != nil {
		b.timer.Stop()
	}
}

// Sent returns the number of packets emitted so far.
func (b *Burst) Sent() uint32 { return b.seq }

func (b *Burst) tick() {
	if b.stopped {
		return
	}
	for i := 0; i < b.PerBurst; i++ {
		b.seq++
		// Attack traffic ignores errors by design.
		_ = b.Send(b.seq, make([]byte, b.Size))
	}
	b.timer = b.Clock.After(b.Period, func() { b.tick() })
}

package chaos

import "time"

// SmokeCampaigns is the pinned-seed regression suite: twelve campaigns
// spanning every fault generator, every topology, one hand-scripted
// scenario exercising the full event DSL, and two churn campaigns on
// membership-enabled worlds (graceful leaves, re-admissions, corrupted
// views under the stabilization-bound invariant). Every campaign must
// complete with zero invariant violations; the suite doubles as the
// `make chaos-smoke` CI gate and the EXP-CHAOS experiment workload.
func SmokeCampaigns() []Campaign {
	return []Campaign{
		{Name: "flap-diamond", Topo: "diamond4", Seed: 101,
			Generators: []GeneratorSpec{{Kind: KindCutLink, Rate: 0.8}}},
		{Name: "partition-ring", Topo: "ring8", Seed: 202,
			Generators: []GeneratorSpec{{Kind: KindPartition, Rate: 0.4}}},
		{Name: "crash-grid", Topo: "grid9", Seed: 303,
			Generators: []GeneratorSpec{{Kind: KindCrashNode, Rate: 0.4}}},
		{Name: "ispout-diamond", Topo: "diamond4", Seed: 404,
			Generators: []GeneratorSpec{{Kind: KindISPOutage, Rate: 0.4}}},
		{Name: "brownout-ring", Topo: "ring8", Seed: 505,
			Generators: []GeneratorSpec{{Kind: KindBrownout, Rate: 0.5}}},
		{Name: "spike-grid", Topo: "grid9", Seed: 606,
			Generators: []GeneratorSpec{{Kind: KindLatencySpike, Rate: 0.6}}},
		{Name: "flap-crash-ring", Topo: "ring8", Seed: 707,
			Generators: []GeneratorSpec{
				{Kind: KindCutLink, Rate: 0.5},
				{Kind: KindCrashNode, Rate: 0.3},
			}},
		{Name: "partition-ispout-grid", Topo: "grid9", Seed: 808,
			Generators: []GeneratorSpec{
				{Kind: KindPartition, Rate: 0.3},
				{Kind: KindISPOutage, Rate: 0.3},
				{Kind: KindBrownout, Rate: 0.3},
			}},
		{Name: "everything-diamond", Topo: "diamond4", Seed: 909,
			Generators: []GeneratorSpec{
				{Kind: KindCutLink, Rate: 0.25},
				{Kind: KindPartition, Rate: 0.25},
				{Kind: KindCrashNode, Rate: 0.25},
				{Kind: KindISPOutage, Rate: 0.25},
				{Kind: KindBrownout, Rate: 0.25},
				{Kind: KindLatencySpike, Rate: 0.25},
			}},
		{Name: "scripted-mixed", Topo: "diamond4", Seed: 42,
			Script: []Event{
				{At: 300 * time.Millisecond, Kind: KindLatencySpike, Arg: 0, Val: 30},
				{At: 500 * time.Millisecond, Kind: KindCutLink, Arg: 4},
				{At: 700 * time.Millisecond, Kind: KindRestoreLink, Arg: 4},
				{At: 900 * time.Millisecond, Kind: KindBrownout, Arg: 1, Val: 150},
				{At: 1200 * time.Millisecond, Kind: KindISPOutage, Arg: 0},
				{At: 1500 * time.Millisecond, Kind: KindLatencyNormal, Arg: 0},
				{At: 2200 * time.Millisecond, Kind: KindISPRestore, Arg: 0},
				{At: 2500 * time.Millisecond, Kind: KindBrownoutEnd, Arg: 1},
				{At: 2800 * time.Millisecond, Kind: KindCrashNode, Arg: 3},
				{At: 3000 * time.Millisecond, Kind: KindPartition, Mask: MaskBits(0b0011)},
				{At: 4200 * time.Millisecond, Kind: KindHeal, Mask: MaskBits(0b0011)},
				{At: 4500 * time.Millisecond, Kind: KindRestartNode, Arg: 3},
			}},
		{Name: "churn-ring", Topo: "churn8", Seed: 1111,
			Generators: []GeneratorSpec{
				{Kind: KindLeaveNode, Rate: 0.5},
				{Kind: KindCutLink, Rate: 0.3},
			}},
		{Name: "churn-corrupt-grid", Topo: "churn9", Seed: 2222,
			Generators: []GeneratorSpec{
				{Kind: KindLeaveNode, Rate: 0.4},
				{Kind: KindCorruptView, Rate: 0.4},
				{Kind: KindCrashNode, Rate: 0.25},
			}},
	}
}

package chaos

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// protectedNodes is how many leading world nodes are exempt from crash
// generators: indices 0..2 host the campaign's traffic endpoints (stream
// source, stream destination, multicast members), whose client state must
// survive so end-to-end invariants stay checkable. Scripts may still
// crash them explicitly — losing a destination is then a legitimate,
// detectable violation (the minimizer test relies on this).
const protectedNodes = 3

// maxFaultsPerGenerator bounds expansion so a mistyped rate cannot
// explode a campaign.
const maxFaultsPerGenerator = 64

// generator-expansion tuning: each fault instance picks a hold duration
// in a per-kind range, sits inside the campaign window with margin on
// both sides, and leaves a grace gap before the same resource is faulted
// again.
const (
	expandMargin = 200 * time.Millisecond
	expandGrace  = 200 * time.Millisecond
)

// durationRange returns the [min, max) fault-hold range for a kind.
// Flaps start at 50 ms — well under the ~300 ms hello-miss detection
// window, so campaigns exercise faults faster than convergence. Crashes
// hold at least 600 ms so down detection, reroute, and LSA withdrawal all
// fire before the reborn incarnation appears.
func durationRange(k Kind) (min, max time.Duration) {
	switch k {
	case KindCutLink:
		return 50 * time.Millisecond, 2500 * time.Millisecond
	case KindCrashNode, KindLeaveNode:
		return 600 * time.Millisecond, 2 * time.Second
	case KindCorruptView:
		// No repair event — the hold only spaces repeated corruptions of
		// the same victim while its sweeps are still stabilizing.
		return 500 * time.Millisecond, 1500 * time.Millisecond
	case KindPartition, KindISPOutage:
		return 500 * time.Millisecond, 2500 * time.Millisecond
	case KindBrownout:
		return 500 * time.Millisecond, 3 * time.Second
	case KindLatencySpike:
		return 200 * time.Millisecond, 2 * time.Second
	}
	return 500 * time.Millisecond, 2 * time.Second
}

// Expand turns a campaign's generators into concrete fault/repair event
// pairs and merges them with its script, returning the full sorted event
// list. Expansion is a pure function of (campaign, topology): it draws
// from its own PCG stream seeded by Campaign.Seed, entirely before the
// world runs, so the same campaign always yields the same script and a
// replayed script needs no generator state at all.
func Expand(c Campaign, t Topology) ([]Event, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	events := append([]Event(nil), c.Script...)
	if len(c.Generators) > 0 {
		rng := rand.New(rand.NewPCG(c.Seed, c.Seed^0x5eed_c4a0_5a77_0001))
		// busyUntil serializes faults per underlay resource so paired
		// repairs never interleave on the same target.
		busyUntil := make(map[string]time.Duration)
		for _, g := range c.Generators {
			events = append(events, expandGenerator(g, c, t, rng, busyUntil)...)
		}
	}
	sortEvents(events)
	return events, nil
}

func expandGenerator(g GeneratorSpec, c Campaign, t Topology, rng *rand.Rand, busyUntil map[string]time.Duration) []Event {
	n := int(g.Rate * c.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	if n > maxFaultsPerGenerator {
		n = maxFaultsPerGenerator
	}
	var out []Event
	for i := 0; i < n; i++ {
		fault, key, ok := drawFault(g.Kind, t, rng)
		if !ok {
			continue
		}
		lo, hi := durationRange(g.Kind)
		hold := lo + time.Duration(rng.Int64N(int64(hi-lo)))
		window := c.Duration - hold - 2*expandMargin
		if window <= 0 {
			continue
		}
		start := expandMargin + time.Duration(rng.Int64N(int64(window)))
		// Sub-millisecond offset decorrelates event times from the
		// world's periodic timers so tie-breaking never carries weight.
		start += time.Duration(rng.Int64N(int64(time.Millisecond)))
		if start < busyUntil[key] {
			continue
		}
		busyUntil[key] = start + hold + expandGrace
		fault.At = start
		out = append(out, fault)
		if rk, ok := repairOf[g.Kind]; ok {
			repair := fault
			repair.At = start + hold
			repair.Kind = rk
			out = append(out, repair)
		}
	}
	return out
}

// drawFault picks a concrete target for one fault instance and returns
// the half-built event plus the busy-map key serializing that target.
func drawFault(k Kind, t Topology, rng *rand.Rand) (Event, string, bool) {
	ev := Event{Kind: k}
	switch k {
	case KindCutLink:
		ev.Arg = rng.IntN(len(t.Pairs))
		return ev, fmt.Sprintf("link:%d", ev.Arg), true
	case KindLatencySpike:
		ev.Arg = rng.IntN(len(t.Pairs))
		ev.Val = 20 + rng.IntN(21) // ×2.0 .. ×4.0
		return ev, fmt.Sprintf("link:%d", ev.Arg), true
	case KindCrashNode, KindLeaveNode:
		if t.N <= protectedNodes {
			return ev, "", false
		}
		ev.Arg = protectedNodes + rng.IntN(t.N-protectedNodes)
		return ev, fmt.Sprintf("node:%d", ev.Arg), true
	case KindCorruptView:
		// Traffic endpoints are exempt like crash victims: corrupting a
		// stream endpoint's view can administratively sever its links for
		// a sweep or two, which the no-loss invariant would misread.
		if t.N <= protectedNodes {
			return ev, "", false
		}
		ev.Arg = protectedNodes + rng.IntN(t.N-protectedNodes)
		ev.Val = rng.IntN(2)
		return ev, fmt.Sprintf("node:%d", ev.Arg), true
	case KindISPOutage:
		ev.Arg = rng.IntN(2)
		return ev, fmt.Sprintf("isp:%d", ev.Arg), true
	case KindBrownout:
		ev.Arg = rng.IntN(2)
		ev.Val = 50 + rng.IntN(251) // 5% .. 30% loss
		return ev, fmt.Sprintf("isp-loss:%d", ev.Arg), true
	case KindPartition:
		// A random nonempty proper subset of nodes forms group A.
		size := 1 + rng.IntN(t.N-1)
		perm := rng.Perm(t.N)
		for _, idx := range perm[:size] {
			ev.Mask = ev.Mask.With(idx)
		}
		return ev, "partition", true
	}
	return ev, "", false
}

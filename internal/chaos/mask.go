package chaos

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// NodeMask is a set of world node indices (bit i = node index i), stored
// as little-endian 64-bit words. It replaces the old bare-uint64
// partition mask so campaign worlds can exceed 64 nodes. Masks that fit
// one word render and marshal exactly as the uint64 did — `%#x`-style
// hex in traces, a plain JSON number in artifacts — so pinned-seed
// smoke campaigns replay bit-for-bit and version-1 artifacts stay
// readable and writable unchanged.
//
// The zero value (nil) is the empty set. Masks are normalized: no
// trailing zero words, so Empty and Equal are structural.
type NodeMask []uint64

// MaskBits builds a mask from a one-word bit pattern (bit i = node
// index i) — the constructor hand-written campaign scripts use.
func MaskBits(bits uint64) NodeMask {
	if bits == 0 {
		return nil
	}
	return NodeMask{bits}
}

// With returns the mask with bit i set, growing as needed.
func (m NodeMask) With(i int) NodeMask {
	w := i / 64
	for len(m) <= w {
		m = append(m, 0)
	}
	m[w] |= uint64(1) << (i % 64)
	return m
}

// Bit reports whether node index i is in the set.
func (m NodeMask) Bit(i int) bool {
	w := i / 64
	if i < 0 || w >= len(m) {
		return false
	}
	return m[w]&(uint64(1)<<(i%64)) != 0
}

// Empty reports whether no bit is set.
func (m NodeMask) Empty() bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

// MaxBit returns the highest set bit index, or -1 when empty.
func (m NodeMask) MaxBit() int {
	for w := len(m) - 1; w >= 0; w-- {
		if m[w] == 0 {
			continue
		}
		for b := 63; b >= 0; b-- {
			if m[w]&(uint64(1)<<b) != 0 {
				return w*64 + b
			}
		}
	}
	return -1
}

// Equal reports set equality, ignoring trailing zero words.
func (m NodeMask) Equal(o NodeMask) bool {
	n := len(m)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(m) {
			a = m[i]
		}
		if i < len(o) {
			b = o[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// String renders the mask as %#x-style hex — identical to the old
// uint64 rendering for one-word masks, wider hex beyond.
func (m NodeMask) String() string {
	top := len(m) - 1
	for top >= 0 && m[top] == 0 {
		top--
	}
	if top < 0 {
		return "0x0"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%#x", m[top])
	for w := top - 1; w >= 0; w-- {
		fmt.Fprintf(&sb, "%016x", m[w])
	}
	return sb.String()
}

// MarshalJSON emits one-word masks as a plain number (the version-1
// artifact format) and wider masks as an array of words.
func (m NodeMask) MarshalJSON() ([]byte, error) {
	top := len(m) - 1
	for top >= 0 && m[top] == 0 {
		top--
	}
	switch {
	case top < 0:
		return []byte("0"), nil
	case top == 0:
		return strconv.AppendUint(nil, m[0], 10), nil
	default:
		return json.Marshal([]uint64(m[:top+1]))
	}
}

// UnmarshalJSON accepts both forms.
func (m *NodeMask) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '[' {
		var words []uint64
		if err := json.Unmarshal(data, &words); err != nil {
			return err
		}
		for len(words) > 0 && words[len(words)-1] == 0 {
			words = words[:len(words)-1]
		}
		*m = NodeMask(words)
		return nil
	}
	v, err := strconv.ParseUint(string(data), 10, 64)
	if err != nil {
		return fmt.Errorf("chaos: bad mask %q: %w", data, err)
	}
	*m = MaskBits(v)
	return nil
}

package chaos

import (
	"fmt"
	"hash/fnv"
	"time"

	"sonet/internal/membership"
	"sonet/internal/metrics"
	"sonet/internal/netemu"
	"sonet/internal/session"
	"sonet/internal/wire"
)

// Campaign phase timing. The convergence bound is the engine's promise:
// once all faults are repaired, every surviving and reborn node must
// reconverge within it. It is derived from the chaos world's knobs —
// underlay restore (400 ms) + down-probe rediscovery (250 ms) + hello
// confirmation (100 ms × (3+1)) + one LSA refresh cycle (1 s) + one group
// refresh cycle (500 ms) — plus flood propagation slack.
const (
	settleTime     = time.Second
	streamInterval = 25 * time.Millisecond
	mcastInterval  = 100 * time.Millisecond
	itInterval     = 50 * time.Millisecond
	tickInterval   = 500 * time.Millisecond
	convergeBound  = 3500 * time.Millisecond
	probeTime      = time.Second
	drainTime      = 10 * time.Second
	// defaultDuration is the fault window when a campaign leaves it zero.
	defaultDuration = 6 * time.Second
)

// Traffic addressing: the stream runs node[0]→node[1], the multicast
// group spans nodes[1..2], and every node hosts a probe client.
const (
	streamSrcPort  = wire.Port(50)
	streamDstPort  = wire.Port(100)
	mcastSrcPort   = wire.Port(51)
	mcastPort      = wire.Port(200)
	itSrcPort      = wire.Port(52)
	itDstPort      = wire.Port(300)
	probePort      = wire.Port(9)
	chaosGroup     = wire.GroupID(7)
	mcastMemberLo  = 1
	mcastMemberHi  = 2
	streamSrcIndex = 0
	streamDstIndex = 1
)

// TraceEntry is one line of a campaign's deterministic event trace, at a
// campaign-relative virtual time.
type TraceEntry struct {
	At   time.Duration `json:"at"`
	What string        `json:"what"`
}

// Violation is one invariant failure observed during a campaign.
type Violation struct {
	At        time.Duration `json:"at"`
	Invariant string        `json:"invariant"`
	Detail    string        `json:"detail"`
}

// Report is the outcome of one campaign run.
type Report struct {
	Campaign Campaign
	// Events is the concrete expanded script the engine executed —
	// sufficient, with the seed, to replay the run bit-for-bit.
	Events []Event
	// Trace is the deterministic record of applied events and invariant
	// verdicts.
	Trace []TraceEntry
	// TraceHash is the FNV-1a hash of Trace; identical (scenario, seed)
	// runs must produce identical hashes.
	TraceHash uint64
	// Violations lists every invariant failure, in time order.
	Violations []Violation
	// Stats summarizes engine activity.
	Stats metrics.ChaosSnapshot
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// engine executes one campaign against one world.
type engine struct {
	w      *World
	camp   Campaign
	events []Event
	base   time.Duration
	stats  metrics.ChaosStats

	trace []TraceEntry
	viol  []Violation

	// Fault bookkeeping. fiberCuts reference-counts severed fibers
	// across cut-link, partition, and isp-outage events so overlapping
	// faults compose: a repair only resurrects a fiber no other
	// outstanding fault still claims.
	fiberCuts  map[netemu.FiberID]int
	linkCut    []int
	crashDepth []int
	leaveDepth []int
	ispOut     [2]int
	brownDepth [2]int
	spikeDepth []int
	partitions []NodeMask
	// appliedKinds records which fault kinds actually fired, for
	// fault-sensitive invariants.
	appliedKinds map[Kind]bool

	// Traffic state.
	streamFlow *session.Flow
	mcastFlow  *session.Flow
	itFlow     *session.Flow
	streamSent int
	mcastSent  int
	itSent     int
	itGot      int
	streamNext uint32
	streamGot  int
	mcastSeen  []map[uint32]bool
	probeGot   []int
}

// Run executes a campaign: build the world, expand generators, inject
// the script, and check invariants continuously, at the post-repair
// quiesce point, and after the final drain.
func Run(c Campaign) (*Report, error) {
	if c.Duration == 0 {
		c.Duration = defaultDuration
	}
	t, ok := TopologyByName(c.Topo)
	if !ok {
		return nil, fmt.Errorf("chaos: unknown topology %q (have %v)", c.Topo, TopologyNames())
	}
	events, err := Expand(c, t)
	if err != nil {
		return nil, err
	}
	w, err := BuildWorld(t, c.Seed)
	if err != nil {
		return nil, err
	}
	if err := w.Start(); err != nil {
		return nil, err
	}
	e := &engine{
		w:            w,
		camp:         c,
		events:       events,
		fiberCuts:    make(map[netemu.FiberID]int),
		linkCut:      make([]int, len(w.Links)),
		crashDepth:   make([]int, len(w.Nodes)),
		leaveDepth:   make([]int, len(w.Nodes)),
		spikeDepth:   make([]int, len(w.Links)),
		appliedKinds: make(map[Kind]bool),
		streamNext:   1,
		mcastSeen:    make([]map[uint32]bool, len(w.Nodes)),
		probeGot:     make([]int, len(w.Nodes)),
	}
	e.run()
	return e.report(), nil
}

func (e *engine) run() {
	o := e.w.O
	o.RunFor(settleTime)
	e.setupTraffic()
	e.base = o.Now()
	e.tracef("campaign start topo=%s seed=%d duration=%v events=%d",
		e.camp.Topo, e.camp.Seed, e.camp.Duration, len(e.events))
	for _, ev := range e.events {
		ev := ev
		o.Sched.At(e.base+ev.At, func() { e.apply(ev) })
	}
	e.scheduleTraffic()
	e.scheduleConservationTicks()
	o.RunFor(e.camp.Duration)
	e.restoreAll()
	o.RunFor(convergeBound)
	e.checkConvergence()
	e.checkGroups()
	e.checkHealth()
	e.checkStabilization()
	e.runProbes()
	o.RunFor(drainTime)
	e.checkStream()
	e.checkMulticast()
	e.checkSched()
	e.teardown()
	e.stats.Campaigns.Add(1)
	e.tracef("campaign end violations=%d", len(e.viol))
}

func (e *engine) report() *Report {
	h := fnv.New64a()
	for _, te := range e.trace {
		fmt.Fprintf(h, "%d|%s\n", int64(te.At), te.What)
	}
	return &Report{
		Campaign:   e.camp,
		Events:     e.events,
		Trace:      e.trace,
		TraceHash:  h.Sum64(),
		Violations: e.viol,
		Stats:      e.stats.Snapshot(),
	}
}

// rel converts absolute virtual time to campaign-relative time.
func (e *engine) rel() time.Duration { return e.w.O.Now() - e.base }

func (e *engine) tracef(format string, args ...any) {
	e.trace = append(e.trace, TraceEntry{At: e.rel(), What: fmt.Sprintf(format, args...)})
}

// violate records an invariant failure in both the violation list and the
// trace.
func (e *engine) violate(invariant, format string, args ...any) {
	v := Violation{At: e.rel(), Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	e.viol = append(e.viol, v)
	e.stats.Violations.Add(1)
	e.tracef("VIOLATION %s: %s", v.Invariant, v.Detail)
}

// ---- fault application ----

// apply executes one scheduled event against the world.
func (e *engine) apply(ev Event) {
	applied := false
	switch ev.Kind {
	case KindCutLink:
		applied = e.cutLink(ev.Arg)
	case KindRestoreLink:
		applied = e.restoreLink(ev.Arg)
	case KindCrashNode:
		applied = e.crashNode(ev.Arg)
	case KindRestartNode:
		applied = e.restartNode(ev.Arg)
	case KindPartition:
		applied = e.partition(ev.Mask)
	case KindHeal:
		applied = e.heal(ev.Mask)
	case KindISPOutage:
		applied = e.ispOutage(ev.Arg)
	case KindISPRestore:
		applied = e.ispRestore(ev.Arg)
	case KindBrownout:
		applied = e.brownout(ev.Arg, ev.Val)
	case KindBrownoutEnd:
		applied = e.brownoutEnd(ev.Arg)
	case KindLatencySpike:
		applied = e.latencySpike(ev.Arg, ev.Val)
	case KindLatencyNormal:
		applied = e.latencyNormal(ev.Arg)
	case KindLeaveNode:
		applied = e.leaveNode(ev.Arg)
	case KindRejoinNode:
		applied = e.rejoinNode(ev.Arg)
	case KindCorruptView:
		applied = e.corruptView(ev.Arg, ev.Val)
	}
	if !applied {
		e.tracef("skip %s", ev)
		return
	}
	e.stats.EventsInjected.Add(1)
	switch {
	case ev.Kind == KindCorruptView:
		// Corruption has no repair event and holds no capacity down; the
		// stabilization sweeps repair it, so it never counts as active.
		e.appliedKinds[ev.Kind] = true
	case isFault(ev.Kind):
		e.appliedKinds[ev.Kind] = true
		e.stats.FaultsActive.Add(1)
	default:
		e.stats.FaultsActive.Add(-1)
	}
	e.tracef("apply %s", ev)
}

// cutFiber / releaseFiber reference-count underlay cuts.
func (e *engine) cutFiber(f netemu.FiberID) {
	e.fiberCuts[f]++
	if e.fiberCuts[f] == 1 {
		e.w.O.Net.CutFiber(f)
	}
}

func (e *engine) releaseFiber(f netemu.FiberID) {
	if e.fiberCuts[f] == 0 {
		return
	}
	e.fiberCuts[f]--
	if e.fiberCuts[f] == 0 {
		e.w.O.Net.RestoreFiber(f)
	}
}

func (e *engine) cutLink(li int) bool {
	e.linkCut[li]++
	for _, f := range e.w.Fibers[e.w.Links[li]] {
		e.cutFiber(f)
	}
	return true
}

func (e *engine) restoreLink(li int) bool {
	if e.linkCut[li] == 0 {
		return false
	}
	e.linkCut[li]--
	for _, f := range e.w.Fibers[e.w.Links[li]] {
		e.releaseFiber(f)
	}
	return true
}

func (e *engine) crashNode(ni int) bool {
	e.crashDepth[ni]++
	if e.crashDepth[ni] > 1 {
		return true
	}
	id := e.w.Nodes[ni]
	e.w.O.Net.SetSiteUp(e.w.Sites[id], false)
	e.w.O.Node(id).Stop()
	e.w.O.Session(id).Close()
	return true
}

func (e *engine) restartNode(ni int) bool {
	if e.crashDepth[ni] == 0 {
		return false
	}
	e.crashDepth[ni]--
	if e.crashDepth[ni] > 0 {
		return true
	}
	id := e.w.Nodes[ni]
	e.w.O.Net.SetSiteUp(e.w.Sites[id], true)
	if err := e.w.O.RestartNode(id); err != nil {
		e.violate("engine", "restart node %v: %v", id, err)
		return true
	}
	tuneSessions(e.w.O.Session(id))
	// The reborn node redeploys its probe service; stream and multicast
	// clients are deliberately NOT recreated — losing one is real state
	// loss the invariants must see.
	e.connectProbe(ni)
	return true
}

// leaveNode departs a node gracefully: departure record flooded (in
// membership worlds), LSAs withdrawn, sessions closed, node stopped. A
// crashed node cannot announce a leave.
func (e *engine) leaveNode(ni int) bool {
	if e.crashDepth[ni] > 0 {
		return false
	}
	e.leaveDepth[ni]++
	if e.leaveDepth[ni] > 1 {
		return true
	}
	id := e.w.Nodes[ni]
	if err := e.w.O.Leave(id); err != nil {
		e.violate("engine", "leave node %v: %v", id, err)
	}
	return true
}

// rejoinNode brings a departed node back as a fresh incarnation and — in
// membership worlds — re-runs admission through the lowest-index alive
// contact. Its seeded directory is deliberately stale (everyone joined
// at epoch 1); anti-entropy heals it.
func (e *engine) rejoinNode(ni int) bool {
	if e.leaveDepth[ni] == 0 {
		return false
	}
	e.leaveDepth[ni]--
	if e.leaveDepth[ni] > 0 {
		return true
	}
	id := e.w.Nodes[ni]
	if err := e.w.O.RestartNode(id); err != nil {
		e.violate("engine", "rejoin node %v: %v", id, err)
		return true
	}
	tuneSessions(e.w.O.Session(id))
	e.connectProbe(ni)
	if m := e.w.O.Node(id).Membership(); m != nil {
		if contact := e.aliveContact(ni); contact != 0 {
			m.Join(contact)
		}
	}
	return true
}

// aliveContact returns the lowest-index node that is neither crashed nor
// departed (excluding ni), or zero when none is.
func (e *engine) aliveContact(ni int) wire.NodeID {
	for j := range e.w.Nodes {
		if j != ni && e.crashDepth[j] == 0 && e.leaveDepth[j] == 0 {
			return e.w.Nodes[j]
		}
	}
	return 0
}

// corruptView corrupts one running node's control-plane state in place.
// Flavor 0 plants a bogus departure record for another live member in
// the victim's directory — it supersedes the real record, spreads by
// anti-entropy, and must be beaten back by the target's self-defense
// refutation. Flavor 1 marks the victim's first incident link down in
// its view — a stale entry the owner's refresh flood must repair. Both
// heal without any repair event, bounded by the stabilization invariant.
func (e *engine) corruptView(ni, flavor int) bool {
	if e.crashDepth[ni] > 0 || e.leaveDepth[ni] > 0 {
		return false
	}
	id := e.w.Nodes[ni]
	n := e.w.O.Node(id)
	if flavor%2 == 0 {
		if m := n.Membership(); m != nil {
			target := e.aliveContact(ni)
			if target == 0 {
				return false
			}
			epoch := uint32(1)
			if cur, ok := m.Directory().Get(target); ok {
				epoch = cur.Epoch + 1
			}
			return m.InjectRecord(membership.Record{
				ID: target, Epoch: epoch, Status: membership.StatusLeft,
			})
		}
	}
	for li, pair := range e.w.Topo.Pairs {
		if pair[0] == ni+1 || pair[1] == ni+1 {
			n.LinkStateManager().ApplyCorrection(e.w.Links[li], false)
			return true
		}
	}
	return false
}

// crossingLinks returns the indices of links crossing a node bipartition.
func (e *engine) crossingLinks(mask NodeMask) []int {
	var out []int
	for li, pair := range e.w.Topo.Pairs {
		inA := mask.Bit(pair[0] - 1)
		inB := mask.Bit(pair[1] - 1)
		if inA != inB {
			out = append(out, li)
		}
	}
	return out
}

func (e *engine) partition(mask NodeMask) bool {
	e.partitions = append(e.partitions, mask)
	for _, li := range e.crossingLinks(mask) {
		for _, f := range e.w.Fibers[e.w.Links[li]] {
			e.cutFiber(f)
		}
	}
	return true
}

func (e *engine) heal(mask NodeMask) bool {
	found := -1
	for i, m := range e.partitions {
		if m.Equal(mask) {
			found = i
			break
		}
	}
	if found < 0 {
		return false
	}
	e.partitions = append(e.partitions[:found], e.partitions[found+1:]...)
	for _, li := range e.crossingLinks(mask) {
		for _, f := range e.w.Fibers[e.w.Links[li]] {
			e.releaseFiber(f)
		}
	}
	return true
}

func (e *engine) ispOutage(isp int) bool {
	e.ispOut[isp]++
	for _, lid := range e.w.Links {
		e.cutFiber(e.w.Fibers[lid][isp])
	}
	return true
}

func (e *engine) ispRestore(isp int) bool {
	if e.ispOut[isp] == 0 {
		return false
	}
	e.ispOut[isp]--
	for _, lid := range e.w.Links {
		e.releaseFiber(e.w.Fibers[lid][isp])
	}
	return true
}

func (e *engine) brownout(isp, permille int) bool {
	e.brownDepth[isp]++
	e.w.O.Net.SetISPExtraLoss(e.w.ISPs[isp], float64(permille)/1000)
	return true
}

func (e *engine) brownoutEnd(isp int) bool {
	if e.brownDepth[isp] == 0 {
		return false
	}
	e.brownDepth[isp]--
	if e.brownDepth[isp] == 0 {
		e.w.O.Net.SetISPExtraLoss(e.w.ISPs[isp], 0)
	}
	return true
}

func (e *engine) latencySpike(li, fac10 int) bool {
	e.spikeDepth[li]++
	if e.spikeDepth[li] > 1 {
		return true
	}
	lid := e.w.Links[li]
	lat := e.w.Lat[lid] * time.Duration(fac10) / 10
	e.w.O.Net.SetFiberLatency(e.w.Fibers[lid][0], lat, lat/8)
	return true
}

func (e *engine) latencyNormal(li int) bool {
	if e.spikeDepth[li] == 0 {
		return false
	}
	e.spikeDepth[li]--
	if e.spikeDepth[li] == 0 {
		lid := e.w.Links[li]
		e.w.O.Net.SetFiberLatency(e.w.Fibers[lid][0], e.w.Lat[lid], 0)
	}
	return true
}

// restoreAll repairs every outstanding fault at the end of the fault
// window (a minimized script's repairs may have been truncated away), so
// the post-repair convergence bound always starts from a fully repaired
// world. Iteration is index-ordered for determinism.
func (e *engine) restoreAll() {
	for li := range e.linkCut {
		for e.linkCut[li] > 0 {
			e.restoreLink(li)
			e.stats.FaultsActive.Add(-1)
			e.tracef("restore-all link=%d", li)
		}
	}
	for len(e.partitions) > 0 {
		mask := e.partitions[0]
		e.heal(mask)
		e.stats.FaultsActive.Add(-1)
		e.tracef("restore-all partition mask=%s", mask)
	}
	for isp := 0; isp < 2; isp++ {
		for e.ispOut[isp] > 0 {
			e.ispRestore(isp)
			e.stats.FaultsActive.Add(-1)
			e.tracef("restore-all isp=%d", isp)
		}
		for e.brownDepth[isp] > 0 {
			e.brownoutEnd(isp)
			e.stats.FaultsActive.Add(-1)
			e.tracef("restore-all brownout isp=%d", isp)
		}
	}
	for li := range e.spikeDepth {
		for e.spikeDepth[li] > 0 {
			e.latencyNormal(li)
			e.stats.FaultsActive.Add(-1)
			e.tracef("restore-all latency link=%d", li)
		}
	}
	for ni := range e.crashDepth {
		if e.crashDepth[ni] > 0 {
			depth := e.crashDepth[ni]
			e.crashDepth[ni] = 1
			e.restartNode(ni)
			e.stats.FaultsActive.Add(int64(-depth))
			e.tracef("restore-all node=%d", ni)
		}
	}
	// Departed nodes rejoin last, once every crashed contact candidate is
	// back, so admission has a live contact to go through.
	for ni := range e.leaveDepth {
		if e.leaveDepth[ni] > 0 {
			depth := e.leaveDepth[ni]
			e.leaveDepth[ni] = 1
			e.rejoinNode(ni)
			e.stats.FaultsActive.Add(int64(-depth))
			e.tracef("restore-all rejoin node=%d", ni)
		}
	}
}

// ---- traffic ----

// setupTraffic connects the campaign's workload: one reliable ordered
// stream, one best-effort multicast group, and a probe client per node.
// Delivery callbacks double as continuous invariant monitors.
func (e *engine) setupTraffic() {
	o := e.w.O
	src, err := o.Session(e.w.Nodes[streamSrcIndex]).Connect(streamSrcPort)
	if err != nil {
		e.violate("engine", "stream source: %v", err)
		return
	}
	dst, err := o.Session(e.w.Nodes[streamDstIndex]).Connect(streamDstPort)
	if err != nil {
		e.violate("engine", "stream destination: %v", err)
		return
	}
	dst.OnDeliver(func(d session.Delivery) {
		e.streamGot++
		if d.Seq != e.streamNext {
			e.violate("session-order", "stream delivered seq %d, want %d", d.Seq, e.streamNext)
			e.streamNext = d.Seq
		}
		e.streamNext++
	})
	e.streamFlow, err = src.OpenFlow(session.FlowSpec{
		DstNode:   e.w.Nodes[streamDstIndex],
		DstPort:   streamDstPort,
		LinkProto: wire.LPReliable,
		Ordered:   true,
	})
	if err != nil {
		e.violate("engine", "stream flow: %v", err)
		return
	}
	// A light intrusion-tolerant priority stream exercises the fair
	// scheduler's drop/backpressure accounting under faults; the sched
	// invariant cross-checks it against packet conservation at drain.
	itSrc, err := o.Session(e.w.Nodes[streamSrcIndex]).Connect(itSrcPort)
	if err != nil {
		e.violate("engine", "it stream source: %v", err)
		return
	}
	itDst, err := o.Session(e.w.Nodes[streamDstIndex]).Connect(itDstPort)
	if err != nil {
		e.violate("engine", "it stream destination: %v", err)
		return
	}
	itDst.OnDeliver(func(session.Delivery) { e.itGot++ })
	e.itFlow, err = itSrc.OpenFlow(session.FlowSpec{
		DstNode:   e.w.Nodes[streamDstIndex],
		DstPort:   itDstPort,
		LinkProto: wire.LPITPriority,
	})
	if err != nil {
		e.violate("engine", "it stream flow: %v", err)
		return
	}
	msrc, err := o.Session(e.w.Nodes[streamSrcIndex]).Connect(mcastSrcPort)
	if err != nil {
		e.violate("engine", "multicast source: %v", err)
		return
	}
	for ni := mcastMemberLo; ni <= mcastMemberHi; ni++ {
		ni := ni
		member, err := o.Session(e.w.Nodes[ni]).Connect(mcastPort)
		if err != nil {
			e.violate("engine", "multicast member %d: %v", ni, err)
			return
		}
		member.Join(chaosGroup)
		e.mcastSeen[ni] = make(map[uint32]bool)
		member.OnDeliver(func(d session.Delivery) {
			if e.mcastSeen[ni][d.Seq] {
				e.violate("multicast-dup", "member %d saw seq %d twice", ni, d.Seq)
			}
			e.mcastSeen[ni][d.Seq] = true
		})
	}
	e.mcastFlow, err = msrc.OpenFlow(session.FlowSpec{
		Group:   chaosGroup,
		DstPort: mcastPort,
	})
	if err != nil {
		e.violate("engine", "multicast flow: %v", err)
		return
	}
	for ni := range e.w.Nodes {
		e.connectProbe(ni)
	}
}

// connectProbe (re)connects a node's probe client; restarted nodes call
// it again because the old client died with the crashed incarnation.
func (e *engine) connectProbe(ni int) {
	c, err := e.w.O.Session(e.w.Nodes[ni]).Connect(probePort)
	if err != nil {
		e.violate("engine", "probe client %d: %v", ni, err)
		return
	}
	c.OnDeliver(func(session.Delivery) { e.probeGot[ni]++ })
}

func (e *engine) scheduleTraffic() {
	o := e.w.O
	nStream := int(e.camp.Duration / streamInterval)
	for k := 0; k < nStream; k++ {
		o.Sched.At(e.base+time.Duration(k)*streamInterval, func() {
			if e.streamFlow != nil && e.streamFlow.Send([]byte("stream")) == nil {
				e.streamSent++
			}
		})
	}
	nMcast := int(e.camp.Duration / mcastInterval)
	for k := 0; k < nMcast; k++ {
		o.Sched.At(e.base+time.Duration(k)*mcastInterval, func() {
			if e.mcastFlow != nil && e.mcastFlow.Send([]byte("mcast")) == nil {
				e.mcastSent++
			}
		})
	}
	nIT := int(e.camp.Duration / itInterval)
	for k := 0; k < nIT; k++ {
		o.Sched.At(e.base+time.Duration(k)*itInterval, func() {
			if e.itFlow != nil && e.itFlow.Send([]byte("fairshed")) == nil {
				e.itSent++
			}
		})
	}
}

// teardown closes every session and node, then drains in-flight traffic
// with the simulator's quiesce primitive so the final packet-accounting
// check sees a world with nothing in the air.
func (e *engine) teardown() {
	for _, id := range e.w.Nodes {
		if s := e.w.O.Session(id); s != nil {
			s.Close()
		}
	}
	e.w.O.Stop()
	if !e.w.O.Sched.RunUntilQuiesce(200*time.Millisecond, 5*time.Second) {
		e.tracef("teardown: drain hit deadline")
	}
	e.checkConservationFinal()
}

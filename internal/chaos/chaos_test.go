package chaos

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestTopologyRegistry(t *testing.T) {
	names := TopologyNames()
	if len(names) == 0 {
		t.Fatal("no topologies registered")
	}
	for _, name := range names {
		topo, ok := TopologyByName(name)
		if !ok {
			t.Fatalf("TopologyByName(%q) not found", name)
		}
		if topo.N < 4 {
			t.Errorf("%s: %d nodes, want >= 4 so crash campaigns have unprotected targets", name, topo.N)
		}
		deg := make([]int, topo.N+1)
		for _, pair := range topo.Pairs {
			for _, n := range pair {
				if n < 1 || n > topo.N {
					t.Fatalf("%s: link endpoint %d out of range", name, n)
				}
				deg[n]++
			}
		}
		for n := 1; n <= topo.N; n++ {
			if deg[n] < 2 {
				t.Errorf("%s: node %d has degree %d, want >= 2 (single faults must not isolate by design)", name, n, deg[n])
			}
		}
	}
	if _, ok := TopologyByName("nope"); ok {
		t.Fatal("unknown topology resolved")
	}
}

func TestExpandIsDeterministicAndBounded(t *testing.T) {
	c := Campaign{
		Topo: "ring8", Seed: 77, Duration: 6 * time.Second,
		Generators: []GeneratorSpec{
			{Kind: KindCutLink, Rate: 1},
			{Kind: KindCrashNode, Rate: 0.5},
			{Kind: KindPartition, Rate: 0.5},
		},
	}
	topo, _ := TopologyByName(c.Topo)
	a, err := Expand(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("expansion produced no events")
	}
	if len(a) != len(b) {
		t.Fatalf("expansion lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("event %d differs across expansions: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("events not time-sorted at %d: %v after %v", i, a[i], a[i-1])
		}
	}
	faults := make(map[Kind]int)
	for _, ev := range a {
		if ev.At < 0 || ev.At > c.Duration {
			t.Errorf("event %v outside the fault window", ev)
		}
		if isFault(ev.Kind) {
			faults[ev.Kind]++
		}
		if ev.Kind == KindCrashNode && ev.Arg < protectedNodes {
			t.Errorf("generator crashed protected node index %d", ev.Arg)
		}
	}
	for _, g := range c.Generators {
		if faults[g.Kind] == 0 {
			t.Errorf("generator %s produced no faults", g.Kind)
		}
		if faults[g.Kind] > maxFaultsPerGenerator {
			t.Errorf("generator %s produced %d faults, cap is %d", g.Kind, faults[g.Kind], maxFaultsPerGenerator)
		}
	}
}

// TestCampaignDeterminism is the replay acceptance gate: two runs of the
// same (scenario, seed) must produce the identical concrete script, the
// identical event trace, and the identical invariant verdicts.
func TestCampaignDeterminism(t *testing.T) {
	c := Campaign{Topo: "diamond4", Seed: 909, Duration: 4 * time.Second,
		Generators: []GeneratorSpec{
			{Kind: KindCutLink, Rate: 0.5},
			{Kind: KindCrashNode, Rate: 0.25},
			{Kind: KindBrownout, Rate: 0.25},
		}}
	r1, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TraceHash != r2.TraceHash {
		t.Fatalf("trace hashes differ: %016x vs %016x", r1.TraceHash, r2.TraceHash)
	}
	if len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace), len(r2.Trace))
	}
	if len(r1.Events) != len(r2.Events) {
		t.Fatalf("scripts differ in length: %d vs %d", len(r1.Events), len(r2.Events))
	}
	for i := range r1.Events {
		if !r1.Events[i].Equal(r2.Events[i]) {
			t.Fatalf("event %d differs: %v vs %v", i, r1.Events[i], r2.Events[i])
		}
	}
	if len(r1.Violations) != len(r2.Violations) {
		t.Fatalf("verdicts differ: %v vs %v", r1.Violations, r2.Violations)
	}
}

// TestReplayFromArtifact round-trips a campaign through its on-disk
// replay artifact: the replayed run must reproduce the recorded trace
// hash and verdicts exactly.
func TestReplayFromArtifact(t *testing.T) {
	c := Campaign{Topo: "ring8", Seed: 1234, Duration: 4 * time.Second,
		Generators: []GeneratorSpec{
			{Kind: KindPartition, Rate: 0.3},
			{Kind: KindISPOutage, Rate: 0.3},
		}}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := WriteArtifact(path, r); err != nil {
		t.Fatal(err)
	}
	a, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(r.Events) {
		t.Fatalf("artifact recorded %d events, report had %d", len(a.Events), len(r.Events))
	}
	replayed, match, err := Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	if !match {
		t.Fatalf("replay diverged: recorded hash %s, replayed %016x (violations %v vs %v)",
			a.TraceHash, replayed.TraceHash, a.Violations, replayed.Violations)
	}
}

// TestChaosSmoke runs the pinned-seed campaign suite: every generator
// kind, every topology, zero violations tolerated. This is the CI gate
// behind `make chaos-smoke`.
func TestChaosSmoke(t *testing.T) {
	coverage := make(map[Kind]bool)
	for _, c := range SmokeCampaigns() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			r, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range r.Violations {
				t.Errorf("violation at %v: %s: %s", v.At, v.Invariant, v.Detail)
			}
			if !r.Stats.Clean() {
				t.Errorf("stats not clean: %+v", r.Stats)
			}
			if r.Stats.FaultsActive != 0 {
				t.Errorf("campaign ended with %d faults still active", r.Stats.FaultsActive)
			}
			if r.Stats.EventsInjected == 0 {
				t.Error("campaign injected no events")
			}
			for _, ev := range r.Events {
				coverage[ev.Kind] = true
			}
		})
	}
	for _, k := range []Kind{KindCutLink, KindPartition, KindCrashNode, KindISPOutage, KindBrownout, KindLatencySpike} {
		if !coverage[k] {
			t.Errorf("smoke suite never exercised %s", k)
		}
	}
}

// TestMinimizeShrinksFailingCampaign crashes the stream destination by
// explicit script — a real, detectable violation (its client state dies
// with it) — pads the script with benign flaps, and checks the minimizer
// shrinks to a failing prefix that keeps the crash and sheds the noise.
func TestMinimizeShrinksFailingCampaign(t *testing.T) {
	c := Campaign{Topo: "diamond4", Seed: 5, Duration: 5 * time.Second,
		Script: []Event{
			{At: 1 * time.Second, Kind: KindCrashNode, Arg: streamDstIndex},
			{At: 1800 * time.Millisecond, Kind: KindRestartNode, Arg: streamDstIndex},
			{At: 2500 * time.Millisecond, Kind: KindCutLink, Arg: 1},
			{At: 2900 * time.Millisecond, Kind: KindRestoreLink, Arg: 1},
			{At: 3300 * time.Millisecond, Kind: KindCutLink, Arg: 2},
			{At: 3700 * time.Millisecond, Kind: KindRestoreLink, Arg: 2},
		}}
	full, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Failed() {
		t.Fatal("crashing the stream destination should violate an end-to-end invariant")
	}
	minimal, report, err := Minimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Failed() {
		t.Fatal("minimized campaign does not fail")
	}
	if len(minimal.Script) == 0 || len(minimal.Script) >= len(c.Script) {
		t.Fatalf("minimizer kept %d of %d events", len(minimal.Script), len(c.Script))
	}
	last := minimal.Script[len(minimal.Script)-1]
	if last.Kind != KindCrashNode {
		t.Fatalf("minimal failing prefix ends with %v, want the destination crash", last)
	}
	if _, _, err := Minimize(Campaign{Topo: "diamond4", Seed: 6, Duration: 2 * time.Second}); err == nil {
		t.Fatal("minimizing a passing campaign should error")
	}
}

// TestChaosSoak is the long-haul variant: many random campaigns across
// topologies and generator mixes. Gated behind CHAOS_SOAK=1 (see `make
// chaos-soak`).
func TestChaosSoak(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") == "" {
		t.Skip("set CHAOS_SOAK=1 to run the soak suite")
	}
	topos := TopologyNames()
	kinds := []Kind{KindCutLink, KindPartition, KindCrashNode, KindISPOutage, KindBrownout, KindLatencySpike}
	for seed := uint64(1); seed <= 30; seed++ {
		c := Campaign{
			Topo:     topos[int(seed)%len(topos)],
			Seed:     seed * 7919,
			Duration: 8 * time.Second,
			Generators: []GeneratorSpec{
				{Kind: kinds[int(seed)%len(kinds)], Rate: 0.5},
				{Kind: kinds[int(seed+1)%len(kinds)], Rate: 0.3},
				{Kind: kinds[int(seed+3)%len(kinds)], Rate: 0.2},
			},
		}
		r, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range r.Violations {
			t.Errorf("seed %d (%s): violation at %v: %s: %s", seed, c.Topo, v.At, v.Invariant, v.Detail)
		}
	}
}

// Package chaos is a deterministic fault-campaign engine for the overlay
// stack. It drives complete overlay worlds (emulated multi-ISP underlay,
// link-state routing, reliable link and session protocols) through
// scripted and seed-randomized adversity — link flaps faster than hello
// convergence, correlated ISP backbone outages and brown-outs, network
// partitions, node crash-restarts with total state loss, latency spikes —
// while checking protocol invariants: packet-accounting conservation,
// loop-free routing, bounded reconvergence, reliable-stream
// no-loss/no-dup/no-reorder, and group-membership agreement.
//
// Every campaign is replayable bit-for-bit from (scenario, seed): the
// world runs in virtual time on the deterministic simulator, generators
// expand to a concrete event script before the world starts moving, and
// the engine records a trace whose FNV-1a hash must match across runs.
// On violation the engine emits a replay artifact, and a greedy
// event-bisection minimizer shrinks the script to a minimal failing
// prefix.
package chaos

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/linkstate"
	"sonet/internal/membership"
	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/wire"
)

// Topology is a named overlay shape campaigns can run on. Node IDs are
// 1..N; Pairs lists overlay links between them.
type Topology struct {
	Name  string
	N     int
	Pairs [][2]int
	// Membership enables the dynamic-membership subsystem on every node:
	// the worlds churn campaigns (leave-node, rejoin-node, corrupt-view)
	// and the stabilization-bound invariant run on.
	Membership bool
}

// builtinTopologies are the campaign worlds, smallest first. Every shape
// is 2-connected so single faults never disconnect it by design — the
// interesting failures are the correlated ones campaigns inject.
func builtinTopologies() []Topology {
	return []Topology{
		{Name: "diamond4", N: 4, Pairs: [][2]int{
			{1, 2}, {1, 3}, {2, 4}, {3, 4}, {1, 4},
		}},
		{Name: "ring8", N: 8, Pairs: [][2]int{
			{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 1},
			{1, 5}, {3, 7},
		}},
		{Name: "grid9", N: 9, Pairs: [][2]int{
			{1, 2}, {2, 3}, {4, 5}, {5, 6}, {7, 8}, {8, 9},
			{1, 4}, {4, 7}, {2, 5}, {5, 8}, {3, 6}, {6, 9},
		}},
		// Churn worlds run the same shapes with dynamic membership on, so
		// campaigns can exercise graceful leaves, re-admissions, and
		// corrupted-view injections under the stabilization-bound
		// invariant.
		{Name: "churn8", N: 8, Membership: true, Pairs: [][2]int{
			{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 1},
			{1, 5}, {3, 7},
		}},
		{Name: "churn9", N: 9, Membership: true, Pairs: [][2]int{
			{1, 2}, {2, 3}, {4, 5}, {5, 6}, {7, 8}, {8, 9},
			{1, 4}, {4, 7}, {2, 5}, {5, 8}, {3, 6}, {6, 9},
		}},
	}
}

// TopologyByName looks up a campaign topology.
func TopologyByName(name string) (Topology, bool) {
	for _, t := range builtinTopologies() {
		if t.Name == name {
			return t, true
		}
	}
	return Topology{}, false
}

// TopologyNames lists the available campaign topologies.
func TopologyNames() []string {
	ts := builtinTopologies()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// World is a running overlay plus the underlay bookkeeping the engine
// needs to aim faults: which site each node lives in and which two fibers
// (primary ISP, backup ISP) serve each overlay link.
type World struct {
	O    *core.Overlay
	Topo Topology
	// Nodes lists overlay node IDs in index order; events address nodes
	// by index into this slice.
	Nodes []wire.NodeID
	Sites map[wire.NodeID]netemu.SiteID
	// ISPs are the two provider backbones every link is multihomed over.
	ISPs [2]netemu.ISPID
	// Links lists overlay link IDs in topology pair order; events address
	// links by index into this slice.
	Links []wire.LinkID
	// Fibers maps each link to its [primary, backup] fiber, one per ISP.
	Fibers map[wire.LinkID][2]netemu.FiberID
	// Lat records each link's designed primary latency so latency-spike
	// events can restore it.
	Lat map[wire.LinkID]time.Duration
}

// Chaos worlds run aggressive timers so campaigns exercise many
// convergence cycles in a few virtual seconds: sub-second failure
// detection, 1 s refresh floods, and an underlay whose native rerouting
// (2 s) is slower than overlay failover — the paper's motivating gap.
const (
	chaosConvergenceDelay = 2 * time.Second
	chaosRestoreDelay     = 400 * time.Millisecond
	chaosDownProbe        = 250 * time.Millisecond
	chaosRefresh          = time.Second
	chaosGroupRefresh     = 500 * time.Millisecond
	// chaosSweep is the churn worlds' detector/corrector period: several
	// sweeps fit inside the engine's convergence bound, which doubles as
	// the documented stabilization bound.
	chaosSweep     = 250 * time.Millisecond
	chaosJoinRetry = 200 * time.Millisecond
)

// BuildWorld constructs (without starting) an overlay world for a
// topology: one site per node, two ISPs, and every overlay link
// multihomed over a primary fiber and a 1.25× latency backup fiber.
func BuildWorld(t Topology, seed uint64) (*World, error) {
	o := core.New(seed, netemu.Config{
		ConvergenceDelay: chaosConvergenceDelay,
		RestoreDelay:     chaosRestoreDelay,
	})
	seedMembers := make([]wire.NodeID, t.N)
	for i := range seedMembers {
		seedMembers[i] = wire.NodeID(i + 1)
	}
	o.SetNodeTemplate(func(c *node.Config) {
		c.LinkState = linkstate.Config{
			DownProbeInterval: chaosDownProbe,
			RefreshInterval:   chaosRefresh,
		}
		c.GroupRefresh = chaosGroupRefresh
		if t.Membership {
			c.Membership = &membership.Config{
				SweepInterval: chaosSweep,
				JoinRetry:     chaosJoinRetry,
				Seed:          seedMembers,
			}
		}
	})
	w := &World{
		O:      o,
		Topo:   t,
		Sites:  make(map[wire.NodeID]netemu.SiteID),
		ISPs:   [2]netemu.ISPID{o.AddISP("isp-a"), o.AddISP("isp-b")},
		Fibers: make(map[wire.LinkID][2]netemu.FiberID),
		Lat:    make(map[wire.LinkID]time.Duration),
	}
	for i := 1; i <= t.N; i++ {
		id := wire.NodeID(i)
		site := o.AddSite(fmt.Sprintf("site-%d", i))
		o.AddNode(id, site)
		w.Nodes = append(w.Nodes, id)
		w.Sites[id] = site
	}
	for li, pair := range t.Pairs {
		a, b := wire.NodeID(pair[0]), wire.NodeID(pair[1])
		lat := time.Duration(8+li%5) * time.Millisecond
		fp, err := o.AddFiber(w.ISPs[0], w.Sites[a], w.Sites[b], lat, 0, netemu.NoLoss{})
		if err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		fb, err := o.AddFiber(w.ISPs[1], w.Sites[a], w.Sites[b], lat*5/4, 0, netemu.NoLoss{})
		if err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		lid, err := o.AddLink(a, b, lat, w.ISPs[0], w.ISPs[1])
		if err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		w.Links = append(w.Links, lid)
		w.Fibers[lid] = [2]netemu.FiberID{fp, fb}
		w.Lat[lid] = lat
	}
	return w, nil
}

// Start starts the overlay and applies chaos session tuning to every
// node.
func (w *World) Start() error {
	if err := w.O.Start(); err != nil {
		return err
	}
	for _, id := range w.Nodes {
		tuneSessions(w.O.Session(id))
	}
	return nil
}

// tuneSessions raises end-to-end recovery persistence far beyond the
// default: chaos campaigns legitimately black-hole a flow for seconds at
// a time, and the no-loss invariant requires recovery to keep trying
// until the drain phase, not give up and flush past a gap.
func tuneSessions(m *session.Manager) {
	if m == nil {
		return
	}
	m.NackMaxTries = 100000
}

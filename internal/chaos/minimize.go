package chaos

import "fmt"

// Minimize shrinks a failing campaign to a minimal failing prefix of its
// concrete event script by greedy bisection: it verifies the full script
// fails, then binary-searches the shortest prefix that still fails. The
// engine's restore-all pass makes truncated scripts well-formed — repairs
// the prefix cut off are applied at the end of the fault window — so
// every probe run is a legitimate campaign. Returns the minimized
// campaign (script only, generators dropped) and its failing report.
//
// Bisection assumes failures are roughly monotone in the prefix; when
// they are not, the result is still a failing prefix, just not provably
// the shortest.
func Minimize(c Campaign) (Campaign, *Report, error) {
	t, ok := TopologyByName(c.Topo)
	if !ok {
		return Campaign{}, nil, fmt.Errorf("chaos: unknown topology %q", c.Topo)
	}
	if c.Duration == 0 {
		c.Duration = defaultDuration
	}
	events, err := Expand(c, t)
	if err != nil {
		return Campaign{}, nil, err
	}
	runPrefix := func(n int) (*Report, error) {
		return Run(Campaign{
			Name:     c.Name,
			Topo:     c.Topo,
			Seed:     c.Seed,
			Duration: c.Duration,
			Script:   append([]Event(nil), events[:n]...),
		})
	}
	full, err := runPrefix(len(events))
	if err != nil {
		return Campaign{}, nil, err
	}
	if !full.Failed() {
		return Campaign{}, full, fmt.Errorf("chaos: campaign passes; nothing to minimize")
	}
	// Invariant: prefix hi fails; prefixes at or below lo-1 passed.
	lo, hi := 0, len(events)
	best := full
	for lo < hi {
		mid := (lo + hi) / 2
		r, err := runPrefix(mid)
		if err != nil {
			return Campaign{}, nil, err
		}
		if r.Failed() {
			hi = mid
			best = r
		} else {
			lo = mid + 1
		}
	}
	minimal := Campaign{
		Name:     c.Name,
		Topo:     c.Topo,
		Seed:     c.Seed,
		Duration: c.Duration,
		Script:   append([]Event(nil), events[:hi]...),
	}
	return minimal, best, nil
}

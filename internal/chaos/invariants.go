package chaos

import (
	"sonet/internal/membership"
	"sonet/internal/metrics"
	"sonet/internal/session"
	"sonet/internal/wire"
)

// Invariant names, as they appear in violations and traces.
const (
	InvConservation  = "conservation"
	InvConvergence   = "convergence"
	InvGroups        = "group-agreement"
	InvLoopFree      = "loop-free"
	InvReachable     = "reachability"
	InvStream        = "session-loss"
	InvHealth        = "health-counters"
	InvSched         = "sched-accounting"
	InvStabilization = "stabilization-bound"
)

// scheduleConservationTicks arms the continuous packet-accounting check:
// at every tick during the fault window and convergence phase, the
// underlay must never have resolved more packet fates than it accepted
// sends. (Equality only holds with nothing in flight; the final teardown
// check demands it.)
func (e *engine) scheduleConservationTicks() {
	deadline := e.base + e.camp.Duration + convergeBound
	var tick func()
	tick = func() {
		e.checkConservationProgress()
		if e.w.O.Now() < deadline {
			e.w.O.Sched.After(tickInterval, tick)
		}
	}
	e.w.O.Sched.After(tickInterval, tick)
}

func (e *engine) checkConservationProgress() {
	e.stats.InvariantChecks.Add(1)
	st := e.w.O.Net.Stats()
	resolved := st.Delivered + st.DroppedLoss + st.DroppedDown + st.DroppedNoRoute
	if st.Sent < resolved {
		e.violate(InvConservation, "underlay resolved %d fates for %d sends", resolved, st.Sent)
	}
}

// checkConservationFinal runs after teardown drained the world: every
// sent packet must have met exactly one fate.
func (e *engine) checkConservationFinal() {
	e.stats.InvariantChecks.Add(1)
	st := e.w.O.Net.Stats()
	resolved := st.Delivered + st.DroppedLoss + st.DroppedDown + st.DroppedNoRoute
	if st.Sent != resolved {
		e.violate(InvConservation,
			"after drain: sent=%d delivered=%d loss=%d down=%d noroute=%d (in flight %d)",
			st.Sent, st.Delivered, st.DroppedLoss, st.DroppedDown, st.DroppedNoRoute,
			int64(st.Sent)-int64(resolved))
	} else {
		e.tracef("invariant %s ok: %d packets, every fate accounted", InvConservation, st.Sent)
	}
}

// checkConvergence runs at the post-repair quiesce point: every fault has
// been healed and the convergence bound has elapsed, so every node —
// survivors and reborn crash victims alike — must see every overlay link
// up. A stale entry means detection, flooding, or refresh repair missed
// the bound.
func (e *engine) checkConvergence() {
	e.stats.InvariantChecks.Add(1)
	bad := 0
	for _, id := range e.w.Nodes {
		view := e.w.O.Node(id).View()
		for li, lid := range e.w.Links {
			if !view.State[lid].Up {
				bad++
				e.violate(InvConvergence, "node %v still sees link %d down %v after all repairs", id, li, convergeBound)
			}
		}
	}
	if bad == 0 {
		e.tracef("invariant %s ok: %d nodes agree all %d links up", InvConvergence, len(e.w.Nodes), len(e.w.Links))
	}
}

// checkGroups runs at the quiesce point: every node's replicated group
// state must agree on the designed membership.
func (e *engine) checkGroups() {
	e.stats.InvariantChecks.Add(1)
	want := map[wire.NodeID]bool{
		e.w.Nodes[mcastMemberLo]: true,
		e.w.Nodes[mcastMemberHi]: true,
	}
	bad := 0
	for _, id := range e.w.Nodes {
		members := e.w.O.Node(id).Groups().Members(chaosGroup)
		ok := len(members) == len(want)
		for _, m := range members {
			if !want[m] {
				ok = false
			}
		}
		if !ok {
			bad++
			e.violate(InvGroups, "node %v sees group %d members %v, want %v nodes", id, chaosGroup, members, len(want))
		}
	}
	if bad == 0 {
		e.tracef("invariant %s ok: %d nodes agree on group %d", InvGroups, len(e.w.Nodes), chaosGroup)
	}
}

// checkHealth asserts the link-state health counters actually observed
// the adversity: any campaign that severed topology (cuts, partitions,
// ISP outages, crashes) must have driven at least one reconvergence
// somewhere. Silent counters mean the instrumentation — or the detection
// machinery it watches — is broken.
func (e *engine) checkHealth() {
	topoFault := e.appliedKinds[KindCutLink] || e.appliedKinds[KindPartition] ||
		e.appliedKinds[KindISPOutage] || e.appliedKinds[KindCrashNode]
	if !topoFault {
		return
	}
	e.stats.InvariantChecks.Add(1)
	var reconv, missed, downs, deltas uint64
	for _, id := range e.w.Nodes {
		m := e.w.O.Node(id).LinkStateManager()
		h := m.Health()
		reconv += h.Reconvergences
		missed += h.HellosMissed
		deltas += h.DeltaLSAFloods
		downs += m.Stats().DownDetections
	}
	if reconv == 0 {
		e.violate(InvHealth, "topology faults applied but no node recorded a reconvergence (missed hellos: %d)", missed)
	} else {
		e.tracef("invariant %s ok: %d reconvergences, %d missed hellos", InvHealth, reconv, missed)
	}
	// Every down declaration floods a single-link delta advertisement in
	// the same breath, and both counters live and die with the same node
	// incarnation — so surviving down-detections with zero delta floods
	// fleet-wide mean the delta origination path is broken.
	if downs > 0 && deltas == 0 {
		e.violate(InvHealth, "%d down detections but no delta LSA flood recorded anywhere", downs)
	} else if downs > 0 {
		e.tracef("invariant %s ok: %d down detections, %d delta LSA floods", InvHealth, downs, deltas)
	}
}

// checkStabilization runs at the post-repair quiesce point in membership
// worlds. The engine's convergence bound doubles as the documented
// stabilization bound: whatever churn and state corruption the campaign
// injected — leaves, rejoins with stale seeded directories, planted
// departure records, stale view entries — by now the fleet must have
// self-stabilized to a legal fixed point. Concretely: every replica
// holds the full membership with an identical digest, and a synchronous
// detector pass on every node flags nothing. Detector/corrector round
// counts go to the trace, so stabilization activity is part of the
// replay hash.
func (e *engine) checkStabilization() {
	if !e.w.Topo.Membership {
		return
	}
	e.stats.InvariantChecks.Add(1)
	bad := 0
	var refDigest uint64
	var sweeps, incons, corrections uint64
	for i, id := range e.w.Nodes {
		m := e.w.O.Node(id).Membership()
		if m == nil {
			bad++
			e.violate(InvStabilization, "node %v runs no membership manager in a membership world", id)
			continue
		}
		st := m.Stats()
		sweeps += st.DetectorSweeps
		incons += st.Inconsistencies
		corrections += st.Corrections
		d := m.Directory()
		if got := d.NumMembers(); got != len(e.w.Nodes) {
			bad++
			e.violate(InvStabilization, "node %v directory has %d members, want %d, %v after all repairs",
				id, got, len(e.w.Nodes), convergeBound)
		}
		if i == 0 {
			refDigest = d.Digest()
		} else if d.Digest() != refDigest {
			bad++
			e.violate(InvStabilization, "node %v directory digest %016x diverges from node %v's %016x",
				id, d.Digest(), e.w.Nodes[0], refDigest)
		}
		if fs := membership.Detect(e.w.O.Node(id).View(), d, nil); len(fs) > 0 {
			bad++
			e.violate(InvStabilization, "node %v detector still flags %d inconsistencies: first %v %v",
				id, len(fs), fs[0].Kind, fs[0].Link)
		}
	}
	if bad == 0 {
		e.tracef("invariant %s ok: %d replicas agree on %d members within %v; sweeps=%d inconsistencies=%d corrections=%d",
			InvStabilization, len(e.w.Nodes), len(e.w.Nodes), convergeBound, sweeps, incons, corrections)
	}
}

// runProbes checks loop freedom and reachability on the converged world:
// a probe from node[0] to every other node must arrive, and no packet may
// exhaust its TTL — on a converged loop-free view, TTL death can only
// mean a forwarding loop.
func (e *engine) runProbes() {
	e.stats.InvariantChecks.Add(1)
	ttlBefore := e.ttlDrops()
	before := make([]int, len(e.probeGot))
	copy(before, e.probeGot)
	src := e.w.O.Session(e.w.Nodes[streamSrcIndex])
	probeSrc, err := src.Connect(0)
	if err != nil {
		e.violate("engine", "probe source: %v", err)
		return
	}
	for ni := 1; ni < len(e.w.Nodes); ni++ {
		fl, err := probeSrc.OpenFlow(session.FlowSpec{
			DstNode:   e.w.Nodes[ni],
			DstPort:   probePort,
			LinkProto: wire.LPReliable,
		})
		if err != nil {
			e.violate("engine", "probe flow to %d: %v", ni, err)
			continue
		}
		if err := fl.Send([]byte("probe")); err != nil {
			e.violate("engine", "probe send to %d: %v", ni, err)
		}
	}
	e.w.O.RunFor(probeTime)
	unreached := 0
	for ni := 1; ni < len(e.w.Nodes); ni++ {
		if e.probeGot[ni] <= before[ni] {
			unreached++
			e.violate(InvReachable, "probe to node %v not delivered within %v on converged world", e.w.Nodes[ni], probeTime)
		}
	}
	if delta := e.ttlDrops() - ttlBefore; delta > 0 {
		e.violate(InvLoopFree, "%d packets exhausted TTL on a converged loop-free view", delta)
	} else if unreached == 0 {
		e.tracef("invariant %s+%s ok: %d probes delivered, no TTL deaths", InvReachable, InvLoopFree, len(e.w.Nodes)-1)
	}
}

func (e *engine) ttlDrops() uint64 {
	var total uint64
	for _, id := range e.w.Nodes {
		total += e.w.O.Node(id).Stats().DroppedTTL
	}
	return total
}

// checkStream runs after the drain: the reliable ordered stream must have
// delivered every accepted send exactly once, in order. Ordering and
// duplication are monitored continuously at delivery time; completeness
// is only checkable here, once end-to-end recovery has had the whole
// drain to finish.
func (e *engine) checkStream() {
	e.stats.InvariantChecks.Add(1)
	if e.streamGot != e.streamSent {
		e.violate(InvStream, "stream delivered %d of %d sends after %v drain", e.streamGot, e.streamSent, drainTime)
	} else {
		e.tracef("invariant %s ok: %d/%d stream packets in order", InvStream, e.streamGot, e.streamSent)
	}
}

// checkMulticast summarizes the continuously-enforced no-duplicate
// invariant; best-effort multicast may lose packets under faults, so
// completeness is reported, not required.
func (e *engine) checkMulticast() {
	e.stats.InvariantChecks.Add(1)
	for ni := mcastMemberLo; ni <= mcastMemberHi; ni++ {
		if e.mcastSeen[ni] == nil {
			continue
		}
		e.tracef("multicast member %d: %d/%d unique deliveries", ni, len(e.mcastSeen[ni]), e.mcastSent)
	}
}

// checkSched runs at the post-drain point: every node's fair-scheduler
// accounting must balance — packets accepted into a scheduler equal
// packets transmitted plus packets dropped (evicted or closed) plus
// packets still queued. With the drain complete nothing should remain
// queued, so an imbalance means the scheduler lost or invented a packet
// somewhere under the fault script. Crash-restarted nodes report their
// live incarnation's counters; each incarnation's identity must hold on
// its own.
func (e *engine) checkSched() {
	e.stats.InvariantChecks.Add(1)
	var agg metrics.SchedSnapshot
	bad := 0
	for _, id := range e.w.Nodes {
		st := e.w.O.Node(id).SchedStats()
		if !st.Balanced() {
			bad++
			e.violate(InvSched,
				"node %v scheduler unbalanced: enqueued %d != transmitted %d + evicted %d + closed %d + queued %d",
				id, st.Enqueued, st.Transmitted, st.DropEvicted, st.DropClosed, st.Queued)
		}
		agg = agg.Merge(st)
	}
	// The fleet aggregate must balance too: per-node ledgers could each
	// balance while a merge bug (shard ledgers double-counted or dropped
	// in aggregation) skewed the whole, so the summed identity is its own
	// invariant.
	if !agg.Balanced() {
		e.violate(InvSched,
			"fleet scheduler ledger unbalanced: enqueued %d != transmitted %d + evicted %d + closed %d + queued %d",
			agg.Enqueued, agg.Transmitted, agg.DropEvicted, agg.DropClosed, agg.Queued)
		return
	}
	if bad == 0 {
		e.tracef("invariant %s ok: %d it sends, fleet %d enqueued = %d transmitted + %d dropped + %d queued",
			InvSched, e.itSent, agg.Enqueued, agg.Transmitted, agg.DropEvicted+agg.DropClosed, agg.Queued)
	}
}

package chaos

import (
	"fmt"
	"sort"
	"time"
)

// Kind names one fault or repair primitive. Faults come in pairs: every
// fault kind has a matching repair kind, and the engine reference-counts
// overlapping faults on the same underlay resource so a repair never
// resurrects capacity another outstanding fault still holds down.
type Kind string

const (
	// KindCutLink severs both fibers of one overlay link (Arg = link
	// index). Short cut/restore pairs are "flaps" — faster than hello
	// convergence when the window is under HelloInterval × HelloMiss.
	KindCutLink Kind = "cut-link"
	// KindRestoreLink repairs a prior cut of the same link.
	KindRestoreLink Kind = "restore-link"
	// KindCrashNode crash-stops a node with total state loss (Arg = node
	// index): its site drops off the underlay and its session manager,
	// link-state database, and sequence counters die with it.
	KindCrashNode Kind = "crash-node"
	// KindRestartNode boots a fresh incarnation of a crashed node.
	KindRestartNode Kind = "restart-node"
	// KindPartition cuts every fiber crossing a node bipartition (Mask
	// bit i = world node index i in group A).
	KindPartition Kind = "partition"
	// KindHeal repairs a prior partition with the same mask.
	KindHeal Kind = "heal"
	// KindISPOutage severs every fiber of one provider backbone (Arg =
	// ISP index 0 or 1): the correlated failure multihoming exists to
	// survive.
	KindISPOutage Kind = "isp-outage"
	// KindISPRestore repairs a prior ISP outage.
	KindISPRestore Kind = "isp-restore"
	// KindBrownout imposes extra Bernoulli loss on one provider (Arg =
	// ISP index, Val = loss in permille): a burst-loss storm rather than
	// a clean cut.
	KindBrownout Kind = "brownout"
	// KindBrownoutEnd lifts a prior brownout.
	KindBrownoutEnd Kind = "brownout-end"
	// KindLatencySpike multiplies one link's primary-fiber latency (Arg =
	// link index, Val = factor ×10) and adds jitter.
	KindLatencySpike Kind = "latency-spike"
	// KindLatencyNormal restores a spiked link's designed latency.
	KindLatencyNormal Kind = "latency-normal"
	// KindLeaveNode departs a node gracefully (Arg = node index): it
	// floods its departure record (in membership worlds), withdraws its
	// link-state advertisements, and stops.
	KindLeaveNode Kind = "leave-node"
	// KindRejoinNode rejoins a departed node as a fresh incarnation: it
	// restarts with its deliberately stale seeded directory and — in
	// membership worlds — re-runs admission through the lowest-index
	// alive contact, healing the stale state by anti-entropy.
	KindRejoinNode Kind = "rejoin-node"
	// KindCorruptView corrupts one node's control-plane state in place
	// (Arg = node index, Val selects the flavor): a bogus departure
	// record planted in its member directory, or a live link marked down
	// in its topology view. There is no repair event — the
	// self-stabilizing detector/corrector sweeps must converge the fleet
	// back, within the stabilization bound, on their own.
	KindCorruptView Kind = "corrupt-view"
)

// repairOf maps each fault kind to its repair kind.
var repairOf = map[Kind]Kind{
	KindCutLink:      KindRestoreLink,
	KindCrashNode:    KindRestartNode,
	KindPartition:    KindHeal,
	KindISPOutage:    KindISPRestore,
	KindBrownout:     KindBrownoutEnd,
	KindLatencySpike: KindLatencyNormal,
	KindLeaveNode:    KindRejoinNode,
}

// isFault reports whether a kind injects (rather than repairs) adversity.
// Corrupt-view is the exception with no repair pair: the protocol's own
// stabilization sweeps are its repair, so it is generator-usable but
// never holds underlay capacity down.
func isFault(k Kind) bool { _, ok := repairOf[k]; return ok }

// generatorKind reports whether a kind may appear in a GeneratorSpec.
func generatorKind(k Kind) bool { return isFault(k) || k == KindCorruptView }

// FaultKinds lists every fault kind usable in a GeneratorSpec, in stable
// order.
func FaultKinds() []Kind {
	return []Kind{KindCutLink, KindCrashNode, KindLeaveNode, KindPartition,
		KindISPOutage, KindBrownout, KindLatencySpike, KindCorruptView}
}

// Event is one scheduled fault or repair, at a campaign-relative virtual
// time. Arg addresses a link index, node index, or ISP index depending on
// Kind; Val carries a magnitude (brownout loss permille, latency factor
// ×10); Mask carries a partition's group-A node-index bitmask.
type Event struct {
	At   time.Duration `json:"at"`
	Kind Kind          `json:"kind"`
	Arg  int           `json:"arg,omitempty"`
	Val  int           `json:"val,omitempty"`
	Mask NodeMask      `json:"mask,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("%s@%v arg=%d", e.Kind, e.At, e.Arg)
	if e.Val != 0 {
		s += fmt.Sprintf(" val=%d", e.Val)
	}
	if !e.Mask.Empty() {
		s += fmt.Sprintf(" mask=%s", e.Mask)
	}
	return s
}

// Equal reports whether two events are identical (times, kinds,
// arguments, and mask contents). Events hold a NodeMask slice, so ==
// does not apply.
func (e Event) Equal(o Event) bool {
	return e.At == o.At && e.Kind == o.Kind && e.Arg == o.Arg &&
		e.Val == o.Val && e.Mask.Equal(o.Mask)
}

// GeneratorSpec asks for seed-randomized faults of one kind at a bounded
// rate. Generators expand to concrete fault/repair event pairs before the
// world starts moving, so a campaign's behaviour depends only on the
// concrete script and the world seed — the foundation of replay.
type GeneratorSpec struct {
	// Kind is a fault kind: cut-link, crash-node, partition, isp-outage,
	// brownout, or latency-spike.
	Kind Kind `json:"kind"`
	// Rate is the target fault-injection rate in faults per second of
	// campaign window.
	Rate float64 `json:"rate"`
}

// Campaign is one self-contained chaos run: a topology, a determinism
// seed, a fault window, and adversity given as an explicit script, as
// randomized generators, or both.
type Campaign struct {
	Name     string        `json:"name,omitempty"`
	Topo     string        `json:"topo"`
	Seed     uint64        `json:"seed"`
	Duration time.Duration `json:"duration"`
	// Script lists hand-written events (campaign-relative times).
	Script []Event `json:"script,omitempty"`
	// Generators are expanded deterministically from Seed and appended
	// to Script.
	Generators []GeneratorSpec `json:"generators,omitempty"`
}

// sortEvents orders a script by time, preserving the relative order of
// equal-time events so expansion order stays deterministic.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}

// Validate rejects campaigns the engine cannot run deterministically.
func (c Campaign) Validate() error {
	t, ok := TopologyByName(c.Topo)
	if !ok {
		return fmt.Errorf("chaos: unknown topology %q (have %v)", c.Topo, TopologyNames())
	}
	if c.Duration < 0 {
		return fmt.Errorf("chaos: negative duration %v", c.Duration)
	}
	for _, ev := range c.Script {
		if err := validateEvent(ev, t); err != nil {
			return err
		}
	}
	for _, g := range c.Generators {
		if !generatorKind(g.Kind) {
			return fmt.Errorf("chaos: generator kind %q is not a fault kind", g.Kind)
		}
		if g.Rate <= 0 {
			return fmt.Errorf("chaos: generator %q needs a positive rate", g.Kind)
		}
	}
	return nil
}

func validateEvent(ev Event, t Topology) error {
	if ev.At < 0 {
		return fmt.Errorf("chaos: event %v before campaign start", ev)
	}
	switch ev.Kind {
	case KindCutLink, KindRestoreLink, KindLatencySpike, KindLatencyNormal:
		if ev.Arg < 0 || ev.Arg >= len(t.Pairs) {
			return fmt.Errorf("chaos: event %v: link index out of range", ev)
		}
	case KindCrashNode, KindRestartNode, KindLeaveNode, KindRejoinNode, KindCorruptView:
		if ev.Arg < 0 || ev.Arg >= t.N {
			return fmt.Errorf("chaos: event %v: node index out of range", ev)
		}
	case KindISPOutage, KindISPRestore, KindBrownout, KindBrownoutEnd:
		if ev.Arg < 0 || ev.Arg > 1 {
			return fmt.Errorf("chaos: event %v: ISP index out of range", ev)
		}
	case KindPartition, KindHeal:
		if ev.Mask.Empty() || ev.Mask.MaxBit() >= t.N {
			return fmt.Errorf("chaos: event %v: partition mask empty or out of range", ev)
		}
	default:
		return fmt.Errorf("chaos: unknown event kind %q", ev.Kind)
	}
	return nil
}

package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// artifactVersion guards the on-disk format.
const artifactVersion = 1

// Artifact is the on-disk replay record of one campaign run. It carries
// the concrete expanded event script — not the generators — so replaying
// needs no generator machinery and survives generator changes; the
// recorded trace hash and violations let the replayer verify the run
// reproduced bit-for-bit.
type Artifact struct {
	Version    int          `json:"version"`
	Name       string       `json:"name,omitempty"`
	Topo       string       `json:"topo"`
	Seed       uint64       `json:"seed"`
	DurationNS int64        `json:"duration_ns"`
	Events     []Event      `json:"events"`
	TraceHash  string       `json:"trace_hash"`
	Violations []Violation  `json:"violations,omitempty"`
	Trace      []TraceEntry `json:"trace,omitempty"`
}

// NewArtifact captures a report as a replayable artifact.
func NewArtifact(r *Report) Artifact {
	return Artifact{
		Version:    artifactVersion,
		Name:       r.Campaign.Name,
		Topo:       r.Campaign.Topo,
		Seed:       r.Campaign.Seed,
		DurationNS: int64(r.Campaign.Duration),
		Events:     r.Events,
		TraceHash:  fmt.Sprintf("%016x", r.TraceHash),
		Violations: r.Violations,
		Trace:      r.Trace,
	}
}

// Campaign rebuilds the runnable campaign: the recorded concrete script,
// no generators.
func (a Artifact) Campaign() Campaign {
	return Campaign{
		Name:     a.Name,
		Topo:     a.Topo,
		Seed:     a.Seed,
		Duration: time.Duration(a.DurationNS),
		Script:   append([]Event(nil), a.Events...),
	}
}

// WriteArtifact saves a report's replay artifact as JSON.
func WriteArtifact(path string, r *Report) error {
	a := NewArtifact(r)
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("chaos: marshal artifact: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("chaos: write artifact: %w", err)
	}
	return nil
}

// LoadArtifact reads a replay artifact.
func LoadArtifact(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, fmt.Errorf("chaos: read artifact: %w", err)
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("chaos: parse artifact: %w", err)
	}
	if a.Version != artifactVersion {
		return a, fmt.Errorf("chaos: artifact version %d, want %d", a.Version, artifactVersion)
	}
	return a, nil
}

// Replay re-runs an artifact's recorded script and reports whether the
// run reproduced the original bit-for-bit: identical trace hash and
// identical invariant verdicts.
func Replay(a Artifact) (r *Report, match bool, err error) {
	r, err = Run(a.Campaign())
	if err != nil {
		return nil, false, err
	}
	match = fmt.Sprintf("%016x", r.TraceHash) == a.TraceHash &&
		len(r.Violations) == len(a.Violations)
	for i := range r.Violations {
		if !match {
			break
		}
		if r.Violations[i] != a.Violations[i] {
			match = false
		}
	}
	return r, match, nil
}

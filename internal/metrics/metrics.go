// Package metrics collects and summarizes the delivery measurements the
// experiments report: one-way latency distributions, jitter, on-time
// fractions under deadlines, and transmission-overhead ratios.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// PoolStats counts buffer-pool activity on the forwarding fast path. The
// counters are atomic because pooled buffers cross goroutines in deployment
// (UDP receive loop → event loop); in emulation everything is one thread
// and the atomics cost a few nanoseconds per packet.
//
// The zero value is ready to use.
type PoolStats struct {
	// Hits counts Get calls served by a recycled buffer.
	Hits atomic.Uint64
	// Misses counts Get calls that had to allocate (empty pool or an
	// oversized request no size class covers).
	Misses atomic.Uint64
	// Recycled counts buffer capacity (bytes) returned to the pool for
	// reuse instead of being garbage.
	Recycled atomic.Uint64
}

// PoolSnapshot is a point-in-time copy of PoolStats.
type PoolSnapshot struct {
	// Hits counts Get calls served by a recycled buffer.
	Hits uint64
	// Misses counts Get calls that allocated.
	Misses uint64
	// Recycled counts buffer bytes returned for reuse.
	Recycled uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *PoolStats) Snapshot() PoolSnapshot {
	return PoolSnapshot{
		Hits:     s.Hits.Load(),
		Misses:   s.Misses.Load(),
		Recycled: s.Recycled.Load(),
	}
}

// HitRatio returns Hits / (Hits + Misses), or 0 before the first Get.
func (s PoolSnapshot) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// RouteCacheStats counts underlay route-cache activity on the per-packet
// Send path. Like PoolStats the counters are atomic so deployment-mode
// readers (monitoring endpoints) can snapshot them without coordinating
// with the event loop; in emulation everything is one thread.
//
// The zero value is ready to use.
type RouteCacheStats struct {
	// Hits counts Send route lookups served by a cached route whose epoch
	// matched the provider's current topology epoch.
	Hits atomic.Uint64
	// Misses counts lookups that ran the SPF — first packets of a flow and
	// lookups after an invalidation.
	Misses atomic.Uint64
	// Invalidations counts provider topology-epoch bumps (fiber added,
	// convergence event applied, site liveness change). One bump lazily
	// invalidates every cached route of that provider.
	Invalidations atomic.Uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *RouteCacheStats) Snapshot() RouteCacheSnapshot {
	return RouteCacheSnapshot{
		Hits:          s.Hits.Load(),
		Misses:        s.Misses.Load(),
		Invalidations: s.Invalidations.Load(),
	}
}

// RouteCacheSnapshot is a point-in-time copy of RouteCacheStats.
type RouteCacheSnapshot struct {
	// Hits counts lookups served from cache.
	Hits uint64
	// Misses counts lookups that recomputed the route.
	Misses uint64
	// Invalidations counts topology-epoch bumps.
	Invalidations uint64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before the first lookup.
func (s RouteCacheSnapshot) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// SPFStats counts overlay shortest-path-tree recomputation activity in the
// control plane. Every LSA that changes the shared view forces each node to
// rebuild its SPT; the dense slice-indexed SPF reuses a per-tree scratch
// arena, so a warmed recompute performs zero allocations. The counters are
// atomic for the same reason as PoolStats: deployment-mode monitoring
// readers snapshot them without coordinating with the event loop.
//
// The zero value is ready to use.
type SPFStats struct {
	// Runs counts full SPF executions (SPTInto calls).
	Runs atomic.Uint64
	// ScratchReuses counts runs that recomputed entirely into an
	// already-sized scratch arena (no allocation).
	ScratchReuses atomic.Uint64
	// Incrementals counts single-link tree repairs (SPTRepair calls that
	// fixed the cached tree in place instead of rerunning Dijkstra).
	Incrementals atomic.Uint64
	// RepairedNodes sums, over all incremental repairs, the number of
	// nodes whose tree entry was touched — the affected-region size, which
	// for a single-link change is what the recompute cost scales with.
	RepairedNodes atomic.Uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *SPFStats) Snapshot() SPFSnapshot {
	return SPFSnapshot{
		Runs:          s.Runs.Load(),
		ScratchReuses: s.ScratchReuses.Load(),
		Incrementals:  s.Incrementals.Load(),
		RepairedNodes: s.RepairedNodes.Load(),
	}
}

// SPFSnapshot is a point-in-time copy of SPFStats.
type SPFSnapshot struct {
	// Runs counts full SPF executions.
	Runs uint64
	// ScratchReuses counts allocation-free runs into reused scratch.
	ScratchReuses uint64
	// Incrementals counts single-link incremental tree repairs.
	Incrementals uint64
	// RepairedNodes sums affected-region sizes over incremental repairs.
	RepairedNodes uint64
}

// ReuseRatio returns ScratchReuses / Runs, or 0 before the first run.
func (s SPFSnapshot) ReuseRatio() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.ScratchReuses) / float64(s.Runs)
}

// IncrementalRatio returns Incrementals / (Runs + Incrementals): the share
// of reconvergences served by subtree repair rather than full Dijkstra.
func (s SPFSnapshot) IncrementalRatio() float64 {
	total := s.Runs + s.Incrementals
	if total == 0 {
		return 0
	}
	return float64(s.Incrementals) / float64(total)
}

// MeanRepairSize returns the mean affected-region size per incremental
// repair, or 0 before the first repair.
func (s SPFSnapshot) MeanRepairSize() float64 {
	if s.Incrementals == 0 {
		return 0
	}
	return float64(s.RepairedNodes) / float64(s.Incrementals)
}

// SeqWindowStats counts defensive clamps in the link-level sequence
// windows: scans whose peer-supplied bounds would have walked an absurd
// span of sequence space (a corrupt or malicious frame) and were cut to
// the window capacity instead. The counters are atomic for the same
// reason as PoolStats: monitoring readers snapshot them without
// coordinating with the event loop.
//
// The zero value is ready to use.
type SeqWindowStats struct {
	// MissingClamps counts Missing scans clamped to the window capacity.
	MissingClamps atomic.Uint64
	// GapScanClamps counts receiver gap scans (NM-Strikes) clamped.
	GapScanClamps atomic.Uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *SeqWindowStats) Snapshot() SeqWindowSnapshot {
	return SeqWindowSnapshot{
		MissingClamps: s.MissingClamps.Load(),
		GapScanClamps: s.GapScanClamps.Load(),
	}
}

// SeqWindowSnapshot is a point-in-time copy of SeqWindowStats.
type SeqWindowSnapshot struct {
	// MissingClamps counts clamped Missing scans.
	MissingClamps uint64
	// GapScanClamps counts clamped gap scans.
	GapScanClamps uint64
}

// TreeCacheStats counts multicast-tree cache activity in one routing
// engine: trees memoized per (source, group) under the shared view and
// group versions, bounded by a fixed capacity.
//
// The zero value is ready to use.
type TreeCacheStats struct {
	// Hits counts tree lookups served by a cached mask computed under the
	// current view and group versions.
	Hits atomic.Uint64
	// Misses counts lookups that recomputed the tree.
	Misses atomic.Uint64
	// Evictions counts cache entries discarded — superseded entries pruned
	// on a version change, capacity evictions, and eager invalidations.
	Evictions atomic.Uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *TreeCacheStats) Snapshot() TreeCacheSnapshot {
	return TreeCacheSnapshot{
		Hits:      s.Hits.Load(),
		Misses:    s.Misses.Load(),
		Evictions: s.Evictions.Load(),
	}
}

// TreeCacheSnapshot is a point-in-time copy of TreeCacheStats.
type TreeCacheSnapshot struct {
	// Hits counts lookups served from cache.
	Hits uint64
	// Misses counts lookups that recomputed the tree.
	Misses uint64
	// Evictions counts discarded cache entries.
	Evictions uint64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before the first lookup.
func (s TreeCacheSnapshot) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// WireStats counts datagram-level activity on one real UDP underlay: how
// many datagrams and bytes crossed the socket in each direction, and how
// effectively the batched data plane amortizes its syscalls (packets per
// recvmmsg/sendmmsg wakeup). The counters are atomic because the receive
// loop, the event loop, and monitoring readers touch them from different
// goroutines.
//
// The zero value is ready to use.
type WireStats struct {
	// RecvBatches counts receive wakeups (one recvmmsg call on Linux, one
	// datagram read on the portable path).
	RecvBatches atomic.Uint64
	// RecvPackets counts datagrams drained from the socket.
	RecvPackets atomic.Uint64
	// RecvBytes counts datagram payload bytes drained from the socket.
	RecvBytes atomic.Uint64
	// RecvUnknown counts datagrams dropped because the source address did
	// not belong to a registered peer.
	RecvUnknown atomic.Uint64
	// SendBatches counts send flushes (one sendmmsg call on Linux, one
	// write loop on the portable path).
	SendBatches atomic.Uint64
	// SendPackets counts datagrams handed to the kernel.
	SendPackets atomic.Uint64
	// SendBytes counts datagram payload bytes handed to the kernel.
	SendBytes atomic.Uint64
	// SendDropped counts frames dropped on the send side: socket errors,
	// unrepresentable destinations, a full coalescing ring, or frames still
	// pending when the underlay closed.
	SendDropped atomic.Uint64
	// RecvDelivered counts frames handed to the handler on this shard's
	// event loop (after any cross-shard handoff; a sharded underlay's
	// arrival shard and delivery shard can differ).
	RecvDelivered atomic.Uint64
	// Handoffs counts frames that arrived on this shard but belonged to
	// another shard's flow state and were handed over an SPSC ring.
	Handoffs atomic.Uint64
	// HandoffDrops counts frames dropped because the target shard's
	// handoff ring was full (overload; best-effort like IP).
	HandoffDrops atomic.Uint64
	// ControlSteers counts frames the receive-path classifier redirected
	// to the control shard (hellos, link-state, group-state): expected
	// shard crossings of the control plane, kept out of Handoffs so that
	// counter isolates data-plane steering misses.
	ControlSteers atomic.Uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *WireStats) Snapshot() WireSnapshot {
	return WireSnapshot{
		RecvBatches: s.RecvBatches.Load(),
		RecvPackets: s.RecvPackets.Load(),
		RecvBytes:   s.RecvBytes.Load(),
		RecvUnknown: s.RecvUnknown.Load(),
		SendBatches: s.SendBatches.Load(),
		SendPackets: s.SendPackets.Load(),
		SendBytes:   s.SendBytes.Load(),
		SendDropped: s.SendDropped.Load(),

		RecvDelivered: s.RecvDelivered.Load(),
		Handoffs:      s.Handoffs.Load(),
		HandoffDrops:  s.HandoffDrops.Load(),
		ControlSteers: s.ControlSteers.Load(),
	}
}

// WireSnapshot is a point-in-time copy of WireStats.
type WireSnapshot struct {
	// RecvBatches counts receive wakeups.
	RecvBatches uint64
	// RecvPackets counts datagrams drained.
	RecvPackets uint64
	// RecvBytes counts bytes drained.
	RecvBytes uint64
	// RecvUnknown counts datagrams from unregistered senders.
	RecvUnknown uint64
	// SendBatches counts send flushes.
	SendBatches uint64
	// SendPackets counts datagrams handed to the kernel.
	SendPackets uint64
	// SendBytes counts bytes handed to the kernel.
	SendBytes uint64
	// SendDropped counts frames dropped on the send side.
	SendDropped uint64
	// RecvDelivered counts frames handed to the handler.
	RecvDelivered uint64
	// Handoffs counts frames handed to another shard over an SPSC ring.
	Handoffs uint64
	// HandoffDrops counts frames dropped on a full handoff ring.
	HandoffDrops uint64
	// ControlSteers counts frames redirected to the control shard.
	ControlSteers uint64
}

// Merge returns the field-wise sum of two snapshots; a sharded underlay
// aggregates its per-shard counters with it. Summing per-shard snapshots
// is as consistent as one shard's own snapshot: every counter is read
// atomically, and in-flight frames may straddle any pair of counters
// either way.
func (s WireSnapshot) Merge(o WireSnapshot) WireSnapshot {
	return WireSnapshot{
		RecvBatches: s.RecvBatches + o.RecvBatches,
		RecvPackets: s.RecvPackets + o.RecvPackets,
		RecvBytes:   s.RecvBytes + o.RecvBytes,
		RecvUnknown: s.RecvUnknown + o.RecvUnknown,
		SendBatches: s.SendBatches + o.SendBatches,
		SendPackets: s.SendPackets + o.SendPackets,
		SendBytes:   s.SendBytes + o.SendBytes,
		SendDropped: s.SendDropped + o.SendDropped,

		RecvDelivered: s.RecvDelivered + o.RecvDelivered,
		Handoffs:      s.Handoffs + o.Handoffs,
		HandoffDrops:  s.HandoffDrops + o.HandoffDrops,
		ControlSteers: s.ControlSteers + o.ControlSteers,
	}
}

// RecvBatchAvg returns the mean datagrams drained per receive wakeup, or 0
// before the first wakeup.
func (s WireSnapshot) RecvBatchAvg() float64 {
	if s.RecvBatches == 0 {
		return 0
	}
	return float64(s.RecvPackets) / float64(s.RecvBatches)
}

// SendBatchAvg returns the mean datagrams per send flush, or 0 before the
// first flush.
func (s WireSnapshot) SendBatchAvg() float64 {
	if s.SendBatches == 0 {
		return 0
	}
	return float64(s.SendPackets) / float64(s.SendBatches)
}

// LinkHealthStats counts link-state protocol health activity on one node:
// how hard the hello machinery is working, how often probes are missed, how
// much flooding the node originates or relays, and how many times its
// topology view reconverged. Chaos invariants assert on these counters —
// e.g. a campaign that cut links must show misses and reconvergences, and a
// quiet world must not. The counters are atomic for the same reason as
// PoolStats: deployment-mode monitoring readers snapshot them without
// coordinating with the event loop.
//
// The zero value is ready to use.
type LinkHealthStats struct {
	// HellosSent counts hello probes transmitted on adjacent links.
	HellosSent atomic.Uint64
	// HellosMissed counts hello intervals that elapsed without hearing
	// from a neighbor (each one step toward declaring the link down).
	HellosMissed atomic.Uint64
	// LSAFloods counts link-state advertisements this node pushed into the
	// flood, both self-originated and forwarded on behalf of others.
	LSAFloods atomic.Uint64
	// DeltaLSAFloods counts the subset of LSAFloods that were delta
	// advertisements — single-change floods whose cost scales with the
	// change, not the node degree. Full-refresh floods are the difference.
	DeltaLSAFloods atomic.Uint64
	// Reconvergences counts topology-view version bumps: every time a
	// local detection or a received LSA changed this node's view of the
	// shared graph.
	Reconvergences atomic.Uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *LinkHealthStats) Snapshot() LinkHealthSnapshot {
	return LinkHealthSnapshot{
		HellosSent:     s.HellosSent.Load(),
		HellosMissed:   s.HellosMissed.Load(),
		LSAFloods:      s.LSAFloods.Load(),
		DeltaLSAFloods: s.DeltaLSAFloods.Load(),
		Reconvergences: s.Reconvergences.Load(),
	}
}

// LinkHealthSnapshot is a point-in-time copy of LinkHealthStats.
type LinkHealthSnapshot struct {
	// HellosSent counts hello probes transmitted.
	HellosSent uint64
	// HellosMissed counts missed hello intervals.
	HellosMissed uint64
	// LSAFloods counts LSAs originated or forwarded.
	LSAFloods uint64
	// DeltaLSAFloods counts the delta subset of LSAFloods.
	DeltaLSAFloods uint64
	// Reconvergences counts topology-view version bumps.
	Reconvergences uint64
}

// MissRatio returns HellosMissed / HellosSent, or 0 before the first hello.
// A healthy converged world keeps this near zero; sustained flapping drives
// it up.
func (s LinkHealthSnapshot) MissRatio() float64 {
	if s.HellosSent == 0 {
		return 0
	}
	return float64(s.HellosMissed) / float64(s.HellosSent)
}

// ChaosStats counts fault-campaign activity in one chaos engine run:
// injected adversity on one side, invariant outcomes on the other. The
// counters are atomic so campaign progress can be observed from outside the
// simulated world (soak tooling, tests polling mid-run).
//
// The zero value is ready to use.
type ChaosStats struct {
	// EventsInjected counts fault and repair events applied to the world.
	EventsInjected atomic.Uint64
	// FaultsActive tracks the number of currently outstanding faults
	// (injected and not yet healed/restored).
	FaultsActive atomic.Int64
	// InvariantChecks counts individual invariant evaluations, continuous
	// and at quiesce points.
	InvariantChecks atomic.Uint64
	// Violations counts invariant evaluations that failed.
	Violations atomic.Uint64
	// Campaigns counts completed campaign runs.
	Campaigns atomic.Uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *ChaosStats) Snapshot() ChaosSnapshot {
	return ChaosSnapshot{
		EventsInjected:  s.EventsInjected.Load(),
		FaultsActive:    s.FaultsActive.Load(),
		InvariantChecks: s.InvariantChecks.Load(),
		Violations:      s.Violations.Load(),
		Campaigns:       s.Campaigns.Load(),
	}
}

// MembershipStats counts dynamic-membership protocol activity on one
// node: admissions and departures it observed, directory gossip volume,
// and the self-stabilization machinery's work — detector sweeps run,
// inconsistencies flagged, and corrective actions applied. The counters
// are atomic so deployment-mode monitoring readers snapshot them without
// coordinating with the event loop.
//
// The zero value is ready to use.
type MembershipStats struct {
	// Joins counts members this node learned joined (including itself).
	Joins atomic.Uint64
	// Leaves counts members this node learned left.
	Leaves atomic.Uint64
	// UpdatesSent counts directory-update floods this node originated.
	UpdatesSent atomic.Uint64
	// DigestsSent counts view-digest probes sent to neighbors.
	DigestsSent atomic.Uint64
	// SyncsSent counts full-directory syncs pushed to divergent peers.
	SyncsSent atomic.Uint64
	// DetectorSweeps counts periodic detector rounds executed.
	DetectorSweeps atomic.Uint64
	// Inconsistencies counts local inconsistencies the detector flagged
	// (stale links to departed members, digest divergence, refuted
	// self-departure records).
	Inconsistencies atomic.Uint64
	// Corrections counts corrective actions the corrector applied.
	Corrections atomic.Uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *MembershipStats) Snapshot() MembershipSnapshot {
	return MembershipSnapshot{
		Joins:           s.Joins.Load(),
		Leaves:          s.Leaves.Load(),
		UpdatesSent:     s.UpdatesSent.Load(),
		DigestsSent:     s.DigestsSent.Load(),
		SyncsSent:       s.SyncsSent.Load(),
		DetectorSweeps:  s.DetectorSweeps.Load(),
		Inconsistencies: s.Inconsistencies.Load(),
		Corrections:     s.Corrections.Load(),
	}
}

// MembershipSnapshot is a point-in-time copy of MembershipStats.
type MembershipSnapshot struct {
	// Joins counts members learned joined.
	Joins uint64
	// Leaves counts members learned left.
	Leaves uint64
	// UpdatesSent counts directory-update floods originated.
	UpdatesSent uint64
	// DigestsSent counts view-digest probes sent.
	DigestsSent uint64
	// SyncsSent counts full-directory syncs pushed.
	SyncsSent uint64
	// DetectorSweeps counts detector rounds executed.
	DetectorSweeps uint64
	// Inconsistencies counts inconsistencies flagged.
	Inconsistencies uint64
	// Corrections counts corrective actions applied.
	Corrections uint64
}

// Merge returns the field-wise sum of two snapshots, for fleet-level
// aggregation across nodes (and across a node's dead incarnations).
func (s MembershipSnapshot) Merge(o MembershipSnapshot) MembershipSnapshot {
	return MembershipSnapshot{
		Joins:           s.Joins + o.Joins,
		Leaves:          s.Leaves + o.Leaves,
		UpdatesSent:     s.UpdatesSent + o.UpdatesSent,
		DigestsSent:     s.DigestsSent + o.DigestsSent,
		SyncsSent:       s.SyncsSent + o.SyncsSent,
		DetectorSweeps:  s.DetectorSweeps + o.DetectorSweeps,
		Inconsistencies: s.Inconsistencies + o.Inconsistencies,
		Corrections:     s.Corrections + o.Corrections,
	}
}

// ChaosSnapshot is a point-in-time copy of ChaosStats.
type ChaosSnapshot struct {
	// EventsInjected counts fault and repair events applied.
	EventsInjected uint64
	// FaultsActive is the number of currently outstanding faults.
	FaultsActive int64
	// InvariantChecks counts invariant evaluations.
	InvariantChecks uint64
	// Violations counts failed invariant evaluations.
	Violations uint64
	// Campaigns counts completed campaign runs.
	Campaigns uint64
}

// Clean reports whether every invariant evaluation so far passed (and at
// least one ran).
func (s ChaosSnapshot) Clean() bool {
	return s.InvariantChecks > 0 && s.Violations == 0
}

// SchedStats counts fair-scheduler activity (§IV-B disciplines): packets
// accepted into per-flow queues, packets handed to the pacer, drops by
// cause, backpressure refusals signalled upstream, and flow-table
// occupancy. The counters are atomic so deployment-mode monitoring readers
// (Daemon.SchedStats) can snapshot them without coordinating with the
// event loop; one stats instance may be shared by every discipline
// instance on a node, so the gauges aggregate across links.
//
// Accounting identity: every packet accepted into a queue is eventually
// transmitted, evicted by buffer policy, or discarded at Close, so at any
// quiesce point Enqueued == Transmitted + DropEvicted + DropClosed +
// Queued. Refusals (DropRefusedLow, DropFIFOOverflow, Backpressure) happen
// before a packet is accepted and sit outside the identity. The chaos
// engine's sched invariant asserts exactly this.
//
// The zero value is ready to use.
type SchedStats struct {
	// Enqueued counts packets accepted into a scheduler queue.
	Enqueued atomic.Uint64
	// Transmitted counts packets dequeued and handed to the pacer.
	Transmitted atomic.Uint64
	// DropEvicted counts stored packets evicted by the priority buffer
	// policy (oldest lowest-priority victim of a full flow).
	DropEvicted atomic.Uint64
	// DropRefusedLow counts arriving packets refused because they were
	// strictly lower priority than everything stored in their full flow.
	DropRefusedLow atomic.Uint64
	// DropFIFOOverflow counts packets refused by the unfair-baseline FIFO
	// when its total buffer was full (the DisableFairness ablation).
	DropFIFOOverflow atomic.Uint64
	// DropClosed counts queued packets discarded when a link closed.
	DropClosed atomic.Uint64
	// Backpressure counts reject-policy refusals of a saturated flow — the
	// typed signal propagated up to sessions and callers.
	Backpressure atomic.Uint64
	// FlowsRetired counts drained flows whose state was recycled to the
	// freelist (the idle-flow leak fix: one-shot sources do not linger).
	FlowsRetired atomic.Uint64
	// Queued gauges packets currently stored across all queues.
	Queued atomic.Int64
	// ActiveFlows gauges flows currently holding scheduler state.
	ActiveFlows atomic.Int64
	// FlowsPeak is the high-water mark of ActiveFlows.
	FlowsPeak atomic.Int64
}

// RecordFlowsPeak raises the high-water mark to n if it is higher.
func (s *SchedStats) RecordFlowsPeak(n int64) {
	for {
		cur := s.FlowsPeak.Load()
		if n <= cur || s.FlowsPeak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *SchedStats) Snapshot() SchedSnapshot {
	return SchedSnapshot{
		Enqueued:         s.Enqueued.Load(),
		Transmitted:      s.Transmitted.Load(),
		DropEvicted:      s.DropEvicted.Load(),
		DropRefusedLow:   s.DropRefusedLow.Load(),
		DropFIFOOverflow: s.DropFIFOOverflow.Load(),
		DropClosed:       s.DropClosed.Load(),
		Backpressure:     s.Backpressure.Load(),
		FlowsRetired:     s.FlowsRetired.Load(),
		Queued:           s.Queued.Load(),
		ActiveFlows:      s.ActiveFlows.Load(),
		FlowsPeak:        s.FlowsPeak.Load(),
	}
}

// SchedSnapshot is a point-in-time copy of SchedStats.
type SchedSnapshot struct {
	// Enqueued counts packets accepted into a scheduler queue.
	Enqueued uint64
	// Transmitted counts packets dequeued for transmission.
	Transmitted uint64
	// DropEvicted counts stored packets evicted by buffer policy.
	DropEvicted uint64
	// DropRefusedLow counts packets refused as lowest-priority newcomers.
	DropRefusedLow uint64
	// DropFIFOOverflow counts unfair-baseline FIFO overflow drops.
	DropFIFOOverflow uint64
	// DropClosed counts queued packets discarded at Close.
	DropClosed uint64
	// Backpressure counts reject-policy refusals signalled upstream.
	Backpressure uint64
	// FlowsRetired counts drained flows recycled to the freelist.
	FlowsRetired uint64
	// Queued gauges packets currently stored.
	Queued int64
	// ActiveFlows gauges flows currently holding state.
	ActiveFlows int64
	// FlowsPeak is the ActiveFlows high-water mark.
	FlowsPeak int64
}

// Merge returns the field-wise sum of two snapshots (gauges sum; FlowsPeak
// takes the max, a conservative per-shard bound). A node aggregating
// per-shard scheduler cores combines them with it.
func (s SchedSnapshot) Merge(o SchedSnapshot) SchedSnapshot {
	peak := s.FlowsPeak
	if o.FlowsPeak > peak {
		peak = o.FlowsPeak
	}
	return SchedSnapshot{
		Enqueued:         s.Enqueued + o.Enqueued,
		Transmitted:      s.Transmitted + o.Transmitted,
		DropEvicted:      s.DropEvicted + o.DropEvicted,
		DropRefusedLow:   s.DropRefusedLow + o.DropRefusedLow,
		DropFIFOOverflow: s.DropFIFOOverflow + o.DropFIFOOverflow,
		DropClosed:       s.DropClosed + o.DropClosed,
		Backpressure:     s.Backpressure + o.Backpressure,
		FlowsRetired:     s.FlowsRetired + o.FlowsRetired,
		Queued:           s.Queued + o.Queued,
		ActiveFlows:      s.ActiveFlows + o.ActiveFlows,
		FlowsPeak:        peak,
	}
}

// Balanced reports whether the drop-accounting identity holds: at a
// quiesce point every enqueued packet must be transmitted, evicted, or
// discarded at close, with the remainder still queued.
func (s SchedSnapshot) Balanced() bool {
	return s.Enqueued == s.Transmitted+s.DropEvicted+s.DropClosed+uint64(s.Queued)
}

// Dropped returns total packets lost to the scheduler by any cause.
func (s SchedSnapshot) Dropped() uint64 {
	return s.DropEvicted + s.DropRefusedLow + s.DropFIFOOverflow + s.DropClosed
}

// Latencies accumulates one-way delivery latencies for a flow.
//
// The zero value is ready to use.
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// Add records one delivery latency.
func (l *Latencies) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latencies) Count() int { return len(l.samples) }

// Min returns the smallest sample, or zero when empty.
func (l *Latencies) Min() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	return l.samples[0]
}

// Max returns the largest sample, or zero when empty.
func (l *Latencies) Max() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	return l.samples[len(l.samples)-1]
}

// Mean returns the arithmetic mean, or zero when empty.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank, or zero when empty.
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	if p <= 0 {
		return l.samples[0]
	}
	if p >= 100 {
		return l.samples[len(l.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(l.samples))))
	if rank < 1 {
		rank = 1
	}
	return l.samples[rank-1]
}

// OnTime returns the fraction of samples at or under the deadline; it
// returns 0 when empty.
func (l *Latencies) OnTime(deadline time.Duration) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range l.samples {
		if s <= deadline {
			n++
		}
	}
	return float64(n) / float64(len(l.samples))
}

// Jitter returns the mean absolute difference between successive latency
// samples (RFC 3550-style smoothness indicator), or zero with fewer than
// two samples.
func (l *Latencies) Jitter() time.Duration {
	if len(l.samples) < 2 {
		return 0
	}
	var sum time.Duration
	for i := 1; i < len(l.samples); i++ {
		d := l.samples[i] - l.samples[i-1]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / time.Duration(len(l.samples)-1)
}

// Samples returns the recorded samples. They are in arrival order unless a
// summary statistic (Min, Max, Percentile) has already sorted them in
// place. The caller must not modify the returned slice.
func (l *Latencies) Samples() []time.Duration { return l.samples }

func (l *Latencies) sort() {
	if l.sorted {
		return
	}
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	l.sorted = true
}

// FlowStats tracks end-to-end delivery accounting for one flow.
//
// The zero value is ready to use.
type FlowStats struct {
	// Sent counts packets the source emitted.
	Sent uint64
	// Received counts distinct packets delivered to the application.
	Received uint64
	// Duplicates counts redundant deliveries suppressed at the destination.
	Duplicates uint64
	// Late counts packets that arrived after their deadline and were
	// discarded.
	Late uint64
	// Latency holds per-delivery one-way latencies.
	Latency Latencies
}

// DeliveryRatio returns Received / Sent, or 0 when nothing was sent.
func (f *FlowStats) DeliveryRatio() float64 {
	if f.Sent == 0 {
		return 0
	}
	return float64(f.Received) / float64(f.Sent)
}

// LossRatio returns 1 − DeliveryRatio, or 0 when nothing was sent.
func (f *FlowStats) LossRatio() float64 {
	if f.Sent == 0 {
		return 0
	}
	return 1 - f.DeliveryRatio()
}

// Table formats experiment output as fixed-width rows so every benchmark
// prints series the way the paper's evaluation would tabulate them.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// fmtDuration renders durations in fractional milliseconds, the unit the
// paper reasons in.
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

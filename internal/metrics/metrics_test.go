package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRouteCacheSnapshot(t *testing.T) {
	var s RouteCacheStats
	s.Hits.Add(9)
	s.Misses.Add(1)
	s.Invalidations.Add(2)
	snap := s.Snapshot()
	if snap.Hits != 9 || snap.Misses != 1 || snap.Invalidations != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := snap.HitRatio(); got != 0.9 {
		t.Fatalf("HitRatio = %v, want 0.9", got)
	}
	var zero RouteCacheSnapshot
	if zero.HitRatio() != 0 {
		t.Fatal("empty snapshot HitRatio != 0")
	}
}

func TestLatenciesEmpty(t *testing.T) {
	var l Latencies
	if l.Count() != 0 || l.Min() != 0 || l.Max() != 0 || l.Mean() != 0 {
		t.Fatal("empty Latencies returned nonzero summaries")
	}
	if l.Percentile(50) != 0 || l.Jitter() != 0 || l.OnTime(time.Second) != 0 {
		t.Fatal("empty Latencies returned nonzero percentile/jitter/ontime")
	}
}

func TestLatenciesSummaries(t *testing.T) {
	var l Latencies
	for _, ms := range []int{50, 10, 30, 20, 40} {
		l.Add(time.Duration(ms) * time.Millisecond)
	}
	if l.Count() != 5 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Min() != 10*time.Millisecond || l.Max() != 50*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", l.Min(), l.Max())
	}
	if l.Mean() != 30*time.Millisecond {
		t.Fatalf("Mean = %v", l.Mean())
	}
	if got := l.Percentile(50); got != 30*time.Millisecond {
		t.Fatalf("P50 = %v, want 30ms", got)
	}
	if got := l.Percentile(100); got != 50*time.Millisecond {
		t.Fatalf("P100 = %v, want 50ms", got)
	}
	if got := l.Percentile(0); got != 10*time.Millisecond {
		t.Fatalf("P0 = %v, want 10ms", got)
	}
}

func TestLatenciesOnTime(t *testing.T) {
	var l Latencies
	l.Add(10 * time.Millisecond)
	l.Add(20 * time.Millisecond)
	l.Add(200 * time.Millisecond)
	l.Add(300 * time.Millisecond)
	if got := l.OnTime(200 * time.Millisecond); got != 0.75 {
		t.Fatalf("OnTime = %v, want 0.75", got)
	}
}

func TestLatenciesJitter(t *testing.T) {
	var l Latencies
	l.Add(10 * time.Millisecond)
	l.Add(14 * time.Millisecond)
	l.Add(12 * time.Millisecond)
	if got := l.Jitter(); got != 3*time.Millisecond {
		t.Fatalf("Jitter = %v, want 3ms", got)
	}
	var constLat Latencies
	for i := 0; i < 10; i++ {
		constLat.Add(5 * time.Millisecond)
	}
	if constLat.Jitter() != 0 {
		t.Fatalf("constant stream jitter = %v, want 0", constLat.Jitter())
	}
}

// TestPercentileMatchesSortProperty cross-checks Percentile against direct
// sorted indexing on random inputs.
func TestPercentileMatchesSortProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	prop := func() bool {
		n := 1 + r.Intn(200)
		var l Latencies
		vals := make([]time.Duration, n)
		for i := range vals {
			vals[i] = time.Duration(r.Intn(1000)) * time.Microsecond
			l.Add(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, p := range []float64{1, 25, 50, 75, 99} {
			rank := int((p/100)*float64(n) + 0.9999999)
			if rank < 1 {
				rank = 1
			}
			if rank > n {
				rank = n
			}
			if l.Percentile(p) != vals[rank-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowStatsRatios(t *testing.T) {
	var f FlowStats
	if f.DeliveryRatio() != 0 || f.LossRatio() != 0 {
		t.Fatal("zero FlowStats returned nonzero ratios")
	}
	f.Sent = 100
	f.Received = 97
	if f.DeliveryRatio() != 0.97 {
		t.Fatalf("DeliveryRatio = %v", f.DeliveryRatio())
	}
	if got := f.LossRatio(); got < 0.0299 || got > 0.0301 {
		t.Fatalf("LossRatio = %v", got)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := NewTable("proto", "p99", "ontime")
	tab.AddRow("e2e", 150*time.Millisecond, 0.95)
	tab.AddRow("hopbyhop", 70*time.Millisecond, 0.999)
	out := tab.String()
	if !strings.Contains(out, "150.00ms") || !strings.Contains(out, "70.00ms") {
		t.Fatalf("durations not formatted in ms:\n%s", out)
	}
	if !strings.Contains(out, "0.950") {
		t.Fatalf("float not formatted:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestLinkHealthStatsSnapshot(t *testing.T) {
	var s LinkHealthStats
	if got := s.Snapshot().MissRatio(); got != 0 {
		t.Fatalf("zero-value MissRatio = %v, want 0", got)
	}
	s.HellosSent.Add(200)
	s.HellosMissed.Add(50)
	s.LSAFloods.Add(7)
	s.Reconvergences.Add(3)
	snap := s.Snapshot()
	if snap.HellosSent != 200 || snap.HellosMissed != 50 || snap.LSAFloods != 7 || snap.Reconvergences != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := snap.MissRatio(); got != 0.25 {
		t.Fatalf("MissRatio = %v, want 0.25", got)
	}
}

func TestChaosStatsSnapshotAndClean(t *testing.T) {
	var s ChaosStats
	if s.Snapshot().Clean() {
		t.Fatal("zero checks must not report Clean")
	}
	s.EventsInjected.Add(12)
	s.FaultsActive.Add(3)
	s.FaultsActive.Add(-2)
	s.InvariantChecks.Add(40)
	s.Campaigns.Add(1)
	snap := s.Snapshot()
	if snap.EventsInjected != 12 || snap.FaultsActive != 1 || snap.InvariantChecks != 40 || snap.Campaigns != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !snap.Clean() {
		t.Fatal("violation-free run must report Clean")
	}
	s.Violations.Add(1)
	if s.Snapshot().Clean() {
		t.Fatal("run with a violation must not report Clean")
	}
}

package membership

import (
	"encoding/binary"
	"fmt"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/sim"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// Env is what the manager needs from its host overlay node. Payload
// slices passed to Flood and Send are only valid until the call returns;
// implementations must serialize or copy synchronously.
type Env interface {
	// Clock returns the node's clock.
	Clock() sim.Clock
	// Flood sends a membership packet to every current neighbor except
	// the one it came from (zero to send to all).
	Flood(payload []byte, except wire.NodeID)
	// Send sends a membership packet to one neighbor.
	Send(to wire.NodeID, payload []byte)
	// Neighbors returns the node's neighbors in ascending ID order. The
	// manager must not modify or retain the returned slice.
	Neighbors() []wire.NodeID
}

// Config parameterizes dynamic membership. The zero value of any field
// takes its default.
type Config struct {
	// SweepInterval is the detector period: each sweep runs the local
	// predicates and probes every neighbor with a directory digest. The
	// stabilization bound is measured in sweeps.
	SweepInterval time.Duration
	// JoinRetry is the admission-request retry period while a joining
	// node awaits its own admission record.
	JoinRetry time.Duration
	// Seed lists the members admitted at epoch 1 before the protocol
	// starts — the statically configured initial fleet. A runtime joiner
	// leaves it empty and learns the directory from its contact.
	Seed []wire.NodeID
}

// DefaultConfig returns production defaults.
func DefaultConfig() Config {
	return Config{
		SweepInterval: 500 * time.Millisecond,
		JoinRetry:     300 * time.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.SweepInterval <= 0 {
		c.SweepInterval = d.SweepInterval
	}
	if c.JoinRetry <= 0 {
		c.JoinRetry = d.JoinRetry
	}
	return c
}

// Manager runs the dynamic-membership protocol for one node: directory
// replication, join admission, graceful departure, and the periodic
// detector/corrector sweep that makes the control plane self-stabilizing.
// All methods must be called from the node's executor.
type Manager struct {
	env  Env
	self wire.NodeID
	cfg  Config
	dir  *Directory
	view *topology.View

	stats   metrics.MembershipStats
	closed  bool
	started bool
	// leaving suppresses the self-defense refutation once this node
	// announced its own departure.
	leaving bool
	// contact is the admission point while a join is in progress.
	contact   wire.NodeID
	joinTimer sim.Timer
	sweep     sim.Timer

	onChange    func(id wire.NodeID, st Status)
	onFinding   func(Finding)
	onReconcile func() int

	// scratch buffers keep the steady-state sweep allocation-free.
	buf      []byte
	findings []Finding
	recs     []Record

	lastCorrection time.Duration
	corrected      bool
}

// NewManager returns a manager for node self, seeding the directory from
// cfg.Seed at epoch 1.
func NewManager(env Env, self wire.NodeID, cfg Config) *Manager {
	m := &Manager{
		env:  env,
		self: self,
		cfg:  cfg.withDefaults(),
		dir:  NewDirectory(),
	}
	for _, id := range m.cfg.Seed {
		m.dir.Apply(Record{ID: id, Epoch: 1, Status: StatusJoined})
	}
	return m
}

// SetView installs the topology view the detector audits against the
// directory.
func (m *Manager) SetView(v *topology.View) { m.view = v }

// SetOnChange installs a callback invoked after a member's status
// changed in the directory (admissions, departures, refutations). The
// host node uses it to enable or disable the adjacent link machinery.
func (m *Manager) SetOnChange(fn func(id wire.NodeID, st Status)) { m.onChange = fn }

// SetOnFinding installs the corrector hook invoked for every
// topology-level finding of the detector sweep. The host node repairs the
// flagged state (downing stale links, disabling departed neighbors); the
// manager counts the correction.
func (m *Manager) SetOnFinding(fn func(Finding)) { m.onFinding = fn }

// SetOnReconcile installs an extra corrector predicate run once per sweep.
// It returns how many local repairs it made; the manager folds the count
// into the inconsistency/correction stats. The host node uses it to
// reconcile adjacent-link view state against live hello state — the one
// corruption class no flood can repair, because remote LSAs never govern a
// node's own adjacent links.
func (m *Manager) SetOnReconcile(fn func() int) { m.onReconcile = fn }

// Directory returns the node's member directory.
func (m *Manager) Directory() *Directory { return m.dir }

// Stats returns a snapshot of protocol counters.
func (m *Manager) Stats() metrics.MembershipSnapshot { return m.stats.Snapshot() }

// IsMember reports whether id is currently a joined member.
func (m *Manager) IsMember(id wire.NodeID) bool { return m.dir.IsMember(id) }

// Joined reports whether this node itself is an admitted member.
func (m *Manager) Joined() bool { return m.dir.IsMember(m.self) }

// AllowsOrigin is the link-state admission gate: a node with a populated
// directory accepts advertisements only from current members; an empty
// directory (a joiner before its first sync) admits everything, since it
// has no basis to reject.
func (m *Manager) AllowsOrigin(id wire.NodeID) bool {
	return m.dir.Len() == 0 || m.dir.IsMember(id)
}

// LastCorrection returns the time of the most recent corrective action
// and whether one ever ran — the raw material of stabilization-time
// measurements.
func (m *Manager) LastCorrection() (time.Duration, bool) {
	return m.lastCorrection, m.corrected
}

// Start begins the periodic detector/corrector sweep.
func (m *Manager) Start() {
	m.started = true
	m.scheduleSweep()
}

// Stop cancels all timers.
func (m *Manager) Stop() {
	m.closed = true
	stopTimer(m.joinTimer)
	stopTimer(m.sweep)
}

// Join starts admission through contact: the join request retries until
// this node sees its own admission record, so a lost request or reply
// only delays the join.
func (m *Manager) Join(contact wire.NodeID) {
	if m.closed || m.Joined() {
		return
	}
	m.contact = contact
	m.leaving = false
	m.sendJoinReq()
}

func (m *Manager) sendJoinReq() {
	if m.closed || m.Joined() {
		return
	}
	m.buf = AppendJoinReq(m.buf[:0], m.self)
	m.env.Send(m.contact, m.buf)
	stopTimer(m.joinTimer)
	m.joinTimer = m.env.Clock().After(m.cfg.JoinRetry, m.sendJoinReq)
}

// Leave announces this node's graceful departure: its directory record
// advances to a departed epoch and floods. The caller withdraws LSAs and
// drains sessions; crash departures skip all of this and are handled by
// the survivors' link-state down-detection plus directory correction.
func (m *Manager) Leave() {
	if m.closed || m.leaving {
		return
	}
	m.leaving = true
	stopTimer(m.joinTimer)
	epoch := uint32(1)
	if cur, ok := m.dir.Get(m.self); ok {
		epoch = cur.Epoch + 1
	}
	rec := Record{ID: m.self, Epoch: epoch, Status: StatusLeft}
	if m.dir.Apply(rec) {
		m.stats.Leaves.Add(1)
		m.floodUpdate(rec)
	}
}

// InjectRecord plants a record directly into the directory, bypassing
// every protocol path — no flood, no refutation, no change callback. It
// exists for chaos campaigns and tests that corrupt a replica's state
// and then measure how long the detector/corrector sweeps take to
// converge the fleet back to a legal fixed point.
func (m *Manager) InjectRecord(r Record) bool { return m.dir.Apply(r) }

// HandlePacket processes a membership packet received from a neighbor.
func (m *Manager) HandlePacket(from wire.NodeID, p *wire.Packet) error {
	if m.closed || len(p.Payload) == 0 {
		return fmt.Errorf("membership: empty payload from %v: %w", from, ErrBadMessage)
	}
	src := p.Payload
	switch src[0] {
	case msgUpdate:
		if len(src) < 3 {
			return fmt.Errorf("membership: short update from %v: %w", from, ErrBadMessage)
		}
		count := int(binary.BigEndian.Uint16(src[1:]))
		recs, err := decodeRecords(src[3:], count)
		if err != nil {
			return err
		}
		changed := false
		for i := 0; i < count; i++ {
			if m.applyExternal(decodeRecord(recs[i*recLen:])) {
				changed = true
			}
		}
		if changed {
			// Reflooding only on change bounds update propagation: once
			// every replica holds the records, the flood dies out.
			m.env.Flood(p.Payload, from)
		}
	case msgDigest:
		if len(src) < 11 {
			return fmt.Errorf("membership: short digest from %v: %w", from, ErrBadMessage)
		}
		count := int(binary.BigEndian.Uint16(src[1:]))
		digest := binary.BigEndian.Uint64(src[3:])
		if count != m.dir.Len() || digest != m.dir.Digest() {
			m.stats.Inconsistencies.Add(1)
			m.noteCorrection()
			m.sendSync(from)
		}
	case msgJoinReq:
		if len(src) < 3 {
			return fmt.Errorf("membership: short join request from %v: %w", from, ErrBadMessage)
		}
		m.admit(wire.NodeID(binary.BigEndian.Uint16(src[1:])))
		m.sendSync(from)
	case msgSync:
		if len(src) < 11 {
			return fmt.Errorf("membership: short sync from %v: %w", from, ErrBadMessage)
		}
		theirDigest := binary.BigEndian.Uint64(src[1:])
		count := int(binary.BigEndian.Uint16(src[9:]))
		recs, err := decodeRecords(src[11:], count)
		if err != nil {
			return err
		}
		m.recs = m.recs[:0]
		for i := 0; i < count; i++ {
			r := decodeRecord(recs[i*recLen:])
			if m.applyExternal(r) {
				m.recs = append(m.recs, r)
			}
		}
		if len(m.recs) > 0 {
			// Propagate what the sync taught us beyond this one edge.
			m.floodUpdate(m.recs...)
		}
		// A remaining digest gap after the merge means we hold records
		// the sender lacks: sync back. The epoch order makes knowledge
		// strictly grow each exchange, so the ping-pong terminates at the
		// merged fixed point.
		if m.dir.Digest() != theirDigest {
			m.sendSync(from)
		}
	default:
		return fmt.Errorf("membership: kind %d from %v: %w", src[0], from, ErrBadMessage)
	}
	return nil
}

// admit records a joiner at the next epoch and floods the admission — the
// contact-node half of the join handshake. Re-admitting a current member
// is a no-op (request retries are idempotent).
func (m *Manager) admit(id wire.NodeID) {
	if id == 0 {
		return
	}
	epoch := uint32(1)
	if cur, ok := m.dir.Get(id); ok {
		if cur.Status == StatusJoined {
			return
		}
		epoch = cur.Epoch + 1
	}
	rec := Record{ID: id, Epoch: epoch, Status: StatusJoined}
	if m.dir.Apply(rec) {
		m.stats.Joins.Add(1)
		m.noteChange(rec)
		m.floodUpdate(rec)
	}
}

// applyExternal merges one record learned from the network, defending
// against records of this node's own departure, and reports whether the
// directory changed.
func (m *Manager) applyExternal(r Record) bool {
	if r.ID == m.self && r.Status == StatusLeft && !m.leaving {
		if cur, ok := m.dir.Get(m.self); !ok || r.supersedes(cur) {
			m.stats.Inconsistencies.Add(1)
			m.refuteSelf(r.Epoch)
		}
		return false
	}
	if !m.dir.Apply(r) {
		return false
	}
	switch r.Status {
	case StatusJoined:
		m.stats.Joins.Add(1)
	case StatusLeft:
		m.stats.Leaves.Add(1)
	}
	m.noteChange(r)
	return true
}

// refuteSelf is the self-defense corrector: a live node seeing a record
// of its own departure re-announces itself joined at the next epoch,
// which supersedes the bad record everywhere it spread.
func (m *Manager) refuteSelf(badEpoch uint32) {
	rec := Record{ID: m.self, Epoch: badEpoch + 1, Status: StatusJoined}
	if m.dir.Apply(rec) {
		m.stats.Corrections.Add(1)
		m.noteCorrection()
		m.floodUpdate(rec)
	}
}

func (m *Manager) noteChange(r Record) {
	if m.onChange != nil {
		m.onChange(r.ID, r.Status)
	}
}

func (m *Manager) noteCorrection() {
	m.lastCorrection = m.env.Clock().Now()
	m.corrected = true
}

func (m *Manager) floodUpdate(recs ...Record) {
	m.stats.UpdatesSent.Add(1)
	m.buf = AppendUpdate(m.buf[:0], recs...)
	m.env.Flood(m.buf, 0)
}

func (m *Manager) sendSync(to wire.NodeID) {
	m.stats.SyncsSent.Add(1)
	m.buf = AppendSync(m.buf[:0], m.dir)
	m.env.Send(to, m.buf)
}

func (m *Manager) scheduleSweep() {
	m.sweep = m.env.Clock().After(m.cfg.SweepInterval, func() {
		if m.closed {
			return
		}
		m.Sweep()
		m.scheduleSweep()
	})
}

// Sweep runs one detector/corrector round synchronously: the self-defense
// predicate, the stale-link predicate over the topology view, and an
// anti-entropy digest probe to every neighbor. At a legitimate fixed
// point — directory and view consistent, replicas equal — a sweep flags
// nothing, corrects nothing, and allocates nothing; the digest probes it
// sends are answered only by divergent neighbors.
func (m *Manager) Sweep() {
	m.stats.DetectorSweeps.Add(1)
	// A planted record of our own departure (corrupted-state injection)
	// may sit in the directory without ever arriving as a message; the
	// sweep refutes it just as the merge path would.
	if cur, ok := m.dir.Get(m.self); ok && cur.Status == StatusLeft && !m.leaving {
		m.stats.Inconsistencies.Add(1)
		m.refuteSelf(cur.Epoch)
	}
	if m.view != nil {
		m.findings = Detect(m.view, m.dir, m.findings[:0])
		for _, f := range m.findings {
			m.stats.Inconsistencies.Add(1)
			if m.onFinding != nil {
				m.onFinding(f)
				m.stats.Corrections.Add(1)
				m.noteCorrection()
			}
		}
	}
	if m.onReconcile != nil {
		if n := m.onReconcile(); n > 0 {
			m.stats.Inconsistencies.Add(uint64(n))
			m.stats.Corrections.Add(uint64(n))
			m.noteCorrection()
		}
	}
	if m.dir.Len() > 0 {
		m.buf = AppendDigest(m.buf[:0], m.dir.Len(), m.dir.Digest())
		for _, nb := range m.env.Neighbors() {
			m.stats.DigestsSent.Add(1)
			m.env.Send(nb, m.buf)
		}
	}
}

func stopTimer(t sim.Timer) {
	if t != nil {
		t.Stop()
	}
}

package membership

import (
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// FindingKind classifies one local inconsistency flagged by the detector.
type FindingKind uint8

const (
	// FindingStaleLink is a link the view considers up although an
	// endpoint is not a current member — a stale route to a departed (or
	// never-admitted) node. The corrector downs the link locally: every
	// node runs the same predicate over converging replicas, so the fleet
	// reaches the same repaired topology without coordination.
	FindingStaleLink FindingKind = iota + 1
	// FindingSelfDeparted is a directory record claiming this live node
	// left the overlay. The corrector refutes it by re-announcing the node
	// joined at the record's epoch plus one; without refutation a
	// corrupted departure record would win every merge and propagate
	// fleet-wide.
	FindingSelfDeparted
	// FindingDigestDivergence is a neighbor whose directory fingerprint
	// disagrees with ours. The corrector exchanges full directories; the
	// epoch order makes the merge converge both replicas.
	FindingDigestDivergence
)

// String returns a short mnemonic for the finding kind.
func (k FindingKind) String() string {
	switch k {
	case FindingStaleLink:
		return "stale-link"
	case FindingSelfDeparted:
		return "self-departed"
	case FindingDigestDivergence:
		return "digest-divergence"
	default:
		return "unknown"
	}
}

// Finding is one flagged inconsistency.
type Finding struct {
	// Kind classifies the inconsistency.
	Kind FindingKind
	// Link is the offending link for FindingStaleLink.
	Link wire.LinkID
	// Node is the implicated node: the non-member endpoint of a stale
	// link, or the divergent neighbor.
	Node wire.NodeID
}

// Detect runs the detector's local topology predicate over a view and a
// directory, appending a finding for every link the view considers up
// whose endpoint is not a current member. On a legal topology — every up
// link joining two joined members — it returns buf unchanged (the
// no-false-positives property), and it allocates nothing beyond buf's
// growth. An empty directory detects nothing: a joiner that has not yet
// synced has no basis to dispute its optimistic bootstrap view.
func Detect(v *topology.View, d *Directory, buf []Finding) []Finding {
	if d.Len() == 0 {
		return buf
	}
	for id := range v.State {
		if !v.State[id].Up {
			continue
		}
		l, ok := v.G.Link(wire.LinkID(id))
		if !ok {
			// A removed link the view still routes over.
			buf = append(buf, Finding{Kind: FindingStaleLink, Link: wire.LinkID(id)})
			continue
		}
		if !d.IsMember(l.A) {
			buf = append(buf, Finding{Kind: FindingStaleLink, Link: l.ID, Node: l.A})
		} else if !d.IsMember(l.B) {
			buf = append(buf, Finding{Kind: FindingStaleLink, Link: l.ID, Node: l.B})
		}
	}
	return buf
}

package membership

import (
	"math/rand/v2"
	"testing"
	"time"

	"sonet/internal/sim"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// --- directory -------------------------------------------------------------

// TestDirectoryMergeOrder covers the record order: higher epoch wins,
// departure beats admission at equal epoch, and losers leave the replica
// untouched.
func TestDirectoryMergeOrder(t *testing.T) {
	d := NewDirectory()
	if !d.Apply(Record{ID: 1, Epoch: 1, Status: StatusJoined}) {
		t.Fatal("fresh record rejected")
	}
	if d.Apply(Record{ID: 1, Epoch: 1, Status: StatusJoined}) {
		t.Fatal("duplicate record accepted")
	}
	if !d.Apply(Record{ID: 1, Epoch: 1, Status: StatusLeft}) {
		t.Fatal("equal-epoch departure must beat admission")
	}
	if d.Apply(Record{ID: 1, Epoch: 1, Status: StatusJoined}) {
		t.Fatal("equal-epoch admission must not beat departure")
	}
	if !d.Apply(Record{ID: 1, Epoch: 2, Status: StatusJoined}) {
		t.Fatal("higher-epoch admission rejected")
	}
	if d.Apply(Record{ID: 1, Epoch: 1, Status: StatusLeft}) {
		t.Fatal("stale departure accepted")
	}
	if !d.IsMember(1) {
		t.Fatal("node 1 should be joined at epoch 2")
	}
	if d.Apply(Record{ID: 0, Epoch: 5, Status: StatusJoined}) || d.Apply(Record{ID: 2, Epoch: 1}) {
		t.Fatal("malformed records accepted")
	}
}

// TestDirectoryConvergence is the semilattice property behind
// anti-entropy: applying the same record multiset in any order yields the
// same replica, members, and digest.
func TestDirectoryConvergence(t *testing.T) {
	recs := []Record{
		{ID: 1, Epoch: 1, Status: StatusJoined},
		{ID: 1, Epoch: 2, Status: StatusLeft},
		{ID: 1, Epoch: 3, Status: StatusJoined},
		{ID: 2, Epoch: 1, Status: StatusJoined},
		{ID: 2, Epoch: 1, Status: StatusLeft},
		{ID: 3, Epoch: 7, Status: StatusJoined},
		{ID: 4, Epoch: 2, Status: StatusLeft},
	}
	ref := NewDirectory()
	for _, r := range recs {
		ref.Apply(r)
	}
	rng := rand.New(rand.NewPCG(99, 7))
	for trial := 0; trial < 50; trial++ {
		d := NewDirectory()
		perm := rng.Perm(len(recs))
		for _, i := range perm {
			d.Apply(recs[i])
		}
		// Re-apply a random half: idempotence.
		for _, i := range perm[:len(perm)/2] {
			d.Apply(recs[i])
		}
		if d.Digest() != ref.Digest() {
			t.Fatalf("trial %d: digest %x != %x after order %v", trial, d.Digest(), ref.Digest(), perm)
		}
		if d.NumMembers() != ref.NumMembers() || d.Len() != ref.Len() {
			t.Fatalf("trial %d: members %d/%d != %d/%d", trial,
				d.NumMembers(), d.Len(), ref.NumMembers(), ref.Len())
		}
	}
	want := []wire.NodeID{1, 3}
	got := ref.Members(nil)
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("members %v, want %v", got, want)
	}
}

// --- codec -----------------------------------------------------------------

// TestCodecRoundTrip covers every message encoder against the decode
// paths HandlePacket uses.
func TestCodecRoundTrip(t *testing.T) {
	in := []Record{
		{ID: 7, Epoch: 0x01020304, Status: StatusJoined},
		{ID: 0x0102, Epoch: 9, Status: StatusLeft},
	}
	buf := AppendUpdate(nil, in...)
	if buf[0] != msgUpdate {
		t.Fatalf("kind %d", buf[0])
	}
	recs, err := decodeRecords(buf[3:], len(in))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range in {
		if got := decodeRecord(recs[i*recLen:]); got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := decodeRecords(buf[3:], len(in)+1); err == nil {
		t.Fatal("short record region accepted")
	}

	d := NewDirectory()
	for _, r := range in {
		d.Apply(r)
	}
	sync := AppendSync(nil, d)
	if sync[0] != msgSync || len(sync) != 11+d.Len()*recLen {
		t.Fatalf("sync layout: kind=%d len=%d", sync[0], len(sync))
	}
	dig := AppendDigest(nil, d.Len(), d.Digest())
	if dig[0] != msgDigest || len(dig) != 11 {
		t.Fatalf("digest layout: kind=%d len=%d", dig[0], len(dig))
	}
	jr := AppendJoinReq(nil, 0x0304)
	if jr[0] != msgJoinReq || len(jr) != 3 || jr[1] != 3 || jr[2] != 4 {
		t.Fatalf("join-req layout: % x", jr)
	}
}

// --- detector --------------------------------------------------------------

// legalWorld builds a random connected topology with every endpoint
// joined — a legal fixed point by construction.
func legalWorld(rng *rand.Rand, n int) (*topology.View, *Directory) {
	g := topology.NewGraph()
	d := NewDirectory()
	for i := 1; i <= n; i++ {
		g.AddNode(wire.NodeID(i))
		d.Apply(Record{ID: wire.NodeID(i), Epoch: uint32(1 + rng.IntN(5)), Status: StatusJoined})
	}
	for i := 2; i <= n; i++ {
		peer := 1 + rng.IntN(i-1)
		if _, err := g.AddLink(wire.NodeID(i), wire.NodeID(peer), time.Millisecond); err != nil {
			panic(err)
		}
	}
	v := topology.NewView(g)
	for id := range v.State {
		v.SetUp(wire.LinkID(id), rng.IntN(4) > 0) // some links legitimately down
	}
	return v, d
}

// TestDetectorNoFalsePositives is the detector's soundness property: on
// randomized legal topologies — every link joins two current members —
// it must flag nothing, whatever the up/down pattern.
func TestDetectorNoFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewPCG(4242, 1))
	for trial := 0; trial < 200; trial++ {
		v, d := legalWorld(rng, 2+rng.IntN(30))
		if fs := Detect(v, d, nil); len(fs) != 0 {
			t.Fatalf("trial %d: %d findings on a legal topology: %+v", trial, len(fs), fs)
		}
	}
}

// TestDetectorFlagsStaleLinks is the matching completeness case: every up
// link touching a departed member is flagged, exactly once, naming the
// departed endpoint.
func TestDetectorFlagsStaleLinks(t *testing.T) {
	rng := rand.New(rand.NewPCG(777, 2))
	for trial := 0; trial < 100; trial++ {
		v, d := legalWorld(rng, 4+rng.IntN(20))
		gone := wire.NodeID(1 + rng.IntN(d.NumMembers()))
		rec, _ := d.Get(gone)
		d.Apply(Record{ID: gone, Epoch: rec.Epoch + 1, Status: StatusLeft})
		want := 0
		for id := range v.State {
			if !v.State[id].Up {
				continue
			}
			l, _ := v.G.Link(wire.LinkID(id))
			if l.A == gone || l.B == gone {
				want++
			}
		}
		fs := Detect(v, d, nil)
		if len(fs) != want {
			t.Fatalf("trial %d: %d findings, want %d", trial, len(fs), want)
		}
		for _, f := range fs {
			if f.Kind != FindingStaleLink || f.Node != gone {
				t.Fatalf("trial %d: bad finding %+v", trial, f)
			}
		}
	}
}

// TestDetectorEmptyDirectorySilent: a joiner before its first sync has no
// basis to dispute its bootstrap view.
func TestDetectorEmptyDirectorySilent(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	v, _ := legalWorld(rng, 8)
	if fs := Detect(v, NewDirectory(), nil); len(fs) != 0 {
		t.Fatalf("empty directory produced findings: %+v", fs)
	}
}

// --- manager fabric --------------------------------------------------------

// fabric wires managers over a virtual-time message bus with a fixed
// per-hop delay, so protocol exchanges run deterministically.
type fabric struct {
	sched *sim.Scheduler
	mgrs  map[wire.NodeID]*Manager
	envs  map[wire.NodeID]*fabricEnv
}

type fabricEnv struct {
	f    *fabric
	self wire.NodeID
	nbrs []wire.NodeID
}

func (e *fabricEnv) Clock() sim.Clock            { return e.f.sched }
func (e *fabricEnv) Neighbors() []wire.NodeID    { return e.nbrs }
func (e *fabricEnv) Send(to wire.NodeID, p []byte) {
	cp := append([]byte(nil), p...)
	from := e.self
	e.f.sched.After(time.Millisecond, func() {
		if m := e.f.mgrs[to]; m != nil {
			_ = m.HandlePacket(from, &wire.Packet{Payload: cp})
		}
	})
}
func (e *fabricEnv) Flood(p []byte, except wire.NodeID) {
	for _, nb := range e.nbrs {
		if nb != except {
			e.Send(nb, p)
		}
	}
}

// newFabric builds one manager per node over the given adjacency, all
// sharing cfg (Seed included).
func newFabric(seed uint64, adj map[wire.NodeID][]wire.NodeID, cfg Config) *fabric {
	f := &fabric{
		sched: sim.NewScheduler(seed),
		mgrs:  make(map[wire.NodeID]*Manager),
		envs:  make(map[wire.NodeID]*fabricEnv),
	}
	for id, nbrs := range adj {
		env := &fabricEnv{f: f, self: id, nbrs: nbrs}
		f.envs[id] = env
		f.mgrs[id] = NewManager(env, id, cfg)
	}
	return f
}

func (f *fabric) startAll() {
	for _, m := range f.mgrs {
		m.Start()
	}
}

func (f *fabric) converged() (uint64, bool) {
	var ref uint64
	first := true
	for _, m := range f.mgrs {
		d := m.Directory().Digest()
		if first {
			ref, first = d, false
		} else if d != ref {
			return 0, false
		}
	}
	return ref, true
}

func line4() map[wire.NodeID][]wire.NodeID {
	return map[wire.NodeID][]wire.NodeID{
		1: {2}, 2: {1, 3}, 3: {2, 4}, 4: {3},
	}
}

// TestJoinAdmission covers the join handshake end to end: a blank joiner
// requests admission through a contact, learns the full directory from
// the sync reply, and the admission floods to every replica.
func TestJoinAdmission(t *testing.T) {
	cfg := Config{SweepInterval: 50 * time.Millisecond, JoinRetry: 20 * time.Millisecond,
		Seed: []wire.NodeID{1, 2, 3}}
	adj := map[wire.NodeID][]wire.NodeID{1: {2}, 2: {1, 3}, 3: {2}}
	f := newFabric(1, adj, cfg)
	// Node 4 joins through contact 3 with an empty directory.
	joiner := NewManager(f.addJoiner(4, []wire.NodeID{3}), 4,
		Config{SweepInterval: cfg.SweepInterval, JoinRetry: cfg.JoinRetry})
	f.mgrs[4] = joiner
	f.envs[3].nbrs = []wire.NodeID{2, 4}
	f.startAll()
	joiner.Join(3)
	f.sched.RunFor(2 * time.Second)
	for id, m := range f.mgrs {
		if !m.IsMember(4) {
			t.Fatalf("node %d does not see the joiner as a member", id)
		}
	}
	if !joiner.Joined() {
		t.Fatal("joiner does not consider itself admitted")
	}
	if joiner.Directory().NumMembers() != 4 {
		t.Fatalf("joiner learned %d members, want 4", joiner.Directory().NumMembers())
	}
	if _, ok := f.converged(); !ok {
		t.Fatal("replicas did not converge after the join")
	}
}

// addJoiner registers a fresh env for a node that was not part of the
// fabric's initial adjacency.
func (f *fabric) addJoiner(self wire.NodeID, nbrs []wire.NodeID) *fabricEnv {
	env := &fabricEnv{f: f, self: self, nbrs: nbrs}
	f.envs[self] = env
	return env
}

// TestGracefulLeave covers departure: the leaver's record advances to
// Left everywhere, and its own replica never refutes it.
func TestGracefulLeave(t *testing.T) {
	cfg := Config{SweepInterval: 50 * time.Millisecond, Seed: []wire.NodeID{1, 2, 3, 4}}
	f := newFabric(2, line4(), cfg)
	f.startAll()
	f.mgrs[4].Leave()
	f.sched.RunFor(2 * time.Second)
	for id, m := range f.mgrs {
		if m.IsMember(4) {
			t.Fatalf("node %d still counts the leaver as a member", id)
		}
		if m.Directory().NumMembers() != 3 {
			t.Fatalf("node %d sees %d members, want 3", id, m.Directory().NumMembers())
		}
	}
}

// TestSelfDefenseRefutation covers the corrector's self-defense rule: a
// corrupted departure record planted at a remote replica propagates, the
// victim refutes at a higher epoch, and the fleet converges back to full
// membership — from the message path and from the sweep path both.
func TestSelfDefenseRefutation(t *testing.T) {
	cfg := Config{SweepInterval: 50 * time.Millisecond, Seed: []wire.NodeID{1, 2, 3, 4}}
	f := newFabric(3, line4(), cfg)
	f.startAll()
	// Remote plant: node 1 believes node 4 left.
	f.mgrs[1].InjectRecord(Record{ID: 4, Epoch: 2, Status: StatusLeft})
	// Local plant: node 3's own record says it left (sweep path).
	f.mgrs[3].InjectRecord(Record{ID: 3, Epoch: 9, Status: StatusLeft})
	f.sched.RunFor(3 * time.Second)
	for id, m := range f.mgrs {
		if m.Directory().NumMembers() != 4 {
			t.Fatalf("node %d sees %d members after refutation, want 4", id, m.Directory().NumMembers())
		}
	}
	if r, _ := f.mgrs[1].Directory().Get(4); r.Status != StatusJoined || r.Epoch < 3 {
		t.Fatalf("refutation did not supersede the planted record: %+v", r)
	}
	if r, _ := f.mgrs[2].Directory().Get(3); r.Status != StatusJoined || r.Epoch < 10 {
		t.Fatalf("sweep-path refutation did not spread: %+v", r)
	}
	if f.mgrs[3].Stats().Corrections == 0 {
		t.Fatal("victim recorded no correction")
	}
}

// TestSyncConvergesArbitraryDivergence is the anti-entropy property: two
// replicas initialized with arbitrary disjoint record sets converge to
// the identical supremum within a bounded number of sweep rounds.
func TestSyncConvergesArbitraryDivergence(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 20; trial++ {
		cfg := Config{SweepInterval: 50 * time.Millisecond}
		f := newFabric(uint64(trial), map[wire.NodeID][]wire.NodeID{1: {2}, 2: {1}}, cfg)
		for id := wire.NodeID(1); id <= 2; id++ {
			for n := 0; n < 1+rng.IntN(8); n++ {
				f.mgrs[id].InjectRecord(Record{
					ID:     wire.NodeID(3 + rng.IntN(10)),
					Epoch:  uint32(1 + rng.IntN(4)),
					Status: Status(1 + rng.IntN(2)),
				})
			}
			// Both replicas know themselves and each other.
			f.mgrs[id].InjectRecord(Record{ID: 1, Epoch: 1, Status: StatusJoined})
			f.mgrs[id].InjectRecord(Record{ID: 2, Epoch: 1, Status: StatusJoined})
		}
		f.startAll()
		f.sched.RunFor(time.Second)
		if _, ok := f.converged(); !ok {
			t.Fatalf("trial %d: replicas did not converge: %x vs %x", trial,
				f.mgrs[1].Directory().Digest(), f.mgrs[2].Directory().Digest())
		}
	}
}

// --- fixed point and allocation budget -------------------------------------

// quietEnv counts messages by kind without keeping them, so fixed-point
// sweeps can be audited allocation-free.
type quietEnv struct {
	clock    sim.Clock
	nbrs     []wire.NodeID
	digests  int
	syncs    int
	updates  int
	joinReqs int
}

func (e *quietEnv) Clock() sim.Clock         { return e.clock }
func (e *quietEnv) Neighbors() []wire.NodeID { return e.nbrs }
func (e *quietEnv) Flood(p []byte, _ wire.NodeID) {
	e.count(p)
}
func (e *quietEnv) Send(_ wire.NodeID, p []byte) {
	e.count(p)
}
func (e *quietEnv) count(p []byte) {
	switch p[0] {
	case msgDigest:
		e.digests++
	case msgSync:
		e.syncs++
	case msgUpdate:
		e.updates++
	case msgJoinReq:
		e.joinReqs++
	}
}

// TestSweepSilentAtFixedPoint: at a legitimate fixed point a sweep sends
// only digest probes — no syncs, updates, corrections, or inconsistency
// counts.
func TestSweepSilentAtFixedPoint(t *testing.T) {
	env := &quietEnv{clock: sim.NewScheduler(1), nbrs: []wire.NodeID{2, 3}}
	m := NewManager(env, 1, Config{Seed: []wire.NodeID{1, 2, 3}})
	g := topology.NewGraph()
	for i := 1; i <= 3; i++ {
		g.AddNode(wire.NodeID(i))
	}
	if _, err := g.AddLink(1, 2, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(2, 3, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	v := topology.NewView(g)
	for id := range v.State {
		v.SetUp(wire.LinkID(id), true)
	}
	m.SetView(v)
	for i := 0; i < 10; i++ {
		m.Sweep()
	}
	if env.syncs != 0 || env.updates != 0 {
		t.Fatalf("fixed-point sweeps sent %d syncs, %d updates", env.syncs, env.updates)
	}
	if env.digests != 10*len(env.nbrs) {
		t.Fatalf("expected %d digest probes, got %d", 10*len(env.nbrs), env.digests)
	}
	s := m.Stats()
	if s.Inconsistencies != 0 || s.Corrections != 0 {
		t.Fatalf("fixed-point sweeps flagged %d inconsistencies, %d corrections",
			s.Inconsistencies, s.Corrections)
	}
}

// TestMembershipSweepAllocBudget is the CI alloc gate: a steady-state
// detector/corrector sweep — predicates, digest probes, cached
// fingerprint — must allocate nothing.
func TestMembershipSweepAllocBudget(t *testing.T) {
	env := &quietEnv{clock: sim.NewScheduler(1), nbrs: []wire.NodeID{2, 3}}
	m := NewManager(env, 1, Config{Seed: []wire.NodeID{1, 2, 3}})
	g := topology.NewGraph()
	for i := 1; i <= 3; i++ {
		g.AddNode(wire.NodeID(i))
	}
	if _, err := g.AddLink(1, 2, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	v := topology.NewView(g)
	v.SetUp(v.G.Links()[0].ID, true)
	m.SetView(v)
	m.SetOnReconcile(func() int { return 0 })
	m.Sweep() // warm the scratch buffers and digest cache
	if allocs := testing.AllocsPerRun(200, m.Sweep); allocs != 0 {
		t.Fatalf("steady-state sweep allocates %.1f allocs/op, budget is 0", allocs)
	}
}

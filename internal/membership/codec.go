package membership

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sonet/internal/wire"
)

// ErrBadMessage reports a malformed membership payload.
var ErrBadMessage = errors.New("malformed membership message")

// Membership message kinds, carried in the first payload byte of a
// wire.PTMembership packet.
const (
	// msgUpdate floods a batch of directory records (joins, departures,
	// refutations). Receivers merge and reflood only when something
	// changed, so update propagation self-limits.
	msgUpdate = 1
	// msgDigest probes a neighbor with the sender's directory fingerprint;
	// a mismatch triggers a full sync in response (anti-entropy).
	msgDigest = 2
	// msgJoinReq asks a contact node to admit the sender to the overlay.
	msgJoinReq = 3
	// msgSync carries the sender's full directory plus its digest, so the
	// receiver can both merge and decide whether to sync back.
	msgSync = 4
)

// recLen is the encoded size of one record: id(2) epoch(4) status(1).
const recLen = 7

func appendRecord(buf []byte, r Record) []byte {
	var e [recLen]byte
	binary.BigEndian.PutUint16(e[0:], uint16(r.ID))
	binary.BigEndian.PutUint32(e[2:], r.Epoch)
	e[6] = byte(r.Status)
	return append(buf, e[:]...)
}

func decodeRecord(src []byte) Record {
	return Record{
		ID:     wire.NodeID(binary.BigEndian.Uint16(src[0:])),
		Epoch:  binary.BigEndian.Uint32(src[2:]),
		Status: Status(src[6]),
	}
}

// AppendUpdate encodes an update flood: kind(1) count(2) records.
func AppendUpdate(buf []byte, recs ...Record) []byte {
	buf = append(buf, msgUpdate)
	var c [2]byte
	binary.BigEndian.PutUint16(c[:], uint16(len(recs)))
	buf = append(buf, c[:]...)
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return buf
}

// AppendDigest encodes an anti-entropy probe: kind(1) count(2) digest(8).
func AppendDigest(buf []byte, count int, digest uint64) []byte {
	var e [11]byte
	e[0] = msgDigest
	binary.BigEndian.PutUint16(e[1:], uint16(count))
	binary.BigEndian.PutUint64(e[3:], digest)
	return append(buf, e[:]...)
}

// AppendJoinReq encodes an admission request: kind(1) joiner(2).
func AppendJoinReq(buf []byte, joiner wire.NodeID) []byte {
	var e [3]byte
	e[0] = msgJoinReq
	binary.BigEndian.PutUint16(e[1:], uint16(joiner))
	return append(buf, e[:]...)
}

// AppendSync encodes the full directory: kind(1) digest(8) count(2)
// records.
func AppendSync(buf []byte, d *Directory) []byte {
	buf = append(buf, msgSync)
	var h [10]byte
	binary.BigEndian.PutUint64(h[0:], d.Digest())
	binary.BigEndian.PutUint16(h[8:], uint16(d.Len()))
	buf = append(buf, h[:]...)
	d.Each(func(r Record) { buf = appendRecord(buf, r) })
	return buf
}

// decodeRecords validates and returns the record region holding count
// records.
func decodeRecords(src []byte, count int) ([]byte, error) {
	if len(src) < count*recLen {
		return nil, fmt.Errorf("membership: %d records in %d bytes: %w", count, len(src), ErrBadMessage)
	}
	return src[:count*recLen], nil
}

// Package membership implements dynamic overlay membership with
// self-stabilizing topology maintenance. A node joins the running overlay
// through any existing contact node (join request → admission → flooded
// directory update → LSA-announced link establishment), leaves gracefully
// (departure record + LSA withdrawal) or by crash (link-state
// down-detection fires on its own), and the control plane converges back
// to the intended topology from arbitrary corrupted state.
//
// The stabilization design follows the detector/corrector decomposition of
// Berns' general framework for self-stabilizing overlay networks: a
// periodic detector evaluates purely local predicates against the node's
// membership directory and topology view, and a corrector repairs every
// flagged inconsistency with a local action whose effects flood outward.
// Directory records are epoch-versioned — higher epoch wins, departure
// beats admission at equal epoch, and a live node refutes a record of its
// own departure at the record's epoch plus one — so merges are commutative,
// associative, and idempotent, and anti-entropy digest gossip between
// neighbors drives every pair of directories to the join-semilattice
// supremum within a bounded number of exchange rounds (one per overlay
// hop), in the spirit of Götte & Scheideler's underlay-aware
// self-stabilization.
package membership

import (
	"sort"

	"sonet/internal/wire"
)

// Status is a member's lifecycle state in the directory.
type Status uint8

const (
	// StatusJoined marks a current overlay member.
	StatusJoined Status = 1
	// StatusLeft marks a departed member. Departure records are retained
	// (not deleted) so a stale Joined record arriving later cannot
	// resurrect a gone node; a genuine rejoin supersedes at a higher epoch.
	StatusLeft Status = 2
)

// String returns a short mnemonic for the status.
func (s Status) String() string {
	switch s {
	case StatusJoined:
		return "joined"
	case StatusLeft:
		return "left"
	default:
		return "unknown"
	}
}

// Record is one member's epoch-versioned directory entry.
type Record struct {
	// ID is the member node.
	ID wire.NodeID
	// Epoch versions the record: each admission or departure of the node
	// bumps it, and merges keep the highest.
	Epoch uint32
	// Status is the member's state at this epoch.
	Status Status
}

// supersedes reports whether r wins a merge against cur: strictly higher
// epoch always wins; at equal epoch a departure beats an admission (a
// joined record can only be refuted at a higher epoch, which the
// self-defense rule provides for live nodes).
func (r Record) supersedes(cur Record) bool {
	if r.Epoch != cur.Epoch {
		return r.Epoch > cur.Epoch
	}
	return r.Status == StatusLeft && cur.Status == StatusJoined
}

// Directory is one node's replica of the overlay member list. Merging
// records via Apply is commutative, associative, and idempotent, so any
// gossip order converges every replica to the same fixed point. All
// methods must be called from the owning node's executor.
type Directory struct {
	recs map[wire.NodeID]Record
	// order lists record IDs ascending for deterministic iteration.
	order []wire.NodeID
	// version bumps on every accepted record; it keys the digest cache.
	version uint64
	// members counts records with StatusJoined.
	members int

	digest    uint64
	digestVer uint64
	digestOK  bool
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{recs: make(map[wire.NodeID]Record)}
}

// Len returns the number of records (joined and left).
func (d *Directory) Len() int { return len(d.recs) }

// NumMembers returns the number of joined members.
func (d *Directory) NumMembers() int { return d.members }

// Version returns a counter bumped on every accepted record.
func (d *Directory) Version() uint64 { return d.version }

// Get returns the record for id, if any.
func (d *Directory) Get(id wire.NodeID) (Record, bool) {
	r, ok := d.recs[id]
	return r, ok
}

// IsMember reports whether id is currently joined.
func (d *Directory) IsMember(id wire.NodeID) bool {
	r, ok := d.recs[id]
	return ok && r.Status == StatusJoined
}

// Apply merges one record, keeping the winner under the epoch order, and
// reports whether the directory changed.
func (d *Directory) Apply(r Record) bool {
	if r.ID == 0 || r.Status == 0 {
		return false
	}
	cur, ok := d.recs[r.ID]
	if ok && !r.supersedes(cur) {
		return false
	}
	if !ok {
		i := sort.Search(len(d.order), func(i int) bool { return d.order[i] >= r.ID })
		d.order = append(d.order, 0)
		copy(d.order[i+1:], d.order[i:])
		d.order[i] = r.ID
	} else if cur.Status == StatusJoined {
		d.members--
	}
	if r.Status == StatusJoined {
		d.members++
	}
	d.recs[r.ID] = r
	d.version++
	return true
}

// Each calls fn for every record in ascending ID order.
func (d *Directory) Each(fn func(Record)) {
	for _, id := range d.order {
		fn(d.recs[id])
	}
}

// Members appends the joined member IDs in ascending order to buf.
func (d *Directory) Members(buf []wire.NodeID) []wire.NodeID {
	for _, id := range d.order {
		if d.recs[id].Status == StatusJoined {
			buf = append(buf, id)
		}
	}
	return buf
}

// Digest returns an order-insensitive FNV-1a fingerprint of the full
// record set. Two directories with equal digests hold the same records
// (modulo hash collision); the digest is cached and recomputed only when
// the directory changed, so steady-state anti-entropy probes are free.
func (d *Directory) Digest() uint64 {
	if d.digestOK && d.digestVer == d.version {
		return d.digest
	}
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, id := range d.order {
		r := d.recs[id]
		h = (h ^ uint64(r.ID&0xff)) * prime
		h = (h ^ uint64(r.ID>>8)) * prime
		h = (h ^ uint64(r.Epoch&0xff)) * prime
		h = (h ^ uint64((r.Epoch>>8)&0xff)) * prime
		h = (h ^ uint64((r.Epoch>>16)&0xff)) * prime
		h = (h ^ uint64(r.Epoch>>24)) * prime
		h = (h ^ uint64(r.Status)) * prime
	}
	d.digest = h
	d.digestVer = d.version
	d.digestOK = true
	return h
}

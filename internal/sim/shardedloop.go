package sim

import "runtime"

// ShardedLoop runs N independent real-time Loops, one per data-plane
// shard. Each shard keeps the single-threaded execution model protocol
// code is written against — a flow's work always runs on its shard's
// loop — while distinct shards run on distinct goroutines and therefore
// on distinct cores. Shard 0 is the control shard by convention: the
// overlay node's protocol state machines live there, and the ShardedLoop
// itself implements Executor/RunnerExecutor by delegating to it, so code
// written for one Loop (clocks, session managers, client dispatch) works
// unchanged against a ShardedLoop.
type ShardedLoop struct {
	loops []*Loop
}

var _ RunnerExecutor = (*ShardedLoop)(nil)

// DefaultShards is the shard count used when a configuration leaves it
// unset: one shard per available core, capped at 8 — past that the
// kernel-crossing work a daemon shards (recvmmsg, sendmmsg, frame
// copies) stops being the bottleneck.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewShardedLoop starts n loops; n <= 0 means DefaultShards().
func NewShardedLoop(n int) *ShardedLoop {
	if n <= 0 {
		n = DefaultShards()
	}
	s := &ShardedLoop{loops: make([]*Loop, n)}
	for i := range s.loops {
		s.loops[i] = NewLoop()
	}
	return s
}

// NumShards returns the shard count.
func (s *ShardedLoop) NumShards() int { return len(s.loops) }

// Shard returns shard i's loop.
func (s *ShardedLoop) Shard(i int) *Loop { return s.loops[i] }

// Executors returns the per-shard executors in shard order (a fresh
// slice; the caller may keep it).
func (s *ShardedLoop) Executors() []Executor {
	out := make([]Executor, len(s.loops))
	for i, l := range s.loops {
		out[i] = l
	}
	return out
}

// Post enqueues fn on the control shard (shard 0).
func (s *ShardedLoop) Post(fn func()) { s.loops[0].Post(fn) }

// PostRunner enqueues r on the control shard (shard 0).
func (s *ShardedLoop) PostRunner(r Runner) { s.loops[0].PostRunner(r) }

// PostTo enqueues fn on shard i.
func (s *ShardedLoop) PostTo(i int, fn func()) { s.loops[i].Post(fn) }

// PostRunnerTo enqueues r on shard i.
func (s *ShardedLoop) PostRunnerTo(i int, r Runner) { s.loops[i].PostRunner(r) }

// Close stops every shard loop after its already-queued work runs, and
// waits for all of them to exit.
func (s *ShardedLoop) Close() {
	for _, l := range s.loops {
		l.Close()
	}
}

package sim

import (
	"sync"
	"testing"
	"time"
)

func TestLoopRunsPostedClosuresInOrder(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	for i := 0; i < 100; i++ {
		i := i
		l.Post(func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			if i == 99 {
				close(done)
			}
		})
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("closures ran out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestLoopCloseDrainsQueue(t *testing.T) {
	l := NewLoop()
	ran := 0
	for i := 0; i < 10; i++ {
		l.Post(func() { ran++ })
	}
	l.Close()
	if ran != 10 {
		t.Fatalf("ran = %d, want 10", ran)
	}
}

func TestLoopPostAfterCloseIsDropped(t *testing.T) {
	l := NewLoop()
	l.Close()
	l.Post(func() { t.Error("closure ran after Close") })
	time.Sleep(10 * time.Millisecond)
}

func TestRealtimeClockFiresTimer(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	c := NewRealtimeClock(l)
	done := make(chan time.Duration, 1)
	c.After(5*time.Millisecond, func() { done <- c.Now() })
	select {
	case at := <-done:
		if at < 5*time.Millisecond {
			t.Fatalf("timer fired early at %v", at)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestRealtimeClockStopPreventsCallback(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	c := NewRealtimeClock(l)
	fired := make(chan struct{}, 1)
	tm := c.After(50*time.Millisecond, func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(120 * time.Millisecond):
	}
}

func TestRealtimeClockNowAdvances(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	c := NewRealtimeClock(l)
	a := c.Now()
	time.Sleep(5 * time.Millisecond)
	if b := c.Now(); b <= a {
		t.Fatalf("Now() did not advance: %v then %v", a, b)
	}
}

// TestRealtimeClockNowMonotonicUnderEpochSkew simulates the wall clock
// being stepped backwards under the clock (an NTP adjustment): the epoch is
// moved into the future with its monotonic reading stripped, so raw
// time.Since would report a large negative elapsed time. Now must clamp
// instead of running backwards.
func TestRealtimeClockNowMonotonicUnderEpochSkew(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	c := NewRealtimeClock(l)
	before := c.Now()
	if before < 0 {
		t.Fatalf("Now() = %v before skew, want >= 0", before)
	}
	// Round(0) strips the monotonic reading; the future epoch makes the
	// wall-clock fallback negative.
	c.epoch = time.Now().Add(time.Hour).Round(0)
	after := c.Now()
	if after < before {
		t.Fatalf("Now() ran backwards across epoch skew: %v then %v", before, after)
	}
	// Subsequent readings must stay non-decreasing too.
	prev := after
	for i := 0; i < 10; i++ {
		time.Sleep(time.Millisecond)
		cur := c.Now()
		if cur < prev {
			t.Fatalf("Now() ran backwards: %v then %v", prev, cur)
		}
		prev = cur
	}
}

// TestRealtimeClockNowNeverNegative covers a freshly created clock whose
// epoch lost its monotonic reading and sits ahead of the wall clock: the
// first reading must already be clamped.
func TestRealtimeClockNowNeverNegative(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	c := &RealtimeClock{exec: l, epoch: time.Now().Add(time.Minute).Round(0)}
	if d := c.Now(); d < 0 {
		t.Fatalf("Now() = %v, want >= 0", d)
	}
}

// TestRealtimeClockAdvancesUnderEpochSkew pins the monotonic-anchor fix:
// when the wall clock steps (simulated by skewing the epoch far into the
// future with its monotonic reading stripped), Now must keep advancing at
// real speed — not merely hold still at the clamp until the wall catches
// up, which would stall every timer-derived deadline for the duration of
// the step.
func TestRealtimeClockAdvancesUnderEpochSkew(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	c := NewRealtimeClock(l)
	before := c.Now()
	c.epoch = time.Now().Add(time.Hour).Round(0)
	time.Sleep(20 * time.Millisecond)
	after := c.Now()
	if after < before {
		t.Fatalf("Now() ran backwards across epoch skew: %v then %v", before, after)
	}
	if got := after - before; got < 10*time.Millisecond {
		t.Fatalf("Now() advanced only %v across a 20ms sleep under epoch skew; clock frozen", got)
	}
}

// TestRealtimeClockLiteralEpochAdvances covers the struct-literal clock
// with a wall-only future epoch: the first reading clamps to zero, and
// subsequent readings advance monotonically from there.
func TestRealtimeClockLiteralEpochAdvances(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	c := &RealtimeClock{exec: l, epoch: time.Now().Add(time.Minute).Round(0)}
	first := c.Now()
	if first < 0 {
		t.Fatalf("Now() = %v, want >= 0", first)
	}
	time.Sleep(20 * time.Millisecond)
	if got := c.Now() - first; got < 10*time.Millisecond {
		t.Fatalf("Now() advanced only %v across a 20ms sleep, want real progress", got)
	}
}

package sim

import "sync/atomic"

// SPSC is a bounded single-producer single-consumer ring. The sharded
// data plane uses it to hand frames from one shard's receive loop to
// another shard's event loop without taking a lock on either side: the
// producer owns tail, the consumer owns head, and each side only ever
// stores its own index. Go's sync/atomic gives the release/acquire
// ordering that makes the element visible before the index advance.
//
// Exactly one goroutine may call Push and exactly one may call Pop; the
// consumer may change over time (e.g. a drain runner migrating between
// event-loop turns) as long as consumers never overlap.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	// head is the next slot to pop; only the consumer stores it.
	head atomic.Uint64
	_    [56]byte // keep the indices off one another's cache line
	// tail is the next slot to push; only the producer stores it.
	tail atomic.Uint64
}

// NewSPSC returns a ring holding at least capacity elements (rounded up
// to a power of two, minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued elements. It is exact for the
// producer and the consumer and approximate for anyone else.
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Empty reports whether the ring has no queued elements.
func (r *SPSC[T]) Empty() bool { return r.tail.Load() == r.head.Load() }

// Push appends v, reporting false when the ring is full (the caller
// decides whether full means drop, count, or back off).
func (r *SPSC[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Pop removes and returns the oldest element. The vacated slot is zeroed
// so popped elements do not pin referenced memory.
func (r *SPSC[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.tail.Load() {
		return zero, false
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	return v, true
}

package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsEventsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSchedulerTieBreaksBySchedulingOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var fired []time.Duration
	s.After(10*time.Millisecond, func() {
		s.After(5*time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 1 || fired[0] != 15*time.Millisecond {
		t.Fatalf("nested event fired at %v, want [15ms]", fired)
	}
}

func TestTimerStopPreventsCallback(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	tm := s.After(10*time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false before firing, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run()
	if ran {
		t.Fatal("stopped timer still fired")
	}
}

func TestTimerStopAfterFireReturnsFalse(t *testing.T) {
	s := NewScheduler(1)
	tm := s.After(time.Millisecond, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop() after firing = true, want false")
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := NewScheduler(1)
	s.RunUntil(time.Second)
	if s.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", s.Now())
	}
}

func TestRunUntilDoesNotRunLaterEvents(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	s.After(2*time.Second, func() { ran = true })
	s.RunUntil(time.Second)
	if ran {
		t.Fatal("event after horizon ran")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	s.RunFor(time.Second)
	if !ran {
		t.Fatal("event at horizon did not run")
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := NewScheduler(1)
	s.RunUntil(time.Second)
	var at time.Duration = -1
	s.After(-5*time.Millisecond, func() { at = s.Now() })
	s.Run()
	if at != time.Second {
		t.Fatalf("negative-delay event ran at %v, want 1s", at)
	}
}

func TestPostRunsAsynchronously(t *testing.T) {
	s := NewScheduler(1)
	order := make([]string, 0, 2)
	s.Post(func() {
		s.Post(func() { order = append(order, "inner") })
		order = append(order, "outer")
	})
	s.Run()
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v, want [outer inner]", order)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed uint64) []int64 {
		s := NewScheduler(seed)
		var trace []int64
		var tick func()
		tick = func() {
			trace = append(trace, int64(s.Now()), s.Rand().Int64N(1000))
			if s.Now() < 100*time.Millisecond {
				s.After(time.Duration(1+s.Rand().Int64N(10))*time.Millisecond, tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSchedulerEventCountProperty checks, for arbitrary batches of delays,
// that every scheduled event runs exactly once and the clock ends at the
// maximum delay.
func TestSchedulerEventCountProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := NewScheduler(7)
		ran := 0
		var maxAt time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Microsecond
			if at > maxAt {
				maxAt = at
			}
			s.After(at, func() { ran++ })
		}
		s.Run()
		if ran != len(delays) {
			return false
		}
		return len(delays) == 0 || s.Now() == maxAt
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoppedTimersAreSwept(t *testing.T) {
	s := NewScheduler(1)
	// One live long-range timer plus heavy schedule/cancel churn well
	// before its deadline: the heap must not accumulate the dead events.
	ran := false
	s.After(time.Hour, func() { ran = true })
	for i := 0; i < 10000; i++ {
		s.After(time.Minute, func() { t.Fatal("cancelled timer fired") }).Stop()
	}
	if pending := s.Pending(); pending != 1 {
		t.Fatalf("Pending() = %d, want 1 live event", pending)
	}
	if raw := len(s.events); raw > 2 {
		t.Fatalf("heap retains %d entries after churn, want <= 2", raw)
	}
	s.Run()
	if !ran {
		t.Fatal("live timer lost during sweep")
	}
}

func TestSweepPreservesOrderAndDeterminism(t *testing.T) {
	run := func() []int {
		s := NewScheduler(3)
		var got []int
		var timers []Timer
		for i := 0; i < 100; i++ {
			i := i
			timers = append(timers, s.After(time.Duration(i%10)*time.Millisecond, func() {
				got = append(got, i)
			}))
		}
		// Cancel two thirds, forcing sweeps mid-stream.
		for i, tm := range timers {
			if i%3 != 0 {
				tm.Stop()
			}
		}
		s.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != 34 {
		t.Fatalf("ran %d events, want 34 survivors", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sweep broke determinism: %v vs %v", a, b)
		}
	}
	// Survivors must still run in (time, scheduling) order.
	last := -1
	for _, v := range a {
		if v%10 < last%10 && last != -1 {
			// time bucket decreased: order violated
			t.Fatalf("out of time order: %v", a)
		}
		last = v
	}
}

func TestAfterRunnerRunsAndRecycles(t *testing.T) {
	s := NewScheduler(1)
	r := &countRunner{}
	for i := 0; i < 3; i++ {
		s.AfterRunner(time.Duration(i)*time.Millisecond, r)
	}
	s.Run()
	if r.n != 3 {
		t.Fatalf("runner ran %d times, want 3", r.n)
	}
	if len(s.free) == 0 {
		t.Fatal("fired runner events were not recycled")
	}
}

func TestAfterRunnerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	r := &chainRunner{s: s, left: 5}
	s.AfterRunner(time.Millisecond, r)
	s.Run()
	if r.fired != 5 {
		t.Fatalf("chained runner fired %d times, want 5", r.fired)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", s.Now())
	}
}

func TestAfterRunnerInterleavesWithClosures(t *testing.T) {
	s := NewScheduler(1)
	var got []string
	s.After(2*time.Millisecond, func() { got = append(got, "fn") })
	s.AfterRunner(time.Millisecond, appendRunner{&got, "early"})
	s.AfterRunner(3*time.Millisecond, appendRunner{&got, "late"})
	s.Run()
	want := []string{"early", "fn", "late"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

type countRunner struct{ n int }

func (r *countRunner) Run() { r.n++ }

type chainRunner struct {
	s     *Scheduler
	left  int
	fired int
}

func (r *chainRunner) Run() {
	r.fired++
	r.left--
	if r.left > 0 {
		r.s.AfterRunner(time.Millisecond, r)
	}
}

type appendRunner struct {
	got  *[]string
	name string
}

func (r appendRunner) Run() { *r.got = append(*r.got, r.name) }

func TestEventsRunCounter(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.EventsRun() != 5 {
		t.Fatalf("EventsRun() = %d, want 5", s.EventsRun())
	}
}

func TestNextEventAtPeeksAndSkipsStopped(t *testing.T) {
	s := NewScheduler(1)
	if _, ok := s.NextEventAt(); ok {
		t.Fatal("empty scheduler reported a pending event")
	}
	early := s.After(10*time.Millisecond, func() {})
	s.After(30*time.Millisecond, func() {})
	if at, ok := s.NextEventAt(); !ok || at != 10*time.Millisecond {
		t.Fatalf("NextEventAt = %v,%v, want 10ms", at, ok)
	}
	// Peeking must not run or drop anything.
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after peek = %d, want 2", got)
	}
	early.Stop()
	if at, ok := s.NextEventAt(); !ok || at != 30*time.Millisecond {
		t.Fatalf("NextEventAt after Stop = %v,%v, want 30ms", at, ok)
	}
	if s.Now() != 0 {
		t.Fatalf("peek advanced the clock to %v", s.Now())
	}
}

func TestRunUntilQuiesceStopsAtGap(t *testing.T) {
	s := NewScheduler(1)
	var fired []time.Duration
	// A burst of closely spaced events, then a long gap to a straggler.
	for _, d := range []time.Duration{1, 2, 3, 5} {
		d := d * time.Millisecond
		s.After(d, func() { fired = append(fired, d) })
	}
	s.After(500*time.Millisecond, func() { fired = append(fired, 500*time.Millisecond) })
	if !s.RunUntilQuiesce(50*time.Millisecond, time.Second) {
		t.Fatal("RunUntilQuiesce did not report quiescence")
	}
	if len(fired) != 4 {
		t.Fatalf("ran %d events before the gap, want 4: %v", len(fired), fired)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("quiesced at %v, want 5ms (the last burst event)", s.Now())
	}
	// The straggler is still pending for a later run.
	if at, ok := s.NextEventAt(); !ok || at != 500*time.Millisecond {
		t.Fatalf("straggler missing: %v,%v", at, ok)
	}
}

func TestRunUntilQuiesceDeadline(t *testing.T) {
	s := NewScheduler(1)
	var reschedule func()
	n := 0
	reschedule = func() {
		n++
		s.After(10*time.Millisecond, reschedule)
	}
	s.After(10*time.Millisecond, reschedule)
	// A self-rescheduling 10ms timer never leaves a 50ms gap: the deadline
	// must fire, leaving the clock exactly at now+deadline.
	if s.RunUntilQuiesce(50*time.Millisecond, 205*time.Millisecond) {
		t.Fatal("periodic world reported quiescence")
	}
	if s.Now() != 205*time.Millisecond {
		t.Fatalf("deadline left clock at %v, want 205ms", s.Now())
	}
	if n != 20 {
		t.Fatalf("ran %d periodic ticks before deadline, want 20", n)
	}
}

func TestRunUntilQuiesceEmptyWorld(t *testing.T) {
	s := NewScheduler(1)
	s.RunFor(time.Millisecond)
	if !s.RunUntilQuiesce(time.Millisecond, time.Second) {
		t.Fatal("empty world must quiesce immediately")
	}
	if s.Now() != time.Millisecond {
		t.Fatalf("clock moved to %v on an already-quiet world", s.Now())
	}
}

package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSPSCFIFO covers the ring's single-threaded contract: FIFO order,
// wraparound past the physical capacity, bounded Push, and empty Pop.
func TestSPSCFIFO(t *testing.T) {
	r := NewSPSC[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", r.Cap())
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring succeeded")
	}
	// Several laps around the ring so the index masking is exercised.
	next := 0
	for lap := 0; lap < 5; lap++ {
		for i := 0; i < r.Cap(); i++ {
			if !r.Push(lap*10 + i) {
				t.Fatalf("Push failed with %d queued", r.Len())
			}
		}
		if r.Push(999) {
			t.Fatal("Push succeeded on a full ring")
		}
		if r.Len() != r.Cap() || r.Empty() {
			t.Fatalf("Len=%d Empty=%v on a full ring", r.Len(), r.Empty())
		}
		for i := 0; i < r.Cap(); i++ {
			v, ok := r.Pop()
			if !ok || v != lap*10+i {
				t.Fatalf("Pop = %d,%v, want %d", v, ok, lap*10+i)
			}
			next++
		}
		if !r.Empty() {
			t.Fatalf("ring not empty after draining lap %d", lap)
		}
	}
}

// TestSPSCCapacityRounding checks the power-of-two rounding and the
// minimum capacity.
func TestSPSCCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {1024, 1024}, {1025, 2048}} {
		if got := NewSPSC[byte](c.ask).Cap(); got != c.want {
			t.Fatalf("NewSPSC(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestSPSCPopZeroesSlot checks that Pop clears the vacated slot so popped
// pointers do not pin their referents against the GC.
func TestSPSCPopZeroesSlot(t *testing.T) {
	r := NewSPSC[*int](2)
	v := new(int)
	r.Push(v)
	r.Pop()
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatalf("slot %d still holds a pointer after Pop", i)
		}
	}
}

// TestSPSCConcurrent streams values through the ring with one producer
// and one consumer goroutine; under -race this validates the index
// publication protocol (element visible before index advance).
func TestSPSCConcurrent(t *testing.T) {
	const n = 100000
	r := NewSPSC[int](64)
	var got atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched() // full: let the consumer run on 1 P
			}
		}
	}()
	go func() {
		defer wg.Done()
		want := 0
		for want < n {
			v, ok := r.Pop()
			if !ok {
				runtime.Gosched() // empty: let the producer run on 1 P
				continue
			}
			if v != want {
				t.Errorf("popped %d, want %d", v, want)
				return
			}
			want++
			got.Add(1)
		}
	}()
	wg.Wait()
	if got.Load() != n {
		t.Fatalf("consumed %d of %d", got.Load(), n)
	}
}

// TestShardedLoopDistribution checks that each shard is a live
// independent loop, that PostTo lands work on the addressed shard, and
// that the control-shard delegation (Post/PostRunner → shard 0) holds.
func TestShardedLoopDistribution(t *testing.T) {
	const n = 4
	s := NewShardedLoop(n)
	defer s.Close()
	if s.NumShards() != n {
		t.Fatalf("NumShards = %d, want %d", s.NumShards(), n)
	}
	// Every shard must run its own posted work; shards must be distinct
	// loops (work posted to shard i never runs shard j's closures).
	var ran [n]atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		s.PostTo(i, func() {
			ran[i].Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Fatalf("shard %d ran %d closures, want 1", i, ran[i].Load())
		}
	}
	// Post and PostRunner delegate to shard 0: FIFO order with other
	// control-shard work must hold.
	var order []int
	var mu sync.Mutex
	wg.Add(3)
	record := func(v int) {
		mu.Lock()
		order = append(order, v)
		mu.Unlock()
		wg.Done()
	}
	s.Post(func() { record(1) })
	s.PostRunner(runnerFunc(func() { record(2) }))
	s.Shard(0).Post(func() { record(3) })
	wg.Wait()
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("control-shard order = %v, want [1 2 3]", order)
	}
}

// runnerFunc adapts a closure to Runner for tests.
type runnerFunc func()

func (f runnerFunc) Run() { f() }

// TestShardedLoopDefault checks the n<=0 default and the documented cap.
func TestShardedLoopDefault(t *testing.T) {
	s := NewShardedLoop(0)
	defer s.Close()
	if got, want := s.NumShards(), DefaultShards(); got != want {
		t.Fatalf("default shards = %d, want %d", got, want)
	}
	if d := DefaultShards(); d < 1 || d > 8 {
		t.Fatalf("DefaultShards() = %d, outside [1,8]", d)
	}
}

// TestShardedLoopClose checks that Close drains queued work first and
// that posting after Close is a harmless no-op.
func TestShardedLoopClose(t *testing.T) {
	s := NewShardedLoop(2)
	var ran atomic.Uint64
	for i := 0; i < 2; i++ {
		s.PostTo(i, func() { ran.Add(1) })
	}
	s.Close()
	if ran.Load() != 2 {
		t.Fatalf("Close dropped queued work: ran %d of 2", ran.Load())
	}
	s.Post(func() { ran.Add(1) }) // dropped, must not panic
	s.Close()                    // idempotent
	if ran.Load() != 2 {
		t.Fatalf("post after Close ran")
	}
}

package sim

import (
	"container/heap"
	"math/rand/v2"
	"time"
)

// Runner is a pre-allocated alternative to a timer closure: callers that
// schedule the same kind of event per packet (the underlay's delivery
// queue) implement Run on a pooled record and avoid a closure allocation
// per event. Events scheduled with AfterRunner return no Timer handle, so
// the scheduler is free to recycle the event object itself.
type Runner interface {
	// Run executes the scheduled work.
	Run()
}

// Scheduler is a deterministic discrete-event scheduler with a virtual
// clock. Events scheduled for the same instant run in scheduling order.
//
// Scheduler implements Clock and Executor. It is not safe for concurrent
// use: the entire simulated world runs on the goroutine that calls Run,
// Step, or RunUntil, which is exactly what makes simulations reproducible.
type Scheduler struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	ran    uint64
	// stopped counts cancelled events still sitting in the heap. When they
	// outnumber live events the heap is swept, so timer-heavy protocols
	// that cancel almost every timer (Reliable retransmissions, NM-Strikes)
	// keep the heap proportional to the live timer count rather than to the
	// cancellation churn.
	stopped int
	// free recycles events scheduled without a Timer handle (AfterRunner):
	// no handle can outlive the firing, so the object is safe to reuse.
	free []*event
}

// NewScheduler returns a scheduler whose virtual clock starts at zero and
// whose random stream is derived from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random stream.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// EventsRun returns the number of events executed so far.
func (s *Scheduler) EventsRun() uint64 { return s.ran }

// Pending returns the number of live (not cancelled) events currently
// scheduled.
func (s *Scheduler) Pending() int { return len(s.events) - s.stopped }

// After schedules fn to run d from now and returns a cancellable handle.
// Non-positive delays schedule fn at the current instant (it still runs
// asynchronously, after the currently executing event returns).
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn to run at absolute virtual time t. Times in the past are
// clamped to now.
func (s *Scheduler) At(t time.Duration, fn func()) Timer {
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn, sched: s}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// AfterRunner schedules r.Run to execute d from now. It returns no Timer
// handle, which lets the scheduler pool the event object: a steady stream
// of AfterRunner events allocates nothing once the pool is warm. Use it
// for uncancellable per-packet work; use After for anything that may need
// Stop.
func (s *Scheduler) AfterRunner(d time.Duration, r Runner) {
	if d < 0 {
		d = 0
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{pooled: true}
	}
	ev.at, ev.seq, ev.runner, ev.sched = s.now+d, s.seq, r, s
	s.seq++
	heap.Push(&s.events, ev)
}

// Post schedules fn at the current instant, implementing Executor.
func (s *Scheduler) Post(fn func()) { s.After(0, fn) }

// PostRunner schedules r.Run at the current instant on a pooled event,
// implementing RunnerExecutor.
func (s *Scheduler) PostRunner(r Runner) { s.AfterRunner(0, r) }

var _ RunnerExecutor = (*Scheduler)(nil)

// Step runs the single earliest pending event. It reports whether an event
// was run (false when the queue is empty).
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		ev, ok := heap.Pop(&s.events).(*event)
		if !ok {
			return false
		}
		if ev.stopped {
			s.stopped--
			continue
		}
		s.runEvent(ev)
		return true
	}
	return false
}

// Run executes events until the queue is empty. Protocols with periodic
// timers never drain the queue; such simulations must use RunUntil.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to t. It is a single pop loop: stopped events are discarded and live ones
// run as they surface, with one heap traversal per event.
func (s *Scheduler) RunUntil(t time.Duration) {
	for len(s.events) > 0 {
		ev := s.events[0]
		if ev.stopped {
			heap.Pop(&s.events)
			s.stopped--
			continue
		}
		if ev.at > t {
			break
		}
		heap.Pop(&s.events)
		s.runEvent(ev)
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for a span of d virtual time starting from now.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// NextEventAt reports the timestamp of the earliest live pending event.
// ok is false when no live events remain. Cancelled events encountered on
// the way are discarded, so a peek after heavy timer churn is still O(live).
func (s *Scheduler) NextEventAt() (at time.Duration, ok bool) {
	for len(s.events) > 0 {
		ev := s.events[0]
		if ev.stopped {
			heap.Pop(&s.events)
			s.stopped--
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// RunUntilQuiesce executes events until the world quiesces — no live event
// is scheduled within idle of the current instant — or until deadline
// virtual time has elapsed from now, whichever comes first. It reports
// whether quiescence was reached. Periodic timers (hellos, refresh floods)
// never leave a gap, so callers watching such worlds should size idle below
// the shortest period they want to see through, or use a bound-based wait.
func (s *Scheduler) RunUntilQuiesce(idle, deadline time.Duration) bool {
	limit := s.now + deadline
	for {
		at, ok := s.NextEventAt()
		if !ok || at > s.now+idle {
			return true
		}
		if at > limit {
			s.now = limit
			return false
		}
		s.Step()
	}
}

// runEvent advances the clock to ev and executes it. Pooled events are
// recycled before their Runner executes, so nested AfterRunner calls from
// inside Run reuse the object immediately.
func (s *Scheduler) runEvent(ev *event) {
	s.now = ev.at
	ev.fired = true
	s.ran++
	if r := ev.runner; r != nil {
		s.recycle(ev)
		r.Run()
		return
	}
	ev.fn()
}

// recycle returns a pooled (handle-free) event to the free list. Events
// with outstanding Timer handles are left for the garbage collector: the
// handle may still be Stopped later.
func (s *Scheduler) recycle(ev *event) {
	if !ev.pooled {
		return
	}
	*ev = event{pooled: true}
	s.free = append(s.free, ev)
}

// sweep removes cancelled events from the heap in one pass and restores
// the heap invariant. Pop order afterwards is unchanged: ordering is fully
// determined by (at, seq), not by the heap's internal layout.
func (s *Scheduler) sweep() {
	live := s.events[:0]
	for _, ev := range s.events {
		if ev.stopped {
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = live
	s.stopped = 0
	heap.Init(&s.events)
}

// event is a scheduled callback; it doubles as the Timer handle.
type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	runner  Runner
	sched   *Scheduler
	stopped bool
	fired   bool
	// pooled marks events created by AfterRunner: no Timer handle exists,
	// so the object is recycled after firing.
	pooled bool
}

var _ Timer = (*event)(nil)

// Stop cancels the event; it reports whether cancellation happened before
// the callback ran. When cancelled events come to outnumber live ones the
// scheduler sweeps them out of the heap instead of carrying them to their
// deadlines.
func (e *event) Stop() bool {
	if e.fired || e.stopped {
		return false
	}
	e.stopped = true
	if s := e.sched; s != nil {
		s.stopped++
		if s.stopped > len(s.events)-s.stopped {
			s.sweep()
		}
	}
	return true
}

// eventHeap orders events by time, breaking ties by scheduling order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

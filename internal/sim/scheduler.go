package sim

import (
	"container/heap"
	"math/rand/v2"
	"time"
)

// Scheduler is a deterministic discrete-event scheduler with a virtual
// clock. Events scheduled for the same instant run in scheduling order.
//
// Scheduler implements Clock and Executor. It is not safe for concurrent
// use: the entire simulated world runs on the goroutine that calls Run,
// Step, or RunUntil, which is exactly what makes simulations reproducible.
type Scheduler struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	ran    uint64
}

// NewScheduler returns a scheduler whose virtual clock starts at zero and
// whose random stream is derived from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random stream.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// EventsRun returns the number of events executed so far.
func (s *Scheduler) EventsRun() uint64 { return s.ran }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.events) }

// After schedules fn to run d from now and returns a cancellable handle.
// Non-positive delays schedule fn at the current instant (it still runs
// asynchronously, after the currently executing event returns).
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn to run at absolute virtual time t. Times in the past are
// clamped to now.
func (s *Scheduler) At(t time.Duration, fn func()) Timer {
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// Post schedules fn at the current instant, implementing Executor.
func (s *Scheduler) Post(fn func()) { s.After(0, fn) }

// Step runs the single earliest pending event. It reports whether an event
// was run (false when the queue is empty).
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		ev, ok := heap.Pop(&s.events).(*event)
		if !ok {
			return false
		}
		if ev.stopped {
			continue
		}
		s.now = ev.at
		ev.fired = true
		s.ran++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty. Protocols with periodic
// timers never drain the queue; such simulations must use RunUntil.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to t.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		ev := s.peek()
		if ev == nil || ev.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for a span of d virtual time starting from now.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

func (s *Scheduler) peek() *event {
	for len(s.events) > 0 {
		if s.events[0].stopped {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0]
	}
	return nil
}

// event is a scheduled callback; it doubles as the Timer handle.
type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

var _ Timer = (*event)(nil)

// Stop cancels the event; it reports whether cancellation happened before
// the callback ran.
func (e *event) Stop() bool {
	if e.fired || e.stopped {
		return false
	}
	e.stopped = true
	return true
}

// eventHeap orders events by time, breaking ties by scheduling order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

package sim

import (
	"sync"
	"time"
)

// Loop is a real-time Executor: a single goroutine that runs posted
// closures in FIFO order. Deployed daemons use one Loop per process so that
// protocol code sees the same single-threaded execution model it sees under
// the discrete-event Scheduler.
type Loop struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []loopTask
	closed bool
	done   chan struct{}
}

// loopTask is one queue entry: a closure or a pre-allocated Runner.
type loopTask struct {
	fn func()
	r  Runner
}

var _ RunnerExecutor = (*Loop)(nil)

// NewLoop starts a loop goroutine and returns the executor.
func NewLoop() *Loop {
	l := &Loop{done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

// Post enqueues fn; it is safe to call from any goroutine. Posting to a
// closed loop drops the closure.
func (l *Loop) Post(fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.queue = append(l.queue, loopTask{fn: fn})
	l.cond.Signal()
}

// PostRunner enqueues r.Run, implementing RunnerExecutor: unlike Post
// there is no closure to allocate, so per-packet producers (the UDP batch
// reader) can post a pooled dispatch record for every wakeup without
// generating garbage. FIFO order with Post is preserved.
func (l *Loop) PostRunner(r Runner) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.queue = append(l.queue, loopTask{r: r})
	l.cond.Signal()
}

// Close stops the loop after the already-queued closures run and waits for
// the loop goroutine to exit.
func (l *Loop) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
}

func (l *Loop) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		batch := l.queue
		l.queue = nil
		l.mu.Unlock()
		for _, t := range batch {
			if t.r != nil {
				t.r.Run()
			} else {
				t.fn()
			}
		}
	}
}

// RealtimeClock implements Clock over the wall clock, dispatching timer
// callbacks onto an Executor so that protocol code remains single-threaded.
type RealtimeClock struct {
	exec  Executor
	epoch time.Time

	mu sync.Mutex
	// base anchors elapsed-time measurement: Now is baseVal plus the
	// monotonic-clock distance from base, so wall-clock steps (NTP) during
	// or after startup cannot skew or freeze the clock. base always
	// carries a monotonic reading — it is taken with time.Now at
	// construction, or lazily on the first reading for struct-literal
	// clocks whose epoch may be wall-only.
	base    time.Time
	baseVal time.Duration
	last    time.Duration
}

var _ Clock = (*RealtimeClock)(nil)

// NewRealtimeClock returns a clock whose epoch is the moment of creation
// and whose callbacks run on exec.
func NewRealtimeClock(exec Executor) *RealtimeClock {
	now := time.Now()
	return &RealtimeClock{exec: exec, epoch: now, base: now}
}

// NewRealtimeClockAt returns a clock anchored at a caller-supplied epoch
// whose callbacks run on exec. A sharded daemon gives every shard loop
// its own clock constructed from one shared epoch, so timestamps taken on
// different shards (packet origins, scheduler deadlines) are mutually
// comparable. The epoch should be a recent time.Now() reading: its
// monotonic component anchors elapsed-time measurement.
func NewRealtimeClockAt(exec Executor, epoch time.Time) *RealtimeClock {
	return &RealtimeClock{exec: exec, epoch: epoch, base: epoch}
}

// Now returns the time elapsed since the clock's epoch, measured on the
// monotonic clock and clamped to be non-decreasing. Subtracting the epoch
// directly would degrade to wall-clock arithmetic whenever the epoch lost
// its monotonic reading (serialized, arithmetic-stripped, or predating the
// process); a wall step would then make readings jump, freeze under the
// non-decreasing clamp, or go negative — wrecking RTT estimates, timer
// deadlines, and origin timestamps that assume time flows forward at one
// second per second.
func (c *RealtimeClock) Now() time.Duration {
	now := time.Now()
	c.mu.Lock()
	if c.base.IsZero() {
		// Struct-literal construction: anchor to this first reading. The
		// epoch offset is wall-only here, so clamp it — an epoch ahead of
		// the wall clock must not read negative.
		c.baseVal = now.Sub(c.epoch)
		if c.baseVal < 0 {
			c.baseVal = 0
		}
		c.base = now
	}
	d := c.baseVal + now.Sub(c.base)
	if d < c.last {
		d = c.last
	} else {
		c.last = d
	}
	c.mu.Unlock()
	return d
}

// After schedules fn on the executor d from now.
func (c *RealtimeClock) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	rt := &realTimer{}
	rt.t = time.AfterFunc(d, func() {
		rt.mu.Lock()
		stopped := rt.stopped
		rt.mu.Unlock()
		if stopped {
			return
		}
		c.exec.Post(func() {
			rt.mu.Lock()
			stopped := rt.stopped
			rt.fired = true
			rt.mu.Unlock()
			if !stopped {
				fn()
			}
		})
	})
	return rt
}

// realTimer adapts time.Timer to the Timer interface with exactly-once
// semantics across the AfterFunc goroutine and the executor.
type realTimer struct {
	mu      sync.Mutex
	t       *time.Timer
	stopped bool
	fired   bool
}

func (rt *realTimer) Stop() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.stopped || rt.fired {
		return false
	}
	rt.stopped = true
	rt.t.Stop()
	return true
}

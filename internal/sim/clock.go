// Package sim provides the discrete-event simulation core used to run
// structured overlay networks in deterministic virtual time, together with
// the Clock and Executor abstractions that let the very same protocol code
// run over real wall-clock time in a deployed daemon.
//
// All protocol state machines in this repository are written against Clock
// and never read the wall clock directly. In emulation mode a single
// Scheduler drives every overlay node, yielding bit-for-bit reproducible
// experiments from a seed. In deployment mode a RealtimeClock dispatches
// timer callbacks onto the daemon's event loop.
package sim

import "time"

// Timer is a handle to a scheduled callback. Stopping a timer prevents its
// callback from running if it has not fired yet.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing (false if the callback already ran or the timer
	// was already stopped).
	Stop() bool
}

// Clock provides virtual or real time to protocol code.
//
// Now returns the time elapsed since the clock's epoch. Implementations
// guarantee that callbacks scheduled on the same Clock never run
// concurrently with each other: protocol code using a single Clock needs no
// locking.
type Clock interface {
	// Now returns the current time relative to the clock's epoch.
	Now() time.Duration

	// After schedules fn to run once, d from now. A non-positive d schedules
	// the callback to run as soon as possible, still asynchronously.
	After(d time.Duration, fn func()) Timer
}

// Executor serializes closures onto a single logical thread of execution.
// Implementations must run posted closures in FIFO order and never
// concurrently.
type Executor interface {
	// Post enqueues fn for execution.
	Post(fn func())
}

// RunnerExecutor is an Executor that can also enqueue a pre-allocated
// Runner without wrapping it in a closure. Per-packet producers (the UDP
// receive loop posting one dispatch per datagram batch) use it so a steady
// stream of posts allocates nothing; PostRunner interleaves with Post in
// FIFO order. Both the real-time Loop and the discrete-event Scheduler
// implement it; callers fall back to Post on executors that do not.
type RunnerExecutor interface {
	Executor
	// PostRunner enqueues r.Run for execution.
	PostRunner(r Runner)
}

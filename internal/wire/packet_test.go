package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func samplePacket() *Packet {
	var mask Bitmask
	mask.Set(3)
	mask.Set(77)
	mask.Set(255)
	return &Packet{
		Type:      PTData,
		Flags:     FSigned | FRetrans,
		TTL:       16,
		Route:     RouteSourceMask,
		LinkProto: LPRealTime,
		Priority:  7,
		Src:       2,
		Dst:       9,
		SrcPort:   5000,
		DstPort:   6000,
		Group:     0xdeadbeef,
		FlowSeq:   123456,
		Origin:    1500 * time.Millisecond,
		Deadline:  200 * time.Millisecond,
		Mask:      mask,
		Sig:       bytes.Repeat([]byte{0xab}, 64),
		Payload:   []byte("broadcast-quality video frame"),
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(buf) != p.MarshaledSize() {
		t.Fatalf("encoded %d bytes, MarshaledSize = %d", len(buf), p.MarshaledSize())
	}
	got, rest, err := UnmarshalPacket(buf)
	if err != nil {
		t.Fatalf("UnmarshalPacket: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing %d bytes", len(rest))
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
	}
}

func TestPacketRoundTripMinimal(t *testing.T) {
	p := &Packet{Type: PTHello, Route: RouteLinkState, Src: 1, Dst: 2}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, _, err := UnmarshalPacket(buf)
	if err != nil {
		t.Fatalf("UnmarshalPacket: %v", err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			p := &Packet{
				Type:      PacketType(1 + r.Intn(6)),
				Flags:     Flags(r.Intn(8)),
				TTL:       uint8(r.Intn(256)),
				Route:     RouteKind(1 + r.Intn(4)),
				LinkProto: LinkProtoID(1 + r.Intn(6)),
				Priority:  uint8(r.Intn(256)),
				Src:       NodeID(r.Intn(1 << 16)),
				Dst:       NodeID(r.Intn(1 << 16)),
				SrcPort:   Port(r.Intn(1 << 16)),
				DstPort:   Port(r.Intn(1 << 16)),
				Group:     GroupID(r.Uint32()),
				FlowSeq:   r.Uint32(),
				Origin:    time.Duration(r.Int63()),
				Deadline:  time.Duration(r.Int63()),
			}
			for i := 0; i < r.Intn(20); i++ {
				p.Mask.Set(LinkID(r.Intn(MaxLinks)))
			}
			if r.Intn(2) == 1 {
				p.Sig = make([]byte, 1+r.Intn(64))
				r.Read(p.Sig)
			}
			if r.Intn(4) != 0 {
				p.Payload = make([]byte, 1+r.Intn(1400))
				r.Read(p.Payload)
			}
			vals[0] = reflect.ValueOf(p)
		},
	}
	prop := func(p *Packet) bool {
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		got, rest, err := UnmarshalPacket(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalPacketTruncated(t *testing.T) {
	p := samplePacket()
	buf, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for n := 0; n < len(buf); n++ {
		if _, _, err := UnmarshalPacket(buf[:n]); err == nil {
			t.Fatalf("UnmarshalPacket accepted %d/%d-byte prefix", n, len(buf))
		}
	}
}

func TestUnmarshalPacketNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, r.Intn(200))
		r.Read(buf)
		_, _, _ = UnmarshalPacket(buf) // must not panic
	}
}

func TestPacketPayloadTooLarge(t *testing.T) {
	p := &Packet{Type: PTData, Payload: make([]byte, MaxPayload+1)}
	if _, err := p.Marshal(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Marshal error = %v, want ErrTooLarge", err)
	}
}

func TestPacketClone(t *testing.T) {
	p := samplePacket()
	cp := p.Clone()
	if !reflect.DeepEqual(p, cp) {
		t.Fatal("clone differs from original")
	}
	cp.Payload[0] ^= 0xff
	cp.Sig[0] ^= 0xff
	cp.TTL--
	cp.Mask.Set(100)
	if p.Payload[0] == cp.Payload[0] || p.Sig[0] == cp.Sig[0] {
		t.Fatal("clone shares payload or signature storage")
	}
	if p.Mask.Has(100) {
		t.Fatal("clone shares mask")
	}
}

func TestSignableBytesIgnoresTTLAndSig(t *testing.T) {
	p := samplePacket()
	a, err := p.SignableBytes()
	if err != nil {
		t.Fatalf("SignableBytes: %v", err)
	}
	q := p.Clone()
	q.TTL = 3
	q.Sig = []byte{1, 2, 3}
	b, err := q.SignableBytes()
	if err != nil {
		t.Fatalf("SignableBytes: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("SignableBytes changed with TTL/Sig mutation")
	}
	q.Payload[0] ^= 0xff
	c, err := q.SignableBytes()
	if err != nil {
		t.Fatalf("SignableBytes: %v", err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("SignableBytes did not change with payload mutation")
	}
}

func TestStringMnemonics(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{PTData.String(), "data"},
		{PTLinkState.String(), "linkstate"},
		{PTGroupState.String(), "groupstate"},
		{PTHello.String(), "hello"},
		{PTHelloAck.String(), "helloack"},
		{PTSessionCtl.String(), "sessionctl"},
		{PacketType(99).String(), "pt(99)"},
		{RouteLinkState.String(), "linkstate"},
		{RouteSourceMask.String(), "sourcemask"},
		{RouteMulticast.String(), "multicast"},
		{RouteFlood.String(), "flood"},
		{RouteKind(99).String(), "route(99)"},
		{LPBestEffort.String(), "besteffort"},
		{LPReliable.String(), "reliable"},
		{LPRealTime.String(), "realtime"},
		{LPSingleStrike.String(), "singlestrike"},
		{LPITPriority.String(), "it-priority"},
		{LPITReliable.String(), "it-reliable"},
		{LinkProtoID(99).String(), "lp(99)"},
		{FData.String(), "data"},
		{FAck.String(), "ack"},
		{FReq.String(), "req"},
		{FHello.String(), "hello"},
		{FHelloAck.String(), "helloack"},
		{FrameKind(99).String(), "fk(99)"},
		{NodeID(7).String(), "n7"},
		{GroupID(9).String(), "g9"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestFlagsHas(t *testing.T) {
	f := FSigned | FOrdered
	if !f.Has(FSigned) || !f.Has(FOrdered) || !f.Has(FSigned|FOrdered) {
		t.Fatal("Has missed set flags")
	}
	if f.Has(FRetrans) || f.Has(FSigned|FRetrans) {
		t.Fatal("Has reported unset flags")
	}
}

func TestFrameOversizedAuth(t *testing.T) {
	f := &Frame{Proto: LPReliable, Kind: FData, Auth: make([]byte, 256)}
	if _, err := f.Marshal(); err == nil {
		t.Fatal("256-byte auth accepted")
	}
	p := &Packet{Type: PTData, Sig: make([]byte, 256)}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("256-byte signature accepted")
	}
}

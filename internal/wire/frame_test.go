package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestFrameRoundTripControl(t *testing.T) {
	f := &Frame{
		Proto:    LPReliable,
		Kind:     FAck,
		Seq:      42,
		Ack:      40,
		AckBits:  0b1011,
		SendTime: 123 * time.Millisecond,
	}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, rest, err := UnmarshalFrame(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("UnmarshalFrame: %v (rest %d)", err, len(rest))
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", f, got)
	}
}

func TestFrameRoundTripWithPacketAndAuth(t *testing.T) {
	f := &Frame{
		Proto:    LPITPriority,
		Kind:     FData,
		Seq:      7,
		SendTime: time.Second,
		Auth:     bytes.Repeat([]byte{0xcd}, 32),
		Packet:   samplePacket(),
	}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, rest, err := UnmarshalFrame(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("UnmarshalFrame: %v (rest %d)", err, len(rest))
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", f, got)
	}
}

func TestFrameTruncated(t *testing.T) {
	f := &Frame{Proto: LPBestEffort, Kind: FData, Packet: samplePacket(), Auth: []byte{1, 2, 3, 4}}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for n := 0; n < len(buf); n++ {
		if _, _, err := UnmarshalFrame(buf[:n]); err == nil {
			t.Fatalf("UnmarshalFrame accepted %d/%d-byte prefix", n, len(buf))
		}
	}
}

func TestUnmarshalFrameNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, r.Intn(300))
		r.Read(buf)
		_, _, _ = UnmarshalFrame(buf) // must not panic
	}
}

func TestAuthableBytesIgnoresAuth(t *testing.T) {
	f := &Frame{Proto: LPITReliable, Kind: FData, Seq: 5, Packet: samplePacket()}
	a, err := f.AuthableBytes()
	if err != nil {
		t.Fatalf("AuthableBytes: %v", err)
	}
	f.Auth = bytes.Repeat([]byte{9}, 32)
	b, err := f.AuthableBytes()
	if err != nil {
		t.Fatalf("AuthableBytes: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("AuthableBytes changed when Auth set")
	}
	f.Seq = 6
	c, err := f.AuthableBytes()
	if err != nil {
		t.Fatalf("AuthableBytes: %v", err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("AuthableBytes did not cover Seq")
	}
}

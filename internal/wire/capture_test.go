package wire

import (
	"bytes"
	"testing"
)

func TestCapturePacketCopiesBytes(t *testing.T) {
	pool := NewBufPool(nil)
	src := &Packet{
		Type: PTData, Route: RouteLinkState,
		Src: 3, Dst: 9, FlowSeq: 42, Priority: 5,
		Sig:     []byte("signature"),
		Payload: []byte("hello-capture"),
	}
	var dst Packet
	buf := CapturePacket(&dst, src, pool)
	if buf == nil {
		t.Fatal("expected a backing buffer")
	}
	// Mutate the source's byte fields: the capture must be unaffected.
	src.Payload[0] = 'X'
	src.Sig[0] = 'X'
	if !bytes.Equal(dst.Payload, []byte("hello-capture")) || !bytes.Equal(dst.Sig, []byte("signature")) {
		t.Fatalf("capture aliases source bytes: payload %q sig %q", dst.Payload, dst.Sig)
	}
	if dst.Src != 3 || dst.Dst != 9 || dst.FlowSeq != 42 || dst.Priority != 5 {
		t.Fatalf("header not copied: %+v", dst)
	}
	// Sig and Payload are full-capacity subslices of one buffer: appending
	// to Sig must not bleed into Payload.
	if cap(dst.Sig) != len(dst.Sig) || cap(dst.Payload) != len(dst.Payload) {
		t.Fatalf("subslices not capacity-clamped: sig %d/%d payload %d/%d",
			len(dst.Sig), cap(dst.Sig), len(dst.Payload), cap(dst.Payload))
	}
	if got := buf.refs.Load(); got != 1 {
		t.Fatalf("buffer refcount %d, want 1", got)
	}
	buf.Release()
	if got := pool.Stats().Recycled.Load(); got == 0 {
		t.Fatal("release did not recycle the capture buffer")
	}
}

func TestCapturePacketByteless(t *testing.T) {
	pool := NewBufPool(nil)
	src := &Packet{Type: PTHello, Src: 1, Dst: 2}
	var dst Packet
	if buf := CapturePacket(&dst, src, pool); buf != nil {
		t.Fatal("byteless packet should not take a pool buffer")
	}
	if dst.Sig != nil || dst.Payload != nil {
		t.Fatalf("byteless capture kept slices: %+v", dst)
	}
	if dst.Src != 1 || dst.Dst != 2 || dst.Type != PTHello {
		t.Fatalf("header not copied: %+v", dst)
	}
	if got := pool.Stats().Misses.Load() + pool.Stats().Hits.Load(); got != 0 {
		t.Fatalf("pool touched %d times for byteless packet", got)
	}
}

func TestCapturePacketSigOnly(t *testing.T) {
	pool := NewBufPool(nil)
	src := &Packet{Type: PTData, Sig: []byte("only-sig")}
	var dst Packet
	buf := CapturePacket(&dst, src, pool)
	if buf == nil || !bytes.Equal(dst.Sig, []byte("only-sig")) || dst.Payload != nil {
		t.Fatalf("sig-only capture wrong: sig %q payload %v", dst.Sig, dst.Payload)
	}
	buf.Release()
}

package wire

import (
	"testing"

	"sonet/internal/metrics"
)

func TestBufPoolGetClassesAndCounters(t *testing.T) {
	stats := &metrics.PoolStats{}
	p := NewBufPool(stats)
	for _, size := range []int{0, 1, 256, 257, 4096, MaxPayload} {
		b := p.Get(size)
		if len(b.B) != 0 {
			t.Fatalf("Get(%d) len = %d, want 0", size, len(b.B))
		}
		if cap(b.B) < size {
			t.Fatalf("Get(%d) cap = %d, want >= size", size, cap(b.B))
		}
		b.Release()
	}
	snap := stats.Snapshot()
	if snap.Hits+snap.Misses != 6 {
		t.Fatalf("hits %d + misses %d != 6 gets", snap.Hits, snap.Misses)
	}
	if snap.Recycled == 0 {
		t.Fatal("no bytes recorded as recycled after releases")
	}
}

func TestBufPoolReuseHits(t *testing.T) {
	stats := &metrics.PoolStats{}
	p := NewBufPool(stats)
	// Under the race detector sync.Pool randomly drops a fraction of Puts,
	// so one release/get cycle is not guaranteed a hit — retry until the
	// counter moves.
	for i := 0; i < 64 && stats.Snapshot().Hits == 0; i++ {
		b := p.Get(100)
		b.B = append(b.B, 1, 2, 3)
		b.Release()
		// Same size class: the just-released buffer satisfies this Get
		// with length reset to zero.
		c := p.Get(200)
		if len(c.B) != 0 {
			t.Fatalf("reused buffer len = %d, want 0", len(c.B))
		}
		c.Release()
	}
	if stats.Snapshot().Hits == 0 {
		t.Fatal("release/get cycles recorded no pool hit")
	}
}

func TestBufRetainDefersRecycle(t *testing.T) {
	stats := &metrics.PoolStats{}
	p := NewBufPool(stats)
	b := p.Get(64)
	b.B = append(b.B, 0xBE)
	b.Retain()
	b.Release()
	// One reference remains: the contents must still be intact and the
	// buffer not yet recycled.
	if got := stats.Snapshot().Recycled; got != 0 {
		t.Fatalf("recycled %d bytes with a reference outstanding", got)
	}
	if len(b.B) != 1 || b.B[0] != 0xBE {
		t.Fatalf("retained buffer contents changed: %v", b.B)
	}
	b.Release()
	if stats.Snapshot().Recycled == 0 {
		t.Fatal("final release did not recycle")
	}
}

func TestBufDoubleReleasePanics(t *testing.T) {
	p := NewBufPool(nil)
	// Use an oversized (unpooled) buffer so the panic check does not
	// depend on whether the recycled Buf was already handed out again.
	b := p.Get(MaxPayload + 4096)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

func TestBufPoolOversizedUnpooled(t *testing.T) {
	stats := &metrics.PoolStats{}
	p := NewBufPool(stats)
	size := bufClasses[len(bufClasses)-1] + 1
	b := p.Get(size)
	if cap(b.B) < size {
		t.Fatalf("oversized Get cap = %d, want >= %d", cap(b.B), size)
	}
	b.Release()
	snap := stats.Snapshot()
	if snap.Misses != 1 || snap.Hits != 0 {
		t.Fatalf("oversized get: hits=%d misses=%d, want 0/1", snap.Hits, snap.Misses)
	}
	if snap.Recycled != 0 {
		t.Fatalf("oversized buffer counted %d recycled bytes", snap.Recycled)
	}
}

func TestPoolSnapshotHitRatio(t *testing.T) {
	s := metrics.PoolSnapshot{Hits: 3, Misses: 1}
	if got := s.HitRatio(); got != 0.75 {
		t.Fatalf("HitRatio = %v, want 0.75", got)
	}
	var zero metrics.PoolSnapshot
	if got := zero.HitRatio(); got != 0 {
		t.Fatalf("zero HitRatio = %v, want 0", got)
	}
}

package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Encoding errors.
var (
	// ErrTruncated reports input shorter than the encoding requires.
	ErrTruncated = errors.New("truncated input")
	// ErrMalformed reports structurally invalid input.
	ErrMalformed = errors.New("malformed input")
	// ErrTooLarge reports a packet exceeding the maximum encodable size.
	ErrTooLarge = errors.New("packet too large")
)

// MaxPayload is the maximum payload size carried by a single packet.
const MaxPayload = 60000

// packetFixedLen is the size of the fixed portion of the packet header.
const packetFixedLen = 38

// Packet is the routing-level unit of the overlay (Fig. 2): the thing that
// is routed from the source overlay node to one or more destination overlay
// nodes. Link-level protocols wrap packets in Frames for each hop.
type Packet struct {
	// Type discriminates data packets from control packets.
	Type PacketType
	// Flags carries boolean attributes (signed, retransmission, anycast).
	Flags Flags
	// TTL bounds forwarding; it is decremented per overlay hop and packets
	// reaching zero are dropped.
	TTL uint8
	// Route selects the routing service for this packet.
	Route RouteKind
	// LinkProto selects the link-level protocol used on every hop.
	LinkProto LinkProtoID
	// Priority orders packets within intrusion-tolerant priority flows
	// (higher is more important).
	Priority uint8
	// Src is the originating overlay node.
	Src NodeID
	// Dst is the destination overlay node for unicast routing; it is zero
	// for multicast and flood routing.
	Dst NodeID
	// SrcPort and DstPort identify client endpoints within nodes.
	SrcPort, DstPort Port
	// Group is the multicast/anycast group, when applicable.
	Group GroupID
	// FlowSeq is the end-to-end sequence number within the flow.
	FlowSeq uint32
	// Origin is the send time at the source (virtual or real clock time
	// since the world epoch); destinations use it to measure one-way
	// latency and to enforce deadlines.
	Origin time.Duration
	// Deadline is the flow's one-way latency budget; zero means none.
	Deadline time.Duration
	// Mask is the source-route bitmask for RouteSourceMask packets.
	Mask Bitmask
	// Sig is the Ed25519 source signature when FSigned is set.
	Sig []byte
	// Payload is the application or control payload.
	Payload []byte
}

// Clone returns a deep copy of p, safe to mutate independently (TTL
// decrement, retransmission flagging) when a packet fans out over several
// links.
func (p *Packet) Clone() *Packet {
	cp := *p
	if p.Sig != nil {
		cp.Sig = append([]byte(nil), p.Sig...)
	}
	if p.Payload != nil {
		cp.Payload = append([]byte(nil), p.Payload...)
	}
	return &cp
}

// MarshaledSize returns the exact encoded size of p.
func (p *Packet) MarshaledSize() int {
	var raw [maskBytes]byte
	for i, w := range p.Mask {
		for b := 0; b < 8; b++ {
			raw[i*8+b] = byte(w >> (8 * b))
		}
	}
	maskLen := maskBytes
	for maskLen > 0 && raw[maskLen-1] == 0 {
		maskLen--
	}
	return packetFixedLen + 1 + maskLen + 1 + len(p.Sig) + 2 + len(p.Payload)
}

// AppendMarshal appends the encoding of p to dst and returns the extended
// slice.
func (p *Packet) AppendMarshal(dst []byte) ([]byte, error) {
	if len(p.Payload) > MaxPayload {
		return dst, fmt.Errorf("wire: payload %d bytes: %w", len(p.Payload), ErrTooLarge)
	}
	if len(p.Sig) > 255 {
		return dst, fmt.Errorf("wire: signature %d bytes: %w", len(p.Sig), ErrTooLarge)
	}
	var hdr [packetFixedLen]byte
	hdr[0] = byte(p.Type)
	hdr[1] = byte(p.Flags)
	hdr[2] = p.TTL
	hdr[3] = byte(p.Route)
	hdr[4] = byte(p.LinkProto)
	hdr[5] = p.Priority
	binary.BigEndian.PutUint16(hdr[6:], uint16(p.Src))
	binary.BigEndian.PutUint16(hdr[8:], uint16(p.Dst))
	binary.BigEndian.PutUint16(hdr[10:], uint16(p.SrcPort))
	binary.BigEndian.PutUint16(hdr[12:], uint16(p.DstPort))
	binary.BigEndian.PutUint32(hdr[14:], uint32(p.Group))
	binary.BigEndian.PutUint32(hdr[18:], p.FlowSeq)
	binary.BigEndian.PutUint64(hdr[22:], uint64(p.Origin))
	binary.BigEndian.PutUint64(hdr[30:], uint64(p.Deadline))
	dst = append(dst, hdr[:]...)
	dst = appendMask(dst, p.Mask)
	dst = append(dst, byte(len(p.Sig)))
	dst = append(dst, p.Sig...)
	var plen [2]byte
	binary.BigEndian.PutUint16(plen[:], uint16(len(p.Payload)))
	dst = append(dst, plen[:]...)
	dst = append(dst, p.Payload...)
	return dst, nil
}

// Marshal encodes p into a fresh buffer.
func (p *Packet) Marshal() ([]byte, error) {
	return p.AppendMarshal(make([]byte, 0, p.MarshaledSize()))
}

// UnmarshalPacketInto decodes a packet into p without allocating: p.Sig and
// p.Payload alias src, so p borrows src and is valid only as long as src is.
// Callers that keep the packet past the lifetime of src must Clone it. All
// fields of p are overwritten. Returns any trailing bytes.
func UnmarshalPacketInto(p *Packet, src []byte) ([]byte, error) {
	if len(src) < packetFixedLen {
		return nil, fmt.Errorf("wire: packet header: %w", ErrTruncated)
	}
	*p = Packet{
		Type:      PacketType(src[0]),
		Flags:     Flags(src[1]),
		TTL:       src[2],
		Route:     RouteKind(src[3]),
		LinkProto: LinkProtoID(src[4]),
		Priority:  src[5],
		Src:       NodeID(binary.BigEndian.Uint16(src[6:])),
		Dst:       NodeID(binary.BigEndian.Uint16(src[8:])),
		SrcPort:   Port(binary.BigEndian.Uint16(src[10:])),
		DstPort:   Port(binary.BigEndian.Uint16(src[12:])),
		Group:     GroupID(binary.BigEndian.Uint32(src[14:])),
		FlowSeq:   binary.BigEndian.Uint32(src[18:]),
		Origin:    time.Duration(binary.BigEndian.Uint64(src[22:])),
		Deadline:  time.Duration(binary.BigEndian.Uint64(src[30:])),
	}
	rest := src[packetFixedLen:]
	var err error
	p.Mask, rest, err = readMask(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("wire: signature length: %w", ErrTruncated)
	}
	sigLen := int(rest[0])
	rest = rest[1:]
	if len(rest) < sigLen {
		return nil, fmt.Errorf("wire: signature body: %w", ErrTruncated)
	}
	if sigLen > 0 {
		p.Sig = rest[:sigLen:sigLen]
	}
	rest = rest[sigLen:]
	if len(rest) < 2 {
		return nil, fmt.Errorf("wire: payload length: %w", ErrTruncated)
	}
	payLen := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < payLen {
		return nil, fmt.Errorf("wire: payload body: %w", ErrTruncated)
	}
	if payLen > 0 {
		p.Payload = rest[:payLen:payLen]
	}
	return rest[payLen:], nil
}

// UnmarshalPacket decodes a packet into a fresh, fully owned value (its
// byte fields are copies, not aliases of src) and returns trailing bytes.
func UnmarshalPacket(src []byte) (*Packet, []byte, error) {
	p := &Packet{}
	rest, err := UnmarshalPacketInto(p, src)
	if err != nil {
		return nil, nil, err
	}
	if p.Sig != nil {
		p.Sig = append([]byte(nil), p.Sig...)
	}
	if p.Payload != nil {
		p.Payload = append([]byte(nil), p.Payload...)
	}
	return p, rest, nil
}

// SignableBytes returns the canonical encoding of p used for source
// signatures: the signature field is empty and the hop-mutable TTL is
// zeroed, so the signature stays valid as the packet is forwarded.
func (p *Packet) SignableBytes() ([]byte, error) {
	cp := *p
	cp.TTL = 0
	cp.Sig = nil
	return cp.Marshal()
}

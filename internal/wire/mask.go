package wire

import (
	"fmt"
	"math/bits"
)

// MaxLinks is the maximum number of overlay links addressable by a
// source-route bitmask. Structured overlays are small by design (a few tens
// of nodes, §II-A), so 256 links is ample.
const MaxLinks = 256

// maskBytes is the marshaled size of a full bitmask.
const maskBytes = MaxLinks / 8

// Bitmask is a set of overlay links used by source-based routing: bit i set
// means the packet should traverse the overlay link with LinkID i.
//
// The zero value is the empty set. Bitmasks marshal to at most 32 bytes;
// trailing zero bytes are trimmed on the wire.
type Bitmask [maskBytes / 8]uint64

// Set adds link id to the mask.
func (m *Bitmask) Set(id LinkID) {
	if int(id) >= MaxLinks {
		return
	}
	m[id/64] |= 1 << (id % 64)
}

// Clear removes link id from the mask.
func (m *Bitmask) Clear(id LinkID) {
	if int(id) >= MaxLinks {
		return
	}
	m[id/64] &^= 1 << (id % 64)
}

// Has reports whether link id is in the mask.
func (m *Bitmask) Has(id LinkID) bool {
	if int(id) >= MaxLinks {
		return false
	}
	return m[id/64]&(1<<(id%64)) != 0
}

// Or merges other into m.
func (m *Bitmask) Or(other Bitmask) {
	for i := range m {
		m[i] |= other[i]
	}
}

// Count returns the number of links in the mask.
func (m *Bitmask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no links are set.
func (m *Bitmask) Empty() bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

// Links returns the link IDs in the mask in ascending order.
func (m *Bitmask) Links() []LinkID {
	out := make([]LinkID, 0, m.Count())
	for i, w := range m {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, LinkID(i*64+b))
			w &^= 1 << b
		}
	}
	return out
}

// String renders the mask as a set of link IDs.
func (m *Bitmask) String() string { return fmt.Sprintf("mask%v", m.Links()) }

// appendMask writes the mask with a 1-byte length prefix, trimming trailing
// zero bytes.
func appendMask(dst []byte, m Bitmask) []byte {
	var raw [maskBytes]byte
	for i, w := range m {
		for b := 0; b < 8; b++ {
			raw[i*8+b] = byte(w >> (8 * b))
		}
	}
	n := maskBytes
	for n > 0 && raw[n-1] == 0 {
		n--
	}
	dst = append(dst, byte(n))
	return append(dst, raw[:n]...)
}

// readMask parses a length-prefixed mask, returning the remaining bytes.
func readMask(src []byte) (Bitmask, []byte, error) {
	var m Bitmask
	if len(src) < 1 {
		return m, nil, fmt.Errorf("wire: truncated mask length: %w", ErrTruncated)
	}
	n := int(src[0])
	src = src[1:]
	if n > maskBytes {
		return m, nil, fmt.Errorf("wire: mask length %d exceeds %d: %w", n, maskBytes, ErrMalformed)
	}
	if len(src) < n {
		return m, nil, fmt.Errorf("wire: truncated mask body: %w", ErrTruncated)
	}
	for i := 0; i < n; i++ {
		m[i/8] |= uint64(src[i]) << (8 * (i % 8))
	}
	return m, src[n:], nil
}

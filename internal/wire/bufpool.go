package wire

import (
	"sync"
	"sync/atomic"

	"sonet/internal/metrics"
)

// The forwarding fast path marshals one frame per hop per egress link.
// Allocating those buffers fresh makes every hop GC-bound and adds jitter
// to the latency-sensitive experiments, so the hot path draws them from a
// BufPool instead: Get returns a Buf whose capacity covers the request,
// Release returns it for reuse once the bytes have left the pipeline
// (handed to the underlay, delivered, or dropped). Fan-out over several
// egress links shares one marshaled buffer by reference counting
// (Retain/Release) instead of copying per link.
//
// Ownership rules (see DESIGN.md §6):
//   - Get returns a Buf with reference count 1; the caller owns it.
//   - Every consumer that keeps the bytes past the current call must
//     Retain before handing the buffer on, and Release when done.
//   - After the final Release the bytes belong to the pool; reading or
//     writing them is a use-after-free. The race detector sees misuse as
//     concurrent map/slice access in tests.

// bufClasses are the pooled capacity classes. The largest covers a frame
// wrapping a MaxPayload packet with full mask, signature, and auth trailer;
// requests beyond it fall through to plain allocation (a recorded miss).
var bufClasses = [...]int{256, 1024, 4096, 16384, MaxPayload + 1024}

// Buf is one pooled byte buffer. B is the live contents: Get hands it out
// with length zero and class capacity, and callers append into it.
type Buf struct {
	// B holds the buffer contents; append into B[:0] after Get.
	B []byte

	refs atomic.Int32
	// class is the index into the owning pool's classes, or -1 for an
	// oversized one-shot buffer that is not recycled.
	class int
	pool  *BufPool
}

// Retain adds a reference so the buffer survives until a matching Release.
// Fan-out paths retain once per extra consumer.
func (b *Buf) Retain() { b.refs.Add(1) }

// Release drops one reference; the final release recycles the buffer.
// Releasing more times than Get+Retain acquired panics: a double release
// means some pipeline stage used the buffer after handing it off.
func (b *Buf) Release() {
	switch n := b.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("wire: Buf released more times than retained")
	}
	if b.class < 0 || b.pool == nil {
		return
	}
	b.pool.stats.Recycled.Add(uint64(cap(b.B)))
	b.pool.classes[b.class].Put(b)
}

// BufPool is a size-classed freelist of marshal/delivery buffers built on
// sync.Pool, with hit/miss/recycled accounting in metrics.PoolStats.
type BufPool struct {
	classes [len(bufClasses)]sync.Pool
	stats   *metrics.PoolStats
}

// NewBufPool returns an empty pool recording into stats; a nil stats gets a
// private counter set.
func NewBufPool(stats *metrics.PoolStats) *BufPool {
	if stats == nil {
		stats = &metrics.PoolStats{}
	}
	return &BufPool{stats: stats}
}

// Stats returns the pool's counters.
func (p *BufPool) Stats() *metrics.PoolStats { return p.stats }

// Get returns a buffer with len(B) == 0 and cap(B) >= size, reference
// count 1. Oversized requests are served by a fresh unpooled allocation.
func (p *BufPool) Get(size int) *Buf {
	for i, c := range bufClasses {
		if size > c {
			continue
		}
		if v := p.classes[i].Get(); v != nil {
			b, ok := v.(*Buf)
			if ok {
				p.stats.Hits.Add(1)
				b.B = b.B[:0]
				b.refs.Store(1)
				return b
			}
		}
		p.stats.Misses.Add(1)
		b := &Buf{B: make([]byte, 0, c), class: i, pool: p}
		b.refs.Store(1)
		return b
	}
	p.stats.Misses.Add(1)
	b := &Buf{B: make([]byte, 0, size), class: -1, pool: p}
	b.refs.Store(1)
	return b
}

// DefaultBufPool is the process-wide pool the node, emulator, and UDP
// underlay share; sharing maximizes reuse across pipeline stages.
var DefaultBufPool = NewBufPool(nil)

// PoolSnapshot returns the shared pool's counters.
func PoolSnapshot() metrics.PoolSnapshot { return DefaultBufPool.Stats().Snapshot() }

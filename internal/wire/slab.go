package wire

import (
	"sync"

	"sonet/internal/metrics"
)

// The UDP receive loop used to allocate one 64 KiB scratch buffer per
// underlay (`buf := make([]byte, 1<<16)`) and read a single datagram at a
// time into it. The batched data plane instead drains up to ReadBatch
// datagrams per wakeup, which needs ReadBatch independent landing areas
// whose addresses stay stable across the recvmmsg call. A Slab is that
// landing area: one contiguous arena divided into fixed-size segments, one
// per in-flight datagram slot. The portable per-packet path uses the same
// slab (reading into segment 0), so both platforms share one
// buffer-ownership model: the slab belongs to the read loop, and datagram
// bytes are copied out into pooled Bufs before they cross goroutines.

// MaxDatagram is the largest UDP payload a slab segment must hold — the
// 64 KiB IPv4 datagram ceiling, comfortably above any marshaled frame
// (MaxPayload plus headers).
const MaxDatagram = 1 << 16

// ReadBatch is the number of datagrams a batch reader drains per wakeup —
// the segment count of a DefaultSlabs slab.
const ReadBatch = 32

// Slab is a contiguous receive arena divided into equal segments. The
// segments alias one backing array but never overlap, so the kernel can
// fill all of them in a single batched receive.
type Slab struct {
	backing []byte
	segSize int
	segs    int
}

// NewSlab returns an arena of segments × segSize bytes.
func NewSlab(segments, segSize int) *Slab {
	return &Slab{
		backing: make([]byte, segments*segSize),
		segSize: segSize,
		segs:    segments,
	}
}

// Segments returns the number of segments.
func (s *Slab) Segments() int { return s.segs }

// SegmentSize returns the byte size of each segment.
func (s *Slab) SegmentSize() int { return s.segSize }

// Segment returns segment i as a full-capacity slice. The slice is
// capacity-clipped so an append past the segment cannot silently bleed
// into its neighbor.
func (s *Slab) Segment(i int) []byte {
	off := i * s.segSize
	return s.backing[off : off+s.segSize : off+s.segSize]
}

// SlabPool recycles slabs of one fixed geometry, with the same
// hit/miss/recycled accounting BufPool keeps for frame buffers.
type SlabPool struct {
	segments int
	segSize  int
	pool     sync.Pool
	stats    *metrics.PoolStats
}

// NewSlabPool returns a pool of segments × segSize slabs recording into
// stats; a nil stats gets a private counter set.
func NewSlabPool(segments, segSize int, stats *metrics.PoolStats) *SlabPool {
	if stats == nil {
		stats = &metrics.PoolStats{}
	}
	return &SlabPool{segments: segments, segSize: segSize, stats: stats}
}

// Stats returns the pool's counters.
func (p *SlabPool) Stats() *metrics.PoolStats { return p.stats }

// Get returns a slab of the pool's geometry, recycled when one is
// available.
func (p *SlabPool) Get() *Slab {
	if v := p.pool.Get(); v != nil {
		if s, ok := v.(*Slab); ok {
			p.stats.Hits.Add(1)
			return s
		}
	}
	p.stats.Misses.Add(1)
	return NewSlab(p.segments, p.segSize)
}

// Put returns a slab for reuse. Slabs of a different geometry are left to
// the garbage collector: a segment-address mix-up is worse than one lost
// arena.
func (p *SlabPool) Put(s *Slab) {
	if s == nil || s.segs != p.segments || s.segSize != p.segSize {
		return
	}
	p.stats.Recycled.Add(uint64(len(s.backing)))
	p.pool.Put(s)
}

// DefaultSlabs serves the UDP batch readers: ReadBatch segments of
// MaxDatagram bytes each, shared process-wide so short-lived underlays
// (tests, reconnects) reuse arenas instead of re-allocating 2 MiB each.
var DefaultSlabs = NewSlabPool(ReadBatch, MaxDatagram, nil)

// SlabSnapshot returns the shared slab pool's counters.
func SlabSnapshot() metrics.PoolSnapshot { return DefaultSlabs.Stats().Snapshot() }

// Package wire defines the binary message formats exchanged by overlay
// nodes: routing-level Packets and link-level Frames, together with the
// identifier spaces (node, port, group, link) used throughout the overlay.
//
// The same encoding is used by the in-process network emulator and by the
// real UDP transport, so every experiment exercises the production
// marshaling path.
package wire

import "fmt"

// NodeID identifies an overlay node. The zero value is invalid; node
// identifiers are assigned from 1 upward when the overlay topology is
// defined.
type NodeID uint16

// String renders the node ID as "n<id>".
func (n NodeID) String() string { return fmt.Sprintf("n%d", uint16(n)) }

// Port is a virtual port in the overlay addressing scheme. Together with a
// NodeID it identifies a client endpoint, mimicking the Internet's
// IP-address-plus-port scheme as described in §II-B of the paper.
type Port uint16

// GroupID is a multicast or anycast group address. Groups live in their own
// address space, analogous to the IP multicast range.
type GroupID uint32

// String renders the group ID as "g<id>".
func (g GroupID) String() string { return fmt.Sprintf("g%d", uint32(g)) }

// LinkID indexes an overlay link in the topology's link registry. Source
// based routing stamps packets with a bitmask in which bit i corresponds to
// LinkID i (§II-B: "each bit in the bitmask represents an overlay link").
type LinkID uint16

// PacketType discriminates routing-level packets.
type PacketType uint8

// Packet types. Control packets (link-state, group-state, hello) carry
// their component-specific payloads opaquely; the owning component defines
// the payload encoding.
const (
	PTData PacketType = iota + 1
	PTLinkState
	PTGroupState
	PTHello
	PTHelloAck
	PTSessionCtl
	// PTMembership carries the dynamic-membership protocol: join requests,
	// member-directory updates, view digests, and full-directory syncs.
	PTMembership
)

// String returns a short mnemonic for the packet type.
func (t PacketType) String() string {
	switch t {
	case PTData:
		return "data"
	case PTLinkState:
		return "linkstate"
	case PTGroupState:
		return "groupstate"
	case PTHello:
		return "hello"
	case PTHelloAck:
		return "helloack"
	case PTSessionCtl:
		return "sessionctl"
	case PTMembership:
		return "membership"
	default:
		return fmt.Sprintf("pt(%d)", uint8(t))
	}
}

// RouteKind selects the routing service applied to a packet (Fig. 2
// routing level).
type RouteKind uint8

// Routing services.
const (
	// RouteLinkState forwards hop by hop toward Dst using each node's
	// current shortest-path table.
	RouteLinkState RouteKind = iota + 1
	// RouteSourceMask forwards along exactly the overlay links whose bits
	// are set in the packet's Mask (disjoint paths, dissemination graphs).
	RouteSourceMask
	// RouteMulticast forwards along the source-rooted multicast tree for
	// the packet's Group.
	RouteMulticast
	// RouteFlood performs constrained flooding on the overlay topology:
	// every node forwards on all links except the incoming one, with
	// duplicate suppression.
	RouteFlood
)

// String returns a short mnemonic for the route kind.
func (r RouteKind) String() string {
	switch r {
	case RouteLinkState:
		return "linkstate"
	case RouteSourceMask:
		return "sourcemask"
	case RouteMulticast:
		return "multicast"
	case RouteFlood:
		return "flood"
	default:
		return fmt.Sprintf("route(%d)", uint8(r))
	}
}

// LinkProtoID selects the link-level protocol applied on each overlay-link
// hop of a flow (Fig. 2 link level).
type LinkProtoID uint8

// Link-level protocols.
const (
	// LPBestEffort transmits once with no recovery.
	LPBestEffort LinkProtoID = iota + 1
	// LPReliable is the hop-by-hop Reliable Data Link: ARQ with sliding
	// window, NACK-triggered and RTO-triggered retransmission, and
	// out-of-order forwarding at intermediate nodes.
	LPReliable
	// LPRealTime is the NM-Strikes real-time recovery protocol: N spaced
	// retransmission requests by the receiver, M spaced retransmissions by
	// the sender, bounded by the flow deadline.
	LPRealTime
	// LPSingleStrike is the VoIP-era predecessor of NM-Strikes permitting
	// one request and one retransmission per lost packet.
	LPSingleStrike
	// LPITPriority is intrusion-tolerant priority messaging: per-source
	// buffers with priority eviction and round-robin forwarding.
	LPITPriority
	// LPITReliable is intrusion-tolerant reliable messaging: per-flow
	// buffers with backpressure and round-robin forwarding.
	LPITReliable
)

// String returns a short mnemonic for the link protocol.
func (p LinkProtoID) String() string {
	switch p {
	case LPBestEffort:
		return "besteffort"
	case LPReliable:
		return "reliable"
	case LPRealTime:
		return "realtime"
	case LPSingleStrike:
		return "singlestrike"
	case LPITPriority:
		return "it-priority"
	case LPITReliable:
		return "it-reliable"
	default:
		return fmt.Sprintf("lp(%d)", uint8(p))
	}
}

// Flags carries per-packet boolean attributes.
type Flags uint8

// Packet flags.
const (
	// FSigned marks a packet carrying an Ed25519 source signature
	// (intrusion-tolerant messaging).
	FSigned Flags = 1 << iota
	// FRetrans marks a retransmitted copy of a data packet.
	FRetrans
	// FAnycast marks a packet addressed to a group from which the ingress
	// node must select a single member.
	FAnycast
	// FOrdered asks the destination session layer to deliver the flow in
	// sequence order (buffering gaps; §III-A: the final destination is
	// responsible for buffering received packets until they can be
	// delivered in order).
	FOrdered
)

// Has reports whether every flag in mask is set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

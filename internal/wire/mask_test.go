package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitmaskSetHasClear(t *testing.T) {
	var m Bitmask
	if !m.Empty() {
		t.Fatal("zero mask not empty")
	}
	for _, id := range []LinkID{0, 1, 63, 64, 127, 128, 255} {
		m.Set(id)
		if !m.Has(id) {
			t.Fatalf("Has(%d) = false after Set", id)
		}
	}
	if m.Count() != 7 {
		t.Fatalf("Count() = %d, want 7", m.Count())
	}
	m.Clear(64)
	if m.Has(64) {
		t.Fatal("Has(64) = true after Clear")
	}
	if m.Count() != 6 {
		t.Fatalf("Count() = %d, want 6", m.Count())
	}
}

func TestBitmaskOutOfRangeIgnored(t *testing.T) {
	var m Bitmask
	m.Set(LinkID(MaxLinks))
	if !m.Empty() {
		t.Fatal("out-of-range Set modified mask")
	}
	if m.Has(LinkID(MaxLinks)) {
		t.Fatal("Has out-of-range = true")
	}
}

func TestBitmaskLinksSorted(t *testing.T) {
	var m Bitmask
	ids := []LinkID{200, 5, 64, 63, 0}
	for _, id := range ids {
		m.Set(id)
	}
	got := m.Links()
	want := []LinkID{0, 5, 63, 64, 200}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Links() = %v, want %v", got, want)
	}
}

func TestBitmaskOr(t *testing.T) {
	var a, b Bitmask
	a.Set(1)
	b.Set(200)
	a.Or(b)
	if !a.Has(1) || !a.Has(200) {
		t.Fatalf("Or result missing members: %v", a.Links())
	}
}

// TestBitmaskMarshalRoundTripProperty checks mask encode/decode over
// arbitrary link sets via the packet encoding path.
func TestBitmaskMarshalRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			ids := make([]uint16, r.Intn(40))
			for i := range ids {
				ids[i] = uint16(r.Intn(MaxLinks))
			}
			vals[0] = reflect.ValueOf(ids)
		},
	}
	prop := func(ids []uint16) bool {
		var m Bitmask
		for _, id := range ids {
			m.Set(LinkID(id))
		}
		buf := appendMask(nil, m)
		got, rest, err := readMask(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got == m
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReadMaskRejectsOversizedLength(t *testing.T) {
	buf := []byte{maskBytes + 1}
	buf = append(buf, make([]byte, maskBytes+1)...)
	if _, _, err := readMask(buf); err == nil {
		t.Fatal("readMask accepted oversized length")
	}
}

package wire

import (
	"bytes"
	"testing"
	"time"
)

func TestHomeShardStableAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8, 64} {
		seen := make(map[int]int)
		for id := NodeID(1); id <= 500; id++ {
			h := HomeShard(id, shards)
			if h < 0 || h >= shards {
				t.Fatalf("HomeShard(%d, %d) = %d out of range", id, shards, h)
			}
			if h2 := HomeShard(id, shards); h2 != h {
				t.Fatalf("HomeShard(%d, %d) unstable: %d then %d", id, shards, h, h2)
			}
			seen[h]++
		}
		if shards > 1 && len(seen) < 2 {
			t.Fatalf("HomeShard over 500 ids used only %d of %d shards", len(seen), shards)
		}
	}
	if HomeShard(7, 0) != 0 || HomeShard(7, -3) != 0 {
		t.Fatal("HomeShard must collapse to 0 for degenerate shard counts")
	}
}

func TestDatagramIsControl(t *testing.T) {
	marshal := func(f *Frame) []byte {
		b, err := f.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		return b
	}
	ctlPkt := func(pt PacketType) *Packet {
		return &Packet{Type: pt, Route: RouteFlood, TTL: 8, Src: 3, Payload: []byte{1, 2, 3}}
	}
	cases := []struct {
		name string
		data []byte
		want bool
	}{
		{"hello", marshal(&Frame{Proto: LPBestEffort, Kind: FHello, SendTime: time.Second}), true},
		{"hello-ack", marshal(&Frame{Proto: LPBestEffort, Kind: FHelloAck}), true},
		{"lsa", marshal(&Frame{Proto: LPBestEffort, Kind: FData, Packet: ctlPkt(PTLinkState)}), true},
		{"group-state", marshal(&Frame{Proto: LPBestEffort, Kind: FData, Packet: ctlPkt(PTGroupState)}), true},
		{"lsa-authed", marshal(&Frame{
			Proto: LPBestEffort, Kind: FData,
			Auth:   bytes.Repeat([]byte{0xab}, 32),
			Packet: ctlPkt(PTLinkState),
		}), true},
		{"data", marshal(&Frame{Proto: LPBestEffort, Kind: FData, Packet: samplePacket()}), false},
		{"data-authed", marshal(&Frame{
			Proto: LPITPriority, Kind: FData,
			Auth:   bytes.Repeat([]byte{0xcd}, 32),
			Packet: samplePacket(),
		}), false},
		{"ack", marshal(&Frame{Proto: LPReliable, Kind: FAck, Seq: 9, Ack: 8}), false},
		{"bare-data-frame", marshal(&Frame{Proto: LPReliable, Kind: FData, Seq: 4, Packet: samplePacket()}), false},
		{"empty", nil, false},
		{"short", []byte{0, 1, 2}, false},
	}
	for _, tc := range cases {
		if got := DatagramIsControl(tc.data); got != tc.want {
			t.Errorf("%s: DatagramIsControl = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Truncations must classify without panicking.
	full := marshal(&Frame{
		Proto: LPBestEffort, Kind: FData,
		Auth:   bytes.Repeat([]byte{0xab}, 32),
		Packet: ctlPkt(PTLinkState),
	})
	for n := 0; n < len(full); n++ {
		_ = DatagramIsControl(full[:n])
	}
}

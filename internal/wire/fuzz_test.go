package wire

import (
	"reflect"
	"testing"
)

// FuzzUnmarshalPacket checks the packet decoder never panics and that any
// successfully decoded packet re-encodes and decodes to the same value.
func FuzzUnmarshalPacket(f *testing.F) {
	seed, err := samplePacket().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, packetFixedLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, _, err := UnmarshalPacket(data)
		if err != nil {
			return
		}
		buf, err := p.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of decoded packet failed: %v", err)
		}
		q, rest, err := UnmarshalPacket(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decode failed: %v (rest %d)", err, len(rest))
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("decode/encode not idempotent:\n p: %+v\n q: %+v", p, q)
		}
	})
}

// FuzzUnmarshalFrame checks the frame decoder the same way.
func FuzzUnmarshalFrame(f *testing.F) {
	fr := &Frame{Proto: LPReliable, Kind: FData, Seq: 3, Packet: samplePacket()}
	seed, err := fr.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, frameFixedLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, _, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		buf, err := g.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of decoded frame failed: %v", err)
		}
		h, rest, err := UnmarshalFrame(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decode failed: %v (rest %d)", err, len(rest))
		}
		if !reflect.DeepEqual(g, h) {
			t.Fatalf("decode/encode not idempotent:\n g: %+v\n h: %+v", g, h)
		}
	})
}

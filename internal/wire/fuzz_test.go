package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzUnmarshalPacket checks the packet decoder never panics and that any
// successfully decoded packet re-encodes and decodes to the same value.
func FuzzUnmarshalPacket(f *testing.F) {
	seed, err := samplePacket().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, packetFixedLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, _, err := UnmarshalPacket(data)
		if err != nil {
			return
		}
		buf, err := p.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of decoded packet failed: %v", err)
		}
		q, rest, err := UnmarshalPacket(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decode failed: %v (rest %d)", err, len(rest))
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("decode/encode not idempotent:\n p: %+v\n q: %+v", p, q)
		}
	})
}

// FuzzUnmarshalFrame checks the frame decoder the same way.
func FuzzUnmarshalFrame(f *testing.F) {
	fr := &Frame{Proto: LPReliable, Kind: FData, Seq: 3, Packet: samplePacket()}
	seed, err := fr.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, frameFixedLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, _, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		buf, err := g.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of decoded frame failed: %v", err)
		}
		h, rest, err := UnmarshalFrame(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decode failed: %v (rest %d)", err, len(rest))
		}
		if !reflect.DeepEqual(g, h) {
			t.Fatalf("decode/encode not idempotent:\n g: %+v\n h: %+v", g, h)
		}
	})
}

// FuzzFramePooledRoundTrip exercises the allocation-free hot path: a frame
// is AppendMarshal'd into a dirty pooled buffer (as the forwarding pipeline
// reuses buffers holding prior frames) and decoded back through the
// zero-copy scratch decoder. The encoding must be byte-identical to a fresh
// Marshal — no prior buffer contents may leak — and the scratch decode must
// reproduce the frame exactly even when the scratch values hold stale
// state.
func FuzzFramePooledRoundTrip(f *testing.F) {
	fr := &Frame{Proto: LPReliable, Kind: FData, Seq: 3, Auth: []byte{9, 8, 7}, Packet: samplePacket()}
	seed, err := fr.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, frameFixedLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, _, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		fresh, err := g.Marshal()
		if err != nil {
			t.Fatalf("fresh marshal failed: %v", err)
		}

		buf := DefaultBufPool.Get(g.MarshaledSize())
		defer buf.Release()
		// Dirty the buffer's whole capacity to simulate reuse after a
		// larger prior frame.
		dirty := buf.B[:cap(buf.B)]
		for i := range dirty {
			dirty[i] = 0xAA
		}
		out, err := g.AppendMarshal(buf.B[:0])
		if err != nil {
			t.Fatalf("pooled marshal failed: %v", err)
		}
		buf.B = out
		if !bytes.Equal(out, fresh) {
			t.Fatalf("pooled marshal leaked dirty buffer contents:\n got:  %x\n want: %x", out, fresh)
		}

		// Decode through scratch values preloaded with stale state, as the
		// node's receive path reuses its scratch frame/packet per datagram.
		sf := Frame{Proto: 0x7f, Seq: 0xdeadbeef, Auth: []byte{1}, Packet: &Packet{Payload: []byte{2}}}
		sp := Packet{Payload: []byte{3, 3}, Sig: []byte{4}, Mask: Bitmask{0xff}}
		rest, err := UnmarshalFrameInto(&sf, &sp, out)
		if err != nil {
			t.Fatalf("scratch decode of pooled encoding failed: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("scratch decode left %d trailing bytes", len(rest))
		}
		if !reflect.DeepEqual(g, &sf) {
			t.Fatalf("scratch decode differs (stale state leaked?):\n g:  %+v\n sf: %+v", g, &sf)
		}
	})
}

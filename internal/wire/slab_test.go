package wire

import (
	"bytes"
	"testing"
)

func TestSlabSegmentsDoNotOverlap(t *testing.T) {
	s := NewSlab(4, 64)
	if s.Segments() != 4 || s.SegmentSize() != 64 {
		t.Fatalf("geometry = %d×%d", s.Segments(), s.SegmentSize())
	}
	for i := 0; i < 4; i++ {
		seg := s.Segment(i)
		if len(seg) != 64 || cap(seg) != 64 {
			t.Fatalf("segment %d: len=%d cap=%d", i, len(seg), cap(seg))
		}
		for j := range seg {
			seg[j] = byte(i + 1)
		}
	}
	for i := 0; i < 4; i++ {
		want := bytes.Repeat([]byte{byte(i + 1)}, 64)
		if !bytes.Equal(s.Segment(i), want) {
			t.Fatalf("segment %d corrupted by neighbor writes", i)
		}
	}
}

func TestSlabSegmentAppendCannotBleed(t *testing.T) {
	s := NewSlab(2, 16)
	s.Segment(1)[0] = 0xAA
	seg := s.Segment(0)
	// Appending past a full segment must reallocate, not overwrite the
	// neighbor (the slice is capacity-clipped).
	grown := append(seg, 0xBB)
	grown[16] = 0xBB
	if s.Segment(1)[0] != 0xAA {
		t.Fatal("append past segment 0 bled into segment 1")
	}
}

func TestSlabPoolAccounting(t *testing.T) {
	p := NewSlabPool(2, 32, nil)
	a := p.Get()
	if got := p.Stats().Snapshot(); got.Misses != 1 || got.Hits != 0 {
		t.Fatalf("first Get: %+v", got)
	}
	p.Put(a)
	if got := p.Stats().Snapshot(); got.Recycled != 64 {
		t.Fatalf("recycled bytes = %d, want 64", got.Recycled)
	}
	b := p.Get()
	if b != a {
		t.Fatal("pool did not recycle the slab")
	}
	if got := p.Stats().Snapshot(); got.Hits != 1 {
		t.Fatalf("after recycle: %+v", got)
	}
}

func TestSlabPoolRejectsForeignGeometry(t *testing.T) {
	p := NewSlabPool(2, 32, nil)
	p.Put(NewSlab(4, 32)) // wrong segment count
	p.Put(NewSlab(2, 64)) // wrong segment size
	p.Put(nil)
	if got := p.Stats().Snapshot(); got.Recycled != 0 {
		t.Fatalf("foreign slab accepted: %+v", got)
	}
	s := p.Get()
	if s.Segments() != 2 || s.SegmentSize() != 32 {
		t.Fatalf("got foreign slab %d×%d", s.Segments(), s.SegmentSize())
	}
}

package wire

// CapturePacket copies src into dst for retention past the borrowing call
// (queues, retransmission state), backing dst's byte fields with a single
// pooled refcounted buffer instead of the fresh per-field allocations
// Clone performs. It returns the backing Buf with reference count 1 —
// ownership transfers to the caller, who must Release it (or hand it on)
// once dst is no longer needed — or nil when src carries no bytes.
//
// dst's Sig and Payload alias the returned buffer: they are full-capacity
// subslices, so appending to either is a misuse (it would clobber the
// neighbouring field or the pool's recycled bytes).
func CapturePacket(dst, src *Packet, pool *BufPool) *Buf {
	*dst = *src
	ns, np := len(src.Sig), len(src.Payload)
	if ns+np == 0 {
		dst.Sig, dst.Payload = nil, nil
		return nil
	}
	buf := pool.Get(ns + np)
	b := append(buf.B, src.Sig...)
	b = append(b, src.Payload...)
	buf.B = b
	dst.Sig, dst.Payload = nil, nil
	if ns > 0 {
		dst.Sig = b[:ns:ns]
	}
	if np > 0 {
		dst.Payload = b[ns:][:np:np]
	}
	return buf
}

package wire

// HomeShard maps an overlay node to its home data-plane shard by a stable
// FNV-1a hash of the node id. The deployed daemon homes each peer's link
// sessions, dedup windows, and QoS cores on this shard and pins the peer's
// underlay flow to it, so a peer's frames arrive on the shard that owns
// its protocol state. The hash depends only on (id, shards): every daemon
// in a deployment computes the same homing, and re-registering a peer's
// addresses never moves it.
func HomeShard(id NodeID, shards int) int {
	if shards <= 1 {
		return 0
	}
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(id&0xff)) * prime
	h = (h ^ uint64(id>>8)) * prime
	return int(h % uint64(shards))
}

// DatagramIsControl classifies a marshaled frame without decoding it:
// true means the frame belongs to the overlay's control plane — hello
// probes and their acks, and best-effort data frames carrying link-state,
// group-state, or membership packets — which a sharded daemon handles on
// the control
// shard regardless of the sending peer's home shard. Everything else
// (data packets, acks, retransmission requests) is per-peer link-session
// traffic that must stay on the peer's home shard.
//
// The classification peeks fixed offsets of the wire format: the frame
// kind at byte 1, the flags at byte 2, the optional length-prefixed auth
// blob after the 28-byte fixed header, and the packet type in the first
// packet byte. Truncated or unrecognizable input classifies as data; the
// full decoder rejects it later on whichever shard it lands.
func DatagramIsControl(b []byte) bool {
	if len(b) < frameFixedLen {
		return false
	}
	switch FrameKind(b[1]) {
	case FHello, FHelloAck:
		return true
	case FData:
	default:
		return false
	}
	flags := b[2]
	if flags&frameHasPacket == 0 {
		return false
	}
	off := frameFixedLen
	if flags&frameHasAuth != 0 {
		if len(b) <= off {
			return false
		}
		off += 1 + int(b[off])
	}
	if len(b) <= off {
		return false
	}
	switch PacketType(b[off]) {
	case PTLinkState, PTGroupState, PTMembership:
		return true
	}
	return false
}

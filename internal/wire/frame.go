package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// FrameKind discriminates link-level frames.
type FrameKind uint8

// Frame kinds.
const (
	// FData carries a routing-level packet one hop.
	FData FrameKind = iota + 1
	// FAck acknowledges link sequence numbers (cumulative + selective).
	FAck
	// FReq requests retransmission of a link sequence number (NM-Strikes
	// and Reliable Data Link NACK).
	FReq
	// FHello probes a neighbor for liveness and link metrics.
	FHello
	// FHelloAck answers an FHello, echoing its send time.
	FHelloAck
)

// String returns a short mnemonic for the frame kind.
func (k FrameKind) String() string {
	switch k {
	case FData:
		return "data"
	case FAck:
		return "ack"
	case FReq:
		return "req"
	case FHello:
		return "hello"
	case FHelloAck:
		return "helloack"
	default:
		return fmt.Sprintf("fk(%d)", uint8(k))
	}
}

// frameFixedLen is the size of the fixed portion of the frame header.
const frameFixedLen = 28

const (
	frameHasPacket = 1 << iota
	frameHasAuth
)

// Frame is the link-level unit exchanged between neighboring overlay
// nodes. Link protocols (Fig. 2 link level) wrap routing-level Packets in
// frames, adding per-hop sequencing, acknowledgment, and recovery state.
type Frame struct {
	// Proto identifies the link protocol instance this frame belongs to;
	// each overlay link multiplexes independent protocol instances.
	Proto LinkProtoID
	// Kind discriminates data from control frames.
	Kind FrameKind
	// Seq is the link-level sequence number of a data frame, or the
	// requested sequence number in an FReq.
	Seq uint32
	// Ack is the cumulative acknowledgment: every sequence <= Ack has been
	// received.
	Ack uint32
	// AckBits selectively acknowledges sequences Ack+1..Ack+64: bit i set
	// means Ack+1+i was received.
	AckBits uint64
	// SendTime is the sender's clock when the frame was transmitted, echoed
	// in hello exchanges to measure RTT.
	SendTime time.Duration
	// Auth is an optional per-link HMAC over the frame (intrusion-tolerant
	// overlays authenticate every hop).
	Auth []byte
	// Packet is the wrapped routing-level packet for FData frames.
	Packet *Packet
}

// AppendMarshal appends the encoding of f to dst.
func (f *Frame) AppendMarshal(dst []byte) ([]byte, error) {
	if len(f.Auth) > 255 {
		return dst, fmt.Errorf("wire: frame auth %d bytes: %w", len(f.Auth), ErrTooLarge)
	}
	var hdr [frameFixedLen]byte
	hdr[0] = byte(f.Proto)
	hdr[1] = byte(f.Kind)
	var flags byte
	if f.Packet != nil {
		flags |= frameHasPacket
	}
	if len(f.Auth) > 0 {
		flags |= frameHasAuth
	}
	hdr[2] = flags
	binary.BigEndian.PutUint32(hdr[4:], f.Seq)
	binary.BigEndian.PutUint32(hdr[8:], f.Ack)
	binary.BigEndian.PutUint64(hdr[12:], f.AckBits)
	binary.BigEndian.PutUint64(hdr[20:], uint64(f.SendTime))
	dst = append(dst, hdr[:]...)
	if len(f.Auth) > 0 {
		dst = append(dst, byte(len(f.Auth)))
		dst = append(dst, f.Auth...)
	}
	if f.Packet != nil {
		var err error
		dst, err = f.Packet.AppendMarshal(dst)
		if err != nil {
			return dst, fmt.Errorf("wire: frame packet: %w", err)
		}
	}
	return dst, nil
}

// MarshaledSize returns the exact encoded size of f.
func (f *Frame) MarshaledSize() int {
	size := frameFixedLen
	if len(f.Auth) > 0 {
		size += 1 + len(f.Auth)
	}
	if f.Packet != nil {
		size += f.Packet.MarshaledSize()
	}
	return size
}

// Marshal encodes f into a fresh buffer.
func (f *Frame) Marshal() ([]byte, error) {
	return f.AppendMarshal(make([]byte, 0, f.MarshaledSize()))
}

// UnmarshalFrameInto decodes a frame into f without allocating: the frame's
// wrapped packet (if any) is decoded into pkt, and f.Auth plus the packet's
// Sig/Payload alias src. The decoded frame borrows src and pkt; callers
// that keep it past the lifetime of either must Clone the packet and copy
// Auth. All fields of f are overwritten. Returns any trailing bytes.
func UnmarshalFrameInto(f *Frame, pkt *Packet, src []byte) ([]byte, error) {
	if len(src) < frameFixedLen {
		return nil, fmt.Errorf("wire: frame header: %w", ErrTruncated)
	}
	*f = Frame{
		Proto:    LinkProtoID(src[0]),
		Kind:     FrameKind(src[1]),
		Seq:      binary.BigEndian.Uint32(src[4:]),
		Ack:      binary.BigEndian.Uint32(src[8:]),
		AckBits:  binary.BigEndian.Uint64(src[12:]),
		SendTime: time.Duration(binary.BigEndian.Uint64(src[20:])),
	}
	flags := src[2]
	rest := src[frameFixedLen:]
	if flags&frameHasAuth != 0 {
		if len(rest) < 1 {
			return nil, fmt.Errorf("wire: frame auth length: %w", ErrTruncated)
		}
		authLen := int(rest[0])
		rest = rest[1:]
		if len(rest) < authLen {
			return nil, fmt.Errorf("wire: frame auth body: %w", ErrTruncated)
		}
		if authLen > 0 {
			f.Auth = rest[:authLen:authLen]
		}
		rest = rest[authLen:]
	}
	if flags&frameHasPacket != 0 {
		var err error
		rest, err = UnmarshalPacketInto(pkt, rest)
		if err != nil {
			return nil, fmt.Errorf("wire: frame packet: %w", err)
		}
		f.Packet = pkt
	}
	return rest, nil
}

// UnmarshalFrame decodes a frame into fresh, fully owned values and returns
// any trailing bytes.
func UnmarshalFrame(src []byte) (*Frame, []byte, error) {
	f := &Frame{}
	rest, err := UnmarshalFrameInto(f, &Packet{}, src)
	if err != nil {
		return nil, nil, err
	}
	if f.Auth != nil {
		f.Auth = append([]byte(nil), f.Auth...)
	}
	if f.Packet != nil {
		if f.Packet.Sig != nil {
			f.Packet.Sig = append([]byte(nil), f.Packet.Sig...)
		}
		if f.Packet.Payload != nil {
			f.Packet.Payload = append([]byte(nil), f.Packet.Payload...)
		}
	}
	return f, rest, nil
}

// AppendAuthable appends the canonical encoding of f used for per-link
// HMACs to dst: the Auth field is omitted so the MAC covers everything
// else.
func (f *Frame) AppendAuthable(dst []byte) ([]byte, error) {
	cp := *f
	cp.Auth = nil
	return cp.AppendMarshal(dst)
}

// AuthableBytes returns the canonical authable encoding in a fresh buffer.
func (f *Frame) AuthableBytes() ([]byte, error) {
	cp := *f
	cp.Auth = nil
	return cp.Marshal()
}

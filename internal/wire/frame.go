package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// FrameKind discriminates link-level frames.
type FrameKind uint8

// Frame kinds.
const (
	// FData carries a routing-level packet one hop.
	FData FrameKind = iota + 1
	// FAck acknowledges link sequence numbers (cumulative + selective).
	FAck
	// FReq requests retransmission of a link sequence number (NM-Strikes
	// and Reliable Data Link NACK).
	FReq
	// FHello probes a neighbor for liveness and link metrics.
	FHello
	// FHelloAck answers an FHello, echoing its send time.
	FHelloAck
)

// String returns a short mnemonic for the frame kind.
func (k FrameKind) String() string {
	switch k {
	case FData:
		return "data"
	case FAck:
		return "ack"
	case FReq:
		return "req"
	case FHello:
		return "hello"
	case FHelloAck:
		return "helloack"
	default:
		return fmt.Sprintf("fk(%d)", uint8(k))
	}
}

// frameFixedLen is the size of the fixed portion of the frame header.
const frameFixedLen = 28

const (
	frameHasPacket = 1 << iota
	frameHasAuth
)

// Frame is the link-level unit exchanged between neighboring overlay
// nodes. Link protocols (Fig. 2 link level) wrap routing-level Packets in
// frames, adding per-hop sequencing, acknowledgment, and recovery state.
type Frame struct {
	// Proto identifies the link protocol instance this frame belongs to;
	// each overlay link multiplexes independent protocol instances.
	Proto LinkProtoID
	// Kind discriminates data from control frames.
	Kind FrameKind
	// Seq is the link-level sequence number of a data frame, or the
	// requested sequence number in an FReq.
	Seq uint32
	// Ack is the cumulative acknowledgment: every sequence <= Ack has been
	// received.
	Ack uint32
	// AckBits selectively acknowledges sequences Ack+1..Ack+64: bit i set
	// means Ack+1+i was received.
	AckBits uint64
	// SendTime is the sender's clock when the frame was transmitted, echoed
	// in hello exchanges to measure RTT.
	SendTime time.Duration
	// Auth is an optional per-link HMAC over the frame (intrusion-tolerant
	// overlays authenticate every hop).
	Auth []byte
	// Packet is the wrapped routing-level packet for FData frames.
	Packet *Packet
}

// AppendMarshal appends the encoding of f to dst.
func (f *Frame) AppendMarshal(dst []byte) ([]byte, error) {
	if len(f.Auth) > 255 {
		return dst, fmt.Errorf("wire: frame auth %d bytes: %w", len(f.Auth), ErrTooLarge)
	}
	var hdr [frameFixedLen]byte
	hdr[0] = byte(f.Proto)
	hdr[1] = byte(f.Kind)
	var flags byte
	if f.Packet != nil {
		flags |= frameHasPacket
	}
	if len(f.Auth) > 0 {
		flags |= frameHasAuth
	}
	hdr[2] = flags
	binary.BigEndian.PutUint32(hdr[4:], f.Seq)
	binary.BigEndian.PutUint32(hdr[8:], f.Ack)
	binary.BigEndian.PutUint64(hdr[12:], f.AckBits)
	binary.BigEndian.PutUint64(hdr[20:], uint64(f.SendTime))
	dst = append(dst, hdr[:]...)
	if len(f.Auth) > 0 {
		dst = append(dst, byte(len(f.Auth)))
		dst = append(dst, f.Auth...)
	}
	if f.Packet != nil {
		var err error
		dst, err = f.Packet.AppendMarshal(dst)
		if err != nil {
			return dst, fmt.Errorf("wire: frame packet: %w", err)
		}
	}
	return dst, nil
}

// Marshal encodes f into a fresh buffer.
func (f *Frame) Marshal() ([]byte, error) {
	size := frameFixedLen
	if len(f.Auth) > 0 {
		size += 1 + len(f.Auth)
	}
	if f.Packet != nil {
		size += f.Packet.MarshaledSize()
	}
	return f.AppendMarshal(make([]byte, 0, size))
}

// UnmarshalFrame decodes a frame and returns any trailing bytes.
func UnmarshalFrame(src []byte) (*Frame, []byte, error) {
	if len(src) < frameFixedLen {
		return nil, nil, fmt.Errorf("wire: frame header: %w", ErrTruncated)
	}
	f := &Frame{
		Proto:    LinkProtoID(src[0]),
		Kind:     FrameKind(src[1]),
		Seq:      binary.BigEndian.Uint32(src[4:]),
		Ack:      binary.BigEndian.Uint32(src[8:]),
		AckBits:  binary.BigEndian.Uint64(src[12:]),
		SendTime: time.Duration(binary.BigEndian.Uint64(src[20:])),
	}
	flags := src[2]
	rest := src[frameFixedLen:]
	if flags&frameHasAuth != 0 {
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("wire: frame auth length: %w", ErrTruncated)
		}
		authLen := int(rest[0])
		rest = rest[1:]
		if len(rest) < authLen {
			return nil, nil, fmt.Errorf("wire: frame auth body: %w", ErrTruncated)
		}
		f.Auth = append([]byte(nil), rest[:authLen]...)
		rest = rest[authLen:]
	}
	if flags&frameHasPacket != 0 {
		var err error
		f.Packet, rest, err = UnmarshalPacket(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: frame packet: %w", err)
		}
	}
	return f, rest, nil
}

// AuthableBytes returns the canonical encoding of f used for per-link
// HMACs: the Auth field is empty so the MAC covers everything else.
func (f *Frame) AuthableBytes() ([]byte, error) {
	cp := *f
	cp.Auth = nil
	return cp.Marshal()
}

package itmsg

import "sonet/internal/wire"

// StarvationResult is one point of the EXP-FAIR starvation-under-attack
// sweep, run directly against the DRR core at scheduler scale.
type StarvationResult struct {
	// Flows is the number of honest flows sharing the link with one
	// attacker.
	Flows int
	// Rounds is how many full link rounds (capacity Flows+1 packets each)
	// were served.
	Rounds int
	// AttackerServed counts packets the flooding attacker got through.
	AttackerServed int
	// HonestMinServed / HonestMaxServed bound honest per-flow service.
	HonestMinServed int
	HonestMaxServed int
}

// Holds reports whether the fair-share shape held: with every flow at
// weight 1, each honest flow is owed exactly one packet per round, and
// the attacker's 100x flood must not buy it more than its own single
// share (±1 for the start-up transient).
func (r StarvationResult) Holds() bool {
	return r.HonestMinServed >= r.Rounds-1 &&
		r.HonestMaxServed <= r.Rounds+1 &&
		r.AttackerServed <= r.Rounds+1
}

// StarvationSweep runs the §IV-B starvation experiment at core level:
// nFlows honest flows, each kept backlogged at its fair share, compete
// with one attacker flooding 100 packets per round. Every flow has weight
// 1, so fair service is exactly one packet per flow per round.
func StarvationSweep(nFlows, rounds int) StarvationResult {
	c := NewCore(CoreConfig{FlowBuffer: 128, Policy: PolicyEvictLowest})
	defer c.Close()

	honestKey := func(i int) FlowKey {
		return FlowKey{Src: wire.NodeID(i%60000 + 1), Dst: wire.NodeID(i / 60000)}
	}
	attacker := FlowKey{Src: 60001, Dst: 60001}

	var p wire.Packet
	p.Type = wire.PTData
	p.Route = wire.RouteLinkState
	enq := func(key FlowKey) {
		p.Src, p.Dst = key.Src, key.Dst
		c.Enqueue(key, &p)
	}

	// Prefill: two packets per honest flow so every flow stays backlogged
	// across the one-packet-per-round top-up below.
	for i := 0; i < nFlows; i++ {
		k := honestKey(i)
		enq(k)
		enq(k)
	}

	served := make(map[FlowKey]int, nFlows+1)
	for round := 0; round < rounds; round++ {
		for i := 0; i < 100; i++ {
			enq(attacker)
		}
		for i := 0; i < nFlows; i++ {
			enq(honestKey(i))
		}
		for i := 0; i < nFlows+1; i++ {
			pkt, buf, ok := c.Dequeue(0)
			if !ok {
				break
			}
			served[FlowKey{Src: pkt.Src, Dst: pkt.Dst}]++
			if buf != nil {
				buf.Release()
			}
		}
	}

	res := StarvationResult{Flows: nFlows, Rounds: rounds, AttackerServed: served[attacker]}
	res.HonestMinServed = rounds + 1
	for i := 0; i < nFlows; i++ {
		s := served[honestKey(i)]
		if s < res.HonestMinServed {
			res.HonestMinServed = s
		}
		if s > res.HonestMaxServed {
			res.HonestMaxServed = s
		}
	}
	return res
}

package itmsg

import (
	"testing"

	"sonet/internal/wire"
)

func testNodes() []wire.NodeID { return []wire.NodeID{1, 2, 3, 4} }

func TestSignVerifyRoundTrip(t *testing.T) {
	seed := []byte("deployment-seed")
	k1 := NewDeterministicKeyring(1, testNodes(), seed)
	k2 := NewDeterministicKeyring(2, testNodes(), seed)
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteFlood, Src: 1, Dst: 2, FlowSeq: 9, Payload: []byte("cmd")}
	if err := k1.SignPacket(p); err != nil {
		t.Fatalf("SignPacket: %v", err)
	}
	if !p.Flags.Has(wire.FSigned) {
		t.Fatal("FSigned not set")
	}
	if !k2.VerifyPacket(p) {
		t.Fatal("valid signature rejected")
	}
	// TTL changes en route must not break the signature.
	p.TTL--
	if !k2.VerifyPacket(p) {
		t.Fatal("signature broke on TTL decrement")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	seed := []byte("deployment-seed")
	k1 := NewDeterministicKeyring(1, testNodes(), seed)
	k2 := NewDeterministicKeyring(2, testNodes(), seed)
	p := &wire.Packet{Type: wire.PTData, Src: 1, Dst: 2, Payload: []byte("open valve 7")}
	if err := k1.SignPacket(p); err != nil {
		t.Fatalf("SignPacket: %v", err)
	}
	tampered := p.Clone()
	tampered.Payload[5] ^= 0xff
	if k2.VerifyPacket(tampered) {
		t.Fatal("tampered payload accepted")
	}
	spoofed := p.Clone()
	spoofed.Src = 3 // claim another origin
	if k2.VerifyPacket(spoofed) {
		t.Fatal("spoofed source accepted")
	}
	unsigned := p.Clone()
	unsigned.Sig = nil
	unsigned.Flags &^= wire.FSigned
	if k2.VerifyPacket(unsigned) {
		t.Fatal("unsigned packet accepted")
	}
}

func TestVerifyRejectsUnknownOrigin(t *testing.T) {
	seed := []byte("s")
	kAll := NewDeterministicKeyring(1, testNodes(), seed)
	kRogue := NewDeterministicKeyring(99, []wire.NodeID{99}, seed)
	p := &wire.Packet{Type: wire.PTData, Src: 99, Payload: []byte("x")}
	if err := kRogue.SignPacket(p); err != nil {
		t.Fatalf("SignPacket: %v", err)
	}
	if kAll.VerifyPacket(p) {
		t.Fatal("signature from unknown node accepted")
	}
}

func TestDifferentSeedsDoNotInteroperate(t *testing.T) {
	k1 := NewDeterministicKeyring(1, testNodes(), []byte("a"))
	k2 := NewDeterministicKeyring(2, testNodes(), []byte("b"))
	p := &wire.Packet{Type: wire.PTData, Src: 1, Payload: []byte("x")}
	if err := k1.SignPacket(p); err != nil {
		t.Fatalf("SignPacket: %v", err)
	}
	if k2.VerifyPacket(p) {
		t.Fatal("cross-deployment signature accepted")
	}
}

func TestMacFrameRoundTrip(t *testing.T) {
	seed := []byte("deployment-seed")
	k1 := NewDeterministicKeyring(1, testNodes(), seed)
	k2 := NewDeterministicKeyring(2, testNodes(), seed)
	f := &wire.Frame{Proto: wire.LPITPriority, Kind: wire.FData, Seq: 5, Packet: &wire.Packet{Type: wire.PTData, Src: 1}}
	if err := k1.MacFrame(f, 2); err != nil {
		t.Fatalf("MacFrame: %v", err)
	}
	if !k2.VerifyFrame(f, 1) {
		t.Fatal("valid MAC rejected")
	}
	f.Seq = 6
	if k2.VerifyFrame(f, 1) {
		t.Fatal("tampered frame accepted")
	}
}

func TestMacFrameWrongPeerRejected(t *testing.T) {
	seed := []byte("deployment-seed")
	k1 := NewDeterministicKeyring(1, testNodes(), seed)
	k3 := NewDeterministicKeyring(3, testNodes(), seed)
	f := &wire.Frame{Proto: wire.LPITPriority, Kind: wire.FData, Seq: 5}
	if err := k1.MacFrame(f, 2); err != nil {
		t.Fatalf("MacFrame: %v", err)
	}
	// Node 3 checking as if the frame came over the 1-3 link must fail:
	// the MAC was keyed for the 1-2 link.
	if k3.VerifyFrame(f, 1) {
		t.Fatal("MAC for another link accepted")
	}
}

func TestMacFrameUnknownPeer(t *testing.T) {
	k1 := NewDeterministicKeyring(1, testNodes(), []byte("s"))
	f := &wire.Frame{Kind: wire.FData}
	if err := k1.MacFrame(f, 77); err == nil {
		t.Fatal("MacFrame for unknown peer succeeded")
	}
	if k1.VerifyFrame(f, 77) {
		t.Fatal("VerifyFrame for unknown peer succeeded")
	}
}

package itmsg

import (
	"testing"
	"time"

	"sonet/internal/link"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// schedEnv is a one-directional test environment: frames transmitted by
// the protocol under test are delivered to a peer protocol after latency.
type schedEnv struct {
	sched     *sim.Scheduler
	latency   time.Duration
	peer      link.Protocol
	drop      func(*wire.Frame) bool
	delivered []*wire.Packet
	deliverAt []time.Duration
}

func (e *schedEnv) Clock() sim.Clock { return e.sched }

func (e *schedEnv) Transmit(f *wire.Frame) {
	buf, err := f.Marshal()
	if err != nil {
		panic(err)
	}
	if e.drop != nil && e.drop(f) {
		return
	}
	e.sched.After(e.latency, func() {
		g, _, err := wire.UnmarshalFrame(buf)
		if err != nil {
			panic(err)
		}
		if e.peer != nil {
			e.peer.HandleFrame(g)
		}
	})
}

func (e *schedEnv) Deliver(p *wire.Packet) {
	e.delivered = append(e.delivered, p)
	e.deliverAt = append(e.deliverAt, e.sched.Now())
}

func srcPacket(src wire.NodeID, seq uint32, prio uint8) *wire.Packet {
	return &wire.Packet{
		Type: wire.PTData, Route: wire.RouteFlood,
		Src: src, FlowSeq: seq, Priority: prio,
		Payload: []byte{byte(seq)},
	}
}

func flowPacket(src, dst wire.NodeID, seq uint32) *wire.Packet {
	return &wire.Packet{
		Type: wire.PTData, Route: wire.RouteLinkState,
		Src: src, Dst: dst, FlowSeq: seq,
		Payload: []byte{byte(seq)},
	}
}

func countBySrc(pkts []*wire.Packet) map[wire.NodeID]int {
	out := make(map[wire.NodeID]int)
	for _, p := range pkts {
		out[p.Src]++
	}
	return out
}

func newPriorityPair(sched *sim.Scheduler, cfg SchedConfig) (*PriorityLink, *schedEnv, *schedEnv) {
	sendEnv := &schedEnv{sched: sched, latency: 10 * time.Millisecond}
	recvEnv := &schedEnv{sched: sched, latency: 10 * time.Millisecond}
	sender := NewPriorityLink(sendEnv, cfg)
	receiver := NewPriorityLink(recvEnv, cfg)
	sendEnv.peer = receiver
	recvEnv.peer = sender
	return sender, sendEnv, recvEnv
}

func TestPriorityLinkPacesAtRate(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, recvEnv := newPriorityPair(sched, SchedConfig{Rate: 100})
	for i := uint32(1); i <= 10; i++ {
		sender.Send(srcPacket(1, i, 0))
	}
	sched.RunFor(time.Second)
	if len(recvEnv.delivered) != 10 {
		t.Fatalf("delivered %d, want 10", len(recvEnv.delivered))
	}
	// 100 pkt/s → 10 ms apart.
	for i := 1; i < len(recvEnv.deliverAt); i++ {
		gap := recvEnv.deliverAt[i] - recvEnv.deliverAt[i-1]
		if gap != 10*time.Millisecond {
			t.Fatalf("delivery gap %v at %d, want 10ms pacing", gap, i)
		}
	}
}

// floodAndTrickle drives a continuous attacker flood (well above link
// capacity) alongside a trickle of honest messages, returning the honest
// delivery count and mean honest queueing latency.
func floodAndTrickle(sched *sim.Scheduler, sender *PriorityLink, recvEnv *schedEnv) (honest int, meanLatency time.Duration) {
	stop := false
	var flood func()
	flood = func() {
		if stop {
			return
		}
		for i := 0; i < 100; i++ {
			sender.Send(srcPacket(66, 0, 0))
		}
		sched.After(100*time.Millisecond, flood)
	}
	sched.After(0, flood)
	for i := uint32(1); i <= 20; i++ {
		i := i
		sched.After(time.Duration(i)*50*time.Millisecond, func() {
			p := srcPacket(1, i, 0)
			p.Origin = sched.Now()
			sender.Send(p)
		})
	}
	sched.RunFor(5 * time.Second)
	stop = true
	var sum time.Duration
	for i, p := range recvEnv.delivered {
		if p.Src != 1 {
			continue
		}
		honest++
		sum += recvEnv.deliverAt[i] - p.Origin
	}
	if honest > 0 {
		meanLatency = sum / time.Duration(honest)
	}
	return honest, meanLatency
}

func TestPriorityFairnessUnderFlood(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, recvEnv := newPriorityPair(sched, SchedConfig{Rate: 100, BufferPerSource: 64})
	honest, lat := floodAndTrickle(sched, sender, recvEnv)
	// Round-robin: every honest message gets through promptly — the
	// attacker only consumes its own share of the link.
	if honest != 20 {
		t.Fatalf("honest source delivered %d/20 under flood", honest)
	}
	if lat > 100*time.Millisecond {
		t.Fatalf("honest latency %v under fairness, want prompt service", lat)
	}
}

func TestPriorityFIFOBaselineStarvesHonest(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := SchedConfig{Rate: 100, DisableFairness: true, TotalBuffer: 256}
	sender, _, recvEnv := newPriorityPair(sched, cfg)
	honest, lat := floodAndTrickle(sched, sender, recvEnv)
	// FIFO: honest traffic is either dropped at the full shared queue or
	// queued behind seconds of attacker backlog.
	if honest == 20 && lat < time.Second {
		t.Fatalf("FIFO baseline served honest traffic promptly (%d delivered, %v); expected starvation", honest, lat)
	}
}

func TestPriorityEvictionKeepsHighPriority(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, recvEnv := newPriorityPair(sched, SchedConfig{Rate: 1000, BufferPerSource: 4})
	// Stall pacing by filling before any transmission: enqueue 4 low then
	// 1 high; the high message must survive, evicting the oldest low.
	sender.Send(srcPacket(1, 1, 1))
	sender.Send(srcPacket(1, 2, 1))
	sender.Send(srcPacket(1, 3, 1))
	sender.Send(srcPacket(1, 4, 1))
	sender.Send(srcPacket(1, 5, 9)) // high priority
	if sender.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", sender.Evicted())
	}
	sched.RunFor(time.Second)
	seqs := make(map[uint32]bool)
	var first uint32
	for i, p := range recvEnv.delivered {
		seqs[p.FlowSeq] = true
		if i == 0 {
			first = p.FlowSeq
		}
	}
	if seqs[1] {
		t.Fatal("oldest low-priority message survived eviction")
	}
	if !seqs[5] {
		t.Fatal("high-priority message lost")
	}
	// Highest priority transmits first.
	if first != 5 {
		t.Fatalf("first delivered = seq %d, want high-priority 5", first)
	}
}

func TestPriorityLowerNewcomerDropped(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, _ := newPriorityPair(sched, SchedConfig{Rate: 1000, BufferPerSource: 2})
	sender.Send(srcPacket(1, 1, 5))
	sender.Send(srcPacket(1, 2, 5))
	sender.Send(srcPacket(1, 3, 1)) // lower priority than everything stored
	if sender.QueuedFor(1) != 2 {
		t.Fatalf("queue depth %d, want 2", sender.QueuedFor(1))
	}
	if sender.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1 (the newcomer)", sender.Evicted())
	}
}

func TestPriorityRoundRobinOrder(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, recvEnv := newPriorityPair(sched, SchedConfig{Rate: 1000, BufferPerSource: 16})
	for i := uint32(1); i <= 3; i++ {
		sender.Send(srcPacket(10, i, 0))
		sender.Send(srcPacket(20, i, 0))
		sender.Send(srcPacket(30, i, 0))
	}
	sched.RunFor(time.Second)
	if len(recvEnv.delivered) != 9 {
		t.Fatalf("delivered %d, want 9", len(recvEnv.delivered))
	}
	// Perfect interleaving: each consecutive triple contains all three
	// sources.
	for i := 0; i+2 < len(recvEnv.delivered); i += 3 {
		seen := map[wire.NodeID]bool{}
		for j := i; j < i+3; j++ {
			seen[recvEnv.delivered[j].Src] = true
		}
		if len(seen) != 3 {
			t.Fatalf("window %d not fairly interleaved: %v", i, countBySrc(recvEnv.delivered))
		}
	}
}

func TestPriorityCloseStopsPacing(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, recvEnv := newPriorityPair(sched, SchedConfig{Rate: 10})
	for i := uint32(1); i <= 10; i++ {
		sender.Send(srcPacket(1, i, 0))
	}
	sched.RunFor(250 * time.Millisecond) // ~2 transmitted
	sender.Close()
	sched.RunFor(5 * time.Second)
	if len(recvEnv.delivered) > 3 {
		t.Fatalf("delivered %d after Close", len(recvEnv.delivered))
	}
}

func newReliableFairPair(sched *sim.Scheduler, cfg SchedConfig) (*ReliableFairLink, *ReliableFairLink, *schedEnv, *schedEnv) {
	sendEnv := &schedEnv{sched: sched, latency: 10 * time.Millisecond}
	recvEnv := &schedEnv{sched: sched, latency: 10 * time.Millisecond}
	rel := link.ReliableConfig{}
	sender := NewReliableFairLink(sendEnv, cfg, rel)
	receiver := NewReliableFairLink(recvEnv, cfg, rel)
	sendEnv.peer = receiver
	recvEnv.peer = sender
	return sender, receiver, sendEnv, recvEnv
}

func TestReliableFairDeliversThroughLoss(t *testing.T) {
	sched := sim.NewScheduler(2)
	sender, _, sendEnv, recvEnv := newReliableFairPair(sched, SchedConfig{Rate: 500, BufferPerSource: 128})
	n := 0
	sendEnv.drop = func(f *wire.Frame) bool {
		if f.Kind != wire.FData {
			return false
		}
		n++
		return n%7 == 0
	}
	for i := uint32(1); i <= 100; i++ {
		sender.Send(flowPacket(1, 9, i))
	}
	sched.RunFor(30 * time.Second)
	if len(recvEnv.delivered) != 100 {
		t.Fatalf("delivered %d, want 100 (ARQ under fairness)", len(recvEnv.delivered))
	}
	if sender.Stats().Retransmissions == 0 {
		t.Fatal("no retransmissions despite forced loss")
	}
}

func TestReliableFairBackpressurePerFlow(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, _, recvEnv := newReliableFairPair(sched, SchedConfig{Rate: 100, BufferPerSource: 8})
	flood := FlowKey{Src: 66, Dst: 9}
	honest := FlowKey{Src: 1, Dst: 9}
	for i := uint32(1); i <= 500; i++ {
		sender.Send(flowPacket(66, 9, i))
	}
	if sender.Accepts(flood) {
		t.Fatal("saturated flow still accepted")
	}
	if !sender.Accepts(honest) {
		t.Fatal("backpressure on one flow blocked another")
	}
	if sender.Rejected() != 500-8 {
		t.Fatalf("Rejected = %d, want 492", sender.Rejected())
	}
	for i := uint32(1); i <= 8; i++ {
		sender.Send(flowPacket(1, 9, i))
	}
	sched.RunFor(5 * time.Second)
	got := countBySrc(recvEnv.delivered)
	if got[1] != 8 {
		t.Fatalf("honest flow delivered %d/8 under flood", got[1])
	}
	if got[66] != 8 {
		t.Fatalf("flooding flow delivered %d, want its buffered 8", got[66])
	}
}

func TestReliableFairRoundRobinBetweenFlows(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, _, recvEnv := newReliableFairPair(sched, SchedConfig{Rate: 1000, BufferPerSource: 64})
	for i := uint32(1); i <= 10; i++ {
		sender.Send(flowPacket(1, 9, i))
		sender.Send(flowPacket(2, 9, i))
	}
	sched.RunFor(time.Second)
	if len(recvEnv.delivered) != 20 {
		t.Fatalf("delivered %d, want 20", len(recvEnv.delivered))
	}
	// Fairness: after any even prefix the two flows differ by at most 1.
	c1, c2 := 0, 0
	for _, p := range recvEnv.delivered {
		if p.Src == 1 {
			c1++
		} else {
			c2++
		}
		diff := c1 - c2
		if diff < -1 || diff > 1 {
			t.Fatalf("flows unbalanced mid-stream: %d vs %d", c1, c2)
		}
	}
}

func TestReliableFairFIFOBaseline(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := SchedConfig{Rate: 100, DisableFairness: true, TotalBuffer: 64}
	sender, _, _, recvEnv := newReliableFairPair(sched, cfg)
	for i := uint32(1); i <= 200; i++ {
		sender.Send(flowPacket(66, 9, i))
	}
	for i := uint32(1); i <= 10; i++ {
		sender.Send(flowPacket(1, 9, i))
	}
	sched.RunFor(5 * time.Second)
	got := countBySrc(recvEnv.delivered)
	if got[1] != 0 {
		t.Fatalf("FIFO baseline delivered %d honest packets; queue was full of attacker traffic", got[1])
	}
}

func TestPriorityOrderWithinSourceAcrossPriorities(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, recvEnv := newPriorityPair(sched, SchedConfig{Rate: 1000, BufferPerSource: 16})
	// One source enqueues a mix of priorities before pacing starts.
	sender.Send(srcPacket(1, 1, 2))
	sender.Send(srcPacket(1, 2, 9))
	sender.Send(srcPacket(1, 3, 2))
	sender.Send(srcPacket(1, 4, 9))
	sched.RunFor(time.Second)
	var got []uint32
	for _, p := range recvEnv.delivered {
		got = append(got, p.FlowSeq)
	}
	// Highest priority first, oldest first within a priority.
	want := []uint32{2, 4, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
}

func TestReliableFairAcceptsRecoversAfterDrain(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, _, _ := newReliableFairPair(sched, SchedConfig{Rate: 1000, BufferPerSource: 4})
	key := FlowKey{Src: 1, Dst: 9}
	for i := uint32(1); i <= 4; i++ {
		sender.Send(flowPacket(1, 9, i))
	}
	if sender.Accepts(key) {
		t.Fatal("full flow still accepted")
	}
	sched.RunFor(time.Second) // pacer drains the queue
	if !sender.Accepts(key) {
		t.Fatal("backpressure did not release after drain")
	}
	if sender.QueuedFor(key) != 0 {
		t.Fatalf("queue depth %d after drain", sender.QueuedFor(key))
	}
}

func TestReliableFairCloseStopsPacing(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, _, recvEnv := newReliableFairPair(sched, SchedConfig{Rate: 10, BufferPerSource: 64})
	for i := uint32(1); i <= 10; i++ {
		sender.Send(flowPacket(1, 9, i))
	}
	sched.RunFor(250 * time.Millisecond)
	sender.Close()
	sched.RunFor(10 * time.Second)
	if len(recvEnv.delivered) > 3 {
		t.Fatalf("delivered %d after Close", len(recvEnv.delivered))
	}
}

func TestPriorityLinkIgnoresControlFrames(t *testing.T) {
	sched := sim.NewScheduler(1)
	sender, _, _ := newPriorityPair(sched, SchedConfig{Rate: 1000})
	sender.HandleFrame(&wire.Frame{Proto: wire.LPITPriority, Kind: wire.FAck})
	sender.HandleFrame(&wire.Frame{Proto: wire.LPITPriority, Kind: wire.FData}) // nil packet
	if sender.Stats().Delivered != 0 {
		t.Fatal("control/empty frames delivered")
	}
}

package itmsg

import (
	"math/bits"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/wire"
)

// This file is the scheduling core behind the §IV-B fair disciplines:
// deficit round-robin over an intrusive doubly-linked active list keyed by
// a dense flow index. It exists because the paper's tens-of-flows
// implementation (O(buffer) victim scans, O(sources) ring walks, O(flows)
// backlog probes, one Clone per stored packet) collapses at the 100k-flow
// edge fan-out the roadmap targets. Design (DESIGN.md §13):
//
//   - Flows live in a slice-backed arena recycled through a freelist; a
//     map-free chained hash table (bucket heads + per-flow next refs)
//     resolves (src,dst,class) to a dense index. No maps, no pointers, no
//     allocation on the steady-state hot path.
//   - Each priority class owns a circular intrusive DRR ring threaded
//     through the flow slots themselves (prev/next refs). The ring holds
//     exactly the backlogged flows, so a scheduling decision is O(1): no
//     idle-source skipping, no backlog scans. Classes are served strict
//     priority, each optionally shaped by an integer-math token bucket,
//     with work-conserving borrowing when no class holds credit.
//   - Per-flow queues are bounded chains of pooled entries holding a
//     refcounted wire.Buf captured once at enqueue (wire.CapturePacket) —
//     no clones. Within a flow, entries are ordered by a short list of
//     priority lanes (FIFO within a lane, lanes sorted high→low), which
//     reproduces the seed discipline bit for bit: serve highest priority
//     oldest-first, evict oldest lowest-priority, refuse a newcomer only
//     when it is strictly lower priority than everything stored.
//   - Drained flows retire immediately to the freelist (metrics
//     FlowsRetired), fixing the seed's idle-source leak; configured
//     weights survive retirement in a side table consulted at admission.
//
// A Core is single-threaded like every link protocol; one Core is built
// per discipline instance, and nothing is shared between instances except
// the (atomic) metrics.SchedStats sink — which is what makes the engine
// per-shard constructible for the sharded data plane.

// nilRef is the null value for dense int32 references.
const nilRef = int32(-1)

// nanoPkt is one packet in the token buckets' fixed-point credit units.
const nanoPkt = int64(time.Second)

// OverflowPolicy selects what a full per-flow queue does with arrivals.
type OverflowPolicy uint8

const (
	// PolicyEvictLowest drops the flow's oldest lowest-priority stored
	// packet to admit the newcomer (IT-Priority, §IV-B), unless the
	// newcomer is strictly lower priority than everything stored — then it
	// is refused itself.
	PolicyEvictLowest OverflowPolicy = iota
	// PolicyReject refuses the newcomer and signals backpressure
	// (IT-Reliable, §IV-B).
	PolicyReject
)

// Outcome reports what Enqueue did with a packet.
type Outcome uint8

const (
	// Stored means the packet was queued.
	Stored Outcome = iota
	// StoredEvicted means the packet was queued after evicting the flow's
	// oldest lowest-priority packet.
	StoredEvicted
	// RefusedLow means the packet was dropped: its flow was full and it
	// was strictly lower priority than everything stored.
	RefusedLow
	// RefusedFull means the packet was refused by PolicyReject
	// backpressure: its flow's buffer is full.
	RefusedFull
	// RefusedFIFO means the unfair baseline's total buffer was full.
	RefusedFIFO
	// RefusedClosed means the core was already closed.
	RefusedClosed
)

// Accepted reports whether the packet was queued.
func (o Outcome) Accepted() bool { return o == Stored || o == StoredEvicted }

// ClassRate shapes one priority class with a token bucket.
type ClassRate struct {
	// Rate is the class's packet rate in packets per second; 0 leaves the
	// class unshaped.
	Rate float64
	// Burst is the bucket depth in packets (minimum 1).
	Burst int
}

// CoreConfig parameterizes one scheduling core.
type CoreConfig struct {
	// FlowBuffer bounds stored packets per flow.
	FlowBuffer int
	// Policy selects the full-queue behaviour.
	Policy OverflowPolicy
	// Classes is the number of strict-priority service classes, each with
	// its own DRR ring. 0 or 1 collapses to a single ring, which is the
	// paper's discipline (priority orders packets within a source but
	// never across sources). Packet priority p maps to class p·Classes/256.
	Classes int
	// ClassRates optionally shapes each class with a token bucket
	// (indexed by class). A class over its rate loses strict priority to
	// classes holding credit but still transmits when nothing else can
	// (work-conserving borrowing).
	ClassRates []ClassRate
	// FIFO replaces fair queueing with one bounded total-buffer FIFO —
	// the DisableFairness ablation.
	FIFO bool
	// TotalBuffer bounds the FIFO ablation's single queue.
	TotalBuffer int
	// Pool supplies the refcounted capture buffers; nil uses
	// wire.DefaultBufPool.
	Pool *wire.BufPool
	// Stats receives drop/backpressure accounting; nil gets a private
	// sink. One SchedStats may be shared by many cores (per-node
	// aggregation); the counters are atomic.
	Stats *metrics.SchedStats
}

// coreFlow is one flow's scheduler state: a slot in the dense arena.
// prev/next thread the class's circular DRR ring (nilRef when idle);
// hnext chains the hash bucket, and doubles as the freelist link while
// the slot is retired.
type coreFlow struct {
	key     uint32
	hnext   int32
	prev    int32
	next    int32
	lanes   int32
	qlen    int32
	deficit int32
	weight  int32
	class   int32
}

// coreLane is one priority level within a flow's queue: a FIFO chain of
// entries. A flow's lanes form a short list sorted high→low priority, so
// the head of the first lane is the service order's next packet and the
// head of the last lane is the eviction victim.
type coreLane struct {
	next int32
	head int32
	tail int32
	prio uint8
}

// coreEntry is one queued packet: header copied inline, bytes captured
// into a refcounted pooled buffer.
type coreEntry struct {
	next int32
	seq  uint64
	buf  *wire.Buf
	pkt  wire.Packet
}

// coreClass is one strict-priority service class: a DRR ring plus an
// optional token bucket in fixed-point integer math (credit is in
// nanopackets; rate·Δt nanoseconds accrues rate·Δt credit).
type coreClass struct {
	ring    int32
	backlog int32
	rate    int64
	burst   int64
	credit  int64
	last    time.Duration
}

// Core is the zero-allocation O(1) fair-scheduling engine. It is not
// safe for concurrent use; construct one per discipline instance (or per
// shard).
type Core struct {
	cfg  CoreConfig
	pool *wire.BufPool

	classes []coreClass

	flows    []coreFlow
	freeFlow int32
	buckets  []int32
	shift    uint
	nflows   int

	lanes    []coreLane
	freeLane int32

	entries   []coreEntry
	freeEntry int32

	// fifoQ is the unfair ablation's bounded ring of entry refs.
	fifoQ    []int32
	fifoHead int
	fifoLen  int

	backlog int
	enqSeq  uint64

	// weights persists explicitly configured flow weights across flow
	// retirement; nil until the first SetWeight (the common case pays one
	// nil check per admission).
	weights map[uint32]int32

	stats  *metrics.SchedStats
	closed bool

	// scratch receives the dequeued packet header; it is valid until the
	// next Dequeue, like every borrowed packet in the link layer.
	scratch wire.Packet
}

// NewCore returns a scheduling core.
func NewCore(cfg CoreConfig) *Core {
	if cfg.FlowBuffer <= 0 {
		cfg.FlowBuffer = DefaultSchedConfig().BufferPerSource
	}
	if cfg.TotalBuffer <= 0 {
		cfg.TotalBuffer = DefaultSchedConfig().TotalBuffer
	}
	if cfg.Classes <= 0 {
		cfg.Classes = 1
	}
	c := &Core{
		cfg:       cfg,
		pool:      cfg.Pool,
		stats:     cfg.Stats,
		freeFlow:  nilRef,
		freeLane:  nilRef,
		freeEntry: nilRef,
	}
	if c.pool == nil {
		c.pool = wire.DefaultBufPool
	}
	if c.stats == nil {
		c.stats = &metrics.SchedStats{}
	}
	c.classes = make([]coreClass, cfg.Classes)
	for i := range c.classes {
		c.classes[i].ring = nilRef
		if i < len(cfg.ClassRates) && cfg.ClassRates[i].Rate > 0 {
			burst := cfg.ClassRates[i].Burst
			if burst < 1 {
				burst = 1
			}
			c.classes[i].rate = int64(cfg.ClassRates[i].Rate)
			c.classes[i].burst = int64(burst) * nanoPkt
			c.classes[i].credit = c.classes[i].burst
		}
	}
	c.rehash(256)
	return c
}

// Stats returns the core's accounting sink.
func (c *Core) Stats() *metrics.SchedStats { return c.stats }

// flowKeyBits packs a FlowKey into the dense hash key.
func flowKeyBits(key FlowKey) uint32 {
	return uint32(key.Src)<<16 | uint32(key.Dst)
}

func (c *Core) classOf(prio uint8) int32 {
	if len(c.classes) == 1 {
		return 0
	}
	return int32(int(prio) * len(c.classes) / 256)
}

func (c *Core) bucket(key uint32, class int32) int32 {
	h := (uint64(key) | uint64(class)<<32) * 0x9E3779B97F4A7C15
	return int32(h >> c.shift)
}

func (c *Core) rehash(n int) {
	old := c.buckets
	c.buckets = make([]int32, n)
	c.shift = uint(64 - bits.Len(uint(n-1)))
	for i := range c.buckets {
		c.buckets[i] = nilRef
	}
	for _, head := range old {
		for fi := head; fi != nilRef; {
			f := &c.flows[fi]
			next := f.hnext
			b := c.bucket(f.key, f.class)
			f.hnext = c.buckets[b]
			c.buckets[b] = fi
			fi = next
		}
	}
}

func (c *Core) lookup(key uint32, class int32) int32 {
	for fi := c.buckets[c.bucket(key, class)]; fi != nilRef; fi = c.flows[fi].hnext {
		f := &c.flows[fi]
		if f.key == key && f.class == class {
			return fi
		}
	}
	return nilRef
}

// admit allocates and hash-inserts a flow slot (freelist first).
func (c *Core) admit(key uint32, class int32) int32 {
	var fi int32
	if c.freeFlow != nilRef {
		fi = c.freeFlow
		c.freeFlow = c.flows[fi].hnext
	} else {
		c.flows = append(c.flows, coreFlow{})
		fi = int32(len(c.flows) - 1)
	}
	f := &c.flows[fi]
	*f = coreFlow{key: key, class: class, prev: nilRef, next: nilRef, lanes: nilRef, weight: 1}
	if c.weights != nil {
		if w, ok := c.weights[key]; ok {
			f.weight = w
		}
	}
	if c.nflows+1 > len(c.buckets)*3/4 {
		c.rehash(len(c.buckets) * 2)
		f = &c.flows[fi]
	}
	b := c.bucket(key, class)
	f.hnext = c.buckets[b]
	c.buckets[b] = fi
	c.nflows++
	n := c.stats.ActiveFlows.Add(1)
	c.stats.RecordFlowsPeak(n)
	return fi
}

// retire hash-removes a drained flow and recycles its slot. Explicit
// weights persist in the side table, so a retired flow readmits with the
// same share.
func (c *Core) retire(fi int32) {
	f := &c.flows[fi]
	b := c.bucket(f.key, f.class)
	if c.buckets[b] == fi {
		c.buckets[b] = f.hnext
	} else {
		p := c.buckets[b]
		for c.flows[p].hnext != fi {
			p = c.flows[p].hnext
		}
		c.flows[p].hnext = f.hnext
	}
	c.nflows--
	f.hnext = c.freeFlow
	c.freeFlow = fi
	c.stats.ActiveFlows.Add(-1)
	c.stats.FlowsRetired.Add(1)
}

// activate links a newly backlogged flow into its class ring, just
// behind the current service position — it is served at the tail of the
// round in progress, which is what keeps a reactivating flow from
// jumping the queue.
func (c *Core) activate(cl *coreClass, fi int32) {
	f := &c.flows[fi]
	if cl.ring == nilRef {
		f.prev, f.next = fi, fi
		cl.ring = fi
		return
	}
	cur := cl.ring
	prev := c.flows[cur].prev
	f.prev, f.next = prev, cur
	c.flows[prev].next = fi
	c.flows[cur].prev = fi
}

// deactivate unlinks a drained flow from its class ring.
func (c *Core) deactivate(cl *coreClass, fi int32) {
	f := &c.flows[fi]
	if f.next == fi {
		cl.ring = nilRef
	} else {
		c.flows[f.prev].next = f.next
		c.flows[f.next].prev = f.prev
		if cl.ring == fi {
			cl.ring = f.next
		}
	}
	f.prev, f.next = nilRef, nilRef
	f.deficit = 0
}

func (c *Core) allocEntry() int32 {
	if c.freeEntry != nilRef {
		ei := c.freeEntry
		c.freeEntry = c.entries[ei].next
		return ei
	}
	c.entries = append(c.entries, coreEntry{})
	return int32(len(c.entries) - 1)
}

func (c *Core) freeEntrySlot(ei int32) {
	e := &c.entries[ei]
	e.buf = nil
	e.pkt = wire.Packet{}
	e.next = c.freeEntry
	c.freeEntry = ei
}

func (c *Core) allocLane(prio uint8) int32 {
	if c.freeLane != nilRef {
		li := c.freeLane
		c.freeLane = c.lanes[li].next
		c.lanes[li] = coreLane{next: nilRef, head: nilRef, tail: nilRef, prio: prio}
		return li
	}
	c.lanes = append(c.lanes, coreLane{next: nilRef, head: nilRef, tail: nilRef, prio: prio})
	return int32(len(c.lanes) - 1)
}

func (c *Core) freeLaneSlot(li int32) {
	c.lanes[li].next = c.freeLane
	c.freeLane = li
}

// store captures p into a pooled entry and appends it to the flow's lane
// for its priority, creating the lane in sorted position if absent. The
// walk is O(distinct queued priorities of this flow) — one step in the
// uniform-priority case.
func (c *Core) store(fi int32, p *wire.Packet) {
	prev := nilRef
	li := c.flows[fi].lanes
	for li != nilRef && c.lanes[li].prio > p.Priority {
		prev = li
		li = c.lanes[li].next
	}
	if li == nilRef || c.lanes[li].prio != p.Priority {
		nl := c.allocLane(p.Priority)
		c.lanes[nl].next = li
		if prev == nilRef {
			c.flows[fi].lanes = nl
		} else {
			c.lanes[prev].next = nl
		}
		li = nl
	}
	ei := c.allocEntry()
	e := &c.entries[ei]
	c.enqSeq++
	e.seq = c.enqSeq
	e.next = nilRef
	e.buf = wire.CapturePacket(&e.pkt, p, c.pool)
	ln := &c.lanes[li]
	if ln.head == nilRef {
		ln.head = ei
	} else {
		c.entries[ln.tail].next = ei
	}
	ln.tail = ei

	f := &c.flows[fi]
	f.qlen++
	cl := &c.classes[f.class]
	cl.backlog++
	c.backlog++
	if f.next == nilRef {
		c.activate(cl, fi)
	}
	c.stats.Enqueued.Add(1)
	c.stats.Queued.Add(1)
}

// Enqueue applies the buffer-allocation policy to p for the given flow
// and queues it on acceptance. The packet is borrowed: its bytes are
// captured into a pooled buffer.
func (c *Core) Enqueue(key FlowKey, p *wire.Packet) Outcome {
	if c.closed {
		return RefusedClosed
	}
	if c.cfg.FIFO {
		return c.enqueueFIFO(p)
	}
	k := flowKeyBits(key)
	class := c.classOf(p.Priority)
	fi := c.lookup(k, class)
	if fi == nilRef {
		fi = c.admit(k, class)
	}
	outcome := Stored
	if int(c.flows[fi].qlen) >= c.cfg.FlowBuffer {
		if c.cfg.Policy == PolicyReject {
			// Backpressure: refuse new messages for the saturated flow.
			c.stats.Backpressure.Add(1)
			return RefusedFull
		}
		// Evict the oldest lowest-priority message of this flow — the head
		// of the last lane; if the newcomer is strictly lower priority than
		// everything stored, it is itself the drop victim.
		prev := nilRef
		li := c.flows[fi].lanes
		for c.lanes[li].next != nilRef {
			prev = li
			li = c.lanes[li].next
		}
		if p.Priority < c.lanes[li].prio {
			c.stats.DropRefusedLow.Add(1)
			return RefusedLow
		}
		c.evictHead(fi, li, prev)
		outcome = StoredEvicted
	}
	c.store(fi, p)
	return outcome
}

// evictHead drops the head entry of lane li (whose predecessor in the
// flow's lane list is prev), releasing its captured buffer.
func (c *Core) evictHead(fi, li, prev int32) {
	ln := &c.lanes[li]
	ei := ln.head
	e := &c.entries[ei]
	ln.head = e.next
	if ln.head == nilRef {
		if prev == nilRef {
			c.flows[fi].lanes = ln.next
		} else {
			c.lanes[prev].next = ln.next
		}
		c.freeLaneSlot(li)
	}
	if e.buf != nil {
		e.buf.Release()
	}
	c.freeEntrySlot(ei)
	f := &c.flows[fi]
	f.qlen--
	c.classes[f.class].backlog--
	c.backlog--
	c.stats.DropEvicted.Add(1)
	c.stats.Queued.Add(-1)
}

func (c *Core) enqueueFIFO(p *wire.Packet) Outcome {
	if c.fifoLen >= c.cfg.TotalBuffer {
		c.stats.DropFIFOOverflow.Add(1)
		return RefusedFIFO
	}
	if c.fifoQ == nil {
		// The ablation's ring is bounded by construction — the seed's
		// fifo[1:] slice leak cannot recur.
		c.fifoQ = make([]int32, c.cfg.TotalBuffer)
	}
	ei := c.allocEntry()
	e := &c.entries[ei]
	e.buf = wire.CapturePacket(&e.pkt, p, c.pool)
	c.fifoQ[(c.fifoHead+c.fifoLen)%len(c.fifoQ)] = ei
	c.fifoLen++
	c.backlog++
	c.stats.Enqueued.Add(1)
	c.stats.Queued.Add(1)
	return Stored
}

// refill tops up a shaped class's credit for the elapsed time.
func (cl *coreClass) refill(now time.Duration) {
	dt := int64(now - cl.last)
	cl.last = now
	if dt <= 0 {
		return
	}
	if dt >= nanoPkt {
		// A second or more fills any sane bucket; skip the multiply and
		// its overflow risk on the first call after a long idle period.
		cl.credit = cl.burst
		return
	}
	cl.credit += cl.rate * dt
	if cl.credit > cl.burst {
		cl.credit = cl.burst
	}
}

// pickClass selects the class to serve: the highest-priority backlogged
// class holding token credit, else (work-conserving) the highest-priority
// backlogged class outright.
func (c *Core) pickClass(now time.Duration) int32 {
	if len(c.classes) == 1 {
		if c.classes[0].backlog > 0 {
			return 0
		}
		return nilRef
	}
	fallback := nilRef
	for i := len(c.classes) - 1; i >= 0; i-- {
		cl := &c.classes[i]
		if cl.backlog == 0 {
			continue
		}
		if cl.rate == 0 {
			return int32(i)
		}
		cl.refill(now)
		if cl.credit >= nanoPkt {
			cl.credit -= nanoPkt
			return int32(i)
		}
		if fallback == nilRef {
			fallback = int32(i)
		}
	}
	return fallback
}

// Dequeue removes the next packet under the service discipline: strict
// priority across classes (token-bucket shaped), deficit round-robin
// across the class's backlogged flows, highest priority oldest-first
// within a flow. The returned packet header points at core-owned scratch,
// valid until the next Dequeue; buf (possibly nil) is the refcounted
// backing of its byte fields, and ownership transfers to the caller, who
// must Release it — or hand it on — once the packet is done.
func (c *Core) Dequeue(now time.Duration) (*wire.Packet, *wire.Buf, bool) {
	if c.cfg.FIFO {
		return c.dequeueFIFO()
	}
	ci := c.pickClass(now)
	if ci == nilRef {
		return nil, nil, false
	}
	cl := &c.classes[ci]
	fi := cl.ring
	f := &c.flows[fi]
	if f.deficit <= 0 {
		// New visit: grant the flow's quantum (its weight, in packets).
		f.deficit = f.weight
	}
	li := f.lanes
	ln := &c.lanes[li]
	ei := ln.head
	e := &c.entries[ei]
	ln.head = e.next
	if ln.head == nilRef {
		f.lanes = ln.next
		c.freeLaneSlot(li)
	}
	f.qlen--
	f.deficit--
	cl.backlog--
	c.backlog--
	if f.qlen == 0 {
		c.deactivate(cl, fi)
		c.retire(fi)
	} else if f.deficit == 0 {
		cl.ring = f.next
	}
	c.scratch = e.pkt
	buf := e.buf
	c.freeEntrySlot(ei)
	c.stats.Transmitted.Add(1)
	c.stats.Queued.Add(-1)
	return &c.scratch, buf, true
}

func (c *Core) dequeueFIFO() (*wire.Packet, *wire.Buf, bool) {
	if c.fifoLen == 0 {
		return nil, nil, false
	}
	ei := c.fifoQ[c.fifoHead]
	c.fifoHead = (c.fifoHead + 1) % len(c.fifoQ)
	c.fifoLen--
	c.backlog--
	e := &c.entries[ei]
	c.scratch = e.pkt
	buf := e.buf
	c.freeEntrySlot(ei)
	c.stats.Transmitted.Add(1)
	c.stats.Queued.Add(-1)
	return &c.scratch, buf, true
}

// Backlog returns the total number of queued packets.
func (c *Core) Backlog() int { return c.backlog }

// ActiveFlows returns the number of flows currently holding state.
func (c *Core) ActiveFlows() int { return c.nflows }

// FlowSlots returns the flow arena capacity — bounded-state tests assert
// it tracks peak concurrent flows, not cumulative flow count.
func (c *Core) FlowSlots() int { return len(c.flows) }

// EntrySlots returns the entry arena capacity (peak queued packets).
func (c *Core) EntrySlots() int { return len(c.entries) }

// QueuedFor returns the flow's queue depth across classes (diagnostics).
func (c *Core) QueuedFor(key FlowKey) int {
	if c.cfg.FIFO {
		return 0
	}
	k := flowKeyBits(key)
	n := 0
	for class := range c.classes {
		if fi := c.lookup(k, int32(class)); fi != nilRef {
			n += int(c.flows[fi].qlen)
		}
	}
	return n
}

// Accepts reports whether the flow currently has buffer space — the
// backpressure signal an upstream hop or source consults before handing
// over another message.
func (c *Core) Accepts(key FlowKey) bool {
	if c.cfg.FIFO {
		return c.fifoLen < c.cfg.TotalBuffer
	}
	k := flowKeyBits(key)
	for class := range c.classes {
		if fi := c.lookup(k, int32(class)); fi != nilRef &&
			int(c.flows[fi].qlen) >= c.cfg.FlowBuffer {
			return false
		}
	}
	return true
}

// SetWeight configures the flow's DRR quantum in packets per round
// (default 1). The weight persists across flow retirement and applies to
// every service class the flow appears in.
func (c *Core) SetWeight(key FlowKey, weight int) {
	if weight < 1 {
		weight = 1
	}
	k := flowKeyBits(key)
	if c.weights == nil {
		c.weights = make(map[uint32]int32)
	}
	c.weights[k] = int32(weight)
	for class := range c.classes {
		if fi := c.lookup(k, int32(class)); fi != nilRef {
			c.flows[fi].weight = int32(weight)
		}
	}
}

// Close drains every queue, releasing captured buffers and accounting the
// discarded packets as DropClosed. A closed core refuses Enqueue.
func (c *Core) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for c.fifoLen > 0 {
		ei := c.fifoQ[c.fifoHead]
		c.fifoHead = (c.fifoHead + 1) % len(c.fifoQ)
		c.fifoLen--
		c.dropEntryClosed(ei)
	}
	for b := range c.buckets {
		for fi := c.buckets[b]; fi != nilRef; {
			f := &c.flows[fi]
			for li := f.lanes; li != nilRef; li = c.lanes[li].next {
				for ei := c.lanes[li].head; ei != nilRef; {
					next := c.entries[ei].next
					c.dropEntryClosed(ei)
					ei = next
				}
			}
			fi = f.hnext
		}
		c.buckets[b] = nilRef
	}
	c.stats.ActiveFlows.Add(-int64(c.nflows))
	c.nflows = 0
	c.flows = c.flows[:0]
	c.lanes = c.lanes[:0]
	c.freeFlow, c.freeLane = nilRef, nilRef
	for i := range c.classes {
		c.classes[i].ring = nilRef
		c.classes[i].backlog = 0
	}
	c.backlog = 0
}

func (c *Core) dropEntryClosed(ei int32) {
	e := &c.entries[ei]
	if e.buf != nil {
		e.buf.Release()
	}
	e.buf = nil
	e.pkt = wire.Packet{}
	c.stats.DropClosed.Add(1)
	c.stats.Queued.Add(-1)
}

package itmsg

import (
	"sonet/internal/link"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// FlowKey identifies a source→destination flow for per-flow resource
// allocation. Reliable messaging allocates storage per flow rather than
// per source so a compromised destination cannot block a source's traffic
// to other destinations (§IV-B).
type FlowKey struct {
	// Src is the originating overlay node.
	Src wire.NodeID
	// Dst is the destination overlay node.
	Dst wire.NodeID
}

// ReliableFairLink is the Intrusion-Tolerant Reliable link discipline
// (§IV-B): per-flow buffers served round-robin over a paced link, with the
// hop-by-hop Reliable Data Link underneath for loss recovery. When a
// flow's buffer fills the link stops accepting new messages for that flow,
// creating backpressure toward the source while other flows keep their
// full fair share.
type ReliableFairLink struct {
	env link.Env
	cfg SchedConfig

	inner *link.Reliable

	flows map[FlowKey]*flowQueue
	order []FlowKey
	next  int
	fifo  []*wire.Packet

	pacing bool
	timer  sim.Timer
	// rejected counts packets refused because their flow's buffer was
	// full (the backpressure signal).
	rejected uint64
	closed   bool
}

type flowQueue struct {
	entries []*wire.Packet
}

var _ link.Protocol = (*ReliableFairLink)(nil)

// NewReliableFairLink returns an IT-Reliable endpoint. rel configures the
// underlying hop-by-hop ARQ.
func NewReliableFairLink(env link.Env, cfg SchedConfig, rel link.ReliableConfig) *ReliableFairLink {
	l := &ReliableFairLink{
		env:   env,
		cfg:   cfg.withDefaults(),
		flows: make(map[FlowKey]*flowQueue),
	}
	l.inner = link.NewReliable(&innerEnv{outer: env, proto: wire.LPITReliable}, rel)
	return l
}

// innerEnv rebadges the inner ARQ's frames as IT-Reliable so the peer
// demultiplexes them back to its ReliableFairLink.
type innerEnv struct {
	outer link.Env
	proto wire.LinkProtoID
}

func (e *innerEnv) Clock() sim.Clock { return e.outer.Clock() }

func (e *innerEnv) Transmit(f *wire.Frame) {
	f.Proto = e.proto
	e.outer.Transmit(f)
}

func (e *innerEnv) Deliver(p *wire.Packet) { e.outer.Deliver(p) }

// Send implements link.Protocol: it enqueues under per-flow allocation;
// the pacer feeds the underlying reliable link at capacity. The packet is
// borrowed; the flow queues store clones.
func (l *ReliableFairLink) Send(p *wire.Packet) {
	if l.closed {
		return
	}
	if l.cfg.DisableFairness {
		if len(l.fifo) >= l.cfg.TotalBuffer {
			l.rejected++
			return
		}
		l.fifo = append(l.fifo, p.Clone())
		l.ensurePacing()
		return
	}
	key := FlowKey{Src: p.Src, Dst: p.Dst}
	q, ok := l.flows[key]
	if !ok {
		q = &flowQueue{}
		l.flows[key] = q
		l.order = append(l.order, key)
	}
	if len(q.entries) >= l.cfg.BufferPerSource {
		// Backpressure: refuse new messages for the saturated flow.
		l.rejected++
		return
	}
	q.entries = append(q.entries, p.Clone())
	l.ensurePacing()
}

// Accepts reports whether the flow currently has buffer space — the
// backpressure signal an upstream hop or source consults before handing
// over another message.
func (l *ReliableFairLink) Accepts(key FlowKey) bool {
	if l.cfg.DisableFairness {
		return len(l.fifo) < l.cfg.TotalBuffer
	}
	q, ok := l.flows[key]
	return !ok || len(q.entries) < l.cfg.BufferPerSource
}

func (l *ReliableFairLink) ensurePacing() {
	if l.pacing || l.closed {
		return
	}
	l.pacing = true
	l.timer = l.env.Clock().After(l.cfg.interval(), l.pace)
}

func (l *ReliableFairLink) pace() {
	l.pacing = false
	if l.closed {
		return
	}
	p := l.dequeue()
	if p == nil {
		return
	}
	// The dequeued packet was cloned at Send, so ownership transfers to the
	// inner ARQ without another copy.
	l.inner.SendOwned(p)
	if l.hasBacklog() {
		l.ensurePacing()
	}
}

func (l *ReliableFairLink) hasBacklog() bool {
	if l.cfg.DisableFairness {
		return len(l.fifo) > 0
	}
	for _, q := range l.flows {
		if len(q.entries) > 0 {
			return true
		}
	}
	return false
}

// dequeue serves active flows round-robin, FIFO within a flow.
func (l *ReliableFairLink) dequeue() *wire.Packet {
	if l.cfg.DisableFairness {
		if len(l.fifo) == 0 {
			return nil
		}
		p := l.fifo[0]
		l.fifo = l.fifo[1:]
		return p
	}
	for range l.order {
		key := l.order[l.next%len(l.order)]
		l.next++
		q := l.flows[key]
		if len(q.entries) == 0 {
			continue
		}
		p := q.entries[0]
		q.entries = q.entries[1:]
		return p
	}
	return nil
}

// HandleFrame implements link.Protocol, feeding the inner ARQ.
func (l *ReliableFairLink) HandleFrame(f *wire.Frame) {
	if l.closed {
		return
	}
	l.inner.HandleFrame(f)
}

// Stats implements link.Protocol, reporting the inner ARQ's counters.
func (l *ReliableFairLink) Stats() link.Stats { return l.inner.Stats() }

// Rejected returns the number of messages refused by backpressure.
func (l *ReliableFairLink) Rejected() uint64 { return l.rejected }

// QueuedFor returns the queue depth for one flow (diagnostics).
func (l *ReliableFairLink) QueuedFor(key FlowKey) int {
	if q, ok := l.flows[key]; ok {
		return len(q.entries)
	}
	return 0
}

// Close implements link.Protocol.
func (l *ReliableFairLink) Close() {
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	for key := range l.flows {
		delete(l.flows, key)
	}
	l.order = nil
	l.fifo = nil
	l.inner.Close()
}

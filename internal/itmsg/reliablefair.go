package itmsg

import (
	"sonet/internal/link"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// FlowKey identifies a source→destination flow for per-flow resource
// allocation. Reliable messaging allocates storage per flow rather than
// per source so a compromised destination cannot block a source's traffic
// to other destinations (§IV-B).
type FlowKey struct {
	// Src is the originating overlay node.
	Src wire.NodeID
	// Dst is the destination overlay node.
	Dst wire.NodeID
}

// ReliableFairLink is the Intrusion-Tolerant Reliable link discipline
// (§IV-B): per-flow buffers served round-robin over a paced link, with the
// hop-by-hop Reliable Data Link underneath for loss recovery. When a
// flow's buffer fills the link stops accepting new messages for that flow,
// creating backpressure toward the source while other flows keep their
// full fair share. Queueing and service run on the zero-allocation DRR
// Core; dequeued buffers transfer to the inner ARQ without copying.
type ReliableFairLink struct {
	env  link.Env
	cfg  SchedConfig
	core *Core

	inner *link.Reliable

	pacing bool
	timer  sim.Timer
	// rejected counts packets refused because their flow's buffer was
	// full (the backpressure signal).
	rejected uint64
	closed   bool
}

var _ link.Protocol = (*ReliableFairLink)(nil)
var _ link.TrySender = (*ReliableFairLink)(nil)

// NewReliableFairLink returns an IT-Reliable endpoint. rel configures the
// underlying hop-by-hop ARQ.
func NewReliableFairLink(env link.Env, cfg SchedConfig, rel link.ReliableConfig) *ReliableFairLink {
	cfg = cfg.withDefaults()
	l := &ReliableFairLink{
		env:  env,
		cfg:  cfg,
		core: NewCore(cfg.coreConfig(PolicyReject)),
	}
	l.inner = link.NewReliable(&innerEnv{outer: env, proto: wire.LPITReliable}, rel)
	return l
}

// innerEnv rebadges the inner ARQ's frames as IT-Reliable so the peer
// demultiplexes them back to its ReliableFairLink.
type innerEnv struct {
	outer link.Env
	proto wire.LinkProtoID
}

func (e *innerEnv) Clock() sim.Clock { return e.outer.Clock() }

func (e *innerEnv) Transmit(f *wire.Frame) {
	f.Proto = e.proto
	e.outer.Transmit(f)
}

func (e *innerEnv) Deliver(p *wire.Packet) { e.outer.Deliver(p) }

// Send implements link.Protocol: it enqueues under per-flow allocation;
// the pacer feeds the underlying reliable link at capacity. The packet is
// borrowed; the core captures its bytes into pooled refcounted buffers.
func (l *ReliableFairLink) Send(p *wire.Packet) {
	if l.closed {
		return
	}
	l.enqueue(p)
}

// TrySend implements link.TrySender: like Send, but a packet refused
// because its flow is saturated returns link.ErrBackpressure, the typed
// signal sessions use to slow the source instead of losing traffic.
func (l *ReliableFairLink) TrySend(p *wire.Packet) error {
	if l.closed {
		return link.ErrBackpressure
	}
	if !l.enqueue(p).Accepted() {
		return link.ErrBackpressure
	}
	return nil
}

func (l *ReliableFairLink) enqueue(p *wire.Packet) Outcome {
	outcome := l.core.Enqueue(FlowKey{Src: p.Src, Dst: p.Dst}, p)
	if outcome.Accepted() {
		l.ensurePacing()
	} else {
		// Backpressure: the saturated flow's messages are refused.
		l.rejected++
	}
	return outcome
}

// Accepts reports whether the flow currently has buffer space — the
// backpressure signal an upstream hop or source consults before handing
// over another message.
func (l *ReliableFairLink) Accepts(key FlowKey) bool {
	return l.core.Accepts(key)
}

func (l *ReliableFairLink) ensurePacing() {
	if l.pacing || l.closed {
		return
	}
	l.pacing = true
	l.timer = l.env.Clock().After(l.cfg.interval(), l.pace)
}

func (l *ReliableFairLink) pace() {
	l.pacing = false
	if l.closed {
		return
	}
	p, buf, ok := l.core.Dequeue(l.env.Clock().Now())
	if !ok {
		return
	}
	// The captured buffer transfers to the inner ARQ, which retains it for
	// retransmission without another copy.
	l.inner.SendStored(p, buf)
	if l.core.Backlog() > 0 {
		l.ensurePacing()
	}
}

// HandleFrame implements link.Protocol, feeding the inner ARQ.
func (l *ReliableFairLink) HandleFrame(f *wire.Frame) {
	if l.closed {
		return
	}
	l.inner.HandleFrame(f)
}

// Stats implements link.Protocol, reporting the inner ARQ's counters.
func (l *ReliableFairLink) Stats() link.Stats { return l.inner.Stats() }

// Rejected returns the number of messages refused by backpressure.
func (l *ReliableFairLink) Rejected() uint64 { return l.rejected }

// QueuedFor returns the queue depth for one flow (diagnostics).
func (l *ReliableFairLink) QueuedFor(key FlowKey) int {
	return l.core.QueuedFor(key)
}

// SetFlowWeight configures a flow's DRR quantum (packets per round-robin
// visit, default 1); it persists while the flow is idle.
func (l *ReliableFairLink) SetFlowWeight(key FlowKey, weight int) {
	l.core.SetWeight(key, weight)
}

// Core exposes the scheduling engine (tests, diagnostics).
func (l *ReliableFairLink) Core() *Core { return l.core }

// Close implements link.Protocol.
func (l *ReliableFairLink) Close() {
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	l.core.Close()
	l.inner.Close()
}

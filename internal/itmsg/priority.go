package itmsg

import (
	"time"

	"sonet/internal/link"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// SchedConfig parameterizes the fair link schedulers. The link's finite
// transmission rate is what makes fairness meaningful: a flooding attacker
// contends with honest sources for exactly this capacity.
type SchedConfig struct {
	// Rate is the link's transmission capacity in packets per second.
	Rate float64
	// BufferPerSource bounds stored packets per source (priority
	// messaging) or per flow (reliable messaging).
	BufferPerSource int
	// DisableFairness replaces per-source/per-flow round-robin with a
	// single FIFO queue — the baseline that resource-consumption attacks
	// defeat (ablation for EXP-FAIR).
	DisableFairness bool
	// TotalBuffer bounds the FIFO queue in the unfair baseline.
	TotalBuffer int
}

// DefaultSchedConfig returns production defaults: a 1000 pkt/s link with
// 64-packet per-source buffers.
func DefaultSchedConfig() SchedConfig {
	return SchedConfig{Rate: 1000, BufferPerSource: 64, TotalBuffer: 512}
}

func (c SchedConfig) withDefaults() SchedConfig {
	d := DefaultSchedConfig()
	if c.Rate <= 0 {
		c.Rate = d.Rate
	}
	if c.BufferPerSource <= 0 {
		c.BufferPerSource = d.BufferPerSource
	}
	if c.TotalBuffer <= 0 {
		c.TotalBuffer = d.TotalBuffer
	}
	return c
}

// interval returns the pacing interval between transmissions.
func (c SchedConfig) interval() time.Duration {
	return time.Duration(float64(time.Second) / c.Rate)
}

// PriorityLink is the Intrusion-Tolerant Priority link discipline
// (§IV-B): storage is allocated per source, active sources are served
// round-robin, and when a source's buffer fills its oldest lowest-priority
// message is dropped so the highest-priority messages stay timely. A
// compromised source can therefore only ever consume its own share of the
// link.
type PriorityLink struct {
	env link.Env
	cfg SchedConfig

	// bufs holds the per-source buffers; order is the round-robin ring.
	bufs  map[wire.NodeID]*srcBuf
	order []wire.NodeID
	next  int

	// fifo is the single queue in the unfair baseline.
	fifo []*wire.Packet

	pacing bool
	timer  sim.Timer
	stats  link.Stats
	// tx is the reusable frame for paced transmits.
	tx wire.Frame
	// Evicted counts messages dropped by buffer policy.
	evicted uint64
	closed  bool
	// enqSeq is a monotonically increasing enqueue stamp used as the
	// oldest-first tiebreaker.
	enqSeq uint64
}

type srcBuf struct {
	entries []prioEntry
}

type prioEntry struct {
	p   *wire.Packet
	seq uint64
}

var _ link.Protocol = (*PriorityLink)(nil)

// NewPriorityLink returns an IT-Priority endpoint.
func NewPriorityLink(env link.Env, cfg SchedConfig) *PriorityLink {
	return &PriorityLink{
		env:  env,
		cfg:  cfg.withDefaults(),
		bufs: make(map[wire.NodeID]*srcBuf),
	}
}

// Send implements link.Protocol: it enqueues under the fair-allocation
// policy and lets the pacer transmit at link rate. The packet is borrowed;
// the queues store clones.
func (l *PriorityLink) Send(p *wire.Packet) {
	if l.closed {
		return
	}
	if l.cfg.DisableFairness {
		if len(l.fifo) >= l.cfg.TotalBuffer {
			l.evicted++
			l.stats.SendDropped++
			return
		}
		l.fifo = append(l.fifo, p.Clone())
		l.ensurePacing()
		return
	}
	b, ok := l.bufs[p.Src]
	if !ok {
		b = &srcBuf{}
		l.bufs[p.Src] = b
		l.order = append(l.order, p.Src)
	}
	l.enqSeq++
	if len(b.entries) >= l.cfg.BufferPerSource {
		// Drop the oldest lowest-priority message of this source; if the
		// newcomer is strictly lower priority than everything stored, it
		// is itself the drop victim.
		victim := -1
		for i, e := range b.entries {
			if victim == -1 || e.p.Priority < b.entries[victim].p.Priority ||
				(e.p.Priority == b.entries[victim].p.Priority && e.seq < b.entries[victim].seq) {
				victim = i
			}
		}
		if victim >= 0 && p.Priority < b.entries[victim].p.Priority {
			l.evicted++
			l.stats.SendDropped++
			return
		}
		b.entries = append(b.entries[:victim], b.entries[victim+1:]...)
		l.evicted++
		l.stats.SendDropped++
	}
	b.entries = append(b.entries, prioEntry{p: p.Clone(), seq: l.enqSeq})
	l.ensurePacing()
}

func (l *PriorityLink) ensurePacing() {
	if l.pacing || l.closed {
		return
	}
	l.pacing = true
	l.timer = l.env.Clock().After(l.cfg.interval(), l.pace)
}

func (l *PriorityLink) pace() {
	l.pacing = false
	if l.closed {
		return
	}
	p := l.dequeue()
	if p == nil {
		return
	}
	l.stats.DataSent++
	l.tx = wire.Frame{
		Proto:    wire.LPITPriority,
		Kind:     wire.FData,
		SendTime: l.env.Clock().Now(),
		Packet:   p,
	}
	l.env.Transmit(&l.tx)
	if l.hasBacklog() {
		l.ensurePacing()
	}
}

func (l *PriorityLink) hasBacklog() bool {
	if l.cfg.DisableFairness {
		return len(l.fifo) > 0
	}
	for _, b := range l.bufs {
		if len(b.entries) > 0 {
			return true
		}
	}
	return false
}

// dequeue applies the service discipline: round-robin over active sources,
// highest priority first within a source, oldest first within a priority.
func (l *PriorityLink) dequeue() *wire.Packet {
	if l.cfg.DisableFairness {
		if len(l.fifo) == 0 {
			return nil
		}
		p := l.fifo[0]
		l.fifo = l.fifo[1:]
		return p
	}
	for range l.order {
		src := l.order[l.next%len(l.order)]
		l.next++
		b := l.bufs[src]
		if len(b.entries) == 0 {
			continue
		}
		best := 0
		for i, e := range b.entries {
			if e.p.Priority > b.entries[best].p.Priority ||
				(e.p.Priority == b.entries[best].p.Priority && e.seq < b.entries[best].seq) {
				best = i
			}
		}
		p := b.entries[best].p
		b.entries = append(b.entries[:best], b.entries[best+1:]...)
		return p
	}
	return nil
}

// HandleFrame implements link.Protocol.
func (l *PriorityLink) HandleFrame(f *wire.Frame) {
	if l.closed || f.Kind != wire.FData || f.Packet == nil {
		return
	}
	l.stats.Delivered++
	l.env.Deliver(f.Packet)
}

// Stats implements link.Protocol.
func (l *PriorityLink) Stats() link.Stats { return l.stats }

// Evicted returns messages dropped by the buffer-allocation policy.
func (l *PriorityLink) Evicted() uint64 { return l.evicted }

// QueuedFor returns the queue depth for one source (diagnostics).
func (l *PriorityLink) QueuedFor(src wire.NodeID) int {
	if b, ok := l.bufs[src]; ok {
		return len(b.entries)
	}
	return 0
}

// Close implements link.Protocol.
func (l *PriorityLink) Close() {
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	for src := range l.bufs {
		delete(l.bufs, src)
	}
	l.order = nil
	l.fifo = nil
}

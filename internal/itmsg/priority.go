package itmsg

import (
	"time"

	"sonet/internal/link"
	"sonet/internal/metrics"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

// SchedConfig parameterizes the fair link schedulers. The link's finite
// transmission rate is what makes fairness meaningful: a flooding attacker
// contends with honest sources for exactly this capacity.
type SchedConfig struct {
	// Rate is the link's transmission capacity in packets per second.
	Rate float64
	// BufferPerSource bounds stored packets per source (priority
	// messaging) or per flow (reliable messaging).
	BufferPerSource int
	// DisableFairness replaces per-source/per-flow round-robin with a
	// single FIFO queue — the baseline that resource-consumption attacks
	// defeat (ablation for EXP-FAIR).
	DisableFairness bool
	// TotalBuffer bounds the FIFO queue in the unfair baseline.
	TotalBuffer int
	// Classes is the number of strict-priority service classes in the
	// scheduling core (0 or 1 keeps the paper's single-ring discipline;
	// see CoreConfig.Classes).
	Classes int
	// ClassRates optionally shapes each class with a token bucket.
	ClassRates []ClassRate
	// Stats receives drop/backpressure accounting; nil gets a private
	// sink. The node shares one SchedStats across its discipline
	// instances so Daemon.SchedStats aggregates the whole QoS plane.
	Stats *metrics.SchedStats
}

// DefaultSchedConfig returns production defaults: a 1000 pkt/s link with
// 64-packet per-source buffers.
func DefaultSchedConfig() SchedConfig {
	return SchedConfig{Rate: 1000, BufferPerSource: 64, TotalBuffer: 512}
}

func (c SchedConfig) withDefaults() SchedConfig {
	d := DefaultSchedConfig()
	if c.Rate <= 0 {
		c.Rate = d.Rate
	}
	if c.BufferPerSource <= 0 {
		c.BufferPerSource = d.BufferPerSource
	}
	if c.TotalBuffer <= 0 {
		c.TotalBuffer = d.TotalBuffer
	}
	return c
}

// interval returns the pacing interval between transmissions.
func (c SchedConfig) interval() time.Duration {
	return time.Duration(float64(time.Second) / c.Rate)
}

// coreConfig translates the discipline config for the scheduling core.
func (c SchedConfig) coreConfig(policy OverflowPolicy) CoreConfig {
	return CoreConfig{
		FlowBuffer:  c.BufferPerSource,
		Policy:      policy,
		Classes:     c.Classes,
		ClassRates:  c.ClassRates,
		FIFO:        c.DisableFairness,
		TotalBuffer: c.TotalBuffer,
		Stats:       c.Stats,
	}
}

// PriorityLink is the Intrusion-Tolerant Priority link discipline
// (§IV-B): storage is allocated per source, active sources are served
// round-robin, and when a source's buffer fills its oldest lowest-priority
// message is dropped so the highest-priority messages stay timely. A
// compromised source can therefore only ever consume its own share of the
// link. Queueing and service run on the zero-allocation DRR Core.
type PriorityLink struct {
	env  link.Env
	cfg  SchedConfig
	core *Core

	pacing bool
	timer  sim.Timer
	stats  link.Stats
	// tx is the reusable frame for paced transmits.
	tx wire.Frame
	// evicted counts messages dropped by buffer policy on this link.
	evicted uint64
	closed  bool
}

var _ link.Protocol = (*PriorityLink)(nil)
var _ link.TrySender = (*PriorityLink)(nil)

// NewPriorityLink returns an IT-Priority endpoint.
func NewPriorityLink(env link.Env, cfg SchedConfig) *PriorityLink {
	cfg = cfg.withDefaults()
	return &PriorityLink{
		env:  env,
		cfg:  cfg,
		core: NewCore(cfg.coreConfig(PolicyEvictLowest)),
	}
}

// Send implements link.Protocol: it enqueues under the fair-allocation
// policy and lets the pacer transmit at link rate. The packet is borrowed;
// the core captures its bytes into pooled refcounted buffers.
func (l *PriorityLink) Send(p *wire.Packet) {
	if l.closed {
		return
	}
	l.enqueue(p)
}

// TrySend implements link.TrySender: like Send, but a packet refused by
// the buffer policy returns link.ErrBackpressure instead of vanishing, so
// originating callers (sessions) can slow down rather than lose traffic.
func (l *PriorityLink) TrySend(p *wire.Packet) error {
	if l.closed {
		return link.ErrBackpressure
	}
	if !l.enqueue(p).Accepted() {
		return link.ErrBackpressure
	}
	return nil
}

func (l *PriorityLink) enqueue(p *wire.Packet) Outcome {
	outcome := l.core.Enqueue(FlowKey{Src: p.Src}, p)
	switch outcome {
	case Stored:
		l.ensurePacing()
	case StoredEvicted:
		l.evicted++
		l.stats.SendDropped++
		l.ensurePacing()
	case RefusedLow, RefusedFIFO:
		l.evicted++
		l.stats.SendDropped++
	}
	return outcome
}

func (l *PriorityLink) ensurePacing() {
	if l.pacing || l.closed {
		return
	}
	l.pacing = true
	l.timer = l.env.Clock().After(l.cfg.interval(), l.pace)
}

func (l *PriorityLink) pace() {
	l.pacing = false
	if l.closed {
		return
	}
	now := l.env.Clock().Now()
	p, buf, ok := l.core.Dequeue(now)
	if !ok {
		return
	}
	l.stats.DataSent++
	l.tx = wire.Frame{
		Proto:    wire.LPITPriority,
		Kind:     wire.FData,
		SendTime: now,
		Packet:   p,
	}
	l.env.Transmit(&l.tx)
	// Transmit marshals synchronously, so the captured bytes are done.
	if buf != nil {
		buf.Release()
	}
	if l.core.Backlog() > 0 {
		l.ensurePacing()
	}
}

// HandleFrame implements link.Protocol.
func (l *PriorityLink) HandleFrame(f *wire.Frame) {
	if l.closed || f.Kind != wire.FData || f.Packet == nil {
		return
	}
	l.stats.Delivered++
	l.env.Deliver(f.Packet)
}

// Stats implements link.Protocol.
func (l *PriorityLink) Stats() link.Stats { return l.stats }

// Evicted returns messages dropped by the buffer-allocation policy.
func (l *PriorityLink) Evicted() uint64 { return l.evicted }

// QueuedFor returns the queue depth for one source (diagnostics).
func (l *PriorityLink) QueuedFor(src wire.NodeID) int {
	return l.core.QueuedFor(FlowKey{Src: src})
}

// SetSourceWeight configures a source's DRR quantum (packets per
// round-robin visit, default 1); it persists while the source is idle.
func (l *PriorityLink) SetSourceWeight(src wire.NodeID, weight int) {
	l.core.SetWeight(FlowKey{Src: src}, weight)
}

// Core exposes the scheduling engine (tests, diagnostics).
func (l *PriorityLink) Core() *Core { return l.core }

// Close implements link.Protocol.
func (l *PriorityLink) Close() {
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	l.core.Close()
}

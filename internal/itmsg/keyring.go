// Package itmsg implements the intrusion-tolerant messaging services of
// §IV-B: source authentication (Ed25519) and per-link authentication
// (HMAC-SHA256), plus the two fair-forwarding link disciplines —
// Intrusion-Tolerant Priority (per-source buffers, priority eviction,
// round-robin) and Intrusion-Tolerant Reliable (per-flow buffers,
// backpressure, round-robin) — that keep compromised nodes from starving
// correct sources with resource-consumption attacks.
//
// Dissemination-side intrusion tolerance (k node-disjoint paths and
// constrained flooding) is provided by the routing level; these services
// compose with it.
package itmsg

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sonet/internal/wire"
)

// Keyring holds one node's signing key, every valid node's verification
// key, and pairwise link keys. Because the number of overlay nodes is
// small, each overlay node can know the identities of all valid overlay
// nodes in the system (§IV-B).
type Keyring struct {
	self    wire.NodeID
	signKey ed25519.PrivateKey
	verify  map[wire.NodeID]ed25519.PublicKey
	// linkKeys holds the pairwise HMAC key shared with each peer.
	linkKeys map[wire.NodeID][]byte
}

// NewDeterministicKeyring derives a full keyring for node self from a
// shared deployment seed: every node derives the same key material, which
// stands in for the out-of-band provisioning a real deployment would use.
func NewDeterministicKeyring(self wire.NodeID, all []wire.NodeID, seed []byte) *Keyring {
	k := &Keyring{
		self:     self,
		verify:   make(map[wire.NodeID]ed25519.PublicKey, len(all)),
		linkKeys: make(map[wire.NodeID][]byte, len(all)),
	}
	for _, n := range all {
		priv := ed25519.NewKeyFromSeed(deriveSeed(seed, "sign", uint32(n), 0))
		pub, ok := priv.Public().(ed25519.PublicKey)
		if !ok {
			continue
		}
		k.verify[n] = pub
		if n == self {
			k.signKey = priv
		}
		a, b := self, n
		if a > b {
			a, b = b, a
		}
		k.linkKeys[n] = deriveSeed(seed, "link", uint32(a), uint32(b))
	}
	return k
}

func deriveSeed(seed []byte, label string, a, b uint32) []byte {
	h := sha256.New()
	h.Write(seed)
	h.Write([]byte(label))
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:], a)
	binary.BigEndian.PutUint32(buf[4:], b)
	h.Write(buf[:])
	return h.Sum(nil)
}

// Self returns the keyring's node.
func (k *Keyring) Self() wire.NodeID { return k.self }

// SignPacket attaches the node's Ed25519 signature to p and sets FSigned.
// The signature covers everything except the hop-mutable TTL.
func (k *Keyring) SignPacket(p *wire.Packet) error {
	if k.signKey == nil {
		return fmt.Errorf("itmsg: node %v has no signing key", k.self)
	}
	p.Flags |= wire.FSigned
	p.Sig = nil
	msg, err := p.SignableBytes()
	if err != nil {
		return fmt.Errorf("itmsg: sign: %w", err)
	}
	p.Sig = ed25519.Sign(k.signKey, msg)
	return nil
}

// VerifyPacket checks p's source signature against the claimed source
// node's public key.
func (k *Keyring) VerifyPacket(p *wire.Packet) bool {
	if !p.Flags.Has(wire.FSigned) || len(p.Sig) != ed25519.SignatureSize {
		return false
	}
	pub, ok := k.verify[p.Src]
	if !ok {
		return false
	}
	msg, err := p.SignableBytes()
	if err != nil {
		return false
	}
	return ed25519.Verify(pub, msg, p.Sig)
}

// MacFrame attaches the pairwise HMAC for the link to peer. The canonical
// encoding is built in a pooled buffer, so MACing adds no per-frame buffer
// allocation.
func (k *Keyring) MacFrame(f *wire.Frame, peer wire.NodeID) error {
	key, ok := k.linkKeys[peer]
	if !ok {
		return fmt.Errorf("itmsg: no link key for peer %v", peer)
	}
	f.Auth = nil
	buf := wire.DefaultBufPool.Get(f.MarshaledSize())
	defer buf.Release()
	msg, err := f.AppendAuthable(buf.B)
	if err != nil {
		return fmt.Errorf("itmsg: mac: %w", err)
	}
	buf.B = msg
	mac := hmac.New(sha256.New, key)
	mac.Write(msg)
	f.Auth = mac.Sum(nil)
	return nil
}

// VerifyFrame checks a frame's link HMAC against the pairwise key shared
// with peer.
func (k *Keyring) VerifyFrame(f *wire.Frame, peer wire.NodeID) bool {
	key, ok := k.linkKeys[peer]
	if !ok || len(f.Auth) == 0 {
		return false
	}
	buf := wire.DefaultBufPool.Get(f.MarshaledSize())
	defer buf.Release()
	msg, err := f.AppendAuthable(buf.B)
	if err != nil {
		return false
	}
	buf.B = msg
	mac := hmac.New(sha256.New, key)
	mac.Write(msg)
	return hmac.Equal(mac.Sum(nil), f.Auth)
}

package itmsg

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/sim"
	"sonet/internal/wire"
)

func corePacket(src, dst wire.NodeID, seq uint32, prio uint8) *wire.Packet {
	return &wire.Packet{
		Type: wire.PTData, Route: wire.RouteLinkState,
		Src: src, Dst: dst, FlowSeq: seq, Priority: prio,
		Payload: []byte{byte(seq), byte(seq >> 8), byte(seq >> 16)},
	}
}

func drainCore(c *Core) []wire.Packet {
	var out []wire.Packet
	for {
		p, buf, ok := c.Dequeue(0)
		if !ok {
			return out
		}
		out = append(out, *p)
		if buf != nil {
			buf.Release()
		}
	}
}

// TestCoreChurnBoundedState is the idle-flow leak regression: 10k one-shot
// sources pass through the scheduler, and the flow arena must stay tiny —
// the seed implementation retained every source forever and scanned all of
// them on every dequeue.
func TestCoreChurnBoundedState(t *testing.T) {
	for _, policy := range []OverflowPolicy{PolicyEvictLowest, PolicyReject} {
		c := NewCore(CoreConfig{FlowBuffer: 8, Policy: policy})
		const churn = 10000
		for i := 0; i < churn; i++ {
			key := FlowKey{Src: wire.NodeID(i%60000 + 1), Dst: 7}
			if got := c.Enqueue(key, corePacket(key.Src, 7, uint32(i), 0)); got != Stored {
				t.Fatalf("policy %v: enqueue %d: outcome %v", policy, i, got)
			}
			p, buf, ok := c.Dequeue(0)
			if !ok || p.FlowSeq != uint32(i) {
				t.Fatalf("policy %v: dequeue %d: ok=%v", policy, i, ok)
			}
			if buf != nil {
				buf.Release()
			}
		}
		if got := c.ActiveFlows(); got != 0 {
			t.Fatalf("policy %v: %d flows still active after churn", policy, got)
		}
		if got := c.FlowSlots(); got > 4 {
			t.Fatalf("policy %v: flow arena grew to %d slots for 1 concurrent flow", policy, got)
		}
		if got := c.EntrySlots(); got > 4 {
			t.Fatalf("policy %v: entry arena grew to %d slots for 1 queued packet", policy, got)
		}
		st := c.Stats().Snapshot()
		if st.FlowsRetired != churn {
			t.Fatalf("policy %v: FlowsRetired = %d, want %d", policy, st.FlowsRetired, churn)
		}
		if !st.Balanced() {
			t.Fatalf("policy %v: accounting identity violated: %+v", policy, st)
		}
	}
}

// TestCoreFIFOBoundedRing is the unfair-baseline leak regression: the seed
// ablation advanced the FIFO with fifo[1:], pinning the consumed prefix of
// an ever-growing backing array. The ring must hold exactly TotalBuffer
// slots no matter how many packets cycle through.
func TestCoreFIFOBoundedRing(t *testing.T) {
	c := NewCore(CoreConfig{FIFO: true, TotalBuffer: 32})
	for i := 0; i < 5000; i++ {
		if got := c.Enqueue(FlowKey{}, corePacket(1, 2, uint32(i), 0)); got != Stored {
			t.Fatalf("enqueue %d: outcome %v", i, got)
		}
		p, buf, ok := c.Dequeue(0)
		if !ok || p.FlowSeq != uint32(i) {
			t.Fatalf("dequeue %d: ok=%v", i, ok)
		}
		if buf != nil {
			buf.Release()
		}
	}
	if got := len(c.fifoQ); got != 32 {
		t.Fatalf("FIFO ring length %d, want TotalBuffer (32)", got)
	}
	if got := c.EntrySlots(); got > 2 {
		t.Fatalf("entry arena grew to %d for 1 queued packet", got)
	}
	// Overflow still refuses and accounts.
	for i := 0; i < 40; i++ {
		c.Enqueue(FlowKey{}, corePacket(1, 2, uint32(i), 0))
	}
	st := c.Stats().Snapshot()
	if st.DropFIFOOverflow != 8 {
		t.Fatalf("DropFIFOOverflow = %d, want 8", st.DropFIFOOverflow)
	}
}

// TestCoreFairShareUnderAttack is the fairness property test: with every
// flow continuously backlogged and an attacker flooding at 100 times the
// honest arrival rate, each flow's service share must stay within epsilon
// of weight-proportional fair share — the §IV-B guarantee, at randomized
// flow counts and weights, under both overflow policies.
func TestCoreFairShareUnderAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		policy := PolicyEvictLowest
		if trial%2 == 1 {
			policy = PolicyReject
		}
		nHonest := 2 + rng.Intn(24)
		c := NewCore(CoreConfig{FlowBuffer: 8, Policy: policy})
		attacker := FlowKey{Src: 60001, Dst: 1}
		honest := make([]FlowKey, nHonest)
		weight := make(map[FlowKey]int, nHonest+1)
		totalW := 0
		for i := range honest {
			honest[i] = FlowKey{Src: wire.NodeID(i + 1), Dst: 1}
			w := 1 + rng.Intn(4)
			weight[honest[i]] = w
			totalW += w
			c.SetWeight(honest[i], w)
		}
		weight[attacker] = 1
		totalW++

		served := make(map[FlowKey]int)
		seq := uint32(0)
		const rounds = 300
		for round := 0; round < rounds; round++ {
			// The attacker floods 100× the aggregate honest rate; honest
			// flows replenish just above their fair share to stay backlogged.
			for i := 0; i < 100*totalW; i++ {
				seq++
				c.Enqueue(attacker, corePacket(attacker.Src, 1, seq, 0))
			}
			for _, h := range honest {
				for i := 0; i < weight[h]+1; i++ {
					seq++
					c.Enqueue(h, corePacket(h.Src, 1, seq, 0))
				}
			}
			// The paced link serves exactly one round of capacity.
			for i := 0; i < totalW; i++ {
				p, buf, ok := c.Dequeue(0)
				if !ok {
					t.Fatalf("trial %d: link idle with backlog", trial)
				}
				served[FlowKey{Src: p.Src, Dst: p.Dst}]++
				if buf != nil {
					buf.Release()
				}
			}
		}
		for key, w := range weight {
			fair := w * rounds
			got := served[key]
			slack := 2 * w // DRR round-quantization plus start-up transient
			if got < fair-slack || got > fair+slack {
				t.Fatalf("trial %d (policy %v, %d flows): flow %v served %d, fair share %d (weight %d)",
					trial, policy, nHonest+1, key, got, fair, w)
			}
		}
		// The attacker specifically must be confined to its share: its
		// 100× flood bought it nothing.
		if served[attacker] > rounds+2 {
			t.Fatalf("trial %d: attacker served %d of %d rounds", trial, served[attacker], rounds)
		}
	}
}

// seedPrioRef is a faithful port of the seed PriorityLink buffer policy
// (map of per-source slices, O(n) victim scans, cloned entries) used as
// the bit-exactness oracle for drop/eviction order.
type seedPrioRef struct {
	buffer  int
	bufs    map[wire.NodeID][]seedEntry
	order   []wire.NodeID
	next    int
	enqSeq  uint64
	evicted uint64
}

type seedEntry struct {
	prio    uint8
	seq     uint64
	flowSeq uint32
}

func newSeedPrioRef(buffer int) *seedPrioRef {
	return &seedPrioRef{buffer: buffer, bufs: make(map[wire.NodeID][]seedEntry)}
}

func (l *seedPrioRef) send(src wire.NodeID, flowSeq uint32, prio uint8) bool {
	b, ok := l.bufs[src]
	if !ok {
		l.bufs[src] = nil
		l.order = append(l.order, src)
	}
	l.enqSeq++
	if len(b) >= l.buffer {
		victim := -1
		for i, e := range b {
			if victim == -1 || e.prio < b[victim].prio ||
				(e.prio == b[victim].prio && e.seq < b[victim].seq) {
				victim = i
			}
		}
		if victim >= 0 && prio < b[victim].prio {
			l.evicted++
			return false
		}
		b = append(b[:victim], b[victim+1:]...)
		l.evicted++
	}
	l.bufs[src] = append(b, seedEntry{prio: prio, seq: l.enqSeq, flowSeq: flowSeq})
	return true
}

func (l *seedPrioRef) dequeue() (uint32, bool) {
	for range l.order {
		src := l.order[l.next%len(l.order)]
		l.next++
		b := l.bufs[src]
		if len(b) == 0 {
			continue
		}
		best := 0
		for i, e := range b {
			if e.prio > b[best].prio || (e.prio == b[best].prio && e.seq < b[best].seq) {
				best = i
			}
		}
		fs := b[best].flowSeq
		l.bufs[src] = append(b[:best], b[best+1:]...)
		return fs, true
	}
	return 0, false
}

// TestCoreBitExactSingleSource model-checks the DRR core's within-flow
// semantics against the seed scheduler: randomized priorities into one
// source, then a full drain — acceptance decisions, eviction counts, and
// the exact dequeue order must match packet for packet.
func TestCoreBitExactSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		buffer := 1 + rng.Intn(12)
		c := NewCore(CoreConfig{FlowBuffer: buffer, Policy: PolicyEvictLowest})
		ref := newSeedPrioRef(buffer)
		key := FlowKey{Src: 3}
		n := 5 + rng.Intn(60)
		for i := 0; i < n; i++ {
			prio := uint8(rng.Intn(5))
			refStored := ref.send(3, uint32(i), prio)
			got := c.Enqueue(key, corePacket(3, 0, uint32(i), prio))
			if got.Accepted() != refStored {
				t.Fatalf("trial %d: packet %d (prio %d): core %v, seed stored=%v",
					trial, i, prio, got, refStored)
			}
		}
		coreOrder := drainCore(c)
		for i := range coreOrder {
			refFS, ok := ref.dequeue()
			if !ok {
				t.Fatalf("trial %d: core served %d extra packets", trial, len(coreOrder)-i)
			}
			if coreOrder[i].FlowSeq != refFS {
				t.Fatalf("trial %d: dequeue %d: core FlowSeq %d, seed %d",
					trial, i, coreOrder[i].FlowSeq, refFS)
			}
		}
		if _, ok := ref.dequeue(); ok {
			t.Fatalf("trial %d: seed has packets the core dropped", trial)
		}
		if st := c.Stats().Snapshot(); st.DropEvicted+st.DropRefusedLow != ref.evicted {
			t.Fatalf("trial %d: core dropped %d, seed evicted %d",
				trial, st.DropEvicted+st.DropRefusedLow, ref.evicted)
		}
	}
}

// TestCoreBitExactMultiSource model-checks the cross-flow service order:
// several sources prefilled past their buffers, then drained — the DRR
// ring with unit quanta must reproduce the seed's round-robin (including
// the order in which drained sources leave the rotation) exactly.
func TestCoreBitExactMultiSource(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		buffer := 1 + rng.Intn(6)
		nSrc := 2 + rng.Intn(6)
		c := NewCore(CoreConfig{FlowBuffer: buffer, Policy: PolicyEvictLowest})
		ref := newSeedPrioRef(buffer)
		seq := uint32(0)
		for i := 0; i < nSrc*(buffer+3); i++ {
			src := wire.NodeID(rng.Intn(nSrc) + 1)
			prio := uint8(rng.Intn(3))
			seq++
			refStored := ref.send(src, seq, prio)
			got := c.Enqueue(FlowKey{Src: src}, corePacket(src, 0, seq, prio))
			if got.Accepted() != refStored {
				t.Fatalf("trial %d: enq %d: core %v vs seed %v", trial, seq, got, refStored)
			}
		}
		coreOrder := drainCore(c)
		for i := range coreOrder {
			refFS, ok := ref.dequeue()
			if !ok || coreOrder[i].FlowSeq != refFS {
				t.Fatalf("trial %d: dequeue %d: core FlowSeq %d, seed %d (ok=%v)",
					trial, i, coreOrder[i].FlowSeq, refFS, ok)
			}
		}
		if _, ok := ref.dequeue(); ok {
			t.Fatalf("trial %d: seed still backlogged after core drained", trial)
		}
	}
}

// TestCoreRejectPolicyBitExact checks the reliable-fair policy against its
// seed semantics: per-flow FIFO, refusal (not eviction) on overflow.
func TestCoreRejectPolicyBitExact(t *testing.T) {
	c := NewCore(CoreConfig{FlowBuffer: 3, Policy: PolicyReject})
	key := FlowKey{Src: 1, Dst: 9}
	for i := 0; i < 5; i++ {
		got := c.Enqueue(key, corePacket(1, 9, uint32(i), 0))
		if want := i < 3; got.Accepted() != want {
			t.Fatalf("enqueue %d: outcome %v, want accepted=%v", i, got, want)
		}
	}
	order := drainCore(c)
	if len(order) != 3 {
		t.Fatalf("drained %d packets, want 3", len(order))
	}
	for i, p := range order {
		if p.FlowSeq != uint32(i) {
			t.Fatalf("dequeue %d: FlowSeq %d (FIFO violated)", i, p.FlowSeq)
		}
	}
	if st := c.Stats().Snapshot(); st.Backpressure != 2 {
		t.Fatalf("Backpressure = %d, want 2", st.Backpressure)
	}
}

// TestCoreWeightedService checks DRR weights: backlogged flows with
// weights 1/2/4 must be served 1:2:4 per round.
func TestCoreWeightedService(t *testing.T) {
	c := NewCore(CoreConfig{FlowBuffer: 512})
	keys := []FlowKey{{Src: 1}, {Src: 2}, {Src: 3}}
	weights := []int{1, 2, 4}
	for i, k := range keys {
		c.SetWeight(k, weights[i])
		for s := 0; s < 200; s++ {
			c.Enqueue(k, corePacket(k.Src, 0, uint32(s), 0))
		}
	}
	served := make(map[wire.NodeID]int)
	for i := 0; i < 7*20; i++ { // 20 full rounds of total weight 7
		p, buf, ok := c.Dequeue(0)
		if !ok {
			t.Fatal("idle with backlog")
		}
		served[p.Src]++
		if buf != nil {
			buf.Release()
		}
	}
	for i, k := range keys {
		want := weights[i] * 20
		if got := served[k.Src]; got < want-weights[i] || got > want+weights[i] {
			t.Fatalf("flow %v served %d, want ~%d", k, served[k.Src], want)
		}
	}
}

// TestCoreClassesStrictPriorityAndShaping checks the multi-class engine:
// strict priority across class rings, token-bucket demotion of a class
// over its rate, and work-conserving borrowing.
func TestCoreClassesStrictPriorityAndShaping(t *testing.T) {
	// Unshaped: the high class drains completely before the low class.
	c := NewCore(CoreConfig{FlowBuffer: 64, Classes: 4})
	c.Enqueue(FlowKey{Src: 1}, corePacket(1, 0, 1, 10))  // class 0
	c.Enqueue(FlowKey{Src: 2}, corePacket(2, 0, 2, 250)) // class 3
	c.Enqueue(FlowKey{Src: 3}, corePacket(3, 0, 3, 200)) // class 3
	order := drainCore(c)
	if len(order) != 3 || order[0].FlowSeq != 2 || order[1].FlowSeq != 3 || order[2].FlowSeq != 1 {
		t.Fatalf("strict-priority order wrong: %v", flowSeqs(order))
	}

	// Shaped: the high class holds one token; its second packet waits for
	// a refill while the low class borrows the slot (work-conserving).
	c = NewCore(CoreConfig{
		FlowBuffer: 64, Classes: 2,
		ClassRates: []ClassRate{1: {Rate: 1000, Burst: 1}},
	})
	c.Enqueue(FlowKey{Src: 1}, corePacket(1, 0, 1, 200)) // class 1
	c.Enqueue(FlowKey{Src: 1}, corePacket(1, 0, 2, 200)) // class 1
	c.Enqueue(FlowKey{Src: 2}, corePacket(2, 0, 3, 10))  // class 0
	now := time.Duration(0)
	p, buf, _ := c.Dequeue(now)
	if p.FlowSeq != 1 {
		t.Fatalf("first dequeue: FlowSeq %d, want 1 (class 1 credit)", p.FlowSeq)
	}
	releaseBuf(buf)
	p, buf, _ = c.Dequeue(now)
	if p.FlowSeq != 3 {
		t.Fatalf("second dequeue: FlowSeq %d, want 3 (class 1 out of credit)", p.FlowSeq)
	}
	releaseBuf(buf)
	now += time.Millisecond // 1000 pkt/s refills one token
	p, buf, _ = c.Dequeue(now)
	if p.FlowSeq != 2 {
		t.Fatalf("third dequeue: FlowSeq %d, want 2 (refilled)", p.FlowSeq)
	}
	releaseBuf(buf)

	// Borrowing: only the shaped class is backlogged and out of credit —
	// it must still transmit.
	c = NewCore(CoreConfig{
		FlowBuffer: 64, Classes: 2,
		ClassRates: []ClassRate{1: {Rate: 1000, Burst: 1}},
	})
	c.Enqueue(FlowKey{Src: 1}, corePacket(1, 0, 1, 200))
	c.Enqueue(FlowKey{Src: 1}, corePacket(1, 0, 2, 200))
	if got := len(drainCore(c)); got != 2 {
		t.Fatalf("work conservation violated: drained %d of 2", got)
	}
}

func flowSeqs(pkts []wire.Packet) []uint32 {
	out := make([]uint32, len(pkts))
	for i := range pkts {
		out[i] = pkts[i].FlowSeq
	}
	return out
}

func releaseBuf(b *wire.Buf) {
	if b != nil {
		b.Release()
	}
}

// TestCoreCloseAccounting checks that Close releases every captured
// buffer and the accounting identity closes with DropClosed.
func TestCoreCloseAccounting(t *testing.T) {
	stats := &metrics.SchedStats{}
	c := NewCore(CoreConfig{FlowBuffer: 16, Stats: stats})
	for i := 0; i < 10; i++ {
		c.Enqueue(FlowKey{Src: wire.NodeID(i%3 + 1)}, corePacket(wire.NodeID(i%3+1), 0, uint32(i), uint8(i%4)))
	}
	p, buf, _ := c.Dequeue(0)
	if p == nil {
		t.Fatal("dequeue failed")
	}
	releaseBuf(buf)
	c.Close()
	st := stats.Snapshot()
	if st.DropClosed != 9 || st.Queued != 0 || st.ActiveFlows != 0 {
		t.Fatalf("close accounting wrong: %+v", st)
	}
	if !st.Balanced() {
		t.Fatalf("accounting identity violated after close: %+v", st)
	}
	if got := c.Enqueue(FlowKey{Src: 1}, corePacket(1, 0, 99, 0)); got != RefusedClosed {
		t.Fatalf("enqueue after close: %v", got)
	}
}

// TestCoreDequeuePayloadIntegrity checks the capture path end to end: the
// dequeued packet's bytes must match what was enqueued even though they
// ride a shared pooled buffer, and the header must survive the enqueuing
// packet being reused.
func TestCoreDequeuePayloadIntegrity(t *testing.T) {
	c := NewCore(CoreConfig{FlowBuffer: 16})
	scratch := corePacket(5, 6, 1, 3)
	scratch.Payload = []byte("payload-one")
	scratch.Sig = []byte("sig-1")
	c.Enqueue(FlowKey{Src: 5, Dst: 6}, scratch)
	// Reuse the caller's packet — the core must have captured a copy.
	*scratch = wire.Packet{}
	p, buf, ok := c.Dequeue(0)
	if !ok {
		t.Fatal("dequeue failed")
	}
	if string(p.Payload) != "payload-one" || string(p.Sig) != "sig-1" {
		t.Fatalf("captured bytes corrupted: payload %q sig %q", p.Payload, p.Sig)
	}
	if p.Src != 5 || p.Dst != 6 || p.Priority != 3 || p.FlowSeq != 1 {
		t.Fatalf("captured header corrupted: %+v", p)
	}
	if buf == nil {
		t.Fatal("expected a backing buffer for a packet with bytes")
	}
	buf.Release()
}

// TestPriorityLinkIdleSourceRetirement is the discipline-level leak
// regression: one-shot sources through a paced PriorityLink must not
// accumulate scheduler state.
func TestPriorityLinkIdleSourceRetirement(t *testing.T) {
	sched := sim.NewScheduler(1)
	l, _, _ := newPriorityPair(sched, SchedConfig{Rate: 10000, BufferPerSource: 8})
	const churn = 2000
	for i := 0; i < churn; i++ {
		l.Send(srcPacket(wire.NodeID(i%50000+1), uint32(i), 0))
		sched.RunFor(time.Millisecond) // pacer drains between arrivals
	}
	if got := l.Core().ActiveFlows(); got != 0 {
		t.Fatalf("%d sources still hold state after drain", got)
	}
	if got := l.Core().FlowSlots(); got > 8 {
		t.Fatalf("flow arena grew to %d slots under one-shot churn", got)
	}
	if st := l.Core().Stats().Snapshot(); st.FlowsRetired != churn {
		t.Fatalf("FlowsRetired = %d, want %d", st.FlowsRetired, churn)
	}
	l.Close()
}

// TestTrySendBackpressure checks the typed refusal on both disciplines.
func TestTrySendBackpressure(t *testing.T) {
	sched := sim.NewScheduler(1)
	rl, _, _, _ := newReliableFairPair(sched, SchedConfig{Rate: 1000, BufferPerSource: 2})
	for i := 0; i < 2; i++ {
		if err := rl.TrySend(flowPacket(1, 2, uint32(i))); err != nil {
			t.Fatalf("send %d refused early: %v", i, err)
		}
	}
	if err := rl.TrySend(flowPacket(1, 2, 9)); err == nil {
		t.Fatal("saturated flow accepted")
	}
	// A different flow still has its full share.
	if err := rl.TrySend(flowPacket(3, 2, 1)); err != nil {
		t.Fatalf("independent flow refused: %v", err)
	}
	rl.Close()

	pl, _, _ := newPriorityPair(sched, SchedConfig{Rate: 1000, BufferPerSource: 2, DisableFairness: true, TotalBuffer: 2})
	pl.Send(srcPacket(1, 1, 0))
	pl.Send(srcPacket(1, 2, 0))
	if err := pl.TrySend(srcPacket(1, 3, 0)); err == nil {
		t.Fatal("full FIFO accepted")
	}
	pl.Close()
}

// TestCoreHashGrowth pushes enough concurrent flows through the core to
// force several hash-table rehashes and checks lookups stay coherent.
func TestCoreHashGrowth(t *testing.T) {
	c := NewCore(CoreConfig{FlowBuffer: 4})
	const n = 5000
	for i := 0; i < n; i++ {
		key := FlowKey{Src: wire.NodeID(i/256 + 1), Dst: wire.NodeID(i % 256)}
		c.Enqueue(key, corePacket(key.Src, key.Dst, uint32(i), 0))
	}
	if got := c.ActiveFlows(); got != n {
		t.Fatalf("ActiveFlows = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		key := FlowKey{Src: wire.NodeID(i/256 + 1), Dst: wire.NodeID(i % 256)}
		if got := c.QueuedFor(key); got != 1 {
			t.Fatalf("flow %d: QueuedFor = %d, want 1", i, got)
		}
	}
	if got := len(drainCore(c)); got != n {
		t.Fatalf("drained %d, want %d", got, n)
	}
	if got := c.ActiveFlows(); got != 0 {
		t.Fatalf("ActiveFlows = %d after drain", got)
	}
	st := c.Stats().Snapshot()
	if st.FlowsPeak != n {
		t.Fatalf("FlowsPeak = %d, want %d", st.FlowsPeak, n)
	}
}

// TestCoreStarvationSweep runs the EXP-FAIR starvation shape at scheduler
// scale in-process: at 1k, 10k, and (with -short, skipped) 100k active
// flows, one attacker flooding 100× must not displace honest service.
func TestCoreStarvationSweep(t *testing.T) {
	sweep := []struct{ flows, rounds int }{{1000, 64}, {10000, 16}}
	if !testing.Short() {
		sweep = append(sweep, struct{ flows, rounds int }{100000, 4})
	}
	for _, pt := range sweep {
		t.Run(fmt.Sprintf("flows=%d", pt.flows), func(t *testing.T) {
			res := StarvationSweep(pt.flows, pt.rounds)
			if !res.Holds() {
				t.Fatalf("starvation shape violated at %d flows: %+v", pt.flows, res)
			}
		})
	}
}

package experiments

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/metrics"
	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/topology"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// metricRun streams best-effort traffic across the diamond while the
// nominally-best link is persistently lossy, under one routing metric.
func metricRun(seed uint64, metric topology.Metric) (delivered float64, mean time.Duration, err error) {
	ms := time.Millisecond
	links := []core.SimpleLink{
		// The fast northern path's first hop is chronically lossy.
		{A: 1, B: 2, Latency: 10 * ms, Loss: netemu.Bernoulli{P: 0.15}},
		{A: 2, B: 4, Latency: 10 * ms},
		{A: 1, B: 3, Latency: 12 * ms},
		{A: 3, B: 4, Latency: 12 * ms},
	}
	s, err := core.BuildSimple(seed, links)
	if err != nil {
		return 0, 0, err
	}
	s.SetNodeTemplate(func(cfg *node.Config) {
		cfg.Metric = metric
		// A higher miss threshold keeps the lossy link from flapping, so
		// the comparison isolates the metric, not failure detection.
		cfg.LinkState.HelloMiss = 8
	})
	if err := s.Start(); err != nil {
		return 0, 0, err
	}
	defer s.Stop()
	// Let one full loss-measurement window close and flood before
	// streaming, so metrics that use loss can see it.
	s.RunFor(8 * time.Second)

	dst, err := s.Session(4).Connect(100)
	if err != nil {
		return 0, 0, err
	}
	src, err := s.Session(1).Connect(0)
	if err != nil {
		return 0, 0, err
	}
	flow, err := src.OpenFlow(session.FlowSpec{DstNode: 4, DstPort: 100, LinkProto: wire.LPBestEffort})
	if err != nil {
		return 0, 0, err
	}
	const n = 2000
	stream := &workload.CBR{
		Clock:    s.Sched,
		Interval: 5 * time.Millisecond,
		Count:    n,
		Send:     func(uint32, []byte) error { return flow.Send(nil) },
	}
	stream.Start()
	s.RunFor(15 * time.Second)
	st := dst.Stats()
	return float64(st.Received) / n, st.Latency.Mean(), nil
}

// RoutingMetric is the DESIGN.md §5 metric ablation: hop-count and pure
// latency metrics keep traffic on a chronically lossy link, while the
// loss-penalized expected-latency metric (the Spines-style production
// choice) detours around it using the loss estimates shared through the
// Connectivity Graph Maintenance component.
func RoutingMetric(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-METRIC",
		Title: "Routing metric ablation: hop vs latency vs loss-penalized expected latency",
		PaperClaim: "shared link state includes current loss and latency " +
			"characteristics, letting routing react to network conditions (§II-B)",
		Table: metrics.NewTable("metric", "delivered", "mean_latency"),
	}
	variants := []struct {
		label  string
		metric topology.Metric
	}{
		{"hop count", topology.HopMetric},
		{"latency only", topology.LatencyMetric},
		{"expected latency (loss-penalized)", topology.ExpectedLatencyMetric},
	}
	results := make(map[string]float64, len(variants))
	for _, v := range variants {
		delivered, mean, err := metricRun(seed, v.metric)
		if err != nil {
			r.addFinding("ERROR %s: %v", v.label, err)
			return r
		}
		results[v.label] = delivered
		r.Table.AddRow(v.label, fmt.Sprintf("%.4f", delivered), mean)
	}
	lat := results["latency only"]
	exp := results["expected latency (loss-penalized)"]
	r.addFinding("latency-only keeps the 15%%-lossy link (%.1f%% delivered); the loss-penalized metric detours (%.1f%%)",
		lat*100, exp*100)
	r.ShapeHolds = exp > 0.995 && lat < 0.92 && results["hop count"] < 0.92
	return r
}

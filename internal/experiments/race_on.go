//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build.
// Race instrumentation taxes tight slice loops far more than map-heavy
// code, so wall-clock speedup assertions use a reduced floor under race.
const raceEnabled = true

package experiments

import (
	"sonet/internal/chaos"
	"sonet/internal/metrics"
)

// Chaos runs the pinned-seed fault-campaign suite through the
// deterministic chaos engine and verifies two claims at once: the
// overlay's protocols hold their end-to-end invariants (conservation,
// convergence, loop freedom, reliable-stream completeness, group
// agreement) through scripted adversity, and the engine itself replays
// bit-for-bit from (scenario, seed) — the property that makes every
// found violation a permanent regression test.
func Chaos(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-CHAOS",
		Title: "Fault campaigns: invariants under flaps, partitions, outages, and crashes",
		PaperClaim: "the overlay detects failures in hundreds of milliseconds and " +
			"recovers transparently; reliable streams and replicated group state " +
			"survive link, provider, and node failures",
		Table: metrics.NewTable("campaign", "topology", "events", "checks", "violations"),
	}
	clean := true
	var replayed *chaos.Report
	var replayMatch bool
	for i, c := range chaos.SmokeCampaigns() {
		rep, err := chaos.Run(c)
		if err != nil {
			r.addFinding("ERROR %s: %v", c.Name, err)
			return r
		}
		r.Table.AddRow(c.Name, c.Topo, len(rep.Events),
			rep.Stats.InvariantChecks, rep.Stats.Violations)
		if rep.Failed() || !rep.Stats.Clean() {
			clean = false
			for _, v := range rep.Violations {
				r.addFinding("%s: violation at %v: %s: %s", c.Name, v.At, v.Invariant, v.Detail)
			}
		}
		// Replay the first campaign from its artifact to prove the
		// determinism contract on every reproduction run.
		if i == 0 {
			a := chaos.NewArtifact(rep)
			var err error
			replayed, replayMatch, err = chaos.Replay(a)
			if err != nil {
				r.addFinding("ERROR replay: %v", err)
				return r
			}
		}
	}
	r.addFinding("%d campaigns, every invariant check clean: %v", len(chaos.SmokeCampaigns()), clean)
	if replayed != nil {
		r.addFinding("replay of campaign 1 reproduced trace hash %016x bit-for-bit: %v",
			replayed.TraceHash, replayMatch)
	}
	r.ShapeHolds = clean && replayMatch
	return r
}

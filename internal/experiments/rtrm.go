package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"sonet/internal/core"
	"sonet/internal/link"
	"sonet/internal/metrics"
	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/topology"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// rtrmOutcome is one protocol's on-time performance under the localized
// problem.
type rtrmOutcome struct {
	delivered float64
	onTime    float64
	p99       time.Duration
	cost      float64
}

// rtrmRun drives a 1000 pkt/s haptic/control stream NYC→SFO with a 65 ms
// one-way deadline while the links around the source suffer a loss
// episode, under one protocol combination.
func rtrmRun(seed uint64, spec session.FlowSpec) (rtrmOutcome, error) {
	// The problem is localized at the source: every NYC access link gets
	// a switchable bursty loss model cranked up mid-run — the "source
	// problem" scenario that dissemination graphs target (§V-A).
	var sourceLoss []*switchableLoss
	links := continentalLinks(nil)
	for i := range links {
		if links[i].A == NYC {
			sw := &switchableLoss{}
			links[i].Loss = sw
			sourceLoss = append(sourceLoss, sw)
		}
	}
	s, err := core.BuildSimple(seed, links)
	if err != nil {
		return rtrmOutcome{}, err
	}
	s.SetNodeTemplate(func(cfg *node.Config) {
		// Single-strike gets the tiny 20-25 ms recovery budget of §V-A.
		cfg.SingleStrike = link.StrikesConfig{Budget: 25 * time.Millisecond}
		cfg.Strikes = link.StrikesConfig{N: 3, M: 2, Budget: 160 * time.Millisecond}
		// The episode is loss, not an outage: tolerate longer hello gaps
		// so links do not flap down (rerouting cannot help when every
		// source link is affected anyway).
		cfg.LinkState.HelloMiss = 8
	})
	if err := s.Start(); err != nil {
		return rtrmOutcome{}, err
	}
	defer s.Stop()
	s.Settle()

	dst, err := s.Session(SFO).Connect(100)
	if err != nil {
		return rtrmOutcome{}, err
	}
	src, err := s.Session(NYC).Connect(0)
	if err != nil {
		return rtrmOutcome{}, err
	}
	flow, err := src.OpenFlow(spec)
	if err != nil {
		return rtrmOutcome{}, err
	}
	const span = 12 * time.Second
	stream := &workload.CBR{
		Clock:    s.Sched,
		Interval: time.Millisecond,
		Count:    int(span / time.Millisecond),
		Send:     func(uint32, []byte) error { return flow.Send(nil) },
	}
	base := totalDataTransmissions(s.Overlay)
	stream.Start()
	// Localized problem around the source between t=3s and t=9s: ~18%
	// bursty loss on every NYC access link.
	s.Sched.After(3*time.Second, func() {
		for _, sw := range sourceLoss {
			sw.model = netemu.NewGilbertElliott(0.01, 0.04, 0.002, 0.9)
		}
	})
	s.Sched.After(9*time.Second, func() {
		for _, sw := range sourceLoss {
			sw.model = nil
		}
	})
	s.RunFor(span + 3*time.Second)
	tx := totalDataTransmissions(s.Overlay) - base

	st := dst.Stats()
	// The session discards late packets for unordered deadline flows, so
	// Received counts exactly the on-time deliveries; the on-time
	// fraction is measured against everything sent.
	return rtrmOutcome{
		delivered: float64(st.Received+st.Late) / float64(stream.Sent()),
		onTime:    float64(st.Received) / float64(stream.Sent()),
		p99:       st.Latency.Percentile(99),
		cost:      float64(tx) / float64(stream.Sent()),
	}, nil
}

// switchableLoss is a loss model whose behaviour can be swapped mid-run
// (nil = lossless), modelling a localized problem episode.
type switchableLoss struct {
	model netemu.LossModel
}

// Drop implements netemu.LossModel.
func (s *switchableLoss) Drop(now time.Duration, rng *rand.Rand) bool {
	if s.model == nil {
		return false
	}
	return s.model.Drop(now, rng)
}

// RemoteManipulation reproduces §V-A: with a 130 ms round-trip budget
// (65 ms one-way) on a ~37 ms continental path, only 20-25 ms remain for
// recovery — too tight for NM-Strikes' 160 ms budget — so the combination
// of single-strike recovery with a source-problem dissemination graph is
// what keeps the stream on time through a localized loss episode.
func RemoteManipulation(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-RTRM",
		Title: "Real-time remote manipulation (65ms one-way deadline, source-area problem)",
		PaperClaim: "combining single-strike recovery with targeted dissemination " +
			"graphs supports the 65ms budget that defeats pure retransmission protocols",
		Table: metrics.NewTable("protocol", "delivered", "on-time<=65ms", "p99", "tx/pkt"),
	}
	deadline := 65 * time.Millisecond
	unicast := session.FlowSpec{DstNode: SFO, DstPort: 100, Deadline: deadline}
	variants := []struct {
		label string
		spec  session.FlowSpec
	}{
		{"best effort, shortest path", with(unicast, func(f *session.FlowSpec) {})},
		{"NM-strikes (160ms budget)", with(unicast, func(f *session.FlowSpec) { f.LinkProto = wire.LPRealTime })},
		{"single strike only", with(unicast, func(f *session.FlowSpec) { f.LinkProto = wire.LPSingleStrike })},
		{"2 disjoint paths, best effort", with(unicast, func(f *session.FlowSpec) { f.DisjointK = 2 })},
		{"source-problem dissem graph + single strike", with(unicast, func(f *session.FlowSpec) {
			f.Dissem = topology.ProblemSource
			f.LinkProto = wire.LPSingleStrike
		})},
	}
	outcomes := make(map[string]rtrmOutcome, len(variants))
	for _, v := range variants {
		// Every variant runs against the identical seed and therefore the
		// identical loss realization: a paired comparison.
		out, err := rtrmRun(seed, v.spec)
		if err != nil {
			r.addFinding("ERROR %s: %v", v.label, err)
			return r
		}
		outcomes[v.label] = out
		r.Table.AddRow(v.label, fmt.Sprintf("%.4f", out.delivered),
			fmt.Sprintf("%.4f", out.onTime), out.p99, fmt.Sprintf("%.2f", out.cost))
	}
	be := outcomes["best effort, shortest path"]
	nm := outcomes["NM-strikes (160ms budget)"]
	d2 := outcomes["2 disjoint paths, best effort"]
	combo := outcomes["source-problem dissem graph + single strike"]
	r.addFinding("best effort on-time %.4f; recovery alone reaches %.4f (strikes killed inside bursts arrive late)",
		be.onTime, nm.onTime)
	r.addFinding("2-disjoint %.4f; dissem graph + single strike %.4f at %.2f tx/pkt",
		d2.onTime, combo.onTime, combo.cost)
	ss := outcomes["single strike only"]
	recoveryCeiling := max(nm.onTime, ss.onTime, be.onTime)
	r.ShapeHolds = combo.onTime > d2.onTime &&
		d2.onTime > recoveryCeiling &&
		// The §V-A point: NM-Strikes recovers packets (delivered) whose
		// later strikes no longer fit the 65 ms budget (on-time), so the
		// strict deadline erases most of its recovery value.
		nm.delivered-nm.onTime > 0.03 &&
		combo.onTime > 0.995 &&
		be.onTime < 0.96 &&
		combo.cost < 15
	return r
}

// with copies a FlowSpec and applies a mutation.
func with(base session.FlowSpec, mutate func(*session.FlowSpec)) session.FlowSpec {
	spec := base
	mutate(&spec)
	return spec
}

package experiments

import "testing"

func TestFig3Smoke(t *testing.T) {
	r := Fig3HopByHop(1)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestFig4Smoke(t *testing.T) {
	r := Fig4NMStrikes(2)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestRerouteSmoke(t *testing.T) {
	r := Reroute(3)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestMulticastSmoke(t *testing.T) {
	r := Multicast(4)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestMonitoringControlSmoke(t *testing.T) {
	r := MonitoringControl(5)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestIntrusionToleranceSmoke(t *testing.T) {
	r := IntrusionTolerance(6)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestFairnessSmoke(t *testing.T) {
	r := Fairness(7)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestRemoteManipulationSmoke(t *testing.T) {
	r := RemoteManipulation(8)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestAnycastSmoke(t *testing.T) {
	r := Anycast(9)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestMultihomingSmoke(t *testing.T) {
	r := Multihoming(10)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestRoutingMetricSmoke(t *testing.T) {
	r := RoutingMetric(12)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestGlobalCoverageSmoke(t *testing.T) {
	r := GlobalCoverage(13)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestTopologyCliqueSmoke(t *testing.T) {
	r := TopologyClique(14)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestCompoundFlowSmoke(t *testing.T) {
	r := CompoundFlow(11)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestConvergenceScaleSmoke(t *testing.T) {
	r := ConvergenceScale(15)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestWireThroughputSmoke(t *testing.T) {
	r := WireThroughput(16)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestChaosExperimentSmoke(t *testing.T) {
	r := Chaos(17)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

func TestChurnSmoke(t *testing.T) {
	r := Churn(18)
	t.Log("\n" + r.String())
	if !r.ShapeHolds {
		t.Fatal("shape does not hold")
	}
}

// TestExperimentsDeterministic verifies the reproduction harness itself:
// the same seed regenerates the identical table, byte for byte.
func TestExperimentsDeterministic(t *testing.T) {
	a := Fig3HopByHop(9).String()
	b := Fig3HopByHop(9).String()
	if a != b {
		t.Fatalf("Fig3 diverged between identical runs:\n%s\n---\n%s", a, b)
	}
	c := Reroute(9).String()
	d := Reroute(9).String()
	if c != d {
		t.Fatal("Reroute diverged between identical runs")
	}
}

package experiments

import (
	"math"
	"time"

	"sonet/internal/core"
	"sonet/internal/netemu"
	"sonet/internal/wire"
)

// Continental node IDs: a 14-node US-scale overlay in the spirit of
// Fig. 1, with overlay links on the order of 10 ms (§II-A) and a
// coast-to-coast diameter around 40 ms (§IV-A: "on the scale of a
// continent with a 40ms propagation delay").
const (
	NYC wire.NodeID = iota + 1
	PHI
	DC
	ATL
	MIA
	CHI
	DEN
	DAL
	LAX
	SFO
	SEA
	SLC
	PIT
	MSP
)

// continentalNames maps node IDs to city mnemonics for reporting.
var continentalNames = map[wire.NodeID]string{
	NYC: "NYC", PHI: "PHI", DC: "DC", ATL: "ATL", MIA: "MIA",
	CHI: "CHI", DEN: "DEN", DAL: "DAL", LAX: "LAX", SFO: "SFO",
	SEA: "SEA", SLC: "SLC", PIT: "PIT", MSP: "MSP",
}

// continentalLinks returns the designed continental topology with the
// given loss model cloned per link (stateful models must not be shared).
func continentalLinks(loss func() netemu.LossModel) []core.SimpleLink {
	if loss == nil {
		loss = func() netemu.LossModel { return nil }
	}
	ms := time.Millisecond
	spec := []struct {
		a, b wire.NodeID
		lat  time.Duration
	}{
		{NYC, PHI, 3 * ms}, {NYC, CHI, 10 * ms}, {NYC, DC, 9 * ms},
		{PHI, DC, 3 * ms}, {PHI, PIT, 4 * ms},
		{DC, ATL, 9 * ms}, {DC, CHI, 9 * ms}, {DC, DAL, 16 * ms},
		{ATL, MIA, 9 * ms}, {ATL, DAL, 10 * ms},
		{CHI, DEN, 12 * ms}, {CHI, MSP, 5 * ms},
		{PIT, MSP, 9 * ms}, {MSP, SEA, 18 * ms},
		{DEN, SLC, 6 * ms}, {DEN, DAL, 9 * ms}, {DEN, LAX, 12 * ms},
		{DAL, LAX, 12 * ms},
		{SLC, SFO, 9 * ms}, {SLC, SEA, 11 * ms},
		{SFO, LAX, 5 * ms}, {SFO, SEA, 10 * ms},
	}
	links := make([]core.SimpleLink, 0, len(spec))
	for _, s := range spec {
		links = append(links, core.SimpleLink{A: s.a, B: s.b, Latency: s.lat, Loss: loss()})
	}
	return links
}

// fig3Chain returns the Fig. 3 world: a direct 50 ms path (nodes 1-7)
// beside a chain of five 10 ms overlay links (1-2-3-4-5-6-7 would be six
// links; the paper's five links span 1..6), each leg carrying a share of
// the same ~1% end-to-end loss.
func fig3Chain(pathLoss float64) []core.SimpleLink {
	// Per-link loss p with 1-(1-p)^5 = pathLoss.
	perLink := 1 - math.Pow(1-pathLoss, 0.2)
	ms := time.Millisecond
	links := []core.SimpleLink{
		// Direct end-to-end path between the endpoints (50 ms, 1%).
		{A: 1, B: 6, Latency: 50 * ms, Loss: netemu.Bernoulli{P: pathLoss}},
	}
	for n := wire.NodeID(1); n < 6; n++ {
		links = append(links, core.SimpleLink{
			A: n, B: n + 1, Latency: 10 * ms,
			Loss: netemu.Bernoulli{P: perLink},
		})
	}
	return links
}

package experiments

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/linkstate"
	"sonet/internal/metrics"
	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// rerouteOutcome is one mechanism's measured outage.
type rerouteOutcome struct {
	outage time.Duration
	lost   int
}

// rerouteOverlay measures the delivery gap a 100 pkt/s stream suffers
// when the fiber under its primary overlay link is cut, for a given hello
// interval.
func rerouteOverlay(seed uint64, hello time.Duration) (rerouteOutcome, error) {
	s, err := core.BuildSimple(seed, diamondLinksForReroute())
	if err != nil {
		return rerouteOutcome{}, err
	}
	s.SetNodeTemplate(func(cfg *node.Config) {
		cfg.LinkState = linkstate.Config{HelloInterval: hello}
	})
	if err := s.Start(); err != nil {
		return rerouteOutcome{}, err
	}
	defer s.Stop()
	s.Settle()
	return runRerouteStream(s.Overlay, func() { _ = s.CutLink(1, 2) })
}

// rerouteBGP measures the same cut when only native IP rerouting exists:
// the two endpoints share one overlay link whose ISP has an alternate
// fiber path, so recovery waits for the provider's 40 s convergence
// (§II-A). It also returns the underlay route-cache counters: the cut and
// its convergence event are the only epoch bumps, so the ~6000-packet
// stream must be served almost entirely from cache.
func rerouteBGP(seed uint64) (rerouteOutcome, metrics.RouteCacheSnapshot, error) {
	o := core.New(seed, netemu.DefaultConfig())
	a := o.AddSite("A")
	b := o.AddSite("B")
	c := o.AddSite("C")
	isp := o.AddISP("isp-1")
	direct, err := o.AddFiber(isp, a, b, 10*time.Millisecond, 0, nil)
	if err != nil {
		return rerouteOutcome{}, metrics.RouteCacheSnapshot{}, err
	}
	if _, err := o.AddFiber(isp, a, c, 15*time.Millisecond, 0, nil); err != nil {
		return rerouteOutcome{}, metrics.RouteCacheSnapshot{}, err
	}
	if _, err := o.AddFiber(isp, c, b, 15*time.Millisecond, 0, nil); err != nil {
		return rerouteOutcome{}, metrics.RouteCacheSnapshot{}, err
	}
	o.AddNode(1, a)
	o.AddNode(2, b)
	if _, err := o.AddLink(1, 2, 10*time.Millisecond, isp); err != nil {
		return rerouteOutcome{}, metrics.RouteCacheSnapshot{}, err
	}
	// Hellos must not declare the link down during IP convergence — the
	// "native" behaviour keeps waiting for BGP, so probe slowly and
	// tolerantly.
	o.SetNodeTemplate(func(cfg *node.Config) {
		cfg.LinkState = linkstate.Config{
			HelloInterval: 2 * time.Second,
			HelloMiss:     1 << 30,
		}
	})
	if err := o.Start(); err != nil {
		return rerouteOutcome{}, metrics.RouteCacheSnapshot{}, err
	}
	defer o.Stop()
	o.Settle()
	out, err := runRerouteStream(o, func() { o.Net.CutFiber(direct) })
	return out, o.Net.RouteCacheStats(), err
}

// diamondLinksForReroute is the standard diamond without the slow chord.
func diamondLinksForReroute() []core.SimpleLink {
	ms := time.Millisecond
	return []core.SimpleLink{
		{A: 1, B: 2, Latency: 10 * ms},
		{A: 2, B: 4, Latency: 10 * ms},
		{A: 1, B: 3, Latency: 12 * ms},
		{A: 3, B: 4, Latency: 12 * ms},
	}
}

// runRerouteStream drives the stream, injects the failure at t+5s, and
// returns the worst post-failure delivery gap and the packet deficit.
func runRerouteStream(o *core.Overlay, inject func()) (rerouteOutcome, error) {
	dst, err := o.Session(destNode(o)).Connect(100)
	if err != nil {
		return rerouteOutcome{}, err
	}
	var deliveredAt []time.Duration
	dst.OnDeliver(func(session.Delivery) {
		deliveredAt = append(deliveredAt, o.Now())
	})
	src, err := o.Session(1).Connect(0)
	if err != nil {
		return rerouteOutcome{}, err
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: destNode(o), DstPort: 100, LinkProto: wire.LPBestEffort,
	})
	if err != nil {
		return rerouteOutcome{}, err
	}
	stream := &workload.CBR{
		Clock:    o.Sched,
		Interval: 10 * time.Millisecond,
		Count:    6000, // 60 s at 100 pkt/s
		Send:     func(uint32, []byte) error { return flow.Send(nil) },
	}
	stream.Start()
	start := o.Now()
	cutAt := start + 5*time.Second
	o.Sched.At(cutAt, inject)
	o.RunFor(62 * time.Second)

	var worst time.Duration
	for i := 1; i < len(deliveredAt); i++ {
		if deliveredAt[i-1] < cutAt {
			continue
		}
		if gap := deliveredAt[i] - deliveredAt[i-1]; gap > worst {
			worst = gap
		}
	}
	return rerouteOutcome{
		outage: worst,
		lost:   int(stream.Sent()) - len(deliveredAt),
	}, nil
}

// destNode picks the stream destination: node 4 in the diamond, node 2 in
// the two-node BGP world.
func destNode(o *core.Overlay) wire.NodeID {
	if o.Graph.HasNode(4) {
		return 4
	}
	return 2
}

// Reroute reproduces the §II-A claim: the overlay routes around failures
// at sub-second timescales by exploiting its shared global state, versus
// the 40 seconds BGP may take to converge. Hello interval sweeps show the
// detection-time knob.
func Reroute(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-REROUTE",
		Title: "Sub-second overlay rerouting vs BGP convergence",
		PaperClaim: "the overlay reroutes around problems at a sub-second scale, " +
			"in contrast to the 40 seconds to minutes BGP may take",
		Table: metrics.NewTable("mechanism", "outage", "packets_lost"),
	}
	intervals := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 500 * time.Millisecond,
	}
	var atDefault rerouteOutcome
	for i, hello := range intervals {
		out, err := rerouteOverlay(seed+uint64(i), hello)
		if err != nil {
			r.addFinding("ERROR overlay hello=%v: %v", hello, err)
			return r
		}
		if hello == 100*time.Millisecond {
			atDefault = out
		}
		r.Table.AddRow(fmt.Sprintf("overlay, hello=%v", hello), out.outage, out.lost)
	}
	bgp, cache, err := rerouteBGP(seed + 50)
	if err != nil {
		r.addFinding("ERROR bgp: %v", err)
		return r
	}
	r.Table.AddRow("native IP (BGP 40s convergence)", bgp.outage, bgp.lost)

	r.addFinding("overlay outage %.0fms (hello=100ms) vs native %.1fs — %.0fx faster recovery",
		ms(atDefault.outage), bgp.outage.Seconds(),
		float64(bgp.outage)/float64(nonzero(atDefault.outage)))
	r.addFinding("underlay route cache (BGP world): %.1f%% hit ratio (%d hits, %d misses, %d invalidations)",
		100*cache.HitRatio(), cache.Hits, cache.Misses, cache.Invalidations)
	r.ShapeHolds = atDefault.outage < time.Second && bgp.outage > 30*time.Second &&
		cache.HitRatio() > 0.99
	return r
}

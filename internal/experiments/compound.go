package experiments

import (
	"bytes"
	"time"

	"sonet/internal/core"
	"sonet/internal/metrics"
	"sonet/internal/session"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// CompoundFlow reproduces §V-C: a live video stream is sent to an
// in-network transcoding service (an anycast group with facilities at CHI
// and DAL); the transcoder transforms the stream and multicasts the
// result to CDN delivery sites. When the serving transcoder's data center
// fails, rerouting selects the alternate facility and the transformed
// delivery continues.
func CompoundFlow(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-COMPOUND",
		Title: "Compound flow: stadium → transcoder (anycast) → CDN sites, with transcoder failover",
		PaperClaim: "network conditions and failures may lead to rerouting that can " +
			"include the selection of a transcoding facility at a different location",
		Table: metrics.NewTable("phase", "transcoder", "cdn_deliveries", "gap"),
	}
	s, err := core.BuildSimple(seed, continentalLinks(nil))
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	if err := s.Start(); err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	defer s.Stop()
	s.Settle()

	const (
		transcodeGroup wire.GroupID = 4000
		cdnGroup       wire.GroupID = 4001
		rawPort        wire.Port    = 100
		tvPort         wire.Port    = 200
	)

	// Transcoding facilities at CHI and DAL: each receives raw frames on
	// the transcode group and republishes transformed frames to the CDN
	// group.
	transcoded := func(raw []byte) []byte {
		out := bytes.ToUpper(raw)
		return append(out, []byte("|h264->h265")...)
	}
	servedBy := make(map[wire.NodeID]int)
	for _, site := range []wire.NodeID{CHI, DAL} {
		site := site
		in, err := s.Session(site).Connect(rawPort)
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		in.Join(transcodeGroup)
		out, err := s.Session(site).Connect(0)
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		outFlow, err := out.OpenFlow(session.FlowSpec{
			Group: cdnGroup, DstPort: tvPort, LinkProto: wire.LPRealTime,
		})
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		in.OnDeliver(func(d session.Delivery) {
			servedBy[site]++
			_ = outFlow.Send(transcoded(d.Payload))
		})
	}

	// CDN delivery sites subscribe to the transformed stream.
	var deliveries []time.Duration
	var lastPayload []byte
	for _, cdn := range []wire.NodeID{MIA, LAX} {
		c, err := s.Session(cdn).Connect(tvPort)
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		c.Join(cdnGroup)
		c.OnDeliver(func(d session.Delivery) {
			deliveries = append(deliveries, s.Now())
			lastPayload = d.Payload
		})
	}
	s.Settle()

	// The stadium at NYC anycasts raw frames to the transcoding service.
	stadium, err := s.Session(NYC).Connect(0)
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	rawFlow, err := stadium.OpenFlow(session.FlowSpec{
		Group: transcodeGroup, Anycast: true, DstPort: rawPort,
		LinkProto: wire.LPRealTime,
	})
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	stream := &workload.CBR{
		Clock:    s.Sched,
		Interval: 10 * time.Millisecond,
		Count:    3000, // 30 s of video at 100 fps
		Send:     func(uint32, []byte) error { return rawFlow.Send([]byte("frame")) },
	}
	stream.Start()

	// Phase 1: 10 s healthy operation.
	s.RunFor(10 * time.Second)
	phase1 := len(deliveries)
	primary := CHI
	if servedBy[DAL] > servedBy[CHI] {
		primary = DAL
	}
	r.Table.AddRow("healthy", continentalNames[primary], phase1, "-")

	// Phase 2: the serving transcoder's data center fails.
	failAt := s.Now()
	if st, ok := s.Net.NodeSite(primary); ok {
		s.Net.SetSiteUp(st, false)
	}
	s.RunFor(20 * time.Second)
	phase2 := len(deliveries) - phase1
	var worst time.Duration
	for i := 1; i < len(deliveries); i++ {
		if deliveries[i-1] < failAt {
			continue
		}
		if gap := deliveries[i] - deliveries[i-1]; gap > worst {
			worst = gap
		}
	}
	alternate := CHI + DAL - primary
	r.Table.AddRow("after site failure", continentalNames[alternate], phase2, worst)

	served2 := servedBy[alternate]
	r.addFinding("primary transcoder %s served %d frames; after its site failed, %s took over with a %.0fms delivery gap",
		continentalNames[primary], servedBy[primary], continentalNames[alternate], ms(worst))
	if len(lastPayload) > 0 {
		r.addFinding("transformed payload verified end-to-end: %q", string(lastPayload))
	}
	r.ShapeHolds = phase1 > 1800 && // ~2 CDN sites × 10s × 100fps, minus latency tail
		served2 > 0 && phase2 > 3000 &&
		worst < 2*time.Second &&
		bytes.Contains(lastPayload, []byte("FRAME|h264->h265"))
	return r
}

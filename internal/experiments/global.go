package experiments

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/metrics"
	"sonet/internal/session"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// Global node IDs, continuing after the continental set.
const (
	LON wire.NodeID = iota + 100
	PAR
	FRA
	AMS
	MAD
	MIL
	STO
	DXB
	BOM
	SIN
	HKG
	TYO
	SYD
	SAO
	JNB
)

// globalNames extends continentalNames for reporting.
var globalNames = map[wire.NodeID]string{
	LON: "LON", PAR: "PAR", FRA: "FRA", AMS: "AMS", MAD: "MAD",
	MIL: "MIL", STO: "STO", DXB: "DXB", BOM: "BOM", SIN: "SIN",
	HKG: "HKG", TYO: "TYO", SYD: "SYD", SAO: "SAO", JNB: "JNB",
}

func globalName(n wire.NodeID) string {
	if s, ok := continentalNames[n]; ok {
		return s
	}
	if s, ok := globalNames[n]; ok {
		return s
	}
	return n.String()
}

// globalLinks extends the 14-node US overlay into a 29-node global one:
// a European mesh, transatlantic and transpacific cables, the Middle
// East/Asia corridor, and South America/Africa spurs — the Fig. 1
// resilient architecture at world scale, with overlay links kept as short
// as geography allows (§II-A).
func globalLinks() []core.SimpleLink {
	ms := time.Millisecond
	links := continentalLinks(nil)
	spec := []struct {
		a, b wire.NodeID
		lat  time.Duration
	}{
		// Transatlantic.
		{NYC, LON, 35 * ms}, {DC, PAR, 40 * ms}, {MIA, MAD, 40 * ms},
		// European mesh (~5-10 ms links).
		{LON, PAR, 4 * ms}, {LON, AMS, 4 * ms}, {PAR, FRA, 5 * ms},
		{AMS, FRA, 4 * ms}, {FRA, MIL, 5 * ms}, {PAR, MAD, 8 * ms},
		{LON, STO, 10 * ms}, {FRA, STO, 9 * ms}, {PAR, MIL, 6 * ms},
		// Middle East / Asia corridor.
		{FRA, DXB, 50 * ms}, {MIL, DXB, 45 * ms},
		{DXB, BOM, 15 * ms}, {BOM, SIN, 25 * ms},
		{SIN, HKG, 17 * ms}, {HKG, TYO, 25 * ms},
		// Transpacific.
		{TYO, SEA, 45 * ms}, {TYO, SFO, 50 * ms},
		{SYD, LAX, 70 * ms}, {SIN, SYD, 45 * ms},
		// South America and Africa spurs.
		{MIA, SAO, 58 * ms}, {SAO, MAD, 75 * ms},
		{LON, JNB, 75 * ms}, {JNB, DXB, 60 * ms},
	}
	for _, s := range spec {
		links = append(links, core.SimpleLink{A: s.a, B: s.b, Latency: s.lat})
	}
	return links
}

// GlobalCoverage reproduces the §II-A coverage claim: a few tens of
// well-situated overlay nodes cover the globe, with overlay links around
// 10 ms where geography allows and about 150 ms sufficient to reach
// nearly any point from any other point.
func GlobalCoverage(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-GLOBAL",
		Title: "Global coverage of a 29-node structured overlay",
		PaperClaim: "a few tens of well situated overlay nodes provide excellent " +
			"global coverage; about 150ms is sufficient to reach nearly any point " +
			"on the globe from any other point",
		Table: metrics.NewTable("measure", "value"),
	}
	s, err := core.BuildSimple(seed, globalLinks())
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	if err := s.Start(); err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	defer s.Stop()
	s.Settle()

	// All-pairs overlay path latencies from the converged shared view.
	view := s.Node(NYC).View()
	nodes := s.Graph.Nodes()
	var pair metrics.Latencies
	var worst time.Duration
	var worstA, worstB wire.NodeID
	unreachable := 0
	for i, a := range nodes {
		spt := topology.ShortestPaths(view, a, topology.LatencyMetric)
		for _, b := range nodes[i+1:] {
			lat, err := view.PathLatency(spt.Path(b))
			if err != nil || !spt.Reachable(b) {
				unreachable++
				continue
			}
			pair.Add(lat)
			if lat > worst {
				worst, worstA, worstB = lat, a, b
			}
		}
	}
	var linkMean time.Duration
	for _, l := range s.Graph.Links() {
		linkMean += l.Latency
	}
	linkMean /= time.Duration(s.Graph.NumLinks())
	within150 := pair.OnTime(150 * time.Millisecond)

	r.Table.AddRow("overlay nodes", s.Graph.NumNodes())
	r.Table.AddRow("overlay links", s.Graph.NumLinks())
	r.Table.AddRow("mean link latency", linkMean)
	r.Table.AddRow("pairwise p50", pair.Percentile(50))
	r.Table.AddRow("pairwise p90", pair.Percentile(90))
	r.Table.AddRow("pairs within 150ms", fmt.Sprintf("%.1f%%", within150*100))
	r.Table.AddRow("diameter", fmt.Sprintf("%v (%s-%s)", worst, globalName(worstA), globalName(worstB)))

	// Live validation: stream across the measured diameter pair.
	dst, err := s.Session(worstB).Connect(100)
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	src, err := s.Session(worstA).Connect(0)
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: worstB, DstPort: 100,
		LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	const n = 100
	for i := 0; i < n; i++ {
		i := i
		s.Sched.After(time.Duration(i)*10*time.Millisecond, func() { _ = flow.Send(nil) })
	}
	s.RunFor(10 * time.Second)
	st := dst.Stats()
	r.Table.AddRow("diameter live p99", st.Latency.Percentile(99))

	r.addFinding("%d nodes / %d links cover the globe: %.1f%% of pairs within 150ms, diameter %v (%s→%s)",
		s.Graph.NumNodes(), s.Graph.NumLinks(), within150*100, worst,
		globalName(worstA), globalName(worstB))
	r.addFinding("live stream across the diameter delivered %d/%d at p99 %v",
		st.Received, n, st.Latency.Percentile(99))
	r.ShapeHolds = unreachable == 0 &&
		within150 >= 0.90 &&
		worst <= 220*time.Millisecond &&
		linkMean <= 25*time.Millisecond &&
		st.Received == n
	return r
}

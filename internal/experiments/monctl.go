package experiments

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/metrics"
	"sonet/internal/session"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// MonitoringControl reproduces §III-B: one overlay simultaneously serves
// cloud monitoring (timely multicast telemetry, stale data discarded) and
// cloud control (completely reliable commands), each flow selecting its
// own services, while the network suffers a loss episode and a fiber cut
// mid-run.
func MonitoringControl(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-MONCTL",
		Title: "Resilient cloud monitoring + control over one overlay",
		PaperClaim: "a timeliness-oriented protocol serves monitoring while a " +
			"completely reliable protocol serves control, simultaneously, " +
			"with better performance than the native Internet",
		Table: metrics.NewTable("class", "sent", "delivered", "on-time<=150ms", "p99", "lost/late"),
	}
	s, err := core.BuildSimple(seed, continentalLinks(nil))
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	if err := s.Start(); err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	defer s.Stop()
	s.Settle()

	// Monitoring: five cloud endpoints publish telemetry to a group whose
	// members are two operations centers.
	const monGroup wire.GroupID = 2000
	opsCenters := []wire.NodeID{NYC, SFO}
	var monClients []*session.Client
	for _, ops := range opsCenters {
		c, err := s.Session(ops).Connect(200)
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		c.Join(monGroup)
		monClients = append(monClients, c)
	}
	s.Settle()

	endpoints := []wire.NodeID{MIA, SEA, DAL, CHI, DEN}
	monSent := 0
	var monStreams []*workload.Poisson
	for _, ep := range endpoints {
		c, err := s.Session(ep).Connect(0)
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		flow, err := c.OpenFlow(session.FlowSpec{
			Group: monGroup, DstPort: 200,
			LinkProto: wire.LPRealTime,
			Deadline:  150 * time.Millisecond,
		})
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		p := &workload.Poisson{
			Clock:        s.Sched,
			Rand:         s.Sched.Rand(),
			MeanInterval: 20 * time.Millisecond,
			Send: func(uint32, []byte) error {
				monSent++
				return flow.Send(nil)
			},
		}
		p.Start()
		monStreams = append(monStreams, p)
	}

	// Control: the NYC operations center sends reliable ordered commands
	// to three actuator sites.
	ctl, err := s.Session(NYC).Connect(0)
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	actuators := []wire.NodeID{DAL, SEA, MIA}
	ctlSent := 0
	var ctlClients []*session.Client
	for _, a := range actuators {
		c, err := s.Session(a).Connect(300)
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		ctlClients = append(ctlClients, c)
		flow, err := ctl.OpenFlow(session.FlowSpec{
			DstNode: a, DstPort: 300,
			LinkProto: wire.LPReliable, Ordered: true,
		})
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		cmd := &workload.Poisson{
			Clock:        s.Sched,
			Rand:         s.Sched.Rand(),
			MeanInterval: 100 * time.Millisecond,
			Send: func(uint32, []byte) error {
				ctlSent++
				return flow.Send([]byte("cmd"))
			},
		}
		cmd.Start()
		monStreams = append(monStreams, cmd)
	}

	// Mid-run trouble: a regional 30% loss episode around DC for 5 s,
	// then a core fiber cut.
	region := [][2]wire.NodeID{{NYC, DC}, {DC, CHI}, {DC, ATL}}
	s.Sched.After(10*time.Second, func() {
		for _, l := range region {
			_ = s.SetLinkExtraLoss(l[0], l[1], 0.30)
		}
	})
	s.Sched.After(15*time.Second, func() {
		for _, l := range region {
			_ = s.SetLinkExtraLoss(l[0], l[1], 0)
		}
	})
	s.Sched.After(20*time.Second, func() { _ = s.CutLink(CHI, DEN) })
	s.RunFor(30 * time.Second)
	for _, p := range monStreams {
		p.Stop()
	}
	s.RunFor(10 * time.Second) // drain

	var monRecv, monLate uint64
	monLat := &metrics.Latencies{}
	for _, c := range monClients {
		st := c.Stats()
		monRecv += st.Received
		monLate += st.Late
		for _, l := range st.Latency.Samples() {
			monLat.Add(l)
		}
	}
	var ctlRecv, ctlLate uint64
	ctlLat := &metrics.Latencies{}
	for _, c := range ctlClients {
		st := c.Stats()
		ctlRecv += st.Received
		ctlLate += st.Late
		for _, l := range st.Latency.Samples() {
			ctlLat.Add(l)
		}
	}
	monExpected := uint64(monSent) * uint64(len(opsCenters))
	r.Table.AddRow("monitoring (timely multicast)", monExpected, monRecv,
		fmt.Sprintf("%.4f", monLat.OnTime(150*time.Millisecond)),
		monLat.Percentile(99), monLate)
	r.Table.AddRow("control (reliable unicast)", ctlSent, ctlRecv,
		fmt.Sprintf("%.4f", ctlLat.OnTime(150*time.Millisecond)),
		ctlLat.Percentile(99), ctlLate)

	monDeliv := float64(monRecv) / float64(monExpected)
	ctlDeliv := float64(ctlRecv) / float64(ctlSent)
	r.addFinding("monitoring delivered %.2f%% (every delivery fresh, stale discarded); control delivered %.2f%%",
		monDeliv*100, ctlDeliv*100)
	r.addFinding("control is lossless through the loss episode and fiber cut; monitoring favors freshness")
	r.ShapeHolds = ctlDeliv >= 0.9999 && monDeliv > 0.95 &&
		monLat.OnTime(150*time.Millisecond) > 0.999
	return r
}

package experiments

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/link"
	"sonet/internal/metrics"
	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// fig3Scenario is one row of the Fig. 3 comparison.
type fig3Scenario struct {
	name   string
	links  []core.SimpleLink
	dst    wire.NodeID
	mutate func(*node.Config)
}

// fig3Run drives a 1000 pkt/s reliable ordered stream for the given span
// and collects overall and recovered-packet latency series.
func fig3Run(seed uint64, sc fig3Scenario, span time.Duration) (all, recovered *metrics.Latencies, deliveredFrac float64, err error) {
	s, err := core.BuildSimple(seed, sc.links)
	if err != nil {
		return nil, nil, 0, err
	}
	if sc.mutate != nil {
		s.SetNodeTemplate(sc.mutate)
	}
	if err := s.Start(); err != nil {
		return nil, nil, 0, err
	}
	defer s.Stop()
	s.Settle()

	dst, err := s.Session(sc.dst).Connect(100)
	if err != nil {
		return nil, nil, 0, err
	}
	all = &metrics.Latencies{}
	recovered = &metrics.Latencies{}
	dst.OnDeliver(func(d session.Delivery) {
		all.Add(d.Latency)
		if d.Retransmitted {
			recovered.Add(d.Latency)
		}
	})
	src, err := s.Session(1).Connect(0)
	if err != nil {
		return nil, nil, 0, err
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: sc.dst, DstPort: 100,
		LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	stream := &workload.CBR{
		Clock:    s.Sched,
		Interval: time.Millisecond,
		Size:     1200,
		Count:    int(span / time.Millisecond),
		Send:     func(uint32, []byte) error { return flow.Send(nil) },
	}
	stream.Start()
	s.RunFor(span + 10*time.Second) // drain recoveries
	deliveredFrac = float64(all.Count()) / float64(stream.Sent())
	return all, recovered, deliveredFrac, nil
}

// Fig3HopByHop reproduces Fig. 3 (§III-A): replacing a 50 ms end-to-end
// path with five 10 ms overlay links using hop-by-hop recovery cuts the
// minimum recovered-packet latency from ≥150 ms to ≥70 ms and smooths
// delivery. An ablation row shows in-order forwarding at intermediate
// hops giving back part of the win.
func Fig3HopByHop(seed uint64) *Result {
	const span = 15 * time.Second
	const pathLoss = 0.01
	r := &Result{
		ID:    "EXP-F3",
		Title: "Fig. 3 — 50ms end-to-end path vs five 10ms overlay links",
		PaperClaim: "end-to-end ARQ recovers a lost packet in ≥150ms; " +
			"hop-by-hop recovery over five 10ms links needs only ≥70ms, " +
			"with smoother delivery",
		Table: metrics.NewTable("scheme", "delivered", "recovered_n",
			"rec_min", "rec_mean", "rec_p99", "all_p99.9", "jitter"),
	}

	e2e := fig3Scenario{
		name: "end-to-end ARQ (50ms path)",
		links: []core.SimpleLink{{
			A: 1, B: 6, Latency: 50 * time.Millisecond,
			Loss: netemu.Bernoulli{P: pathLoss},
		}},
		dst: 6,
	}
	hbh := fig3Scenario{
		name:  "hop-by-hop (5 x 10ms links)",
		links: fig3Chain(pathLoss)[1:], // chain only
		dst:   6,
	}
	inorder := fig3Scenario{
		name:  "hop-by-hop, in-order hops (ablation)",
		links: fig3Chain(pathLoss)[1:],
		dst:   6,
		mutate: func(cfg *node.Config) {
			cfg.Reliable = link.ReliableConfig{InOrderForwarding: true}
		},
	}

	type row struct {
		name      string
		all, rec  *metrics.Latencies
		delivered float64
	}
	rows := make([]row, 0, 3)
	for _, sc := range []fig3Scenario{e2e, hbh, inorder} {
		all, rec, delivered, err := fig3Run(seed, sc, span)
		if err != nil {
			r.addFinding("ERROR %s: %v", sc.name, err)
			return r
		}
		rows = append(rows, row{name: sc.name, all: all, rec: rec, delivered: delivered})
		r.Table.AddRow(sc.name, fmt.Sprintf("%.4f", delivered), rec.Count(),
			rec.Min(), rec.Mean(), rec.Percentile(99), all.Percentile(99.9), all.Jitter())
	}

	e2eRec, hbhRec := rows[0].rec, rows[1].rec
	r.addFinding("min recovered latency: e2e %.0fms vs hop-by-hop %.0fms (paper: 150ms vs 70ms)",
		ms(e2eRec.Min()), ms(hbhRec.Min()))
	r.addFinding("mean recovered latency ratio e2e/hbh = %.2fx",
		float64(e2eRec.Mean())/float64(nonzero(hbhRec.Mean())))
	r.addFinding("delivery jitter: e2e %.2fms vs hop-by-hop %.2fms",
		ms(rows[0].all.Jitter()), ms(rows[1].all.Jitter()))

	r.ShapeHolds = rows[0].delivered > 0.999 && rows[1].delivered > 0.999 &&
		e2eRec.Min() >= 140*time.Millisecond &&
		hbhRec.Min() >= 60*time.Millisecond && hbhRec.Min() <= 90*time.Millisecond &&
		hbhRec.Mean() < e2eRec.Mean()
	return r
}

// ms converts a duration to float milliseconds for findings text.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// nonzero guards ratio denominators.
func nonzero(d time.Duration) time.Duration {
	if d == 0 {
		return 1
	}
	return d
}

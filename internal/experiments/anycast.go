package experiments

import (
	"time"

	"sonet/internal/core"
	"sonet/internal/metrics"
	"sonet/internal/session"
	"sonet/internal/wire"
)

// Anycast reproduces the §II-B anycast service: a message addressed to a
// group is delivered to exactly one member — the nearest — giving lower
// latency than unicasting to a fixed (or unlucky) replica, and re-resolving
// automatically when the nearest member becomes unreachable.
func Anycast(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-ANYCAST",
		Title: "Anycast to nearest group member (replicated service on MIA/SEA/DAL)",
		PaperClaim: "anycast messages are delivered to exactly one member of the " +
			"relevant group, selecting the best target from shared group state",
		Table: metrics.NewTable("source", "scheme", "served_by", "latency"),
	}
	s, err := core.BuildSimple(seed, continentalLinks(nil))
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	if err := s.Start(); err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	defer s.Stop()
	s.Settle()

	const grp wire.GroupID = 3000
	replicas := []wire.NodeID{MIA, SEA, DAL}
	served := make(map[wire.NodeID]int)
	var lastServer wire.NodeID
	var lastLatency time.Duration
	for _, rep := range replicas {
		rep := rep
		c, err := s.Session(rep).Connect(100)
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		c.Join(grp)
		c.OnDeliver(func(d session.Delivery) {
			served[rep]++
			lastServer = rep
			lastLatency = d.Latency
		})
	}
	s.Settle()

	sources := []wire.NodeID{NYC, SFO, CHI}
	fixed := replicas[0] // naive client pinned to MIA
	r.ShapeHolds = true
	var anySum, fixedSum time.Duration
	for _, srcNode := range sources {
		src, err := s.Session(srcNode).Connect(0)
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		anyFlow, err := src.OpenFlow(session.FlowSpec{Group: grp, Anycast: true, DstPort: 100})
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		if err := anyFlow.Send(nil); err != nil {
			r.addFinding("ERROR send: %v", err)
			return r
		}
		s.RunFor(500 * time.Millisecond)
		total := served[MIA] + served[SEA] + served[DAL]
		if total != 1 {
			r.ShapeHolds = false
		}
		anyLat := lastLatency
		anySum += anyLat
		r.Table.AddRow(continentalNames[srcNode], "anycast",
			continentalNames[lastServer], anyLat)
		for k := range served {
			delete(served, k)
		}

		fixedFlow, err := src.OpenFlow(session.FlowSpec{DstNode: fixed, DstPort: 100})
		if err != nil {
			r.addFinding("ERROR: %v", err)
			return r
		}
		if err := fixedFlow.Send(nil); err != nil {
			r.addFinding("ERROR send: %v", err)
			return r
		}
		s.RunFor(500 * time.Millisecond)
		fixedSum += lastLatency
		r.Table.AddRow(continentalNames[srcNode], "fixed replica",
			continentalNames[lastServer], lastLatency)
		if anyLat > lastLatency {
			r.ShapeHolds = false
		}
		for k := range served {
			delete(served, k)
		}
	}

	// Failover: the nearest replica to SFO (SEA) becomes unreachable; the
	// next anycast from SFO must re-resolve.
	if st, ok := s.Net.NodeSite(SEA); ok {
		s.Net.SetSiteUp(st, false)
	}
	s.RunFor(3 * time.Second)
	sfo, err := s.Session(SFO).Connect(0)
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	flow, err := sfo.OpenFlow(session.FlowSpec{Group: grp, Anycast: true, DstPort: 100})
	if err != nil {
		r.addFinding("ERROR: %v", err)
		return r
	}
	if err := flow.Send(nil); err != nil {
		r.addFinding("ERROR failover send: %v", err)
		return r
	}
	s.RunFor(500 * time.Millisecond)
	r.Table.AddRow("SFO (SEA down)", "anycast", continentalNames[lastServer], lastLatency)
	if lastServer == SEA || lastServer == 0 {
		r.ShapeHolds = false
	}

	r.addFinding("mean anycast latency %.1fms vs fixed-replica %.1fms across 3 sources",
		ms(anySum/3), ms(fixedSum/3))
	r.addFinding("after SEA failure, SFO's anycast re-resolved to %s", continentalNames[lastServer])
	if anySum >= fixedSum {
		r.ShapeHolds = false
	}
	return r
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/routing"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// convViews adapts one shared View to routing.ViewSource: the EXP-CONV
// world models the paper's shared global state by handing every node's
// engine the same view, exactly like the fully-converged steady state
// after an LSA flood.
type convViews struct {
	view    *topology.View
	version uint64
}

func (c *convViews) View() *topology.View { return c.view }
func (c *convViews) Version() uint64      { return c.version }

// convGroups is a fixed membership map for the multicast churn phase.
type convGroups struct {
	members map[wire.GroupID][]wire.NodeID
	version uint64
}

func (c *convGroups) Members(g wire.GroupID) []wire.NodeID { return c.members[g] }
func (c *convGroups) LocalMember(g wire.GroupID) bool      { return false }
func (c *convGroups) Version() uint64                      { return c.version }

// convWorld is one N-node convergence arena: a shared view plus a routing
// engine per measured node. Up to convEngineCap nodes every node carries an
// engine; past that the engines sample sources spread evenly around the
// ring — the per-node cost is what EXP-CONV measures, and at 10k nodes
// instantiating 10k engines would measure the harness, not the recompute.
type convWorld struct {
	views   *convViews
	groups  *convGroups
	engines []*routing.Engine
	nodes   []wire.NodeID
	srcs    []wire.NodeID
	probes  []wire.NodeID
}

// convEngineCap bounds how many per-node engines a convergence world
// instantiates at large N.
const convEngineCap = 64

// buildConvWorld constructs the N-node graph: a ring (guaranteeing the
// view stays connected when churn downs one link at a time) plus chords
// every four nodes for path diversity. At N=256 the ring alone uses the
// full wire.MaxLinks link budget, so no chords fit — the regime where
// bitmask source routing bounds the topology at 256 links. Beyond that the
// graph models the flat connectivity map of §II-A's global overlay: the
// link table (topology.MaxGraphLinks) has room again, so the antipodal
// chords return.
func buildConvWorld(n int) (*convWorld, error) {
	g := topology.NewGraph()
	id := func(i int) wire.NodeID { return wire.NodeID(1 + (i+n)%n) }
	for i := 0; i < n; i++ {
		lat := time.Duration(5+i%7) * time.Millisecond
		if _, err := g.AddLink(id(i), id(i+1), lat); err != nil {
			return nil, err
		}
	}
	if n < wire.MaxLinks/2 {
		for i := 0; i < n; i += 4 {
			if g.NumLinks() >= wire.MaxLinks {
				break
			}
			if _, err := g.AddLink(id(i), id(i+n/2), time.Duration(8+i%5)*time.Millisecond); err != nil {
				return nil, err
			}
		}
	} else if n > wire.MaxLinks {
		for i := 0; i < n; i += 4 {
			if _, err := g.AddLink(id(i), id(i+n/2), time.Duration(8+i%5)*time.Millisecond); err != nil {
				return nil, err
			}
		}
	}
	w := &convWorld{
		views:  &convViews{view: topology.NewView(g)},
		groups: &convGroups{members: map[wire.GroupID][]wire.NodeID{}},
		nodes:  g.Nodes(),
	}
	eng := n
	if eng > convEngineCap {
		eng = convEngineCap
	}
	w.engines = make([]*routing.Engine, eng)
	w.srcs = make([]wire.NodeID, eng)
	w.probes = make([]wire.NodeID, eng)
	for i := 0; i < eng; i++ {
		src := i * n / eng
		w.srcs[i] = id(src)
		w.engines[i] = routing.NewEngine(id(src), w.views, w.groups, topology.LatencyMetric)
		w.probes[i] = id(src + n/2) // antipodal probe: the longest recompute-dependent query
	}
	return w, nil
}

// churn simulates one LSA flood reaching every node: even rounds take a
// link down, odd rounds restore it, so at most one link is ever down and
// the view stays connected. Small worlds flip links in ID order (ring
// first), as the seed experiment always did. Large worlds flip the
// antipodal chords (link IDs ≥ n): a long-haul overlay link flapping
// strands only the short ring arc behind it — the locality regime subtree
// repair exploits — whereas cutting a link of the bare ring detaches an
// O(n) arc whose repair rightly costs as much as the recompute.
func (w *convWorld) churn(round int) {
	n := len(w.nodes)
	nl := w.views.view.G.NumLinks()
	lid := wire.LinkID((round / 2) % nl)
	if n > wire.MaxLinks && nl > n {
		lid = wire.LinkID(n + (round/2)%(nl-n))
	}
	w.views.view.SetUp(lid, round%2 == 1)
	w.views.version++
}

// reconvergeAll forces every engine to reconverge its SPT and answer one
// routing query, returning the summed wall-clock compute time. With the
// change journal a single-link churn event reconverges by subtree repair;
// a journal miss falls back to full Dijkstra.
func (w *convWorld) reconvergeAll() time.Duration {
	start := time.Now()
	for i, e := range w.engines {
		e.Reachable(w.probes[i]) // reconverges the SPT: the view version moved
	}
	return time.Since(start)
}

// convOutcome is the measured reconvergence behaviour at one graph size.
type convOutcome struct {
	nodes, links    int
	incrPerNode     time.Duration
	fullPerNode     time.Duration
	refPerNode      time.Duration // 0 when the map reference is skipped
	allocsPerReconv float64
	incrRatio       float64
	repairSize      float64
	reuseRatio      float64
}

// measureConvergence drives LSA churn through an N-node world: per round,
// one link flips and every measured node reconverges. It reports per-node
// incremental reconvergence latency (the engines' journal-driven subtree
// repair), the full dense-Dijkstra latency from the same sources on the
// same churn sequence, the map-based reference Dijkstra latency (small
// sizes only), allocations per reconvergence (warmed), the incremental
// share, and the mean repaired-subtree size.
func measureConvergence(n, rounds int) (convOutcome, error) {
	w, err := buildConvWorld(n)
	if err != nil {
		return convOutcome{}, err
	}
	out := convOutcome{nodes: n, links: w.views.view.G.NumLinks()}

	// Warm every engine's scratch (first compute sizes the arenas).
	w.views.version++
	w.reconvergeAll()

	spf0 := topology.SPFStatsSnapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var incr time.Duration
	for r := 0; r < rounds; r++ {
		w.churn(r)
		incr += w.reconvergeAll()
	}
	runtime.ReadMemStats(&ms1)
	spf1 := topology.SPFStatsSnapshot()

	reconvs := rounds * len(w.engines)
	out.incrPerNode = incr / time.Duration(reconvs)
	out.allocsPerReconv = float64(ms1.Mallocs-ms0.Mallocs) / float64(reconvs)
	out.incrRatio = metrics.SPFSnapshot{
		Runs:         spf1.Runs - spf0.Runs,
		Incrementals: spf1.Incrementals - spf0.Incrementals,
	}.IncrementalRatio()
	out.repairSize = metrics.SPFSnapshot{
		Incrementals:  spf1.Incrementals - spf0.Incrementals,
		RepairedNodes: spf1.RepairedNodes - spf0.RepairedNodes,
	}.MeanRepairSize()

	// Full-recompute baseline: dense Dijkstra from a sample of the same
	// sources over the same churn sequence, scratch warmed and reused —
	// what every reconvergence would cost without the subtree repair.
	fullSample := len(w.engines)
	if fullSample > 8 {
		fullSample = 8
	}
	var spt topology.SPT
	topology.SPTInto(&spt, w.views.view, w.srcs[0], topology.LatencyMetric)
	spf2 := topology.SPFStatsSnapshot()
	fullStart := time.Now()
	fullRuns := 0
	for r := 0; r < rounds; r++ {
		w.churn(r)
		for s := 0; s < fullSample; s++ {
			src := w.srcs[s*len(w.srcs)/fullSample]
			topology.SPTInto(&spt, w.views.view, src, topology.LatencyMetric)
			fullRuns++
		}
	}
	out.fullPerNode = time.Since(fullStart) / time.Duration(fullRuns)
	spf3 := topology.SPFStatsSnapshot()
	out.reuseRatio = metrics.SPFSnapshot{
		Runs:          spf3.Runs - spf2.Runs,
		ScratchReuses: spf3.ScratchReuses - spf2.ScratchReuses,
	}.ReuseRatio()

	// Reference baseline: the retained map-backed Dijkstra over the same
	// churn sequence. Skipped at 1k+ nodes — the reference exists to show
	// the dense representation's constant factor, already established at
	// the small sizes, and at 10k nodes it would dominate the experiment's
	// wall clock.
	if n < 1024 {
		sample := n
		if sample > 8 {
			sample = 8
		}
		refStart := time.Now()
		refRuns := 0
		for r := 0; r < rounds; r++ {
			w.churn(r)
			for s := 0; s < sample; s++ {
				src := w.nodes[(s*n/sample)%n]
				t := topology.ReferenceShortestPaths(w.views.view, src, topology.LatencyMetric)
				if t.Src != src {
					return out, fmt.Errorf("reference SPT root mismatch")
				}
				refRuns++
			}
		}
		out.refPerNode = time.Since(refStart) / time.Duration(refRuns)
	}
	return out, nil
}

// multicastChurn exercises the bounded (src,group) tree cache on the
// 64-node world: members spread around the ring, repeated tree lookups
// between churn events, then a burst of distinct groups to overflow the
// cache cap.
func multicastChurn(rounds int) (metrics.TreeCacheSnapshot, error) {
	w, err := buildConvWorld(64)
	if err != nil {
		return metrics.TreeCacheSnapshot{}, err
	}
	w.groups.members[1] = []wire.NodeID{5, 21, 37, 53}
	e := w.engines[0]
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: w.nodes[0], Group: 1}
	for r := 0; r < rounds; r++ {
		w.churn(r)
		for i := 0; i < 16; i++ { // steady multicast traffic between floods
			e.Decide(p, routing.NoLink, true)
		}
	}
	// Group burst past the cache cap: distinct (src,group) keys force FIFO
	// capacity evictions even with no further churn.
	for gid := wire.GroupID(2); gid < 130; gid++ {
		w.groups.members[gid] = []wire.NodeID{wire.NodeID(1 + gid%64)}
		bp := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: w.nodes[0], Group: gid}
		e.Decide(bp, routing.NoLink, true)
	}
	return e.TreeCacheStats(), nil
}

// ConvergenceScale reproduces the scaling premise behind §II-A's global
// overlay: after every LSA flood each node reconverges identical routes
// from shared state, so the per-node reconvergence must stay far below the
// paper's millisecond-scale rerouting budget even at thousands of nodes.
// EXP-CONV floods link churn through 16–10240-node graphs and measures
// per-node incremental reconvergence (journal-driven subtree repair)
// against full dense Dijkstra and the retained map-based reference.
func ConvergenceScale(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-CONV",
		Title: "Reconvergence latency and allocations at scale",
		PaperClaim: "every node reconverges identical routes from shared state within " +
			"milliseconds of an LSA flood, keeping sub-second rerouting viable as the " +
			"overlay grows from its 256-link source-routing ceiling to 10k nodes",
		Table: metrics.NewTable("nodes", "links", "incr/node", "full/node", "speedup",
			"reference/node", "allocs/reconv", "incr_ratio", "repair_size"),
	}
	_ = seed // wall-clock measurement; churn sequence is deterministic
	sizes := []int{16, 64, 256, 1024}
	if !raceEnabled {
		// Race instrumentation makes the 4k/10k dense sweeps minutes-long;
		// the 1k point already exercises the sampled-engine large regime.
		sizes = append(sizes, 4096, 10240)
	}
	worstPerNode := time.Duration(0)
	minRefSpeedup := 0.0
	haveRef := false
	worstAllocs := 0.0
	minReuse := 1.0
	minIncrSpeedup := 0.0
	minIncrRatio := 1.0
	haveLarge := false
	for _, n := range sizes {
		rounds := 30
		if n >= 1024 {
			rounds = 10
		}
		out, err := measureConvergence(n, rounds)
		if err != nil {
			r.addFinding("ERROR n=%d: %v", n, err)
			return r
		}
		incrSpeedup := float64(out.fullPerNode) / float64(nonzero(out.incrPerNode))
		refCell := "-"
		if out.refPerNode > 0 {
			refCell = fmt.Sprintf("%.1fµs", us(out.refPerNode))
			refSpeedup := float64(out.refPerNode) / float64(nonzero(out.fullPerNode))
			if !haveRef || refSpeedup < minRefSpeedup {
				minRefSpeedup = refSpeedup
			}
			haveRef = true
		}
		r.Table.AddRow(out.nodes, out.links,
			fmt.Sprintf("%.1fµs", us(out.incrPerNode)),
			fmt.Sprintf("%.1fµs", us(out.fullPerNode)),
			fmt.Sprintf("%.1fx", incrSpeedup),
			refCell,
			fmt.Sprintf("%.2f", out.allocsPerReconv),
			fmt.Sprintf("%.2f", out.incrRatio),
			fmt.Sprintf("%.1f", out.repairSize))
		if out.incrPerNode > worstPerNode {
			worstPerNode = out.incrPerNode
		}
		if out.allocsPerReconv > worstAllocs {
			worstAllocs = out.allocsPerReconv
		}
		if out.reuseRatio < minReuse {
			minReuse = out.reuseRatio
		}
		if n >= 1024 {
			if !haveLarge || incrSpeedup < minIncrSpeedup {
				minIncrSpeedup = incrSpeedup
			}
			if out.incrRatio < minIncrRatio {
				minIncrRatio = out.incrRatio
			}
			haveLarge = true
		}
	}
	trees, err := multicastChurn(30)
	if err != nil {
		r.addFinding("ERROR multicast churn: %v", err)
		return r
	}
	r.addFinding("worst per-node incremental reconvergence %.1fµs (budget: 1ms); dense full SPF ≥%.1fx the map-based reference",
		us(worstPerNode), minRefSpeedup)
	r.addFinding("at ≥1k nodes single-link repair is ≥%.1fx faster than full recompute at ≥%.0f%% incremental share",
		minIncrSpeedup, 100*minIncrRatio)
	r.addFinding("allocations per warmed reconvergence ≤%.2f; full-path SPF scratch reuse ≥%.0f%%",
		worstAllocs, 100*minReuse)
	r.addFinding("tree cache under churn+burst: %.1f%% hit ratio, %d evictions (prune+cap) across %d lookups",
		100*trees.HitRatio(), trees.Evictions, trees.Hits+trees.Misses)
	// Race instrumentation penalizes the dense SPF's tight slice loops far
	// more than the reference's map traffic, and compresses the
	// incremental-vs-full gap, so under race the floors only require the
	// fast path not to lose.
	refFloor, incrFloor := 2.0, 10.0
	if raceEnabled {
		refFloor, incrFloor = 1.05, 4.0
	}
	r.ShapeHolds = worstPerNode < time.Millisecond &&
		haveRef && minRefSpeedup >= refFloor &&
		haveLarge && minIncrSpeedup >= incrFloor &&
		minIncrRatio >= 0.9 &&
		worstAllocs < 2 &&
		minReuse >= 0.9 &&
		trees.Evictions > 0 && trees.Hits > 0
	return r
}

// us renders a duration in fractional microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/routing"
	"sonet/internal/topology"
	"sonet/internal/wire"
)

// convViews adapts one shared View to routing.ViewSource: the EXP-CONV
// world models the paper's shared global state by handing every node's
// engine the same view, exactly like the fully-converged steady state
// after an LSA flood.
type convViews struct {
	view    *topology.View
	version uint64
}

func (c *convViews) View() *topology.View { return c.view }
func (c *convViews) Version() uint64      { return c.version }

// convGroups is a fixed membership map for the multicast churn phase.
type convGroups struct {
	members map[wire.GroupID][]wire.NodeID
	version uint64
}

func (c *convGroups) Members(g wire.GroupID) []wire.NodeID { return c.members[g] }
func (c *convGroups) LocalMember(g wire.GroupID) bool      { return false }
func (c *convGroups) Version() uint64                      { return c.version }

// convWorld is one N-node convergence arena: a shared view plus one
// routing engine per node.
type convWorld struct {
	views   *convViews
	groups  *convGroups
	engines []*routing.Engine
	nodes   []wire.NodeID
	probes  []wire.NodeID
}

// buildConvWorld constructs the N-node graph: a ring (guaranteeing the
// view stays connected when churn downs one link at a time) plus chords
// every four nodes for path diversity. At N=256 the ring alone uses the
// full wire.MaxLinks link budget, so no chords fit — which is itself the
// paper's regime: bitmask source routing bounds the topology at 256 links.
func buildConvWorld(n int) (*convWorld, error) {
	g := topology.NewGraph()
	id := func(i int) wire.NodeID { return wire.NodeID(1 + (i+n)%n) }
	for i := 0; i < n; i++ {
		lat := time.Duration(5+i%7) * time.Millisecond
		if _, err := g.AddLink(id(i), id(i+1), lat); err != nil {
			return nil, err
		}
	}
	if n < wire.MaxLinks/2 {
		for i := 0; i < n; i += 4 {
			if g.NumLinks() >= wire.MaxLinks {
				break
			}
			if _, err := g.AddLink(id(i), id(i+n/2), time.Duration(8+i%5)*time.Millisecond); err != nil {
				return nil, err
			}
		}
	}
	w := &convWorld{
		views:  &convViews{view: topology.NewView(g)},
		groups: &convGroups{members: map[wire.GroupID][]wire.NodeID{}},
		nodes:  g.Nodes(),
	}
	w.engines = make([]*routing.Engine, n)
	w.probes = make([]wire.NodeID, n)
	for i := 0; i < n; i++ {
		w.engines[i] = routing.NewEngine(id(i), w.views, w.groups, topology.LatencyMetric)
		w.probes[i] = id(i + n/2) // antipodal probe: the longest recompute-dependent query
	}
	return w, nil
}

// churn simulates one LSA flood reaching every node: even rounds take a
// ring link down, odd rounds restore it, so at most one link is ever down
// and the view stays connected.
func (w *convWorld) churn(round int) {
	lid := wire.LinkID((round / 2) % w.views.view.G.NumLinks())
	w.views.view.SetUp(lid, round%2 == 1)
	w.views.version++
}

// reconvergeAll forces every engine to recompute its SPT and answer one
// routing query, returning the summed wall-clock compute time.
func (w *convWorld) reconvergeAll() time.Duration {
	start := time.Now()
	for i, e := range w.engines {
		e.Reachable(w.probes[i]) // recomputes the SPT: the view version moved
	}
	return time.Since(start)
}

// convOutcome is the measured reconvergence behaviour at one graph size.
type convOutcome struct {
	nodes, links    int
	densePerNode    time.Duration
	refPerNode      time.Duration
	allocsPerReconv float64
	reuseRatio      float64
}

// measureConvergence drives LSA churn through an N-node world: per round,
// one link flips and every node recomputes. It reports per-node dense
// reconvergence latency, the map-based reference Dijkstra latency on the
// same churn sequence, allocations per reconvergence (warmed), and the
// SPF scratch-reuse ratio over the churn phase.
func measureConvergence(n, rounds int) (convOutcome, error) {
	w, err := buildConvWorld(n)
	if err != nil {
		return convOutcome{}, err
	}
	out := convOutcome{nodes: n, links: w.views.view.G.NumLinks()}

	// Warm every engine's scratch (first compute sizes the arenas).
	w.views.version++
	w.reconvergeAll()

	spfBefore := topology.SPFStatsSnapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var dense time.Duration
	for r := 0; r < rounds; r++ {
		w.churn(r)
		dense += w.reconvergeAll()
	}
	runtime.ReadMemStats(&ms1)
	spfAfter := topology.SPFStatsSnapshot()

	recomputes := rounds * n
	out.densePerNode = dense / time.Duration(recomputes)
	out.allocsPerReconv = float64(ms1.Mallocs-ms0.Mallocs) / float64(recomputes)
	out.reuseRatio = metrics.SPFSnapshot{
		Runs:          spfAfter.Runs - spfBefore.Runs,
		ScratchReuses: spfAfter.ScratchReuses - spfBefore.ScratchReuses,
	}.ReuseRatio()

	// Reference baseline: the retained map-backed Dijkstra over the same
	// churn sequence, sampled at a handful of sources per round so large
	// sizes stay tractable.
	sample := n
	if sample > 8 {
		sample = 8
	}
	refStart := time.Now()
	refRuns := 0
	for r := 0; r < rounds; r++ {
		w.churn(r)
		for s := 0; s < sample; s++ {
			src := w.nodes[(s*n/sample)%n]
			t := topology.ReferenceShortestPaths(w.views.view, src, topology.LatencyMetric)
			if t.Src != src {
				return out, fmt.Errorf("reference SPT root mismatch")
			}
			refRuns++
		}
	}
	out.refPerNode = time.Since(refStart) / time.Duration(refRuns)
	return out, nil
}

// multicastChurn exercises the bounded (src,group) tree cache on the
// 64-node world: members spread around the ring, repeated tree lookups
// between churn events, then a burst of distinct groups to overflow the
// cache cap.
func multicastChurn(rounds int) (metrics.TreeCacheSnapshot, error) {
	w, err := buildConvWorld(64)
	if err != nil {
		return metrics.TreeCacheSnapshot{}, err
	}
	w.groups.members[1] = []wire.NodeID{5, 21, 37, 53}
	e := w.engines[0]
	p := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: w.nodes[0], Group: 1}
	for r := 0; r < rounds; r++ {
		w.churn(r)
		for i := 0; i < 16; i++ { // steady multicast traffic between floods
			e.Decide(p, routing.NoLink, true)
		}
	}
	// Group burst past the cache cap: distinct (src,group) keys force FIFO
	// capacity evictions even with no further churn.
	for gid := wire.GroupID(2); gid < 130; gid++ {
		w.groups.members[gid] = []wire.NodeID{wire.NodeID(1 + gid%64)}
		bp := &wire.Packet{Type: wire.PTData, Route: wire.RouteMulticast, Src: w.nodes[0], Group: gid}
		e.Decide(bp, routing.NoLink, true)
	}
	return e.TreeCacheStats(), nil
}

// ConvergenceScale reproduces the scaling premise behind §II-A's global
// overlay: after every LSA flood each node recomputes identical routes
// from shared state, so the per-node recompute must stay far below the
// paper's millisecond-scale rerouting budget even at hundreds of nodes.
// EXP-CONV floods link churn through 16/64/256-node graphs and measures
// per-node reconvergence latency and allocations on the dense
// slice-indexed SPF versus the retained map-based Dijkstra.
func ConvergenceScale(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-CONV",
		Title: "Reconvergence latency and allocations at scale",
		PaperClaim: "every node recomputes identical routes from shared state within " +
			"milliseconds of an LSA flood, keeping sub-second rerouting viable as the " +
			"overlay grows toward its 256-link design ceiling",
		Table: metrics.NewTable("nodes", "links", "dense/node", "reference/node", "speedup", "allocs/reconv", "scratch_reuse"),
	}
	_ = seed // wall-clock measurement; churn sequence is deterministic
	const rounds = 30
	sizes := []int{16, 64, 256}
	worstPerNode := time.Duration(0)
	minSpeedup := 0.0
	worstAllocs := 0.0
	minReuse := 1.0
	for i, n := range sizes {
		out, err := measureConvergence(n, rounds)
		if err != nil {
			r.addFinding("ERROR n=%d: %v", n, err)
			return r
		}
		speedup := float64(out.refPerNode) / float64(nonzero(out.densePerNode))
		r.Table.AddRow(out.nodes, out.links,
			fmt.Sprintf("%.1fµs", us(out.densePerNode)),
			fmt.Sprintf("%.1fµs", us(out.refPerNode)),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprintf("%.2f", out.allocsPerReconv),
			fmt.Sprintf("%.2f", out.reuseRatio))
		if out.densePerNode > worstPerNode {
			worstPerNode = out.densePerNode
		}
		if i == 0 || speedup < minSpeedup {
			minSpeedup = speedup
		}
		if out.allocsPerReconv > worstAllocs {
			worstAllocs = out.allocsPerReconv
		}
		if out.reuseRatio < minReuse {
			minReuse = out.reuseRatio
		}
	}
	trees, err := multicastChurn(rounds)
	if err != nil {
		r.addFinding("ERROR multicast churn: %v", err)
		return r
	}
	r.addFinding("worst per-node reconvergence %.1fµs (budget: 1ms); dense SPF ≥%.1fx the map-based reference",
		us(worstPerNode), minSpeedup)
	r.addFinding("allocations per warmed reconvergence ≤%.2f; SPF scratch reuse ≥%.0f%%",
		worstAllocs, 100*minReuse)
	r.addFinding("tree cache under churn+burst: %.1f%% hit ratio, %d evictions (prune+cap) across %d lookups",
		100*trees.HitRatio(), trees.Evictions, trees.Hits+trees.Misses)
	// Race instrumentation penalizes the dense SPF's tight slice loops far
	// more than the reference's map traffic, so under race the assertion
	// only requires the dense path not to lose.
	speedupFloor := 2.0
	if raceEnabled {
		speedupFloor = 1.05
	}
	r.ShapeHolds = worstPerNode < time.Millisecond &&
		minSpeedup >= speedupFloor &&
		worstAllocs < 2 &&
		minReuse >= 0.9 &&
		trees.Evictions > 0 && trees.Hits > 0
	return r
}

// us renders a duration in fractional microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

package experiments

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/itmsg"
	"sonet/internal/metrics"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// fairOutcome is one scheduling discipline's measured service to honest
// sources under attack.
type fairOutcome struct {
	honestGoodput float64 // fraction of honest messages delivered
	honestLatency time.Duration
	attackerShare float64 // fraction of delivered traffic from attacker
}

// fairnessRun drives three honest 50 pkt/s sources plus one flooding
// attacker through a relay whose egress link has 1000 pkt/s capacity,
// under one scheduling discipline.
func fairnessRun(seed uint64, proto wire.LinkProtoID, fair bool) (fairOutcome, error) {
	// Star: sources 1,2,3 and attacker 6 feed relay 4; destination 5.
	ms := time.Millisecond
	links := []core.SimpleLink{
		{A: 1, B: 4, Latency: 5 * ms},
		{A: 2, B: 4, Latency: 5 * ms},
		{A: 3, B: 4, Latency: 5 * ms},
		{A: 6, B: 4, Latency: 5 * ms},
		{A: 4, B: 5, Latency: 10 * ms},
	}
	s, err := core.BuildSimple(seed, links)
	if err != nil {
		return fairOutcome{}, err
	}
	s.SetNodeTemplate(func(cfg *node.Config) {
		// Access links are fast and deep so the full flood reaches the
		// relay; the relay's egress link (node 4) is the 1000 pkt/s
		// bottleneck where the disciplines compete.
		if cfg.ID == 4 {
			cfg.ITSched = itmsg.SchedConfig{
				Rate:            1000,
				BufferPerSource: 64,
				DisableFairness: !fair,
				TotalBuffer:     256,
			}
			return
		}
		cfg.ITSched = itmsg.SchedConfig{
			Rate:            40000,
			BufferPerSource: 8192,
			TotalBuffer:     32768,
		}
	})
	if err := s.Start(); err != nil {
		return fairOutcome{}, err
	}
	defer s.Stop()
	s.Settle()

	dst, err := s.Session(5).Connect(100)
	if err != nil {
		return fairOutcome{}, err
	}
	honestLat := &metrics.Latencies{}
	var honestRecv, attackRecv int
	dst.OnDeliver(func(d session.Delivery) {
		if d.From == 6 {
			attackRecv++
			return
		}
		honestRecv++
		honestLat.Add(d.Latency)
	})

	honestSent := 0
	var gens []*workload.CBR
	for _, src := range []wire.NodeID{1, 2, 3} {
		c, err := s.Session(src).Connect(0)
		if err != nil {
			return fairOutcome{}, err
		}
		flow, err := c.OpenFlow(session.FlowSpec{DstNode: 5, DstPort: 100, LinkProto: proto})
		if err != nil {
			return fairOutcome{}, err
		}
		g := &workload.CBR{
			Clock:    s.Sched,
			Interval: 20 * ms,
			Send: func(uint32, []byte) error {
				honestSent++
				return flow.Send(nil)
			},
		}
		g.Start()
		gens = append(gens, g)
	}
	atk, err := s.Session(6).Connect(0)
	if err != nil {
		return fairOutcome{}, err
	}
	atkFlow, err := atk.OpenFlow(session.FlowSpec{DstNode: 5, DstPort: 100, LinkProto: proto})
	if err != nil {
		return fairOutcome{}, err
	}
	// A steady 10000 pkt/s flood (10x the bottleneck) keeps the relay's
	// shared queue pinned; bursty attacks would let honest traffic slip
	// in between bursts.
	burst := &workload.Burst{
		Clock:    s.Sched,
		Period:   time.Millisecond,
		PerBurst: 10,
		Send:     func(uint32, []byte) error { return atkFlow.Send(nil) },
	}
	burst.Start()

	s.RunFor(20 * time.Second)
	for _, g := range gens {
		g.Stop()
	}
	burst.Stop()
	s.RunFor(5 * time.Second)

	total := honestRecv + attackRecv
	out := fairOutcome{
		honestGoodput: float64(honestRecv) / float64(honestSent),
		honestLatency: honestLat.Percentile(50),
	}
	if total > 0 {
		out.attackerShare = float64(attackRecv) / float64(total)
	}
	return out, nil
}

// Fairness reproduces the §IV-B claim: per-source (Priority) and per-flow
// (Reliable) buffers with round-robin forwarding keep a compromised
// source's resource-consumption attack from starving correct sources,
// where a shared FIFO fails.
func Fairness(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-FAIR",
		Title: "Fair forwarding under a resource-consumption attack (10x overload)",
		PaperClaim: "fair buffer allocation and round-robin scheduling ensure a " +
			"compromised source cannot consume the resources of other sources",
		Table: metrics.NewTable("discipline", "honest_goodput", "honest_p50", "attacker_share"),
	}
	type variant struct {
		label string
		proto wire.LinkProtoID
		fair  bool
	}
	variants := []variant{
		{"IT-Priority, fair round-robin", wire.LPITPriority, true},
		{"IT-Priority, shared FIFO (baseline)", wire.LPITPriority, false},
		{"IT-Reliable, fair per-flow", wire.LPITReliable, true},
		{"IT-Reliable, shared FIFO (baseline)", wire.LPITReliable, false},
	}
	outcomes := make(map[string]fairOutcome, len(variants))
	for i, v := range variants {
		out, err := fairnessRun(seed+uint64(i), v.proto, v.fair)
		if err != nil {
			r.addFinding("ERROR %s: %v", v.label, err)
			return r
		}
		outcomes[v.label] = out
		r.Table.AddRow(v.label, fmt.Sprintf("%.3f", out.honestGoodput),
			out.honestLatency, fmt.Sprintf("%.3f", out.attackerShare))
	}
	fairPrio := outcomes["IT-Priority, fair round-robin"]
	fifoPrio := outcomes["IT-Priority, shared FIFO (baseline)"]
	fairRel := outcomes["IT-Reliable, fair per-flow"]
	r.addFinding("fair round-robin: honest goodput %.1f%% at p50 %.0fms despite 10x attack",
		fairPrio.honestGoodput*100, ms(fairPrio.honestLatency))
	r.addFinding("shared FIFO collapses honest goodput to %.1f%%", fifoPrio.honestGoodput*100)
	r.ShapeHolds = fairPrio.honestGoodput > 0.99 &&
		fairRel.honestGoodput > 0.99 &&
		fairPrio.honestLatency < 50*time.Millisecond &&
		(fifoPrio.honestGoodput < 0.9 || fifoPrio.honestLatency > 150*time.Millisecond)

	// Starvation sweep at scheduler scale: the end-to-end runs above max
	// out around a handful of sources, so the flow-count scaling claim is
	// checked directly against the DRR core — one attacker flooding 100x
	// against 1k/10k/100k backlogged honest flows must win no more than
	// its own single fair share.
	sweep := metrics.NewTable("flows", "rounds", "attacker_served", "honest_min", "honest_max", "holds")
	for _, pt := range []struct{ flows, rounds int }{{1000, 64}, {10000, 16}, {100000, 4}} {
		res := itmsg.StarvationSweep(pt.flows, pt.rounds)
		holds := res.Holds()
		sweep.AddRow(pt.flows, pt.rounds, res.AttackerServed, res.HonestMinServed, res.HonestMaxServed, holds)
		r.ShapeHolds = r.ShapeHolds && holds
	}
	r.Extra = append(r.Extra, sweep)
	r.addFinding("starvation sweep: fair share holds at 1k/10k/100k flows with a 100x attacker")
	return r
}

package experiments

import (
	"fmt"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"sonet/internal/metrics"
	"sonet/internal/sim"
	"sonet/internal/transport"
	"sonet/internal/wire"
)

// EXP-WIRE measures the real UDP data plane the daemon runs on, not an
// emulation: two sockets over loopback, one sender pumping datagrams
// under a credit window (so the receive buffer never overflows and loss
// stays out of the measurement), one receiver counting deliveries. The
// batched plane (recvmmsg/sendmmsg on Linux, per-datagram elsewhere) is
// compared against a faithful replica of the pre-batching per-packet
// path: a fresh 64 KiB buffer per read, addr.String() map lookup per
// datagram, one executor post per packet, one sendto per write.

// wirePlane is one measurable data-plane configuration.
type wirePlane interface {
	// send enqueues one datagram toward the receiver.
	send(payload []byte)
	// turn marks the end of an event-loop turn: queued flushes run.
	turn()
	// delivered reports datagrams that reached the receive handler.
	delivered() uint64
	// wakeCh is signalled (non-blocking, buffered) on every delivery, so
	// the pump can park instead of spinning: on a single P a spinning
	// sender starves the netpoller and caps throughput at the sysmon
	// polling rate regardless of the data plane under test.
	wakeCh() <-chan struct{}
	// batchAvg reports datagrams per kernel crossing (recv, send).
	batchAvg() (float64, float64)
	close()
}

// turnExec queues posted work until the pump ends its turn, so a burst
// of Sends coalesces into one flush exactly like on the real event loop.
// The pump goroutine is the only poster (the sender side receives no
// traffic), so no locking is needed.
type turnExec struct{ tasks []func() }

func (e *turnExec) Post(fn func()) { e.tasks = append(e.tasks, fn) }

func (e *turnExec) run() {
	for i, fn := range e.tasks {
		fn()
		e.tasks[i] = nil
	}
	e.tasks = e.tasks[:0]
}

// inlineExec dispatches on the read-loop goroutine; the handler only
// bumps an atomic counter, so inline dispatch measures the plane itself.
type inlineExec struct{}

func (inlineExec) Post(fn func()) { fn() }

// batchedPlane is the production transport.UDPUnderlay pair.
type batchedPlane struct {
	tx, rx *transport.UDPUnderlay
	exec   *turnExec
	count  atomic.Uint64
	wake   chan struct{}
}

func newBatchedPlane() (*batchedPlane, error) {
	p := &batchedPlane{exec: &turnExec{}, wake: make(chan struct{}, 1)}
	rx, err := transport.NewUDPUnderlay("127.0.0.1:0", inlineExec{}, func(wire.NodeID, []byte) {
		p.count.Add(1)
		select {
		case p.wake <- struct{}{}:
		default:
		}
	})
	if err != nil {
		return nil, err
	}
	tx, err := transport.NewUDPUnderlay("127.0.0.1:0", p.exec, func(wire.NodeID, []byte) {})
	if err != nil {
		_ = rx.Close()
		return nil, err
	}
	if err := rx.AddPeer(1, tx.LocalAddr()); err == nil {
		err = tx.AddPeer(2, rx.LocalAddr())
	}
	if err != nil {
		_ = rx.Close()
		_ = tx.Close()
		return nil, err
	}
	p.tx, p.rx = tx, rx
	return p, nil
}

func (p *batchedPlane) send(payload []byte)     { p.tx.Send(2, 0, payload) }
func (p *batchedPlane) turn()                   { p.exec.run() }
func (p *batchedPlane) delivered() uint64       { return p.count.Load() }
func (p *batchedPlane) wakeCh() <-chan struct{} { return p.wake }

func (p *batchedPlane) batchAvg() (float64, float64) {
	return p.rx.Stats().RecvBatchAvg(), p.tx.Stats().SendBatchAvg()
}

func (p *batchedPlane) close() {
	_ = p.tx.Close()
	p.exec.run() // release any flush queued after the last turn
	_ = p.rx.Close()
}

// shardedPlane is the N-shard production receiver fed by one pinned flow
// per shard, each from its own source socket — the EXP-WIRE scaling
// configuration. Sends round-robin across the flows, so the N shard
// loops, sockets, and counters all carry traffic.
type shardedPlane struct {
	loops *sim.ShardedLoop
	rx    *transport.UDPUnderlay
	txs   []*transport.UDPUnderlay
	execs []*turnExec
	next  int
	count atomic.Uint64
	wake  chan struct{}
}

func newShardedPlane(shards int) (*shardedPlane, error) {
	p := &shardedPlane{
		loops: sim.NewShardedLoop(shards),
		wake:  make(chan struct{}, 1),
	}
	rx, err := transport.NewShardedUDPUnderlay("127.0.0.1:0", p.loops.Executors(), func(int, wire.NodeID, []byte) {
		p.count.Add(1)
		select {
		case p.wake <- struct{}{}:
		default:
		}
	})
	if err != nil {
		p.loops.Close()
		return nil, err
	}
	p.rx = rx
	for f := 0; f < shards; f++ {
		exec := &turnExec{}
		tx, err := transport.NewUDPUnderlay("127.0.0.1:0", exec, func(wire.NodeID, []byte) {})
		if err != nil {
			p.close()
			return nil, err
		}
		p.txs = append(p.txs, tx)
		p.execs = append(p.execs, exec)
		id := wire.NodeID(f + 1)
		if err := rx.AddPeer(id, tx.LocalAddr()); err == nil {
			if err = rx.PinFlow(id, f); err == nil {
				err = tx.AddPeer(100, rx.LocalAddr())
			}
		}
		if err != nil {
			p.close()
			return nil, err
		}
	}
	return p, nil
}

func (p *shardedPlane) send(payload []byte) {
	f := p.next
	p.next = (p.next + 1) % len(p.txs)
	p.txs[f].Send(100, 0, payload)
}

func (p *shardedPlane) turn() {
	for _, e := range p.execs {
		e.run()
	}
}

func (p *shardedPlane) delivered() uint64       { return p.count.Load() }
func (p *shardedPlane) wakeCh() <-chan struct{} { return p.wake }

func (p *shardedPlane) batchAvg() (float64, float64) {
	var tx metrics.WireSnapshot
	for _, t := range p.txs {
		tx = tx.Merge(t.Stats())
	}
	return p.rx.Stats().RecvBatchAvg(), tx.SendBatchAvg()
}

// shardLedger checks the per-shard delivery accounting: every delivered
// frame must be counted by exactly one shard.
func (p *shardedPlane) shardLedger() (perShard []uint64, sum uint64) {
	for s := 0; s < p.rx.NumShards(); s++ {
		d := p.rx.ShardStats(s).RecvDelivered
		perShard = append(perShard, d)
		sum += d
	}
	return perShard, sum
}

func (p *shardedPlane) close() {
	for i, tx := range p.txs {
		_ = tx.Close()
		p.execs[i].run()
	}
	_ = p.rx.Close()
	p.loops.Close()
}

// perPacketPlane replicates the pre-batching data plane, preserved here
// as the measured baseline: every datagram costs a 64 KiB allocation, a
// sockaddr-to-string conversion, a string-keyed map lookup, a payload
// copy, a posted closure, and one syscall in each direction.
type perPacketPlane struct {
	tx, rx  *net.UDPConn
	senders map[string]wire.NodeID
	count   atomic.Uint64
	wake    chan struct{}
	done    chan struct{}
}

func newPerPacketPlane() (*perPacketPlane, error) {
	rx, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	tx, err := net.DialUDP("udp", nil, rx.LocalAddr().(*net.UDPAddr))
	if err != nil {
		_ = rx.Close()
		return nil, err
	}
	p := &perPacketPlane{
		tx: tx, rx: rx,
		senders: map[string]wire.NodeID{tx.LocalAddr().String(): 1},
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	handler := func(from wire.NodeID, data []byte) {
		p.count.Add(1)
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	post := func(fn func()) { fn() }
	go func() {
		defer close(p.done)
		for {
			buf := make([]byte, 1<<16) // the pre-batching per-read allocation
			n, addr, err := p.rx.ReadFromUDP(buf)
			if err != nil {
				return
			}
			id, ok := p.senders[addr.String()] // per-packet string key
			if !ok {
				continue
			}
			data := make([]byte, n)
			copy(data, buf[:n])
			post(func() { handler(id, data) }) // one post per packet
		}
	}()
	return p, nil
}

func (p *perPacketPlane) send(payload []byte)     { _, _ = p.tx.Write(payload) }
func (p *perPacketPlane) turn()                   {}
func (p *perPacketPlane) delivered() uint64       { return p.count.Load() }
func (p *perPacketPlane) wakeCh() <-chan struct{} { return p.wake }

// batchAvg is 1 by construction: one datagram per kernel crossing.
func (p *perPacketPlane) batchAvg() (float64, float64) { return 1, 1 }

func (p *perPacketPlane) close() {
	_ = p.tx.Close()
	_ = p.rx.Close()
	<-p.done
}

// wireOutcome is one plane's measured throughput at one payload size.
type wireOutcome struct {
	sent, delivered uint64
	elapsed         time.Duration
	allocsPerPkt    float64
	recvBatch       float64
	sendBatch       float64
}

func (o wireOutcome) pps() float64 {
	if o.elapsed <= 0 {
		return 0
	}
	return float64(o.delivered) / o.elapsed.Seconds()
}

// pumpWire drives total datagrams through the plane under a credit
// window: the sender never runs more than window datagrams ahead of the
// receiver, so the loopback receive buffer cannot overflow and drops do
// not contaminate the throughput number. A stall (no delivery progress
// for a second) ends the run early with whatever was delivered.
func pumpWire(p wirePlane, total, window int, payload []byte) wireOutcome {
	stall := time.NewTimer(time.Second)
	defer stall.Stop()
	waitAbove := func(floor uint64) bool {
		if p.delivered() >= floor {
			return true
		}
		if !stall.Stop() {
			select {
			case <-stall.C:
			default:
			}
		}
		stall.Reset(time.Second)
		for p.delivered() < floor {
			select {
			case <-p.wakeCh():
			case <-stall.C:
				return false
			}
		}
		return true
	}

	// Warm one window through: pools size themselves, the first flush
	// closure is minted, ARP-equivalent startup costs fall out.
	for i := 0; i < window; i++ {
		p.send(payload)
	}
	p.turn()
	if !waitAbove(uint64(window)) {
		return wireOutcome{sent: uint64(window), delivered: p.delivered()}
	}
	base := p.delivered()

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	sent := 0
	for sent < total {
		credit := window - (sent - int(p.delivered()-base))
		if credit <= 0 {
			if !waitAbove(base + uint64(sent-window+1)) {
				break
			}
			continue
		}
		if credit > total-sent {
			credit = total - sent
		}
		for i := 0; i < credit; i++ {
			p.send(payload)
		}
		sent += credit
		p.turn()
	}
	waitAbove(base + uint64(sent))
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	out := wireOutcome{
		sent:      uint64(sent),
		delivered: p.delivered() - base,
		elapsed:   elapsed,
	}
	if out.delivered > 0 {
		out.allocsPerPkt = float64(ms1.Mallocs-ms0.Mallocs) / float64(out.delivered)
	}
	out.recvBatch, out.sendBatch = p.batchAvg()
	return out
}

// WireThroughput reproduces the §II-D premise on the real wire: the
// overlay daemon must move full-rate datagram streams through commodity
// kernels, so per-packet overhead — syscalls, allocations, lookups —
// must be amortized. EXP-WIRE pumps credit-windowed streams over
// loopback through the batched data plane and through a replica of the
// per-packet path it replaced, at monitoring (200 B) and video (1200 B)
// payload sizes.
func WireThroughput(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-WIRE",
		Title: fmt.Sprintf("UDP data-plane throughput (%s)", transport.Plane),
		PaperClaim: "a dissemination-focused overlay daemon sustains full-rate data " +
			"streams on commodity hardware, so the wire path must amortize per-packet " +
			"syscall and allocation costs",
		Table: metrics.NewTable("plane", "payload", "pkts", "pps", "MB/s", "rx_batch", "tx_batch", "allocs/pkt"),
	}
	_ = seed // wall-clock measurement; the workload is deterministic
	total, window := 6000, 64
	if raceEnabled {
		total = 1500
	}
	minRatio := 0.0
	lossFree := true
	batchedAllocs, baselineAllocs := 0.0, 0.0
	for i, payload := range []int{200, 1200} {
		buf := make([]byte, payload)
		for j := range buf {
			buf[j] = byte(j)
		}
		outcomes := [2]wireOutcome{}
		for k, mk := range []func() (wirePlane, error){
			func() (wirePlane, error) { return newPerPacketPlane() },
			func() (wirePlane, error) { return newBatchedPlane() },
		} {
			p, err := mk()
			if err != nil {
				r.addFinding("ERROR: %v", err)
				return r
			}
			outcomes[k] = pumpWire(p, total, window, buf)
			p.close()
		}
		base, batched := outcomes[0], outcomes[1]
		ratio := batched.pps() / nonzeroF(base.pps())
		for k, o := range outcomes {
			name := "per-packet"
			if k == 1 {
				name = transport.Plane
			}
			r.Table.AddRow(name, payload, o.delivered,
				fmt.Sprintf("%.0f", o.pps()),
				fmt.Sprintf("%.1f", o.pps()*float64(payload)/1e6),
				fmt.Sprintf("%.1f", o.recvBatch),
				fmt.Sprintf("%.1f", o.sendBatch),
				fmt.Sprintf("%.2f", o.allocsPerPkt))
		}
		r.addFinding("payload %dB: batched plane %.1fx the per-packet path (%.0f vs %.0f pps)",
			payload, ratio, batched.pps(), base.pps())
		if i == 0 || ratio < minRatio {
			minRatio = ratio
		}
		lossFree = lossFree && batched.delivered == batched.sent && base.delivered == base.sent
		if batched.allocsPerPkt > batchedAllocs {
			batchedAllocs = batched.allocsPerPkt
		}
		if k := base.allocsPerPkt; i == 0 || k < baselineAllocs {
			baselineAllocs = k
		}
	}
	r.addFinding("amortized allocations: ≤%.2f/pkt batched vs ≥%.2f/pkt per-packet",
		batchedAllocs, baselineAllocs)

	// Multi-shard scaling rows (video payloads): the sharded receiver
	// with one pinned flow per shard. On a multi-core machine the Linux
	// plane scales near-linearly until cores saturate; the asserted shape
	// is only the accounting — loss-free delivery with every frame
	// counted by exactly one shard — because raw scaling depends on the
	// runner's core count.
	shardLedgerOK := true
	buf := make([]byte, 1200)
	for _, ns := range []int{1, 2, 4} {
		p, err := newShardedPlane(ns)
		if err != nil {
			r.addFinding("ERROR: shards=%d: %v", ns, err)
			return r
		}
		o := pumpWire(p, total, window, buf)
		perShard, sum := p.shardLedger()
		handoffs := p.rx.Stats().Handoffs
		p.close()
		r.Table.AddRow(fmt.Sprintf("shards=%d", ns), 1200, o.delivered,
			fmt.Sprintf("%.0f", o.pps()),
			fmt.Sprintf("%.1f", o.pps()*1200/1e6),
			fmt.Sprintf("%.1f", o.recvBatch),
			fmt.Sprintf("%.1f", o.sendBatch),
			fmt.Sprintf("%.2f", o.allocsPerPkt))
		r.addFinding("shards=%d: %.0f pps, per-shard delivered %v, %d handoffs",
			ns, o.pps(), perShard, handoffs)
		lossFree = lossFree && o.delivered == o.sent
		shardLedgerOK = shardLedgerOK && sum == o.delivered+uint64(window) // + the warm window
	}
	if !lossFree {
		r.addFinding("WARNING: credit-windowed runs saw loss or stall")
	}
	if !shardLedgerOK {
		r.addFinding("WARNING: per-shard delivery ledger does not account for every frame")
	}
	// Race instrumentation charges the batched plane's pooled-buffer copies
	// far more than it charges the baseline's syscalls, so under race the
	// assertion only requires the batched plane to stay in the same
	// ballpark; the throughput claim itself is asserted on uninstrumented
	// builds.
	ratioFloor := 1.5
	if raceEnabled {
		ratioFloor = 0.5
	}
	r.ShapeHolds = lossFree &&
		shardLedgerOK &&
		minRatio >= ratioFloor &&
		batchedAllocs < baselineAllocs
	return r
}

// nonzeroF guards a ratio denominator.
func nonzeroF(f float64) float64 {
	if f <= 0 {
		return 1
	}
	return f
}

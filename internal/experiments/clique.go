package experiments

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/metrics"
	"sonet/internal/netemu"
	"sonet/internal/session"
	"sonet/internal/topology"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// cliqueOutcome is one topology's measured behaviour.
type cliqueOutcome struct {
	links        int
	base         time.Duration
	recMean      time.Duration
	recP99       time.Duration
	delivered    float64
	hellosPerSec float64
}

// lossPerMs gives every fiber a loss rate proportional to its length, so
// the sparse chain and the clique's long direct links see the same
// end-to-end loss per unit distance — the comparison isolates topology.
const lossPerMs = 0.0004

// cliqueRun streams NYC→SFO reliable traffic over either the designed
// sparse continental topology or a full clique of the same 14 cities
// (direct links at the sparse topology's shortest-path distances).
func cliqueRun(seed uint64, clique bool) (cliqueOutcome, error) {
	sparse := continentalLinks(nil)
	var links []core.SimpleLink
	if !clique {
		links = make([]core.SimpleLink, len(sparse))
		copy(links, sparse)
		for i := range links {
			ms := float64(links[i].Latency) / float64(time.Millisecond)
			links[i].Loss = netemu.Bernoulli{P: lossPerMs * ms}
		}
	} else {
		// Clique: distances from the sparse design's shortest paths.
		g := topology.NewGraph()
		for _, l := range sparse {
			if _, err := g.AddLink(l.A, l.B, l.Latency); err != nil {
				return cliqueOutcome{}, err
			}
		}
		v := topology.NewView(g)
		nodes := g.Nodes()
		for i, a := range nodes {
			spt := topology.ShortestPaths(v, a, topology.LatencyMetric)
			for _, b := range nodes[i+1:] {
				lat, err := v.PathLatency(spt.Path(b))
				if err != nil {
					return cliqueOutcome{}, err
				}
				ms := float64(lat) / float64(time.Millisecond)
				links = append(links, core.SimpleLink{
					A: a, B: b, Latency: lat,
					Loss: netemu.Bernoulli{P: lossPerMs * ms},
				})
			}
		}
	}
	s, err := core.BuildSimple(seed, links)
	if err != nil {
		return cliqueOutcome{}, err
	}
	if err := s.Start(); err != nil {
		return cliqueOutcome{}, err
	}
	defer s.Stop()
	s.Settle()

	dst, err := s.Session(SFO).Connect(100)
	if err != nil {
		return cliqueOutcome{}, err
	}
	var rec metrics.Latencies
	var received uint64
	dst.OnDeliver(func(d session.Delivery) {
		received++
		if d.Retransmitted {
			rec.Add(d.Latency)
		}
	})
	src, err := s.Session(NYC).Connect(0)
	if err != nil {
		return cliqueOutcome{}, err
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: SFO, DstPort: 100,
		LinkProto: wire.LPReliable, Ordered: true,
	})
	if err != nil {
		return cliqueOutcome{}, err
	}
	const span = 15 * time.Second
	stream := &workload.CBR{
		Clock:    s.Sched,
		Interval: time.Millisecond,
		Count:    int(span / time.Millisecond),
		Send:     func(uint32, []byte) error { return flow.Send(nil) },
	}
	helloStart := s.Node(NYC).LinkStateManager().Stats().HellosSent
	startAt := s.Now()
	stream.Start()
	s.RunFor(span + 5*time.Second)

	hellos := s.Node(NYC).LinkStateManager().Stats().HellosSent - helloStart
	elapsed := (s.Now() - startAt).Seconds()
	view := s.Node(NYC).View()
	spt := topology.ShortestPaths(view, NYC, topology.LatencyMetric)
	base, _ := view.PathLatency(spt.Path(SFO))
	return cliqueOutcome{
		links:        s.Graph.NumLinks(),
		base:         base,
		recMean:      rec.Mean(),
		recP99:       rec.Percentile(99),
		delivered:    float64(received) / float64(stream.Sent()),
		hellosPerSec: float64(hellos) / elapsed,
	}, nil
}

// TopologyClique reproduces the §II-A design guidance: "because short
// overlay links are preferred, it is not normally advised to build a
// continent- or global-sized overlay as a clique". On a clique, the
// NYC→SFO flow crosses one long direct link, so every loss is recovered
// end-to-end at full-path RTT; on the designed sparse topology of ~10 ms
// links the same losses recover hop-by-hop several times faster — and
// each node probes 13 neighbors instead of ~3.
func TopologyClique(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-CLIQUE",
		Title: "Topology ablation: designed sparse overlay vs full clique (14 cities)",
		PaperClaim: "short overlay links are preferred; a continental overlay " +
			"should not be built as a clique",
		Table: metrics.NewTable("topology", "links", "delivered", "rec_mean", "rec_penalty", "rec_p99", "hellos/s/node"),
	}
	sparse, err := cliqueRun(seed, false)
	if err != nil {
		r.addFinding("ERROR sparse: %v", err)
		return r
	}
	clique, err := cliqueRun(seed, true)
	if err != nil {
		r.addFinding("ERROR clique: %v", err)
		return r
	}
	sparsePenalty := sparse.recMean - sparse.base
	cliquePenalty := clique.recMean - clique.base
	r.Table.AddRow("sparse (designed, ~10ms links)", sparse.links,
		fmt.Sprintf("%.4f", sparse.delivered), sparse.recMean, sparsePenalty,
		sparse.recP99, fmt.Sprintf("%.1f", sparse.hellosPerSec))
	r.Table.AddRow("clique (direct links)", clique.links,
		fmt.Sprintf("%.4f", clique.delivered), clique.recMean, cliquePenalty,
		clique.recP99, fmt.Sprintf("%.1f", clique.hellosPerSec))

	r.addFinding("same per-distance loss: the recovery penalty over the %.0fms path is %.0fms hop-by-hop vs %.0fms on the clique's direct link (%.1fx)",
		ms(sparse.base), ms(sparsePenalty), ms(cliquePenalty),
		float64(cliquePenalty)/float64(nonzero(sparsePenalty)))
	r.addFinding("control overhead: %.1f vs %.1f hello probes/s per node",
		sparse.hellosPerSec, clique.hellosPerSec)
	r.ShapeHolds = sparse.delivered > 0.999 && clique.delivered > 0.999 &&
		float64(cliquePenalty) > 1.7*float64(sparsePenalty) &&
		clique.hellosPerSec > 3*sparse.hellosPerSec
	return r
}

// Package experiments contains one driver per reproduced figure, table,
// or quantitative claim of the paper (see DESIGN.md §4 for the index).
// Each driver builds an emulated world, runs the workload in virtual
// time, and returns a Result whose table holds the same rows/series the
// paper reports. The drivers are shared by the repository's testing.B
// benchmarks (bench_test.go) and the cmd/benchrun binary, and their
// checks are asserted by the package's tests.
package experiments

import (
	"fmt"
	"strings"

	"sonet/internal/metrics"
)

// Result is one experiment's reproduction output.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "EXP-F3").
	ID string
	// Title names the experiment.
	Title string
	// PaperClaim restates what the paper says should happen.
	PaperClaim string
	// Table holds the reproduced series.
	Table *metrics.Table
	// Extra holds supplementary tables (scale sweeps and the like).
	Extra []*metrics.Table
	// Findings are the headline measured numbers.
	Findings []string
	// ShapeHolds reports whether the paper's qualitative claim held (who
	// wins, by roughly what factor).
	ShapeHolds bool
}

// String renders the result for the console.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper: %s\n\n", r.PaperClaim)
	b.WriteString(r.Table.String())
	b.WriteByte('\n')
	for _, t := range r.Extra {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  • %s\n", f)
	}
	status := "HOLDS"
	if !r.ShapeHolds {
		status = "DOES NOT HOLD"
	}
	fmt.Fprintf(&b, "  ⇒ paper's shape %s\n", status)
	return b.String()
}

// addFinding appends a formatted finding.
func (r *Result) addFinding(format string, args ...any) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// All runs every experiment in DESIGN.md order with default seeds.
func All() []*Result {
	return []*Result{
		Fig3HopByHop(1),
		Fig4NMStrikes(2),
		Reroute(3),
		Multicast(4),
		MonitoringControl(5),
		IntrusionTolerance(6),
		Fairness(7),
		RemoteManipulation(8),
		Anycast(9),
		Multihoming(10),
		CompoundFlow(11),
		RoutingMetric(12),
		GlobalCoverage(13),
		TopologyClique(14),
		ConvergenceScale(15),
		WireThroughput(16),
		Chaos(17),
		Churn(18),
	}
}

package experiments

import (
	"time"

	"sonet/internal/core"
	"sonet/internal/metrics"
	"sonet/internal/netemu"
	"sonet/internal/session"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// multihomeRun measures stream loss across a 10 s degradation of ISP 1
// (total outage or partial brown-out), with the overlay link served by
// the given providers.
func multihomeRun(seed uint64, dual bool, severity float64) (lost int, outage time.Duration, failovers uint64, err error) {
	o := core.New(seed, netemu.DefaultConfig())
	a := o.AddSite("A")
	b := o.AddSite("B")
	isp1 := o.AddISP("isp-1")
	isp2 := o.AddISP("isp-2")
	if _, err := o.AddFiber(isp1, a, b, 10*time.Millisecond, 0, nil); err != nil {
		return 0, 0, 0, err
	}
	if _, err := o.AddFiber(isp2, a, b, 11*time.Millisecond, 0, nil); err != nil {
		return 0, 0, 0, err
	}
	isps := []netemu.ISPID{isp1}
	if dual {
		isps = append(isps, isp2)
	}
	o.AddNode(1, a)
	o.AddNode(2, b)
	if _, err := o.AddLink(1, 2, 10*time.Millisecond, isps...); err != nil {
		return 0, 0, 0, err
	}
	if err := o.Start(); err != nil {
		return 0, 0, 0, err
	}
	defer o.Stop()
	o.Settle()

	dst, err := o.Session(2).Connect(100)
	if err != nil {
		return 0, 0, 0, err
	}
	var deliveredAt []time.Duration
	dst.OnDeliver(func(session.Delivery) { deliveredAt = append(deliveredAt, o.Now()) })
	src, err := o.Session(1).Connect(0)
	if err != nil {
		return 0, 0, 0, err
	}
	flow, err := src.OpenFlow(session.FlowSpec{DstNode: 2, DstPort: 100, LinkProto: wire.LPBestEffort})
	if err != nil {
		return 0, 0, 0, err
	}
	stream := &workload.CBR{
		Clock:    o.Sched,
		Interval: 10 * time.Millisecond,
		Count:    3000, // 30 s at 100 pkt/s
		Send:     func(uint32, []byte) error { return flow.Send(nil) },
	}
	stream.Start()
	// ISP-1 degradation from t=5s to t=15s.
	failAt := o.Now() + 5*time.Second
	o.Sched.At(failAt, func() { o.Net.SetISPExtraLoss(isp1, severity) })
	o.Sched.After(15*time.Second, func() { o.Net.SetISPExtraLoss(isp1, 0) })
	o.RunFor(35 * time.Second)

	var worst time.Duration
	for i := 1; i < len(deliveredAt); i++ {
		if deliveredAt[i-1] < failAt {
			continue
		}
		if gap := deliveredAt[i] - deliveredAt[i-1]; gap > worst {
			worst = gap
		}
	}
	return int(stream.Sent()) - len(deliveredAt), worst,
		o.Node(1).LinkStateManager().Stats().Failovers, nil
}

// Multihoming reproduces the §II-A multihoming claim: connecting each
// overlay node to multiple ISP backbones lets the overlay route around
// problems affecting a single provider by re-homing the link, without any
// Internet-level rerouting.
func Multihoming(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-MULTIHOME",
		Title: "Single- vs dual-homed overlay link through a 10s ISP outage",
		PaperClaim: "multihoming allows the overlay to route around problems " +
			"affecting a single provider",
		Table: metrics.NewTable("homing", "packets_lost", "worst_gap", "failovers"),
	}
	singleLost, singleGap, _, err := multihomeRun(seed, false, 1.0)
	if err != nil {
		r.addFinding("ERROR single: %v", err)
		return r
	}
	r.Table.AddRow("single ISP, total outage", singleLost, singleGap, 0)
	dualLost, dualGap, failovers, err := multihomeRun(seed, true, 1.0)
	if err != nil {
		r.addFinding("ERROR dual: %v", err)
		return r
	}
	r.Table.AddRow("dual ISP, total outage", dualLost, dualGap, failovers)

	// Partial brown-out: 30% loss on ISP 1 — hellos mostly succeed, so
	// recovery relies on the loss-threshold re-homing of §II-A rather
	// than missed-hello failover.
	bSingleLost, _, _, err := multihomeRun(seed, false, 0.30)
	if err != nil {
		r.addFinding("ERROR single brown-out: %v", err)
		return r
	}
	r.Table.AddRow("single ISP, 30% brown-out", bSingleLost, "-", 0)
	bDualLost, _, bFailovers, err := multihomeRun(seed, true, 0.30)
	if err != nil {
		r.addFinding("ERROR dual brown-out: %v", err)
		return r
	}
	r.Table.AddRow("dual ISP, 30% brown-out", bDualLost, "-", bFailovers)

	r.addFinding("total outage: single-homed lost %d packets vs dual-homed %d (worst gap %v)",
		singleLost, dualLost, dualGap)
	r.addFinding("30%% brown-out: single-homed lost %d vs dual-homed %d after loss-driven re-homing",
		bSingleLost, bDualLost)
	r.ShapeHolds = singleLost > 900 && dualLost < 100 &&
		dualGap < time.Second && failovers >= 1 &&
		bSingleLost > 150 && bDualLost < bSingleLost/2 && bFailovers >= 1
	return r
}

package experiments

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/link"
	"sonet/internal/metrics"
	"sonet/internal/netemu"
	"sonet/internal/node"
	"sonet/internal/session"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// fig4GE returns the bursty-loss model for one scenario run: ~3% average
// loss concentrated in ~12-packet bursts — the correlated loss window the
// NM-Strikes protocol is designed to bypass (§IV-A).
func fig4GE() *netemu.GilbertElliott {
	return netemu.NewGilbertElliott(0.003, 0.08, 0.0005, 0.85)
}

// fig4Row is one protocol variant's measured outcome.
type fig4Row struct {
	name     string
	sent     uint32
	received uint64
	late     uint64
	onTime   float64
	p99      time.Duration
	overhead float64
	analytic float64
}

// fig4Run drives a 1000 pkt/s stream over a single 40 ms continental link
// with bursty loss for one protocol configuration.
func fig4Run(seed uint64, proto wire.LinkProtoID, n, m int, deadline time.Duration) (fig4Row, error) {
	links := []core.SimpleLink{{
		A: 1, B: 2, Latency: 40 * time.Millisecond, Loss: fig4GE(),
	}}
	s, err := core.BuildSimple(seed, links)
	if err != nil {
		return fig4Row{}, err
	}
	budget := deadline - 40*time.Millisecond
	s.SetNodeTemplate(func(cfg *node.Config) {
		cfg.Strikes = link.StrikesConfig{N: n, M: m, Budget: budget, RTT: 80 * time.Millisecond}
		cfg.SingleStrike = link.StrikesConfig{Budget: budget, RTT: 80 * time.Millisecond}
	})
	if err := s.Start(); err != nil {
		return fig4Row{}, err
	}
	defer s.Stop()
	s.Settle()

	dst, err := s.Session(2).Connect(100)
	if err != nil {
		return fig4Row{}, err
	}
	src, err := s.Session(1).Connect(0)
	if err != nil {
		return fig4Row{}, err
	}
	flow, err := src.OpenFlow(session.FlowSpec{
		DstNode: 2, DstPort: 100,
		LinkProto: proto, Ordered: true, Deadline: deadline,
	})
	if err != nil {
		return fig4Row{}, err
	}
	const span = 20 * time.Second
	stream := &workload.CBR{
		Clock:    s.Sched,
		Interval: time.Millisecond,
		Count:    int(span / time.Millisecond),
		Send:     func(uint32, []byte) error { return flow.Send(nil) },
	}
	stream.Start()
	s.RunFor(span + 5*time.Second)

	st := dst.Stats()
	row := fig4Row{
		name:     proto.String(),
		sent:     stream.Sent(),
		received: st.Received,
		late:     st.Late,
		onTime:   float64(st.Received) / float64(stream.Sent()),
		p99:      st.Latency.Percentile(99),
	}
	// Sender-side transmissions on the link measure the 1+M·p cost.
	ls := s.Node(1).LinkStats(2)[proto]
	if ls.DataSent > 0 {
		row.overhead = float64(ls.DataSent+ls.Retransmissions) / float64(stream.Sent())
	}
	row.analytic = 1 + float64(m)*fig4GE().AverageLoss()
	return row, nil
}

// Fig4NMStrikes reproduces Fig. 4 (§IV-A): the NM-Strikes real-time
// protocol delivers a continental live-TV stream within its 200 ms
// deadline despite bursty loss, at a sender-side cost of 1 + M·p, where
// single-request/single-retransmission recovery is defeated by the very
// correlation the spaced strikes dodge.
func Fig4NMStrikes(seed uint64) *Result {
	const deadline = 200 * time.Millisecond
	r := &Result{
		ID:    "EXP-F4",
		Title: "Fig. 4 — NM-Strikes live video transport (200ms deadline, bursty loss)",
		PaperClaim: "N spaced requests × M spaced retransmissions bypass the window " +
			"of correlated loss within the ~160ms recovery budget; cost is 1+M·p",
		Table: metrics.NewTable("protocol", "on-time", "late", "p99", "overhead", "1+M·p"),
	}
	type variant struct {
		label string
		proto wire.LinkProtoID
		n, m  int
	}
	variants := []variant{
		{"best effort (no recovery)", wire.LPBestEffort, 0, 0},
		{"reliable ARQ (no deadline awareness)", wire.LPReliable, 0, 0},
		{"single strike (N=1,M=1)", wire.LPSingleStrike, 1, 1},
		{"NM-strikes N=2,M=1", wire.LPRealTime, 2, 1},
		{"NM-strikes N=2,M=2", wire.LPRealTime, 2, 2},
		{"NM-strikes N=3,M=2", wire.LPRealTime, 3, 2},
		{"NM-strikes N=3,M=3", wire.LPRealTime, 3, 3},
	}
	rows := make(map[string]fig4Row, len(variants))
	for _, v := range variants {
		// Paired comparison: every variant sees the same loss realization.
		row, err := fig4Run(seed, v.proto, v.n, v.m, deadline)
		if err != nil {
			r.addFinding("ERROR %s: %v", v.label, err)
			return r
		}
		rows[v.label] = row
		analytic := "-"
		if v.proto == wire.LPRealTime || v.proto == wire.LPSingleStrike {
			analytic = fmt.Sprintf("%.3f", row.analytic)
		}
		r.Table.AddRow(v.label, fmt.Sprintf("%.4f", row.onTime), row.late,
			row.p99, fmt.Sprintf("%.3f", row.overhead), analytic)
	}

	be := rows["best effort (no recovery)"]
	ss := rows["single strike (N=1,M=1)"]
	nm := rows["NM-strikes N=3,M=2"]
	r.addFinding("avg burst loss %.1f%%: best effort on-time %.2f%%, single strike %.2f%%, N=3/M=2 %.3f%%",
		fig4GE().AverageLoss()*100, be.onTime*100, ss.onTime*100, nm.onTime*100)
	r.addFinding("N=3/M=2 overhead %.3f vs analytic bound %.3f", nm.overhead, nm.analytic)
	r.ShapeHolds = nm.onTime > 0.999 &&
		nm.onTime > ss.onTime && ss.onTime > be.onTime &&
		nm.overhead < nm.analytic+0.05
	return r
}

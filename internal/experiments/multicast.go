package experiments

import (
	"fmt"
	"time"

	"sonet/internal/core"
	"sonet/internal/metrics"
	"sonet/internal/session"
	"sonet/internal/wire"
	"sonet/internal/workload"
)

// mcastOutcome is one dissemination scheme's measured cost.
type mcastOutcome struct {
	delivered     int
	expected      int
	transmissions uint64
	srcEgress     uint64
}

// mcastMembers returns the first g continental nodes other than the
// source, spread across the map.
func mcastMembers(g int) []wire.NodeID {
	order := []wire.NodeID{SFO, MIA, SEA, DAL, CHI, DEN, ATL, LAX, SLC, PHI, DC, MSP, PIT}
	return order[:g]
}

// totalDataTransmissions sums first transmissions of data frames over all
// nodes and link protocols.
func totalDataTransmissions(o *core.Overlay) uint64 {
	var total uint64
	for _, id := range o.Graph.Nodes() {
		n := o.Node(id)
		for _, lid := range o.Graph.Incident(id) {
			l, _ := o.Graph.Link(lid)
			peer, _ := l.Other(id)
			for _, st := range n.LinkStats(peer) {
				total += st.DataSent + st.Retransmissions
			}
		}
	}
	return total
}

// mcastRun sends count packets from NYC to g members, via overlay
// multicast or per-member unicast replication.
func mcastRun(seed uint64, g int, multicast bool) (mcastOutcome, error) {
	s, err := core.BuildSimple(seed, continentalLinks(nil))
	if err != nil {
		return mcastOutcome{}, err
	}
	if err := s.Start(); err != nil {
		return mcastOutcome{}, err
	}
	defer s.Stop()
	s.Settle()

	members := mcastMembers(g)
	const grp wire.GroupID = 1000
	delivered := 0
	for _, m := range members {
		c, err := s.Session(m).Connect(100)
		if err != nil {
			return mcastOutcome{}, err
		}
		c.Join(grp)
		c.OnDeliver(func(session.Delivery) { delivered++ })
	}
	s.Settle()

	src, err := s.Session(NYC).Connect(0)
	if err != nil {
		return mcastOutcome{}, err
	}
	var send func() error
	if multicast {
		flow, err := src.OpenFlow(session.FlowSpec{Group: grp, DstPort: 100})
		if err != nil {
			return mcastOutcome{}, err
		}
		send = func() error { return flow.Send(nil) }
	} else {
		flows := make([]*session.Flow, 0, len(members))
		for _, m := range members {
			f, err := src.OpenFlow(session.FlowSpec{DstNode: m, DstPort: 100})
			if err != nil {
				return mcastOutcome{}, err
			}
			flows = append(flows, f)
		}
		send = func() error {
			for _, f := range flows {
				if err := f.Send(nil); err != nil {
					return err
				}
			}
			return nil
		}
	}

	// Baseline transmissions (hellos are control frames, not counted; LSA
	// and group floods are data frames on the best-effort proto, so
	// measure the delta across the send phase).
	base := totalDataTransmissions(s.Overlay)
	const count = 1000
	stream := &workload.CBR{
		Clock:    s.Sched,
		Interval: 10 * time.Millisecond,
		Count:    count,
		Send:     func(uint32, []byte) error { return send() },
	}
	stream.Start()
	s.RunFor(12 * time.Second)
	// Subtract the control chatter measured on an idle twin interval.
	idleBase := totalDataTransmissions(s.Overlay)
	s.RunFor(12 * time.Second)
	idleChatter := totalDataTransmissions(s.Overlay) - idleBase

	return mcastOutcome{
		delivered:     delivered,
		expected:      count * g,
		transmissions: idleBase - base - idleChatter,
		srcEgress:     s.Node(NYC).Stats().Forwarded,
	}, nil
}

// Multicast reproduces the §III-A/§III-B claim: overlay multicast
// delivers a stream to many endpoints over a shared tree, without the
// per-destination copies unicast replication needs — the capability "not
// practically available on the Internet".
func Multicast(seed uint64) *Result {
	r := &Result{
		ID:    "EXP-MCAST",
		Title: "Overlay multicast vs unicast replication (14-node continental overlay)",
		PaperClaim: "the overlay constructs the most efficient multicast tree to " +
			"route messages to all overlay nodes that have clients in the group",
		Table: metrics.NewTable("members", "scheme", "delivered", "link_transmissions/pkt", "src_egress/pkt"),
	}
	r.ShapeHolds = true
	var ratioAt8 float64
	for _, g := range []int{2, 4, 8, 13} {
		mc, err := mcastRun(seed, g, true)
		if err != nil {
			r.addFinding("ERROR multicast g=%d: %v", g, err)
			return r
		}
		uc, err := mcastRun(seed+1, g, false)
		if err != nil {
			r.addFinding("ERROR unicast g=%d: %v", g, err)
			return r
		}
		const count = 1000.0
		r.Table.AddRow(g, "multicast", fmt.Sprintf("%d/%d", mc.delivered, mc.expected),
			fmt.Sprintf("%.2f", float64(mc.transmissions)/count),
			fmt.Sprintf("%.2f", float64(mc.srcEgress)/count))
		r.Table.AddRow(g, "unicast xN", fmt.Sprintf("%d/%d", uc.delivered, uc.expected),
			fmt.Sprintf("%.2f", float64(uc.transmissions)/count),
			fmt.Sprintf("%.2f", float64(uc.srcEgress)/count))
		if mc.delivered != mc.expected || uc.delivered != uc.expected {
			r.ShapeHolds = false
		}
		if mc.transmissions >= uc.transmissions && g >= 4 {
			r.ShapeHolds = false
		}
		if g == 8 {
			ratioAt8 = float64(uc.transmissions) / float64(mc.transmissions)
		}
	}
	r.addFinding("at 8 members, unicast replication costs %.2fx the link transmissions of the multicast tree", ratioAt8)
	return r
}
